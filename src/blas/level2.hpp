// BLAS level-2 kernels needed by the Householder tridiagonalization and the
// eigensolver verification paths.
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

enum class Trans { No, Yes };

/// y = alpha * op(A) * x + beta * y, A is m-by-n column-major with ld lda.
void gemv(Trans trans, index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y);

/// A += alpha * x * y^T (dger).
void ger(index_t m, index_t n, double alpha, const double* x, const double* y, double* a,
         index_t lda);

/// y = alpha*A*x + beta*y for symmetric A stored in the lower triangle (dsymv).
void symv_lower(index_t n, double alpha, const double* a, index_t lda, const double* x,
                double beta, double* y);

/// A += alpha*(x*y^T + y*x^T), lower triangle only (dsyr2).
void syr2_lower(index_t n, double alpha, const double* x, const double* y, double* a,
                index_t lda);

}  // namespace dnc::blas
