// BLAS level-2 kernels needed by the Householder tridiagonalization and the
// eigensolver verification paths. Templated on Real (double/float
// instantiations); double call sites deduce Real and compile unchanged.
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

enum class Trans { No, Yes };

/// y = alpha * op(A) * x + beta * y, A is m-by-n column-major with ld lda.
template <typename Real>
void gemv(Trans trans, index_t m, index_t n, Real alpha, const Real* a, index_t lda,
          const Real* x, Real beta, Real* y);

/// A += alpha * x * y^T (dger).
template <typename Real>
void ger(index_t m, index_t n, Real alpha, const Real* x, const Real* y, Real* a,
         index_t lda);

/// y = alpha*A*x + beta*y for symmetric A stored in the lower triangle (dsymv).
template <typename Real>
void symv_lower(index_t n, Real alpha, const Real* a, index_t lda, const Real* x, Real beta,
                Real* y);

/// A += alpha*(x*y^T + y*x^T), lower triangle only (dsyr2).
template <typename Real>
void syr2_lower(index_t n, Real alpha, const Real* x, const Real* y, Real* a, index_t lda);

}  // namespace dnc::blas
