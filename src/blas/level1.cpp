#include "blas/level1.hpp"

#include <cmath>

namespace dnc::blas {

void axpy(index_t n, double alpha, const double* x, double* y) {
  if (alpha == 0.0) return;
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy(index_t n, double alpha, const double* x, index_t incx, double* y, index_t incy) {
  if (alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    axpy(n, alpha, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

void scal(index_t n, double alpha, double* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void scal(index_t n, double alpha, double* x, index_t incx) {
  if (incx == 1) {
    scal(n, alpha, x);
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

double dot(index_t n, const double* x, const double* y) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double dot(index_t n, const double* x, index_t incx, const double* y, index_t incy) {
  if (incx == 1 && incy == 1) return dot(n, x, y);
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

double nrm2(index_t n, const double* x, index_t incx) {
  // Scaled sum of squares as in LAPACK dlassq: avoids overflow/underflow for
  // extreme inputs such as the type-7/8 graded matrices.
  double scale = 0.0, ssq = 1.0;
  for (index_t i = 0; i < n; ++i) {
    const double a = std::fabs(x[i * incx]);
    if (a == 0.0) continue;
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

double nrm2(index_t n, const double* x) { return nrm2(n, x, 1); }

void copy(index_t n, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] = x[i];
}

void copy(index_t n, const double* x, index_t incx, double* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    copy(n, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

void swap(index_t n, double* x, double* y) {
  for (index_t i = 0; i < n; ++i) {
    const double t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

double asum(index_t n, const double* x) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += std::fabs(x[i]);
  return s;
}

index_t iamax(index_t n, const double* x) {
  if (n <= 0) return -1;
  index_t best = 0;
  double bv = std::fabs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const double a = std::fabs(x[i]);
    if (a > bv) {
      bv = a;
      best = i;
    }
  }
  return best;
}

void rot(index_t n, double* x, double* y, double c, double s) {
  for (index_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

void rot(index_t n, double* x, index_t incx, double* y, index_t incy, double c, double s) {
  if (incx == 1 && incy == 1) {
    rot(n, x, y, c, s);
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const double xi = x[i * incx];
    const double yi = y[i * incy];
    x[i * incx] = c * xi + s * yi;
    y[i * incy] = c * yi - s * xi;
  }
}

}  // namespace dnc::blas
