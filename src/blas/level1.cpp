#include "blas/level1.hpp"

#include <cmath>

#include "blas/simd/kernels.hpp"
#include "common/real_traits.hpp"

namespace dnc::blas {
namespace {

// Overflow-safe scaled sum of squares as in LAPACK dlassq; the slow path
// behind the vectorized nrm2 below.
template <typename Real>
Real nrm2_scaled(index_t n, const Real* x, index_t incx) {
  Real scale = Real(0), ssq = Real(1);
  for (index_t i = 0; i < n; ++i) {
    const Real a = std::fabs(x[i * incx]);
    if (a == Real(0)) continue;
    if (scale < a) {
      const Real r = scale / a;
      ssq = Real(1) + ssq * r * r;
      scale = a;
    } else {
      const Real r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

}  // namespace

template <typename Real>
void axpy(index_t n, Real alpha, const Real* x, Real* y) {
  if (alpha == Real(0)) return;
  simd::kernels_t<Real>().axpy(n, alpha, x, y);
}

template <typename Real>
void axpy(index_t n, Real alpha, const Real* x, index_t incx, Real* y, index_t incy) {
  if (alpha == Real(0)) return;
  if (incx == 1 && incy == 1) {
    axpy(n, alpha, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

template <typename Real>
void scal(index_t n, Real alpha, Real* x) {
  simd::kernels_t<Real>().scal(n, alpha, x);
}

template <typename Real>
void scal(index_t n, Real alpha, Real* x, index_t incx) {
  if (incx == 1) {
    scal(n, alpha, x);
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

template <typename Real>
Real dot(index_t n, const Real* x, const Real* y) {
  return simd::kernels_t<Real>().dot(n, x, y);
}

template <typename Real>
Real dot(index_t n, const Real* x, index_t incx, const Real* y, index_t incy) {
  if (incx == 1 && incy == 1) return dot(n, x, y);
  Real s = Real(0);
  for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

template <typename Real>
Real nrm2(index_t n, const Real* x, index_t incx) {
  if (incx == 1) return nrm2(n, x);
  return nrm2_scaled(n, x, incx);
}

template <typename Real>
Real nrm2(index_t n, const Real* x) {
  // Fast path: plain vectorized sum of squares, accepted only when the
  // result proves no overflow/underflow could have distorted it. A huge or
  // non-finite sumsq may have overflowed and a tiny one may have lost
  // underflowed terms (so graded matrices with extreme norms, and
  // exactly-zero vectors, re-run the scaled loop). The safe window is a
  // real_traits constant: [1e-140, 1e140] for double, [1e-17, 1e17] for
  // float.
  const Real ssq = simd::kernels_t<Real>().sumsq(n, x);
  if (ssq >= real_traits<Real>::ssq_small() && ssq <= real_traits<Real>::ssq_big())
    return std::sqrt(ssq);
  return nrm2_scaled(n, x, 1);
}

template <typename Real>
void copy(index_t n, const Real* x, Real* y) {
  simd::kernels_t<Real>().copy(n, x, y);
}

template <typename Real>
void copy(index_t n, const Real* x, index_t incx, Real* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    copy(n, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

template <typename Real>
void swap(index_t n, Real* x, Real* y) {
  simd::kernels_t<Real>().swap(n, x, y);
}

template <typename Real>
Real asum(index_t n, const Real* x) {
  Real s = Real(0);
  for (index_t i = 0; i < n; ++i) s += std::fabs(x[i]);
  return s;
}

template <typename Real>
index_t iamax(index_t n, const Real* x) {
  if (n <= 0) return -1;
  index_t best = 0;
  Real bv = std::fabs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const Real a = std::fabs(x[i]);
    if (a > bv) {
      bv = a;
      best = i;
    }
  }
  return best;
}

template <typename Real>
void rot(index_t n, Real* x, Real* y, Real c, Real s) {
  simd::kernels_t<Real>().rot(n, x, y, c, s);
}

template <typename Real>
void rot(index_t n, Real* x, index_t incx, Real* y, index_t incy, Real c, Real s) {
  if (incx == 1 && incy == 1) {
    rot(n, x, y, c, s);
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const Real xi = x[i * incx];
    const Real yi = y[i * incy];
    x[i * incx] = c * xi + s * yi;
    y[i * incy] = c * yi - s * xi;
  }
}

// Explicit instantiations: the whole level-1 surface for double and float.
#define DNC_INSTANTIATE_LEVEL1(Real)                                                        \
  template void axpy<Real>(index_t, Real, const Real*, Real*);                              \
  template void axpy<Real>(index_t, Real, const Real*, index_t, Real*, index_t);            \
  template void scal<Real>(index_t, Real, Real*);                                           \
  template void scal<Real>(index_t, Real, Real*, index_t);                                  \
  template Real dot<Real>(index_t, const Real*, const Real*);                               \
  template Real dot<Real>(index_t, const Real*, index_t, const Real*, index_t);             \
  template Real nrm2<Real>(index_t, const Real*);                                           \
  template Real nrm2<Real>(index_t, const Real*, index_t);                                  \
  template void copy<Real>(index_t, const Real*, Real*);                                    \
  template void copy<Real>(index_t, const Real*, index_t, Real*, index_t);                  \
  template void swap<Real>(index_t, Real*, Real*);                                          \
  template Real asum<Real>(index_t, const Real*);                                           \
  template index_t iamax<Real>(index_t, const Real*);                                       \
  template void rot<Real>(index_t, Real*, Real*, Real, Real);                               \
  template void rot<Real>(index_t, Real*, index_t, Real*, index_t, Real, Real)

DNC_INSTANTIATE_LEVEL1(double);
DNC_INSTANTIATE_LEVEL1(float);

#undef DNC_INSTANTIATE_LEVEL1

}  // namespace dnc::blas
