#include "blas/level1.hpp"

#include <cmath>

#include "blas/simd/kernels.hpp"

namespace dnc::blas {
namespace {

// Overflow-safe scaled sum of squares as in LAPACK dlassq; the slow path
// behind the vectorized nrm2 below.
double nrm2_scaled(index_t n, const double* x, index_t incx) {
  double scale = 0.0, ssq = 1.0;
  for (index_t i = 0; i < n; ++i) {
    const double a = std::fabs(x[i * incx]);
    if (a == 0.0) continue;
    if (scale < a) {
      const double r = scale / a;
      ssq = 1.0 + ssq * r * r;
      scale = a;
    } else {
      const double r = a / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

// Safe range for the unscaled sum of squares: if sumsq lands in
// [kSsqSmall, kSsqBig] then no term overflowed (overflow would have
// produced inf, caught by isfinite) and any term that underflowed is
// relatively below ~1e-160, far under double rounding error; sqrt(sumsq)
// is then correct to working precision.
constexpr double kSsqSmall = 1e-140;
constexpr double kSsqBig = 1e140;

}  // namespace

void axpy(index_t n, double alpha, const double* x, double* y) {
  if (alpha == 0.0) return;
  simd::kernels().axpy(n, alpha, x, y);
}

void axpy(index_t n, double alpha, const double* x, index_t incx, double* y, index_t incy) {
  if (alpha == 0.0) return;
  if (incx == 1 && incy == 1) {
    axpy(n, alpha, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
}

void scal(index_t n, double alpha, double* x) { simd::kernels().scal(n, alpha, x); }

void scal(index_t n, double alpha, double* x, index_t incx) {
  if (incx == 1) {
    scal(n, alpha, x);
    return;
  }
  for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
}

double dot(index_t n, const double* x, const double* y) {
  return simd::kernels().dot(n, x, y);
}

double dot(index_t n, const double* x, index_t incx, const double* y, index_t incy) {
  if (incx == 1 && incy == 1) return dot(n, x, y);
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  return s;
}

double nrm2(index_t n, const double* x, index_t incx) {
  if (incx == 1) return nrm2(n, x);
  return nrm2_scaled(n, x, incx);
}

double nrm2(index_t n, const double* x) {
  // Fast path: plain vectorized sum of squares, accepted only when the
  // result proves no overflow/underflow could have distorted it. A huge or
  // non-finite sumsq may have overflowed and a tiny one may have lost
  // underflowed terms (so the 1e±300 graded matrices of types 7/8, and
  // exactly-zero vectors, re-run the scaled loop).
  const double ssq = simd::kernels().sumsq(n, x);
  if (ssq >= kSsqSmall && ssq <= kSsqBig) return std::sqrt(ssq);
  return nrm2_scaled(n, x, 1);
}

void copy(index_t n, const double* x, double* y) { simd::kernels().copy(n, x, y); }

void copy(index_t n, const double* x, index_t incx, double* y, index_t incy) {
  if (incx == 1 && incy == 1) {
    copy(n, x, y);
    return;
  }
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

void swap(index_t n, double* x, double* y) { simd::kernels().swap(n, x, y); }

double asum(index_t n, const double* x) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += std::fabs(x[i]);
  return s;
}

index_t iamax(index_t n, const double* x) {
  if (n <= 0) return -1;
  index_t best = 0;
  double bv = std::fabs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const double a = std::fabs(x[i]);
    if (a > bv) {
      bv = a;
      best = i;
    }
  }
  return best;
}

void rot(index_t n, double* x, double* y, double c, double s) {
  simd::kernels().rot(n, x, y, c, s);
}

void rot(index_t n, double* x, index_t incx, double* y, index_t incy, double c, double s) {
  if (incx == 1 && incy == 1) {
    rot(n, x, y, c, s);
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const double xi = x[i * incx];
    const double yi = y[i * incy];
    x[i * incx] = c * xi + s * yi;
    y[i * incy] = c * yi - s * xi;
  }
}

}  // namespace dnc::blas
