// LAPACK-style auxiliary matrix utilities: copies, initialisation, safe
// scaling and norms. These are the memory-bound kernels of the solver
// (PermuteV / CopyBackDeflated / LASET in the paper's task list go through
// lacpy/laset on panels).
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

/// B = A for full m x n blocks (dlacpy 'A').
void lacpy(index_t m, index_t n, const double* a, index_t lda, double* b, index_t ldb);

/// Set off-diagonals to alpha and diagonal to beta (dlaset 'A').
void laset(index_t m, index_t n, double alpha, double beta, double* a, index_t lda);

/// Overflow-safe multiply by cto/cfrom (dlascl, type 'G'), in steps that
/// never overflow intermediate values.
void lascl(index_t m, index_t n, double cfrom, double cto, double* a, index_t lda);

/// Max |a_ij| (dlange 'M').
double lange_max(index_t m, index_t n, const double* a, index_t lda);

/// Frobenius norm with dlassq-style scaling (dlange 'F').
double lange_fro(index_t m, index_t n, const double* a, index_t lda);

/// One-norm (max column sum, dlange 'O').
double lange_one(index_t m, index_t n, const double* a, index_t lda);

/// Norms of a symmetric tridiagonal matrix given diagonal d (n) and
/// off-diagonal e (n-1): dlanst.
double lanst_max(index_t n, const double* d, const double* e);
double lanst_one(index_t n, const double* d, const double* e);

}  // namespace dnc::blas
