// LAPACK-style auxiliary matrix utilities: copies, initialisation, safe
// scaling and norms. These are the memory-bound kernels of the solver
// (PermuteV / CopyBackDeflated / LASET in the paper's task list go through
// lacpy/laset on panels). Templated on Real, instantiated for double and
// float.
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

/// B = A for full m x n blocks (dlacpy 'A').
template <typename Real>
void lacpy(index_t m, index_t n, const Real* a, index_t lda, Real* b, index_t ldb);

/// Set off-diagonals to alpha and diagonal to beta (dlaset 'A').
template <typename Real>
void laset(index_t m, index_t n, Real alpha, Real beta, Real* a, index_t lda);

/// Overflow-safe multiply by cto/cfrom (dlascl, type 'G'), in steps that
/// never overflow intermediate values.
template <typename Real>
void lascl(index_t m, index_t n, Real cfrom, Real cto, Real* a, index_t lda);

/// Max |a_ij| (dlange 'M').
template <typename Real>
Real lange_max(index_t m, index_t n, const Real* a, index_t lda);

/// Frobenius norm with dlassq-style scaling (dlange 'F').
template <typename Real>
Real lange_fro(index_t m, index_t n, const Real* a, index_t lda);

/// One-norm (max column sum, dlange 'O').
template <typename Real>
Real lange_one(index_t m, index_t n, const Real* a, index_t lda);

/// Norms of a symmetric tridiagonal matrix given diagonal d (n) and
/// off-diagonal e (n-1): dlanst.
template <typename Real>
Real lanst_max(index_t n, const Real* d, const Real* e);
template <typename Real>
Real lanst_one(index_t n, const Real* d, const Real* e);

}  // namespace dnc::blas
