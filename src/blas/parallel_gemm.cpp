#include "blas/parallel_gemm.hpp"

#include "blas/simd/kernels.hpp"

namespace dnc::blas {

template <typename Real>
void parallel_gemm(ThreadPool& pool, Trans transa, Trans transb, index_t m, index_t n,
                   index_t k, Real alpha, const Real* a, index_t lda, const Real* b,
                   index_t ldb, Real beta, Real* c, index_t ldc) {
  if (m <= 0 || n <= 0) return;
  // Column slabs of C are disjoint, so each worker runs an independent
  // sequential GEMM on its slab; the surrounding parallel_for is the join.
  // Each worker packs into its own thread-local workspace (see gemm.cpp),
  // so the slabs share nothing but the read-only A and B panels. The
  // dispatched microkernel (simd::kernels()) is resolved once per slab
  // inside gemm; slab boundaries need no tile alignment because partial
  // micro-tiles are handled by the packed zero-padding.
  pool.parallel_for(0, n, [&](index_t j0, index_t j1) {
    const index_t nb = j1 - j0;
    const Real* bsub = (transb == Trans::No) ? b + j0 * ldb : b + j0;
    gemm(transa, transb, m, nb, k, alpha, a, lda, bsub, ldb, beta, c + j0 * ldc, ldc);
  });
}

template void parallel_gemm<double>(ThreadPool&, Trans, Trans, index_t, index_t, index_t,
                                    double, const double*, index_t, const double*, index_t,
                                    double, double*, index_t);
template void parallel_gemm<float>(ThreadPool&, Trans, Trans, index_t, index_t, index_t,
                                   float, const float*, index_t, const float*, index_t,
                                   float, float*, index_t);

}  // namespace dnc::blas
