#include "blas/parallel_gemm.hpp"

namespace dnc::blas {

void parallel_gemm(ThreadPool& pool, Trans transa, Trans transb, index_t m, index_t n,
                   index_t k, double alpha, const double* a, index_t lda, const double* b,
                   index_t ldb, double beta, double* c, index_t ldc) {
  if (m <= 0 || n <= 0) return;
  // Column slabs of C are disjoint, so each worker runs an independent
  // sequential GEMM on its slab; the surrounding parallel_for is the join.
  pool.parallel_for(0, n, [&](index_t j0, index_t j1) {
    const index_t nb = j1 - j0;
    const double* bsub = (transb == Trans::No) ? b + j0 * ldb : b + j0;
    gemm(transa, transb, m, nb, k, alpha, a, lda, bsub, ldb, beta, c + j0 * ldc, ldc);
  });
}

}  // namespace dnc::blas
