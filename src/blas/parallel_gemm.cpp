#include "blas/parallel_gemm.hpp"

#include <algorithm>

#include "blas/simd/kernels.hpp"
#include "runtime/scheduler.hpp"

namespace dnc::blas {

template <typename Real>
void parallel_gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
                   const Real* a, index_t lda, const Real* b, index_t ldb, Real beta, Real* c,
                   index_t ldc, int max_slabs) {
  if (m <= 0 || n <= 0) return;
  // Column slabs of C are disjoint, so each subtask runs an independent
  // sequential GEMM on its slab; the spawn-and-wait is the join. Each
  // worker packs into its own thread-local workspace (see gemm.cpp), so
  // the slabs share nothing but the read-only A and B panels. Slab
  // boundaries need no tile alignment because partial micro-tiles are
  // handled by the packed zero-padding.
  rt::Scheduler* sched = rt::Scheduler::current();
  if (max_slabs <= 0) max_slabs = sched != nullptr ? sched->threads() : 1;
  const index_t nslabs = std::min<index_t>(n, max_slabs);
  if (nslabs <= 1 || sched == nullptr) {
    gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  const index_t chunk = (n + nslabs - 1) / nslabs;
  sched->spawn_and_wait("slab", nslabs, [&](long s) {
    const index_t j0 = static_cast<index_t>(s) * chunk;
    const index_t j1 = std::min(j0 + chunk, n);
    if (j0 >= j1) return;
    const Real* bsub = (transb == Trans::No) ? b + j0 * ldb : b + j0;
    gemm(transa, transb, m, j1 - j0, k, alpha, a, lda, bsub, ldb, beta, c + j0 * ldc, ldc);
  });
}

template void parallel_gemm<double>(Trans, Trans, index_t, index_t, index_t, double,
                                    const double*, index_t, const double*, index_t, double,
                                    double*, index_t, int);
template void parallel_gemm<float>(Trans, Trans, index_t, index_t, index_t, float,
                                   const float*, index_t, const float*, index_t, float, float*,
                                   index_t, int);

}  // namespace dnc::blas
