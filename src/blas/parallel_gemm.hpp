// Runtime-backed multithreaded GEMM.
//
// This models the "multithreaded BLAS" execution mode of MKL that the
// paper's LAPACK baseline relies on: one logical GEMM fans out across
// column slabs and joins at the end. Unlike the original fork/join
// implementation it owns no threads -- called from inside a runtime task
// it spawns child subtasks onto the caller's rt::Scheduler (help-first
// join, so the calling core keeps working), and called from a plain thread
// it degrades to the sequential gemm(). The task-flow solver proper never
// calls this; it calls the sequential gemm() from inside independent tasks.
#pragma once

#include "blas/gemm.hpp"

namespace dnc::blas {

/// Same contract as gemm(), parallelised over column slabs of C.
/// `max_slabs` caps the fan-out (0 = number of scheduler workers, the
/// fork/join-BLAS model; larger values expose more stealable parallelism).
template <typename Real>
void parallel_gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
                   const Real* a, index_t lda, const Real* b, index_t ldb, Real beta, Real* c,
                   index_t ldc, int max_slabs = 0);

}  // namespace dnc::blas
