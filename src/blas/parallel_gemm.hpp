// Fork/join multithreaded GEMM.
//
// This models the "multithreaded BLAS" execution mode of MKL that the
// paper's LAPACK baseline relies on: one logical GEMM forks across a thread
// pool by column slabs and joins at the end. The task-flow solver never
// calls this; it calls the sequential gemm() from inside independent tasks.
#pragma once

#include "blas/gemm.hpp"
#include "common/thread_pool.hpp"

namespace dnc::blas {

/// Same contract as gemm(), parallelised over column slabs of C.
template <typename Real>
void parallel_gemm(ThreadPool& pool, Trans transa, Trans transb, index_t m, index_t n,
                   index_t k, Real alpha, const Real* a, index_t lda, const Real* b,
                   index_t ldb, Real beta, Real* c, index_t ldc);

}  // namespace dnc::blas
