#include "blas/aux.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/machine.hpp"

namespace dnc::blas {

void lacpy(index_t m, index_t n, const double* a, index_t lda, double* b, index_t ldb) {
  if (lda == m && ldb == m) {
    std::memcpy(b, a, static_cast<std::size_t>(m) * n * sizeof(double));
    return;
  }
  for (index_t j = 0; j < n; ++j)
    std::memcpy(b + j * ldb, a + j * lda, static_cast<std::size_t>(m) * sizeof(double));
}

void laset(index_t m, index_t n, double alpha, double beta, double* a, index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    double* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) col[i] = alpha;
    if (j < m) col[j] = beta;
  }
}

void lascl(index_t m, index_t n, double cfrom, double cto, double* a, index_t lda) {
  // Multiply by cto/cfrom without over/underflowing intermediates, exactly
  // the dlascl staging: repeatedly apply bignum/smlnum-bounded factors.
  const double smlnum = dnc::lamch_safmin();
  const double bignum = 1.0 / smlnum;
  double cfromc = cfrom, ctoc = cto;
  bool done = false;
  while (!done) {
    const double cfrom1 = cfromc * smlnum;
    double mul;
    if (cfrom1 == cfromc) {
      // cfromc is inf or zero-ish; the direct ratio is exact (inf/nan cases
      // propagate as in LAPACK).
      mul = ctoc / cfromc;
      done = true;
    } else {
      const double cto1 = ctoc / bignum;
      if (cto1 == ctoc) {
        mul = ctoc;
        done = true;
        cfromc = 1.0;
      } else if (std::fabs(cfrom1) > std::fabs(ctoc) && ctoc != 0.0) {
        mul = smlnum;
        cfromc = cfrom1;
      } else if (std::fabs(cto1) > std::fabs(cfromc)) {
        mul = bignum;
        ctoc = cto1;
      } else {
        mul = ctoc / cfromc;
        done = true;
      }
    }
    for (index_t j = 0; j < n; ++j) {
      double* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) col[i] *= mul;
    }
  }
}

double lange_max(index_t m, index_t n, const double* a, index_t lda) {
  double v = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) v = std::max(v, std::fabs(col[i]));
  }
  return v;
}

double lange_fro(index_t m, index_t n, const double* a, index_t lda) {
  double scale = 0.0, ssq = 1.0;
  for (index_t j = 0; j < n; ++j) {
    const double* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) {
      const double x = std::fabs(col[i]);
      if (x == 0.0) continue;
      if (scale < x) {
        const double r = scale / x;
        ssq = 1.0 + ssq * r * r;
        scale = x;
      } else {
        const double r = x / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double lange_one(index_t m, index_t n, const double* a, index_t lda) {
  double v = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double* col = a + j * lda;
    double s = 0.0;
    for (index_t i = 0; i < m; ++i) s += std::fabs(col[i]);
    v = std::max(v, s);
  }
  return v;
}

double lanst_max(index_t n, const double* d, const double* e) {
  double v = 0.0;
  for (index_t i = 0; i < n; ++i) v = std::max(v, std::fabs(d[i]));
  for (index_t i = 0; i + 1 < n; ++i) v = std::max(v, std::fabs(e[i]));
  return v;
}

double lanst_one(index_t n, const double* d, const double* e) {
  if (n == 0) return 0.0;
  if (n == 1) return std::fabs(d[0]);
  double v = std::max(std::fabs(d[0]) + std::fabs(e[0]),
                      std::fabs(d[n - 1]) + std::fabs(e[n - 2]));
  for (index_t i = 1; i + 1 < n; ++i)
    v = std::max(v, std::fabs(d[i]) + std::fabs(e[i - 1]) + std::fabs(e[i]));
  return v;
}

}  // namespace dnc::blas
