#include "blas/aux.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/real_traits.hpp"

namespace dnc::blas {

template <typename Real>
void lacpy(index_t m, index_t n, const Real* a, index_t lda, Real* b, index_t ldb) {
  if (lda == m && ldb == m) {
    std::memcpy(b, a, static_cast<std::size_t>(m) * n * sizeof(Real));
    return;
  }
  for (index_t j = 0; j < n; ++j)
    std::memcpy(b + j * ldb, a + j * lda, static_cast<std::size_t>(m) * sizeof(Real));
}

template <typename Real>
void laset(index_t m, index_t n, Real alpha, Real beta, Real* a, index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    Real* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) col[i] = alpha;
    if (j < m) col[j] = beta;
  }
}

template <typename Real>
void lascl(index_t m, index_t n, Real cfrom, Real cto, Real* a, index_t lda) {
  // Multiply by cto/cfrom without over/underflowing intermediates, exactly
  // the dlascl staging: repeatedly apply bignum/smlnum-bounded factors.
  const Real smlnum = real_traits<Real>::safmin();
  const Real bignum = Real(1) / smlnum;
  Real cfromc = cfrom, ctoc = cto;
  bool done = false;
  while (!done) {
    const Real cfrom1 = cfromc * smlnum;
    Real mul;
    if (cfrom1 == cfromc) {
      // cfromc is inf or zero-ish; the direct ratio is exact (inf/nan cases
      // propagate as in LAPACK).
      mul = ctoc / cfromc;
      done = true;
    } else {
      const Real cto1 = ctoc / bignum;
      if (cto1 == ctoc) {
        mul = ctoc;
        done = true;
        cfromc = Real(1);
      } else if (std::fabs(cfrom1) > std::fabs(ctoc) && ctoc != Real(0)) {
        mul = smlnum;
        cfromc = cfrom1;
      } else if (std::fabs(cto1) > std::fabs(cfromc)) {
        mul = bignum;
        ctoc = cto1;
      } else {
        mul = ctoc / cfromc;
        done = true;
      }
    }
    for (index_t j = 0; j < n; ++j) {
      Real* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) col[i] *= mul;
    }
  }
}

template <typename Real>
Real lange_max(index_t m, index_t n, const Real* a, index_t lda) {
  Real v = Real(0);
  for (index_t j = 0; j < n; ++j) {
    const Real* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) v = std::max(v, std::fabs(col[i]));
  }
  return v;
}

template <typename Real>
Real lange_fro(index_t m, index_t n, const Real* a, index_t lda) {
  Real scale = Real(0), ssq = Real(1);
  for (index_t j = 0; j < n; ++j) {
    const Real* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) {
      const Real x = std::fabs(col[i]);
      if (x == Real(0)) continue;
      if (scale < x) {
        const Real r = scale / x;
        ssq = Real(1) + ssq * r * r;
        scale = x;
      } else {
        const Real r = x / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename Real>
Real lange_one(index_t m, index_t n, const Real* a, index_t lda) {
  Real v = Real(0);
  for (index_t j = 0; j < n; ++j) {
    const Real* col = a + j * lda;
    Real s = Real(0);
    for (index_t i = 0; i < m; ++i) s += std::fabs(col[i]);
    v = std::max(v, s);
  }
  return v;
}

template <typename Real>
Real lanst_max(index_t n, const Real* d, const Real* e) {
  Real v = Real(0);
  for (index_t i = 0; i < n; ++i) v = std::max(v, std::fabs(d[i]));
  for (index_t i = 0; i + 1 < n; ++i) v = std::max(v, std::fabs(e[i]));
  return v;
}

template <typename Real>
Real lanst_one(index_t n, const Real* d, const Real* e) {
  if (n == 0) return Real(0);
  if (n == 1) return std::fabs(d[0]);
  Real v = std::max(std::fabs(d[0]) + std::fabs(e[0]),
                    std::fabs(d[n - 1]) + std::fabs(e[n - 2]));
  for (index_t i = 1; i + 1 < n; ++i)
    v = std::max(v, std::fabs(d[i]) + std::fabs(e[i - 1]) + std::fabs(e[i]));
  return v;
}

#define DNC_INSTANTIATE_AUX(Real)                                                           \
  template void lacpy<Real>(index_t, index_t, const Real*, index_t, Real*, index_t);        \
  template void laset<Real>(index_t, index_t, Real, Real, Real*, index_t);                  \
  template void lascl<Real>(index_t, index_t, Real, Real, Real*, index_t);                  \
  template Real lange_max<Real>(index_t, index_t, const Real*, index_t);                    \
  template Real lange_fro<Real>(index_t, index_t, const Real*, index_t);                    \
  template Real lange_one<Real>(index_t, index_t, const Real*, index_t);                    \
  template Real lanst_max<Real>(index_t, const Real*, const Real*);                         \
  template Real lanst_one<Real>(index_t, const Real*, const Real*)

DNC_INSTANTIATE_AUX(double);
DNC_INSTANTIATE_AUX(float);

#undef DNC_INSTANTIATE_AUX

}  // namespace dnc::blas
