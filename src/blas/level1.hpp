// BLAS level-1 vector kernels (double precision, unit behaviour of the
// reference BLAS, contiguous and strided variants where the eigensolvers
// need them).
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

/// y += alpha * x
void axpy(index_t n, double alpha, const double* x, double* y);
void axpy(index_t n, double alpha, const double* x, index_t incx, double* y, index_t incy);

/// x *= alpha
void scal(index_t n, double alpha, double* x);
void scal(index_t n, double alpha, double* x, index_t incx);

/// dot product
double dot(index_t n, const double* x, const double* y);
double dot(index_t n, const double* x, index_t incx, const double* y, index_t incy);

/// Euclidean norm, overflow-safe (dnrm2 two-pass scaling algorithm).
double nrm2(index_t n, const double* x);
double nrm2(index_t n, const double* x, index_t incx);

/// y = x
void copy(index_t n, const double* x, double* y);
void copy(index_t n, const double* x, index_t incx, double* y, index_t incy);

/// x <-> y
void swap(index_t n, double* x, double* y);

/// sum of absolute values
double asum(index_t n, const double* x);

/// index of max |x_i| (0-based); -1 for n <= 0.
index_t iamax(index_t n, const double* x);

/// Apply plane rotation: [x; y] <- [c s; -s c] [x; y] (drot).
void rot(index_t n, double* x, double* y, double c, double s);
void rot(index_t n, double* x, index_t incx, double* y, index_t incy, double c, double s);

}  // namespace dnc::blas
