// BLAS level-1 vector kernels (unit behaviour of the reference BLAS,
// contiguous and strided variants where the eigensolvers need them).
// Everything is templated on the element type Real and instantiated for
// double and float; double call sites deduce Real and compile unchanged.
#pragma once

#include "common/matrix.hpp"

namespace dnc::blas {

/// y += alpha * x
template <typename Real>
void axpy(index_t n, Real alpha, const Real* x, Real* y);
template <typename Real>
void axpy(index_t n, Real alpha, const Real* x, index_t incx, Real* y, index_t incy);

/// x *= alpha
template <typename Real>
void scal(index_t n, Real alpha, Real* x);
template <typename Real>
void scal(index_t n, Real alpha, Real* x, index_t incx);

/// dot product
template <typename Real>
Real dot(index_t n, const Real* x, const Real* y);
template <typename Real>
Real dot(index_t n, const Real* x, index_t incx, const Real* y, index_t incy);

/// Euclidean norm, overflow-safe (dnrm2 two-pass scaling algorithm).
template <typename Real>
Real nrm2(index_t n, const Real* x);
template <typename Real>
Real nrm2(index_t n, const Real* x, index_t incx);

/// y = x
template <typename Real>
void copy(index_t n, const Real* x, Real* y);
template <typename Real>
void copy(index_t n, const Real* x, index_t incx, Real* y, index_t incy);

/// x <-> y
template <typename Real>
void swap(index_t n, Real* x, Real* y);

/// sum of absolute values
template <typename Real>
Real asum(index_t n, const Real* x);

/// index of max |x_i| (0-based); -1 for n <= 0.
template <typename Real>
index_t iamax(index_t n, const Real* x);

/// Apply plane rotation: [x; y] <- [c s; -s c] [x; y] (drot).
template <typename Real>
void rot(index_t n, Real* x, Real* y, Real c, Real s);
template <typename Real>
void rot(index_t n, Real* x, index_t incx, Real* y, index_t incy, Real c, Real s);

}  // namespace dnc::blas
