#include "blas/level2.hpp"

namespace dnc::blas {

template <typename Real>
void gemv(Trans trans, index_t m, index_t n, Real alpha, const Real* a, index_t lda,
          const Real* x, Real beta, Real* y) {
  if (trans == Trans::No) {
    if (beta == Real(0)) {
      for (index_t i = 0; i < m; ++i) y[i] = Real(0);
    } else if (beta != Real(1)) {
      for (index_t i = 0; i < m; ++i) y[i] *= beta;
    }
    // Column-sweep order keeps the A accesses stride-1.
    for (index_t j = 0; j < n; ++j) {
      const Real t = alpha * x[j];
      if (t == Real(0)) continue;
      const Real* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) y[i] += t * col[i];
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const Real* col = a + j * lda;
      Real s = Real(0);
      for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] = alpha * s + (beta == Real(0) ? Real(0) : beta * y[j]);
    }
  }
}

template <typename Real>
void ger(index_t m, index_t n, Real alpha, const Real* x, const Real* y, Real* a,
         index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    const Real t = alpha * y[j];
    if (t == Real(0)) continue;
    Real* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) col[i] += t * x[i];
  }
}

template <typename Real>
void symv_lower(index_t n, Real alpha, const Real* a, index_t lda, const Real* x, Real beta,
                Real* y) {
  if (beta == Real(0)) {
    for (index_t i = 0; i < n; ++i) y[i] = Real(0);
  } else if (beta != Real(1)) {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
  for (index_t j = 0; j < n; ++j) {
    const Real* col = a + j * lda;
    const Real xj = alpha * x[j];
    Real s = Real(0);
    y[j] += xj * col[j];
    for (index_t i = j + 1; i < n; ++i) {
      y[i] += xj * col[i];  // A(i,j) * x(j)
      s += col[i] * x[i];   // A(j,i) = A(i,j) contribution
    }
    y[j] += alpha * s;
  }
}

template <typename Real>
void syr2_lower(index_t n, Real alpha, const Real* x, const Real* y, Real* a, index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    const Real tx = alpha * y[j];
    const Real ty = alpha * x[j];
    Real* col = a + j * lda;
    for (index_t i = j; i < n; ++i) col[i] += x[i] * tx + y[i] * ty;
  }
}

#define DNC_INSTANTIATE_LEVEL2(Real)                                                        \
  template void gemv<Real>(Trans, index_t, index_t, Real, const Real*, index_t, const Real*, \
                           Real, Real*);                                                    \
  template void ger<Real>(index_t, index_t, Real, const Real*, const Real*, Real*, index_t); \
  template void symv_lower<Real>(index_t, Real, const Real*, index_t, const Real*, Real,    \
                                 Real*);                                                    \
  template void syr2_lower<Real>(index_t, Real, const Real*, const Real*, Real*, index_t)

DNC_INSTANTIATE_LEVEL2(double);
DNC_INSTANTIATE_LEVEL2(float);

#undef DNC_INSTANTIATE_LEVEL2

}  // namespace dnc::blas
