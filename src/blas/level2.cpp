#include "blas/level2.hpp"

namespace dnc::blas {

void gemv(Trans trans, index_t m, index_t n, double alpha, const double* a, index_t lda,
          const double* x, double beta, double* y) {
  if (trans == Trans::No) {
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) y[i] = 0.0;
    } else if (beta != 1.0) {
      for (index_t i = 0; i < m; ++i) y[i] *= beta;
    }
    // Column-sweep order keeps the A accesses stride-1.
    for (index_t j = 0; j < n; ++j) {
      const double t = alpha * x[j];
      if (t == 0.0) continue;
      const double* col = a + j * lda;
      for (index_t i = 0; i < m; ++i) y[i] += t * col[i];
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const double* col = a + j * lda;
      double s = 0.0;
      for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] = alpha * s + (beta == 0.0 ? 0.0 : beta * y[j]);
    }
  }
}

void ger(index_t m, index_t n, double alpha, const double* x, const double* y, double* a,
         index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    const double t = alpha * y[j];
    if (t == 0.0) continue;
    double* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) col[i] += t * x[i];
  }
}

void symv_lower(index_t n, double alpha, const double* a, index_t lda, const double* x,
                double beta, double* y) {
  if (beta == 0.0) {
    for (index_t i = 0; i < n; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (index_t i = 0; i < n; ++i) y[i] *= beta;
  }
  for (index_t j = 0; j < n; ++j) {
    const double* col = a + j * lda;
    const double xj = alpha * x[j];
    double s = 0.0;
    y[j] += xj * col[j];
    for (index_t i = j + 1; i < n; ++i) {
      y[i] += xj * col[i];       // A(i,j) * x(j)
      s += col[i] * x[i];        // A(j,i) = A(i,j) contribution
    }
    y[j] += alpha * s;
  }
}

void syr2_lower(index_t n, double alpha, const double* x, const double* y, double* a,
                index_t lda) {
  for (index_t j = 0; j < n; ++j) {
    const double tx = alpha * y[j];
    const double ty = alpha * x[j];
    double* col = a + j * lda;
    for (index_t i = j; i < n; ++i) col[i] += x[i] * tx + y[i] * ty;
  }
}

}  // namespace dnc::blas
