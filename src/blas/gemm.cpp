#include "blas/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "blas/simd/kernels.hpp"
#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "obs/counters.hpp"

namespace dnc::blas {
namespace {

// Thread-local packing workspaces: each thread (main, or a runtime worker
// executing an UpdateVect task or a parallel_gemm slab subtask) reuses one
// aligned arena across all its GEMM calls, so
// the thousands of small panel products in a merge tree never touch malloc
// after warm-up. Capacity is tracked in bytes, so the same two arenas serve
// the double and float instantiations.
thread_local AlignedBuffer tls_apack;
thread_local AlignedBuffer tls_bpack;

}  // namespace

template <typename Real>
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
                    const Real* a, index_t lda, const Real* b, index_t ldb, Real beta,
                    Real* c, index_t ldc) {
  auto at = [](const Real* x, index_t ldx, Trans t, index_t i, index_t j) {
    return t == Trans::No ? x[i + j * ldx] : x[j + i * ldx];
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      Real s = Real(0);
      for (index_t p = 0; p < k; ++p) s += at(a, lda, transa, i, p) * at(b, ldb, transb, p, j);
      Real& cij = c[i + j * ldc];
      cij = alpha * s + (beta == Real(0) ? Real(0) : beta * cij);
    }
  }
}

template <typename Real>
void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
          const Real* a, index_t lda, const Real* b, index_t ldb, Real beta, Real* c,
          index_t ldc) {
  if (m <= 0 || n <= 0) return;
  DNC_ASSERT(ldc >= m);
  // Quick returns and the degenerate inner dimension reduce to a scale of C.
  if (k <= 0 || alpha == Real(0)) {
    for (index_t j = 0; j < n; ++j) {
      Real* col = c + j * ldc;
      if (beta == Real(0))
        std::memset(col, 0, static_cast<std::size_t>(m) * sizeof(Real));
      else if (beta != Real(1))
        for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
    return;
  }

  obs::bump(obs::kGemmCalls);
  obs::bump(obs::kGemmFlops, 2ull * static_cast<std::uint64_t>(m) * n * k);

  const simd::KernelTableT<Real>& kt = simd::kernels_t<Real>();

  // Small problems are served by the reference loop: the packing overhead
  // dominates below roughly the microtile volume (lower for the SIMD
  // tables, whose packed path amortises sooner).
  if (m * n * k < kt.gemm_small_volume) {
    gemm_reference(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }

  // Microtile shape: 8x4 by default; short-wide products (m a sliver, n
  // broad -- e.g. the tail panels of a heavily deflated UpdateVect) map
  // better onto 4x8.
  index_t MR = 8, NR = 4;
  simd::MicrokernelFnT<Real> mk = kt.mk8x4;
  if (m <= 4 && n >= 8) {
    MR = 4;
    NR = 8;
    mk = kt.mk4x8;
  }

  const bool ta = (transa == Trans::Yes);
  const bool tb = (transb == Trans::Yes);

  const GemmBlocking blk;
  const index_t mc = std::min(blk.mc, m);
  const index_t kcap = std::min(blk.kc, k);
  const index_t ncap = std::min(blk.nc, n);

  Real* apack =
      tls_apack.reserve<Real>(static_cast<std::size_t>(((mc + MR - 1) / MR) * MR) * kcap);
  Real* bpack =
      tls_bpack.reserve<Real>(static_cast<std::size_t>(((ncap + NR - 1) / NR) * NR) * kcap);

  std::uint64_t packed_elems = 0;
  for (index_t jc = 0; jc < n; jc += ncap) {
    const index_t nb = std::min(ncap, n - jc);
    for (index_t pc = 0; pc < k; pc += kcap) {
      const index_t kb = std::min(kcap, k - pc);
      const Real beta_eff = (pc == 0) ? beta : Real(1);
      // Pack the B panel once per (jc, pc).
      const index_t ntiles = (nb + NR - 1) / NR;
      for (index_t jt = 0; jt < ntiles; ++jt) {
        const index_t j0 = jc + jt * NR;
        kt.pack_b(b, ldb, tb, pc, kb, j0, std::min(NR, n - j0), bpack + jt * NR * kb, NR);
      }
      packed_elems += static_cast<std::uint64_t>(ntiles) * NR * kb;
      for (index_t ic = 0; ic < m; ic += mc) {
        const index_t mb = std::min(mc, m - ic);
        const index_t mtiles = (mb + MR - 1) / MR;
        for (index_t it = 0; it < mtiles; ++it) {
          const index_t i0 = ic + it * MR;
          kt.pack_a(a, lda, ta, i0, std::min(MR, m - i0), pc, kb, apack + it * MR * kb, MR);
        }
        packed_elems += static_cast<std::uint64_t>(mtiles) * MR * kb;
        // Macro loop over microtiles.
        for (index_t jt = 0; jt < ntiles; ++jt) {
          const index_t j0 = jc + jt * NR;
          const index_t nr = std::min(NR, n - j0);
          for (index_t it = 0; it < mtiles; ++it) {
            const index_t i0 = ic + it * MR;
            const index_t mr = std::min(MR, m - i0);
            mk(kb, apack + it * MR * kb, bpack + jt * NR * kb, alpha, beta_eff,
               c + i0 + j0 * ldc, ldc, mr, nr);
          }
        }
      }
    }
  }
  // Byte accounting is per-precision: a float panel moves half the memory.
  obs::bump(obs::kGemmPackedBytes, packed_elems * sizeof(Real));
}

#define DNC_INSTANTIATE_GEMM(Real)                                                          \
  template void gemm<Real>(Trans, Trans, index_t, index_t, index_t, Real, const Real*,      \
                           index_t, const Real*, index_t, Real, Real*, index_t);            \
  template void gemm_reference<Real>(Trans, Trans, index_t, index_t, index_t, Real,         \
                                     const Real*, index_t, const Real*, index_t, Real,      \
                                     Real*, index_t)

DNC_INSTANTIATE_GEMM(double);
DNC_INSTANTIATE_GEMM(float);

#undef DNC_INSTANTIATE_GEMM

}  // namespace dnc::blas
