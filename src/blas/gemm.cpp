#include "blas/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace dnc::blas {
namespace {

constexpr index_t kMR = 8;
constexpr index_t kNR = 4;

// Element accessor honouring the transpose flag: returns op(A)(i, j).
inline double at(const double* a, index_t lda, Trans t, index_t i, index_t j) {
  return t == Trans::No ? a[i + j * lda] : a[j + i * lda];
}

// Packs a kMR-row slice of op(A) (rows [i0,i0+mr), cols [p0,p0+kb)) into
// `dst` in microkernel order: for each p, kMR contiguous row entries
// (zero-padded when mr < kMR).
void pack_a(const double* a, index_t lda, Trans t, index_t i0, index_t mr, index_t p0,
            index_t kb, double* dst) {
  if (t == Trans::No && mr == kMR) {
    for (index_t p = 0; p < kb; ++p) {
      const double* src = a + i0 + (p0 + p) * lda;
      for (index_t i = 0; i < kMR; ++i) dst[p * kMR + i] = src[i];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < kMR; ++i)
      dst[p * kMR + i] = (i < mr) ? at(a, lda, t, i0 + i, p0 + p) : 0.0;
  }
}

// Packs a kNR-column slice of op(B) (rows [p0,p0+kb), cols [j0,j0+nr)) into
// `dst`: for each p, kNR contiguous column entries (zero-padded).
void pack_b(const double* b, index_t ldb, Trans t, index_t p0, index_t kb, index_t j0,
            index_t nr, double* dst) {
  if (t == Trans::No && nr == kNR) {
    for (index_t p = 0; p < kb; ++p) {
      for (index_t j = 0; j < kNR; ++j) dst[p * kNR + j] = b[(p0 + p) + (j0 + j) * ldb];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < kNR; ++j)
      dst[p * kNR + j] = (j < nr) ? at(b, ldb, t, p0 + p, j0 + j) : 0.0;
  }
}

// kMR x kNR register microkernel over packed panels. acc is kept in local
// array so the compiler maps it to vector registers.
void microkernel(index_t kb, const double* ap, const double* bp, double acc[kMR][kNR]) {
  for (index_t i = 0; i < kMR; ++i)
    for (index_t j = 0; j < kNR; ++j) acc[i][j] = 0.0;
  for (index_t p = 0; p < kb; ++p) {
    const double* arow = ap + p * kMR;
    const double* brow = bp + p * kNR;
    for (index_t j = 0; j < kNR; ++j) {
      const double bv = brow[j];
      for (index_t i = 0; i < kMR; ++i) acc[i][j] += arow[i] * bv;
    }
  }
}

}  // namespace

void gemm_reference(Trans transa, Trans transb, index_t m, index_t n, index_t k, double alpha,
                    const double* a, index_t lda, const double* b, index_t ldb, double beta,
                    double* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) s += at(a, lda, transa, i, p) * at(b, ldb, transb, p, j);
      double& cij = c[i + j * ldc];
      cij = alpha * s + (beta == 0.0 ? 0.0 : beta * cij);
    }
  }
}

void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc) {
  if (m <= 0 || n <= 0) return;
  DNC_ASSERT(ldc >= m);
  // Quick returns and the degenerate inner dimension reduce to a scale of C.
  if (k <= 0 || alpha == 0.0) {
    for (index_t j = 0; j < n; ++j) {
      double* col = c + j * ldc;
      if (beta == 0.0)
        std::memset(col, 0, static_cast<std::size_t>(m) * sizeof(double));
      else if (beta != 1.0)
        for (index_t i = 0; i < m; ++i) col[i] *= beta;
    }
    return;
  }
  // Small problems are served by the reference loop: the packing overhead
  // dominates below roughly the microtile volume.
  if (m * n * k < 32 * 32 * 32) {
    gemm_reference(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }

  const GemmBlocking blk;
  const index_t mc = std::min(blk.mc, m);
  const index_t kcap = std::min(blk.kc, k);
  const index_t ncap = std::min(blk.nc, n);

  std::vector<double> apack(static_cast<std::size_t>(((mc + kMR - 1) / kMR) * kMR) * kcap);
  std::vector<double> bpack(static_cast<std::size_t>(((ncap + kNR - 1) / kNR) * kNR) * kcap);

  for (index_t jc = 0; jc < n; jc += ncap) {
    const index_t nb = std::min(ncap, n - jc);
    for (index_t pc = 0; pc < k; pc += kcap) {
      const index_t kb = std::min(kcap, k - pc);
      const double beta_eff = (pc == 0) ? beta : 1.0;
      // Pack the B panel once per (jc, pc).
      const index_t ntiles = (nb + kNR - 1) / kNR;
      for (index_t jt = 0; jt < ntiles; ++jt) {
        const index_t j0 = jc + jt * kNR;
        pack_b(b, ldb, transb, pc, kb, j0, std::min(kNR, n - j0), bpack.data() + jt * kNR * kb);
      }
      for (index_t ic = 0; ic < m; ic += mc) {
        const index_t mb = std::min(mc, m - ic);
        const index_t mtiles = (mb + kMR - 1) / kMR;
        for (index_t it = 0; it < mtiles; ++it) {
          const index_t i0 = ic + it * kMR;
          pack_a(a, lda, transa, i0, std::min(kMR, m - i0), pc, kb,
                 apack.data() + it * kMR * kb);
        }
        // Macro loop over microtiles.
        for (index_t jt = 0; jt < ntiles; ++jt) {
          const index_t j0 = jc + jt * kNR;
          const index_t nr = std::min(kNR, n - j0);
          for (index_t it = 0; it < mtiles; ++it) {
            const index_t i0 = ic + it * kMR;
            const index_t mr = std::min(kMR, m - i0);
            double acc[kMR][kNR];
            microkernel(kb, apack.data() + it * kMR * kb, bpack.data() + jt * kNR * kb, acc);
            for (index_t j = 0; j < nr; ++j) {
              double* col = c + i0 + (j0 + j) * ldc;
              if (beta_eff == 0.0) {
                for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j];
              } else if (beta_eff == 1.0) {
                for (index_t i = 0; i < mr; ++i) col[i] += alpha * acc[i][j];
              } else {
                for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j] + beta_eff * col[i];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace dnc::blas
