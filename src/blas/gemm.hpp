// General matrix-matrix multiply, C = alpha*op(A)*op(B) + beta*C.
//
// The implementation is the classic three-level cache-blocked GEMM
// (Goto/BLIS structure): panels of B are packed into a KC x NC buffer,
// blocks of A into an MC x KC buffer, and an MR x NR register microkernel
// does the inner product through the active simd::KernelTableT<Real>.
// The eigensolver's dominant cost -- the UpdateVect task, V = Vtilde * X --
// runs through this kernel, exactly as the paper's implementation runs
// through sequential MKL GEMM inside each task.
//
// Templated on the element type Real and instantiated for double and
// float; the fp32 instantiation is the core of the DNC_PREC=f32 fast path
// (8-lane AVX2 microkernels, half the packed-panel footprint).
#pragma once

#include "blas/level2.hpp"
#include "common/matrix.hpp"

namespace dnc::blas {

/// Blocking parameters; exposed so benchmarks can explore them.
struct GemmBlocking {
  index_t mc = 128;
  index_t kc = 256;
  index_t nc = 1024;
};

/// C (m x n) = alpha * op(A) * op(B) + beta * C.
/// op(A) is m x k, op(B) is k x n. All matrices column-major.
template <typename Real>
void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
          const Real* a, index_t lda, const Real* b, index_t ldb, Real beta, Real* c,
          index_t ldc);

/// Triple-loop reference used by tests to validate the blocked kernel.
template <typename Real>
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n, index_t k, Real alpha,
                    const Real* a, index_t lda, const Real* b, index_t ldb, Real beta,
                    Real* c, index_t ldc);

}  // namespace dnc::blas
