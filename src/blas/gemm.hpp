// General matrix-matrix multiply, C = alpha*op(A)*op(B) + beta*C.
//
// The implementation is the classic three-level cache-blocked GEMM
// (Goto/BLIS structure): panels of B are packed into a KC x NC buffer,
// blocks of A into an MC x KC buffer, and an MR x NR register microkernel
// (plain C, written so GCC auto-vectorizes it) does the inner product.
// The eigensolver's dominant cost -- the UpdateVect task, V = Vtilde * X --
// runs through this kernel, exactly as the paper's implementation runs
// through sequential MKL GEMM inside each task.
#pragma once

#include "blas/level2.hpp"
#include "common/matrix.hpp"

namespace dnc::blas {

/// Blocking parameters; exposed so benchmarks can explore them.
struct GemmBlocking {
  index_t mc = 128;
  index_t kc = 256;
  index_t nc = 1024;
};

/// C (m x n) = alpha * op(A) * op(B) + beta * C.
/// op(A) is m x k, op(B) is k x n. All matrices column-major.
void gemm(Trans transa, Trans transb, index_t m, index_t n, index_t k, double alpha,
          const double* a, index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc);

/// Triple-loop reference used by tests to validate the blocked kernel.
void gemm_reference(Trans transa, Trans transb, index_t m, index_t n, index_t k, double alpha,
                    const double* a, index_t lda, const double* b, index_t ldb, double beta,
                    double* c, index_t ldc);

}  // namespace dnc::blas
