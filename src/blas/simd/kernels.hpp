// SIMD kernel layer: one table of function pointers per instruction set,
// selected once at runtime.
//
// Layout of the layer:
//   kernels_scalar.cpp   portable C++ implementations (always built; also
//                        the reference the SIMD paths are tested against)
//   kernels_sse2.cpp     128-bit double vectors      (built when the
//                        toolchain targets x86 and DNC_ENABLE_SIMD is ON)
//   kernels_avx2.cpp     256-bit double vectors + FMA (same condition, and
//                        compiled with -mavx2 -mfma for this file only)
//   dispatch.cpp         runtime selection: hardware probe (cpuid) clamped
//                        by the DNC_SIMD env var ("scalar"|"sse2"|"avx2")
//
// Callers (gemm.cpp, level1.cpp, lapack/laed4.cpp) fetch the active table
// with kernels() and call through it; the indirection is one predictable
// load per kernel invocation, negligible against the vector loops behind
// it. Keeping every ISA's table linked in (rather than ifdef-ing call
// sites) is what lets one binary run the scalar, SSE2 and AVX2 paths --
// tests compare them pairwise in-process, and CI re-runs the suites under
// DNC_SIMD=scalar.
//
// Numerical note: the AVX2 kernels use FMA and block-wise summation, so
// dot/sumsq/GEMM/laed4 results may differ from the scalar path by a few
// ulps (usually they are *more* accurate -- fewer roundings). Tests and
// callers must not expect bitwise equality across tables.
#pragma once

#include "common/cpu_features.hpp"
#include "common/matrix.hpp"

namespace dnc::blas::simd {

/// GEMM microkernel over packed tiles. `ap` holds kb steps of MR contiguous
/// A-rows, `bp` kb steps of NR contiguous B-columns (zero-padded partial
/// tiles, see pack_a/pack_b). Computes acc = sum_p ap_p * bp_p^T and updates
/// the mr x nr visible corner of C: C = alpha*acc + beta*C (beta == 0 must
/// overwrite, never read, C -- callers rely on it to clear NaNs).
using MicrokernelFn = void (*)(index_t kb, const double* ap, const double* bp, double alpha,
                               double beta, double* c, index_t ldc, index_t mr, index_t nr);

/// Packs a tile-rows slice of op(A) (rows [i0,i0+mr), cols [p0,p0+kb)) into
/// microkernel order: for each p, MR contiguous row entries, zero-padded
/// when mr < MR. `trans` selects op(A) = A^T.
using PackAFn = void (*)(const double* a, index_t lda, bool trans, index_t i0, index_t mr,
                         index_t p0, index_t kb, double* dst, index_t MR);

/// Packs a tile-cols slice of op(B) (rows [p0,p0+kb), cols [j0,j0+nr)) into
/// microkernel order: for each p, NR contiguous column entries, zero-padded.
using PackBFn = void (*)(const double* b, index_t ldb, bool trans, index_t p0, index_t kb,
                         index_t j0, index_t nr, double* dst, index_t NR);

/// Secular-equation pole sums, the inner loop of every LAED4 task: for
/// j in [j0, j1) with t_j = z_j / (delta0_j - tau) accumulates
///   *w    += sum rho * z_j * t_j        (f contribution)
///   *dsum += sum rho * t_j^2            (per-side derivative)
///   *asum += sum |rho * z_j * t_j|      (error-bound magnitude sum)
using Laed4SumsFn = void (*)(index_t j0, index_t j1, const double* delta0, const double* z,
                             double rho, double tau, double* w, double* dsum, double* asum);

struct KernelTable {
  SimdIsa isa;
  const char* name;

  // --- level-3: packed GEMM microkernels and packing -------------------
  MicrokernelFn mk8x4;  ///< MR=8, NR=4 (tall tiles; the default)
  MicrokernelFn mk4x8;  ///< MR=4, NR=8 (short-wide C panels)
  PackAFn pack_a;
  PackBFn pack_b;
  /// Problems with m*n*k below this volume skip packing and run the
  /// reference triple loop; the SIMD tables set it lower because their
  /// packed path amortises sooner.
  index_t gemm_small_volume;

  // --- level-1 (contiguous; strided variants stay scalar) --------------
  void (*axpy)(index_t n, double alpha, const double* x, double* y);
  double (*dot)(index_t n, const double* x, const double* y);
  void (*scal)(index_t n, double alpha, double* x);
  void (*copy)(index_t n, const double* x, double* y);
  void (*swap)(index_t n, double* x, double* y);
  void (*rot)(index_t n, double* x, double* y, double c, double s);
  /// Plain sum of squares (no overflow scaling) -- the nrm2 fast path;
  /// level1.cpp falls back to the scaled scalar loop outside safe range.
  double (*sumsq)(index_t n, const double* x);

  // --- lapack/laed4 ----------------------------------------------------
  Laed4SumsFn laed4_sums;
};

/// The active table: hardware probe clamped by DNC_SIMD (read once, on
/// first use). Safe to call from any thread.
const KernelTable& kernels() noexcept;

/// Active instruction set (== kernels().isa).
SimdIsa active_isa() noexcept;

/// Table for a specific level, or nullptr when that level was not compiled
/// in or the hardware cannot run it. kernels_for(Scalar) never fails.
const KernelTable* kernels_for(SimdIsa isa) noexcept;

/// Forces the active table for the current process -- used by tests and
/// benchmarks to compare paths in-process. Clamped like DNC_SIMD. Restores
/// the previous table on destruction. Not for concurrent use from multiple
/// threads (tests/benches are single-threaded at override points).
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(SimdIsa isa) noexcept;
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  const KernelTable* saved_;
};

/// The scalar table (always present; the testing reference).
extern const KernelTable kScalarTable;
#if defined(DNC_HAVE_SSE2)
extern const KernelTable kSse2Table;
#endif
#if defined(DNC_HAVE_AVX2)
extern const KernelTable kAvx2Table;
#endif

}  // namespace dnc::blas::simd
