// SIMD kernel layer: one table of function pointers per (instruction set,
// precision) pair, selected once at runtime.
//
// Layout of the layer:
//   kernels_scalar.cpp   portable C++ implementations, templated on Real
//                        (always built; also the reference the SIMD paths
//                        are tested against)
//   kernels_sse2.cpp     128-bit double vectors      (built when the
//                        toolchain targets x86 and DNC_ENABLE_SIMD is ON)
//   kernels_avx2.cpp     256-bit vectors + FMA: 4-lane double and 8-lane
//                        float tables (same condition, and compiled with
//                        -mavx2 -mfma for this file only)
//   dispatch.cpp         runtime selection: hardware probe (cpuid) clamped
//                        by the DNC_SIMD env var ("scalar"|"sse2"|"avx2"),
//                        one active table per precision
//
// Callers (gemm.cpp, level1.cpp, lapack/laed4.cpp) fetch the active table
// with kernels<Real>() and call through it; the indirection is one
// predictable load per kernel invocation, negligible against the vector
// loops behind it. Keeping every ISA's table linked in (rather than
// ifdef-ing call sites) is what lets one binary run the scalar, SSE2 and
// AVX2 paths -- tests compare them pairwise in-process, and CI re-runs the
// suites under DNC_SIMD=scalar.
//
// Precision note: there is no float SSE2 table (2 lanes of extra width are
// not worth a third variant); requesting Sse2 for float falls back to the
// scalar float table. The AVX2 float kernels run 8 lanes per vector --
// twice the fp64 lane count, the core of the fp32 fast path.
//
// Numerical note: the AVX2 kernels use FMA and block-wise summation, so
// dot/sumsq/GEMM/laed4 results may differ from the scalar path by a few
// ulps (usually they are *more* accurate -- fewer roundings). Tests and
// callers must not expect bitwise equality across tables.
#pragma once

#include "common/cpu_features.hpp"
#include "common/matrix.hpp"

namespace dnc::blas::simd {

/// GEMM microkernel over packed tiles. `ap` holds kb steps of MR contiguous
/// A-rows, `bp` kb steps of NR contiguous B-columns (zero-padded partial
/// tiles, see pack_a/pack_b). Computes acc = sum_p ap_p * bp_p^T and updates
/// the mr x nr visible corner of C: C = alpha*acc + beta*C (beta == 0 must
/// overwrite, never read, C -- callers rely on it to clear NaNs).
template <typename Real>
using MicrokernelFnT = void (*)(index_t kb, const Real* ap, const Real* bp, Real alpha,
                                Real beta, Real* c, index_t ldc, index_t mr, index_t nr);

/// Packs a tile-rows slice of op(A) (rows [i0,i0+mr), cols [p0,p0+kb)) into
/// microkernel order: for each p, MR contiguous row entries, zero-padded
/// when mr < MR. `trans` selects op(A) = A^T.
template <typename Real>
using PackAFnT = void (*)(const Real* a, index_t lda, bool trans, index_t i0, index_t mr,
                          index_t p0, index_t kb, Real* dst, index_t MR);

/// Packs a tile-cols slice of op(B) (rows [p0,p0+kb), cols [j0,j0+nr)) into
/// microkernel order: for each p, NR contiguous column entries, zero-padded.
template <typename Real>
using PackBFnT = void (*)(const Real* b, index_t ldb, bool trans, index_t p0, index_t kb,
                          index_t j0, index_t nr, Real* dst, index_t NR);

/// Secular-equation pole sums, the inner loop of every LAED4 task: for
/// j in [j0, j1) with t_j = z_j / (delta0_j - tau) accumulates
///   *w    += sum rho * z_j * t_j        (f contribution)
///   *dsum += sum rho * t_j^2            (per-side derivative)
///   *asum += sum |rho * z_j * t_j|      (error-bound magnitude sum)
template <typename Real>
using Laed4SumsFnT = void (*)(index_t j0, index_t j1, const Real* delta0, const Real* z,
                              Real rho, Real tau, Real* w, Real* dsum, Real* asum);

template <typename Real>
struct KernelTableT {
  SimdIsa isa;
  const char* name;

  // --- level-3: packed GEMM microkernels and packing -------------------
  MicrokernelFnT<Real> mk8x4;  ///< MR=8, NR=4 (tall tiles; the default)
  MicrokernelFnT<Real> mk4x8;  ///< MR=4, NR=8 (short-wide C panels)
  PackAFnT<Real> pack_a;
  PackBFnT<Real> pack_b;
  /// Problems with m*n*k below this volume skip packing and run the
  /// reference triple loop; the SIMD tables set it lower because their
  /// packed path amortises sooner.
  index_t gemm_small_volume;

  // --- level-1 (contiguous; strided variants stay scalar) --------------
  void (*axpy)(index_t n, Real alpha, const Real* x, Real* y);
  Real (*dot)(index_t n, const Real* x, const Real* y);
  void (*scal)(index_t n, Real alpha, Real* x);
  void (*copy)(index_t n, const Real* x, Real* y);
  void (*swap)(index_t n, Real* x, Real* y);
  void (*rot)(index_t n, Real* x, Real* y, Real c, Real s);
  /// Plain sum of squares (no overflow scaling) -- the nrm2 fast path;
  /// level1.cpp falls back to the scaled scalar loop outside safe range.
  Real (*sumsq)(index_t n, const Real* x);

  // --- lapack/laed4 ----------------------------------------------------
  Laed4SumsFnT<Real> laed4_sums;
};

/// Historical fp64 spellings, used by the double-typed call sites.
using KernelTable = KernelTableT<double>;
using MicrokernelFn = MicrokernelFnT<double>;
using PackAFn = PackAFnT<double>;
using PackBFn = PackBFnT<double>;
using Laed4SumsFn = Laed4SumsFnT<double>;

/// The active table for a precision: hardware probe clamped by DNC_SIMD
/// (read once, on first use). Safe to call from any thread. Only the
/// double and float specialisations exist.
template <typename Real>
const KernelTableT<Real>& kernels_t() noexcept;
template <>
const KernelTableT<double>& kernels_t<double>() noexcept;
template <>
const KernelTableT<float>& kernels_t<float>() noexcept;

/// fp64 shorthand (the historical entry point).
inline const KernelTable& kernels() noexcept { return kernels_t<double>(); }

/// Active instruction set (== kernels().isa; the fp64 table's ISA, which
/// is also the float table's ISA except that float has no SSE2 tier).
SimdIsa active_isa() noexcept;

/// Table for a specific level, or nullptr when that level was not compiled
/// in or the hardware cannot run it. kernels_for_t<Real>(Scalar) never
/// fails. Float has no SSE2 table: kernels_for_t<float>(Sse2) == nullptr.
template <typename Real>
const KernelTableT<Real>* kernels_for_t(SimdIsa isa) noexcept;
template <>
const KernelTableT<double>* kernels_for_t<double>(SimdIsa isa) noexcept;
template <>
const KernelTableT<float>* kernels_for_t<float>(SimdIsa isa) noexcept;

/// fp64 shorthand.
inline const KernelTable* kernels_for(SimdIsa isa) noexcept {
  return kernels_for_t<double>(isa);
}

/// Forces the active tables (both precisions) for the current process --
/// used by tests and benchmarks to compare paths in-process. Clamped like
/// DNC_SIMD (float additionally degrades Sse2 to Scalar). Restores the
/// previous tables on destruction. Not for concurrent use from multiple
/// threads (tests/benches are single-threaded at override points).
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(SimdIsa isa) noexcept;
  ~ScopedIsaOverride();
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;

 private:
  const KernelTableT<double>* saved_f64_;
  const KernelTableT<float>* saved_f32_;
};

/// The scalar tables (always present; the testing reference).
extern const KernelTableT<double> kScalarTable;
extern const KernelTableT<float> kScalarTableF32;
#if defined(DNC_HAVE_SSE2)
extern const KernelTableT<double> kSse2Table;
#endif
#if defined(DNC_HAVE_AVX2)
extern const KernelTableT<double> kAvx2Table;
extern const KernelTableT<float> kAvx2TableF32;
#endif

}  // namespace dnc::blas::simd
