// Portable C++ kernel tables: the fallback on non-x86 targets, the
// DNC_SIMD=scalar path, and the reference every SIMD table is tested
// against. Everything is templated on the element type Real and
// instantiated for double and float; the GEMM microkernel is the seed's
// register-blocked loop (written so GCC can auto-vectorize it with the
// baseline ISA), hoisted here so scalar and SIMD paths share the
// packing/blocking driver.
#include <cmath>

#include "blas/simd/kernels.hpp"

namespace dnc::blas::simd {
namespace {

template <typename Real>
inline Real at(const Real* a, index_t lda, bool trans, index_t i, index_t j) {
  return trans ? a[j + i * lda] : a[i + j * lda];
}

// MR x NR register microkernel over packed panels; acc kept in a local
// array so the compiler maps it to registers.
template <typename Real, index_t MR, index_t NR>
void microkernel(index_t kb, const Real* ap, const Real* bp, Real alpha, Real beta, Real* c,
                 index_t ldc, index_t mr, index_t nr) {
  Real acc[MR][NR];
  for (index_t i = 0; i < MR; ++i)
    for (index_t j = 0; j < NR; ++j) acc[i][j] = Real(0);
  for (index_t p = 0; p < kb; ++p) {
    const Real* arow = ap + p * MR;
    const Real* brow = bp + p * NR;
    for (index_t j = 0; j < NR; ++j) {
      const Real bv = brow[j];
      for (index_t i = 0; i < MR; ++i) acc[i][j] += arow[i] * bv;
    }
  }
  for (index_t j = 0; j < nr; ++j) {
    Real* col = c + j * ldc;
    if (beta == Real(0)) {
      for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j];
    } else if (beta == Real(1)) {
      for (index_t i = 0; i < mr; ++i) col[i] += alpha * acc[i][j];
    } else {
      for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j] + beta * col[i];
    }
  }
}

template <typename Real>
void pack_a_scalar(const Real* a, index_t lda, bool trans, index_t i0, index_t mr, index_t p0,
                   index_t kb, Real* dst, index_t MR) {
  if (!trans && mr == MR) {
    for (index_t p = 0; p < kb; ++p) {
      const Real* src = a + i0 + (p0 + p) * lda;
      for (index_t i = 0; i < MR; ++i) dst[p * MR + i] = src[i];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < MR; ++i)
      dst[p * MR + i] = (i < mr) ? at(a, lda, trans, i0 + i, p0 + p) : Real(0);
  }
}

template <typename Real>
void pack_b_scalar(const Real* b, index_t ldb, bool trans, index_t p0, index_t kb, index_t j0,
                   index_t nr, Real* dst, index_t NR) {
  if (!trans && nr == NR) {
    for (index_t p = 0; p < kb; ++p) {
      for (index_t j = 0; j < NR; ++j) dst[p * NR + j] = b[(p0 + p) + (j0 + j) * ldb];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < NR; ++j)
      dst[p * NR + j] = (j < nr) ? at(b, ldb, trans, p0 + p, j0 + j) : Real(0);
  }
}

template <typename Real>
void axpy_scalar(index_t n, Real alpha, const Real* x, Real* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename Real>
Real dot_scalar(index_t n, const Real* x, const Real* y) {
  Real s = Real(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

template <typename Real>
void scal_scalar(index_t n, Real alpha, Real* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename Real>
void copy_scalar(index_t n, const Real* x, Real* y) {
  for (index_t i = 0; i < n; ++i) y[i] = x[i];
}

template <typename Real>
void swap_scalar(index_t n, Real* x, Real* y) {
  for (index_t i = 0; i < n; ++i) {
    const Real t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

template <typename Real>
void rot_scalar(index_t n, Real* x, Real* y, Real c, Real s) {
  for (index_t i = 0; i < n; ++i) {
    const Real xi = x[i];
    const Real yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

template <typename Real>
Real sumsq_scalar(index_t n, const Real* x) {
  Real s = Real(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

template <typename Real>
void laed4_sums_scalar(index_t j0, index_t j1, const Real* delta0, const Real* z, Real rho,
                       Real tau, Real* w, Real* dsum, Real* asum) {
  Real fw = Real(0), fd = Real(0), fa = Real(0);
  for (index_t j = j0; j < j1; ++j) {
    const Real dj = delta0[j] - tau;
    const Real t = z[j] / dj;
    const Real term = rho * z[j] * t;
    fw += term;
    fd += rho * t * t;
    fa += std::fabs(term);
  }
  *w += fw;
  *dsum += fd;
  *asum += fa;
}

}  // namespace

const KernelTableT<double> kScalarTable = {
    SimdIsa::Scalar,
    "scalar",
    &microkernel<double, 8, 4>,
    &microkernel<double, 4, 8>,
    &pack_a_scalar<double>,
    &pack_b_scalar<double>,
    32 * 32 * 32,
    &axpy_scalar<double>,
    &dot_scalar<double>,
    &scal_scalar<double>,
    &copy_scalar<double>,
    &swap_scalar<double>,
    &rot_scalar<double>,
    &sumsq_scalar<double>,
    &laed4_sums_scalar<double>,
};

const KernelTableT<float> kScalarTableF32 = {
    SimdIsa::Scalar,
    "scalar",
    &microkernel<float, 8, 4>,
    &microkernel<float, 4, 8>,
    &pack_a_scalar<float>,
    &pack_b_scalar<float>,
    32 * 32 * 32,
    &axpy_scalar<float>,
    &dot_scalar<float>,
    &scal_scalar<float>,
    &copy_scalar<float>,
    &swap_scalar<float>,
    &rot_scalar<float>,
    &sumsq_scalar<float>,
    &laed4_sums_scalar<float>,
};

}  // namespace dnc::blas::simd
