// Portable C++ kernel table: the fallback on non-x86 targets, the
// DNC_SIMD=scalar path, and the reference every SIMD table is tested
// against. The GEMM microkernel is the seed's register-blocked loop
// (written so GCC can auto-vectorize it with the baseline ISA), hoisted
// here so scalar and SIMD paths share the packing/blocking driver.
#include <cmath>

#include "blas/simd/kernels.hpp"

namespace dnc::blas::simd {
namespace {

inline double at(const double* a, index_t lda, bool trans, index_t i, index_t j) {
  return trans ? a[j + i * lda] : a[i + j * lda];
}

// MR x NR register microkernel over packed panels; acc kept in a local
// array so the compiler maps it to registers.
template <index_t MR, index_t NR>
void microkernel(index_t kb, const double* ap, const double* bp, double alpha, double beta,
                 double* c, index_t ldc, index_t mr, index_t nr) {
  double acc[MR][NR];
  for (index_t i = 0; i < MR; ++i)
    for (index_t j = 0; j < NR; ++j) acc[i][j] = 0.0;
  for (index_t p = 0; p < kb; ++p) {
    const double* arow = ap + p * MR;
    const double* brow = bp + p * NR;
    for (index_t j = 0; j < NR; ++j) {
      const double bv = brow[j];
      for (index_t i = 0; i < MR; ++i) acc[i][j] += arow[i] * bv;
    }
  }
  for (index_t j = 0; j < nr; ++j) {
    double* col = c + j * ldc;
    if (beta == 0.0) {
      for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j];
    } else if (beta == 1.0) {
      for (index_t i = 0; i < mr; ++i) col[i] += alpha * acc[i][j];
    } else {
      for (index_t i = 0; i < mr; ++i) col[i] = alpha * acc[i][j] + beta * col[i];
    }
  }
}

void pack_a_scalar(const double* a, index_t lda, bool trans, index_t i0, index_t mr, index_t p0,
                   index_t kb, double* dst, index_t MR) {
  if (!trans && mr == MR) {
    for (index_t p = 0; p < kb; ++p) {
      const double* src = a + i0 + (p0 + p) * lda;
      for (index_t i = 0; i < MR; ++i) dst[p * MR + i] = src[i];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < MR; ++i)
      dst[p * MR + i] = (i < mr) ? at(a, lda, trans, i0 + i, p0 + p) : 0.0;
  }
}

void pack_b_scalar(const double* b, index_t ldb, bool trans, index_t p0, index_t kb, index_t j0,
                   index_t nr, double* dst, index_t NR) {
  if (!trans && nr == NR) {
    for (index_t p = 0; p < kb; ++p) {
      for (index_t j = 0; j < NR; ++j) dst[p * NR + j] = b[(p0 + p) + (j0 + j) * ldb];
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < NR; ++j)
      dst[p * NR + j] = (j < nr) ? at(b, ldb, trans, p0 + p, j0 + j) : 0.0;
  }
}

void axpy_scalar(index_t n, double alpha, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double dot_scalar(index_t n, const double* x, const double* y) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void scal_scalar(index_t n, double alpha, double* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void copy_scalar(index_t n, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] = x[i];
}

void swap_scalar(index_t n, double* x, double* y) {
  for (index_t i = 0; i < n; ++i) {
    const double t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

void rot_scalar(index_t n, double* x, double* y, double c, double s) {
  for (index_t i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

double sumsq_scalar(index_t n, const double* x) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

void laed4_sums_scalar(index_t j0, index_t j1, const double* delta0, const double* z,
                       double rho, double tau, double* w, double* dsum, double* asum) {
  double fw = 0.0, fd = 0.0, fa = 0.0;
  for (index_t j = j0; j < j1; ++j) {
    const double dj = delta0[j] - tau;
    const double t = z[j] / dj;
    const double term = rho * z[j] * t;
    fw += term;
    fd += rho * t * t;
    fa += std::fabs(term);
  }
  *w += fw;
  *dsum += fd;
  *asum += fa;
}

}  // namespace

const KernelTable kScalarTable = {
    SimdIsa::Scalar,
    "scalar",
    &microkernel<8, 4>,
    &microkernel<4, 8>,
    &pack_a_scalar,
    &pack_b_scalar,
    32 * 32 * 32,
    &axpy_scalar,
    &dot_scalar,
    &scal_scalar,
    &copy_scalar,
    &swap_scalar,
    &rot_scalar,
    &sumsq_scalar,
    &laed4_sums_scalar,
};

}  // namespace dnc::blas::simd
