// AVX2 + FMA kernel table: 256-bit double vectors (4 lanes), fused
// multiply-add. This file is compiled with -mavx2 -mfma (set per-file in
// src/blas/CMakeLists.txt) and is only added to the build on x86 targets
// with DNC_ENABLE_SIMD=ON; dispatch.cpp never selects it unless the cpuid
// probe reports both AVX2 and FMA, so no instruction here runs on hardware
// that cannot execute it.
//
// All loads/stores are unaligned-form (vmovupd): the packing workspaces are
// 64-byte aligned anyway, and C panels have arbitrary leading dimensions.
#include "blas/simd/kernels.hpp"

#if defined(DNC_HAVE_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace dnc::blas::simd {
namespace {

inline double hsum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

inline __m256d vabs(__m256d v) { return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v); }

// Applies C[0:4] = alpha*acc + beta*C[0:4] for one 4-row chunk of a column.
inline void update_col4(double* col, __m256d acc, __m256d valpha, double beta) {
  __m256d r = _mm256_mul_pd(acc, valpha);
  if (beta == 1.0)
    r = _mm256_add_pd(r, _mm256_loadu_pd(col));
  else if (beta != 0.0)
    r = _mm256_fmadd_pd(_mm256_set1_pd(beta), _mm256_loadu_pd(col), r);
  _mm256_storeu_pd(col, r);
}

// 8x4 microkernel: 8 accumulator registers (2 per C column), one 8-row A
// load and 4 B broadcasts per k step -- 8 independent FMA chains, enough to
// hide FMA latency on any AVX2 core.
void mk8x4_avx2(index_t kb, const double* ap, const double* bp, double alpha, double beta,
                double* c, index_t ldc, index_t mr, index_t nr) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a20 = _mm256_setzero_pd(), a21 = _mm256_setzero_pd();
  __m256d a30 = _mm256_setzero_pd(), a31 = _mm256_setzero_pd();
  for (index_t p = 0; p < kb; ++p) {
    const __m256d lo = _mm256_loadu_pd(ap + p * 8);
    const __m256d hi = _mm256_loadu_pd(ap + p * 8 + 4);
    __m256d b = _mm256_broadcast_sd(bp + p * 4 + 0);
    a00 = _mm256_fmadd_pd(lo, b, a00);
    a01 = _mm256_fmadd_pd(hi, b, a01);
    b = _mm256_broadcast_sd(bp + p * 4 + 1);
    a10 = _mm256_fmadd_pd(lo, b, a10);
    a11 = _mm256_fmadd_pd(hi, b, a11);
    b = _mm256_broadcast_sd(bp + p * 4 + 2);
    a20 = _mm256_fmadd_pd(lo, b, a20);
    a21 = _mm256_fmadd_pd(hi, b, a21);
    b = _mm256_broadcast_sd(bp + p * 4 + 3);
    a30 = _mm256_fmadd_pd(lo, b, a30);
    a31 = _mm256_fmadd_pd(hi, b, a31);
  }
  const __m256d valpha = _mm256_set1_pd(alpha);
  if (mr == 8) {
    const __m256d accs[4][2] = {{a00, a01}, {a10, a11}, {a20, a21}, {a30, a31}};
    for (index_t j = 0; j < nr; ++j) {
      double* col = c + j * ldc;
      update_col4(col, accs[j][0], valpha, beta);
      update_col4(col + 4, accs[j][1], valpha, beta);
    }
    return;
  }
  // Partial row tile: spill to a dense 8x4 scratch and finish scalar.
  alignas(64) double t[32];
  _mm256_store_pd(t + 0, a00);
  _mm256_store_pd(t + 4, a01);
  _mm256_store_pd(t + 8, a10);
  _mm256_store_pd(t + 12, a11);
  _mm256_store_pd(t + 16, a20);
  _mm256_store_pd(t + 20, a21);
  _mm256_store_pd(t + 24, a30);
  _mm256_store_pd(t + 28, a31);
  for (index_t j = 0; j < nr; ++j) {
    double* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const double v = alpha * t[j * 8 + i];
      col[i] = (beta == 0.0) ? v : v + beta * col[i];
    }
  }
}

// 4x8 microkernel for short-wide C panels: one accumulator per column.
void mk4x8_avx2(index_t kb, const double* ap, const double* bp, double alpha, double beta,
                double* c, index_t ldc, index_t mr, index_t nr) {
  __m256d acc[8];
  for (int j = 0; j < 8; ++j) acc[j] = _mm256_setzero_pd();
  for (index_t p = 0; p < kb; ++p) {
    const __m256d a = _mm256_loadu_pd(ap + p * 4);
    const double* brow = bp + p * 8;
    for (int j = 0; j < 8; ++j)
      acc[j] = _mm256_fmadd_pd(a, _mm256_broadcast_sd(brow + j), acc[j]);
  }
  const __m256d valpha = _mm256_set1_pd(alpha);
  if (mr == 4) {
    for (index_t j = 0; j < nr; ++j) update_col4(c + j * ldc, acc[j], valpha, beta);
    return;
  }
  alignas(64) double t[32];
  for (int j = 0; j < 8; ++j) _mm256_store_pd(t + j * 4, acc[j]);
  for (index_t j = 0; j < nr; ++j) {
    double* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const double v = alpha * t[j * 4 + i];
      col[i] = (beta == 0.0) ? v : v + beta * col[i];
    }
  }
}

void pack_a_avx2(const double* a, index_t lda, bool trans, index_t i0, index_t mr, index_t p0,
                 index_t kb, double* dst, index_t MR) {
  if (!trans && mr == MR) {
    // Contiguous column chunks: straight vector copy.
    const double* src = a + i0 + p0 * lda;
    if (MR == 8) {
      for (index_t p = 0; p < kb; ++p, src += lda, dst += 8) {
        _mm256_storeu_pd(dst, _mm256_loadu_pd(src));
        _mm256_storeu_pd(dst + 4, _mm256_loadu_pd(src + 4));
      }
    } else {  // MR == 4
      for (index_t p = 0; p < kb; ++p, src += lda, dst += 4)
        _mm256_storeu_pd(dst, _mm256_loadu_pd(src));
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < MR; ++i)
      dst[p * MR + i] =
          (i < mr) ? (trans ? a[(p0 + p) + (i0 + i) * lda] : a[(i0 + i) + (p0 + p) * lda])
                   : 0.0;
  }
}

// Transposes a 4x4 block held in four column vectors into four row vectors.
inline void transpose4(__m256d c0, __m256d c1, __m256d c2, __m256d c3, __m256d& r0,
                       __m256d& r1, __m256d& r2, __m256d& r3) {
  const __m256d t0 = _mm256_unpacklo_pd(c0, c1);
  const __m256d t1 = _mm256_unpackhi_pd(c0, c1);
  const __m256d t2 = _mm256_unpacklo_pd(c2, c3);
  const __m256d t3 = _mm256_unpackhi_pd(c2, c3);
  r0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  r1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  r2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  r3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

void pack_b_avx2(const double* b, index_t ldb, bool trans, index_t p0, index_t kb, index_t j0,
                 index_t nr, double* dst, index_t NR) {
  if (!trans && nr == NR) {
    // Full tile of op(B)=B: dst rows are B columns -- a k x NR transpose.
    // Do it 4 k-steps at a time with in-register 4x4 transposes.
    index_t p = 0;
    for (; p + 4 <= kb; p += 4) {
      const double* base = b + (p0 + p);
      for (index_t j4 = 0; j4 < NR; j4 += 4) {
        const double* col = base + (j0 + j4) * ldb;
        __m256d r0, r1, r2, r3;
        transpose4(_mm256_loadu_pd(col), _mm256_loadu_pd(col + ldb),
                   _mm256_loadu_pd(col + 2 * ldb), _mm256_loadu_pd(col + 3 * ldb), r0, r1, r2,
                   r3);
        double* out = dst + p * NR + j4;
        _mm256_storeu_pd(out, r0);
        _mm256_storeu_pd(out + NR, r1);
        _mm256_storeu_pd(out + 2 * NR, r2);
        _mm256_storeu_pd(out + 3 * NR, r3);
      }
    }
    for (; p < kb; ++p)
      for (index_t j = 0; j < NR; ++j) dst[p * NR + j] = b[(p0 + p) + (j0 + j) * ldb];
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < NR; ++j)
      dst[p * NR + j] =
          (j < nr) ? (trans ? b[(j0 + j) + (p0 + p) * ldb] : b[(p0 + p) + (j0 + j) * ldb])
                   : 0.0;
  }
}

void axpy_avx2(index_t n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                                _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

double dot_avx2(index_t n, const double* x, const double* y) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4), s1);
  }
  for (; i + 4 <= n; i += 4)
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), s0);
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void scal_avx2(index_t n, double alpha, double* x) {
  const __m256d va = _mm256_set1_pd(alpha);
  index_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

void copy_avx2(index_t n, const double* x, double* y) {
  index_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(y + i, _mm256_loadu_pd(x + i));
  for (; i < n; ++i) y[i] = x[i];
}

void swap_avx2(index_t n, double* x, double* y) {
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(x + i, vy);
    _mm256_storeu_pd(y + i, vx);
  }
  for (; i < n; ++i) {
    const double t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

void rot_avx2(index_t n, double* x, double* y, double c, double s) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(x + i, _mm256_fmadd_pd(vc, vx, _mm256_mul_pd(vs, vy)));
    _mm256_storeu_pd(y + i, _mm256_fmsub_pd(vc, vy, _mm256_mul_pd(vs, vx)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

double sumsq_avx2(index_t n, const double* x) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    s0 = _mm256_fmadd_pd(v0, v0, s0);
    s1 = _mm256_fmadd_pd(v1, v1, s1);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    s0 = _mm256_fmadd_pd(v, v, s0);
  }
  double s = hsum(_mm256_add_pd(s0, s1));
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

void laed4_sums_avx2(index_t j0, index_t j1, const double* delta0, const double* z, double rho,
                     double tau, double* w, double* dsum, double* asum) {
  const __m256d vtau = _mm256_set1_pd(tau);
  const __m256d vrho = _mm256_set1_pd(rho);
  __m256d vw = _mm256_setzero_pd(), vd = _mm256_setzero_pd(), va = _mm256_setzero_pd();
  index_t j = j0;
  for (; j + 4 <= j1; j += 4) {
    const __m256d dj = _mm256_sub_pd(_mm256_loadu_pd(delta0 + j), vtau);
    const __m256d zj = _mm256_loadu_pd(z + j);
    const __m256d t = _mm256_div_pd(zj, dj);
    const __m256d term = _mm256_mul_pd(vrho, _mm256_mul_pd(zj, t));
    vw = _mm256_add_pd(vw, term);
    vd = _mm256_fmadd_pd(vrho, _mm256_mul_pd(t, t), vd);
    va = _mm256_add_pd(va, vabs(term));
  }
  double fw = hsum(vw), fd = hsum(vd), fa = hsum(va);
  for (; j < j1; ++j) {
    const double dj = delta0[j] - tau;
    const double t = z[j] / dj;
    const double term = rho * z[j] * t;
    fw += term;
    fd += rho * t * t;
    fa += std::fabs(term);
  }
  *w += fw;
  *dsum += fd;
  *asum += fa;
}

// ---------------------------------------------------------------------
// Float kernels: 256-bit vectors carry 8 float lanes -- twice the fp64
// lane count at the same issue width, which is the whole point of the
// fp32 fast path. Tile shapes (MR/NR) match the double kernels so the
// blocking driver in gemm.cpp is shared by both precisions.
// ---------------------------------------------------------------------

inline float hsumf(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 0x55));
  return _mm_cvtss_f32(lo);
}

inline __m256 vabsf(__m256 v) { return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v); }

// Applies C[0:8] = alpha*acc + beta*C[0:8] for one 8-row chunk of a column.
inline void update_col8f(float* col, __m256 acc, __m256 valpha, float beta) {
  __m256 r = _mm256_mul_ps(acc, valpha);
  if (beta == 1.0f)
    r = _mm256_add_ps(r, _mm256_loadu_ps(col));
  else if (beta != 0.0f)
    r = _mm256_fmadd_ps(_mm256_set1_ps(beta), _mm256_loadu_ps(col), r);
  _mm256_storeu_ps(col, r);
}

// 8x4 float microkernel: one 8-lane vector covers the whole MR=8 row tile,
// so a single accumulator per C column would leave only 4 FMA chains in
// flight. The k loop is unrolled by 2 with a second accumulator set (8
// chains total) to hide FMA latency; the sets are summed once at the end.
void mk8x4_avx2_f32(index_t kb, const float* ap, const float* bp, float alpha, float beta,
                    float* c, index_t ldc, index_t mr, index_t nr) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
  __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
  index_t p = 0;
  for (; p + 2 <= kb; p += 2) {
    const __m256 lo = _mm256_loadu_ps(ap + p * 8);
    a0 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 0), a0);
    a1 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 1), a1);
    a2 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 2), a2);
    a3 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 3), a3);
    const __m256 lo2 = _mm256_loadu_ps(ap + (p + 1) * 8);
    b0 = _mm256_fmadd_ps(lo2, _mm256_broadcast_ss(bp + (p + 1) * 4 + 0), b0);
    b1 = _mm256_fmadd_ps(lo2, _mm256_broadcast_ss(bp + (p + 1) * 4 + 1), b1);
    b2 = _mm256_fmadd_ps(lo2, _mm256_broadcast_ss(bp + (p + 1) * 4 + 2), b2);
    b3 = _mm256_fmadd_ps(lo2, _mm256_broadcast_ss(bp + (p + 1) * 4 + 3), b3);
  }
  if (p < kb) {
    const __m256 lo = _mm256_loadu_ps(ap + p * 8);
    a0 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 0), a0);
    a1 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 1), a1);
    a2 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 2), a2);
    a3 = _mm256_fmadd_ps(lo, _mm256_broadcast_ss(bp + p * 4 + 3), a3);
  }
  a0 = _mm256_add_ps(a0, b0);
  a1 = _mm256_add_ps(a1, b1);
  a2 = _mm256_add_ps(a2, b2);
  a3 = _mm256_add_ps(a3, b3);
  const __m256 valpha = _mm256_set1_ps(alpha);
  if (mr == 8) {
    const __m256 accs[4] = {a0, a1, a2, a3};
    for (index_t j = 0; j < nr; ++j) update_col8f(c + j * ldc, accs[j], valpha, beta);
    return;
  }
  // Partial row tile: spill to a dense 8x4 scratch and finish scalar.
  alignas(64) float t[32];
  _mm256_store_ps(t + 0, a0);
  _mm256_store_ps(t + 8, a1);
  _mm256_store_ps(t + 16, a2);
  _mm256_store_ps(t + 24, a3);
  for (index_t j = 0; j < nr; ++j) {
    float* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const float v = alpha * t[j * 8 + i];
      col[i] = (beta == 0.0f) ? v : v + beta * col[i];
    }
  }
}

// 4x8 float microkernel for short-wide C panels: the MR=4 row tile is a
// 128-bit vector; one accumulator per column gives 8 FMA chains.
void mk4x8_avx2_f32(index_t kb, const float* ap, const float* bp, float alpha, float beta,
                    float* c, index_t ldc, index_t mr, index_t nr) {
  __m128 acc[8];
  for (int j = 0; j < 8; ++j) acc[j] = _mm_setzero_ps();
  for (index_t p = 0; p < kb; ++p) {
    const __m128 a = _mm_loadu_ps(ap + p * 4);
    const float* brow = bp + p * 8;
    for (int j = 0; j < 8; ++j)
      acc[j] = _mm_fmadd_ps(a, _mm_set1_ps(brow[j]), acc[j]);
  }
  const __m128 valpha = _mm_set1_ps(alpha);
  if (mr == 4) {
    for (index_t j = 0; j < nr; ++j) {
      float* col = c + j * ldc;
      __m128 r = _mm_mul_ps(acc[j], valpha);
      if (beta == 1.0f)
        r = _mm_add_ps(r, _mm_loadu_ps(col));
      else if (beta != 0.0f)
        r = _mm_fmadd_ps(_mm_set1_ps(beta), _mm_loadu_ps(col), r);
      _mm_storeu_ps(col, r);
    }
    return;
  }
  alignas(64) float t[32];
  for (int j = 0; j < 8; ++j) _mm_store_ps(t + j * 4, acc[j]);
  for (index_t j = 0; j < nr; ++j) {
    float* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const float v = alpha * t[j * 4 + i];
      col[i] = (beta == 0.0f) ? v : v + beta * col[i];
    }
  }
}

void pack_a_avx2_f32(const float* a, index_t lda, bool trans, index_t i0, index_t mr,
                     index_t p0, index_t kb, float* dst, index_t MR) {
  if (!trans && mr == MR) {
    // Contiguous column chunks: straight vector copy.
    const float* src = a + i0 + p0 * lda;
    if (MR == 8) {
      for (index_t p = 0; p < kb; ++p, src += lda, dst += 8)
        _mm256_storeu_ps(dst, _mm256_loadu_ps(src));
    } else {  // MR == 4
      for (index_t p = 0; p < kb; ++p, src += lda, dst += 4)
        _mm_storeu_ps(dst, _mm_loadu_ps(src));
    }
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < MR; ++i)
      dst[p * MR + i] =
          (i < mr) ? (trans ? a[(p0 + p) + (i0 + i) * lda] : a[(i0 + i) + (p0 + p) * lda])
                   : 0.0f;
  }
}

// Packing B is a k x NR transpose of strided loads -- memory bound either
// way, so the float variant keeps the plain loop (the double path's 4x4
// in-register transpose trick does not map to 8-lane tiles cleanly).
void pack_b_avx2_f32(const float* b, index_t ldb, bool trans, index_t p0, index_t kb,
                     index_t j0, index_t nr, float* dst, index_t NR) {
  if (!trans && nr == NR) {
    for (index_t p = 0; p < kb; ++p)
      for (index_t j = 0; j < NR; ++j) dst[p * NR + j] = b[(p0 + p) + (j0 + j) * ldb];
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < NR; ++j)
      dst[p * NR + j] =
          (j < nr) ? (trans ? b[(j0 + j) + (p0 + p) * ldb] : b[(p0 + p) + (j0 + j) * ldb])
                   : 0.0f;
  }
}

void axpy_avx2_f32(index_t n, float alpha, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
    _mm256_storeu_ps(y + i + 8, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i + 8),
                                                _mm256_loadu_ps(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

float dot_avx2_f32(index_t n, const float* x, const float* y) {
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), s0);
    s1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(y + i + 8), s1);
  }
  for (; i + 8 <= n; i += 8)
    s0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), s0);
  float s = hsumf(_mm256_add_ps(s0, s1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void scal_avx2_f32(index_t n, float alpha, float* x) {
  const __m256 va = _mm256_set1_ps(alpha);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

void copy_avx2_f32(index_t n, const float* x, float* y) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(y + i, _mm256_loadu_ps(x + i));
  for (; i < n; ++i) y[i] = x[i];
}

void swap_avx2_f32(index_t n, float* x, float* y) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(x + i, vy);
    _mm256_storeu_ps(y + i, vx);
  }
  for (; i < n; ++i) {
    const float t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

void rot_avx2_f32(index_t n, float* x, float* y, float c, float s) {
  const __m256 vc = _mm256_set1_ps(c);
  const __m256 vs = _mm256_set1_ps(s);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(x + i, _mm256_fmadd_ps(vc, vx, _mm256_mul_ps(vs, vy)));
    _mm256_storeu_ps(y + i, _mm256_fmsub_ps(vc, vy, _mm256_mul_ps(vs, vx)));
  }
  for (; i < n; ++i) {
    const float xi = x[i];
    const float yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

float sumsq_avx2_f32(index_t n, const float* x) {
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  index_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 v0 = _mm256_loadu_ps(x + i);
    const __m256 v1 = _mm256_loadu_ps(x + i + 8);
    s0 = _mm256_fmadd_ps(v0, v0, s0);
    s1 = _mm256_fmadd_ps(v1, v1, s1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    s0 = _mm256_fmadd_ps(v, v, s0);
  }
  float s = hsumf(_mm256_add_ps(s0, s1));
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

void laed4_sums_avx2_f32(index_t j0, index_t j1, const float* delta0, const float* z,
                         float rho, float tau, float* w, float* dsum, float* asum) {
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vrho = _mm256_set1_ps(rho);
  __m256 vw = _mm256_setzero_ps(), vd = _mm256_setzero_ps(), va = _mm256_setzero_ps();
  index_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    const __m256 dj = _mm256_sub_ps(_mm256_loadu_ps(delta0 + j), vtau);
    const __m256 zj = _mm256_loadu_ps(z + j);
    const __m256 t = _mm256_div_ps(zj, dj);
    const __m256 term = _mm256_mul_ps(vrho, _mm256_mul_ps(zj, t));
    vw = _mm256_add_ps(vw, term);
    vd = _mm256_fmadd_ps(vrho, _mm256_mul_ps(t, t), vd);
    va = _mm256_add_ps(va, vabsf(term));
  }
  float fw = hsumf(vw), fd = hsumf(vd), fa = hsumf(va);
  for (; j < j1; ++j) {
    const float dj = delta0[j] - tau;
    const float t = z[j] / dj;
    const float term = rho * z[j] * t;
    fw += term;
    fd += rho * t * t;
    fa += std::fabs(term);
  }
  *w += fw;
  *dsum += fd;
  *asum += fa;
}

}  // namespace

const KernelTable kAvx2Table = {
    SimdIsa::Avx2,
    "avx2",
    &mk8x4_avx2,
    &mk4x8_avx2,
    &pack_a_avx2,
    &pack_b_avx2,
    16 * 16 * 16,
    &axpy_avx2,
    &dot_avx2,
    &scal_avx2,
    &copy_avx2,
    &swap_avx2,
    &rot_avx2,
    &sumsq_avx2,
    &laed4_sums_avx2,
};

const KernelTableT<float> kAvx2TableF32 = {
    SimdIsa::Avx2,
    "avx2",
    &mk8x4_avx2_f32,
    &mk4x8_avx2_f32,
    &pack_a_avx2_f32,
    &pack_b_avx2_f32,
    16 * 16 * 16,
    &axpy_avx2_f32,
    &dot_avx2_f32,
    &scal_avx2_f32,
    &copy_avx2_f32,
    &swap_avx2_f32,
    &rot_avx2_f32,
    &sumsq_avx2_f32,
    &laed4_sums_avx2_f32,
};

}  // namespace dnc::blas::simd

#endif  // DNC_HAVE_AVX2 && __AVX2__ && __FMA__
