// Runtime selection of the kernel table.
//
// Selection happens once, on the first call to kernels(): the hardware
// probe (common/cpu_features) is clamped by the DNC_SIMD environment
// variable and by what this binary was compiled with. The active table is
// held in an atomic pointer so ScopedIsaOverride (tests/benches) can swap
// it and restore it without races against readers.
#include <atomic>

#include "blas/simd/kernels.hpp"

namespace dnc::blas::simd {
namespace {

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* select_table() noexcept {
  const KernelTable* t = kernels_for(requested_simd_isa());
  return t != nullptr ? t : &kScalarTable;
}

const KernelTable* active_or_init() noexcept {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  // Benign race: concurrent first calls compute the same answer.
  t = select_table();
  g_active.store(t, std::memory_order_release);
  return t;
}

}  // namespace

const KernelTable* kernels_for(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Avx2:
#if defined(DNC_HAVE_AVX2)
      if (detect_simd_isa() >= SimdIsa::Avx2) return &kAvx2Table;
#endif
      return nullptr;
    case SimdIsa::Sse2:
#if defined(DNC_HAVE_SSE2)
      if (detect_simd_isa() >= SimdIsa::Sse2) return &kSse2Table;
#endif
      return nullptr;
    default:
      return &kScalarTable;
  }
}

const KernelTable& kernels() noexcept { return *active_or_init(); }

SimdIsa active_isa() noexcept { return kernels().isa; }

ScopedIsaOverride::ScopedIsaOverride(SimdIsa isa) noexcept : saved_(active_or_init()) {
  const KernelTable* t = kernels_for(isa);
  g_active.store(t != nullptr ? t : &kScalarTable, std::memory_order_release);
}

ScopedIsaOverride::~ScopedIsaOverride() { g_active.store(saved_, std::memory_order_release); }

}  // namespace dnc::blas::simd
