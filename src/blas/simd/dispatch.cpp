// Runtime selection of the kernel tables.
//
// Selection happens once per precision, on the first call to
// kernels_t<Real>(): the hardware probe (common/cpu_features) is clamped by
// the DNC_SIMD environment variable and by what this binary was compiled
// with. Each active table is held in an atomic pointer so ScopedIsaOverride
// (tests/benches) can swap both and restore them without races against
// readers.
#include <atomic>

#include "blas/simd/kernels.hpp"

namespace dnc::blas::simd {
namespace {

std::atomic<const KernelTableT<double>*> g_active_f64{nullptr};
std::atomic<const KernelTableT<float>*> g_active_f32{nullptr};

template <typename Real>
const KernelTableT<Real>* scalar_table() noexcept;
template <>
const KernelTableT<double>* scalar_table<double>() noexcept { return &kScalarTable; }
template <>
const KernelTableT<float>* scalar_table<float>() noexcept { return &kScalarTableF32; }

template <typename Real>
const KernelTableT<Real>* select_table() noexcept {
  const KernelTableT<Real>* t = kernels_for_t<Real>(requested_simd_isa());
  return t != nullptr ? t : scalar_table<Real>();
}

template <typename Real>
const KernelTableT<Real>* active_or_init(std::atomic<const KernelTableT<Real>*>& slot) noexcept {
  const KernelTableT<Real>* t = slot.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  // Benign race: concurrent first calls compute the same answer.
  t = select_table<Real>();
  slot.store(t, std::memory_order_release);
  return t;
}

}  // namespace

template <>
const KernelTableT<double>* kernels_for_t<double>(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Avx2:
#if defined(DNC_HAVE_AVX2)
      if (detect_simd_isa() >= SimdIsa::Avx2) return &kAvx2Table;
#endif
      return nullptr;
    case SimdIsa::Sse2:
#if defined(DNC_HAVE_SSE2)
      if (detect_simd_isa() >= SimdIsa::Sse2) return &kSse2Table;
#endif
      return nullptr;
    default:
      return &kScalarTable;
  }
}

template <>
const KernelTableT<float>* kernels_for_t<float>(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Avx2:
#if defined(DNC_HAVE_AVX2)
      if (detect_simd_isa() >= SimdIsa::Avx2) return &kAvx2TableF32;
#endif
      return nullptr;
    case SimdIsa::Sse2:
      // No float SSE2 tier: 2 lanes of extra width over scalar is not
      // worth a third variant. Callers treat nullptr as "use scalar".
      return nullptr;
    default:
      return &kScalarTableF32;
  }
}

template <>
const KernelTableT<double>& kernels_t<double>() noexcept {
  return *active_or_init<double>(g_active_f64);
}

template <>
const KernelTableT<float>& kernels_t<float>() noexcept {
  return *active_or_init<float>(g_active_f32);
}

SimdIsa active_isa() noexcept { return kernels().isa; }

ScopedIsaOverride::ScopedIsaOverride(SimdIsa isa) noexcept
    : saved_f64_(active_or_init<double>(g_active_f64)),
      saved_f32_(active_or_init<float>(g_active_f32)) {
  const KernelTableT<double>* t64 = kernels_for_t<double>(isa);
  const KernelTableT<float>* t32 = kernels_for_t<float>(isa);
  g_active_f64.store(t64 != nullptr ? t64 : &kScalarTable, std::memory_order_release);
  g_active_f32.store(t32 != nullptr ? t32 : &kScalarTableF32, std::memory_order_release);
}

ScopedIsaOverride::~ScopedIsaOverride() {
  g_active_f64.store(saved_f64_, std::memory_order_release);
  g_active_f32.store(saved_f32_, std::memory_order_release);
}

}  // namespace dnc::blas::simd
