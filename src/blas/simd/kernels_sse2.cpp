// SSE2 kernel table: 128-bit double vectors (2 lanes), no FMA. SSE2 is the
// x86-64 baseline, so this file needs no special flags; it exists so the
// dispatch has a vector path on pre-AVX2 hardware and so tests can compare
// three independent implementations of every kernel.
#include "blas/simd/kernels.hpp"

#if defined(DNC_HAVE_SSE2) && defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>

namespace dnc::blas::simd {
namespace {

inline double hsum(__m128d v) { return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v))); }

inline __m128d vabs(__m128d v) { return _mm_andnot_pd(_mm_set1_pd(-0.0), v); }

// 8x4 microkernel: 16 xmm accumulators (4 row-pairs x 4 columns). That is
// the whole SSE register file, so the compiler keeps them resident.
void mk8x4_sse2(index_t kb, const double* ap, const double* bp, double alpha, double beta,
                double* c, index_t ldc, index_t mr, index_t nr) {
  __m128d acc[4][4];
  for (int j = 0; j < 4; ++j)
    for (int h = 0; h < 4; ++h) acc[j][h] = _mm_setzero_pd();
  for (index_t p = 0; p < kb; ++p) {
    const double* arow = ap + p * 8;
    const __m128d a0 = _mm_loadu_pd(arow);
    const __m128d a1 = _mm_loadu_pd(arow + 2);
    const __m128d a2 = _mm_loadu_pd(arow + 4);
    const __m128d a3 = _mm_loadu_pd(arow + 6);
    for (int j = 0; j < 4; ++j) {
      const __m128d b = _mm_set1_pd(bp[p * 4 + j]);
      acc[j][0] = _mm_add_pd(acc[j][0], _mm_mul_pd(a0, b));
      acc[j][1] = _mm_add_pd(acc[j][1], _mm_mul_pd(a1, b));
      acc[j][2] = _mm_add_pd(acc[j][2], _mm_mul_pd(a2, b));
      acc[j][3] = _mm_add_pd(acc[j][3], _mm_mul_pd(a3, b));
    }
  }
  const __m128d valpha = _mm_set1_pd(alpha);
  if (mr == 8) {
    for (index_t j = 0; j < nr; ++j) {
      double* col = c + j * ldc;
      for (int h = 0; h < 4; ++h) {
        __m128d r = _mm_mul_pd(acc[j][h], valpha);
        if (beta == 1.0)
          r = _mm_add_pd(r, _mm_loadu_pd(col + 2 * h));
        else if (beta != 0.0)
          r = _mm_add_pd(r, _mm_mul_pd(_mm_set1_pd(beta), _mm_loadu_pd(col + 2 * h)));
        _mm_storeu_pd(col + 2 * h, r);
      }
    }
    return;
  }
  alignas(16) double t[32];
  for (int j = 0; j < 4; ++j)
    for (int h = 0; h < 4; ++h) _mm_store_pd(t + j * 8 + 2 * h, acc[j][h]);
  for (index_t j = 0; j < nr; ++j) {
    double* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const double v = alpha * t[j * 8 + i];
      col[i] = (beta == 0.0) ? v : v + beta * col[i];
    }
  }
}

void mk4x8_sse2(index_t kb, const double* ap, const double* bp, double alpha, double beta,
                double* c, index_t ldc, index_t mr, index_t nr) {
  __m128d acc[8][2];
  for (int j = 0; j < 8; ++j) acc[j][0] = acc[j][1] = _mm_setzero_pd();
  for (index_t p = 0; p < kb; ++p) {
    const __m128d a0 = _mm_loadu_pd(ap + p * 4);
    const __m128d a1 = _mm_loadu_pd(ap + p * 4 + 2);
    const double* brow = bp + p * 8;
    for (int j = 0; j < 8; ++j) {
      const __m128d b = _mm_set1_pd(brow[j]);
      acc[j][0] = _mm_add_pd(acc[j][0], _mm_mul_pd(a0, b));
      acc[j][1] = _mm_add_pd(acc[j][1], _mm_mul_pd(a1, b));
    }
  }
  const __m128d valpha = _mm_set1_pd(alpha);
  if (mr == 4) {
    for (index_t j = 0; j < nr; ++j) {
      double* col = c + j * ldc;
      for (int h = 0; h < 2; ++h) {
        __m128d r = _mm_mul_pd(acc[j][h], valpha);
        if (beta == 1.0)
          r = _mm_add_pd(r, _mm_loadu_pd(col + 2 * h));
        else if (beta != 0.0)
          r = _mm_add_pd(r, _mm_mul_pd(_mm_set1_pd(beta), _mm_loadu_pd(col + 2 * h)));
        _mm_storeu_pd(col + 2 * h, r);
      }
    }
    return;
  }
  alignas(16) double t[32];
  for (int j = 0; j < 8; ++j) {
    _mm_store_pd(t + j * 4, acc[j][0]);
    _mm_store_pd(t + j * 4 + 2, acc[j][1]);
  }
  for (index_t j = 0; j < nr; ++j) {
    double* col = c + j * ldc;
    for (index_t i = 0; i < mr; ++i) {
      const double v = alpha * t[j * 4 + i];
      col[i] = (beta == 0.0) ? v : v + beta * col[i];
    }
  }
}

void pack_a_sse2(const double* a, index_t lda, bool trans, index_t i0, index_t mr, index_t p0,
                 index_t kb, double* dst, index_t MR) {
  if (!trans && mr == MR) {
    const double* src = a + i0 + p0 * lda;
    for (index_t p = 0; p < kb; ++p, src += lda, dst += MR)
      for (index_t i = 0; i < MR; i += 2) _mm_storeu_pd(dst + i, _mm_loadu_pd(src + i));
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t i = 0; i < MR; ++i)
      dst[p * MR + i] =
          (i < mr) ? (trans ? a[(p0 + p) + (i0 + i) * lda] : a[(i0 + i) + (p0 + p) * lda])
                   : 0.0;
  }
}

void pack_b_sse2(const double* b, index_t ldb, bool trans, index_t p0, index_t kb, index_t j0,
                 index_t nr, double* dst, index_t NR) {
  if (!trans && nr == NR) {
    // 2x2 in-register transposes over pairs of k steps and column pairs.
    index_t p = 0;
    for (; p + 2 <= kb; p += 2) {
      const double* base = b + (p0 + p);
      for (index_t j2 = 0; j2 < NR; j2 += 2) {
        const double* col = base + (j0 + j2) * ldb;
        const __m128d c0 = _mm_loadu_pd(col);
        const __m128d c1 = _mm_loadu_pd(col + ldb);
        _mm_storeu_pd(dst + p * NR + j2, _mm_unpacklo_pd(c0, c1));
        _mm_storeu_pd(dst + (p + 1) * NR + j2, _mm_unpackhi_pd(c0, c1));
      }
    }
    for (; p < kb; ++p)
      for (index_t j = 0; j < NR; ++j) dst[p * NR + j] = b[(p0 + p) + (j0 + j) * ldb];
    return;
  }
  for (index_t p = 0; p < kb; ++p) {
    for (index_t j = 0; j < NR; ++j)
      dst[p * NR + j] =
          (j < nr) ? (trans ? b[(j0 + j) + (p0 + p) * ldb] : b[(p0 + p) + (j0 + j) * ldb])
                   : 0.0;
  }
}

void axpy_sse2(index_t n, double alpha, const double* x, double* y) {
  const __m128d va = _mm_set1_pd(alpha);
  index_t i = 0;
  for (; i + 2 <= n; i += 2)
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), _mm_mul_pd(va, _mm_loadu_pd(x + i))));
  for (; i < n; ++i) y[i] += alpha * x[i];
}

double dot_sse2(index_t n, const double* x, const double* y) {
  __m128d s0 = _mm_setzero_pd(), s1 = _mm_setzero_pd();
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 = _mm_add_pd(s0, _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
    s1 = _mm_add_pd(s1, _mm_mul_pd(_mm_loadu_pd(x + i + 2), _mm_loadu_pd(y + i + 2)));
  }
  for (; i + 2 <= n; i += 2)
    s0 = _mm_add_pd(s0, _mm_mul_pd(_mm_loadu_pd(x + i), _mm_loadu_pd(y + i)));
  double s = hsum(_mm_add_pd(s0, s1));
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

void scal_sse2(index_t n, double alpha, double* x) {
  const __m128d va = _mm_set1_pd(alpha);
  index_t i = 0;
  for (; i + 2 <= n; i += 2) _mm_storeu_pd(x + i, _mm_mul_pd(va, _mm_loadu_pd(x + i)));
  for (; i < n; ++i) x[i] *= alpha;
}

void copy_sse2(index_t n, const double* x, double* y) {
  index_t i = 0;
  for (; i + 2 <= n; i += 2) _mm_storeu_pd(y + i, _mm_loadu_pd(x + i));
  for (; i < n; ++i) y[i] = x[i];
}

void swap_sse2(index_t n, double* x, double* y) {
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vx = _mm_loadu_pd(x + i);
    const __m128d vy = _mm_loadu_pd(y + i);
    _mm_storeu_pd(x + i, vy);
    _mm_storeu_pd(y + i, vx);
  }
  for (; i < n; ++i) {
    const double t = x[i];
    x[i] = y[i];
    y[i] = t;
  }
}

void rot_sse2(index_t n, double* x, double* y, double c, double s) {
  const __m128d vc = _mm_set1_pd(c);
  const __m128d vs = _mm_set1_pd(s);
  index_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vx = _mm_loadu_pd(x + i);
    const __m128d vy = _mm_loadu_pd(y + i);
    _mm_storeu_pd(x + i, _mm_add_pd(_mm_mul_pd(vc, vx), _mm_mul_pd(vs, vy)));
    _mm_storeu_pd(y + i, _mm_sub_pd(_mm_mul_pd(vc, vy), _mm_mul_pd(vs, vx)));
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    x[i] = c * xi + s * yi;
    y[i] = c * yi - s * xi;
  }
}

double sumsq_sse2(index_t n, const double* x) {
  __m128d s0 = _mm_setzero_pd(), s1 = _mm_setzero_pd();
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d v0 = _mm_loadu_pd(x + i);
    const __m128d v1 = _mm_loadu_pd(x + i + 2);
    s0 = _mm_add_pd(s0, _mm_mul_pd(v0, v0));
    s1 = _mm_add_pd(s1, _mm_mul_pd(v1, v1));
  }
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(x + i);
    s0 = _mm_add_pd(s0, _mm_mul_pd(v, v));
  }
  double s = hsum(_mm_add_pd(s0, s1));
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

void laed4_sums_sse2(index_t j0, index_t j1, const double* delta0, const double* z, double rho,
                     double tau, double* w, double* dsum, double* asum) {
  const __m128d vtau = _mm_set1_pd(tau);
  const __m128d vrho = _mm_set1_pd(rho);
  __m128d vw = _mm_setzero_pd(), vd = _mm_setzero_pd(), va = _mm_setzero_pd();
  index_t j = j0;
  for (; j + 2 <= j1; j += 2) {
    const __m128d dj = _mm_sub_pd(_mm_loadu_pd(delta0 + j), vtau);
    const __m128d zj = _mm_loadu_pd(z + j);
    const __m128d t = _mm_div_pd(zj, dj);
    const __m128d term = _mm_mul_pd(vrho, _mm_mul_pd(zj, t));
    vw = _mm_add_pd(vw, term);
    vd = _mm_add_pd(vd, _mm_mul_pd(vrho, _mm_mul_pd(t, t)));
    va = _mm_add_pd(va, vabs(term));
  }
  double fw = hsum(vw), fd = hsum(vd), fa = hsum(va);
  for (; j < j1; ++j) {
    const double dj = delta0[j] - tau;
    const double t = z[j] / dj;
    const double term = rho * z[j] * t;
    fw += term;
    fd += rho * t * t;
    fa += std::fabs(term);
  }
  *w += fw;
  *dsum += fd;
  *asum += fa;
}

}  // namespace

const KernelTable kSse2Table = {
    SimdIsa::Sse2,
    "sse2",
    &mk8x4_sse2,
    &mk4x8_sse2,
    &pack_a_sse2,
    &pack_b_sse2,
    24 * 24 * 24,
    &axpy_sse2,
    &dot_sse2,
    &scal_sse2,
    &copy_sse2,
    &swap_sse2,
    &rot_sse2,
    &sumsq_sse2,
    &laed4_sums_sse2,
};

}  // namespace dnc::blas::simd

#endif  // DNC_HAVE_SSE2 && __SSE2__
