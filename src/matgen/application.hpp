// Application-like tridiagonal matrices.
//
// The paper's Figure 10 uses matrices from LAPACK's stetester collection
// (harvested from real applications; not redistributable here). These
// generators produce synthetic matrices with the same character -- spectra
// from discretised PDE operators, glued Wilkinson blocks (the classic hard
// case for MRRR), and quantum Hamiltonians -- exercising the identical code
// paths (partial clustering, moderate deflation). See DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "matgen/tridiag.hpp"

namespace dnc::matgen {

struct NamedTridiag {
  std::string name;
  Tridiag matrix;
};

/// 1-D FEM/FD Laplacian with piecewise-constant random coefficient jumps
/// (njumps material interfaces): clustered spectrum per material region.
Tridiag fem_laplacian_jump(index_t n, int njumps, Rng& rng);

/// `blocks` Wilkinson W_21^+ matrices glued with coupling `glue`:
/// eigenvalues in tight clusters of size `blocks`.
Tridiag glued_wilkinson(index_t block_size, index_t blocks, double glue);

/// Discretised 1-D Schroedinger operator -u'' + V(x)u on [-L, L] with a
/// double-well potential: mixes near-degenerate pairs (tunnelling splitting)
/// with a regular tail.
Tridiag schroedinger_double_well(index_t n, double depth);

/// Tridiagonal from Lanczos applied to a sparse 2-D grid Laplacian spectrum
/// (cluster-rich spectrum with multiplicities, typical of the stetester
/// "application" matrices).
Tridiag grid2d_spectrum(index_t nx, index_t ny, Rng& rng);

/// The benchmark suite used for the Figure 10 reproduction.
std::vector<NamedTridiag> application_suite(index_t max_n, std::uint64_t seed = 7);

}  // namespace dnc::matgen
