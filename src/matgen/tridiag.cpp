#include "matgen/tridiag.hpp"

#include <cmath>

#include "common/error.hpp"
#include "matgen/lanczos.hpp"
#include "matgen/spectrum.hpp"

namespace dnc::matgen {

Tridiag onetwoone(index_t n) {
  Tridiag t;
  t.d.assign(n, 2.0);
  t.e.assign(n > 0 ? n - 1 : 0, 1.0);
  return t;
}

Tridiag wilkinson(index_t n) {
  // W_n^+: for odd n = 2m+1 the diagonal is m, m-1, ..., 1, 0, 1, ..., m.
  // Even n uses the same |i - (n-1)/2| profile.
  Tridiag t;
  t.d.resize(n);
  t.e.assign(n > 0 ? n - 1 : 0, 1.0);
  const double c = (static_cast<double>(n) - 1.0) / 2.0;
  for (index_t i = 0; i < n; ++i) t.d[i] = std::fabs(static_cast<double>(i) - c);
  return t;
}

Tridiag clement(index_t n) {
  Tridiag t;
  t.d.assign(n, 0.0);
  t.e.resize(n > 0 ? n - 1 : 0);
  for (index_t i = 0; i + 1 < n; ++i)
    t.e[i] = std::sqrt(static_cast<double>(i + 1) * static_cast<double>(n - 1 - i));
  return t;
}

Tridiag legendre(index_t n) {
  // Jacobi matrix of the Legendre orthogonal polynomials on [-1, 1]:
  // zero diagonal, e_i = i / sqrt(4i^2 - 1).
  Tridiag t;
  t.d.assign(n, 0.0);
  t.e.resize(n > 0 ? n - 1 : 0);
  for (index_t i = 0; i + 1 < n; ++i) {
    const double k = static_cast<double>(i + 1);
    t.e[i] = k / std::sqrt(4.0 * k * k - 1.0);
  }
  return t;
}

Tridiag laguerre(index_t n) {
  // Jacobi matrix of the Laguerre polynomials: d_i = 2i - 1, e_i = i.
  Tridiag t;
  t.d.resize(n);
  t.e.resize(n > 0 ? n - 1 : 0);
  for (index_t i = 0; i < n; ++i) t.d[i] = 2.0 * static_cast<double>(i + 1) - 1.0;
  for (index_t i = 0; i + 1 < n; ++i) t.e[i] = static_cast<double>(i + 1);
  return t;
}

Tridiag hermite(index_t n) {
  // Jacobi matrix of the Hermite polynomials: zero diagonal, e_i = sqrt(i/2).
  Tridiag t;
  t.d.assign(n, 0.0);
  t.e.resize(n > 0 ? n - 1 : 0);
  for (index_t i = 0; i + 1 < n; ++i) t.e[i] = std::sqrt(static_cast<double>(i + 1) / 2.0);
  return t;
}

Tridiag table3_matrix(int type, index_t n, std::uint64_t seed, double cond) {
  DNC_REQUIRE(type >= 1 && type <= 15, "table3_matrix: type must be 1..15");
  if (type <= 9) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(type) << 32));
    const auto spectrum = table3_spectrum(type, n, cond, rng);
    return tridiag_from_spectrum(spectrum, rng);
  }
  switch (type) {
    case 10: return onetwoone(n);
    case 11: return wilkinson(n);
    case 12: return clement(n);
    case 13: return legendre(n);
    case 14: return laguerre(n);
    default: return hermite(n);  // 15
  }
}

std::string table3_description(int type) {
  switch (type) {
    case 1: return "lambda_1=1, lambda_i=1/k";
    case 2: return "lambda_i=1 (i<n), lambda_n=1/k";
    case 3: return "geometric grading k^{-(i-1)/(n-1)}";
    case 4: return "arithmetic grading 1-((i-1)/(n-1))(1-1/k)";
    case 5: return "random, log-uniform";
    case 6: return "random, uniform";
    case 7: return "lambda_i=ulp*i, lambda_n=1";
    case 8: return "lambda_1=ulp, lambda_i=1+i*sqrt(ulp), lambda_n=2";
    case 9: return "lambda_1=1, lambda_i=lambda_{i-1}+100ulp";
    case 10: return "(1,2,1) tridiagonal";
    case 11: return "Wilkinson";
    case 12: return "Clement";
    case 13: return "Legendre";
    case 14: return "Laguerre";
    case 15: return "Hermite";
    default: return "unknown";
  }
}

}  // namespace dnc::matgen
