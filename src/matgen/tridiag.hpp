// Symmetric tridiagonal test matrices.
//
// Implements the full test set of the paper's Table III: types 1-9 are
// defined by a prescribed spectrum (realised as an actual tridiagonal
// matrix by the inverse-eigenvalue construction in lanczos.hpp), types
// 10-15 are classical matrices with known three-term recurrences.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dnc::matgen {

/// A symmetric tridiagonal matrix: diagonal d (n), off-diagonal e (n-1).
struct Tridiag {
  std::vector<double> d;
  std::vector<double> e;
  index_t n() const { return static_cast<index_t>(d.size()); }
};

// ---- Table III types 10-15 (analytic recurrences) ----

/// Type 10: the (1,2,1) matrix; eigenvalues 2 - 2cos(k pi/(n+1)).
Tridiag onetwoone(index_t n);

/// Type 11: Wilkinson W_n^+ (diagonal |m-i|-like, unit off-diagonals).
Tridiag wilkinson(index_t n);

/// Type 12: Clement matrix (zero diagonal, e_i = sqrt(i(n-i))),
/// eigenvalues +-(n-1), +-(n-3), ...
Tridiag clement(index_t n);

/// Type 13: Jacobi matrix of Legendre polynomials.
Tridiag legendre(index_t n);

/// Type 14: Jacobi matrix of Laguerre polynomials (d_i = 2i-1, e_i = i).
Tridiag laguerre(index_t n);

/// Type 15: Jacobi matrix of Hermite polynomials (zero diagonal,
/// e_i = sqrt(i/2)).
Tridiag hermite(index_t n);

// ---- Table III master entry point ----

/// Generates Table III type `type` (1..15) of dimension n. Types 1-9 go
/// through the prescribed-spectrum construction with the given seed;
/// `cond` is the paper's k parameter (1e6).
Tridiag table3_matrix(int type, index_t n, std::uint64_t seed = 42, double cond = 1.0e6);

/// Human-readable description of a Table III type.
std::string table3_description(int type);

}  // namespace dnc::matgen
