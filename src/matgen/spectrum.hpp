// Prescribed spectra for Table III types 1-9.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dnc::matgen {

/// Returns the eigenvalue multiset of Table III type 1..9 (ascending).
/// `cond` is the paper's k parameter; random types use `rng`.
std::vector<double> table3_spectrum(int type, index_t n, double cond, Rng& rng);

}  // namespace dnc::matgen
