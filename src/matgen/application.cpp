#include "matgen/application.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "matgen/lanczos.hpp"

namespace dnc::matgen {

Tridiag fem_laplacian_jump(index_t n, int njumps, Rng& rng) {
  DNC_REQUIRE(n >= 2, "fem_laplacian_jump: n >= 2");
  // Piecewise-constant coefficient c(x) over njumps+1 regions; the
  // assembled stiffness matrix row i is (-c_i, c_i + c_{i+1}, -c_{i+1}).
  std::vector<double> c(n + 1);
  const index_t region = std::max<index_t>(1, n / (njumps + 1));
  double level = std::pow(10.0, 3.0 * rng.uniform_sym());
  for (index_t i = 0; i <= n; ++i) {
    if (i % region == 0) level = std::pow(10.0, 3.0 * rng.uniform_sym());
    c[i] = level * (1.0 + 0.01 * rng.uniform_sym());
  }
  Tridiag t;
  t.d.resize(n);
  t.e.resize(n - 1);
  for (index_t i = 0; i < n; ++i) t.d[i] = c[i] + c[i + 1];
  for (index_t i = 0; i + 1 < n; ++i) t.e[i] = -c[i + 1];
  return t;
}

Tridiag glued_wilkinson(index_t block_size, index_t blocks, double glue) {
  DNC_REQUIRE(block_size >= 3 && blocks >= 1, "glued_wilkinson: bad shape");
  const index_t n = block_size * blocks;
  Tridiag w = wilkinson(block_size);
  Tridiag t;
  t.d.resize(n);
  t.e.assign(n - 1, 0.0);
  for (index_t b = 0; b < blocks; ++b) {
    const index_t off = b * block_size;
    for (index_t i = 0; i < block_size; ++i) t.d[off + i] = w.d[i];
    for (index_t i = 0; i + 1 < block_size; ++i) t.e[off + i] = w.e[i];
    if (b + 1 < blocks) t.e[off + block_size - 1] = glue;
  }
  return t;
}

Tridiag schroedinger_double_well(index_t n, double depth) {
  DNC_REQUIRE(n >= 2, "schroedinger_double_well: n >= 2");
  const double L = 8.0;
  const double h = 2.0 * L / static_cast<double>(n + 1);
  Tridiag t;
  t.d.resize(n);
  t.e.assign(n - 1, -1.0 / (h * h));
  for (index_t i = 0; i < n; ++i) {
    const double x = -L + h * static_cast<double>(i + 1);
    const double v = depth * (x * x - 4.0) * (x * x - 4.0) / 16.0;  // wells at +-2
    t.d[i] = 2.0 / (h * h) + v;
  }
  return t;
}

Tridiag grid2d_spectrum(index_t nx, index_t ny, Rng& rng) {
  // Eigenvalues of the 2-D 5-point Laplacian on an nx x ny grid:
  // 4 - 2cos(i pi/(nx+1)) - 2cos(j pi/(ny+1)); rich in multiplicities for
  // nx == ny. Realised as a tridiagonal via the inverse-eigenvalue
  // construction (this mirrors what a Lanczos run on the 2-D operator would
  // hand to a tridiagonal eigensolver).
  std::vector<double> lam;
  lam.reserve(nx * ny);
  const double pi = 3.14159265358979323846;
  for (index_t i = 1; i <= nx; ++i)
    for (index_t j = 1; j <= ny; ++j)
      lam.push_back(4.0 - 2.0 * std::cos(i * pi / (nx + 1)) - 2.0 * std::cos(j * pi / (ny + 1)));
  return tridiag_from_spectrum(lam, rng);
}

std::vector<NamedTridiag> application_suite(index_t max_n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedTridiag> suite;
  const auto cap = [max_n](index_t want) { return std::min(want, max_n); };

  suite.push_back({"fem_jump_small", fem_laplacian_jump(cap(450), 8, rng)});
  suite.push_back({"fem_jump_large", fem_laplacian_jump(cap(1800), 16, rng)});
  suite.push_back(
      {"glued_wilkinson_21x20", glued_wilkinson(21, std::max<index_t>(1, cap(420) / 21), 1e-4)});
  suite.push_back({"schroedinger_well", schroedinger_double_well(cap(1200), 40.0)});
  {
    const index_t g = std::max<index_t>(8, static_cast<index_t>(std::sqrt(double(cap(1600)))));
    suite.push_back({"grid2d_laplacian", grid2d_spectrum(g, g, rng)});
  }
  suite.push_back({"laguerre_app", laguerre(cap(900))});
  return suite;
}

}  // namespace dnc::matgen
