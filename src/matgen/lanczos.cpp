#include "matgen/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "common/error.hpp"
#include "common/machine.hpp"

namespace dnc::matgen {
namespace {

// Orthogonalizes v against the first j columns of Q (n x n, column-major)
// with classical Gram-Schmidt, twice (CGS2 is numerically equivalent to
// modified GS for this purpose but runs on gemv). Returns the norm of the
// result.
double reorthogonalize(index_t n, index_t j, const double* q, double* v,
                       std::vector<double>& coeff) {
  for (int pass = 0; pass < 2 && j > 0; ++pass) {
    blas::gemv(blas::Trans::Yes, n, j, 1.0, q, n, v, 0.0, coeff.data());
    blas::gemv(blas::Trans::No, n, j, -1.0, q, n, coeff.data(), 1.0, v);
  }
  return blas::nrm2(n, v);
}

struct Cluster {
  double value;     // representative eigenvalue
  index_t count;    // remaining multiplicity
};

}  // namespace

Tridiag tridiag_from_spectrum(const std::vector<double>& lambda, Rng& rng,
                              const SpectrumOptions& opt) {
  const index_t n = static_cast<index_t>(lambda.size());
  DNC_REQUIRE(n >= 1, "tridiag_from_spectrum: empty spectrum");
  Tridiag t;
  t.d.resize(n);
  t.e.assign(std::max<index_t>(0, n - 1), 0.0);
  if (n == 1) {
    t.d[0] = lambda[0];
    return t;
  }

  std::vector<double> sorted(lambda);
  std::sort(sorted.begin(), sorted.end());
  double scale = 0.0;
  for (double v : sorted) scale = std::max(scale, std::fabs(v));
  if (scale == 0.0) scale = 1.0;
  const double ulp = lamch_prec();
  const auto tiny = [&] { return opt.tiny_coupling ? scale * ulp * rng.uniform_sym() : 0.0; };

  // Numerical clusters of the sorted spectrum. In exact arithmetic each
  // Lanczos block (started from a generic vector in the current invariant
  // complement) captures exactly one copy of every cluster that still has
  // copies left, then breaks down.
  std::vector<Cluster> clusters;
  for (index_t i = 0; i < n; ++i) {
    if (!clusters.empty() && std::fabs(sorted[i] - clusters.back().value) <= 4.0 * ulp * scale)
      ++clusters.back().count;
    else
      clusters.push_back({sorted[i], 1});
  }

  Matrix q(n, n);
  std::vector<double> v(n), av(n), coeff(n);

  index_t j = 0;  // number of completed Lanczos vectors / filled diagonal entries
  while (j < n) {
    index_t live = 0;
    const Cluster* lone = nullptr;
    for (const Cluster& c : clusters)
      if (c.count > 0) {
        ++live;
        lone = &c;
      }
    if (live == 1) {
      // Only one numerical cluster left: the complement is (numerically) an
      // eigenspace, so the remaining block is a scaled identity. Filling it
      // directly avoids O(n^2) work per remaining step.
      for (; j < n; ++j) {
        t.d[j] = lone->value;
        if (j > 0 && t.e[j - 1] == 0.0) t.e[j - 1] = tiny();
      }
      break;
    }

    // --- start (or restart) vector, orthogonal to everything captured ---
    for (index_t i = 0; i < n; ++i) v[i] = rng.normal();
    double nrm = reorthogonalize(n, j, q.data(), v.data(), coeff);
    int attempts = 0;
    while (nrm < 1e-8 && attempts++ < 8) {
      for (index_t i = 0; i < n; ++i) v[i] = rng.normal();
      nrm = reorthogonalize(n, j, q.data(), v.data(), coeff);
    }
    DNC_REQUIRE(nrm > 0.0, "tridiag_from_spectrum: cannot restart Lanczos");
    blas::scal(n, 1.0 / nrm, v.data());
    blas::copy(n, v.data(), q.data() + j * n);
    if (j > 0) t.e[j - 1] = tiny();

    // --- Lanczos block until breakdown or completion ---
    const index_t block_start = j;
    while (j < n) {
      double* qj = q.data() + j * n;
      for (index_t i = 0; i < n; ++i) av[i] = sorted[i] * qj[i];
      t.d[j] = blas::dot(n, qj, av.data());
      if (j + 1 == n) {
        ++j;
        break;
      }
      blas::copy(n, av.data(), v.data());
      const double beta = reorthogonalize(n, j + 1, q.data(), v.data(), coeff);
      if (beta <= opt.breakdown_tol * scale) {
        ++j;
        break;
      }
      t.e[j] = beta;
      blas::scal(n, 1.0 / beta, v.data());
      blas::copy(n, v.data(), q.data() + (j + 1) * n);
      ++j;
    }

    // Update the cluster model: a generic block captures one copy of each
    // live cluster. Only decrement when the observed block size matches the
    // model; otherwise fall back to pure Lanczos (correct, just without the
    // fill shortcut).
    const index_t block_size = j - block_start;
    if (block_size == live) {
      for (Cluster& c : clusters)
        if (c.count > 0) --c.count;
    }
  }
  return t;
}

}  // namespace dnc::matgen
