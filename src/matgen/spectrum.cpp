#include "matgen/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/machine.hpp"

namespace dnc::matgen {

std::vector<double> table3_spectrum(int type, index_t n, double cond, Rng& rng) {
  DNC_REQUIRE(n >= 1, "table3_spectrum: n >= 1");
  DNC_REQUIRE(type >= 1 && type <= 9, "table3_spectrum: type must be 1..9");
  const double ulp = lamch_prec();
  std::vector<double> w(n);
  switch (type) {
    case 1:
      // lambda_1 = 1, lambda_i = 1/k.
      w[0] = 1.0;
      for (index_t i = 1; i < n; ++i) w[i] = 1.0 / cond;
      break;
    case 2:
      // lambda_i = 1 except lambda_n = 1/k.
      for (index_t i = 0; i + 1 < n; ++i) w[i] = 1.0;
      w[n - 1] = 1.0 / cond;
      break;
    case 3:
      // Geometric grading k^{-(i-1)/(n-1)}.
      for (index_t i = 0; i < n; ++i)
        w[i] = n == 1 ? 1.0 : std::pow(cond, -static_cast<double>(i) / (n - 1));
      break;
    case 4:
      // Arithmetic grading 1 - (i-1)/(n-1) (1 - 1/k).
      for (index_t i = 0; i < n; ++i)
        w[i] = n == 1 ? 1.0 : 1.0 - (static_cast<double>(i) / (n - 1)) * (1.0 - 1.0 / cond);
      break;
    case 5:
      // Random with logarithm uniformly distributed in [log(1/k), 0].
      for (index_t i = 0; i < n; ++i) w[i] = std::exp(-rng.uniform01() * std::log(cond));
      break;
    case 6:
      // Plain random numbers in (1/k, 1).
      for (index_t i = 0; i < n; ++i) w[i] = 1.0 / cond + (1.0 - 1.0 / cond) * rng.uniform01();
      break;
    case 7:
      // lambda_i = ulp * i, last one 1.
      for (index_t i = 0; i + 1 < n; ++i) w[i] = ulp * static_cast<double>(i + 1);
      w[n - 1] = 1.0;
      break;
    case 8:
      // lambda_1 = ulp, interior 1 + i*sqrt(ulp), last 2.
      w[0] = ulp;
      for (index_t i = 1; i + 1 < n; ++i) w[i] = 1.0 + static_cast<double>(i + 1) * std::sqrt(ulp);
      if (n > 1) w[n - 1] = 2.0;
      break;
    case 9:
      // lambda_1 = 1, lambda_i = lambda_{i-1} + 100 ulp.
      w[0] = 1.0;
      for (index_t i = 1; i < n; ++i) w[i] = w[i - 1] + 100.0 * ulp;
      break;
  }
  std::sort(w.begin(), w.end());
  return w;
}

}  // namespace dnc::matgen
