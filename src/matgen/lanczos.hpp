// Inverse eigenvalue construction: build an (essentially) unreduced
// symmetric tridiagonal matrix with a prescribed spectrum.
//
// Method: Lanczos applied to diag(lambda) with a random unit start vector
// and full (twice-iterated classical Gram-Schmidt) reorthogonalization.
// The produced T = Q^T diag(lambda) Q is tridiagonal and similar to
// diag(lambda) by construction. When the spectrum contains multiplicities
// the Krylov space is deficient and Lanczos breaks down (beta ~ 0); we then
// restart in the orthogonal complement, which yields a block-diagonal T
// whose blocks jointly carry the full multiset. Boundary couplings are set
// to ulp-level noise instead of exact zeros, matching what a dense
// reduction of a multiple-eigenvalue matrix produces -- this is exactly the
// structure that drives the near-100% deflation of Table III types 1 and 2.
#pragma once

#include "common/rng.hpp"
#include "matgen/tridiag.hpp"

namespace dnc::matgen {

struct SpectrumOptions {
  /// Breakdown threshold relative to the spectrum's magnitude.
  double breakdown_tol = 1.0e-13;
  /// Replace breakdown zeros by ulp-scale couplings (true reproduces the
  /// numerics of a reduced dense matrix; false leaves an exactly reducible
  /// matrix).
  bool tiny_coupling = true;
};

/// lambda may be in any order and may contain repeats.
Tridiag tridiag_from_spectrum(const std::vector<double>& lambda, Rng& rng,
                              const SpectrumOptions& opt = SpectrumOptions{});

}  // namespace dnc::matgen
