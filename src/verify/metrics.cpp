#include "verify/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "blas/aux.hpp"
#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "lapack/bisect.hpp"

namespace dnc::verify {

double orthogonality(const Matrix& v) {
  const index_t n = v.rows();
  DNC_REQUIRE(v.cols() == n, "orthogonality: V must be square");
  if (n == 0) return 0.0;
  // Compute G = V^T V in panels to bound workspace, track max |G - I|.
  const index_t nb = std::min<index_t>(n, 256);
  Matrix g(n, nb);
  double worst = 0.0;
  for (index_t j0 = 0; j0 < n; j0 += nb) {
    const index_t w = std::min(nb, n - j0);
    blas::gemm(blas::Trans::Yes, blas::Trans::No, n, w, n, 1.0, v.data(), v.ld(),
               v.data() + j0 * v.ld(), v.ld(), 0.0, g.data(), g.ld());
    for (index_t j = 0; j < w; ++j) {
      for (index_t i = 0; i < n; ++i) {
        const double target = (i == j0 + j) ? 1.0 : 0.0;
        worst = std::max(worst, std::fabs(g(i, j) - target));
      }
    }
  }
  return worst / static_cast<double>(n);
}

double reduction_residual(const matgen::Tridiag& t, const std::vector<double>& lam,
                          const Matrix& v) {
  const index_t n = t.n();
  DNC_REQUIRE(v.rows() == n && v.cols() == n, "reduction_residual: shape mismatch");
  DNC_REQUIRE(static_cast<index_t>(lam.size()) == n, "reduction_residual: lambda size");
  if (n == 0) return 0.0;
  double worst = 0.0;
  // Residual column j: T v_j - lam_j v_j, tridiagonal product is O(n).
  for (index_t j = 0; j < n; ++j) {
    const double* col = v.data() + j * v.ld();
    for (index_t i = 0; i < n; ++i) {
      double r = t.d[i] * col[i];
      if (i > 0) r += t.e[i - 1] * col[i - 1];
      if (i + 1 < n) r += t.e[i] * col[i + 1];
      r -= lam[j] * col[i];
      worst = std::max(worst, std::fabs(r));
    }
  }
  const double tnorm = std::max(blas::lanst_one(n, t.d.data(), t.e.data()),
                                std::numeric_limits<double>::min());
  return worst / (tnorm * static_cast<double>(n));
}

double eigenvalue_error_vs_bisection(const matgen::Tridiag& t, const std::vector<double>& lam) {
  const auto ref = lapack::bisect_all(t.n(), t.d.data(), t.e.data());
  return max_relative_difference(lam, ref);
}

double max_relative_difference(const std::vector<double>& lam, const std::vector<double>& ref) {
  DNC_REQUIRE(lam.size() == ref.size(), "max_relative_difference: size mismatch");
  double scale = 0.0;
  for (double r : ref) scale = std::max(scale, std::fabs(r));
  if (scale == 0.0) scale = 1.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < lam.size(); ++i)
    worst = std::max(worst, std::fabs(lam[i] - ref[i]) / scale);
  return worst;
}

}  // namespace dnc::verify
