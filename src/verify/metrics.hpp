// Accuracy metrics matching the paper's Figure 9:
//   orthogonality  ||I - V V^T|| / n
//   reduction      ||T - V Lambda V^T|| / (||T|| n)
// plus eigenvalue cross-checks against bisection. Norms are max-norms of
// the residual matrices (computed without forming n x n intermediates where
// possible).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "matgen/tridiag.hpp"

namespace dnc::verify {

/// ||I - V^T V||_max / n  (V n x n column-major).
double orthogonality(const Matrix& v);

/// ||T V - V diag(lam)||_max / (||T||_1 * n): the reduction residual of the
/// paper evaluated column-wise (equivalent up to a factor of the norm used).
double reduction_residual(const matgen::Tridiag& t, const std::vector<double>& lam,
                          const Matrix& v);

/// Max relative eigenvalue error against bisection:
/// max_i |lam_i - mu_i| / max(|mu|, tiny). Assumes both ascending.
double eigenvalue_error_vs_bisection(const matgen::Tridiag& t, const std::vector<double>& lam);

/// Max |lam_i - ref_i| / scale for two ascending lists.
double max_relative_difference(const std::vector<double>& lam, const std::vector<double>& ref);

}  // namespace dnc::verify
