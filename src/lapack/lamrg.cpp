#include "lapack/lamrg.hpp"

namespace dnc::lapack {

template <typename Real>
void lamrg(index_t n1, index_t n2, const Real* a, int dtrd1, int dtrd2, index_t* perm) {
  index_t ind1 = dtrd1 > 0 ? 0 : n1 - 1;
  index_t ind2 = dtrd2 > 0 ? n1 : n1 + n2 - 1;
  index_t i = 0;
  index_t r1 = n1, r2 = n2;
  while (r1 > 0 && r2 > 0) {
    if (a[ind1] <= a[ind2]) {
      perm[i++] = ind1;
      ind1 += dtrd1;
      --r1;
    } else {
      perm[i++] = ind2;
      ind2 += dtrd2;
      --r2;
    }
  }
  while (r1-- > 0) {
    perm[i++] = ind1;
    ind1 += dtrd1;
  }
  while (r2-- > 0) {
    perm[i++] = ind2;
    ind2 += dtrd2;
  }
}

template void lamrg<double>(index_t, index_t, const double*, int, int, index_t*);
template void lamrg<float>(index_t, index_t, const float*, int, int, index_t*);

}  // namespace dnc::lapack
