// Secular equation solver (dlaed4/dlaed5 equivalents).
//
// Computes the i-th root of
//     f(lambda) = 1 + rho * sum_j z_j^2 / (d_j - lambda) = 0
// for strictly increasing d, rho > 0 and nonzero z_j (both guaranteed by the
// deflation step). The i-th root lies in (d_i, d_{i+1}) for i < k-1 and in
// (d_{k-1}, d_{k-1} + rho * ||z||^2) for i = k-1.
//
// The iteration follows the scheme of Ren-Cang Li used in LAPACK: work in a
// shifted coordinate tau relative to the closest pole so that differences
// d_j - lambda retain high relative accuracy, and take steps from a rational
// three-pole model (two explicit poles adjacent to the root plus a constant
// absorbing the rest), safeguarded by a shrinking bracket with bisection
// fallback.
//
// Templated on the working precision: the fp32 instantiation runs the same
// iteration with float epsilon driving the ERRETM convergence floor, so it
// converges in similar iteration counts to fp32-level accuracy.
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

template <typename Real>
struct SecularResultT {
  Real lambda = Real(0);  ///< the computed root
  Real origin = Real(0);  ///< pole used as shift origin
  Real tau = Real(0);     ///< lambda = origin + tau
  int iterations = 0;     ///< rational-iteration count
};

using SecularResult = SecularResultT<double>;

/// Solves for root `i` (0-based) of the k-dimensional secular equation.
/// delta[j] (length k) receives d_j - lambda, computed as
/// (d_j - origin) - tau so that entries adjacent to the root carry high
/// relative accuracy (required by the Gu-Eisenstat z-hat formula).
template <typename Real>
SecularResultT<Real> laed4(index_t k, index_t i, const Real* d, const Real* z, Real rho,
                           Real* delta);

/// Closed-form 2x2 case (dlaed5): i-th eigenvalue of D + rho z z^T, k = 2.
template <typename Real>
Real laed5(index_t i, const Real* d, const Real* z, Real rho, Real* delta);

}  // namespace dnc::lapack
