#include "lapack/steqr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "lapack/laev2.hpp"
#include "lapack/rotations.hpp"

namespace dnc::lapack {
namespace {

template <typename Real>
Real sign_of(Real a, Real b) {
  return b >= Real(0) ? std::fabs(a) : -std::fabs(a);
}

// Applies the stored rotation sequence to columns [jl, jm] of Z, matching
// dlasr('R','V',direct). For direct='B' rotations are applied from the last
// plane to the first; for 'F' the other way around. cwork/swork are indexed
// by the left column of each plane.
template <typename Real>
void apply_plane_rotations(Real* z, index_t ldz, index_t nrows, index_t jl, index_t jm,
                           const Real* cwork, const Real* swork, bool backward) {
  if (z == nullptr || jm <= jl) return;
  if (backward) {
    for (index_t j = jm - 1; j >= jl; --j) {
      const Real c = cwork[j];
      const Real s = swork[j];
      Real* colj = z + j * ldz;
      Real* colj1 = z + (j + 1) * ldz;
      for (index_t i = 0; i < nrows; ++i) {
        const Real temp = colj1[i];
        colj1[i] = c * temp - s * colj[i];
        colj[i] = s * temp + c * colj[i];
      }
    }
  } else {
    for (index_t j = jl; j < jm; ++j) {
      const Real c = cwork[j];
      const Real s = swork[j];
      Real* colj = z + j * ldz;
      Real* colj1 = z + (j + 1) * ldz;
      for (index_t i = 0; i < nrows; ++i) {
        const Real temp = colj1[i];
        colj1[i] = c * temp - s * colj[i];
        colj[i] = s * temp + c * colj[i];
      }
    }
  }
}

}  // namespace

template <typename Real>
void steqr(CompZ compz, index_t n, Real* d, Real* e, Real* z, index_t ldz) {
  DNC_REQUIRE(n >= 0, "steqr: n must be >= 0");
  const bool wantz = compz != CompZ::None;
  if (wantz) DNC_REQUIRE(z != nullptr && ldz >= std::max<index_t>(1, n), "steqr: bad Z");
  if (n == 0) return;
  if (compz == CompZ::Identity) blas::laset(n, n, Real(0), Real(1), z, ldz);
  if (n == 1) return;

  const Real eps = real_traits<Real>::eps();
  const Real eps2 = eps * eps;
  const Real safmin = real_traits<Real>::safmin();
  const auto bounds = steqr_scale_bounds_t<Real>();
  const index_t nmaxit = n * 30;
  index_t jtot = 0;

  std::vector<Real> cwork(n), swork(n);

  // l1 marks the start of the next unreduced block to process.
  index_t l1 = 0;

  for (;;) {
    if (l1 > n - 1) break;
    if (l1 > 0) e[l1 - 1] = Real(0);
    // Find the end of the unreduced block starting at l1: the first m with a
    // negligible off-diagonal splits the problem.
    index_t m = n - 1;
    for (index_t mm = l1; mm < n - 1; ++mm) {
      const Real tst = std::fabs(e[mm]);
      if (tst == Real(0)) {
        m = mm;
        break;
      }
      if (tst <= (std::sqrt(std::fabs(d[mm])) * std::sqrt(std::fabs(d[mm + 1]))) * eps) {
        e[mm] = Real(0);
        m = mm;
        break;
      }
    }

    index_t l = l1;
    index_t lend = m;
    const index_t lsv = l, lendsv = lend;
    l1 = m + 1;
    if (lend == l) continue;  // 1x1 block: already an eigenvalue

    // Scale the submatrix to a safe range.
    const Real anorm = blas::lanst_max(lend - l + 1, d + l, e + l);
    Real scale_applied = Real(0);  // 0 = none, else the cfrom used
    if (anorm == Real(0)) continue;
    if (anorm > bounds.ssfmax) {
      scale_applied = anorm;
      blas::lascl(lend - l + 1, 1, anorm, bounds.ssfmax, d + l, n);
      blas::lascl(lend - l, 1, anorm, bounds.ssfmax, e + l, n);
    } else if (anorm < bounds.ssfmin) {
      scale_applied = anorm;
      blas::lascl(lend - l + 1, 1, anorm, bounds.ssfmin, d + l, n);
      blas::lascl(lend - l, 1, anorm, bounds.ssfmin, e + l, n);
    }

    // Choose between QL and QR: iterate from the end with the smaller
    // diagonal entry for graded matrices.
    if (std::fabs(d[lend]) < std::fabs(d[l])) {
      std::swap(lend, l);
    }

    bool failed = false;
    if (lend > l) {
      // QL iteration: look for small subdiagonal elements going up.
      for (;;) {
        index_t msub = lend;
        if (l != lend) {
          msub = lend;
          for (index_t mm = l; mm < lend; ++mm) {
            const Real tst = std::fabs(e[mm]) * std::fabs(e[mm]);
            if (tst <= (eps2 * std::fabs(d[mm])) * std::fabs(d[mm + 1]) + safmin) {
              msub = mm;
              break;
            }
          }
        }
        if (msub < lend) e[msub] = Real(0);
        Real p = d[l];
        if (msub == l) {
          // Eigenvalue found.
          d[l] = p;
          ++l;
          if (l > lend) break;
          continue;
        }
        if (msub == l + 1) {
          // 2x2 block: solve directly.
          Real rt1, rt2;
          if (wantz) {
            Real c, s;
            laev2(d[l], e[l], d[l + 1], rt1, rt2, c, s);
            cwork[l] = c;
            swork[l] = s;
            apply_plane_rotations(z, ldz, n, l, l + 1, cwork.data(), swork.data(), true);
          } else {
            lae2(d[l], e[l], d[l + 1], rt1, rt2);
          }
          d[l] = rt1;
          d[l + 1] = rt2;
          e[l] = Real(0);
          l += 2;
          if (l > lend) break;
          continue;
        }
        if (jtot == nmaxit) {
          failed = true;
          break;
        }
        ++jtot;
        // Form Wilkinson shift.
        Real g = (d[l + 1] - p) / (Real(2) * e[l]);
        Real r = lapy2(g, Real(1));
        g = d[msub] - p + (e[l] / (g + sign_of(r, g)));
        Real s = Real(1), c = Real(1);
        p = Real(0);
        // Inner QL sweep.
        for (index_t i = msub - 1; i >= l; --i) {
          Real f = s * e[i];
          const Real b = c * e[i];
          lartg(g, f, c, s, r);
          if (i != msub - 1) e[i + 1] = r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + Real(2) * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (wantz) {
            cwork[i] = c;
            swork[i] = -s;
          }
        }
        if (wantz) apply_plane_rotations(z, ldz, n, l, msub, cwork.data(), swork.data(), true);
        d[l] -= p;
        e[l] = g;
      }
    } else {
      // QR iteration: look for small superdiagonal elements going down.
      for (;;) {
        index_t msub = lend;
        if (l != lend) {
          msub = lend;
          for (index_t mm = l; mm > lend; --mm) {
            const Real tst = std::fabs(e[mm - 1]) * std::fabs(e[mm - 1]);
            if (tst <= (eps2 * std::fabs(d[mm])) * std::fabs(d[mm - 1]) + safmin) {
              msub = mm;
              break;
            }
          }
        }
        if (msub > lend) e[msub - 1] = Real(0);
        Real p = d[l];
        if (msub == l) {
          d[l] = p;
          --l;
          if (l < lend) break;
          continue;
        }
        if (msub == l - 1) {
          Real rt1, rt2;
          if (wantz) {
            Real c, s;
            laev2(d[l - 1], e[l - 1], d[l], rt1, rt2, c, s);
            // dsteqr stores (c, s) then applies a single forward rotation on
            // columns (l-1, l).
            cwork[l - 1] = c;
            swork[l - 1] = s;
            apply_plane_rotations(z, ldz, n, l - 1, l, cwork.data(), swork.data(), false);
          } else {
            lae2(d[l - 1], e[l - 1], d[l], rt1, rt2);
          }
          d[l - 1] = rt1;
          d[l] = rt2;
          e[l - 1] = Real(0);
          l -= 2;
          if (l < lend) break;
          continue;
        }
        if (jtot == nmaxit) {
          failed = true;
          break;
        }
        ++jtot;
        Real g = (d[l - 1] - p) / (Real(2) * e[l - 1]);
        Real r = lapy2(g, Real(1));
        g = d[msub] - p + (e[l - 1] / (g + sign_of(r, g)));
        Real s = Real(1), c = Real(1);
        p = Real(0);
        for (index_t i = msub; i <= l - 1; ++i) {
          Real f = s * e[i];
          const Real b = c * e[i];
          lartg(g, f, c, s, r);
          if (i != msub) e[i - 1] = r;
          g = d[i] - p;
          r = (d[i + 1] - g) * s + Real(2) * c * b;
          p = s * r;
          d[i] = g + p;
          g = c * r - b;
          if (wantz) {
            cwork[i] = c;
            swork[i] = s;
          }
        }
        if (wantz) apply_plane_rotations(z, ldz, n, msub, l, cwork.data(), swork.data(), false);
        d[l] -= p;
        e[l - 1] = g;
      }
    }

    // Undo scaling.
    if (scale_applied != Real(0)) {
      const Real target = (scale_applied > bounds.ssfmax) ? bounds.ssfmax : bounds.ssfmin;
      blas::lascl(lendsv - lsv + 1, 1, target, scale_applied, d + lsv, n);
      blas::lascl(lendsv - lsv, 1, target, scale_applied, e + lsv, n);
    }
    if (failed) {
      // Count the number of non-converged off-diagonals for the info code.
      index_t bad = 0;
      for (index_t i = 0; i < n - 1; ++i)
        if (e[i] != Real(0)) ++bad;
      throw NumericalError("steqr failed to converge", bad);
    }
  }

  // Sort eigenvalues (and eigenvectors) in ascending order.
  if (!wantz) {
    std::sort(d, d + n);
    return;
  }
  // Selection sort to minimise eigenvector column swaps, as in dsteqr.
  for (index_t ii = 1; ii < n; ++ii) {
    const index_t i = ii - 1;
    index_t k = i;
    Real p = d[i];
    for (index_t j = ii; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      blas::swap(n, z + i * ldz, z + k * ldz);
    }
  }
}

template void steqr<double>(CompZ, index_t, double*, double*, double*, index_t);
template void steqr<float>(CompZ, index_t, float*, float*, float*, index_t);

}  // namespace dnc::lapack
