#include "lapack/laev2.hpp"

#include <cmath>

namespace dnc::lapack {

void lae2(double a, double b, double c, double& rt1, double& rt2) {
  const double sm = a + c;
  const double df = a - c;
  const double adf = std::fabs(df);
  const double tb = b + b;
  const double ab = std::fabs(tb);
  double acmx, acmn;
  if (std::fabs(a) > std::fabs(c)) {
    acmx = a;
    acmn = c;
  } else {
    acmx = c;
    acmn = a;
  }
  double rt;
  if (adf > ab) {
    const double r = ab / adf;
    rt = adf * std::sqrt(1.0 + r * r);
  } else if (adf < ab) {
    const double r = adf / ab;
    rt = ab * std::sqrt(1.0 + r * r);
  } else {
    rt = ab * std::sqrt(2.0);
  }
  if (sm < 0.0) {
    rt1 = 0.5 * (sm - rt);
    // Order of operations important for accuracy of the smaller eigenvalue.
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else if (sm > 0.0) {
    rt1 = 0.5 * (sm + rt);
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else {
    rt1 = 0.5 * rt;
    rt2 = -0.5 * rt;
  }
}

void laev2(double a, double b, double c, double& rt1, double& rt2, double& cs1, double& sn1) {
  const double sm = a + c;
  const double df = a - c;
  const double adf = std::fabs(df);
  const double tb = b + b;
  const double ab = std::fabs(tb);
  double acmx, acmn;
  if (std::fabs(a) > std::fabs(c)) {
    acmx = a;
    acmn = c;
  } else {
    acmx = c;
    acmn = a;
  }
  double rt;
  if (adf > ab) {
    const double r = ab / adf;
    rt = adf * std::sqrt(1.0 + r * r);
  } else if (adf < ab) {
    const double r = adf / ab;
    rt = ab * std::sqrt(1.0 + r * r);
  } else {
    rt = ab * std::sqrt(2.0);
  }
  int sgn1;
  if (sm < 0.0) {
    rt1 = 0.5 * (sm - rt);
    sgn1 = -1;
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else if (sm > 0.0) {
    rt1 = 0.5 * (sm + rt);
    sgn1 = 1;
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else {
    rt1 = 0.5 * rt;
    rt2 = -0.5 * rt;
    sgn1 = 1;
  }
  // Compute the eigenvector for rt1.
  double cs;
  int sgn2;
  if (df >= 0.0) {
    cs = df + rt;
    sgn2 = 1;
  } else {
    cs = df - rt;
    sgn2 = -1;
  }
  const double acs = std::fabs(cs);
  if (acs > ab) {
    const double ct = -tb / cs;
    sn1 = 1.0 / std::sqrt(1.0 + ct * ct);
    cs1 = ct * sn1;
  } else {
    if (ab == 0.0) {
      cs1 = 1.0;
      sn1 = 0.0;
    } else {
      const double tn = -cs / tb;
      cs1 = 1.0 / std::sqrt(1.0 + tn * tn);
      sn1 = tn * cs1;
    }
  }
  if (sgn1 == sgn2) {
    const double tn = cs1;
    cs1 = -sn1;
    sn1 = tn;
  }
}

}  // namespace dnc::lapack
