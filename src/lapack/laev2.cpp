#include "lapack/laev2.hpp"

#include <cmath>

namespace dnc::lapack {

template <typename Real>
void lae2(Real a, Real b, Real c, Real& rt1, Real& rt2) {
  const Real sm = a + c;
  const Real df = a - c;
  const Real adf = std::fabs(df);
  const Real tb = b + b;
  const Real ab = std::fabs(tb);
  Real acmx, acmn;
  if (std::fabs(a) > std::fabs(c)) {
    acmx = a;
    acmn = c;
  } else {
    acmx = c;
    acmn = a;
  }
  Real rt;
  if (adf > ab) {
    const Real r = ab / adf;
    rt = adf * std::sqrt(Real(1) + r * r);
  } else if (adf < ab) {
    const Real r = adf / ab;
    rt = ab * std::sqrt(Real(1) + r * r);
  } else {
    rt = ab * std::sqrt(Real(2));
  }
  if (sm < Real(0)) {
    rt1 = Real(0.5) * (sm - rt);
    // Order of operations important for accuracy of the smaller eigenvalue.
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else if (sm > Real(0)) {
    rt1 = Real(0.5) * (sm + rt);
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else {
    rt1 = Real(0.5) * rt;
    rt2 = Real(-0.5) * rt;
  }
}

template <typename Real>
void laev2(Real a, Real b, Real c, Real& rt1, Real& rt2, Real& cs1, Real& sn1) {
  const Real sm = a + c;
  const Real df = a - c;
  const Real adf = std::fabs(df);
  const Real tb = b + b;
  const Real ab = std::fabs(tb);
  Real acmx, acmn;
  if (std::fabs(a) > std::fabs(c)) {
    acmx = a;
    acmn = c;
  } else {
    acmx = c;
    acmn = a;
  }
  Real rt;
  if (adf > ab) {
    const Real r = ab / adf;
    rt = adf * std::sqrt(Real(1) + r * r);
  } else if (adf < ab) {
    const Real r = adf / ab;
    rt = ab * std::sqrt(Real(1) + r * r);
  } else {
    rt = ab * std::sqrt(Real(2));
  }
  int sgn1;
  if (sm < Real(0)) {
    rt1 = Real(0.5) * (sm - rt);
    sgn1 = -1;
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else if (sm > Real(0)) {
    rt1 = Real(0.5) * (sm + rt);
    sgn1 = 1;
    rt2 = (acmx / rt1) * acmn - (b / rt1) * b;
  } else {
    rt1 = Real(0.5) * rt;
    rt2 = Real(-0.5) * rt;
    sgn1 = 1;
  }
  // Compute the eigenvector for rt1.
  Real cs;
  int sgn2;
  if (df >= Real(0)) {
    cs = df + rt;
    sgn2 = 1;
  } else {
    cs = df - rt;
    sgn2 = -1;
  }
  const Real acs = std::fabs(cs);
  if (acs > ab) {
    const Real ct = -tb / cs;
    sn1 = Real(1) / std::sqrt(Real(1) + ct * ct);
    cs1 = ct * sn1;
  } else {
    if (ab == Real(0)) {
      cs1 = Real(1);
      sn1 = Real(0);
    } else {
      const Real tn = -cs / tb;
      cs1 = Real(1) / std::sqrt(Real(1) + tn * tn);
      sn1 = tn * cs1;
    }
  }
  if (sgn1 == sgn2) {
    const Real tn = cs1;
    cs1 = -sn1;
    sn1 = tn;
  }
}

template void lae2<double>(double, double, double, double&, double&);
template void lae2<float>(float, float, float, float&, float&);
template void laev2<double>(double, double, double, double&, double&, double&, double&);
template void laev2<float>(float, float, float, float&, float&, float&, float&);

}  // namespace dnc::lapack
