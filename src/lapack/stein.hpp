// Inverse iteration for tridiagonal eigenvectors (dstein equivalent) and
// the classical Bisection + Inverse Iteration (BI) eigensolver built on it
// -- one of the four tridiagonal algorithms in LAPACK (with QR, D&C and
// MRRR) and the paper's introduction. stein_vector is templated on the
// working precision; the BI driver stays double (it is a test oracle).
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dnc::lapack {

/// Eigenvector of the tridiagonal (d, e) for the given eigenvalue by
/// inverse iteration (LU with partial pivoting, a few iterations),
/// reorthogonalised against `nprev` previously computed vectors (columns of
/// `prev`, leading dimension ldprev). z (length n) receives a unit vector.
template <typename Real>
void stein_vector(index_t n, const Real* d, const Real* e, Real lambda, const Real* prev,
                  index_t ldprev, index_t nprev, Real* z, Rng& rng);

/// Full BI eigensolver: eigenvalues by Sturm bisection, eigenvectors by
/// inverse iteration with reorthogonalisation inside clusters (entries
/// closer than reorth_tol * ||T|| are treated as one cluster, as dstein
/// does). lam ascending, v resized to n x n.
void bi_solve(index_t n, const double* d, const double* e, std::vector<double>& lam,
              Matrix& v, double reorth_tol = 1.0e-5);

}  // namespace dnc::lapack
