// Givens rotation generation and overflow-safe 2-norm helpers
// (dlartg / dlapy2 equivalents), templated on the working precision.
#pragma once

namespace dnc::lapack {

/// sqrt(x^2 + y^2) without unnecessary overflow (dlapy2).
template <typename Real>
Real lapy2(Real x, Real y);

/// Generates c, s, r such that [c s; -s c] * [f; g] = [r; 0] (dlartg).
/// c >= 0 is NOT guaranteed (matches LAPACK's convention where r carries
/// the sign of the dominant input).
template <typename Real>
void lartg(Real f, Real g, Real& c, Real& s, Real& r);

}  // namespace dnc::lapack
