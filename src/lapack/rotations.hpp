// Givens rotation generation and overflow-safe 2-norm helpers
// (dlartg / dlapy2 equivalents).
#pragma once

namespace dnc::lapack {

/// sqrt(x^2 + y^2) without unnecessary overflow (dlapy2).
double lapy2(double x, double y);

/// Generates c, s, r such that [c s; -s c] * [f; g] = [r; 0] (dlartg).
/// c >= 0 is NOT guaranteed (matches LAPACK's convention where r carries
/// the sign of the dominant input).
void lartg(double f, double g, double& c, double& s, double& r);

}  // namespace dnc::lapack
