#include "lapack/laed4.hpp"

#include <algorithm>
#include <cmath>

#include "blas/simd/kernels.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "obs/counters.hpp"

namespace dnc::lapack {
namespace {

template <typename Real>
struct SecularEval {
  Real w;     ///< f value: 1 + rho*(psi + phi)
  Real dpsi;  ///< derivative of the left part (j <= split)
  Real dphi;  ///< derivative of the right part (j > split)
  Real asum;  ///< sum of |terms|, for the convergence tolerance
  Real dw() const { return dpsi + dphi; }
};

// Evaluates f and the side-split derivatives at lambda = origin + tau given
// precomputed delta0[j] = d[j] - origin. The split index separates the psi
// sum (poles left of the root, j <= split) from the phi sum -- the
// fixed-weight rational model needs the full per-side derivative sums, not
// just the adjacent poles' contributions.
template <typename Real>
SecularEval<Real> evaluate(index_t k, const Real* delta0, const Real* z, Real rho, Real tau,
                           index_t split) {
  SecularEval<Real> ev{Real(1), Real(0), Real(0), Real(1)};
  // Vectorized pole sums (the hot loop of every LAED4 task): one pass per
  // side of the split so the per-side derivative sums stay separate.
  const auto& kt = blas::simd::kernels_t<Real>();
  kt.laed4_sums(0, split + 1, delta0, z, rho, tau, &ev.w, &ev.dpsi, &ev.asum);
  kt.laed4_sums(split + 1, k, delta0, z, rho, tau, &ev.w, &ev.dphi, &ev.asum);
  return ev;
}

// Solves the quadratic c*eta^2 - a*eta + b = 0 arising from the three-pole
// model, returning the root on the correct side (the one LAPACK picks via
// the numerically stable formula).
template <typename Real>
Real solve_model_quadratic(Real a, Real b, Real c) {
  if (c == Real(0)) {
    if (a == Real(0)) return Real(0);
    return b / a;
  }
  const Real disc = std::max(Real(0), a * a - Real(4) * b * c);
  const Real sq = std::sqrt(disc);
  if (a <= Real(0)) return (a - sq) / (Real(2) * c);
  return (Real(2) * b) / (a + sq);
}

}  // namespace

template <typename Real>
Real laed5(index_t i, const Real* d, const Real* z, Real rho, Real* delta) {
  DNC_REQUIRE(i == 0 || i == 1, "laed5: i out of range");
  const Real del = d[1] - d[0];
  Real lambda;
  if (i == 0) {
    const Real b = del + rho * (z[0] * z[0] + z[1] * z[1]);
    const Real c = rho * z[0] * z[0] * del;
    // tau relative to d[0]; the root of tau^2 - b tau + c = 0 in (0, del).
    const Real tau = Real(2) * c / (b + std::sqrt(std::fabs(b * b - Real(4) * c)));
    lambda = d[0] + tau;
    if (delta != nullptr) {
      delta[0] = -tau;
      delta[1] = del - tau;
    }
  } else {
    const Real b = -del + rho * (z[0] * z[0] + z[1] * z[1]);
    const Real c = rho * z[1] * z[1] * del;
    Real tau;  // relative to d[1]
    if (b > Real(0))
      tau = (b + std::sqrt(b * b + Real(4) * c)) / Real(2);
    else
      tau = Real(2) * c / (-b + std::sqrt(b * b + Real(4) * c));
    lambda = d[1] + tau;
    if (delta != nullptr) {
      delta[0] = -del - tau;
      delta[1] = -tau;
    }
  }
  return lambda;
}

template <typename Real>
SecularResultT<Real> laed4(index_t k, index_t i, const Real* d, const Real* z, Real rho,
                           Real* delta) {
  DNC_REQUIRE(k >= 1 && i >= 0 && i < k, "laed4: bad dimensions");
  DNC_REQUIRE(rho > Real(0), "laed4: rho must be positive");
  SecularResultT<Real> res;

  if (k == 1) {
    res.lambda = d[0] + rho * z[0] * z[0];
    res.origin = d[0];
    res.tau = rho * z[0] * z[0];
    if (delta != nullptr) delta[0] = -res.tau;
    obs::bump_laed4(res.iterations);
    return res;
  }
  if (k == 2) {
    res.lambda = laed5(i, d, z, rho, delta);
    res.origin = d[i];
    res.tau = res.lambda - d[i];
    obs::bump_laed4(res.iterations);
    return res;
  }

  const Real eps = real_traits<Real>::eps();
  const bool last = (i == k - 1);

  // Sum of z_j^2 bounds the last interval: lambda_{k-1} < d_{k-1} + rho*|z|^2.
  const Real znorm2 = blas::simd::kernels_t<Real>().sumsq(k, z);

  // ---- Choose the origin pole and the initial bracket in tau space. ----
  index_t origin_idx;
  Real lo, hi;  // bracket for tau, origin-relative
  if (last) {
    // Decide between origin d_{k-1} always; bracket (0, rho*znorm2].
    origin_idx = k - 1;
    lo = Real(0);
    hi = rho * znorm2;
  } else {
    // Evaluate f at the interval midpoint to decide which pole is closer.
    const Real del = d[i + 1] - d[i];
    Real fmid = Real(1);
    for (index_t j = 0; j < k; ++j) {
      const Real dj = (d[j] - d[i]) - del / Real(2);
      fmid += rho * z[j] * z[j] / dj;
    }
    if (fmid > Real(0)) {
      // Root in the left half: origin at d_i, tau in (0, del/2].
      origin_idx = i;
      lo = Real(0);
      hi = del / Real(2);
    } else {
      // Root in the right half: origin at d_{i+1}, tau in [-del/2, 0).
      origin_idx = i + 1;
      lo = -del / Real(2);
      hi = Real(0);
    }
  }
  res.origin = d[origin_idx];

  // delta0[j] = d_j - origin, exact differences of representable numbers.
  // We reuse the caller's delta buffer for it and subtract tau at the end.
  DNC_REQUIRE(delta != nullptr, "laed4: delta buffer required");
  for (index_t j = 0; j < k; ++j) delta[j] = d[j] - res.origin;

  // The two poles adjacent to the root drive the rational model.
  const index_t ii = last ? k - 2 : i;
  const index_t jj = last ? k - 1 : i + 1;

  // ---- Initial guess: solve the two-pole model anchored at the bracket
  // midpoint. ----
  Real tau = Real(0.5) * (lo + hi);

  // ---- Safeguarded rational iteration (fixed-weight scheme). ----
  // Generous cap: near-pole roots may need tens of bisection halvings
  // before the rational model takes over.
  const int kMaxIter = 200;
  for (int it = 0; it < kMaxIter; ++it) {
    res.iterations = it + 1;
    const SecularEval<Real> ev = evaluate(k, delta, z, rho, tau, ii);
    // Error bound in the spirit of dlaed4's ERRETM: the computed w is exact
    // up to ~8 eps times the sum of term magnitudes; iterating below that
    // floor cannot improve the root.
    const Real erretm = Real(8) * eps * ev.asum;
    if (std::fabs(ev.w) <= erretm) break;
    if (ev.w > Real(0))
      hi = std::min(hi, tau);
    else
      lo = std::max(lo, tau);

    const Real d1 = delta[ii] - tau;
    const Real d2 = delta[jj] - tau;
    // Two-pole rational model f(tau+eta) ~ c + s1/(d1-eta) + s2/(d2-eta)
    // with the weights absorbing the FULL per-side derivative sums (Li's
    // fixed-weight method, as in dlaed4): matches f and f' at eta = 0 and
    // keeps the model poles where the nearest true poles are.
    const Real s1 = d1 * d1 * ev.dpsi;
    const Real s2 = d2 * d2 * ev.dphi;
    const Real c = ev.w - d1 * ev.dpsi - d2 * ev.dphi;
    const Real a = c * (d1 + d2) + s1 + s2;
    const Real b = c * d1 * d2 + s1 * d2 + s2 * d1;
    Real eta = solve_model_quadratic(a, b, c);
    // f is increasing, so the step must oppose the sign of w.
    if (eta * ev.w > Real(0)) eta = -ev.w / ev.dw();
    Real cand = tau + eta;
    if (!std::isfinite(cand) || cand <= lo || cand >= hi) cand = Real(0.5) * (lo + hi);
    // Roots can sit at distance ~rho*z_i^2 from their pole -- many orders of
    // magnitude below eps*|origin| -- and the z-hat stabilisation needs tau
    // to full RELATIVE accuracy. The only legitimate stops are the
    // |w| <= erretm test above (which scales with the near-pole term and
    // therefore enforces relative accuracy) and lack of representable
    // progress.
    if (cand == tau) break;
    tau = cand;
  }

  res.tau = tau;
  res.lambda = res.origin + tau;
  for (index_t j = 0; j < k; ++j) delta[j] -= tau;
  obs::bump_laed4(res.iterations);
  return res;
}

template double laed5<double>(index_t, const double*, const double*, double, double*);
template float laed5<float>(index_t, const float*, const float*, float, float*);
template SecularResultT<double> laed4<double>(index_t, index_t, const double*, const double*,
                                              double, double*);
template SecularResultT<float> laed4<float>(index_t, index_t, const float*, const float*,
                                            float, float*);

}  // namespace dnc::lapack
