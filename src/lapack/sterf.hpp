// Eigenvalues of a symmetric tridiagonal matrix, no vectors (dsterf
// contract). Used by benchmarks and as an independent check for tests.
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

/// d[0..n) / e[0..n-1) in, ascending eigenvalues in d out. e is destroyed.
template <typename Real>
void sterf(index_t n, Real* d, Real* e);

}  // namespace dnc::lapack
