#include "lapack/sytrd.hpp"

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "common/error.hpp"
#include "common/machine.hpp"
#include "lapack/rotations.hpp"

namespace dnc::lapack {

double larfg(index_t n, double& alpha, double* x, index_t incx) {
  if (n <= 1) return 0.0;
  double xnorm = blas::nrm2(n - 1, x, incx);
  if (xnorm == 0.0) return 0.0;

  const double safmin = lamch_safmin() / lamch_eps();
  double beta = -std::copysign(lapy2(alpha, xnorm), alpha);
  int scaled = 0;
  while (std::fabs(beta) < safmin && scaled < 20) {
    // Rescale to avoid harmful underflow, as dlarfg does.
    const double rsafmn = 1.0 / safmin;
    blas::scal(n - 1, rsafmn, x, incx);
    beta *= rsafmn;
    alpha *= rsafmn;
    ++scaled;
    xnorm = blas::nrm2(n - 1, x, incx);
    beta = -std::copysign(lapy2(alpha, xnorm), alpha);
  }
  const double tau = (beta - alpha) / beta;
  blas::scal(n - 1, 1.0 / (alpha - beta), x, incx);
  for (int s = 0; s < scaled; ++s) beta *= safmin;
  alpha = beta;
  return tau;
}

void sytrd_lower(index_t n, double* a, index_t lda, double* d, double* e, double* tau) {
  DNC_REQUIRE(n >= 0 && lda >= n, "sytrd_lower: bad dimensions");
  if (n == 0) return;
  std::vector<double> w(n);
  for (index_t j = 0; j + 1 < n; ++j) {
    const index_t m = n - j - 1;  // length of the column below the diagonal
    double* col = a + (j + 1) + j * lda;
    // Reflector annihilating A(j+2:n, j).
    double alpha = col[0];
    const double tj = larfg(m, alpha, col + 1, 1);
    e[j] = alpha;
    tau[j] = tj;
    if (tj != 0.0) {
      col[0] = 1.0;
      // w = tau * A22 * v
      blas::symv_lower(m, tj, a + (j + 1) + (j + 1) * lda, lda, col, 0.0, w.data());
      // w -= (tau/2) * (w^T v) * v
      const double coef = -0.5 * tj * blas::dot(m, w.data(), col);
      blas::axpy(m, coef, col, w.data());
      // A22 -= v w^T + w v^T
      blas::syr2_lower(m, -1.0, col, w.data(), a + (j + 1) + (j + 1) * lda, lda);
      col[0] = alpha;  // restore the subdiagonal value (v[0]=1 is implicit)
    }
    d[j] = a[j + j * lda];
  }
  d[n - 1] = a[(n - 1) + (n - 1) * lda];
}

void ormtr_left_lower(index_t n, index_t m, const double* a, index_t lda, const double* tau,
                      double* c, index_t ldc) {
  if (n <= 1 || m == 0) return;
  std::vector<double> v(n), work(m);
  // Q = H_0 H_1 ... H_{n-3}; applying Q from the left means applying the
  // reflectors in reverse order of their generation.
  for (index_t j = n - 2; j >= 0; --j) {
    const double tj = tau[j];
    if (tj == 0.0) continue;
    const index_t len = n - j - 1;  // reflector acts on rows j+1..n-1
    v[0] = 1.0;
    for (index_t i = 1; i < len; ++i) v[i] = a[(j + 1 + i) + j * lda];
    // work = C(j+1:n, :)^T v ; C(j+1:n,:) -= tau * v * work^T
    blas::gemv(blas::Trans::Yes, len, m, 1.0, c + (j + 1), ldc, v.data(), 0.0, work.data());
    blas::ger(len, m, -tj, v.data(), work.data(), c + (j + 1), ldc);
  }
}

}  // namespace dnc::lapack
