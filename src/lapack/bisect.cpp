#include "lapack/bisect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/machine.hpp"
#include "obs/counters.hpp"

namespace dnc::lapack {

index_t sturm_count(index_t n, const double* d, const double* e, double x) {
  obs::bump(obs::kSturmCalls);
  obs::bump(obs::kSturmSteps, static_cast<std::uint64_t>(n));
  // LDL^T pivot recurrence with the dstebz pivmin safeguard so a zero pivot
  // cannot poison the count.
  double pivmin = lamch_safmin();
  for (index_t i = 0; i + 1 < n; ++i) pivmin = std::max(pivmin, e[i] * e[i] * lamch_safmin());

  index_t count = 0;
  double q = d[0] - x;
  if (q < 0.0) ++count;
  for (index_t i = 1; i < n; ++i) {
    if (std::fabs(q) < pivmin) q = q < 0.0 ? -pivmin : pivmin;
    q = d[i] - x - e[i - 1] * e[i - 1] / q;
    if (q < 0.0) ++count;
  }
  return count;
}

void gershgorin_bounds(index_t n, const double* d, const double* e, double& lo, double& hi) {
  DNC_REQUIRE(n >= 1, "gershgorin_bounds: empty matrix");
  lo = d[0];
  hi = d[0];
  for (index_t i = 0; i < n; ++i) {
    const double off = (i > 0 ? std::fabs(e[i - 1]) : 0.0) + (i + 1 < n ? std::fabs(e[i]) : 0.0);
    lo = std::min(lo, d[i] - off);
    hi = std::max(hi, d[i] + off);
  }
  // Widen slightly so the strict Sturm count brackets the extremes.
  const double bnorm = std::max(std::fabs(lo), std::fabs(hi));
  const double fudge = 2.0 * lamch_eps() * bnorm + 2.0 * lamch_safmin();
  lo -= fudge;
  hi += fudge;
}

namespace {

double default_tol(double lo, double hi, double tol_abs) {
  if (tol_abs >= 0.0) return tol_abs;
  const double bnorm = std::max(std::fabs(lo), std::fabs(hi));
  return 2.0 * lamch_eps() * bnorm + 2.0 * lamch_safmin();
}

}  // namespace

double bisect_eigenvalue(index_t n, const double* d, const double* e, index_t k,
                         double tol_rel, double tol_abs) {
  DNC_REQUIRE(k >= 0 && k < n, "bisect_eigenvalue: k out of range");
  double lo, hi;
  gershgorin_bounds(n, d, e, lo, hi);
  const double tol = default_tol(lo, hi, tol_abs);
  while (hi - lo > tol + tol_rel * std::max(std::fabs(lo), std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // ran out of precision
    if (sturm_count(n, d, e, mid) > k)
      hi = mid;
    else
      lo = mid;
  }
  return 0.5 * (lo + hi);
}

std::vector<double> bisect_all(index_t n, const double* d, const double* e, double tol_rel,
                               double tol_abs) {
  std::vector<double> w(n);
  if (n == 0) return w;
  double glo, ghi;
  gershgorin_bounds(n, d, e, glo, ghi);
  const double tol = default_tol(glo, ghi, tol_abs);

  // Recursive interval refinement: keeps the total count of Sturm
  // evaluations near n log(range/tol) instead of n per eigenvalue.
  struct Interval {
    double lo, hi;
    index_t klo, khi;  // eigenvalue indices in (lo, hi]: klo..khi-1
  };
  std::vector<Interval> stack;
  stack.push_back({glo, ghi, 0, n});
  while (!stack.empty()) {
    Interval iv = stack.back();
    stack.pop_back();
    if (iv.khi <= iv.klo) continue;
    if (iv.hi - iv.lo <= tol + tol_rel * std::max(std::fabs(iv.lo), std::fabs(iv.hi))) {
      const double mid = 0.5 * (iv.lo + iv.hi);
      for (index_t kk = iv.klo; kk < iv.khi; ++kk) w[kk] = mid;
      continue;
    }
    const double mid = 0.5 * (iv.lo + iv.hi);
    if (mid == iv.lo || mid == iv.hi) {
      for (index_t kk = iv.klo; kk < iv.khi; ++kk) w[kk] = mid;
      continue;
    }
    const index_t cmid =
        std::clamp<index_t>(sturm_count(n, d, e, mid), iv.klo, iv.khi);
    stack.push_back({iv.lo, mid, iv.klo, cmid});
    stack.push_back({mid, iv.hi, cmid, iv.khi});
  }
  return w;
}

}  // namespace dnc::lapack
