#include "lapack/bisect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "obs/counters.hpp"

namespace dnc::lapack {

template <typename Real>
index_t sturm_count(index_t n, const Real* d, const Real* e, Real x) {
  obs::bump(obs::kSturmCalls);
  obs::bump(obs::kSturmSteps, static_cast<std::uint64_t>(n));
  // LDL^T pivot recurrence with the dstebz pivmin safeguard so a zero pivot
  // cannot poison the count.
  const Real safmin = real_traits<Real>::safmin();
  Real pivmin = safmin;
  for (index_t i = 0; i + 1 < n; ++i) pivmin = std::max(pivmin, e[i] * e[i] * safmin);

  index_t count = 0;
  Real q = d[0] - x;
  if (q < Real(0)) ++count;
  for (index_t i = 1; i < n; ++i) {
    if (std::fabs(q) < pivmin) q = q < Real(0) ? -pivmin : pivmin;
    q = d[i] - x - e[i - 1] * e[i - 1] / q;
    if (q < Real(0)) ++count;
  }
  return count;
}

template <typename Real>
void gershgorin_bounds(index_t n, const Real* d, const Real* e, Real& lo, Real& hi) {
  DNC_REQUIRE(n >= 1, "gershgorin_bounds: empty matrix");
  lo = d[0];
  hi = d[0];
  for (index_t i = 0; i < n; ++i) {
    const Real off =
        (i > 0 ? std::fabs(e[i - 1]) : Real(0)) + (i + 1 < n ? std::fabs(e[i]) : Real(0));
    lo = std::min(lo, d[i] - off);
    hi = std::max(hi, d[i] + off);
  }
  // Widen slightly so the strict Sturm count brackets the extremes.
  const Real bnorm = std::max(std::fabs(lo), std::fabs(hi));
  const Real fudge =
      Real(2) * real_traits<Real>::eps() * bnorm + Real(2) * real_traits<Real>::safmin();
  lo -= fudge;
  hi += fudge;
}

namespace {

template <typename Real>
Real default_tol(Real lo, Real hi, Real tol_abs) {
  if (tol_abs >= Real(0)) return tol_abs;
  const Real bnorm = std::max(std::fabs(lo), std::fabs(hi));
  return Real(2) * real_traits<Real>::eps() * bnorm + Real(2) * real_traits<Real>::safmin();
}

}  // namespace

template <typename Real>
Real bisect_eigenvalue(index_t n, const Real* d, const Real* e, index_t k, Real tol_rel,
                       Real tol_abs) {
  DNC_REQUIRE(k >= 0 && k < n, "bisect_eigenvalue: k out of range");
  Real lo, hi;
  gershgorin_bounds(n, d, e, lo, hi);
  const Real tol = default_tol(lo, hi, tol_abs);
  while (hi - lo > tol + tol_rel * std::max(std::fabs(lo), std::fabs(hi))) {
    const Real mid = Real(0.5) * (lo + hi);
    if (mid == lo || mid == hi) break;  // ran out of precision
    if (sturm_count(n, d, e, mid) > k)
      hi = mid;
    else
      lo = mid;
  }
  return Real(0.5) * (lo + hi);
}

template <typename Real>
std::vector<Real> bisect_all(index_t n, const Real* d, const Real* e, Real tol_rel,
                             Real tol_abs) {
  std::vector<Real> w(n);
  if (n == 0) return w;
  Real glo, ghi;
  gershgorin_bounds(n, d, e, glo, ghi);
  const Real tol = default_tol(glo, ghi, tol_abs);

  // Recursive interval refinement: keeps the total count of Sturm
  // evaluations near n log(range/tol) instead of n per eigenvalue.
  struct Interval {
    Real lo, hi;
    index_t klo, khi;  // eigenvalue indices in (lo, hi]: klo..khi-1
  };
  std::vector<Interval> stack;
  stack.push_back({glo, ghi, 0, n});
  while (!stack.empty()) {
    Interval iv = stack.back();
    stack.pop_back();
    if (iv.khi <= iv.klo) continue;
    if (iv.hi - iv.lo <= tol + tol_rel * std::max(std::fabs(iv.lo), std::fabs(iv.hi))) {
      const Real mid = Real(0.5) * (iv.lo + iv.hi);
      for (index_t kk = iv.klo; kk < iv.khi; ++kk) w[kk] = mid;
      continue;
    }
    const Real mid = Real(0.5) * (iv.lo + iv.hi);
    if (mid == iv.lo || mid == iv.hi) {
      for (index_t kk = iv.klo; kk < iv.khi; ++kk) w[kk] = mid;
      continue;
    }
    const index_t cmid = std::clamp<index_t>(sturm_count(n, d, e, mid), iv.klo, iv.khi);
    stack.push_back({iv.lo, mid, iv.klo, cmid});
    stack.push_back({mid, iv.hi, cmid, iv.khi});
  }
  return w;
}

#define DNC_INSTANTIATE_BISECT(Real)                                                        \
  template index_t sturm_count<Real>(index_t, const Real*, const Real*, Real);              \
  template void gershgorin_bounds<Real>(index_t, const Real*, const Real*, Real&, Real&);   \
  template Real bisect_eigenvalue<Real>(index_t, const Real*, const Real*, index_t, Real,   \
                                        Real);                                              \
  template std::vector<Real> bisect_all<Real>(index_t, const Real*, const Real*, Real, Real)

DNC_INSTANTIATE_BISECT(double);
DNC_INSTANTIATE_BISECT(float);

#undef DNC_INSTANTIATE_BISECT

}  // namespace dnc::lapack
