// Eigen-decomposition of a symmetric 2x2 matrix [a b; b c]
// (dlaev2 / dlae2 equivalents), templated on the working precision.
#pragma once

namespace dnc::lapack {

/// Eigenvalues only: rt1 >= rt2 in absolute... rt1 is the eigenvalue of
/// larger absolute value (dlae2 convention).
template <typename Real>
void lae2(Real a, Real b, Real c, Real& rt1, Real& rt2);

/// Eigenvalues and the unit eigenvector (cs1, sn1) for rt1 (dlaev2).
template <typename Real>
void laev2(Real a, Real b, Real c, Real& rt1, Real& rt2, Real& cs1, Real& sn1);

}  // namespace dnc::lapack
