// Eigen-decomposition of a symmetric 2x2 matrix [a b; b c]
// (dlaev2 / dlae2 equivalents).
#pragma once

namespace dnc::lapack {

/// Eigenvalues only: rt1 >= rt2 in absolute... rt1 is the eigenvalue of
/// larger absolute value (dlae2 convention).
void lae2(double a, double b, double c, double& rt1, double& rt2);

/// Eigenvalues and the unit eigenvector (cs1, sn1) for rt1 (dlaev2).
void laev2(double a, double b, double c, double& rt1, double& rt2, double& cs1, double& sn1);

}  // namespace dnc::lapack
