// Householder reduction of a dense symmetric matrix to tridiagonal form and
// application of the accumulated orthogonal factor (dsytrd / dormtr
// equivalents, unblocked, lower-triangular storage).
//
// This is the reduction stage of the full symmetric eigensolver pipeline
// (Equation 1 of the paper, A = Q T Q^T); the tridiagonal eigensolver under
// study runs between this and the back-transformation (Equation 3).
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

/// Generates an elementary reflector H = I - tau*v*v^T with v[0] = 1 such
/// that H*x = beta*e1. x has n elements: alpha = x[0] on entry and the
/// vector tail x[1..n) is overwritten with v[1..n) (dlarfg).
double larfg(index_t n, double& alpha, double* x, index_t incx);

/// Reduces symmetric A (n x n, lower triangle referenced, column-major,
/// leading dimension lda) to tridiagonal T: on exit d[0..n) and e[0..n-1)
/// hold T, the Householder vectors are stored below the first subdiagonal
/// of A and tau[0..n-2] holds the reflector scales.
void sytrd_lower(index_t n, double* a, index_t lda, double* d, double* e, double* tau);

/// Multiplies C (n x m) in place by the orthogonal Q assembled from
/// sytrd_lower's reflectors: C := Q * C (dormtr 'L','L','N').
void ormtr_left_lower(index_t n, index_t m, const double* a, index_t lda, const double* tau,
                      double* c, index_t ldc);

}  // namespace dnc::lapack
