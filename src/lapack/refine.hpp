// Mixed-precision iterative refinement of tridiagonal eigenpairs.
//
// The DNC_PREC=f32refine driver runs the whole divide & conquer solve in
// fp32 (the fast path: 8-lane GEMMs, half the memory traffic) and then
// calls refine_eigenpairs with the ORIGINAL fp64 tridiagonal: every
// eigenpair whose fp64 residual ||T v - lambda v||_inf exceeds an
// fp64-grade tolerance is polished by Rayleigh-quotient iteration -- solve
// (T - rho I) w = v with a partially-pivoted tridiagonal LU (the dstein
// kernel), renormalise, update rho = w^T T w. Each iteration roughly
// squares the eigenvector error, so the fp32 starting points (~1e-7)
// reach fp64-grade residuals in 1-2 solves.
//
// Refinement targets residuals: orthogonality of the returned basis stays
// at the fp32 level (a cluster of eigenvalues degenerate at fp32 precision
// cannot be re-separated from fp32 vectors alone); a modified Gram-Schmidt
// pass over near-equal runs keeps clusters from collapsing onto a single
// direction.
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

struct RefineOptions {
  /// Per-column residual target, as a multiple of eps64 * ||T||_1.
  double tol_factor = 30.0;
  /// Rayleigh-quotient iterations per eigenpair before giving up.
  int max_iters = 5;
};

struct RefineReport {
  index_t checked = 0;         ///< columns whose residual was evaluated
  index_t refined = 0;         ///< columns that needed at least one RQI step
  std::int64_t iterations = 0; ///< total RQI solves across all columns
  double max_resid_before = 0; ///< worst ||T v - lambda v||_inf entering
  double max_resid_after = 0;  ///< worst residual after refinement
};

/// Refines nvec eigenpairs (lam[j], v[:,j]) of the fp64 tridiagonal (d, e)
/// in place. Eigenvalues are updated to Rayleigh quotients and the
/// (lam, v-columns) pairs re-sorted ascending on return (refined values can
/// cross their unrefined neighbours). v has leading dimension ldv >= n.
RefineReport refine_eigenpairs(index_t n, const double* d, const double* e, double* lam,
                               double* v, index_t ldv, index_t nvec,
                               const RefineOptions& opts = {});

}  // namespace dnc::lapack
