#include "lapack/stein.hpp"

#include <algorithm>
#include <cmath>

#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "lapack/bisect.hpp"

namespace dnc::lapack {

template <typename Real>
void stein_vector(index_t n, const Real* d, const Real* e, Real lambda, const Real* prev,
                  index_t ldprev, index_t nprev, Real* z, Rng& rng) {
  // LU factorization of T - lambda I with partial pivoting (dgttrf layout:
  // lower multipliers ml, main diagonal u0, first/second upper diagonals
  // u1/u2, pivot flags).
  std::vector<Real> ml(n), u0(n), u1(n), u2(n);
  std::vector<char> swapped(n, 0);
  const Real tiny = real_traits<Real>::safmin() / real_traits<Real>::eps();
  {
    std::vector<Real> a(n), b(n > 1 ? n - 1 : 0), c(n > 1 ? n - 1 : 0);
    for (index_t i = 0; i < n; ++i) a[i] = d[i] - lambda;
    for (index_t i = 0; i + 1 < n; ++i) b[i] = c[i] = e[i];
    for (index_t i = 0; i < n; ++i) {
      u0[i] = a[i];
      if (i + 1 < n) {
        if (std::fabs(a[i]) >= std::fabs(b[i])) {
          // No row swap.
          Real piv = a[i];
          if (std::fabs(piv) < tiny)
            piv = std::copysign(tiny, piv == Real(0) ? Real(1) : piv);
          u0[i] = piv;
          ml[i] = b[i] / piv;
          a[i + 1] -= ml[i] * c[i];
          u1[i] = c[i];
          u2[i] = Real(0);
        } else {
          // Swap rows i and i+1 for stability.
          swapped[i] = 1;
          const Real piv = b[i];
          u0[i] = piv;
          ml[i] = a[i] / piv;
          u1[i] = a[i + 1];
          const Real cnext = (i + 2 < n) ? c[i + 1] : Real(0);
          u2[i] = cnext;
          a[i + 1] = c[i] - ml[i] * a[i + 1];
          if (i + 2 < n) {
            b[i + 1] = b[i + 1];  // unchanged
            c[i + 1] = -ml[i] * cnext;
          }
        }
      } else if (std::fabs(u0[i]) < tiny) {
        u0[i] = std::copysign(tiny, u0[i] == Real(0) ? Real(1) : u0[i]);
      }
    }
  }
  const auto solve = [&](Real* x) {
    // Forward: apply L^{-1} with the recorded pivoting.
    for (index_t i = 0; i + 1 < n; ++i) {
      if (swapped[i]) std::swap(x[i], x[i + 1]);
      x[i + 1] -= ml[i] * x[i];
    }
    // Backward: U x = y.
    for (index_t i = n - 1; i >= 0; --i) {
      Real s = x[i];
      if (i + 1 < n) s -= u1[i] * x[i + 1];
      if (i + 2 < n) s -= u2[i] * x[i + 2];
      x[i] = s / u0[i];
    }
  };
  const auto orthogonalize = [&] {
    for (index_t q = 0; q < nprev; ++q) {
      const Real* vq = prev + q * ldprev;
      blas::axpy(n, -blas::dot(n, vq, z), vq, z);
    }
  };
  for (index_t i = 0; i < n; ++i) z[i] = static_cast<Real>(rng.uniform_sym());
  for (int it = 0; it < 4; ++it) {
    orthogonalize();
    Real nrm = blas::nrm2(n, z);
    if (nrm < Real(1e-3)) {
      // Restart: the random vector was (nearly) inside span(prev).
      for (index_t i = 0; i < n; ++i) z[i] = static_cast<Real>(rng.uniform_sym());
      orthogonalize();
      nrm = blas::nrm2(n, z);
    }
    blas::scal(n, Real(1) / std::max(nrm, real_traits<Real>::safmin()), z);
    solve(z);
  }
  orthogonalize();
  const Real nrm = blas::nrm2(n, z);
  blas::scal(n, Real(1) / std::max(nrm, real_traits<Real>::safmin()), z);
}

template void stein_vector<double>(index_t, const double*, const double*, double,
                                   const double*, index_t, index_t, double*, Rng&);
template void stein_vector<float>(index_t, const float*, const float*, float, const float*,
                                  index_t, index_t, float*, Rng&);

void bi_solve(index_t n, const double* d, const double* e, std::vector<double>& lam,
              Matrix& v, double reorth_tol) {
  DNC_REQUIRE(n >= 0, "bi_solve: n >= 0");
  lam.clear();
  v.resize(n, n);
  if (n == 0) return;
  v.fill(0.0);
  if (n == 1) {
    lam.assign(1, d[0]);
    v(0, 0) = 1.0;
    return;
  }
  // Eigenvalues to near machine precision by Sturm bisection.
  lam = bisect_all(n, d, e, 0.0, -1.0);
  double tnorm = 0.0;
  for (index_t i = 0; i < n; ++i) tnorm = std::max(tnorm, std::fabs(lam[i]));
  const double close = reorth_tol * std::max(tnorm, real_traits<double>::safmin());
  // Inverse iteration; dstein reorthogonalises runs of close eigenvalues.
  Rng rng(0xb15ec7ULL);
  index_t s = 0;
  while (s < n) {
    index_t t = s;
    while (t + 1 < n && lam[t + 1] - lam[t] <= close) ++t;
    for (index_t k = s; k <= t; ++k)
      stein_vector(n, d, e, lam[k], v.data() + s * v.ld(), v.ld(), k - s,
                   v.data() + k * v.ld(), rng);
    s = t + 1;
  }
}

}  // namespace dnc::lapack
