#include "lapack/sterf.hpp"

#include "lapack/steqr.hpp"

namespace dnc::lapack {

void sterf(index_t n, double* d, double* e) {
  // The implicit QL/QR kernel already specialises the no-vectors path
  // (dlae2 2x2 solves, no rotation storage), which is the dominant cost
  // difference between dsterf and dsteqr('N'); the square-root-free PWK
  // recurrence would only change constants, not behaviour.
  steqr(CompZ::None, n, d, e, nullptr, 1);
}

}  // namespace dnc::lapack
