#include "lapack/sterf.hpp"

#include "lapack/steqr.hpp"

namespace dnc::lapack {

template <typename Real>
void sterf(index_t n, Real* d, Real* e) {
  // The implicit QL/QR kernel already specialises the no-vectors path
  // (dlae2 2x2 solves, no rotation storage), which is the dominant cost
  // difference between dsterf and dsteqr('N'); the square-root-free PWK
  // recurrence would only change constants, not behaviour.
  steqr<Real>(CompZ::None, n, d, e, nullptr, 1);
}

template void sterf<double>(index_t, double*, double*);
template void sterf<float>(index_t, float*, float*);

}  // namespace dnc::lapack
