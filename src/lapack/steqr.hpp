// Implicit QL/QR eigensolver for symmetric tridiagonal matrices (dsteqr).
//
// This is the leaf solver of the divide & conquer tree (the paper's STEDC
// leaf task) and the reference algorithm for correctness tests. It computes
// all eigenvalues, and optionally accumulates the orthogonal transformation
// into Z, using Wilkinson-shifted implicit QL or QR sweeps chosen per
// unreduced block so the iteration always chases the smaller end.
// Templated on the working precision (double and float instantiations);
// epsilon, safe-min and the scaling window come from real_traits.
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

enum class CompZ {
  None,     ///< eigenvalues only
  Identity  ///< Z is initialised to I, returns eigenvectors of T
  // (the LAPACK 'V' mode -- multiply into a given Z -- is covered by
  //  passing a pre-filled Z and CompZ::Vectors)
  ,
  Vectors  ///< accumulate into caller-provided Z
};

/// On entry d[0..n), e[0..n-1) hold the tridiagonal matrix. On exit d holds
/// the eigenvalues in ascending order (when vectors are requested; for
/// CompZ::None the order is also ascending) and z (n x n, ld >= n) the
/// eigenvectors. Throws NumericalError if a block fails to converge in
/// 30n iterations.
template <typename Real>
void steqr(CompZ compz, index_t n, Real* d, Real* e, Real* z, index_t ldz);

}  // namespace dnc::lapack
