#include "lapack/refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "lapack/bisect.hpp"
#include "obs/metrics.hpp"

namespace dnc::lapack {
namespace {

// Partially-pivoted LU of T - lambda I (dgttrf layout, as in stein.cpp):
// lower multipliers ml, main diagonal u0, first/second upper diagonals
// u1/u2, per-plane swap flags. Factor once per RQI step, solve once.
struct TridiagLU {
  std::vector<double> ml, u0, u1, u2;
  std::vector<char> swapped;

  void factor(index_t n, const double* d, const double* e, double lambda) {
    ml.assign(n, 0.0);
    u0.assign(n, 0.0);
    u1.assign(n, 0.0);
    u2.assign(n, 0.0);
    swapped.assign(n, 0);
    const double tiny = real_traits<double>::safmin() / real_traits<double>::eps();
    std::vector<double> a(n), b(n > 1 ? n - 1 : 0), c(n > 1 ? n - 1 : 0);
    for (index_t i = 0; i < n; ++i) a[i] = d[i] - lambda;
    for (index_t i = 0; i + 1 < n; ++i) b[i] = c[i] = e[i];
    for (index_t i = 0; i < n; ++i) {
      u0[i] = a[i];
      if (i + 1 < n) {
        if (std::fabs(a[i]) >= std::fabs(b[i])) {
          double piv = a[i];
          if (std::fabs(piv) < tiny) piv = std::copysign(tiny, piv == 0.0 ? 1.0 : piv);
          u0[i] = piv;
          ml[i] = b[i] / piv;
          a[i + 1] -= ml[i] * c[i];
          u1[i] = c[i];
          u2[i] = 0.0;
        } else {
          swapped[i] = 1;
          const double piv = b[i];
          u0[i] = piv;
          ml[i] = a[i] / piv;
          u1[i] = a[i + 1];
          const double cnext = (i + 2 < n) ? c[i + 1] : 0.0;
          u2[i] = cnext;
          a[i + 1] = c[i] - ml[i] * a[i + 1];
          if (i + 2 < n) c[i + 1] = -ml[i] * cnext;
        }
      } else if (std::fabs(u0[i]) < tiny) {
        u0[i] = std::copysign(tiny, u0[i] == 0.0 ? 1.0 : u0[i]);
      }
    }
  }

  void solve(index_t n, double* x) const {
    for (index_t i = 0; i + 1 < n; ++i) {
      if (swapped[i]) std::swap(x[i], x[i + 1]);
      x[i + 1] -= ml[i] * x[i];
    }
    for (index_t i = n - 1; i >= 0; --i) {
      double s = x[i];
      if (i + 1 < n) s -= u1[i] * x[i + 1];
      if (i + 2 < n) s -= u2[i] * x[i + 2];
      x[i] = s / u0[i];
    }
  }
};

// y = T x for the tridiagonal (d, e).
void tridiag_matvec(index_t n, const double* d, const double* e, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) {
    double s = d[i] * x[i];
    if (i > 0) s += e[i - 1] * x[i - 1];
    if (i + 1 < n) s += e[i] * x[i + 1];
    y[i] = s;
  }
}

// ||T x - lambda x||_inf, with y = T x already formed.
double residual_inf(index_t n, const double* x, const double* y, double lambda) {
  double r = 0.0;
  for (index_t i = 0; i < n; ++i) r = std::max(r, std::fabs(y[i] - lambda * x[i]));
  return r;
}

}  // namespace

RefineReport refine_eigenpairs(index_t n, const double* d, const double* e, double* lam,
                               double* v, index_t ldv, index_t nvec,
                               const RefineOptions& opts) {
  RefineReport rep;
  if (n <= 0 || nvec <= 0) return rep;
  DNC_REQUIRE(ldv >= n, "refine_eigenpairs: ldv < n");

  const double tnorm = blas::lanst_one(n, d, e);
  const double eps = real_traits<double>::eps();
  const double tol =
      opts.tol_factor * eps * std::max(tnorm, real_traits<double>::safmin());

  std::vector<double> y(n), w(n);
  TridiagLU lu;

  for (index_t j = 0; j < nvec; ++j) {
    double* vj = v + j * ldv;
    // fp32-normalised columns can be off by ~eps32 in SCALE even when
    // their direction is exact (a 2x2 rotation narrowed to fp32 has zero
    // residual but |1 - v'v| ~ 1e-8), and the residual fast path below
    // would then keep the bad scale: renormalise in fp64 first.
    const double nrm0 = blas::nrm2(n, vj);
    if (nrm0 > 0.0 && std::isfinite(nrm0)) blas::scal(n, 1.0 / nrm0, vj);
    tridiag_matvec(n, d, e, vj, y.data());
    double resid = residual_inf(n, vj, y.data(), lam[j]);
    ++rep.checked;
    rep.max_resid_before = std::max(rep.max_resid_before, resid);
    if (resid <= tol) {
      rep.max_resid_after = std::max(rep.max_resid_after, resid);
      continue;
    }
    ++rep.refined;
    // Start from the fp64 Rayleigh quotient of the fp32 vector -- already
    // ~quadratically better than the fp32 eigenvalue.
    double rho = blas::dot(n, vj, y.data()) / blas::dot(n, vj, vj);
    for (int it = 0; it < opts.max_iters; ++it) {
      ++rep.iterations;
      lu.factor(n, d, e, rho);
      blas::copy(n, vj, w.data());
      lu.solve(n, w.data());
      const double nrm = blas::nrm2(n, w.data());
      if (!(nrm > 0.0) || !std::isfinite(nrm)) break;  // solve blew up: keep current pair
      blas::scal(n, 1.0 / nrm, w.data());
      tridiag_matvec(n, d, e, w.data(), y.data());
      const double rho_new = blas::dot(n, w.data(), y.data());
      const double resid_new = residual_inf(n, w.data(), y.data(), rho_new);
      if (resid_new >= resid) break;  // stagnated; keep the better pair we have
      blas::copy(n, w.data(), vj);
      lam[j] = rho_new;
      rho = rho_new;
      resid = resid_new;
      if (resid <= tol) break;
    }
    rep.max_resid_after = std::max(rep.max_resid_after, resid);
  }

  // Refined eigenvalues can cross their unrefined neighbours: re-sort pairs
  // (selection sort to minimise column swaps, as dsteqr does).
  const auto sort_pairs = [&] {
    for (index_t ii = 1; ii < nvec; ++ii) {
      const index_t i = ii - 1;
      index_t k = i;
      double p = lam[i];
      for (index_t j = ii; j < nvec; ++j) {
        if (lam[j] < p) {
          k = j;
          p = lam[j];
        }
      }
      if (k != i) {
        lam[k] = lam[i];
        lam[i] = p;
        blas::swap(n, v + i * ldv, v + k * ldv);
      }
    }
  };
  sort_pairs();

  // Cluster safety net. RQI converges to the eigenvector whose eigenvalue
  // is nearest the starting Rayleigh quotient; inside an fp32-degenerate
  // cluster it can fail two ways: two members both converge to the SAME
  // dominant eigenvector (visible as overlap), or -- when the intra-cluster
  // gap is itself fp32-residual-sized -- the fp32 basis is an internally
  // rotated but orthogonal basis of the eigenspace, RQI stalls at the gap,
  // and the stall is visible only as residual. Either trigger re-extracts
  // the column with inverse iteration kept orthogonal to its cluster
  // predecessors (the dstein recipe, warm-started from the current vector)
  // -- unlike a plain Gram-Schmidt sweep this re-converges to a genuine
  // eigenvector, so the fp64 residual is restored, not just orthogonality.
  // Chaining width for cluster detection. Two refined vectors of DISTINCT
  // clusters carry mutual overlap up to ~2 tol / gap, and gap can be as
  // small as `close` itself -- so `close` must be large enough that
  // 2 tol / close stays below fp64 orthogonality (~100 eps n). 1e-2 gives
  // boundary overlap ~ 6e3 eps, i.e. invisible at the n eps scale; the cost
  // is only that a broken cluster chains more members into the bisection
  // re-extraction below.
  const double close = 1e-2 * std::max(tnorm, real_traits<double>::safmin());
  // Overlap trigger: anything visible above fp64 round-off (clean vectors
  // sit at ~sqrt(n) eps). RQI alone stalls at the intra-cluster gap, so a
  // loose 1e-4-scale trigger would leave fp32-grade cross-talk in place.
  const double otol = 64.0 * eps * static_cast<double>(n);
  index_t s = 0;
  while (s < nvec) {
    index_t t = s;
    while (t + 1 < nvec && lam[t + 1] - lam[t] <= close) ++t;
    // Scan: any cross-talk or stalled residual anywhere in the cluster?
    bool broken = false;
    for (index_t k = s; k <= t && !broken; ++k) {
      const double* vk = v + k * ldv;
      for (index_t q = s; q < k && !broken; ++q)
        broken = std::fabs(blas::dot(n, v + q * ldv, vk)) > otol;
      tridiag_matvec(n, d, e, vk, y.data());
      broken = broken || residual_inf(n, vk, y.data(), lam[k]) > tol;
    }
    if (!broken) {
      s = t + 1;
      continue;
    }
    // Re-extract the WHOLE cluster with fixed-shift inverse iteration (the
    // dstein recipe), shifts taken from Sturm bisection. Per-member repair
    // with Rayleigh or RQI-refined shifts cannot work here: when two fp32
    // columns collapse onto the same dominant eigenvector, the member
    // holding the duplicate would be orthogonalised against exactly the
    // direction its own shift amplifies, and the missing eigendirection is
    // recoverable only through its true eigenvalue -- which no surviving
    // column knows. Bisection is fp64-accurate regardless of how wrong the
    // fp32 start was; ascending order + Gram-Schmidt against the already
    // re-extracted predecessors makes each member claim a distinct
    // eigendirection (truly degenerate shifts coincide and GS alone picks
    // the remaining basis vector, exactly as in dstein).
    for (index_t k = s; k <= t; ++k) {
      double* vk = v + k * ldv;
      const double rho = nvec == n ? bisect_eigenvalue<double>(n, d, e, k) : lam[k];
      // Classical Gram-Schmidt run twice: after the solve collapses the
      // iterate towards the shift's eigendirection the remainder against the
      // predecessors can be small, and a single pass leaves eps/|remainder|
      // of round-off cross-talk -- twice is enough (Kahan-Parlett).
      const auto orthogonalise = [&] {
        for (int pass = 0; pass < 2; ++pass)
          for (index_t q = s; q < k; ++q) {
            const double* vq = v + q * ldv;
            blas::axpy(n, -blas::dot(n, vq, vk), vq, vk);
          }
      };
      for (int it = 0; it < 3; ++it) {
        ++rep.iterations;
        orthogonalise();
        double nrm = blas::nrm2(n, vk);
        if (!(nrm > 0.0)) break;
        blas::scal(n, 1.0 / nrm, vk);
        lu.factor(n, d, e, rho);
        lu.solve(n, vk);
        nrm = blas::nrm2(n, vk);
        if (!(nrm > 0.0) || !std::isfinite(nrm)) break;
        blas::scal(n, 1.0 / nrm, vk);
      }
      orthogonalise();
      const double nrm = blas::nrm2(n, vk);
      if (nrm > 0.0) blas::scal(n, 1.0 / nrm, vk);
      tridiag_matvec(n, d, e, vk, y.data());
      lam[k] = blas::dot(n, vk, y.data());
      rep.max_resid_after =
          std::max(rep.max_resid_after, residual_inf(n, vk, y.data(), lam[k]));
    }
    s = t + 1;
  }
  // The cluster fix-up updates eigenvalues again; restore ascending order.
  sort_pairs();

  // Orthogonality polish. Each refined column is individually fp64-accurate,
  // but two columns with eigenvalue gap g still carry mutual overlap up to
  // (r_i + r_j) / g ~ 2 tol / g -- visible above the n-eps noise floor
  // whenever g is a small multiple of `close`. A windowed modified
  // Gram-Schmidt sweep (ascending, two passes) zeroes those dots; each
  // subtraction perturbs the residual by |dot| * g <= 2 tol, so fp64-grade
  // residuals survive. Pairs outside the window already satisfy
  // overlap <= 2 tol / wide ~ 1e3 eps, invisible at the n-eps metric scale.
  // Worst case (whole spectrum inside one window) this is O(n^3) scalar
  // work, the same order as the solve it is polishing.
  const double wide = 5e-2 * std::max(tnorm, real_traits<double>::safmin());
  for (index_t k = 1; k < nvec; ++k) {
    double* vk = v + k * ldv;
    index_t ws = k;
    while (ws > 0 && lam[k] - lam[ws - 1] <= wide) --ws;
    if (ws == k) continue;
    for (int pass = 0; pass < 2; ++pass)
      for (index_t q = ws; q < k; ++q) {
        const double* vq = v + q * ldv;
        blas::axpy(n, -blas::dot(n, vq, vk), vq, vk);
      }
    const double nrm = blas::nrm2(n, vk);
    if (nrm > 0.0) blas::scal(n, 1.0 / nrm, vk);
  }

  if (obs::metrics::enabled()) {
    namespace m = obs::metrics;
    m::add(m::register_metric(m::Kind::Counter, "dnc_refine_columns_total",
                              "result=\"checked\"",
                              "Eigenpairs examined/improved by fp64 refinement"),
           static_cast<double>(rep.checked));
    m::add(m::register_metric(m::Kind::Counter, "dnc_refine_columns_total",
                              "result=\"refined\"",
                              "Eigenpairs examined/improved by fp64 refinement"),
           static_cast<double>(rep.refined));
    if (rep.checked > 0)
      m::observe(m::register_metric(m::Kind::Histogram, "dnc_refine_steps", "",
                                    "Rayleigh-quotient iterations per refinement call"),
                 static_cast<double>(rep.iterations));
  }
  return rep;
}

}  // namespace dnc::lapack
