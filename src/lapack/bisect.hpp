// Sturm-count bisection for symmetric tridiagonal eigenvalues.
//
// Provides an algorithm-independent oracle for tests (eigenvalues computed
// without QR/D&C/MRRR machinery) and the initial eigenvalue approximations
// for the MRRR solver.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::lapack {

/// Number of eigenvalues of T strictly less than x (Sturm count via the
/// safeguarded LDL^T recurrence).
index_t sturm_count(index_t n, const double* d, const double* e, double x);

/// Gershgorin bounds [lo, hi] enclosing the whole spectrum.
void gershgorin_bounds(index_t n, const double* d, const double* e, double& lo, double& hi);

/// k-th smallest eigenvalue (0-based) to absolute tolerance
/// tol_abs + tol_rel*|lambda| via bisection.
double bisect_eigenvalue(index_t n, const double* d, const double* e, index_t k,
                         double tol_rel = 0.0, double tol_abs = -1.0);

/// All eigenvalues, ascending. O(n^2 log(1/tol)); intended for n <= a few
/// thousand (tests and MRRR bootstrap).
std::vector<double> bisect_all(index_t n, const double* d, const double* e,
                               double tol_rel = 0.0, double tol_abs = -1.0);

}  // namespace dnc::lapack
