// Sturm-count bisection for symmetric tridiagonal eigenvalues.
//
// Provides an algorithm-independent oracle for tests (eigenvalues computed
// without QR/D&C/MRRR machinery) and the initial eigenvalue approximations
// for the MRRR solver. Templated on the working precision.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::lapack {

/// Number of eigenvalues of T strictly less than x (Sturm count via the
/// safeguarded LDL^T recurrence).
template <typename Real>
index_t sturm_count(index_t n, const Real* d, const Real* e, Real x);

/// Gershgorin bounds [lo, hi] enclosing the whole spectrum.
template <typename Real>
void gershgorin_bounds(index_t n, const Real* d, const Real* e, Real& lo, Real& hi);

/// k-th smallest eigenvalue (0-based) to absolute tolerance
/// tol_abs + tol_rel*|lambda| via bisection.
template <typename Real>
Real bisect_eigenvalue(index_t n, const Real* d, const Real* e, index_t k,
                       Real tol_rel = Real(0), Real tol_abs = Real(-1));

/// All eigenvalues, ascending. O(n^2 log(1/tol)); intended for n <= a few
/// thousand (tests and MRRR bootstrap).
template <typename Real>
std::vector<Real> bisect_all(index_t n, const Real* d, const Real* e, Real tol_rel = Real(0),
                             Real tol_abs = Real(-1));

}  // namespace dnc::lapack
