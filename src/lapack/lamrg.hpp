// dlamrg: permutation that merges two sorted sublists into one ascending
// list. Used to combine the sons' sorted spectra before deflation and to
// interleave secular roots with deflated eigenvalues afterwards.
#pragma once

#include "common/matrix.hpp"

namespace dnc::lapack {

/// a holds two sorted sublists: a[0..n1) with stride/direction dtrd1
/// (+1 ascending, -1 descending) and a[n1..n1+n2) with direction dtrd2.
/// On return perm[i] (0-based) is the index into a of the i-th smallest
/// element.
template <typename Real>
void lamrg(index_t n1, index_t n2, const Real* a, int dtrd1, int dtrd2, index_t* perm);

}  // namespace dnc::lapack
