#include "lapack/rotations.hpp"

#include <algorithm>
#include <cmath>

#include "common/machine.hpp"

namespace dnc::lapack {

double lapy2(double x, double y) {
  const double ax = std::fabs(x);
  const double ay = std::fabs(y);
  const double w = std::max(ax, ay);
  const double z = std::min(ax, ay);
  if (z == 0.0) return w;
  const double r = z / w;
  return w * std::sqrt(1.0 + r * r);
}

void lartg(double f, double g, double& c, double& s, double& r) {
  // Scaled dlartg: repeatedly rescale f, g into a safe range before forming
  // the hypotenuse, then undo the scaling on r.
  if (g == 0.0) {
    c = 1.0;
    s = 0.0;
    r = f;
    return;
  }
  if (f == 0.0) {
    c = 0.0;
    s = 1.0;
    r = g;
    return;
  }
  const double eps = dnc::lamch_eps();
  const double safmin = dnc::lamch_safmin();
  const double safmn2 = std::pow(2.0, std::trunc(std::log(safmin / eps) / std::log(2.0) / 2.0));
  const double safmx2 = 1.0 / safmn2;

  double f1 = f, g1 = g;
  double scale = std::max(std::fabs(f1), std::fabs(g1));
  int count = 0;
  if (scale >= safmx2) {
    while (scale >= safmx2) {
      ++count;
      f1 *= safmn2;
      g1 *= safmn2;
      scale = std::max(std::fabs(f1), std::fabs(g1));
    }
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
    for (int i = 0; i < count; ++i) r *= safmx2;
  } else if (scale <= safmn2) {
    while (scale <= safmn2) {
      ++count;
      f1 *= safmx2;
      g1 *= safmx2;
      scale = std::max(std::fabs(f1), std::fabs(g1));
    }
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
    for (int i = 0; i < count; ++i) r *= safmn2;
  } else {
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
  }
  if (std::fabs(f) > std::fabs(g) && c < 0.0) {
    c = -c;
    s = -s;
    r = -r;
  }
}

}  // namespace dnc::lapack
