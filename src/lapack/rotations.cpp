#include "lapack/rotations.hpp"

#include <algorithm>
#include <cmath>

#include "common/real_traits.hpp"

namespace dnc::lapack {

template <typename Real>
Real lapy2(Real x, Real y) {
  const Real ax = std::fabs(x);
  const Real ay = std::fabs(y);
  const Real w = std::max(ax, ay);
  const Real z = std::min(ax, ay);
  if (z == Real(0)) return w;
  const Real r = z / w;
  return w * std::sqrt(Real(1) + r * r);
}

template <typename Real>
void lartg(Real f, Real g, Real& c, Real& s, Real& r) {
  // Scaled dlartg: repeatedly rescale f, g into a safe range before forming
  // the hypotenuse, then undo the scaling on r.
  if (g == Real(0)) {
    c = Real(1);
    s = Real(0);
    r = f;
    return;
  }
  if (f == Real(0)) {
    c = Real(0);
    s = Real(1);
    r = g;
    return;
  }
  const Real eps = dnc::real_traits<Real>::eps();
  const Real safmin = dnc::real_traits<Real>::safmin();
  const Real safmn2 = static_cast<Real>(
      std::pow(2.0, std::trunc(std::log(double(safmin) / double(eps)) / std::log(2.0) / 2.0)));
  const Real safmx2 = Real(1) / safmn2;

  Real f1 = f, g1 = g;
  Real scale = std::max(std::fabs(f1), std::fabs(g1));
  int count = 0;
  if (scale >= safmx2) {
    while (scale >= safmx2) {
      ++count;
      f1 *= safmn2;
      g1 *= safmn2;
      scale = std::max(std::fabs(f1), std::fabs(g1));
    }
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
    for (int i = 0; i < count; ++i) r *= safmx2;
  } else if (scale <= safmn2) {
    while (scale <= safmn2) {
      ++count;
      f1 *= safmx2;
      g1 *= safmx2;
      scale = std::max(std::fabs(f1), std::fabs(g1));
    }
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
    for (int i = 0; i < count; ++i) r *= safmn2;
  } else {
    r = std::sqrt(f1 * f1 + g1 * g1);
    c = f1 / r;
    s = g1 / r;
  }
  if (std::fabs(f) > std::fabs(g) && c < Real(0)) {
    c = -c;
    s = -s;
    r = -r;
  }
}

template double lapy2<double>(double, double);
template float lapy2<float>(float, float);
template void lartg<double>(double, double, double&, double&, double&);
template void lartg<float>(float, float, float&, float&, float&);

}  // namespace dnc::lapack
