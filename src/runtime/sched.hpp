// Scheduling-policy seam of the runtime.
//
// The engine (runtime/engine.hpp) executes a TaskGraph through one of two
// interchangeable schedulers:
//
//   SchedPolicy::Central  one mutex-guarded priority queue shared by all
//                         workers -- the original PR-0 engine, kept as the
//                         baseline the work-stealing numbers are gated on;
//   SchedPolicy::Steal    per-worker bounded deques with owner-LIFO /
//                         thief-FIFO access, round-robin submitter
//                         placement and an exponential-backoff idle path
//                         (the default).
//
// Both honor TaskNode::priority (higher drains first, FIFO within equal
// priority) so the critical-path-first annotations of the D&C drivers mean
// the same thing under either policy, and both feed the same observability
// (queue-depth samples, per-worker counters) into rt::Trace.
//
// The DNC_SCHED environment variable ("central" / "steal") overrides the
// compiled default; dc::Options::sched and mrrr::Options::sched initialise
// from it so every driver exposes the knob.
#pragma once

namespace dnc::rt {

enum class SchedPolicy {
  Central,  ///< single shared ready queue (baseline)
  Steal,    ///< per-worker deques + work stealing (default)
};

/// Stable lowercase name ("central" / "steal") for reports and artifacts.
const char* sched_policy_name(SchedPolicy p) noexcept;

/// Parses "central" / "steal" (case-sensitive). Returns false and leaves
/// `out` untouched on anything else.
bool parse_sched_policy(const char* s, SchedPolicy& out) noexcept;

/// Policy a Runtime constructed without an explicit choice uses: the
/// DNC_SCHED environment variable when set to a valid name, otherwise
/// SchedPolicy::Steal. Read per call so tests can setenv() mid-process.
SchedPolicy default_sched_policy() noexcept;

}  // namespace dnc::rt
