// SchedPolicy::Steal: per-worker bounded priority deques with work
// stealing (the default policy).
//
// Placement: a worker releasing successors pushes them onto its own deque
// (locality -- the data the successor reads is warm in that worker's
// cache); pushes from the submitting thread are spread round-robin across
// the deques. A deque holds at most kDequeCap tasks; beyond that pushes
// spill to a shared overflow queue so the bound holds without dropping
// work.
//
// Acquisition: own deque newest-first (LIFO keeps a worker on the subtree
// it just expanded), then the overflow queue, then a steal cycle over the
// other deques oldest-first (FIFO steals take the victim's coldest, most
// independent work). Priority dominates recency everywhere: every pop
// takes from the highest non-empty priority bucket.
//
// Victim order is topology-aware (arXiv 1401.4950's locality argument):
// worker w is notionally pinned to cpu w % ncpu, and its steal cycle
// visits same-L3 victims first, then same-socket, then cross-socket --
// rotated within each class so thieves don't convoy on one victim. Every
// successful steal is classified into the same three buckets
// (steals_same_l3 / steals_same_socket / steals_cross_socket), which flow
// Trace -> SolveReport -> Perfetto -> /metrics.
//
// Idle path: after a failed full scan a worker backs off with
// exponentially growing yield bursts, then parks on a condition variable.
// The sleep handshake is the flag-and-check protocol: a producer pushes,
// bumps queued_ (seq_cst), then reads sleepers_; a consumer bumps
// sleepers_ (seq_cst), then re-reads queued_ in the cv predicate under
// sleep_mu_. The seq_cst total order guarantees at least one side sees the
// other -- either the producer observes the sleeper and notifies (under
// sleep_mu_, so the notify cannot fall between predicate check and wait),
// or the consumer observes the queued task and does not sleep.
//
// Stop: stop_ is only honored after a failed full scan with queued_ == 0,
// so destruction drains remaining tasks exactly like the central policy.
#include <thread>
#include <vector>

#include "common/cpu_features.hpp"
#include "runtime/scheduler.hpp"

namespace dnc::rt {

namespace {

constexpr std::size_t kDequeCap = 4096;  // per-worker bound before spilling
constexpr int kSpinRounds = 6;           // backoff doublings before sleeping

struct alignas(64) WorkerQueue {
  std::mutex mu;
  PrioDeque q;
};

/// Steal distance between a thief and a victim deque.
enum class StealClass : int { SameL3 = 0, SameSocket = 1, CrossSocket = 2 };

class StealScheduler final : public Scheduler {
 public:
  StealScheduler(TaskGraph& graph, int threads)
      : Scheduler(graph, threads, SchedPolicy::Steal),
        queues_(std::make_unique<WorkerQueue[]>(threads)),
        nqueues_(threads) {
    build_victim_orders();
    start();
  }

  ~StealScheduler() override { stop_workers(); }

 protected:
  void push_ready(TaskNode* node, int worker) override {
    const int target =
        worker >= 0 ? worker
                    : static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) % nqueues_);
    bool spilled = false;
    {
      std::lock_guard<std::mutex> lk(queues_[target].mu);
      if (queues_[target].q.size() < kDequeCap) {
        queues_[target].q.push(node);
      } else {
        spilled = true;
      }
    }
    if (spilled) {
      std::lock_guard<std::mutex> lk(overflow_mu_);
      overflow_.push(node);
    } else if (worker < 0) {
      counters_[target].placed.fetch_add(1, std::memory_order_relaxed);
    }
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lk(sleep_mu_); }
      cv_sleep_.notify_one();
    }
  }

  /// One full non-blocking pass: own deque newest-first, overflow, steal
  /// cycle. Shared by the blocking acquire() and the help-first
  /// try_acquire(). Bumps failed_steals on a fruitless full scan.
  TaskNode* scan(int worker) {
    // 1. Own deque, newest first.
    TaskNode* node = nullptr;
    {
      std::lock_guard<std::mutex> lk(queues_[worker].mu);
      node = queues_[worker].q.pop_newest();
    }
    if (node != nullptr) {
      counters_[worker].local_pops.fetch_add(1, std::memory_order_relaxed);
      return take(node);
    }
    // 2. Shared overflow, oldest first.
    {
      std::lock_guard<std::mutex> lk(overflow_mu_);
      node = overflow_.pop_oldest();
    }
    if (node != nullptr) return take(node);
    // 3. Steal cycle over the other deques, nearest victims first.
    for (const auto& [victim, cls] : victims_[worker]) {
      counters_[worker].steal_attempts.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(queues_[victim].mu);
        node = queues_[victim].q.pop_oldest();
      }
      if (node != nullptr) {
        counters_[worker].steals.fetch_add(1, std::memory_order_relaxed);
        switch (cls) {
          case StealClass::SameL3:
            counters_[worker].steals_same_l3.fetch_add(1, std::memory_order_relaxed);
            break;
          case StealClass::SameSocket:
            counters_[worker].steals_same_socket.fetch_add(1, std::memory_order_relaxed);
            break;
          case StealClass::CrossSocket:
            counters_[worker].steals_cross_socket.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        record_steal();
        return take(node);
      }
    }
    counters_[worker].failed_steals.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  TaskNode* try_acquire(int worker) override { return scan(worker); }

  TaskNode* acquire(int worker) override {
    int spins = 0;
    for (;;) {
      TaskNode* node = scan(worker);
      if (node != nullptr) return node;
      if (queued_.load(std::memory_order_seq_cst) > 0) continue;  // raced with a push
      // Stop only after a failed full scan so destruction drains the queues.
      if (stop_.load(std::memory_order_seq_cst)) return nullptr;
      if (spins < kSpinRounds) {
        for (int i = 0; i < (1 << spins); ++i) std::this_thread::yield();
        ++spins;
        continue;
      }
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lk(sleep_mu_);
        cv_sleep_.wait(lk, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 queued_.load(std::memory_order_seq_cst) > 0;
        });
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      spins = 0;
    }
  }

  void wake_all() override {
    { std::lock_guard<std::mutex> lk(sleep_mu_); }
    cv_sleep_.notify_all();
  }

 private:
  TaskNode* take(TaskNode* node) {
    queued_.fetch_sub(1, std::memory_order_seq_cst);
    took();
    return node;
  }

  /// Precomputes each worker's steal cycle: every other worker exactly
  /// once, grouped same-L3 -> same-socket -> cross-socket under the
  /// detected (or DNC_TOPOLOGY-overridden) hierarchy, rotated within each
  /// class by the thief's id so concurrent thieves fan out over distinct
  /// victims. Workers map onto cpus round-robin (worker w -> cpu w % ncpu)
  /// -- the runtime does not pin threads, so this is the same static
  /// approximation an OS scheduler's initial placement gives; on a flat
  /// (undetected) topology every victim classifies as same-L3 and the
  /// order degenerates to the classic (w + k) % n ring.
  void build_victim_orders() {
    const CpuTopology& topo = cpu_topology();
    victims_.resize(static_cast<std::size_t>(nqueues_));
    for (int w = 0; w < nqueues_; ++w) {
      auto& order = victims_[static_cast<std::size_t>(w)];
      order.reserve(static_cast<std::size_t>(nqueues_ - 1));
      const int wcpu = topo.cpus > 0 ? w % topo.cpus : 0;
      for (const StealClass cls :
           {StealClass::SameL3, StealClass::SameSocket, StealClass::CrossSocket}) {
        for (int k = 1; k < nqueues_; ++k) {
          const int v = (w + k) % nqueues_;  // rotation inside the class
          const int vcpu = topo.cpus > 0 ? v % topo.cpus : 0;
          StealClass vc;
          if (topo.l3_of[static_cast<std::size_t>(vcpu)] ==
              topo.l3_of[static_cast<std::size_t>(wcpu)]) {
            vc = StealClass::SameL3;
          } else if (topo.socket_of[static_cast<std::size_t>(vcpu)] ==
                     topo.socket_of[static_cast<std::size_t>(wcpu)]) {
            vc = StealClass::SameSocket;
          } else {
            vc = StealClass::CrossSocket;
          }
          if (vc == cls) order.emplace_back(v, cls);
        }
      }
    }
  }

  std::unique_ptr<WorkerQueue[]> queues_;
  int nqueues_;
  /// Per-thief victim order, nearest class first: (victim deque, class).
  std::vector<std::vector<std::pair<int, StealClass>>> victims_;
  std::atomic<unsigned> rr_{0};
  std::mutex overflow_mu_;
  PrioDeque overflow_;
  std::atomic<long> queued_{0};  // pushed - taken, the sleep predicate
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable cv_sleep_;
};

}  // namespace

std::unique_ptr<Scheduler> make_steal_scheduler(TaskGraph& graph, int threads) {
  return std::make_unique<StealScheduler>(graph, threads);
}

}  // namespace dnc::rt
