// SchedPolicy::Steal: per-worker bounded priority deques with work
// stealing (the default policy).
//
// Placement: a worker releasing successors pushes them onto its own deque
// (locality -- the data the successor reads is warm in that worker's
// cache); pushes from the submitting thread are spread round-robin across
// the deques. A deque holds at most kDequeCap tasks; beyond that pushes
// spill to a shared overflow queue so the bound holds without dropping
// work.
//
// Acquisition: own deque newest-first (LIFO keeps a worker on the subtree
// it just expanded), then the overflow queue, then a steal cycle over the
// other deques oldest-first (FIFO steals take the victim's coldest, most
// independent work). Priority dominates recency everywhere: every pop
// takes from the highest non-empty priority bucket.
//
// Idle path: after a failed full scan a worker backs off with
// exponentially growing yield bursts, then parks on a condition variable.
// The sleep handshake is the flag-and-check protocol: a producer pushes,
// bumps queued_ (seq_cst), then reads sleepers_; a consumer bumps
// sleepers_ (seq_cst), then re-reads queued_ in the cv predicate under
// sleep_mu_. The seq_cst total order guarantees at least one side sees the
// other -- either the producer observes the sleeper and notifies (under
// sleep_mu_, so the notify cannot fall between predicate check and wait),
// or the consumer observes the queued task and does not sleep.
//
// Stop: stop_ is only honored after a failed full scan with queued_ == 0,
// so destruction drains remaining tasks exactly like the central policy.
#include <thread>

#include "runtime/scheduler.hpp"

namespace dnc::rt {

namespace {

constexpr std::size_t kDequeCap = 4096;  // per-worker bound before spilling
constexpr int kSpinRounds = 6;           // backoff doublings before sleeping

struct alignas(64) WorkerQueue {
  std::mutex mu;
  PrioDeque q;
};

class StealScheduler final : public Scheduler {
 public:
  StealScheduler(TaskGraph& graph, int threads)
      : Scheduler(graph, threads, SchedPolicy::Steal),
        queues_(std::make_unique<WorkerQueue[]>(threads)),
        nqueues_(threads) {
    start();
  }

  ~StealScheduler() override { stop_workers(); }

 protected:
  void push_ready(TaskNode* node, int worker) override {
    const int target =
        worker >= 0 ? worker
                    : static_cast<int>(rr_.fetch_add(1, std::memory_order_relaxed) % nqueues_);
    bool spilled = false;
    {
      std::lock_guard<std::mutex> lk(queues_[target].mu);
      if (queues_[target].q.size() < kDequeCap) {
        queues_[target].q.push(node);
      } else {
        spilled = true;
      }
    }
    if (spilled) {
      std::lock_guard<std::mutex> lk(overflow_mu_);
      overflow_.push(node);
    } else if (worker < 0) {
      counters_[target].placed.fetch_add(1, std::memory_order_relaxed);
    }
    queued_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lk(sleep_mu_); }
      cv_sleep_.notify_one();
    }
  }

  TaskNode* acquire(int worker) override {
    int spins = 0;
    for (;;) {
      // 1. Own deque, newest first.
      TaskNode* node = nullptr;
      {
        std::lock_guard<std::mutex> lk(queues_[worker].mu);
        node = queues_[worker].q.pop_newest();
      }
      if (node != nullptr) {
        counters_[worker].local_pops.fetch_add(1, std::memory_order_relaxed);
        return take(node);
      }
      // 2. Shared overflow, oldest first.
      {
        std::lock_guard<std::mutex> lk(overflow_mu_);
        node = overflow_.pop_oldest();
      }
      if (node != nullptr) return take(node);
      // 3. Steal cycle over the other deques, oldest first.
      for (int k = 1; k < nqueues_; ++k) {
        const int victim = (worker + k) % nqueues_;
        counters_[worker].steal_attempts.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lk(queues_[victim].mu);
          node = queues_[victim].q.pop_oldest();
        }
        if (node != nullptr) {
          counters_[worker].steals.fetch_add(1, std::memory_order_relaxed);
          record_steal();
          return take(node);
        }
      }
      counters_[worker].failed_steals.fetch_add(1, std::memory_order_relaxed);
      if (queued_.load(std::memory_order_seq_cst) > 0) continue;  // raced with a push
      // Stop only after a failed full scan so destruction drains the queues.
      if (stop_.load(std::memory_order_seq_cst)) return nullptr;
      if (spins < kSpinRounds) {
        for (int i = 0; i < (1 << spins); ++i) std::this_thread::yield();
        ++spins;
        continue;
      }
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lk(sleep_mu_);
        cv_sleep_.wait(lk, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 queued_.load(std::memory_order_seq_cst) > 0;
        });
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      spins = 0;
    }
  }

  void wake_all() override {
    { std::lock_guard<std::mutex> lk(sleep_mu_); }
    cv_sleep_.notify_all();
  }

 private:
  TaskNode* take(TaskNode* node) {
    queued_.fetch_sub(1, std::memory_order_seq_cst);
    took();
    return node;
  }

  std::unique_ptr<WorkerQueue[]> queues_;
  int nqueues_;
  std::atomic<unsigned> rr_{0};
  std::mutex overflow_mu_;
  PrioDeque overflow_;
  std::atomic<long> queued_{0};  // pushed - taken, the sleep predicate
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mu_;
  std::condition_variable cv_sleep_;
};

}  // namespace

std::unique_ptr<Scheduler> make_steal_scheduler(TaskGraph& graph, int threads) {
  return std::make_unique<StealScheduler>(graph, threads);
}

}  // namespace dnc::rt
