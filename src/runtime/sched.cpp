#include "runtime/sched.hpp"

#include <cstdlib>

#include "common/env.hpp"
#include <cstring>

namespace dnc::rt {

const char* sched_policy_name(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::Central: return "central";
    case SchedPolicy::Steal: return "steal";
  }
  return "?";
}

bool parse_sched_policy(const char* s, SchedPolicy& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "central") == 0) {
    out = SchedPolicy::Central;
    return true;
  }
  if (std::strcmp(s, "steal") == 0) {
    out = SchedPolicy::Steal;
    return true;
  }
  return false;
}

SchedPolicy default_sched_policy() noexcept {
  SchedPolicy p = SchedPolicy::Steal;
  parse_sched_policy(env::raw("DNC_SCHED"), p);
  return p;
}

}  // namespace dnc::rt
