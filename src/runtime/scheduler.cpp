#include "runtime/scheduler.hpp"

#include <bit>
#include <cassert>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/hwc.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace dnc::rt {

namespace {
/// Worker id of the current thread (-1 on non-worker threads). Lets
/// enqueue() attribute pushes to the releasing worker even when they come
/// through graph.on_ready -- e.g. the MRRR driver submits tasks from inside
/// task bodies, and those should land on the submitting worker's deque.
thread_local int tls_worker_id = -1;
}  // namespace

// ---------------------------------------------------------------------------
// PrioDeque

void PrioDeque::push(TaskNode* node) {
  int p = node->priority;
  if (p < 0) p = 0;
  if (p >= kBuckets) p = kBuckets - 1;
  buckets_[p].push_back(node);
  mask_ |= (std::uint64_t{1} << p);
  ++size_;
}

TaskNode* PrioDeque::pop_newest() {
  if (mask_ == 0) return nullptr;
  const int p = 63 - std::countl_zero(mask_);
  TaskNode* node = buckets_[p].back();
  buckets_[p].pop_back();
  if (buckets_[p].empty()) mask_ &= ~(std::uint64_t{1} << p);
  --size_;
  return node;
}

TaskNode* PrioDeque::pop_oldest() {
  if (mask_ == 0) return nullptr;
  const int p = 63 - std::countl_zero(mask_);
  TaskNode* node = buckets_[p].front();
  buckets_[p].pop_front();
  if (buckets_[p].empty()) mask_ &= ~(std::uint64_t{1} << p);
  --size_;
  return node;
}

// ---------------------------------------------------------------------------
// SampledSeries

void SampledSeries::push(double t, int depth) {
  const unsigned long long tick = tick_.fetch_add(1, std::memory_order_relaxed);
  const unsigned long long stride = stride_.load(std::memory_order_relaxed);
  if (tick % stride != 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (data_.empty()) data_.reserve(256);
  data_.push_back({t, depth});
  if (data_.size() >= cap_) {
    // Keep every other sample; future ticks thin out by the doubled stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < data_.size(); r += 2) data_[w++] = data_[r];
    data_.resize(w);
    stride_.store(stride * 2, std::memory_order_relaxed);
  }
}

std::vector<QueueSample> SampledSeries::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return data_;
}

// ---------------------------------------------------------------------------
// Scheduler

std::unique_ptr<Scheduler> Scheduler::make(SchedPolicy policy, TaskGraph& graph, int threads) {
  switch (policy) {
    case SchedPolicy::Central: return make_central_scheduler(graph, threads);
    case SchedPolicy::Steal: return make_steal_scheduler(graph, threads);
  }
  return make_steal_scheduler(graph, threads);
}

Scheduler::Scheduler(TaskGraph& graph, int threads, SchedPolicy policy)
    : graph_(graph), policy_(policy), thread_count_(threads) {
  DNC_REQUIRE(threads >= 1, "Runtime needs at least one worker");
  idle_.assign(threads, 0.0);
  counters_ = std::make_unique<AtomicWorkerCounters[]>(threads);
}

Scheduler::~Scheduler() {
  // stop_workers() must have run from the derived destructor: workers call
  // virtual hooks, which are gone by the time this destructor executes.
  assert(workers_.empty() && "Scheduler subclass destructor must call stop_workers()");
}

void Scheduler::start() {
  graph_.on_ready = [this](TaskNode* n) { enqueue(n, tls_worker_id); };
  workers_.reserve(thread_count_);
  for (int i = 0; i < thread_count_; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

void Scheduler::stop_workers() {
  stop_.store(true, std::memory_order_seq_cst);
  wake_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  graph_.on_ready = nullptr;
  // Always-on scheduler metrics (DNC_METRICS; one branch when disabled).
  // Workers are joined, so the per-worker counters are final and plain
  // relaxed reads see everything.
  if (obs::metrics::enabled()) {
    namespace m = obs::metrics;
    std::string pl = "policy=\"";
    pl += sched_policy_name(policy_);
    pl += "\"";
    long tasks = 0;
    for (int w = 0; w < thread_count_; ++w)
      tasks += counters_[w].executed.load(std::memory_order_relaxed);
    double idle = 0.0;
    for (double d : idle_) idle += d;
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_runs_total", pl,
                              "Scheduler lifetimes (one per parallel solve)"));
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_tasks_total", pl,
                              "Tasks executed by the runtime"),
           static_cast<double>(tasks));
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_steals_total", pl,
                              "Successful work steals"),
           static_cast<double>(total_steals_.load(std::memory_order_relaxed)));
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_worker_idle_seconds_total", pl,
                              "Summed per-worker idle time (s)"),
           idle);
    m::observe(m::register_metric(m::Kind::Histogram, "dnc_sched_queue_depth_peak", pl,
                                  "Peak ready-queue depth per scheduler lifetime"),
               static_cast<double>(depth_peak_.load(std::memory_order_relaxed)));
  }
}

void Scheduler::enqueue(TaskNode* node, int worker) {
  node->t_ready = now_seconds();
  // inflight_ rises before the task is visible to any worker; see the
  // quiescence argument in the header.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  ready_count_.fetch_add(1, std::memory_order_relaxed);
  push_ready(node, worker);
  sample_depth();
}

void Scheduler::took() {
  ready_count_.fetch_sub(1, std::memory_order_relaxed);
  sample_depth();
}

void Scheduler::sample_depth() {
  long d = ready_count_.load(std::memory_order_relaxed);
  if (d < 0) d = 0;
  int cur = depth_peak_.load(std::memory_order_relaxed);
  while (static_cast<int>(d) > cur &&
         !depth_peak_.compare_exchange_weak(cur, static_cast<int>(d),
                                            std::memory_order_relaxed)) {
  }
  queue_series_.push(now_seconds(), static_cast<int>(d));
}

void Scheduler::record_steal() {
  const long n = total_steals_.fetch_add(1, std::memory_order_relaxed) + 1;
  steal_series_.push(now_seconds(), static_cast<int>(n));
}

void Scheduler::worker_loop(int worker_id) {
  tls_worker_id = worker_id;
  // Per-thread hardware-counter sampler (DNC_HWC). Inactive (one branch per
  // task, no reads) unless requested; when active, every task body is
  // bracketed by two counter reads -- rdpmc (no syscall) or one grouped
  // read() under the perf backend, getrusage under the software fallback --
  // and the deltas land on the node like its timestamps.
  obs::ThreadHwc hwc;
  const bool sampling = hwc.active();
  if (sampling) hwc_active_.store(true, std::memory_order_relaxed);
  std::uint64_t c0[kHwcSlots], c1[kHwcSlots];
  // Sampling-profiler registration (DNC_PROFILE_HZ / DNC_HTTP's /profile).
  // One relaxed load + branch when both are off. When on, profiler samples
  // taken on this thread attribute to "worker:<id>" and, via set_task below,
  // to the task kind the worker is executing. Kind names are interned once
  // per worker because the TaskGraph (and its kind table) dies with the
  // solve while samples outlive it in the profiler aggregate.
  obs::profiler::ThreadRegistration preg("worker", worker_id);
  std::vector<const char*> kind_names;
  if (preg.active())
    for (const TaskKind& k : graph_.kinds())
      kind_names.push_back(obs::profiler::intern(k.name));
  // Idle accounting: everything between "done with the previous task" (or
  // thread start) and "starting the next task" counts as idle. The marks
  // reuse the trace timestamps, so this adds no clock reads on the task
  // path.
  double idle_mark = now_seconds();
  for (;;) {
    TaskNode* node = acquire(worker_id);
    if (node == nullptr) return;
    node->worker = worker_id;
    node->t_start = now_seconds();
    idle_[worker_id] += node->t_start - idle_mark;
    if (sampling) hwc.read(c0);
    if (preg.active())
      preg.set_task(node->kind >= 0 && node->kind < static_cast<int>(kind_names.size())
                        ? kind_names[node->kind]
                        : nullptr);
    if (node->fn) node->fn();
    if (preg.active()) preg.set_task(nullptr);
    if (sampling) {
      hwc.read(c1);
      for (int i = 0; i < kHwcSlots; ++i) node->hwc[i] = c1[i] - c0[i];
    }
    node->t_end = now_seconds();
    idle_mark = node->t_end;
    counters_[worker_id].executed.fetch_add(1, std::memory_order_relaxed);
    const std::vector<TaskNode*> newly_ready = graph_.complete(node);
    // Successors enter inflight_ before this task leaves it, so inflight_
    // never dips to zero while work remains.
    for (TaskNode* r : newly_ready) enqueue(r, worker_id);
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(idle_mu_);  // notify under the waiter's mutex
      cv_idle_.notify_all();
    }
  }
}

void Scheduler::wait_all() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  cv_idle_.wait(lk, [&] { return inflight_.load(std::memory_order_acquire) == 0; });
}

Trace Scheduler::trace() const {
  Trace t;
  t.workers = threads();
  t.sched_policy = sched_policy_name(policy_);
  const bool hwc = hwc_active_.load(std::memory_order_relaxed);
  for (const auto& node : graph_.nodes()) {
    TraceEvent e{node->id,       node->kind,     node->worker,    node->t_start,
                 node->t_end,    node->t_ready,  node->obs_level, node->obs_size,
                 node->obs_panel, node->priority};
    if (hwc)
      for (int i = 0; i < kHwcSlots; ++i) e.hwc[i] = node->hwc[i];
    t.events.push_back(e);
    for (std::uint64_t p : node->pred_ids) t.edges.emplace_back(p, node->id);
  }
  if (hwc) {
    const obs::HwcBackend b = obs::hwc_active_backend();
    t.hwc_backend = obs::hwc_backend_name(b);
    for (int i = 0; i < kHwcSlots; ++i) t.hwc_slot_names.push_back(obs::hwc_slot_name(b, i));
  }
  for (const TaskKind& k : graph_.kinds()) {
    t.kind_names.push_back(k.name);
    t.kind_memory_bound.push_back(k.memory_bound ? 1 : 0);
  }
  t.worker_idle = idle_;
  t.queue_samples = queue_series_.snapshot();
  t.steal_samples = steal_series_.snapshot();
  t.queue_depth_peak = depth_peak_.load(std::memory_order_relaxed);
  t.sched_counters.resize(threads());
  for (int w = 0; w < threads(); ++w) {
    const AtomicWorkerCounters& c = counters_[w];
    WorkerSchedCounters& out = t.sched_counters[w];
    out.executed = c.executed.load(std::memory_order_relaxed);
    out.local_pops = c.local_pops.load(std::memory_order_relaxed);
    out.steals = c.steals.load(std::memory_order_relaxed);
    out.steal_attempts = c.steal_attempts.load(std::memory_order_relaxed);
    out.failed_steals = c.failed_steals.load(std::memory_order_relaxed);
    out.placed = c.placed.load(std::memory_order_relaxed);
  }
  return t;
}

}  // namespace dnc::rt
