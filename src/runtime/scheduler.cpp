#include "runtime/scheduler.hpp"

#include <bit>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/hwc.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace dnc::rt {

/// Per-worker execution context. One per worker thread, stack-allocated in
/// worker_loop; the frame fields implement the nested-task accounting that
/// keeps self-time / self-hwc sums exact under spawn_and_wait's help-first
/// waiting (a worker executes children *inside* its parent's timestamps).
struct WorkerCtx {
  WorkerCtx(int id, const TaskGraph& graph) : worker_id(id), preg("worker", id) {
    sampling = hwc.active();
    if (preg.active())
      for (const TaskKind& k : graph.kinds()) kind_names.push_back(obs::profiler::intern(k.name));
  }

  int worker_id;
  /// Per-thread hardware-counter sampler (DNC_HWC). Inactive (one branch
  /// per task, no reads) unless requested.
  obs::ThreadHwc hwc;
  bool sampling = false;
  /// Sampling-profiler registration (DNC_PROFILE_HZ / DNC_HTTP's
  /// /profile). Kind names are interned because the TaskGraph (and its
  /// kind table) dies with the solve while samples outlive it.
  obs::profiler::ThreadRegistration preg;
  std::vector<const char*> kind_names;

  // --- nested-frame accounting (see Scheduler::run_task) ---
  /// Innermost task this worker is executing (nullptr between tasks).
  TaskNode* running = nullptr;
  /// Seconds of helped child tasks executed inside the *current* frame.
  double frame_nested = 0.0;
  /// Inclusive hwc deltas of helped child tasks inside the current frame.
  std::uint64_t frame_hwc[kHwcSlots] = {0, 0, 0, 0};
};

namespace {
/// Worker id of the current thread (-1 on non-worker threads). Lets
/// enqueue() attribute pushes to the releasing worker even when they come
/// through graph.on_ready -- e.g. the MRRR driver submits tasks from inside
/// task bodies, and those should land on the submitting worker's deque.
thread_local int tls_worker_id = -1;
/// Scheduler owning the current worker thread plus its context; set for
/// the lifetime of worker_loop. Scheduler::current() / spawn_and_wait use
/// them to detect "am I on a worker?" without any plumbing.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local WorkerCtx* tls_ctx = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// PrioDeque

void PrioDeque::push(TaskNode* node) {
  int p = node->priority;
  if (p < 0) p = 0;
  if (p >= kBuckets) p = kBuckets - 1;
  buckets_[p].push_back(node);
  mask_ |= (std::uint64_t{1} << p);
  ++size_;
}

TaskNode* PrioDeque::pop_newest() {
  if (mask_ == 0) return nullptr;
  const int p = 63 - std::countl_zero(mask_);
  TaskNode* node = buckets_[p].back();
  buckets_[p].pop_back();
  if (buckets_[p].empty()) mask_ &= ~(std::uint64_t{1} << p);
  --size_;
  return node;
}

TaskNode* PrioDeque::pop_oldest() {
  if (mask_ == 0) return nullptr;
  const int p = 63 - std::countl_zero(mask_);
  TaskNode* node = buckets_[p].front();
  buckets_[p].pop_front();
  if (buckets_[p].empty()) mask_ &= ~(std::uint64_t{1} << p);
  --size_;
  return node;
}

// ---------------------------------------------------------------------------
// SampledSeries

void SampledSeries::push(double t, int depth) {
  const unsigned long long tick = tick_.fetch_add(1, std::memory_order_relaxed);
  const unsigned long long stride = stride_.load(std::memory_order_relaxed);
  if (tick % stride != 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (data_.empty()) data_.reserve(256);
  data_.push_back({t, depth});
  if (data_.size() >= cap_) {
    // Keep every other sample; future ticks thin out by the doubled stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < data_.size(); r += 2) data_[w++] = data_[r];
    data_.resize(w);
    stride_.store(stride * 2, std::memory_order_relaxed);
  }
}

std::vector<QueueSample> SampledSeries::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return data_;
}

// ---------------------------------------------------------------------------
// Scheduler

std::unique_ptr<Scheduler> Scheduler::make(SchedPolicy policy, TaskGraph& graph, int threads) {
  switch (policy) {
    case SchedPolicy::Central: return make_central_scheduler(graph, threads);
    case SchedPolicy::Steal: return make_steal_scheduler(graph, threads);
  }
  return make_steal_scheduler(graph, threads);
}

Scheduler::Scheduler(TaskGraph& graph, int threads, SchedPolicy policy)
    : graph_(graph), policy_(policy), thread_count_(threads) {
  DNC_REQUIRE(threads >= 1, "Runtime needs at least one worker");
  idle_.assign(threads, 0.0);
  counters_ = std::make_unique<AtomicWorkerCounters[]>(threads);
}

Scheduler::~Scheduler() {
  // stop_workers() must have run from the derived destructor: workers call
  // virtual hooks, which are gone by the time this destructor executes.
  assert(workers_.empty() && "Scheduler subclass destructor must call stop_workers()");
}

void Scheduler::start() {
  graph_.on_ready = [this](TaskNode* n) { enqueue(n, tls_worker_id); };
  workers_.reserve(thread_count_);
  for (int i = 0; i < thread_count_; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

void Scheduler::stop_workers() {
  stop_.store(true, std::memory_order_seq_cst);
  wake_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  graph_.on_ready = nullptr;
  // Always-on scheduler metrics (DNC_METRICS; one branch when disabled).
  // Workers are joined, so the per-worker counters are final and plain
  // relaxed reads see everything.
  if (obs::metrics::enabled()) {
    namespace m = obs::metrics;
    std::string pl = "policy=\"";
    pl += sched_policy_name(policy_);
    pl += "\"";
    long tasks = 0;
    for (int w = 0; w < thread_count_; ++w)
      tasks += counters_[w].executed.load(std::memory_order_relaxed);
    double idle = 0.0;
    for (double d : idle_) idle += d;
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_runs_total", pl,
                              "Scheduler lifetimes (one per parallel solve)"));
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_tasks_total", pl,
                              "Tasks executed by the runtime"),
           static_cast<double>(tasks));
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_steals_total", pl,
                              "Successful work steals"),
           static_cast<double>(total_steals_.load(std::memory_order_relaxed)));
    long same_l3 = 0, same_socket = 0, cross_socket = 0;
    for (int w = 0; w < thread_count_; ++w) {
      same_l3 += counters_[w].steals_same_l3.load(std::memory_order_relaxed);
      same_socket += counters_[w].steals_same_socket.load(std::memory_order_relaxed);
      cross_socket += counters_[w].steals_cross_socket.load(std::memory_order_relaxed);
    }
    if (same_l3 + same_socket + cross_socket > 0) {
      m::add(m::register_metric(m::Kind::Counter, "dnc_sched_steals_same_l3_total", pl,
                                "Steals whose victim shares the thief's L3 domain"),
             static_cast<double>(same_l3));
      m::add(m::register_metric(m::Kind::Counter, "dnc_sched_steals_same_socket_total", pl,
                                "Steals within the thief's socket but across L3 domains"),
             static_cast<double>(same_socket));
      m::add(m::register_metric(m::Kind::Counter, "dnc_sched_steals_cross_socket_total", pl,
                                "Steals that crossed the socket interconnect"),
             static_cast<double>(cross_socket));
    }
    m::add(m::register_metric(m::Kind::Counter, "dnc_sched_worker_idle_seconds_total", pl,
                              "Summed per-worker idle time (s)"),
           idle);
    m::observe(m::register_metric(m::Kind::Histogram, "dnc_sched_queue_depth_peak", pl,
                                  "Peak ready-queue depth per scheduler lifetime"),
               static_cast<double>(depth_peak_.load(std::memory_order_relaxed)));
  }
}

void Scheduler::enqueue(TaskNode* node, int worker) {
  node->t_ready = now_seconds();
  // inflight_ rises before the task is visible to any worker; see the
  // quiescence argument in the header.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  ready_count_.fetch_add(1, std::memory_order_relaxed);
  push_ready(node, worker);
  sample_depth();
}

void Scheduler::took() {
  ready_count_.fetch_sub(1, std::memory_order_relaxed);
  sample_depth();
}

void Scheduler::sample_depth() {
  long d = ready_count_.load(std::memory_order_relaxed);
  if (d < 0) d = 0;
  int cur = depth_peak_.load(std::memory_order_relaxed);
  while (static_cast<int>(d) > cur &&
         !depth_peak_.compare_exchange_weak(cur, static_cast<int>(d),
                                            std::memory_order_relaxed)) {
  }
  queue_series_.push(now_seconds(), static_cast<int>(d));
}

void Scheduler::record_steal() {
  const long n = total_steals_.fetch_add(1, std::memory_order_relaxed) + 1;
  steal_series_.push(now_seconds(), static_cast<int>(n));
}

Scheduler* Scheduler::current() { return tls_scheduler; }

const char* Scheduler::interned_kind(WorkerCtx& ctx, int kind) {
  if (kind < 0) return nullptr;
  if (kind >= static_cast<int>(ctx.kind_names.size())) {
    // Extend the worker's cache: graph kinds up to the child base, then the
    // scheduler-side child kinds (registered mid-run by spawn_and_wait).
    std::lock_guard<std::mutex> lk(child_mu_);
    const auto& gk = graph_.kinds();
    const std::size_t base = child_kinds_.empty() ? gk.size() : child_kind_base_;
    while (ctx.kind_names.size() < base && ctx.kind_names.size() < gk.size())
      ctx.kind_names.push_back(obs::profiler::intern(gk[ctx.kind_names.size()].name));
    while (ctx.kind_names.size() < base + child_kinds_.size())
      ctx.kind_names.push_back(
          obs::profiler::intern(child_kinds_[ctx.kind_names.size() - base].name));
  }
  return kind < static_cast<int>(ctx.kind_names.size()) ? ctx.kind_names[kind] : nullptr;
}

KindId Scheduler::child_kind(KindId parent_kind, const char* suffix) {
  std::lock_guard<std::mutex> lk(child_mu_);
  const auto key = std::make_pair(parent_kind, std::string(suffix));
  const auto it = child_kind_ids_.find(key);
  if (it != child_kind_ids_.end()) return it->second;
  if (child_kinds_.empty()) {
    child_kind_base_ = graph_.kinds().size();
  } else {
    // Child ids extend the graph's kind table; a graph that keeps
    // registering kinds after the first child kind would alias them.
    DNC_REQUIRE(graph_.kinds().size() == child_kind_base_,
                "TaskGraph registered kinds after the first child kind");
  }
  const auto& gk = graph_.kinds();
  // The parent may itself be a child kind (two-level nesting): resolve it
  // from whichever table owns the id so "Outer/mid" children become
  // "Outer/mid/leaf".
  const TaskKind* parent = nullptr;
  if (parent_kind >= 0 && parent_kind < static_cast<int>(gk.size())) {
    parent = &gk[parent_kind];
  } else if (const std::size_t ci = static_cast<std::size_t>(parent_kind) - child_kind_base_;
             parent_kind >= 0 && ci < child_kinds_.size()) {
    parent = &child_kinds_[ci];
  }
  TaskKind k;
  if (parent != nullptr) {
    k.name = parent->name + "/" + suffix;
    k.memory_bound = parent->memory_bound;  // children inherit the model
    k.color = parent->color;
  } else {
    k.name = std::string("task/") + suffix;
  }
  const KindId id = static_cast<KindId>(child_kind_base_ + child_kinds_.size());
  child_kinds_.push_back(std::move(k));
  child_kind_ids_.emplace(key, id);
  return id;
}

void Scheduler::spawn_and_wait(const char* suffix, long count,
                               const std::function<void(long)>& body, int priority) {
  if (count <= 0) return;
  WorkerCtx* ctx = tls_ctx;
  if (tls_scheduler != this || ctx == nullptr || ctx->running == nullptr) {
    // Not inside one of this scheduler's tasks: degrade to a sequential
    // loop so library code works with or without a runtime underneath.
    for (long i = 0; i < count; ++i) body(i);
    return;
  }
  // Join counter on the spawner's stack: children decrement it as their
  // very last access, and this frame outlives them because it only returns
  // once the counter hits zero.
  std::atomic<long> pending{count};
  const KindId kind = child_kind(ctx->running->kind, suffix);
  std::vector<TaskNode*> children(static_cast<std::size_t>(count));
  {
    std::lock_guard<std::mutex> lk(child_mu_);
    child_nodes_.reserve(child_nodes_.size() + static_cast<std::size_t>(count));
    for (long i = 0; i < count; ++i) {
      auto node = std::make_unique<TaskNode>();
      node->id = next_child_id_++;
      node->kind = kind;
      node->priority = priority;
      node->is_child = true;
      node->join = &pending;
      node->parent_id = ctx->running->id;
      node->obs_level = ctx->running->obs_level;
      node->obs_size = ctx->running->obs_size;
      node->obs_panel = i;
      node->fn = [&body, i] { body(i); };
      children[static_cast<std::size_t>(i)] = node.get();
      child_nodes_.push_back(std::move(node));
    }
  }
  // Children land on the spawner's own queue (locality); other workers
  // steal them like any ready task, which is what spreads a panel fan-out
  // across the machine.
  for (TaskNode* c : children) enqueue(c, ctx->worker_id);
  // Help-first wait: drain own/stolen work instead of parking the core.
  // Anything acquired here -- a child, or an unrelated ready task -- runs
  // nested inside this task's frame; the frame stack keeps self-time sums
  // exact. Brief yields (escalating to short sleeps) cover the tail where
  // the last children run on other workers.
  int misses = 0;
  while (pending.load(std::memory_order_acquire) > 0) {
    TaskNode* t = try_acquire(ctx->worker_id);
    if (t != nullptr) {
      run_task(t, *ctx);
      misses = 0;
    } else if (++misses < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void Scheduler::run_task(TaskNode* node, WorkerCtx& ctx) {
  // Open a fresh frame for this task; remember the enclosing one (non-null
  // exactly when we are help-executing inside spawn_and_wait).
  TaskNode* const enclosing = ctx.running;
  const double saved_nested = ctx.frame_nested;
  std::uint64_t saved_hwc[kHwcSlots];
  std::memcpy(saved_hwc, ctx.frame_hwc, sizeof saved_hwc);
  ctx.running = node;
  ctx.frame_nested = 0.0;
  std::memset(ctx.frame_hwc, 0, sizeof ctx.frame_hwc);

  node->worker = ctx.worker_id;
  node->t_start = now_seconds();
  std::uint64_t c0[kHwcSlots], c1[kHwcSlots];
  if (ctx.sampling) ctx.hwc.read(c0);
  if (ctx.preg.active()) ctx.preg.set_task(interned_kind(ctx, node->kind));
  if (node->fn) node->fn();
  if (ctx.preg.active())
    ctx.preg.set_task(enclosing ? interned_kind(ctx, enclosing->kind) : nullptr);
  std::uint64_t incl[kHwcSlots] = {0, 0, 0, 0};
  if (ctx.sampling) {
    ctx.hwc.read(c1);
    // Self deltas: helped children already claimed their inclusive share.
    for (int i = 0; i < kHwcSlots; ++i) {
      incl[i] = c1[i] - c0[i];
      node->hwc[i] = incl[i] - ctx.frame_hwc[i];
    }
  }
  node->t_end = now_seconds();
  node->t_nested = ctx.frame_nested;

  // Close the frame: credit this task's inclusive cost to the enclosing
  // frame so *its* self time subtracts us in turn.
  ctx.running = enclosing;
  ctx.frame_nested = saved_nested;
  std::memcpy(ctx.frame_hwc, saved_hwc, sizeof saved_hwc);
  if (enclosing != nullptr) {
    ctx.frame_nested += node->t_end - node->t_start;
    if (ctx.sampling)
      for (int i = 0; i < kHwcSlots; ++i) ctx.frame_hwc[i] += incl[i];
  }

  counters_[ctx.worker_id].executed.fetch_add(1, std::memory_order_relaxed);
  if (node->is_child) {
    // Child subtask: wake the spawner's join instead of the graph. The
    // fetch_sub is the last access to the counter -- it lives on the
    // spawner's stack, which survives until pending reaches zero.
    node->join->fetch_sub(1, std::memory_order_acq_rel);
  } else {
    const std::vector<TaskNode*> newly_ready = graph_.complete(node);
    // Successors enter inflight_ before this task leaves it, so inflight_
    // never dips to zero while work remains.
    for (TaskNode* r : newly_ready) enqueue(r, ctx.worker_id);
  }
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(idle_mu_);  // notify under the waiter's mutex
    cv_idle_.notify_all();
  }
}

void Scheduler::worker_loop(int worker_id) {
  tls_worker_id = worker_id;
  WorkerCtx ctx(worker_id, graph_);
  if (ctx.sampling) hwc_active_.store(true, std::memory_order_relaxed);
  tls_scheduler = this;
  tls_ctx = &ctx;
  // Idle accounting: everything between "done with the previous task" (or
  // thread start) and "starting the next task" counts as idle. The marks
  // reuse the trace timestamps, so this adds no clock reads on the task
  // path. Help-first waiting inside a task never counts as idle here --
  // the parent's [t_start, t_end] window covers it.
  double idle_mark = now_seconds();
  for (;;) {
    TaskNode* node = acquire(worker_id);
    if (node == nullptr) break;
    run_task(node, ctx);
    idle_[worker_id] += node->t_start - idle_mark;
    idle_mark = node->t_end;
  }
  tls_scheduler = nullptr;
  tls_ctx = nullptr;
}

void Scheduler::wait_all() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  cv_idle_.wait(lk, [&] { return inflight_.load(std::memory_order_acquire) == 0; });
}

Trace Scheduler::trace() const {
  Trace t;
  t.workers = threads();
  t.sched_policy = sched_policy_name(policy_);
  const bool hwc = hwc_active_.load(std::memory_order_relaxed);
  const auto to_event = [hwc](const TaskNode& node) {
    TraceEvent e{node.id,       node.kind,     node.worker,    node.t_start,
                 node.t_end,    node.t_ready,  node.obs_level, node.obs_size,
                 node.obs_panel, node.priority};
    if (hwc)
      for (int i = 0; i < kHwcSlots; ++i) e.hwc[i] = node.hwc[i];
    e.nested = node.t_nested;
    if (node.is_child) e.parent = static_cast<long long>(node.parent_id);
    return e;
  };
  for (const auto& node : graph_.nodes()) {
    t.events.push_back(to_event(*node));
    for (std::uint64_t p : node->pred_ids) t.edges.emplace_back(p, node->id);
  }
  if (hwc) {
    const obs::HwcBackend b = obs::hwc_active_backend();
    t.hwc_backend = obs::hwc_backend_name(b);
    for (int i = 0; i < kHwcSlots; ++i) t.hwc_slot_names.push_back(obs::hwc_slot_name(b, i));
  }
  for (const TaskKind& k : graph_.kinds()) {
    t.kind_names.push_back(k.name);
    t.kind_memory_bound.push_back(k.memory_bound ? 1 : 0);
  }
  {
    // Child subtasks and their kinds, appended after the graph's. No edges:
    // the parent link rides on the event itself.
    std::lock_guard<std::mutex> lk(child_mu_);
    for (const auto& node : child_nodes_) t.events.push_back(to_event(*node));
    for (const TaskKind& k : child_kinds_) {
      t.kind_names.push_back(k.name);
      t.kind_memory_bound.push_back(k.memory_bound ? 1 : 0);
    }
  }
  t.worker_idle = idle_;
  t.queue_samples = queue_series_.snapshot();
  t.steal_samples = steal_series_.snapshot();
  t.queue_depth_peak = depth_peak_.load(std::memory_order_relaxed);
  t.sched_counters.resize(threads());
  for (int w = 0; w < threads(); ++w) {
    const AtomicWorkerCounters& c = counters_[w];
    WorkerSchedCounters& out = t.sched_counters[w];
    out.executed = c.executed.load(std::memory_order_relaxed);
    out.local_pops = c.local_pops.load(std::memory_order_relaxed);
    out.steals = c.steals.load(std::memory_order_relaxed);
    out.steal_attempts = c.steal_attempts.load(std::memory_order_relaxed);
    out.failed_steals = c.failed_steals.load(std::memory_order_relaxed);
    out.placed = c.placed.load(std::memory_order_relaxed);
    out.steals_same_l3 = c.steals_same_l3.load(std::memory_order_relaxed);
    out.steals_same_socket = c.steals_same_socket.load(std::memory_order_relaxed);
    out.steals_cross_socket = c.steals_cross_socket.load(std::memory_order_relaxed);
  }
  return t;
}

}  // namespace dnc::rt
