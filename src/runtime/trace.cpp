#include "runtime/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace dnc::rt {

double Trace::makespan() const {
  double t0 = 0.0, t1 = 0.0;
  bool first = true;
  for (const auto& e : events) {
    if (e.worker < 0) continue;  // never executed
    if (first) {
      t0 = e.t_start;
      t1 = e.t_end;
      first = false;
    } else {
      t0 = std::min(t0, e.t_start);
      t1 = std::max(t1, e.t_end);
    }
  }
  return first ? 0.0 : t1 - t0;
}

double Trace::total_busy() const {
  double s = 0.0;
  for (const auto& e : events) {
    if (e.worker < 0) continue;  // consistent with makespan()
    s += e.self_duration();
  }
  return s;
}

double Trace::efficiency() const {
  const double span = makespan();
  if (span <= 0.0 || workers <= 0) return 1.0;
  return total_busy() / (span * workers);
}

std::vector<double> Trace::busy_by_kind() const {
  std::vector<double> acc(kind_names.size(), 0.0);
  for (const auto& e : events) {
    if (e.worker < 0) continue;
    if (e.kind >= 0 && e.kind < static_cast<int>(acc.size())) acc[e.kind] += e.self_duration();
  }
  return acc;
}

std::string Trace::ascii_gantt(int width) const {
  width = std::max(width, 1);
  bool any = false;
  double t0 = 0.0, t1 = 0.0;
  for (const auto& e : events) {
    if (e.worker < 0) continue;
    if (!any) {
      t0 = e.t_start;
      t1 = e.t_end;
      any = true;
    } else {
      t0 = std::min(t0, e.t_start);
      t1 = std::max(t1, e.t_end);
    }
  }
  if (!any || workers <= 0) return "(empty trace)\n";
  const double span = std::max(t1 - t0, 1e-12);
  // For each worker row, pick for every column the kind occupying the most
  // of that time slice.
  std::string out;
  for (int w = 0; w < workers; ++w) {
    std::vector<std::vector<double>> per_kind(kind_names.size(),
                                              std::vector<double>(width, 0.0));
    for (const auto& e : events) {
      if (e.worker != w) continue;
      const double a = (e.t_start - t0) / span * width;
      const double b = (e.t_end - t0) / span * width;
      const int ca = std::clamp(static_cast<int>(a), 0, width - 1);
      const int cb = std::clamp(static_cast<int>(b), 0, width - 1);
      for (int ccol = ca; ccol <= cb; ++ccol) {
        const double lo = std::max(a, static_cast<double>(ccol));
        const double hi = std::min(b, static_cast<double>(ccol + 1));
        if (hi > lo && e.kind >= 0) per_kind[e.kind][ccol] += hi - lo;
      }
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "w%02d |", w);
    out += buf;
    for (int ccol = 0; ccol < width; ++ccol) {
      int best = -1;
      double bv = 0.0;
      for (std::size_t k = 0; k < per_kind.size(); ++k) {
        if (per_kind[k][ccol] > bv) {
          bv = per_kind[k][ccol];
          best = static_cast<int>(k);
        }
      }
      if (best < 0 || bv < 0.05) {
        out += '.';
      } else {
        const std::string& nm = kind_names[best];
        out += nm.empty() ? '?' : nm[0];
      }
    }
    out += "|\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof buf, "time axis: %.6f s total; '.' = idle\n", span);
  out += buf;
  return out;
}

std::string Trace::kernel_summary() const {
  const auto acc = busy_by_kind();
  std::vector<long> counts(kind_names.size(), 0);
  for (const auto& e : events) {
    if (e.worker < 0) continue;
    if (e.kind >= 0 && e.kind < static_cast<int>(counts.size())) ++counts[e.kind];
  }
  const double busy = std::max(total_busy(), 1e-12);
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-22s %8s %12s %7s\n", "kernel", "count", "time(s)", "%busy");
  out += buf;
  for (std::size_t k = 0; k < kind_names.size(); ++k) {
    if (counts[k] == 0) continue;
    std::snprintf(buf, sizeof buf, "%-22s %8ld %12.6f %6.1f%%\n", kind_names[k].c_str(),
                  counts[k], acc[k], 100.0 * acc[k] / busy);
    out += buf;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

double Trace::meta_counter(const std::string& name) const {
  for (const auto& [k, v] : meta_counters)
    if (k == name) return v;
  return 0.0;
}

std::string Trace::meta_string(const std::string& name) const {
  for (const auto& [k, v] : meta_strings)
    if (k == name) return v;
  return "";
}

std::string chrome_metadata_json(int workers) {
  // One process_name block per export call -- this helper is the single
  // source of the metadata prologue for both exporters, so sequence exports
  // (trace.2.json, ...) each carry exactly one self-contained copy.
  std::string out =
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"dnc solver\"}}";
  char buf[160];
  for (int w = 0; w < workers; ++w) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"args\":{\"name\":\"worker %d\"}}",
                  w, w);
    out += buf;
  }
  return out;
}

std::string Trace::chrome_trace_json() const {
  std::string out = "[\n";
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    out += obj;
    first = false;
  };
  char buf[256];
  // Metadata so Perfetto / chrome://tracing label the process and workers.
  emit(chrome_metadata_json(workers));
  for (const auto& e : events) {
    if (e.worker < 0) continue;  // never executed: nothing to draw
    const std::string name =
        (e.kind >= 0 && e.kind < static_cast<int>(kind_names.size()))
            ? json_escape(kind_names[e.kind])
            : std::string("task");
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f}",
                  name.c_str(), e.worker, e.t_start * 1e6, (e.t_end - e.t_start) * 1e6);
    emit(buf);
  }
  out += "\n]\n";
  return out;
}

}  // namespace dnc::rt
