// Out-of-order task execution engine over a TaskGraph.
//
// Workers pull ready tasks from a shared queue; completion releases
// successors. The master thread keeps submitting while workers execute, so
// the "sequential" portion of the algorithm (task submission, the join
// kernels) overlaps with useful work -- the core claim of the paper's
// parallelisation strategy.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/graph.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

class Runtime {
 public:
  /// Spawns `threads` workers bound to `graph`. The graph must outlive the
  /// runtime. Tracing is always on; it costs two clock reads per task.
  Runtime(TaskGraph& graph, int threads);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Blocks until every submitted task has executed. May be called multiple
  /// times (submission can resume afterwards).
  void wait_all();

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Builds the execution trace (valid after wait_all).
  Trace trace() const;

 private:
  void worker_loop(int worker_id);
  void enqueue(TaskNode* node);

  TaskGraph& graph_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<TaskNode*> ready_;
  long inflight_ = 0;  // ready + running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Convenience: run a submission function to completion on `threads`
/// workers and return the trace.
Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter);

}  // namespace dnc::rt
