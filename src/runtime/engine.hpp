// Out-of-order task execution engine over a TaskGraph.
//
// Workers pull ready tasks from a shared queue; completion releases
// successors. The master thread keeps submitting while workers execute, so
// the "sequential" portion of the algorithm (task submission, the join
// kernels) overlaps with useful work -- the core claim of the paper's
// parallelisation strategy.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/graph.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

class Runtime {
 public:
  /// Spawns `threads` workers bound to `graph`. The graph must outlive the
  /// runtime. Tracing is always on; it costs two clock reads per task for
  /// the start/end stamps plus one per queue transition for the scheduler
  /// metrics (ready stamp + queue-depth sample).
  Runtime(TaskGraph& graph, int threads);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Blocks until every submitted task has executed. May be called multiple
  /// times (submission can resume afterwards).
  void wait_all();

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Builds the execution trace (valid after wait_all): per-task events
  /// with ready stamps and annotations, dependency edges, per-worker idle
  /// time, and the sampled ready-queue depth.
  Trace trace() const;

 private:
  void worker_loop(int worker_id);
  void enqueue(TaskNode* node);

  TaskGraph& graph_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<TaskNode*> ready_;
  long inflight_ = 0;  // ready + running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
  // --- scheduler observability (guarded by mu_ except idle_, which is
  // written only by its owning worker and read after quiescence) ---
  std::vector<QueueSample> queue_samples_;
  std::vector<double> idle_;
};

/// Convenience: run a submission function to completion on `threads`
/// workers and return the trace.
Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter);

}  // namespace dnc::rt
