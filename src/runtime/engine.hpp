// Out-of-order task execution engine over a TaskGraph.
//
// Workers pull ready tasks from the scheduler; completion releases
// successors. The master thread keeps submitting while workers execute, so
// the "sequential" portion of the algorithm (task submission, the join
// kernels) overlaps with useful work -- the core claim of the paper's
// parallelisation strategy.
//
// Runtime is a thin facade over the pluggable scheduler (see
// runtime/scheduler.hpp): SchedPolicy::Steal (per-worker deques + work
// stealing, the default) or SchedPolicy::Central (the original single
// shared queue). The DNC_SCHED environment variable picks the default.
#pragma once

#include <functional>
#include <memory>

#include "runtime/graph.hpp"
#include "runtime/sched.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

class Scheduler;

class Runtime {
 public:
  /// Spawns `threads` workers bound to `graph`. The graph must outlive the
  /// runtime. Tracing is always on; it costs two clock reads per task for
  /// the start/end stamps plus one per queue transition for the scheduler
  /// metrics (ready stamp + decimated queue-depth sample).
  Runtime(TaskGraph& graph, int threads, SchedPolicy policy = default_sched_policy());
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Blocks until every submitted task has executed. May be called multiple
  /// times (submission can resume afterwards).
  void wait_all();

  int threads() const;
  SchedPolicy policy() const;

  /// Builds the execution trace (valid after wait_all): per-task events
  /// with ready stamps, priorities and annotations, dependency edges,
  /// per-worker idle time and scheduler counters, and the sampled
  /// ready-queue depth.
  Trace trace() const;

 private:
  std::unique_ptr<Scheduler> sched_;
};

/// Convenience: run a submission function to completion on `threads`
/// workers and return the trace.
Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter);

}  // namespace dnc::rt
