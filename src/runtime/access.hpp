// Data access qualifiers for the sequential task-flow model.
//
// Tasks are submitted in program order by a single master thread; the
// runtime derives dependencies from how consecutive tasks access the same
// logical data (QUARK semantics):
//   In      read-only: ordered after the previous writer(s)
//   Out     write: ordered after previous writer(s) and all readers since
//   InOut   read-write: same ordering as Out
//   GatherV the paper's contribution: a *commuting* write. Consecutive
//           GatherV accesses to the same handle run concurrently (the
//           developer guarantees they touch disjoint parts); any non-GatherV
//           access closes the group and waits for all of it.
#pragma once

namespace dnc::rt {

enum class Access { In, Out, InOut, GatherV };

const char* access_name(Access a);

}  // namespace dnc::rt
