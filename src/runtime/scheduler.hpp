// Scheduler architecture behind rt::Runtime.
//
// A Scheduler owns the worker threads and the ready-task storage for one
// TaskGraph. The base class implements everything policy-independent --
// the run/complete/release cycle, quiescence tracking for wait_all(), idle
// accounting, per-worker counters, decimated queue-depth sampling, and
// trace assembly -- while the two concrete policies (sched_central.cpp,
// sched_steal.cpp) only decide where ready tasks are stored and how a
// worker acquires its next one:
//
//   CentralScheduler  one mutex + condition variable around a single
//                     PrioDeque (the original engine, with priorities);
//   StealScheduler    one bounded PrioDeque per worker (mutex each), a
//                     global overflow queue, round-robin placement for
//                     submitter-side pushes, own-deque placement for
//                     worker-side pushes, LIFO owner pop / FIFO steal, and
//                     an exponential-backoff + sleep idle path.
//
// Quiescence argument (both policies): `inflight_` counts ready + running
// tasks and is incremented *before* a task becomes visible to any worker
// and decremented only *after* its newly-ready successors have been
// enqueued (each incrementing inflight_ first). Hence inflight_ can only
// reach zero when no task is queued, running, or about to be queued by a
// running task, and the decrement-to-zero side notifies cv_idle_ while
// holding the waiter's mutex -- wait_all() cannot miss the wakeup.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/graph.hpp"
#include "runtime/sched.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

/// Priority-bucketed task queue: 64 FIFO buckets plus an occupancy bitmask
/// so the highest non-empty priority is found in O(1). Priorities outside
/// [0, 63] are clamped. Not thread-safe; callers hold their own mutex
/// (mutex-per-deque is the design point -- no lock-free heroics).
class PrioDeque {
 public:
  static constexpr int kBuckets = 64;

  void push(TaskNode* node);
  /// Highest priority, newest within it (owner-side LIFO pop).
  TaskNode* pop_newest();
  /// Highest priority, oldest within it (FIFO drain / thief-side steal).
  TaskNode* pop_oldest();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  std::array<std::deque<TaskNode*>, kBuckets> buckets_;
  std::uint64_t mask_ = 0;  // bit p set <=> buckets_[p] non-empty
  std::size_t size_ = 0;
};

/// Bounded, self-decimating time series. Keeps 1-in-stride samples; when
/// the buffer reaches `cap` it drops every other retained sample and
/// doubles the stride, so memory stays O(cap) for arbitrarily long runs
/// while the kept samples remain uniformly spread. An atomic tick
/// prefilter rejects off-stride samples without taking the mutex, so on
/// long runs the common case is lock-free.
class SampledSeries {
 public:
  explicit SampledSeries(std::size_t cap = 8192) : cap_(cap) {}

  void push(double t, int depth);
  std::vector<QueueSample> snapshot() const;
  /// Current decimation stride (1 until the first overflow).
  unsigned long long stride() const { return stride_.load(std::memory_order_relaxed); }

 private:
  std::size_t cap_;
  std::atomic<unsigned long long> tick_{0};
  std::atomic<unsigned long long> stride_{1};
  mutable std::mutex mu_;
  std::vector<QueueSample> data_;
};

/// Policy-independent scheduler core; see file comment. Concrete policies
/// implement the four storage hooks. Lifecycle contract for derived
/// classes: call start() at the end of the constructor and stop_workers()
/// at the start of the destructor (workers call the virtual hooks, so they
/// must be joined while the derived object is still alive).
class Scheduler {
 public:
  virtual ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates the scheduler for `policy` and wires graph.on_ready to it.
  static std::unique_ptr<Scheduler> make(SchedPolicy policy, TaskGraph& graph, int threads);

  /// Blocks until every submitted task has executed; reusable.
  void wait_all();

  int threads() const { return static_cast<int>(workers_.size()); }
  SchedPolicy policy() const { return policy_; }

  /// Builds the execution trace (valid after wait_all()).
  Trace trace() const;

 protected:
  Scheduler(TaskGraph& graph, int threads, SchedPolicy policy);

  /// Spawns the workers and hooks graph.on_ready. Call from derived ctor.
  void start();
  /// Requests stop, wakes everyone, joins. Call from derived dtor.
  void stop_workers();

  // --- policy hooks ---
  /// Stores a ready task. `worker` is the pushing worker id, or -1 when the
  /// push comes from the submitting thread.
  virtual void push_ready(TaskNode* node, int worker) = 0;
  /// Blocks until a task is available (returns it) or stop was requested
  /// and nothing is left to drain (returns nullptr). Implementations call
  /// took() after removing a task from storage.
  virtual TaskNode* acquire(int worker) = 0;
  /// Wakes every blocked worker (stop_ is already set). Must take the
  /// sleep mutex (empty critical section suffices) before notifying so a
  /// worker between predicate check and wait cannot miss it.
  virtual void wake_all() = 0;

  /// Bookkeeping when a task leaves ready storage: decrements the ready
  /// count and samples the queue depth.
  void took();

  // Shared state readable by policies.
  std::atomic<bool> stop_{false};
  /// Ready-but-not-taken tasks across all storage; the steal policy's
  /// sleep predicate ("is there anything to find?") and the depth series.
  std::atomic<long> ready_count_{0};

  /// Per-worker counters; relaxed atomics because idle thieves bump
  /// steal_attempts concurrently with trace() reads.
  struct AtomicWorkerCounters {
    std::atomic<long> executed{0};
    std::atomic<long> local_pops{0};
    std::atomic<long> steals{0};
    std::atomic<long> steal_attempts{0};
    std::atomic<long> failed_steals{0};
    std::atomic<long> placed{0};
  };
  std::unique_ptr<AtomicWorkerCounters[]> counters_;

  /// Records one successful steal into the cumulative steal series.
  void record_steal();

 private:
  void worker_loop(int worker_id);
  /// Stamps t_ready, raises inflight_/ready_count_, stores via push_ready.
  void enqueue(TaskNode* node, int worker);
  void sample_depth();

  TaskGraph& graph_;
  SchedPolicy policy_;
  std::atomic<long> inflight_{0};  // ready + running tasks
  std::mutex idle_mu_;
  std::condition_variable cv_idle_;
  std::vector<std::thread> workers_;
  int thread_count_ = 0;

  std::vector<double> idle_;  // written only by the owning worker
  SampledSeries queue_series_;
  SampledSeries steal_series_;
  std::atomic<long> total_steals_{0};
  std::atomic<int> depth_peak_{0};
  /// Set by any worker whose obs::ThreadHwc sampled at least one task;
  /// trace() stamps the backend name onto the Trace when set.
  std::atomic<bool> hwc_active_{false};
};

/// Policy factories (defined in sched_central.cpp / sched_steal.cpp);
/// normally reached through Scheduler::make.
std::unique_ptr<Scheduler> make_central_scheduler(TaskGraph& graph, int threads);
std::unique_ptr<Scheduler> make_steal_scheduler(TaskGraph& graph, int threads);

}  // namespace dnc::rt
