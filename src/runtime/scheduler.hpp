// Scheduler architecture behind rt::Runtime.
//
// A Scheduler owns the worker threads and the ready-task storage for one
// TaskGraph. The base class implements everything policy-independent --
// the run/complete/release cycle, quiescence tracking for wait_all(), idle
// accounting, per-worker counters, decimated queue-depth sampling, and
// trace assembly -- while the two concrete policies (sched_central.cpp,
// sched_steal.cpp) only decide where ready tasks are stored and how a
// worker acquires its next one:
//
//   CentralScheduler  one mutex + condition variable around a single
//                     PrioDeque (the original engine, with priorities);
//   StealScheduler    one bounded PrioDeque per worker (mutex each), a
//                     global overflow queue, round-robin placement for
//                     submitter-side pushes, own-deque placement for
//                     worker-side pushes, LIFO owner pop / FIFO steal, and
//                     an exponential-backoff + sleep idle path.
//
// Quiescence argument (both policies): `inflight_` counts ready + running
// tasks and is incremented *before* a task becomes visible to any worker
// and decremented only *after* its newly-ready successors have been
// enqueued (each incrementing inflight_ first). Hence inflight_ can only
// reach zero when no task is queued, running, or about to be queued by a
// running task, and the decrement-to-zero side notifies cv_idle_ while
// holding the waiter's mutex -- wait_all() cannot miss the wakeup.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/graph.hpp"
#include "runtime/sched.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

/// Per-worker execution context (hwc sampler, profiler registration, the
/// stack of nested task frames). Defined in scheduler.cpp -- it embeds obs
/// types the header must not pull in.
struct WorkerCtx;

/// Priority-bucketed task queue: 64 FIFO buckets plus an occupancy bitmask
/// so the highest non-empty priority is found in O(1). Priorities outside
/// [0, 63] are clamped. Not thread-safe; callers hold their own mutex
/// (mutex-per-deque is the design point -- no lock-free heroics).
class PrioDeque {
 public:
  static constexpr int kBuckets = 64;

  void push(TaskNode* node);
  /// Highest priority, newest within it (owner-side LIFO pop).
  TaskNode* pop_newest();
  /// Highest priority, oldest within it (FIFO drain / thief-side steal).
  TaskNode* pop_oldest();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  std::array<std::deque<TaskNode*>, kBuckets> buckets_;
  std::uint64_t mask_ = 0;  // bit p set <=> buckets_[p] non-empty
  std::size_t size_ = 0;
};

/// Bounded, self-decimating time series. Keeps 1-in-stride samples; when
/// the buffer reaches `cap` it drops every other retained sample and
/// doubles the stride, so memory stays O(cap) for arbitrarily long runs
/// while the kept samples remain uniformly spread. An atomic tick
/// prefilter rejects off-stride samples without taking the mutex, so on
/// long runs the common case is lock-free.
class SampledSeries {
 public:
  explicit SampledSeries(std::size_t cap = 8192) : cap_(cap) {}

  void push(double t, int depth);
  std::vector<QueueSample> snapshot() const;
  /// Current decimation stride (1 until the first overflow).
  unsigned long long stride() const { return stride_.load(std::memory_order_relaxed); }

 private:
  std::size_t cap_;
  std::atomic<unsigned long long> tick_{0};
  std::atomic<unsigned long long> stride_{1};
  mutable std::mutex mu_;
  std::vector<QueueSample> data_;
};

/// Policy-independent scheduler core; see file comment. Concrete policies
/// implement the four storage hooks. Lifecycle contract for derived
/// classes: call start() at the end of the constructor and stop_workers()
/// at the start of the destructor (workers call the virtual hooks, so they
/// must be joined while the derived object is still alive).
class Scheduler {
 public:
  virtual ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Creates the scheduler for `policy` and wires graph.on_ready to it.
  static std::unique_ptr<Scheduler> make(SchedPolicy policy, TaskGraph& graph, int threads);

  /// Blocks until every submitted task has executed; reusable.
  void wait_all();

  int threads() const { return static_cast<int>(workers_.size()); }
  SchedPolicy policy() const { return policy_; }

  /// Builds the execution trace (valid after wait_all()).
  Trace trace() const;

  /// Scheduler whose worker is executing the current thread's task, or
  /// nullptr on non-worker threads. Lets library code (e.g. parallel_gemm)
  /// discover "am I inside the runtime?" without plumbing a handle through.
  static Scheduler* current();

  /// Priority child subtasks run at: above every graph-task priority
  /// (dc::detail::task_priority tops out at 61), so spawned children drain
  /// before unrelated graph work on every queue.
  static constexpr int kChildPriority = 63;

  /// Task-internal spawning with a help-first wait. Callable from inside a
  /// running task body on one of this scheduler's workers: submits `count`
  /// child subtasks running `body(0..count-1)` onto the worker's own queue
  /// and blocks until all have finished -- but "blocks" by working: the
  /// waiting worker keeps draining its deque / stealing (try_acquire), so
  /// the core is never parked while children run elsewhere. Child trace
  /// events carry the parent's id and a kind named "<ParentKind>/<suffix>"
  /// (registered on first use, inheriting the parent's memory-bound flag)
  /// so obs/Perfetto/profiler attribute nested work to its spawner.
  ///
  /// Called from a non-worker thread (or a worker of another scheduler),
  /// the bodies run inline sequentially -- library code stays correct
  /// without a runtime. `body` must be safe to invoke concurrently from
  /// multiple workers with distinct indices.
  void spawn_and_wait(const char* suffix, long count, const std::function<void(long)>& body,
                      int priority = kChildPriority);

 protected:
  Scheduler(TaskGraph& graph, int threads, SchedPolicy policy);

  /// Spawns the workers and hooks graph.on_ready. Call from derived ctor.
  void start();
  /// Requests stop, wakes everyone, joins. Call from derived dtor.
  void stop_workers();

  // --- policy hooks ---
  /// Stores a ready task. `worker` is the pushing worker id, or -1 when the
  /// push comes from the submitting thread.
  virtual void push_ready(TaskNode* node, int worker) = 0;
  /// Blocks until a task is available (returns it) or stop was requested
  /// and nothing is left to drain (returns nullptr). Implementations call
  /// took() after removing a task from storage.
  virtual TaskNode* acquire(int worker) = 0;
  /// Non-blocking acquire for the help-first wait loop: one full pass over
  /// the storage (own deque, overflow, steal cycle for the steal policy; a
  /// single locked pop for the central one). Returns nullptr when nothing
  /// was found; never sleeps. Implementations call took() on success.
  virtual TaskNode* try_acquire(int worker) = 0;
  /// Wakes every blocked worker (stop_ is already set). Must take the
  /// sleep mutex (empty critical section suffices) before notifying so a
  /// worker between predicate check and wait cannot miss it.
  virtual void wake_all() = 0;

  /// Bookkeeping when a task leaves ready storage: decrements the ready
  /// count and samples the queue depth.
  void took();

  // Shared state readable by policies.
  std::atomic<bool> stop_{false};
  /// Ready-but-not-taken tasks across all storage; the steal policy's
  /// sleep predicate ("is there anything to find?") and the depth series.
  std::atomic<long> ready_count_{0};

  /// Per-worker counters; relaxed atomics because idle thieves bump
  /// steal_attempts concurrently with trace() reads.
  struct AtomicWorkerCounters {
    std::atomic<long> executed{0};
    std::atomic<long> local_pops{0};
    std::atomic<long> steals{0};
    std::atomic<long> steal_attempts{0};
    std::atomic<long> failed_steals{0};
    std::atomic<long> placed{0};
    // Locality split of steals (steal policy only; see WorkerSchedCounters).
    std::atomic<long> steals_same_l3{0};
    std::atomic<long> steals_same_socket{0};
    std::atomic<long> steals_cross_socket{0};
  };
  std::unique_ptr<AtomicWorkerCounters[]> counters_;

  /// Records one successful steal into the cumulative steal series.
  void record_steal();

 private:
  void worker_loop(int worker_id);
  /// Executes one task on this worker: timestamps, hwc deltas, profiler
  /// attribution, completion (graph successors or child join decrement),
  /// inflight_ bookkeeping. Re-entrant -- the help-first wait inside
  /// spawn_and_wait calls it with the parent task's frame still open, and
  /// the frame stack in WorkerCtx keeps self-time/self-hwc accounting
  /// correct across arbitrary nesting depth.
  void run_task(TaskNode* node, WorkerCtx& ctx);
  /// Stamps t_ready, raises inflight_/ready_count_, stores via push_ready.
  void enqueue(TaskNode* node, int worker);
  void sample_depth();

  /// Registers (or reuses) the child kind "<parent-kind-name>/<suffix>".
  /// Child kind ids extend the graph's kind table, so the graph must not
  /// register further kinds once the first child kind exists (drivers
  /// register all kinds up front; enforced with DNC_REQUIRE).
  KindId child_kind(KindId parent_kind, const char* suffix);
  /// Interned profiler name for `kind`, extending the worker's cache
  /// lazily so child kinds registered mid-run resolve on every worker.
  const char* interned_kind(WorkerCtx& ctx, int kind);

  TaskGraph& graph_;
  SchedPolicy policy_;
  std::atomic<long> inflight_{0};  // ready + running tasks
  std::mutex idle_mu_;
  std::condition_variable cv_idle_;
  std::vector<std::thread> workers_;
  int thread_count_ = 0;

  std::vector<double> idle_;  // written only by the owning worker
  SampledSeries queue_series_;
  SampledSeries steal_series_;
  std::atomic<long> total_steals_{0};
  std::atomic<int> depth_peak_{0};
  /// Set by any worker whose obs::ThreadHwc sampled at least one task;
  /// trace() stamps the backend name onto the Trace when set.
  std::atomic<bool> hwc_active_{false};

  // --- nested-subtask state (spawn_and_wait) ---
  /// Guards child_nodes_ / child_kinds_ / child_kind_ids_: child tasks are
  /// created from inside running task bodies, i.e. from many workers at
  /// once, unlike graph submission which is single-threaded.
  mutable std::mutex child_mu_;
  /// Scheduler-owned child task nodes (the TaskGraph never sees them);
  /// kept alive until destruction so trace() can read them.
  std::vector<std::unique_ptr<TaskNode>> child_nodes_;
  /// Child kinds, appended after the graph's kinds in the combined table.
  std::vector<TaskKind> child_kinds_;
  /// Size of the graph kind table when the first child kind was made; the
  /// combined kind table is graph kinds [0, base) + child_kinds_ [base, ..).
  std::size_t child_kind_base_ = 0;
  std::map<std::pair<int, std::string>, KindId> child_kind_ids_;
  /// Child ids start far above any graph id (graph ids count up from 0) so
  /// trace consumers can rely on ids staying unique across both kinds.
  std::uint64_t next_child_id_ = std::uint64_t{1} << 62;
};

/// Policy factories (defined in sched_central.cpp / sched_steal.cpp);
/// normally reached through Scheduler::make.
std::unique_ptr<Scheduler> make_central_scheduler(TaskGraph& graph, int threads);
std::unique_ptr<Scheduler> make_steal_scheduler(TaskGraph& graph, int threads);

/// Free-function form of task-internal spawning for library code: fans
/// `body(0..count-1)` out as child subtasks of the currently-running task
/// when the calling thread is a runtime worker, and runs it as a plain
/// sequential loop otherwise. This is how blas::parallel_gemm parallelises
/// without owning threads -- the scheduler is the only thread source.
inline void spawn_and_wait(const char* suffix, long count,
                           const std::function<void(long)>& body) {
  Scheduler* s = Scheduler::current();
  if (s != nullptr) {
    s->spawn_and_wait(suffix, count, body);
  } else {
    for (long i = 0; i < count; ++i) body(i);
  }
}

}  // namespace dnc::rt
