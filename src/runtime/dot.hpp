// Graphviz DOT export of a task graph, reproducing the paper's Figure 2
// (the DAG of the D&C tridiagonal eigensolver with kernels coloured as in
// Table II).
#pragma once

#include <string>

#include "runtime/graph.hpp"

namespace dnc::rt {

/// Returns the graph in DOT syntax; node colour/fill follow the registered
/// task kinds.
std::string export_dot(const TaskGraph& graph, const std::string& title = "taskflow");

}  // namespace dnc::rt
