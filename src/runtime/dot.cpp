#include "runtime/dot.hpp"

#include <cstdio>

namespace dnc::rt {

std::string export_dot(const TaskGraph& graph, const std::string& title) {
  std::string out = "digraph \"" + title + "\" {\n";
  out += "  rankdir=TB;\n  node [style=filled, fontname=\"Helvetica\", shape=box];\n";
  char buf[256];
  for (const auto& node : graph.nodes()) {
    const TaskKind& k = graph.kind_of(*node);
    std::snprintf(buf, sizeof buf, "  t%llu [label=\"%s\", fillcolor=\"%s\"];\n",
                  static_cast<unsigned long long>(node->id), k.name.c_str(), k.color.c_str());
    out += buf;
  }
  for (const auto& node : graph.nodes()) {
    for (std::uint64_t pid : node->pred_ids) {
      std::snprintf(buf, sizeof buf, "  t%llu -> t%llu;\n",
                    static_cast<unsigned long long>(pid),
                    static_cast<unsigned long long>(node->id));
      out += buf;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace dnc::rt
