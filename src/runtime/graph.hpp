// Task graph construction: sequential task-flow submission with automatic
// dependency inference from data-access qualifiers (the QUARK model the
// paper's solver is written against).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/access.hpp"

namespace dnc::rt {

/// Identity of a logical piece of data. The runtime never dereferences the
/// data itself -- a handle is pure identity, which is how the solver maps
/// "the eigenvector block of tree node v" or "panel p of the merge at node
/// v" onto dependency tracking without address-range analysis.
class Handle {
 public:
  explicit Handle(std::string label = {}) : label_(std::move(label)) {}
  const std::string& label() const { return label_; }

 private:
  std::string label_;
};

/// Task kinds drive trace colours and the simulator's memory-bound model.
struct TaskKind {
  std::string name;
  bool memory_bound = false;  ///< bandwidth-limited (Permute/CopyBack/Sort)
  std::string color = "#808080";
};

using KindId = int;

struct TaskNode {
  std::uint64_t id = 0;
  KindId kind = 0;
  /// Scheduling priority: higher runs first among ready tasks, FIFO within
  /// equal priority. Fixed at submission (a task can become ready inside
  /// submit(), so a post-submit setter would be a race). Both engine
  /// policies and the simulator honor it.
  int priority = 0;
  std::function<void()> fn;
  // --- scheduling state ---
  std::atomic<long> unsatisfied{0};
  std::mutex mu;
  bool done = false;
  std::vector<TaskNode*> successors;
  // --- structure retained for DOT export and the simulator ---
  std::vector<std::uint64_t> pred_ids;
  // --- trace ---
  double t_start = 0.0;
  double t_end = 0.0;
  /// When the engine moved the task into the ready queue (trace clock).
  double t_ready = 0.0;
  int worker = -1;
  // --- observability annotations (optional; set by the submitter right
  // after submit(), surfaced as per-event args in trace exports) ---
  int obs_level = -1;   ///< merge-tree level of the owning node
  long obs_size = -1;   ///< block size of the owning (sub)problem
  long obs_panel = -1;  ///< panel index within the merge
  /// Hardware-counter deltas sampled around fn() by the executing worker
  /// (obs::ThreadHwc); all zero when DNC_HWC sampling is off. Written only
  /// by the executing worker, read by trace() after wait_all(). For a task
  /// that help-executed nested subtasks these are SELF deltas: the helped
  /// tasks' inclusive deltas are subtracted so per-kind aggregates add up.
  std::uint64_t hwc[4] = {0, 0, 0, 0};

  // --- nested subtask state (task-internal spawning) ---
  /// Non-null marks a child subtask spawned from inside a running task
  /// (Scheduler::spawn_and_wait). On completion the worker decrements this
  /// join counter instead of calling TaskGraph::complete(); the node is
  /// owned by the Scheduler, not the TaskGraph.
  std::atomic<long>* join = nullptr;
  /// Id of the spawning parent task (child subtasks only).
  std::uint64_t parent_id = 0;
  bool is_child = false;
  /// Seconds of directly-nested helped tasks executed inside this task's
  /// [t_start, t_end] window by the same worker (help-first waiting). The
  /// task's self time is (t_end - t_start) - t_nested.
  double t_nested = 0.0;

  TaskNode* annotate(int level, long size, long panel = -1) {
    obs_level = level;
    obs_size = size;
    obs_panel = panel;
    return this;
  }
};

struct TaskDep {
  const Handle* handle;
  Access mode;
};

/// Builds the DAG. Submission must happen from a single thread; execution
/// (by Runtime) may overlap with submission, exactly as in QUARK where the
/// master thread keeps submitting while workers drain ready tasks.
class TaskGraph {
 public:
  TaskGraph();
  ~TaskGraph();
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Registers a task kind (colour + memory-bound classification).
  KindId register_kind(const std::string& name, bool memory_bound = false,
                       const std::string& color = "#808080");

  /// Submits a task accessing the given handles. Returns the node, already
  /// wired to its predecessors; the caller (Runtime) is notified through
  /// the ready callback when the task may run. `priority` orders ready
  /// tasks (higher first) and must be passed here rather than set after the
  /// fact: a dependency-free task fires on_ready before submit() returns.
  TaskNode* submit(KindId kind, std::function<void()> fn, const std::vector<TaskDep>& deps,
                   int priority = 0);

  /// Called by the engine when a task finishes: marks it done and returns
  /// the successors that became ready.
  std::vector<TaskNode*> complete(TaskNode* node);

  /// Ready-callback invoked (from the submitting thread) whenever a task
  /// has no unsatisfied dependencies at submission time.
  std::function<void(TaskNode*)> on_ready;

  std::size_t task_count() const { return nodes_.size(); }
  const std::vector<std::unique_ptr<TaskNode>>& nodes() const { return nodes_; }
  const std::vector<TaskKind>& kinds() const { return kinds_; }
  const TaskKind& kind_of(const TaskNode& n) const { return kinds_[n.kind]; }

 private:
  struct HandleState {
    std::vector<TaskNode*> writers;      // last writer, or the open GatherV group
    bool writers_are_gatherv = false;
    std::vector<TaskNode*> readers;      // readers since the last writer group
    std::vector<TaskNode*> gather_base;  // common predecessors of the open group
  };

  std::vector<std::unique_ptr<TaskNode>> nodes_;
  std::vector<TaskKind> kinds_;
  std::unordered_map<const Handle*, HandleState> handles_;
  std::uint64_t next_id_ = 0;
};

}  // namespace dnc::rt
