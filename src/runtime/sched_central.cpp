// SchedPolicy::Central: the original single-queue engine, upgraded from a
// plain FIFO deque to a priority-bucketed queue. One mutex guards the
// queue; workers sleep on one condition variable. Kept as the baseline the
// work-stealing scheduler is benchmarked and gated against.
#include "runtime/scheduler.hpp"

namespace dnc::rt {

namespace {

class CentralScheduler final : public Scheduler {
 public:
  CentralScheduler(TaskGraph& graph, int threads)
      : Scheduler(graph, threads, SchedPolicy::Central) {
    start();
  }

  ~CentralScheduler() override { stop_workers(); }

 protected:
  void push_ready(TaskNode* node, int /*worker*/) override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push(node);
    }
    cv_work_.notify_one();
  }

  TaskNode* acquire(int /*worker*/) override {
    std::unique_lock<std::mutex> lk(mu_);
    cv_work_.wait(lk, [&] { return stop_.load(std::memory_order_relaxed) || !queue_.empty(); });
    // Priority-FIFO drain: highest bucket, oldest first. On stop the queue
    // is drained before workers exit (matches the pre-seam engine).
    TaskNode* node = queue_.pop_oldest();
    if (node != nullptr) took();
    return node;
  }

  TaskNode* try_acquire(int /*worker*/) override {
    // Help-first path: one locked pop, never sleeps.
    std::lock_guard<std::mutex> lk(mu_);
    TaskNode* node = queue_.pop_oldest();
    if (node != nullptr) took();
    return node;
  }

  void wake_all() override {
    // Empty critical section: a worker between its predicate check and the
    // actual wait holds mu_, so taking it here orders the notify after.
    { std::lock_guard<std::mutex> lk(mu_); }
    cv_work_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_work_;
  PrioDeque queue_;
};

}  // namespace

std::unique_ptr<Scheduler> make_central_scheduler(TaskGraph& graph, int threads) {
  return std::make_unique<CentralScheduler>(graph, threads);
}

}  // namespace dnc::rt
