// DAG replay simulator.
//
// The paper's evaluation ran on a dual-socket 16-core Xeon. This container
// has a single core, so parallel wall-clock cannot be measured directly.
// What CAN be measured exactly on one core is the task graph itself: every
// node's work (duration) and every edge. Parallel speedup *shape* is a
// property of that graph -- critical path vs. total work plus bandwidth
// sharing for memory-bound kernels -- so we replay the measured DAG under
// list scheduling on P virtual workers and report the predicted makespan.
// DESIGN.md documents this substitution; EXPERIMENTS.md compares shapes.
#pragma once

#include "runtime/graph.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {

/// Machine model for bandwidth effects. The defaults mirror the paper's
/// testbed (2 sockets x 8 cores, each socket's bandwidth saturated by about
/// 4 streaming cores -- visible in the paper's Fig. 5 where the type-2 curve
/// stagnates near 4x until the second socket kicks in).
struct MachineModel {
  int sockets = 2;
  int cores_per_socket = 8;
  /// Number of concurrently running memory-bound tasks a socket can serve
  /// at full speed; beyond this, they share bandwidth proportionally.
  int bw_streams_per_socket = 4;
};

/// Ready-queue discipline of the simulated list scheduler. Priority (the
/// default) mirrors the engine: among ready tasks the highest
/// TaskNode::priority launches first, FIFO within equal priority -- on a
/// graph with all-zero priorities it is bit-for-bit identical to Fifo.
/// Fifo ignores priorities (the pre-seam engine), kept for what-if
/// comparisons of the scheduling policy itself.
enum class SimPolicy {
  Fifo,
  Priority,
};

struct SimulationResult {
  double makespan = 0.0;
  double total_work = 0.0;      ///< sum of task durations (1-thread makespan)
  double critical_path = 0.0;   ///< lower bound on any schedule
  double efficiency = 0.0;      ///< total_work / (makespan * workers)
  /// The simulated schedule as a renderable trace (virtual worker ids and
  /// simulated clock), used to reproduce the paper's execution-trace
  /// figures for a 16-core machine from a 1-core measurement.
  Trace schedule;
};

/// Replays the completed graph (durations = measured t_end - t_start) on
/// `workers` virtual cores using priority-aware list scheduling (the
/// engine's policy; see SimPolicy). Memory-bound kinds are slowed by the
/// bandwidth-sharing factor of the machine model; compute-bound kinds keep
/// their measured duration.
SimulationResult simulate_schedule(const TaskGraph& graph, int workers,
                                   const MachineModel& model = MachineModel{},
                                   SimPolicy policy = SimPolicy::Priority);

}  // namespace dnc::rt
