// Execution traces: per-task (worker, start, end) records plus rendering
// helpers. The ASCII Gantt view reproduces the structure of the paper's
// Figures 3 and 4 (per-core activity over time, coloured by kernel).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnc::rt {

struct TraceEvent {
  std::uint64_t task_id;
  int kind;
  int worker;
  double t_start;
  double t_end;
};

struct Trace {
  int workers = 0;
  std::vector<std::string> kind_names;
  std::vector<TraceEvent> events;

  double makespan() const;
  double total_busy() const;
  /// Fraction of worker-time spent executing tasks (1 = no idle time).
  double efficiency() const;

  /// Per-kind aggregate busy time, index-aligned with kind_names.
  std::vector<double> busy_by_kind() const;

  /// Renders an ASCII Gantt chart, `width` characters of time axis. Each
  /// worker is one row; each cell shows the initial of the dominant kernel
  /// in that time slice ('.' = idle).
  std::string ascii_gantt(int width = 100) const;

  /// One line per kind: name, count, total time, % of busy time.
  std::string kernel_summary() const;

  /// Chrome trace-event JSON ("chrome://tracing" / Perfetto format): one
  /// complete event per task, worker id as tid. Works for measured traces
  /// and for simulated schedules alike.
  std::string chrome_trace_json() const;
};

}  // namespace dnc::rt
