// Execution traces: per-task (worker, start, end) records plus rendering
// helpers. The ASCII Gantt view reproduces the structure of the paper's
// Figures 3 and 4 (per-core activity over time, coloured by kernel).
//
// Beyond the raw (worker, start, end) tuples a Trace carries the scheduler
// observability captured by the engine: when each task became ready (so
// ready->start waits are derivable), the sampled ready-queue depth, the
// per-worker idle time, the dependency edges of the executed DAG, and the
// optional per-task annotations (merge level / block size / panel index)
// set by the submitter. src/obs/ turns all of this into a Perfetto trace
// with flow events and counter tracks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dnc::rt {

/// Number of per-task hardware-counter slots carried on every TraceEvent.
/// What each slot means depends on the backend that sampled it (see
/// Trace::hwc_backend / hwc_slot_names): the perf backend fills
/// {cycles, instructions, llc_misses, llc_references}; the rusage fallback
/// fills {minor_faults, major_faults, vol_ctx_switches, invol_ctx_switches}.
inline constexpr int kHwcSlots = 4;

struct TraceEvent {
  std::uint64_t task_id;
  int kind;
  int worker;
  double t_start;
  double t_end;
  /// When the task entered the ready queue (same clock as t_start; 0 when
  /// the producing side predates the instrumentation, e.g. simulated
  /// schedules).
  double t_ready = 0.0;
  // Submitter annotations (-1 = unset): merge-tree level, block size of the
  // owning (sub)problem, panel index within the merge.
  int level = -1;
  long size = -1;
  long panel = -1;
  /// Scheduling priority the task ran with (higher drains first). Kept last
  /// among the positionally-initialised fields so aggregate initialisation
  /// of older code stays valid.
  int priority = 0;
  /// Hardware-counter deltas sampled around the task body (all zero when
  /// sampling was off; interpret via Trace::hwc_backend / hwc_slot_names).
  /// Self deltas for tasks that help-executed nested subtasks (see `nested`).
  std::array<std::uint64_t, kHwcSlots> hwc{};
  /// Id of the spawning parent task for nested subtasks (task-internal
  /// spawning), -1 for ordinary graph tasks. Child events carry the work a
  /// parent fanned out; their time lies inside the parent's window when the
  /// parent's own worker help-executed them.
  long long parent = -1;
  /// Seconds of directly-nested helped tasks executed by the same worker
  /// inside this event's window. Self time = (t_end - t_start) - nested;
  /// total_busy()/busy_by_kind() use self time so nothing double-counts.
  double nested = 0.0;

  bool is_child() const { return parent >= 0; }
  double self_duration() const {
    const double d = t_end - t_start - nested;
    return d > 0.0 ? d : 0.0;
  }
};

/// One sampled point of the ready-queue depth (taken on every enqueue and
/// dequeue, timestamps on the trace clock).
struct QueueSample {
  double t;
  int depth;
};

/// Per-worker scheduler counters, snapshotted into the trace when the run
/// finishes. `executed` counts tasks the worker ran; the acquisition-path
/// counters are only non-zero under the stealing scheduler.
struct WorkerSchedCounters {
  long executed = 0;       ///< tasks run by this worker
  long local_pops = 0;     ///< tasks taken from the worker's own deque
  long steals = 0;         ///< tasks stolen from another worker's deque
  long steal_attempts = 0; ///< victim deques probed (hit or miss)
  long failed_steals = 0;  ///< full victim scans that found nothing
  long placed = 0;         ///< ready tasks the submitter placed on this deque
  // Locality split of `steals` under the topology-aware victim order
  // (thief and victim pinned to cpus thief%ncpu / victim%ncpu):
  long steals_same_l3 = 0;      ///< victim shares the thief's L3 domain
  long steals_same_socket = 0;  ///< same socket, different L3
  long steals_cross_socket = 0; ///< crossed the socket interconnect
};

struct Trace {
  int workers = 0;
  std::vector<std::string> kind_names;
  /// Per-kind memory-bound classification, index-aligned with kind_names
  /// (1 = bandwidth-limited). May be empty for traces predating the flag;
  /// consumers must treat a missing entry as compute-bound. Carrying this
  /// on the trace lets the what-if replay (obs::replay_trace) apply the
  /// simulator's bandwidth model without access to the original TaskGraph.
  std::vector<char> kind_memory_bound;
  std::vector<TraceEvent> events;

  /// Seconds each worker spent without a task between its first ready wait
  /// and its last executed task. Empty for simulated schedules.
  std::vector<double> worker_idle;

  /// Ready-queue depth over time. Decimated to a bounded number of samples
  /// (uniform subsampling) on long runs; use queue_depth_peak for the exact
  /// maximum. Empty for simulated schedules.
  std::vector<QueueSample> queue_samples;

  /// Exact peak of the aggregate ready-queue depth, tracked independently
  /// of the (decimated) samples. 0 for simulated schedules.
  int queue_depth_peak = 0;

  /// Scheduling policy that produced the trace ("central" / "steal");
  /// empty for simulated schedules and traces predating the seam.
  std::string sched_policy;

  /// Per-worker scheduler counters (empty for simulated schedules).
  std::vector<WorkerSchedCounters> sched_counters;

  /// Cumulative successful-steal count over time (steal policy only);
  /// decimated like queue_samples. Drives the Perfetto steals counter track.
  std::vector<QueueSample> steal_samples;

  /// Dependency edges (predecessor id, successor id) of the executed DAG;
  /// drives Perfetto flow arrows.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;

  /// Backend that filled TraceEvent::hwc ("perf" / "rusage"); empty when
  /// hardware-counter sampling was off for the run.
  std::string hwc_backend;

  /// Human-readable names of the kHwcSlots counter slots, in slot order.
  /// Empty when sampling was off.
  std::vector<std::string> hwc_slot_names;

  /// Named scalar metadata riding with the trace (e.g. the solve-wide
  /// "gemm_flops" / "gemm_packed_bytes" totals a roofline needs). Written by
  /// the exporter, reloaded by trace_io, so analyses work on loaded traces.
  std::vector<std::pair<std::string, double>> meta_counters;

  /// Named string metadata riding with the trace (hostname, ISO-8601
  /// timestamp of the solve, ...), same lifecycle as meta_counters: the
  /// exporter tops them up from the report, trace_io reloads them, so
  /// flight-recorder and multi-machine traces stay distinguishable.
  std::vector<std::pair<std::string, std::string>> meta_strings;

  /// Looks up a meta counter by name; returns 0 when absent.
  double meta_counter(const std::string& name) const;

  /// Looks up a meta string by name; returns "" when absent.
  std::string meta_string(const std::string& name) const;

  double makespan() const;
  /// Total task execution time, never-executed events excluded.
  double total_busy() const;
  /// Fraction of worker-time spent executing tasks (1 = no idle time).
  double efficiency() const;

  /// Per-kind aggregate busy time, index-aligned with kind_names.
  std::vector<double> busy_by_kind() const;

  /// Renders an ASCII Gantt chart, `width` characters of time axis. Each
  /// worker is one row; each cell shows the initial of the dominant kernel
  /// in that time slice ('.' = idle).
  std::string ascii_gantt(int width = 100) const;

  /// One line per kind: name, count, total time, % of busy time.
  std::string kernel_summary() const;

  /// Chrome trace-event JSON ("chrome://tracing" / Perfetto format): one
  /// complete event per executed task, worker id as tid, plus
  /// process_name/thread_name metadata so viewers label the rows. Works for
  /// measured traces and for simulated schedules alike. For the full
  /// Perfetto export (flow events, counter tracks, per-event args) see
  /// obs::perfetto_trace_json.
  std::string chrome_trace_json() const;
};

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// The process_name / thread_name metadata records shared by
/// Trace::chrome_trace_json and obs::perfetto_trace_json, joined by ",\n".
/// Exactly one process_name block and one thread row per worker -- every
/// export call (including sequence-suffixed trace.2.json files) gets one
/// self-contained metadata prologue.
std::string chrome_metadata_json(int workers);

}  // namespace dnc::rt
