#include "runtime/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnc::rt {

const char* access_name(Access a) {
  switch (a) {
    case Access::In: return "IN";
    case Access::Out: return "OUT";
    case Access::InOut: return "INOUT";
    case Access::GatherV: return "GATHERV";
  }
  return "?";
}

TaskGraph::TaskGraph() {
  // Kind 0 is the generic task.
  kinds_.push_back({"task", false, "#808080"});
}

TaskGraph::~TaskGraph() = default;

KindId TaskGraph::register_kind(const std::string& name, bool memory_bound,
                                const std::string& color) {
  kinds_.push_back({name, memory_bound, color});
  return static_cast<KindId>(kinds_.size() - 1);
}

TaskNode* TaskGraph::submit(KindId kind, std::function<void()> fn,
                            const std::vector<TaskDep>& deps, int priority) {
  DNC_REQUIRE(kind >= 0 && kind < static_cast<KindId>(kinds_.size()), "unknown task kind");
  nodes_.push_back(std::make_unique<TaskNode>());
  TaskNode* node = nodes_.back().get();
  node->id = next_id_++;
  node->kind = kind;
  node->priority = priority;
  node->fn = std::move(fn);
  // Self-guard keeps the task from becoming ready while predecessors are
  // still being wired.
  node->unsatisfied.store(1, std::memory_order_relaxed);

  // Gather the predecessor set implied by each handle access.
  std::vector<TaskNode*> preds;
  for (const TaskDep& dep : deps) {
    DNC_REQUIRE(dep.handle != nullptr, "null handle in task dependency");
    HandleState& st = handles_[dep.handle];
    switch (dep.mode) {
      case Access::In:
        preds.insert(preds.end(), st.writers.begin(), st.writers.end());
        st.readers.push_back(node);
        break;
      case Access::Out:
      case Access::InOut:
        preds.insert(preds.end(), st.writers.begin(), st.writers.end());
        preds.insert(preds.end(), st.readers.begin(), st.readers.end());
        st.writers.assign(1, node);
        st.writers_are_gatherv = false;
        st.readers.clear();
        st.gather_base.clear();
        break;
      case Access::GatherV:
        if (st.writers_are_gatherv && st.readers.empty()) {
          // Join the open commuting-writer group: same predecessors as the
          // group, no ordering against other members.
          preds.insert(preds.end(), st.gather_base.begin(), st.gather_base.end());
          st.writers.push_back(node);
        } else {
          // Open a new group ordered after the previous writers + readers.
          std::vector<TaskNode*> base;
          base.insert(base.end(), st.writers.begin(), st.writers.end());
          base.insert(base.end(), st.readers.begin(), st.readers.end());
          preds.insert(preds.end(), base.begin(), base.end());
          st.gather_base = std::move(base);
          st.writers.assign(1, node);
          st.writers_are_gatherv = true;
          st.readers.clear();
        }
        break;
    }
  }
  // A task accessing several handles can pick up duplicate predecessors.
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  // A task can appear in its own predecessor set when it holds multiple
  // qualifiers on one handle; self-edges are meaningless.
  preds.erase(std::remove(preds.begin(), preds.end(), node), preds.end());

  for (TaskNode* p : preds) {
    node->pred_ids.push_back(p->id);
    std::lock_guard<std::mutex> lk(p->mu);
    if (!p->done) {
      p->successors.push_back(node);
      node->unsatisfied.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Drop the self-guard; if everything already completed the task is ready.
  if (node->unsatisfied.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (on_ready) on_ready(node);
  }
  return node;
}

std::vector<TaskNode*> TaskGraph::complete(TaskNode* node) {
  std::vector<TaskNode*> succs;
  {
    std::lock_guard<std::mutex> lk(node->mu);
    node->done = true;
    succs = std::move(node->successors);
    node->successors.clear();
  }
  std::vector<TaskNode*> ready;
  for (TaskNode* s : succs) {
    if (s->unsatisfied.fetch_sub(1, std::memory_order_acq_rel) == 1) ready.push_back(s);
  }
  return ready;
}

}  // namespace dnc::rt
