#include "runtime/simulator.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace dnc::rt {

SimulationResult simulate_schedule(const TaskGraph& graph, int workers,
                                   const MachineModel& model, SimPolicy policy) {
  DNC_REQUIRE(workers >= 1, "simulate_schedule: workers >= 1");
  const auto& nodes = graph.nodes();
  const std::size_t n = nodes.size();
  SimulationResult res;
  if (n == 0) return res;

  // Index tasks by id for edge lookups.
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(nodes[i]->id, i);

  std::vector<double> dur(n);
  std::vector<int> npred(n, 0);
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<char> membound(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    dur[i] = std::max(0.0, nodes[i]->t_end - nodes[i]->t_start);
    res.total_work += dur[i];
    membound[i] = graph.kind_of(*nodes[i]).memory_bound ? 1 : 0;
    for (std::uint64_t pid : nodes[i]->pred_ids) {
      const auto it = index.find(pid);
      DNC_ASSERT(it != index.end());
      succ[it->second].push_back(i);
      ++npred[i];
    }
  }

  // Critical path by longest path over the DAG (nodes are in topological
  // order because submission order respects dependencies).
  {
    std::vector<double> dist(n, 0.0);
    double best = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist[i] += dur[i];
      best = std::max(best, dist[i]);
      for (std::size_t s : succ[i]) dist[s] = std::max(dist[s], dist[i]);
    }
    res.critical_path = best;
  }

  // Bandwidth model: when m memory-bound tasks run concurrently and the
  // machine can serve `streams` of them at full speed, each runs at
  // streams/m of nominal rate. We apply the factor at task start using the
  // instantaneous count -- a first-order model that reproduces the observed
  // stagnation of copy-dominated runs.
  const int total_streams =
      std::min(workers, model.sockets * model.bw_streams_per_socket);

  struct Running {
    double finish;
    std::size_t task;
    int worker;
  };
  struct Later {
    bool operator()(const Running& a, const Running& b) const { return a.finish > b.finish; }
  };
  std::priority_queue<Running, std::vector<Running>, Later> running;
  // Ready set: (priority desc, arrival seq asc), so SimPolicy::Priority is
  // FIFO within equal priority and degenerates to plain FIFO when every
  // priority is zero; SimPolicy::Fifo forces priority 0 for all entries.
  struct ReadyEntry {
    int prio;
    std::uint64_t seq;
    std::size_t task;
  };
  struct ReadyOrder {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.prio != b.prio) return a.prio < b.prio;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyOrder> ready;
  std::uint64_t ready_seq = 0;
  const auto push_ready = [&](std::size_t i) {
    const int prio = policy == SimPolicy::Priority ? nodes[i]->priority : 0;
    ready.push({prio, ready_seq++, i});
  };
  std::vector<int> remaining(npred.begin(), npred.end());
  for (std::size_t i = 0; i < n; ++i)
    if (remaining[i] == 0) push_ready(i);

  res.schedule.workers = workers;
  for (const TaskKind& k : graph.kinds()) {
    res.schedule.kind_names.push_back(k.name);
    res.schedule.kind_memory_bound.push_back(k.memory_bound ? 1 : 0);
  }
  std::vector<int> free_workers(workers);
  for (int w = 0; w < workers; ++w) free_workers[w] = workers - 1 - w;

  double clock = 0.0;
  int idle_workers = workers;
  int running_membound = 0;
  std::size_t completed = 0;
  while (completed < n) {
    // Launch as many ready tasks as there are idle workers.
    while (idle_workers > 0 && !ready.empty()) {
      const std::size_t t = ready.top().task;
      ready.pop();
      --idle_workers;
      double d = dur[t];
      if (membound[t]) {
        ++running_membound;
        const double factor =
            std::max(1.0, static_cast<double>(running_membound) / total_streams);
        d *= factor;
      }
      const int w = free_workers.back();
      free_workers.pop_back();
      running.push({clock + d, t, w});
      TraceEvent ev{nodes[t]->id, nodes[t]->kind, w, clock, clock + d};
      ev.priority = nodes[t]->priority;
      res.schedule.events.push_back(ev);
    }
    DNC_REQUIRE(!running.empty(), "simulate_schedule: deadlock (cyclic graph?)");
    const Running r = running.top();
    running.pop();
    clock = r.finish;
    ++idle_workers;
    free_workers.push_back(r.worker);
    if (membound[r.task]) --running_membound;
    ++completed;
    for (std::size_t s : succ[r.task]) {
      if (--remaining[s] == 0) push_ready(s);
    }
  }
  res.makespan = clock;
  res.efficiency = res.total_work / (res.makespan * workers);
  return res;
}

}  // namespace dnc::rt
