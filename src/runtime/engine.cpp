#include "runtime/engine.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"

namespace dnc::rt {

Runtime::Runtime(TaskGraph& graph, int threads) : graph_(graph) {
  DNC_REQUIRE(threads >= 1, "Runtime needs at least one worker");
  queue_samples_.reserve(256);
  idle_.assign(threads, 0.0);
  graph_.on_ready = [this](TaskNode* n) { enqueue(n); };
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
  graph_.on_ready = nullptr;
}

void Runtime::enqueue(TaskNode* node) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    node->t_ready = now_seconds();
    ready_.push_back(node);
    queue_samples_.push_back({node->t_ready, static_cast<int>(ready_.size())});
    ++inflight_;
  }
  cv_work_.notify_one();
}

void Runtime::worker_loop(int worker_id) {
  // Idle accounting: everything between "done with the previous task" (or
  // thread start) and "starting the next task" counts as idle. The marks
  // reuse the trace timestamps, so this adds no clock reads on the task
  // path.
  double idle_mark = now_seconds();
  for (;;) {
    TaskNode* node = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) {
        if (stop_) return;
        continue;
      }
      node = ready_.front();
      ready_.pop_front();
      queue_samples_.push_back({now_seconds(), static_cast<int>(ready_.size())});
    }
    node->worker = worker_id;
    node->t_start = now_seconds();
    idle_[worker_id] += node->t_start - idle_mark;
    if (node->fn) node->fn();
    node->t_end = now_seconds();
    idle_mark = node->t_end;
    const std::vector<TaskNode*> newly_ready = graph_.complete(node);
    bool became_idle;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!newly_ready.empty()) {
        const double tnow = now_seconds();
        for (TaskNode* r : newly_ready) {
          r->t_ready = tnow;
          ready_.push_back(r);
          ++inflight_;
        }
        queue_samples_.push_back({tnow, static_cast<int>(ready_.size())});
      }
      became_idle = (--inflight_ == 0);
    }
    if (!newly_ready.empty()) cv_work_.notify_all();
    if (became_idle) cv_idle_.notify_all();
  }
}

void Runtime::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return inflight_ == 0; });
}

Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter) {
  Runtime rt(graph, threads);
  submitter(graph);
  rt.wait_all();
  return rt.trace();
}

Trace Runtime::trace() const {
  Trace t;
  t.workers = threads();
  for (const auto& node : graph_.nodes()) {
    TraceEvent e{node->id,      node->kind,     node->worker,   node->t_start,
                 node->t_end,   node->t_ready,  node->obs_level, node->obs_size,
                 node->obs_panel};
    t.events.push_back(e);
    for (std::uint64_t p : node->pred_ids) t.edges.emplace_back(p, node->id);
  }
  for (const TaskKind& k : graph_.kinds()) {
    t.kind_names.push_back(k.name);
    t.kind_memory_bound.push_back(k.memory_bound ? 1 : 0);
  }
  t.worker_idle = idle_;
  {
    std::lock_guard<std::mutex> lk(mu_);
    t.queue_samples = queue_samples_;
  }
  return t;
}

}  // namespace dnc::rt
