#include "runtime/engine.hpp"

#include "runtime/scheduler.hpp"

namespace dnc::rt {

Runtime::Runtime(TaskGraph& graph, int threads, SchedPolicy policy)
    : sched_(Scheduler::make(policy, graph, threads)) {}

Runtime::~Runtime() = default;

void Runtime::wait_all() { sched_->wait_all(); }

int Runtime::threads() const { return sched_->threads(); }

SchedPolicy Runtime::policy() const { return sched_->policy(); }

Trace Runtime::trace() const { return sched_->trace(); }

Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter) {
  Runtime rt(graph, threads);
  submitter(graph);
  rt.wait_all();
  return rt.trace();
}

}  // namespace dnc::rt
