#include "runtime/engine.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"

namespace dnc::rt {

Runtime::Runtime(TaskGraph& graph, int threads) : graph_(graph) {
  DNC_REQUIRE(threads >= 1, "Runtime needs at least one worker");
  graph_.on_ready = [this](TaskNode* n) { enqueue(n); };
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

Runtime::~Runtime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
  graph_.on_ready = nullptr;
}

void Runtime::enqueue(TaskNode* node) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ready_.push_back(node);
    ++inflight_;
  }
  cv_work_.notify_one();
}

void Runtime::worker_loop(int worker_id) {
  for (;;) {
    TaskNode* node = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !ready_.empty(); });
      if (ready_.empty()) {
        if (stop_) return;
        continue;
      }
      node = ready_.front();
      ready_.pop_front();
    }
    node->worker = worker_id;
    node->t_start = now_seconds();
    if (node->fn) node->fn();
    node->t_end = now_seconds();
    const std::vector<TaskNode*> newly_ready = graph_.complete(node);
    bool became_idle;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (TaskNode* r : newly_ready) {
        ready_.push_back(r);
        ++inflight_;
      }
      became_idle = (--inflight_ == 0);
    }
    if (!newly_ready.empty()) cv_work_.notify_all();
    if (became_idle) cv_idle_.notify_all();
  }
}

void Runtime::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return inflight_ == 0; });
}

Trace run_taskflow(TaskGraph& graph, int threads,
                   const std::function<void(TaskGraph&)>& submitter) {
  Runtime rt(graph, threads);
  submitter(graph);
  rt.wait_all();
  return rt.trace();
}

Trace Runtime::trace() const {
  Trace t;
  t.workers = threads();
  for (const auto& node : graph_.nodes()) {
    t.events.push_back(TraceEvent{node->id, node->kind, node->worker, node->t_start,
                                  node->t_end});
  }
  for (const TaskKind& k : graph_.kinds()) t.kind_names.push_back(k.name);
  return t;
}

}  // namespace dnc::rt
