#include "mrrr/ldl.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/machine.hpp"
#include "obs/counters.hpp"

namespace dnc::mrrr {

Representation ldl_factor(index_t n, const double* d, const double* e, double sigma) {
  DNC_REQUIRE(n >= 1, "ldl_factor: n >= 1");
  Representation rep;
  rep.sigma = sigma;
  rep.d.resize(n);
  rep.l.resize(n > 0 ? n - 1 : 0);
  const double tiny = lamch_safmin();
  double di = d[0] - sigma;
  for (index_t i = 0; i < n - 1; ++i) {
    if (di == 0.0) di = tiny;  // pivot perturbation (dlarrf-style eps bump)
    rep.d[i] = di;
    rep.l[i] = e[i] / di;
    di = (d[i + 1] - sigma) - rep.l[i] * e[i];
  }
  rep.d[n - 1] = di;
  return rep;
}

bool dstqds(const Representation& in, double tau, Representation& out) {
  const index_t n = in.n();
  out.sigma = in.sigma + tau;
  out.d.resize(n);
  out.l.resize(n > 0 ? n - 1 : 0);
  bool ok = true;
  double s = -tau;
  for (index_t i = 0; i < n - 1; ++i) {
    const double dplus = in.d[i] + s;
    if (dplus == 0.0 || !std::isfinite(dplus)) ok = false;
    out.d[i] = dplus;
    const double ld = in.l[i] * in.d[i];
    out.l[i] = ld / dplus;
    s = out.l[i] * in.l[i] * s - tau;
    if (!std::isfinite(s)) ok = false;
  }
  out.d[n - 1] = in.d[n - 1] + s;
  return ok && std::isfinite(out.d[n - 1]);
}

index_t sturm_count_ldl(const Representation& rep, double x) {
  // Differential stationary transform of L D L^T - x I, counting negative
  // pivots. The recurrence is the dstqds body; NaN-safe handling follows
  // dlaneg: a zero pivot is nudged rather than propagated.
  const index_t n = rep.n();
  index_t count = 0;
  double s = -x;
  const double tiny = lamch_safmin();
  for (index_t i = 0; i < n - 1; ++i) {
    double dplus = rep.d[i] + s;
    if (dplus < 0.0) ++count;
    if (dplus == 0.0) dplus = -tiny;
    const double t = rep.l[i] * rep.d[i] / dplus;
    s = t * rep.l[i] * s - x;
    if (!std::isfinite(s)) {
      // Breakdown: restart the recurrence conservatively (dlaneg's
      // "blueprint" fallback uses the plain tridiagonal recurrence).
      s = -x;
    }
  }
  if (rep.d[n - 1] + s < 0.0) ++count;
  return count;
}

double bisect_ldl(const Representation& rep, index_t k, double lo, double hi, double tol) {
  obs::bump(obs::kBisectLdlCalls);
  std::uint64_t halvings = 0;
  while (hi - lo > tol + lamch_eps() * (std::fabs(lo) + std::fabs(hi))) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    ++halvings;
    if (sturm_count_ldl(rep, mid) > k)
      hi = mid;
    else
      lo = mid;
  }
  obs::bump(obs::kBisectLdlSteps, halvings);
  return 0.5 * (lo + hi);
}

}  // namespace dnc::mrrr
