#include "mrrr/ldl.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "obs/counters.hpp"

namespace dnc::mrrr {

template <typename Real>
RepresentationT<Real> ldl_factor(index_t n, const Real* d, const Real* e, Real sigma) {
  DNC_REQUIRE(n >= 1, "ldl_factor: n >= 1");
  RepresentationT<Real> rep;
  rep.sigma = sigma;
  rep.d.resize(n);
  rep.l.resize(n > 0 ? n - 1 : 0);
  const Real tiny = real_traits<Real>::safmin();
  Real di = d[0] - sigma;
  for (index_t i = 0; i < n - 1; ++i) {
    if (di == Real(0)) di = tiny;  // pivot perturbation (dlarrf-style eps bump)
    rep.d[i] = di;
    rep.l[i] = e[i] / di;
    di = (d[i + 1] - sigma) - rep.l[i] * e[i];
  }
  rep.d[n - 1] = di;
  return rep;
}

template <typename Real>
bool dstqds(const RepresentationT<Real>& in, Real tau, RepresentationT<Real>& out) {
  const index_t n = in.n();
  out.sigma = in.sigma + tau;
  out.d.resize(n);
  out.l.resize(n > 0 ? n - 1 : 0);
  bool ok = true;
  Real s = -tau;
  for (index_t i = 0; i < n - 1; ++i) {
    const Real dplus = in.d[i] + s;
    if (dplus == Real(0) || !std::isfinite(dplus)) ok = false;
    out.d[i] = dplus;
    const Real ld = in.l[i] * in.d[i];
    out.l[i] = ld / dplus;
    s = out.l[i] * in.l[i] * s - tau;
    if (!std::isfinite(s)) ok = false;
  }
  out.d[n - 1] = in.d[n - 1] + s;
  return ok && std::isfinite(out.d[n - 1]);
}

template <typename Real>
index_t sturm_count_ldl(const RepresentationT<Real>& rep, Real x) {
  // Differential stationary transform of L D L^T - x I, counting negative
  // pivots. The recurrence is the dstqds body; NaN-safe handling follows
  // dlaneg: a zero pivot is nudged rather than propagated.
  const index_t n = rep.n();
  index_t count = 0;
  Real s = -x;
  const Real tiny = real_traits<Real>::safmin();
  for (index_t i = 0; i < n - 1; ++i) {
    Real dplus = rep.d[i] + s;
    if (dplus < Real(0)) ++count;
    if (dplus == Real(0)) dplus = -tiny;
    const Real t = rep.l[i] * rep.d[i] / dplus;
    s = t * rep.l[i] * s - x;
    if (!std::isfinite(s)) {
      // Breakdown: restart the recurrence conservatively (dlaneg's
      // "blueprint" fallback uses the plain tridiagonal recurrence).
      s = -x;
    }
  }
  if (rep.d[n - 1] + s < Real(0)) ++count;
  return count;
}

template <typename Real>
Real bisect_ldl(const RepresentationT<Real>& rep, index_t k, Real lo, Real hi, Real tol) {
  obs::bump(obs::kBisectLdlCalls);
  std::uint64_t halvings = 0;
  const Real eps = real_traits<Real>::eps();
  while (hi - lo > tol + eps * (std::fabs(lo) + std::fabs(hi))) {
    const Real mid = Real(0.5) * (lo + hi);
    if (mid == lo || mid == hi) break;
    ++halvings;
    if (sturm_count_ldl(rep, mid) > k)
      hi = mid;
    else
      lo = mid;
  }
  obs::bump(obs::kBisectLdlSteps, halvings);
  return Real(0.5) * (lo + hi);
}

#define DNC_INSTANTIATE_LDL(Real)                                                             \
  template RepresentationT<Real> ldl_factor<Real>(index_t, const Real*, const Real*, Real);   \
  template bool dstqds<Real>(const RepresentationT<Real>&, Real, RepresentationT<Real>&);     \
  template index_t sturm_count_ldl<Real>(const RepresentationT<Real>&, Real);                 \
  template Real bisect_ldl<Real>(const RepresentationT<Real>&, index_t, Real, Real, Real);

DNC_INSTANTIATE_LDL(double)
DNC_INSTANTIATE_LDL(float)

#undef DNC_INSTANTIATE_LDL

}  // namespace dnc::mrrr
