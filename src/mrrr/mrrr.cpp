#include "mrrr/mrrr.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <type_traits>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "lapack/bisect.hpp"
#include "lapack/refine.hpp"
#include "lapack/stein.hpp"
#include "mrrr/getvec.hpp"
#include "mrrr/ldl.hpp"
#include "obs/health.hpp"
#include "obs/telemetry.hpp"
#include "runtime/engine.hpp"

namespace dnc::mrrr {
namespace {

struct MrrrKinds {
  rt::KindId bisect, refine, getvec, cluster, setup, sort;
  explicit MrrrKinds(rt::TaskGraph& g) {
    setup = g.register_kind("RootRep", false, "#aaaaaa");
    bisect = g.register_kind("Bisection", false, "#1f77b4");
    refine = g.register_kind("RefineEig", false, "#17becf");
    getvec = g.register_kind("Getvec", false, "#9467bd");
    cluster = g.register_kind("ClusterShift", false, "#d62728");
    sort = g.register_kind("SortEigenvectors", true, "#8c564b");
  }
};

/// A unit of representation-tree work: a contiguous index range [k0, k1)
/// (block-local) whose eigenvalues share the representation `rep` and are
/// currently approximated by lam_local (relative to rep->sigma).
template <typename Real>
struct WorkItemT {
  std::shared_ptr<RepresentationT<Real>> rep;
  index_t k0, k1;
  std::vector<Real> lam_local;  ///< size k1-k0
  int depth = 0;
};

template <typename Real>
void mrrr_solve_impl(index_t n, const Real* d, const Real* e, std::vector<Real>& lam,
                     MatrixT<Real>& v, const Options& opt, Stats* stats,
                     const std::vector<int>& sim) {
  using WorkItem = WorkItemT<Real>;
  Stopwatch sw;
  obs::SolveScope scope("mrrr");
  DNC_REQUIRE(n >= 0, "mrrr_solve: n >= 0");
  if (stats) *stats = Stats{};
  lam.assign(n, Real(0));
  v.resize(n, n);
  if (n == 0) return;
  v.fill(Real(0));
  if (n == 1) {
    lam[0] = d[0];
    v(0, 0) = Real(1);
    if (stats) {
      stats->n = 1;
      stats->seconds = sw.elapsed();
    }
    return;
  }

  const Real eps = real_traits<Real>::eps();
  const Real safmin = real_traits<Real>::safmin();

  // dlarre's unconditional random ulp perturbation of the working copy of
  // T: absolutely degenerate ("glued") eigenvalues split by O(eps ||T||),
  // after which close-by shifts can create large relative gaps. Without
  // this no shift strategy can separate a zero-width cluster.
  std::vector<Real> dw(d, d + n), ew(e, e + n - 1);
  {
    Rng prng(0x135735ULL);
    for (auto& x : dw) x *= Real(1) + Real(4) * eps * Real(prng.uniform_sym());
    for (auto& x : ew) x *= Real(1) + Real(4) * eps * Real(prng.uniform_sym());
  }
  d = dw.data();
  e = ew.data();

  // ---- split into unreduced blocks (dlarra criterion) ----
  std::vector<index_t> block_start{0};
  for (index_t i = 0; i + 1 < n; ++i) {
    if (std::fabs(e[i]) <= eps * std::sqrt(std::fabs(d[i])) * std::sqrt(std::fabs(d[i + 1])))
      block_start.push_back(i + 1);
  }
  block_start.push_back(n);

  rt::TaskGraph graph;
  const MrrrKinds K(graph);
  rt::Runtime runtime(graph, opt.threads, opt.sched);

  std::mutex next_mu;
  std::vector<std::shared_ptr<rt::Handle>> block_handles;
  std::vector<WorkItem> items;
  index_t cluster_count = 0;
  int depth_used = 0;

  // ---- per block: root representation + eigenvalue bootstrap ----
  for (std::size_t b = 0; b + 1 < block_start.size(); ++b) {
    const index_t off = block_start[b];
    const index_t bn = block_start[b + 1] - off;
    if (bn == 1) {
      lam[off] = d[off];
      v(off, off) = Real(1);
      continue;
    }
    const Real* bd = d + off;
    const Real* be = e + off;
    Real glo, ghi;
    lapack::gershgorin_bounds(bn, bd, be, glo, ghi);
    const Real spread = std::max(ghi - glo, safmin);
    // Root shift just below the spectrum keeps D positive (definite
    // factorization => relatively robust).
    const Real sigma0 = glo - Real(0.03125) * spread;
    auto root = std::make_shared<RepresentationT<Real>>(ldl_factor(bn, bd, be, sigma0));
    // The crude pass only needs to land inside the refinement bracket; the
    // LDL bisection below restores full relative accuracy. A loose crude
    // tolerance halves the total Sturm-count work.
    const Real crude_tol = std::max(Real(1.0e-8) * spread,
                                    Real(4) * eps * std::max(std::fabs(glo), std::fabs(ghi)));

    // Crude eigenvalues for the whole block in one task (the recursive
    // interval bisection shares Sturm counts across eigenvalues), then
    // grain-sized refinement tasks against the root representation.
    auto crude = std::make_shared<std::vector<Real>>();
    auto hblock = std::make_shared<rt::Handle>("block");
    block_handles.push_back(hblock);
    graph.submit(K.bisect,
                 [bd, be, bn, crude, crude_tol] {
                   *crude = lapack::bisect_all(bn, bd, be, Real(0), crude_tol);
                 },
                 {{hblock.get(), rt::Access::InOut}});
    const index_t nchunks = (bn + opt.grain - 1) / opt.grain;
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t k0 = c * opt.grain;
      const index_t k1 = std::min(k0 + opt.grain, bn);
      graph.submit(K.refine,
                   [&, off, k0, k1, root, crude, crude_tol, spread, eps] {
                     WorkItem item;
                     item.rep = root;
                     item.k0 = k0;
                     item.k1 = k1;
                     item.lam_local.resize(k1 - k0);
                     for (index_t k = k0; k < k1; ++k) {
                       const Real w = (*crude)[k];
                       // Refine against the root representation for high
                       // relative accuracy w.r.t. the shifted origin.
                       const Real lo = (w - root->sigma) - Real(4) * crude_tol - eps * spread;
                       const Real hi = (w - root->sigma) + Real(4) * crude_tol + eps * spread;
                       item.lam_local[k - k0] = bisect_ldl(*item.rep, k, lo, hi, Real(0));
                     }
                     std::lock_guard<std::mutex> lk(next_mu);
                     // Block offset is folded in by shifting indices here.
                     item.k0 += off;
                     item.k1 += off;
                     items.push_back(std::move(item));
                   },
                   {{hblock.get(), rt::Access::In}});
    }
  }
  runtime.wait_all();

  // Re-split bootstrap items so each WorkItem's indices are block-local
  // again (store block offset alongside). To keep the structure simple we
  // record the owning block for every global index.
  std::vector<index_t> block_of(n), block_off(n);
  for (std::size_t b = 0; b + 1 < block_start.size(); ++b)
    for (index_t i = block_start[b]; i < block_start[b + 1]; ++i) {
      block_of[i] = static_cast<index_t>(b);
      block_off[i] = block_start[b];
    }

  // ---- representation tree, level by level ----
  // Merge bootstrap chunks that belong to one block into a single sorted
  // item so cluster detection sees the whole block.
  {
    std::vector<WorkItem> merged;
    std::sort(items.begin(), items.end(),
              [](const WorkItem& a, const WorkItem& b) { return a.k0 < b.k0; });
    for (auto& it : items) {
      if (!merged.empty() && merged.back().rep == it.rep && merged.back().k1 == it.k0) {
        merged.back().lam_local.insert(merged.back().lam_local.end(), it.lam_local.begin(),
                                       it.lam_local.end());
        merged.back().k1 = it.k1;
      } else {
        merged.push_back(std::move(it));
      }
    }
    items = std::move(merged);
  }

  std::vector<WorkItem> current = std::move(items);
  while (!current.empty()) {
    std::vector<WorkItem> next;
    for (WorkItem& item : current) {
      depth_used = std::max(depth_used, item.depth);
      // Partition the item's eigenvalues into singletons and clusters by
      // relative gap with respect to the representation's origin.
      const index_t cnt = item.k1 - item.k0;
      index_t s = 0;
      while (s < cnt) {
        index_t t = s;
        while (t + 1 < cnt) {
          const Real gap = item.lam_local[t + 1] - item.lam_local[t];
          const Real scale =
              std::max(std::fabs(item.lam_local[t]), std::fabs(item.lam_local[t + 1]));
          if (gap > Real(opt.gaptol) * std::max(scale, safmin)) break;
          ++t;
        }
        const index_t g0 = item.k0 + s;          // global index of group start
        const index_t gcnt = t - s + 1;          // group size
        auto rep = item.rep;
        std::vector<Real> grp(item.lam_local.begin() + s, item.lam_local.begin() + s + gcnt);
        const index_t boff = block_off[g0];
        if (gcnt == 1 || item.depth >= opt.max_depth) {
          // Singletons get the O(n) twisted-factorization vector. A group
          // that is still clustered at max depth cannot be resolved by
          // representations at all (numerically degenerate eigenvalues);
          // for those we fall back to dstein-style inverse iteration with
          // reorthogonalisation inside the group -- the classical robust
          // treatment (see DESIGN.md).
          const bool degenerate_group = grp.size() > 1;
          graph.submit(
              K.getvec,
              [&, rep, g0, grp, boff, degenerate_group] {
                const index_t bn = rep->n();
                std::vector<Real> z(bn);
                if (degenerate_group) {
                  Rng rng(0x9d5ULL ^ static_cast<std::uint64_t>(g0));
                  for (std::size_t j = 0; j < grp.size(); ++j) {
                    lam[g0 + j] = rep->sigma + grp[j];
                    lapack::stein_vector(bn, d + boff, e + boff, lam[g0 + j],
                                 v.data() + boff + g0 * v.ld(), v.ld(),
                                 static_cast<index_t>(j), z.data(), rng);
                    blas::copy(bn, z.data(), v.data() + boff + (g0 + j) * v.ld());
                  }
                  return;
                }
                for (std::size_t j = 0; j < grp.size(); ++j) {
                  // grp values are already refined to full relative accuracy
                  // against this representation.
                  Real w = grp[j];
                  auto r = twisted_eigenvector(*rep, w, z.data());
                  // One Rayleigh correction step sharpens the eigenvalue.
                  const Real corr = rayleigh_correction(r);
                  if (std::isfinite(corr) && std::fabs(corr) < std::fabs(w) * Real(1e-2)) {
                    auto r2 = twisted_eigenvector(*rep, w + corr, z.data());
                    if (r2.resid < r.resid) {
                      r = r2;
                      w += corr;
                    } else {
                      r = twisted_eigenvector(*rep, w, z.data());
                    }
                  }
                  lam[g0 + j] = rep->sigma + w;
                  blas::copy(bn, z.data(), v.data() + boff + (g0 + j) * v.ld());
                }
              },
              {}, 2 * std::min(item.depth, 30));
        } else {
          // Cluster: shift to a new representation near the cluster and
          // refine the members against it.
          graph.submit(
              K.cluster,
              [&, rep, g0, grp, boff, eps, safmin, depth = item.depth] {

                const Real width = grp.back() - grp.front();
                const Real base = std::max(std::fabs(grp.front()), std::fabs(grp.back()));
                // Candidate shifts at either side of the cluster with a
                // dlarrf-style element-growth acceptance test: a shift whose
                // differential transform blows the pivots up does NOT yield
                // a relatively robust representation and must be rejected,
                // otherwise the refined cluster eigenvalues are garbage.
                const Real delta =
                    std::max(width, Real(4) * eps * std::max(base, safmin));
                Real dmax_parent = 0;
                for (Real x : rep->d) dmax_parent = std::max(dmax_parent, std::fabs(x));
                const Real growth_limit = Real(64) * std::max(dmax_parent, base);
                RepresentationT<Real> child;
                bool ok = false;
                for (double mult : {1.0, 4.0, 16.0, 0.25, 64.0}) {
                  for (int side = 0; side < 2 && !ok; ++side) {
                    const Real tau = side == 0 ? grp.front() - Real(mult) * delta
                                               : grp.back() + Real(mult) * delta;
                    RepresentationT<Real> cand;
                    if (!dstqds(*rep, tau, cand)) continue;
                    Real growth = 0;
                    for (Real x : cand.d) growth = std::max(growth, std::fabs(x));
                    if (growth > growth_limit) continue;
                    child = std::move(cand);
                    ok = true;
                  }
                  if (ok) break;
                }
                if (ok) {
                  // dlarrf's trick for glued clusters: perturb the child
                  // representation by a few random ulps. Exactly degenerate
                  // eigenvalues (zero-width clusters) can never be separated
                  // by shifting alone; the perturbation splits them by
                  // O(eps) so deeper levels resolve the members.
                  Rng prng(0x5eedULL ^ (static_cast<std::uint64_t>(g0) << 20) ^
                           static_cast<std::uint64_t>(depth));
                  for (auto& x : child.d)
                    x *= Real(1) + Real(4) * eps * Real(prng.uniform_sym());
                  for (auto& x : child.l)
                    x *= Real(1) + Real(4) * eps * Real(prng.uniform_sym());
                }
                WorkItem childitem;
                childitem.k0 = g0;
                childitem.k1 = g0 + static_cast<index_t>(grp.size());
                childitem.depth = depth + 1;
                if (ok) {
                  auto childrep = std::make_shared<RepresentationT<Real>>(std::move(child));
                  childitem.rep = childrep;
                  childitem.lam_local.resize(grp.size());
                  const Real tau = childrep->sigma - rep->sigma;
                  for (std::size_t j = 0; j < grp.size(); ++j) {
                    const index_t klocal = g0 + static_cast<index_t>(j) - boff;
                    const Real guess = grp[j] - tau;
                    const Real pad = width + delta * Real(16) + safmin;
                    childitem.lam_local[j] =
                        bisect_ldl(*childrep, klocal, guess - pad, guess + pad, Real(0));
                  }
                } else {
                  // Could not build a child representation: fall back to
                  // treating members as singletons of the parent.
                  childitem.rep = rep;
                  childitem.lam_local = grp;
                  childitem.depth = opt.max_depth;  // forces singleton path
                }
                std::lock_guard<std::mutex> lk(next_mu);
                next.push_back(std::move(childitem));
              },
              // Clusters gate the next representation level, so they
              // outrank same-depth singleton extraction.
              {}, 2 * std::min(item.depth, 30) + 1);
          ++cluster_count;
        }
        s = t + 1;
      }
    }
    runtime.wait_all();
    current = std::move(next);
  }

  // ---- orthogonality safety net ----
  // Pure MR3 relies on every cluster being resolved by shifts; representation
  // breakdowns or pathological gluings can leave near-parallel vectors in a
  // numerically degenerate group. A single MGS sweep over runs of
  // nearly-equal eigenvalues (triggered only when an overlap is actually
  // observed) bounds the orthogonality without disturbing resolved pairs.
  // This is a robustness deviation from MR3-SMP, recorded in DESIGN.md.
  graph.submit(
      K.getvec,
      [&, n, eps, safmin] {
        std::vector<index_t> order(n);
        std::iota(order.begin(), order.end(), index_t{0});
        std::sort(order.begin(), order.end(),
                  [&](index_t a, index_t b) { return lam[a] < lam[b]; });
        Real lmax = 0;
        for (Real x : lam) lmax = std::max(lmax, std::fabs(x));
        const Real close = Real(64) * eps * std::max(lmax, safmin);
        // The dot-product noise floor of unit vectors scales with eps, so
        // the overlap trigger must too (1e-8 would fire on every fp32 pair).
        const Real overlap_tol = std::is_same_v<Real, float> ? Real(1e-4) : Real(1e-8);
        index_t s = 0;
        while (s < n) {
          index_t t = s;
          while (t + 1 < n && lam[order[t + 1]] - lam[order[t]] <= close) ++t;
          if (t > s) {
            bool overlap = false;
            for (index_t a = s; a <= t && !overlap; ++a)
              for (index_t b = a + 1; b <= t && !overlap; ++b)
                if (std::fabs(blas::dot(n, v.data() + order[a] * v.ld(),
                                        v.data() + order[b] * v.ld())) > overlap_tol)
                  overlap = true;
            if (overlap) {
              // Recompute the whole run by inverse iteration with
              // reorthogonalisation (copying into a contiguous panel so the
              // prev-columns stride is uniform).
              MatrixT<Real> panel(n, t - s + 1);
              Rng rng(0xfa11ULL ^ static_cast<std::uint64_t>(s));
              for (index_t a = s; a <= t; ++a) {
                lapack::stein_vector(n, d, e, lam[order[a]], panel.data(), panel.ld(), a - s,
                             panel.data() + (a - s) * panel.ld(), rng);
              }
              for (index_t a = s; a <= t; ++a)
                blas::copy(n, panel.data() + (a - s) * panel.ld(),
                           v.data() + order[a] * v.ld());
            }
          }
          s = t + 1;
        }
      },
      {});
  runtime.wait_all();

  // ---- global ascending sort of the eigenpairs ----
  graph.submit(K.sort,
               [&, n] {
                 std::vector<index_t> order(n);
                 std::iota(order.begin(), order.end(), index_t{0});
                 std::sort(order.begin(), order.end(),
                           [&](index_t a, index_t b) { return lam[a] < lam[b]; });
                 MatrixT<Real> tmp(n, n);
                 std::vector<Real> ltmp(n);
                 for (index_t r = 0; r < n; ++r) {
                   ltmp[r] = lam[order[r]];
                   blas::copy(n, v.data() + order[r] * v.ld(), tmp.data() + r * tmp.ld());
                 }
                 lam.assign(ltmp.begin(), ltmp.end());
                 blas::lacpy(n, n, tmp.data(), tmp.ld(), v.data(), v.ld());
               },
               {});
  runtime.wait_all();

  const double seconds = sw.elapsed();
  rt::Trace trace;
  const rt::Trace* tr = nullptr;
  const bool want_export = obs::trace_export_requested() || obs::report_export_requested();
  if (stats || want_export) {
    trace = runtime.trace();
    tr = &trace;
  }
  if (stats) {
    stats->n = n;
    stats->blocks = static_cast<index_t>(block_start.size()) - 1;
    stats->clusters = cluster_count;
    stats->depth_used = depth_used;
    stats->trace = trace;
    stats->seconds = seconds;
    for (int w : sim) stats->simulated.push_back(rt::simulate_schedule(graph, w));
  }
  if (stats || want_export) {
    obs::SolveReport local;
    obs::SolveReport& rep = stats ? stats->report : local;
    scope.finish(rep, n, opt.threads, seconds, tr);
    rep.precision = precision_name(opt.precision);
    // Workspace telemetry: the final sort task's n x n scratch matrix plus
    // its n-vector of reordered eigenvalues; the n x n eigenvector output;
    // the per-solve eigenvalue/work arrays (lam + the per-block d/l copies
    // are O(n) and folded into context_bytes).
    const std::uint64_t nn = static_cast<std::uint64_t>(n);
    rep.memory.workspace_bytes = (nn * nn + nn) * sizeof(Real);
    rep.memory.output_bytes = nn * nn * sizeof(Real);
    rep.memory.context_bytes = 3u * nn * sizeof(Real);
    if (want_export) obs::export_solve_artifacts(rep, tr);
  }
}

}  // namespace

void mrrr_solve(index_t n, const double* d, const double* e, std::vector<double>& lam,
                Matrix& v, const Options& opt, Stats* stats, const std::vector<int>& sim) {
  // Always-on telemetry (DNC_METRICS / DNC_FLIGHT): the report must exist
  // for the epilogue to record it, so substitute a local Stats when the
  // caller passed none. mrrr_solve keeps (d, e) intact, so the health probe
  // needs no snapshot -- it reads the caller's buffers after the solve.
  const bool telemetry = obs::solve_telemetry_wanted() && n > 0;
  Stats local;
  Stats* st = stats ? stats : (telemetry ? &local : nullptr);
  if (opt.precision == Precision::F64 || n <= 1) {
    mrrr_solve_impl<double>(n, d, e, lam, v, opt, st, sim);
  } else {
    // fp32 fast path: narrow the tridiagonal, run the whole representation
    // tree in single precision, widen the eigenpairs back. Unlike the D&C
    // drivers, mrrr_solve does not destroy its inputs, so the caller's (d, e)
    // double the role of the fp64 reference matrix for refinement.
    std::vector<float> d32(d, d + n), e32;
    if (n > 1) e32.assign(e, e + n - 1);
    std::vector<float> lam32;
    MatrixT<float> v32;
    mrrr_solve_impl<float>(n, d32.data(), e32.data(), lam32, v32, opt, st, sim);
    lam.assign(lam32.begin(), lam32.end());
    v.resize(v32.rows(), v32.cols());
    for (index_t j = 0; j < v32.cols(); ++j) {
      const float* src = v32.data() + j * v32.ld();
      double* dst = v.data() + j * v.ld();
      for (index_t i = 0; i < v32.rows(); ++i) dst[i] = static_cast<double>(src[i]);
    }
    if (opt.precision == Precision::F32RefineF64 && n > 0) {
      const lapack::RefineReport rr =
          lapack::refine_eigenpairs(n, d, e, lam.data(), v.data(), v.ld(), v.cols());
      if (st) st->refine = rr;
    }
  }
  if (telemetry && st && !lam.empty()) {
    obs::HealthProbe probe;
    probe.arm(n, d, e);
    st->report.health =
        probe.evaluate(lam.data(), v.data(), v.ld(), v.cols());
    st->report.has_health = st->report.health.sampled_columns > 0;
    obs::record_solve_telemetry(st->report, &st->trace);
  }
}

}  // namespace dnc::mrrr
