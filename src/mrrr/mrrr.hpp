// MRRR (Multiple Relatively Robust Representations) symmetric tridiagonal
// eigensolver, in the task-parallel style of MR3-SMP (Petschow &
// Bientinesi) -- the comparator of the paper's Figures 8-10.
//
// Pipeline: split into unreduced blocks -> per block, a root LDL^T
// representation just outside the spectrum -> eigenvalues by Sturm
// bisection refined against the representation -> representation tree:
// singletons get a twisted-factorization eigenvector, clusters get a
// shifted child representation and recurse. Independent (sub)tasks are
// executed by the same task runtime as the D&C solver, so traces and
// simulated parallel makespans are directly comparable.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "common/precision.hpp"
#include "lapack/refine.hpp"
#include "matgen/tridiag.hpp"
#include "obs/report.hpp"
#include "runtime/sched.hpp"
#include "runtime/simulator.hpp"
#include "runtime/trace.hpp"

namespace dnc::mrrr {

struct Options {
  int threads = 4;
  /// Runtime scheduling policy (work-stealing by default; DNC_SCHED
  /// overrides the default at construction).
  rt::SchedPolicy sched = rt::default_sched_policy();
  /// Working precision of the solve (DNC_PREC overrides the default).
  /// F32 runs the whole representation tree in fp32; F32RefineF64 follows
  /// the fp32 solve with fp64 Rayleigh-quotient refinement of the
  /// eigenpairs (see lapack/refine.hpp).
  Precision precision = default_precision();
  /// Relative gap below which neighbouring eigenvalues form a cluster.
  double gaptol = 1.0e-3;
  /// Maximum representation-tree depth; clusters still unresolved at this
  /// depth are treated as singletons (the usual MRRR accuracy trade-off).
  int max_depth = 8;
  /// Eigenvalue indices per bisection/getvec task (granularity knob,
  /// MR3-SMP's task size).
  index_t grain = 32;
};

struct Stats {
  index_t n = 0;
  index_t blocks = 0;          ///< unreduced blocks
  index_t clusters = 0;        ///< cluster nodes in the representation tree
  int depth_used = 0;          ///< deepest representation level reached
  double seconds = 0.0;
  rt::Trace trace;
  std::vector<rt::SimulationResult> simulated;
  /// Observability report (no merge records -- MRRR has no merge tree, but
  /// the sturm/bisect-ldl counters and scheduler metrics apply). Exported
  /// to $DNC_REPORT / $DNC_TRACE when those are set.
  obs::SolveReport report;
  /// Mixed-precision refinement telemetry (Precision::F32RefineF64 only:
  /// checked == 0 under the pure-fp64 and pure-fp32 precisions).
  lapack::RefineReport refine;
};

/// Computes all eigenpairs of the tridiagonal (d, e): lam ascending, v
/// (n x n) the eigenvectors. Inputs are not modified.
void mrrr_solve(index_t n, const double* d, const double* e, std::vector<double>& lam,
                Matrix& v, const Options& opt = {}, Stats* stats = nullptr,
                const std::vector<int>& simulate_workers = {});

}  // namespace dnc::mrrr
