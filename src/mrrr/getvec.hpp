// Eigenvector of an LDL^T representation by twisted factorization (dlar1v
// equivalent): run the differential stationary transform top-down and the
// differential progressive transform bottom-up, twist at the index with the
// smallest |gamma|, and solve for the vector in O(n).
#pragma once

#include "common/rng.hpp"
#include "mrrr/ldl.hpp"

namespace dnc::mrrr {

template <typename Real>
struct GetvecResultT {
  index_t twist = 0;   ///< chosen twist index
  Real gamma = 0;      ///< pivot at the twist (residual scale)
  Real znorm2 = 0;     ///< squared norm of the unnormalised vector
  Real resid = 0;      ///< |gamma| / ||z||: backward error estimate
};

using GetvecResult = GetvecResultT<double>;

/// Computes the eigenvector of rep for the eigenvalue lambda (relative to
/// the representation's shift, i.e. T v = (rep.sigma + lambda) v). z must
/// have length rep.n(); on return it is normalised.
template <typename Real>
GetvecResultT<Real> twisted_eigenvector(const RepresentationT<Real>& rep, Real lambda, Real* z);

/// One step of eigenvalue refinement from the twisted factorization: the
/// Rayleigh-quotient correction gamma / ||z||^2 (dlar1v's RQCORR).
template <typename Real>
Real rayleigh_correction(const GetvecResultT<Real>& r);

/// The dstein-style inverse-iteration fallback now lives in
/// lapack/stein.hpp (it is pure tridiagonal machinery); mrrr uses it for
/// numerically degenerate clusters.

}  // namespace dnc::mrrr
