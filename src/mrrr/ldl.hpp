// Relatively robust representations: LDL^T factorizations of shifted
// symmetric tridiagonal matrices and the differential qds transforms that
// move between them (the core machinery of the MRRR algorithm, after
// Dhillon; dlarrf/dlarrb/dlaneg equivalents in spirit).
//
// A representation stores D (diagonal of D) and L (unit subdiagonal of L)
// with the invariant T - sigma*I = L D L^T for the accumulated shift sigma.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::mrrr {

struct Representation {
  double sigma = 0.0;      ///< accumulated shift relative to the original T
  std::vector<double> d;   ///< D diagonal, size n
  std::vector<double> l;   ///< L subdiagonal, size n-1
  index_t n() const { return static_cast<index_t>(d.size()); }
};

/// Factors T - sigma*I = L D L^T directly from the tridiagonal (d, e).
/// Pivots that vanish are perturbed by a tiny amount (the representation
/// stays relatively robust as long as sigma is outside the spectrum or the
/// factorization is diagonally dominant there).
Representation ldl_factor(index_t n, const double* d, const double* e, double sigma);

/// Differential stationary qds: given rep of M = L D L^T computes the
/// representation of M - tau*I = L+ D+ L+^T. Returns false when an interior
/// breakdown made the result unreliable (caller should try another shift).
bool dstqds(const Representation& in, double tau, Representation& out);

/// Number of eigenvalues of L D L^T smaller than x (differential stationary
/// count; robust against zero pivots).
index_t sturm_count_ldl(const Representation& rep, double x);

/// Bisection for eigenvalue k (0-based) of L D L^T in [lo, hi] to absolute
/// tolerance tol (plus relative floor).
double bisect_ldl(const Representation& rep, index_t k, double lo, double hi, double tol);

}  // namespace dnc::mrrr
