// Relatively robust representations: LDL^T factorizations of shifted
// symmetric tridiagonal matrices and the differential qds transforms that
// move between them (the core machinery of the MRRR algorithm, after
// Dhillon; dlarrf/dlarrb/dlaneg equivalents in spirit). Templated on the
// working precision Real (double / float).
//
// A representation stores D (diagonal of D) and L (unit subdiagonal of L)
// with the invariant T - sigma*I = L D L^T for the accumulated shift sigma.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::mrrr {

template <typename Real>
struct RepresentationT {
  Real sigma = 0;          ///< accumulated shift relative to the original T
  std::vector<Real> d;     ///< D diagonal, size n
  std::vector<Real> l;     ///< L subdiagonal, size n-1
  index_t n() const { return static_cast<index_t>(d.size()); }
};

using Representation = RepresentationT<double>;

/// Factors T - sigma*I = L D L^T directly from the tridiagonal (d, e).
/// Pivots that vanish are perturbed by a tiny amount (the representation
/// stays relatively robust as long as sigma is outside the spectrum or the
/// factorization is diagonally dominant there).
template <typename Real>
RepresentationT<Real> ldl_factor(index_t n, const Real* d, const Real* e, Real sigma);

/// Differential stationary qds: given rep of M = L D L^T computes the
/// representation of M - tau*I = L+ D+ L+^T. Returns false when an interior
/// breakdown made the result unreliable (caller should try another shift).
template <typename Real>
bool dstqds(const RepresentationT<Real>& in, Real tau, RepresentationT<Real>& out);

/// Number of eigenvalues of L D L^T smaller than x (differential stationary
/// count; robust against zero pivots).
template <typename Real>
index_t sturm_count_ldl(const RepresentationT<Real>& rep, Real x);

/// Bisection for eigenvalue k (0-based) of L D L^T in [lo, hi] to absolute
/// tolerance tol (plus relative floor).
template <typename Real>
Real bisect_ldl(const RepresentationT<Real>& rep, index_t k, Real lo, Real hi, Real tol);

}  // namespace dnc::mrrr
