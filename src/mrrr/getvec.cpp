#include "mrrr/getvec.hpp"

#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "common/real_traits.hpp"

namespace dnc::mrrr {

template <typename Real>
GetvecResultT<Real> twisted_eigenvector(const RepresentationT<Real>& rep, Real lambda,
                                        Real* z) {
  const index_t n = rep.n();
  GetvecResultT<Real> res;
  if (n == 1) {
    z[0] = Real(1);
    res.gamma = rep.d[0] - lambda;
    res.znorm2 = Real(1);
    res.resid = std::fabs(res.gamma);
    return res;
  }
  const Real tiny = real_traits<Real>::safmin();
  const auto guard = [&](Real x) {
    if (x == Real(0)) return tiny;
    if (!std::isfinite(x)) return std::copysign(Real(1) / tiny, x);
    return x;
  };

  // Differential stationary transform: D+ and L+ of LDL^T - lambda.
  std::vector<Real> lplus(n - 1), svec(n);
  svec[0] = -lambda;
  for (index_t i = 0; i < n - 1; ++i) {
    const Real dplus = guard(rep.d[i] + svec[i]);
    lplus[i] = (rep.l[i] * rep.d[i]) / dplus;
    svec[i + 1] = lplus[i] * rep.l[i] * svec[i] - lambda;
  }

  // Differential progressive transform: U- D- U-^T of LDL^T - lambda,
  // bottom-up. umult[i] multiplies z downward; pvec holds the p_i.
  std::vector<Real> umult(n - 1), pvec(n);
  pvec[n - 1] = rep.d[n - 1] - lambda;
  for (index_t i = n - 2; i >= 0; --i) {
    const Real dminus = guard(rep.d[i] * rep.l[i] * rep.l[i] + pvec[i + 1]);
    umult[i] = (rep.l[i] * rep.d[i]) / dminus;
    pvec[i] = (pvec[i + 1] * rep.d[i]) / dminus - lambda;
  }

  // gamma_k = s_k + p_k + lambda; the twist minimises |gamma|.
  index_t k = 0;
  Real best = std::fabs(svec[0] + pvec[0] + lambda);
  for (index_t i = 1; i < n; ++i) {
    const Real g = std::fabs(svec[i] + pvec[i] + lambda);
    if (g < best) {
      best = g;
      k = i;
    }
  }
  res.twist = k;
  res.gamma = svec[k] + pvec[k] + lambda;

  // Solve N z = gamma e_k: z_k = 1, then the twisted back-substitutions.
  z[k] = Real(1);
  for (index_t i = k - 1; i >= 0; --i) {
    z[i] = -lplus[i] * z[i + 1];
    if (!std::isfinite(z[i]) || std::fabs(z[i]) > Real(1) / tiny) z[i] = Real(0);
  }
  for (index_t i = k; i < n - 1; ++i) {
    z[i + 1] = -umult[i] * z[i];
    if (!std::isfinite(z[i + 1]) || std::fabs(z[i + 1]) > Real(1) / tiny) z[i + 1] = Real(0);
  }
  const Real nrm = blas::nrm2(n, z);
  res.znorm2 = nrm * nrm;
  blas::scal(n, Real(1) / nrm, z);
  res.resid = std::fabs(res.gamma) / nrm;
  return res;
}

template <typename Real>
Real rayleigh_correction(const GetvecResultT<Real>& r) {
  return r.gamma / r.znorm2;
}

#define DNC_INSTANTIATE_GETVEC(Real)                                                \
  template GetvecResultT<Real> twisted_eigenvector<Real>(const RepresentationT<Real>&, \
                                                         Real, Real*);              \
  template Real rayleigh_correction<Real>(const GetvecResultT<Real>&);

DNC_INSTANTIATE_GETVEC(double)
DNC_INSTANTIATE_GETVEC(float)

#undef DNC_INSTANTIATE_GETVEC

}  // namespace dnc::mrrr
