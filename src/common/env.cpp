#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace dnc::env {

const char* raw(const char* name) noexcept { return std::getenv(name); }

bool is_set(const char* name) noexcept {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0';
}

std::string str(const char* name, const std::string& dflt) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : dflt;
}

bool flag(const char* name, bool dflt) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0 || std::strcmp(v, "no") == 0);
}

long integer(const char* name, long dflt) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : dflt;
}

double number(const char* name, double dflt) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : dflt;
}

const Knob* knob_reference() noexcept {
  // Keep alphabetical; README's knob table mirrors this list.
  static const Knob kKnobs[] = {
      {"DNC_CRASH_DUMP", "directory", "write crash dumps (flight-recorder state) here on fatal signals"},
      {"DNC_FLIGHT", "0/1", "anomaly flight recorder: keep ring-buffer traces of anomalous solves"},
      {"DNC_FLIGHT_K", "float", "flight-recorder anomaly threshold (robust z-score multiplier)"},
      {"DNC_FLIGHT_MAX_DUMPS", "int", "cap on flight-recorder dump files per process"},
      {"DNC_HISTORY", "path", "append one distilled record per solve to this JSONL archive"},
      {"DNC_HISTORY_MAX_BYTES", "bytes", "rotate the history archive to <path>.1 at this size (default 16 MiB)"},
      {"DNC_HTTP", "[addr:]port", "serve /healthz /metrics /profile /trace /history over HTTP"},
      {"DNC_HWC", "off/on/perf/rusage", "per-task hardware-counter sampling backend"},
      {"DNC_METRICS", "0/1", "always-on metrics registry (Prometheus text on /metrics)"},
      {"DNC_METRICS_INTERVAL", "seconds", "metrics sampler period"},
      {"DNC_PREC", "f64/f32/f32_refine", "solve precision path override"},
      {"DNC_PROFILE", "path", "write folded-stack profile here at exit"},
      {"DNC_PROFILE_HZ", "int", "sampling-profiler frequency (0 = off)"},
      {"DNC_REPORT", "path", "write the SolveReport JSON of each solve here"},
      {"DNC_SCHED", "steal/central", "runtime scheduling policy"},
      {"DNC_SIMD", "scalar/sse2/avx2", "clamp the SIMD kernel dispatch level"},
      {"DNC_TOPOLOGY", "sockets x l3 x cpus | flat", "override the detected CPU topology for steal ordering"},
      {"DNC_TRACE", "path", "write the Perfetto trace of each solve here"},
      {"DNC_TUNE_TABLE", "path", "consult this dnc_tune table for nb/policy defaults at solve time"},
      {nullptr, nullptr, nullptr},
  };
  return kKnobs;
}

}  // namespace dnc::env
