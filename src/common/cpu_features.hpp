// Runtime CPU feature probe for the SIMD kernel dispatch.
//
// The kernel layer in src/blas/simd/ compiles several instruction-set
// variants of the hot kernels (scalar always; SSE2 and AVX2+FMA when the
// build supports them) and picks one at runtime. This header answers the
// runtime half of that question: what does the *hardware* support, and did
// the user force a level via the DNC_SIMD environment variable.
//
// The probe itself uses only compiler builtins (no intrinsics), so it lives
// in dnc_common and is safe to compile for any target; on non-x86 it simply
// reports Scalar.
#pragma once

namespace dnc {

/// Instruction-set levels the kernel layer distinguishes, in strictly
/// increasing capability order (AVX2 implies SSE2 implies scalar).
enum class SimdIsa : int {
  Scalar = 0,  ///< portable C++ (always available)
  Sse2 = 1,    ///< 128-bit double vectors (x86-64 baseline)
  Avx2 = 2,    ///< 256-bit double vectors + FMA
};

/// Best level the *hardware* supports (cpuid probe; cached after first call).
/// Avx2 is only reported when FMA is also present -- the AVX2 kernels use it.
SimdIsa detect_simd_isa() noexcept;

/// Parses a DNC_SIMD-style override string ("scalar"/"off", "sse2", "avx2").
/// Returns true and sets `out` on a recognised value, false otherwise.
bool parse_simd_isa(const char* s, SimdIsa& out) noexcept;

/// Level requested via the DNC_SIMD environment variable, clamped to what
/// detect_simd_isa() reports (requesting avx2 on a non-AVX2 machine degrades
/// safely). Returns detect_simd_isa() when the variable is unset/unparsable.
SimdIsa requested_simd_isa() noexcept;

/// Human-readable name ("scalar", "sse2", "avx2").
const char* simd_isa_name(SimdIsa isa) noexcept;

}  // namespace dnc
