// Runtime CPU feature probe for the SIMD kernel dispatch.
//
// The kernel layer in src/blas/simd/ compiles several instruction-set
// variants of the hot kernels (scalar always; SSE2 and AVX2+FMA when the
// build supports them) and picks one at runtime. This header answers the
// runtime half of that question: what does the *hardware* support, and did
// the user force a level via the DNC_SIMD environment variable.
//
// The probe itself uses only compiler builtins (no intrinsics), so it lives
// in dnc_common and is safe to compile for any target; on non-x86 it simply
// reports Scalar.
#pragma once

#include <string>
#include <vector>

namespace dnc {

/// Instruction-set levels the kernel layer distinguishes, in strictly
/// increasing capability order (AVX2 implies SSE2 implies scalar).
enum class SimdIsa : int {
  Scalar = 0,  ///< portable C++ (always available)
  Sse2 = 1,    ///< 128-bit double vectors (x86-64 baseline)
  Avx2 = 2,    ///< 256-bit double vectors + FMA
};

/// Best level the *hardware* supports (cpuid probe; cached after first call).
/// Avx2 is only reported when FMA is also present -- the AVX2 kernels use it.
SimdIsa detect_simd_isa() noexcept;

/// Parses a DNC_SIMD-style override string ("scalar"/"off", "sse2", "avx2").
/// Returns true and sets `out` on a recognised value, false otherwise.
bool parse_simd_isa(const char* s, SimdIsa& out) noexcept;

/// Level requested via the DNC_SIMD environment variable, clamped to what
/// detect_simd_isa() reports (requesting avx2 on a non-AVX2 machine degrades
/// safely). Returns detect_simd_isa() when the variable is unset/unparsable.
SimdIsa requested_simd_isa() noexcept;

/// Human-readable name ("scalar", "sse2", "avx2").
const char* simd_isa_name(SimdIsa isa) noexcept;

/// Cache/socket hierarchy of the machine, for locality-aware stealing: a
/// thief should raid a deque whose owner shares its L3 before crossing the
/// socket interconnect (arXiv 1401.4950 makes the case for MRRR; the same
/// argument applies to any task runtime on a hierarchical multicore).
///
/// Detection reads sysfs (physical_package_id + the L3 id/shared_cpu_list
/// of cache index3); when sysfs is absent (non-Linux, containers with a
/// masked /sys) the topology degrades to one socket / one L3 domain over
/// hardware_concurrency cpus and `detected` stays false. The DNC_TOPOLOGY
/// variable overrides everything -- "SxLxC" (sockets x L3-per-socket x
/// cpus-per-L3, e.g. "2x4x8") builds a synthetic hierarchy, "flat" forces
/// the fallback -- which is also how tests exercise multi-socket victim
/// ordering on a laptop.
struct CpuTopology {
  int cpus = 1;        ///< logical cpus described below
  int sockets = 1;     ///< distinct physical packages
  int l3_domains = 1;  ///< distinct last-level-cache domains
  /// Per-cpu socket index in [0, sockets), size `cpus`.
  std::vector<int> socket_of;
  /// Per-cpu L3-domain index in [0, l3_domains), size `cpus`.
  std::vector<int> l3_of;
  bool detected = false;  ///< true when sysfs (or an override) supplied ids
  std::string source;     ///< "sysfs", "override", or "flat"
};

/// The machine's topology (probed once, cached; DNC_TOPOLOGY wins).
const CpuTopology& cpu_topology() noexcept;

/// Parses a DNC_TOPOLOGY-style spec into `out`: "SxLxC" (sockets x
/// L3-domains-per-socket x cpus-per-L3) or "flat". Returns false (leaving
/// `out` untouched) on anything else.
bool parse_topology_spec(const char* s, CpuTopology& out);

}  // namespace dnc
