#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace dnc {

ThreadPool::ThreadPool(int threads) {
  DNC_REQUIRE(threads >= 1, "ThreadPool needs at least one thread");
  // The calling thread participates in every parallel region, so only
  // threads-1 workers are spawned.
  workers_.reserve(threads - 1);
  for (int i = 1; i < threads; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int id) {
  // Sampling-profiler registration: pool workers show up as "pool:<id>"
  // stacks. One relaxed load + branch when profiling is off.
  obs::profiler::ThreadRegistration preg("pool", id);
  std::uint64_t seen = 0;
  for (;;) {
    std::function<void(int)> work;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_.id != seen; });
      if (stop_) return;
      seen = epoch_.id;
      work = epoch_.work;
    }
    work(id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--epoch_.remaining == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(index_t begin, index_t end,
                              const std::function<void(index_t, index_t)>& fn) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const int p = size();
  if (p == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const index_t chunk = (n + p - 1) / p;
  auto body = [&, begin, end, chunk](int worker_id) {
    const index_t lo = begin + worker_id * chunk;
    const index_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi);
  };
  std::uint64_t my_epoch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch_.work = body;
    epoch_.remaining = static_cast<index_t>(workers_.size());
    epoch_.id = next_epoch_id_++;
    my_epoch = epoch_.id;
  }
  cv_start_.notify_all();
  body(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return epoch_.id == my_epoch && epoch_.remaining == 0; });
}

void ThreadPool::run_jobs(index_t njobs, const std::function<void(index_t)>& job) {
  parallel_for(0, njobs, [&](index_t lo, index_t hi) {
    for (index_t j = lo; j < hi; ++j) job(j);
  });
}

}  // namespace dnc
