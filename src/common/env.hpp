// One front door for every DNC_* environment knob.
//
// Historically each subsystem called std::getenv and hand-rolled its own
// parsing; this header centralises the typed getters and carries the
// single knob-reference table (name + one-line summary) that docs, tools
// and /healthz can render without chasing call sites. Getters re-read the
// environment on every call by design -- tests setenv() mid-process and
// expect the next solve to notice -- so subsystems that want
// parse-once-per-run semantics cache the result themselves at a lifecycle
// boundary (e.g. scheduler start, server start) rather than per task.
#pragma once

#include <string>

namespace dnc::env {

/// Raw getenv: nullptr when unset. Prefer the typed getters below.
const char* raw(const char* name) noexcept;

/// True when the variable is set to a non-empty value.
bool is_set(const char* name) noexcept;

/// String value, or `dflt` when unset/empty.
std::string str(const char* name, const std::string& dflt = "");

/// Boolean knob: unset/empty returns `dflt`; "0"/"off"/"false"/"no" are
/// false, anything else is true (so DNC_X=1 and DNC_X=on both enable).
bool flag(const char* name, bool dflt = false) noexcept;

/// Integer knob; returns `dflt` when unset or unparsable.
long integer(const char* name, long dflt) noexcept;

/// Floating-point knob; returns `dflt` when unset or unparsable.
double number(const char* name, double dflt) noexcept;

/// One row of the knob-reference table.
struct Knob {
  const char* name;     ///< environment variable, e.g. "DNC_SCHED"
  const char* values;   ///< accepted values, human-readable
  const char* summary;  ///< one-line description
};

/// Every DNC_* knob the process understands, for docs / diagnostics.
/// Terminated by a {nullptr, nullptr, nullptr} sentinel.
const Knob* knob_reference() noexcept;

}  // namespace dnc::env
