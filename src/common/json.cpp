#include "common/json.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dnc::json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(const std::string& s, std::string* err) : s_(s), err_(err) {}

  bool run(Value& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (err_) {
      std::ostringstream ss;
      ss << msg << " at byte " << pos_;
      *err_ = ss.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = Value::Kind::String;
        return string(out.string);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(Value& out, int depth) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected object key");
      if (!string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Value v;
      if (!value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }

  bool array(Value& out, int depth) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      Value v;
      if (!value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("truncated escape sequence");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // combined -- our writers only emit \u for control characters).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = Value::Kind::Number;
    return true;
  }

  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      std::ostringstream ss;
      if (err_) {
        ss << "expected '" << c << "' at byte " << pos_;
        *err_ = ss.str();
      }
      return false;
    }
    ++pos_;
    return true;
  }

  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::member_number(const std::string& key, double dflt) const {
  const Value* v = find(key);
  return v ? v->number_or(dflt) : dflt;
}

std::string Value::member_string(const std::string& key, const std::string& dflt) const {
  const Value* v = find(key);
  return v ? v->string_or(dflt) : dflt;
}

bool parse(const std::string& text, Value& out, std::string* err) {
  out = Value{};
  return Parser(text, err).run(out);
}

bool parse_file(const std::string& path, Value& out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str(), out, err);
}

}  // namespace dnc::json
