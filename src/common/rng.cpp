#include "common/rng.hpp"

#include <cmath>

namespace dnc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> [0,1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_sym() { return 2.0 * uniform01() - 1.0; }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 6.283185307179586476925286766559 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

Rng Rng::split() {
  Rng child(next_u64() ^ 0xA5A5A5A5A5A5A5A5ull);
  return child;
}

}  // namespace dnc
