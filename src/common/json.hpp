// Minimal JSON DOM: parse-only, no external dependency.
//
// The observability layer writes its artifacts (Perfetto traces,
// SolveReports, BENCH_*.json) as hand-formatted JSON; the analysis tools
// (tools/dnc_trace --load, tools/bench_compare) need to read them back.
// This is a strict recursive-descent parser for that round trip: full
// value model, escape handling, bounded nesting depth, byte-offset error
// reporting. It is not a streaming parser -- our artifacts are at most a
// few MB -- and it does not write JSON (the writers keep their explicit
// formatting so the artifacts stay diffable).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dnc::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered; duplicate keys keep the first occurrence on lookup.
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  // Typed accessors with a fallback, tolerant of missing/mistyped members
  // so readers degrade gracefully on foreign or older artifacts.
  double number_or(double dflt) const { return is_number() ? number : dflt; }
  bool bool_or(bool dflt) const { return is_bool() ? boolean : dflt; }
  const std::string& string_or(const std::string& dflt) const {
    return is_string() ? string : dflt;
  }
  double member_number(const std::string& key, double dflt) const;
  std::string member_string(const std::string& key, const std::string& dflt) const;
};

/// Parses `text` (a single JSON value, surrounding whitespace allowed).
/// Returns false on malformed input; `err` (optional) gets a one-line
/// message with the byte offset of the failure.
bool parse(const std::string& text, Value& out, std::string* err = nullptr);

/// Convenience: reads the file and parses it. A missing/unreadable file is
/// reported through `err` like a parse failure.
bool parse_file(const std::string& path, Value& out, std::string* err = nullptr);

}  // namespace dnc::json
