// Column-major dense matrix container and non-owning view.
//
// All linear algebra in this repository follows the LAPACK column-major
// convention: element (i, j) of a matrix with leading dimension ld lives at
// data[i + j*ld]. MatrixT owns 64-byte-aligned storage (cache-line aligned so
// panel tasks on distinct columns never share lines at panel boundaries);
// MatrixViewT is a cheap non-owning window used by tasks operating on panels.
// Both are templated on the element type for the precision-templated solver
// stack; the unqualified Matrix / MatrixView aliases are the historical
// double instantiations used by the public APIs.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace dnc {

using index_t = std::ptrdiff_t;

/// Non-owning column-major matrix window.
template <typename Real>
struct MatrixViewT {
  Real* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  MatrixViewT() = default;
  MatrixViewT(Real* d, index_t r, index_t c, index_t leading)
      : data(d), rows(r), cols(c), ld(leading) {
    DNC_ASSERT(leading >= r);
  }

  Real& operator()(index_t i, index_t j) const {
    DNC_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }

  /// Window of columns [j0, j0+nc) and rows [i0, i0+nr).
  MatrixViewT block(index_t i0, index_t j0, index_t nr, index_t nc) const {
    DNC_ASSERT(i0 >= 0 && j0 >= 0 && i0 + nr <= rows && j0 + nc <= cols);
    return MatrixViewT(data + i0 + j0 * ld, nr, nc, ld);
  }

  Real* col(index_t j) const {
    DNC_ASSERT(j >= 0 && j < cols);
    return data + j * ld;
  }
};

/// Owning column-major matrix with cache-line aligned storage.
template <typename Real>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(index_t rows, index_t cols) { resize(rows, cols); }

  MatrixT(const MatrixT& other) : MatrixT(other.rows_, other.cols_) {
    if (size_bytes() > 0) std::memcpy(data_, other.data_, size_bytes());
  }
  MatrixT& operator=(const MatrixT& other) {
    if (this != &other) {
      resize(other.rows_, other.cols_);
      if (size_bytes() > 0) std::memcpy(data_, other.data_, size_bytes());
    }
    return *this;
  }
  MatrixT(MatrixT&& other) noexcept { swap(other); }
  MatrixT& operator=(MatrixT&& other) noexcept {
    swap(other);
    return *this;
  }
  ~MatrixT() { std::free(data_); }

  void resize(index_t rows, index_t cols) {
    DNC_REQUIRE(rows >= 0 && cols >= 0, "Matrix dimensions must be non-negative");
    if (rows == rows_ && cols == cols_) return;
    std::free(data_);
    data_ = nullptr;
    rows_ = rows;
    cols_ = cols;
    const std::size_t bytes = static_cast<std::size_t>(rows) * cols * sizeof(Real);
    if (bytes > 0) {
      // Round up to a multiple of the alignment as required by aligned_alloc.
      const std::size_t padded = (bytes + 63) & ~std::size_t{63};
      data_ = static_cast<Real*>(std::aligned_alloc(64, padded));
      if (data_ == nullptr) throw std::bad_alloc();
    }
  }

  void fill(Real value) {
    for (index_t k = 0; k < rows_ * cols_; ++k) data_[k] = value;
  }

  void swap(MatrixT& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(rows_, other.rows_);
    std::swap(cols_, other.cols_);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_; }
  Real* data() { return data_; }
  const Real* data() const { return data_; }
  std::size_t size_bytes() const {
    return static_cast<std::size_t>(rows_) * cols_ * sizeof(Real);
  }

  Real& operator()(index_t i, index_t j) {
    DNC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }
  Real operator()(index_t i, index_t j) const {
    DNC_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * rows_];
  }

  MatrixViewT<Real> view() { return MatrixViewT<Real>(data_, rows_, cols_, rows_); }
  MatrixViewT<Real> block(index_t i0, index_t j0, index_t nr, index_t nc) {
    return view().block(i0, j0, nr, nc);
  }

 private:
  Real* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
};

using MatrixView = MatrixViewT<double>;
using Matrix = MatrixT<double>;

}  // namespace dnc
