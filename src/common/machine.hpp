// Machine floating-point constants, equivalent to LAPACK's dlamch.
//
// All algorithms in this repository work in IEEE double precision, matching
// the paper's experiments. Constants are computed once at startup from
// std::numeric_limits so the library remains correct under -ffast-math-free
// builds on any IEEE platform.
#pragma once

#include <cmath>
#include <limits>

namespace dnc {

/// Relative machine epsilon times the rounding unit: dlamch('E') = ulp/2.
double lamch_eps() noexcept;

/// Unit in the last place (relative spacing): dlamch('P') = eps * base.
double lamch_prec() noexcept;

/// Smallest safe positive number such that 1/safmin does not overflow:
/// dlamch('S').
double lamch_safmin() noexcept;

/// Overflow threshold, dlamch('O').
double lamch_overflow() noexcept;

/// sqrt(safmin) / eps-style scaling bounds used by steqr/sterf.
struct ScaleBounds {
  double ssfmax;  ///< scale down above this
  double ssfmin;  ///< scale up below this
};
ScaleBounds steqr_scale_bounds() noexcept;

}  // namespace dnc
