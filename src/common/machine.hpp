// Machine floating-point constants, equivalent to LAPACK's dlamch.
//
// The actual constants live in common/real_traits.hpp, templated on the
// working precision; these double-typed wrappers keep the historical
// dlamch-style spellings used throughout the fp64 call sites.
#pragma once

#include "common/real_traits.hpp"

namespace dnc {

/// Relative machine epsilon times the rounding unit: dlamch('E') = ulp/2.
inline double lamch_eps() noexcept { return real_traits<double>::eps(); }

/// Unit in the last place (relative spacing): dlamch('P') = eps * base.
inline double lamch_prec() noexcept { return real_traits<double>::prec(); }

/// Smallest safe positive number such that 1/safmin does not overflow:
/// dlamch('S').
inline double lamch_safmin() noexcept { return real_traits<double>::safmin(); }

/// Overflow threshold, dlamch('O').
inline double lamch_overflow() noexcept { return real_traits<double>::overflow(); }

/// sqrt(safmin) / eps-style scaling bounds used by steqr/sterf.
using ScaleBounds = ScaleBoundsT<double>;

inline ScaleBounds steqr_scale_bounds() noexcept { return steqr_scale_bounds_t<double>(); }

}  // namespace dnc
