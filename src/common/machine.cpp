#include "common/machine.hpp"

namespace dnc {

double lamch_eps() noexcept {
  // LAPACK dlamch('E'): relative machine epsilon = 2^-53 for IEEE double.
  return std::numeric_limits<double>::epsilon() * 0.5;
}

double lamch_prec() noexcept {
  // dlamch('P') = eps * base.
  return std::numeric_limits<double>::epsilon();
}

double lamch_safmin() noexcept {
  // dlamch('S'): smallest number whose reciprocal is finite. For IEEE
  // double the smallest normal already satisfies this.
  return std::numeric_limits<double>::min();
}

double lamch_overflow() noexcept { return std::numeric_limits<double>::max(); }

ScaleBounds steqr_scale_bounds() noexcept {
  const double eps = lamch_eps();
  const double safmin = lamch_safmin();
  ScaleBounds b;
  b.ssfmax = std::sqrt(lamch_overflow()) / 3.0;
  b.ssfmin = std::sqrt(safmin / eps) / 3.0 * 4.0;  // matches dsteqr's ssfmin
  return b;
}

}  // namespace dnc
