#include "common/cpu_features.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "common/env.hpp"

namespace dnc {
namespace {

SimdIsa probe_hardware() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return SimdIsa::Avx2;
  if (__builtin_cpu_supports("sse2")) return SimdIsa::Sse2;
  return SimdIsa::Scalar;
#else
  return SimdIsa::Scalar;
#endif
}

}  // namespace

SimdIsa detect_simd_isa() noexcept {
  static const SimdIsa isa = probe_hardware();
  return isa;
}

bool parse_simd_isa(const char* s, SimdIsa& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0 || std::strcmp(s, "off") == 0 ||
      std::strcmp(s, "none") == 0) {
    out = SimdIsa::Scalar;
    return true;
  }
  if (std::strcmp(s, "sse2") == 0) {
    out = SimdIsa::Sse2;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    out = SimdIsa::Avx2;
    return true;
  }
  return false;
}

SimdIsa requested_simd_isa() noexcept {
  const SimdIsa hw = detect_simd_isa();
  SimdIsa req;
  if (!parse_simd_isa(env::raw("DNC_SIMD"), req)) return hw;
  return static_cast<int>(req) < static_cast<int>(hw) ? req : hw;
}

namespace {

/// Reads the first integer out of a sysfs file; -1 on any failure.
int read_sysfs_int(const char* path) noexcept {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return -1;
  int v = -1;
  const int got = std::fscanf(f, "%d", &v);
  std::fclose(f);
  return got == 1 ? v : -1;
}

/// Flat fallback: one socket, one L3 domain, hardware_concurrency cpus.
CpuTopology flat_topology() {
  CpuTopology t;
  const unsigned hc = std::thread::hardware_concurrency();
  t.cpus = hc > 0 ? static_cast<int>(hc) : 1;
  t.sockets = 1;
  t.l3_domains = 1;
  t.socket_of.assign(static_cast<std::size_t>(t.cpus), 0);
  t.l3_of.assign(static_cast<std::size_t>(t.cpus), 0);
  t.detected = false;
  t.source = "flat";
  return t;
}

CpuTopology probe_topology() {
  if (const char* spec = env::raw("DNC_TOPOLOGY")) {
    CpuTopology t;
    if (parse_topology_spec(spec, t)) return t;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  const int ncpu = hc > 0 ? static_cast<int>(hc) : 1;
  CpuTopology t;
  t.cpus = ncpu;
  t.socket_of.assign(static_cast<std::size_t>(ncpu), 0);
  t.l3_of.assign(static_cast<std::size_t>(ncpu), 0);
  // Raw sysfs ids are arbitrary (L3 ids are globally unique on AMD,
  // per-socket on some Intel parts); densify both through maps.
  std::map<int, int> socket_ids;
  std::map<long long, int> l3_ids;
  bool any = false;
  char path[160];
  for (int c = 0; c < ncpu; ++c) {
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu%d/topology/physical_package_id", c);
    const int pkg = read_sysfs_int(path);
    std::snprintf(path, sizeof path, "/sys/devices/system/cpu/cpu%d/cache/index3/id", c);
    int l3 = read_sysfs_int(path);
    if (pkg < 0 && l3 < 0) continue;  // cpu hotplugged out or sysfs masked
    any = true;
    const int pkg_key = pkg >= 0 ? pkg : 0;
    const auto si = socket_ids.emplace(pkg_key, static_cast<int>(socket_ids.size()));
    t.socket_of[static_cast<std::size_t>(c)] = si.first->second;
    // Disambiguate per-socket L3 ids by pairing them with the socket; an
    // absent index3 (no L3 exposed) collapses to one domain per socket.
    const long long l3_key =
        (static_cast<long long>(pkg_key) << 32) | static_cast<unsigned>(l3 >= 0 ? l3 : 0);
    const auto li = l3_ids.emplace(l3_key, static_cast<int>(l3_ids.size()));
    t.l3_of[static_cast<std::size_t>(c)] = li.first->second;
  }
  if (!any) return flat_topology();
  t.sockets = std::max<int>(1, static_cast<int>(socket_ids.size()));
  t.l3_domains = std::max<int>(1, static_cast<int>(l3_ids.size()));
  t.detected = true;
  t.source = "sysfs";
  return t;
}

}  // namespace

bool parse_topology_spec(const char* s, CpuTopology& out) {
  if (s == nullptr || *s == '\0') return false;
  if (std::strcmp(s, "flat") == 0) {
    out = flat_topology();
    return true;
  }
  int sockets = 0, l3_per_socket = 0, cpus_per_l3 = 0;
  char tail = '\0';
  if (std::sscanf(s, "%dx%dx%d%c", &sockets, &l3_per_socket, &cpus_per_l3, &tail) != 3 ||
      sockets < 1 || l3_per_socket < 1 || cpus_per_l3 < 1)
    return false;
  CpuTopology t;
  t.sockets = sockets;
  t.l3_domains = sockets * l3_per_socket;
  t.cpus = t.l3_domains * cpus_per_l3;
  t.socket_of.resize(static_cast<std::size_t>(t.cpus));
  t.l3_of.resize(static_cast<std::size_t>(t.cpus));
  for (int c = 0; c < t.cpus; ++c) {
    t.l3_of[static_cast<std::size_t>(c)] = c / cpus_per_l3;
    t.socket_of[static_cast<std::size_t>(c)] = c / (cpus_per_l3 * l3_per_socket);
  }
  t.detected = true;
  t.source = "override";
  out = std::move(t);
  return true;
}

const CpuTopology& cpu_topology() noexcept {
  static const CpuTopology topo = probe_topology();
  return topo;
}

const char* simd_isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Sse2:
      return "sse2";
    case SimdIsa::Avx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace dnc
