#include "common/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace dnc {
namespace {

SimdIsa probe_hardware() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return SimdIsa::Avx2;
  if (__builtin_cpu_supports("sse2")) return SimdIsa::Sse2;
  return SimdIsa::Scalar;
#else
  return SimdIsa::Scalar;
#endif
}

}  // namespace

SimdIsa detect_simd_isa() noexcept {
  static const SimdIsa isa = probe_hardware();
  return isa;
}

bool parse_simd_isa(const char* s, SimdIsa& out) noexcept {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0 || std::strcmp(s, "off") == 0 ||
      std::strcmp(s, "none") == 0) {
    out = SimdIsa::Scalar;
    return true;
  }
  if (std::strcmp(s, "sse2") == 0) {
    out = SimdIsa::Sse2;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    out = SimdIsa::Avx2;
    return true;
  }
  return false;
}

SimdIsa requested_simd_isa() noexcept {
  const SimdIsa hw = detect_simd_isa();
  SimdIsa req;
  if (!parse_simd_isa(std::getenv("DNC_SIMD"), req)) return hw;
  return static_cast<int>(req) < static_cast<int>(hw) ? req : hw;
}

const char* simd_isa_name(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::Sse2:
      return "sse2";
    case SimdIsa::Avx2:
      return "avx2";
    default:
      return "scalar";
  }
}

}  // namespace dnc
