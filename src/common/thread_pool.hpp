// Minimal fork/join thread pool.
//
// This pool models the execution backend of a *multithreaded BLAS* library:
// a parallel region (parallel_for) forks work across the pool and joins at
// the end. The QUARK-like task runtime in src/runtime/ deliberately does NOT
// use this pool -- the whole point of the paper is to contrast out-of-order
// task scheduling with this fork/join model -- but the LAPACK-model and
// ScaLAPACK-model baselines do.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/matrix.hpp"

namespace dnc {

class ThreadPool {
 public:
  /// Creates `threads` persistent workers. `threads == 1` degenerates to
  /// inline execution with zero synchronisation overhead.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into roughly
  /// equal contiguous chunks, one per pool thread; blocks until all chunks
  /// are complete (fork/join semantics).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t)>& fn);

  /// Runs `njobs` independent thunks, joining at the end.
  void run_jobs(index_t njobs, const std::function<void(index_t)>& job);

 private:
  struct Epoch {
    std::function<void(int worker_id)> work;  // per-worker body for this epoch
    index_t remaining = 0;
    std::uint64_t id = 0;
  };

  void worker_loop(int id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Epoch epoch_;
  std::uint64_t next_epoch_id_ = 1;
  bool stop_ = false;
};

}  // namespace dnc
