// Error handling utilities shared by all dnc libraries.
//
// Numerical routines report convergence failures through dnc::NumericalError
// (carrying a LAPACK-style info code); precondition violations throw
// dnc::InvalidArgument. Hot loops use DNC_ASSERT, which compiles away in
// release builds unless DNC_ENABLE_ASSERTS is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace dnc {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an iterative numerical method fails to converge.
/// `info` follows LAPACK conventions (index of the failing element/block).
class NumericalError : public std::runtime_error {
 public:
  NumericalError(const std::string& what, long info_code)
      : std::runtime_error(what + " (info=" + std::to_string(info_code) + ")"), info(info_code) {}
  long info;
};

#define DNC_REQUIRE(cond, msg)                  \
  do {                                          \
    if (!(cond)) throw ::dnc::InvalidArgument(msg); \
  } while (0)

#if defined(DNC_ENABLE_ASSERTS) || !defined(NDEBUG)
#define DNC_ASSERT(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      throw ::dnc::InvalidArgument(std::string("assertion failed: ") + #cond + \
                                   " at " + __FILE__ + ":" + std::to_string(__LINE__)); \
  } while (0)
#else
#define DNC_ASSERT(cond) ((void)0)
#endif

}  // namespace dnc
