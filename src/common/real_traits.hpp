// Numeric traits for the precision-templated kernel/solver stack.
//
// Every epsilon / safe-minimum / scaling constant the LAPACK-equivalent
// kernels need is defined here once per `Real` type, so a kernel templated
// on Real picks up the right constants by substitution instead of carrying
// hard-coded double literals. The double specialisation reproduces the
// original dlamch-style values exactly (see common/machine.hpp, which now
// forwards here); the float specialisation is the slamch equivalent.
#pragma once

#include <cmath>
#include <limits>

namespace dnc {

template <typename Real>
struct real_traits;

template <>
struct real_traits<double> {
  using type = double;
  static constexpr int bits = 64;
  /// Short name stamped into reports / bench metadata ("f64").
  static constexpr const char* name() noexcept { return "f64"; }
  /// dlamch('E'): relative machine epsilon = 2^-53.
  static constexpr double eps() noexcept {
    return std::numeric_limits<double>::epsilon() * 0.5;
  }
  /// dlamch('P') = eps * base.
  static constexpr double prec() noexcept { return std::numeric_limits<double>::epsilon(); }
  /// dlamch('S'): smallest number whose reciprocal is finite.
  static constexpr double safmin() noexcept { return std::numeric_limits<double>::min(); }
  /// dlamch('O'): overflow threshold.
  static constexpr double overflow() noexcept { return std::numeric_limits<double>::max(); }
  /// Safe range for the unscaled sum-of-squares fast path (blas::nrm2):
  /// squaring stays inside [tiny, huge] without over/underflow.
  static constexpr double ssq_small() noexcept { return 1e-140; }
  static constexpr double ssq_big() noexcept { return 1e140; }
};

template <>
struct real_traits<float> {
  using type = float;
  static constexpr int bits = 32;
  static constexpr const char* name() noexcept { return "f32"; }
  /// slamch('E'): relative machine epsilon = 2^-24.
  static constexpr float eps() noexcept {
    return std::numeric_limits<float>::epsilon() * 0.5f;
  }
  static constexpr float prec() noexcept { return std::numeric_limits<float>::epsilon(); }
  static constexpr float safmin() noexcept { return std::numeric_limits<float>::min(); }
  static constexpr float overflow() noexcept { return std::numeric_limits<float>::max(); }
  // float range is ~[1e-38, 3e38]; squares must stay clear of both ends.
  static constexpr float ssq_small() noexcept { return 1e-17f; }
  static constexpr float ssq_big() noexcept { return 1e17f; }
};

/// sqrt(safmin)/eps-style scaling bounds used by steqr/sterf, per precision.
template <typename Real>
struct ScaleBoundsT {
  Real ssfmax;  ///< scale down above this
  Real ssfmin;  ///< scale up below this
};

template <typename Real>
inline ScaleBoundsT<Real> steqr_scale_bounds_t() noexcept {
  ScaleBoundsT<Real> b;
  b.ssfmax = std::sqrt(real_traits<Real>::overflow()) / Real(3);
  // Matches dsteqr's ssfmin = sqrt(safmin / eps) / 3 * 4.
  b.ssfmin = std::sqrt(real_traits<Real>::safmin() / real_traits<Real>::eps()) / Real(3) * Real(4);
  return b;
}

}  // namespace dnc
