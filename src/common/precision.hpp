// Solve-precision selection shared by the D&C and MRRR drivers.
//
// Three modes are exposed through Options / the DNC_PREC environment knob:
//   F64           classic IEEE double solve (default, matches the paper)
//   F32           full solve in IEEE float: 8-lane AVX2 kernels, half the
//                 memory traffic, fp32-grade accuracy
//   F32RefineF64  fp32 solve followed by fp64 Rayleigh-quotient refinement
//                 of every eigenpair whose fp64 residual exceeds the
//                 refinement tolerance (lapack/refine.hpp): near-fp32
//                 throughput with fp64-grade residuals
#pragma once

#include <cstring>

#include "common/env.hpp"

namespace dnc {

enum class Precision { F64, F32, F32RefineF64 };

/// Canonical spelling, also the accepted DNC_PREC values.
inline const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::F32: return "f32";
    case Precision::F32RefineF64: return "f32refine";
    case Precision::F64: break;
  }
  return "f64";
}

/// Working-precision width in bits: what the kernels actually execute in.
/// F32RefineF64 runs the whole D&C pipeline (and all its GEMMs) in fp32 --
/// only the refinement epilogue is fp64 -- so its kernel precision is 32.
inline int precision_bits(Precision p) noexcept {
  return p == Precision::F64 ? 64 : 32;
}

/// Parses a DNC_PREC-style spelling; unknown strings map to F64.
inline Precision parse_precision(const char* s) noexcept {
  if (s == nullptr) return Precision::F64;
  if (std::strcmp(s, "f32") == 0 || std::strcmp(s, "fp32") == 0 ||
      std::strcmp(s, "single") == 0)
    return Precision::F32;
  if (std::strcmp(s, "f32refine") == 0 || std::strcmp(s, "mixed") == 0)
    return Precision::F32RefineF64;
  return Precision::F64;
}

/// Default for Options::precision: $DNC_PREC, read at each Options
/// construction (same pattern as rt::default_sched_policy / DNC_SCHED).
inline Precision default_precision() noexcept {
  return parse_precision(env::raw("DNC_PREC"));
}

}  // namespace dnc
