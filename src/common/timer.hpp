// Monotonic wall-clock timing used by the runtime tracer and benchmarks.
#pragma once

#include <chrono>

namespace dnc {

/// Seconds since an arbitrary (but fixed per process) epoch.
inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

class Stopwatch {
 public:
  Stopwatch() : start_(now_seconds()) {}
  void restart() { start_ = now_seconds(); }
  double elapsed() const { return now_seconds() - start_; }

 private:
  double start_;
};

}  // namespace dnc
