// Deterministic pseudo-random number generation (xoshiro256++).
//
// Matrix generators and tests need reproducible streams that are cheap to
// split; xoshiro256++ with SplitMix64 seeding provides both without the
// header weight of <random> engines in hot paths. Distribution helpers
// mirror LAPACK's dlarnv options.
#pragma once

#include <cstdint>

namespace dnc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in (-1, 1), matching dlarnv(idist=2).
  double uniform_sym();

  /// Standard normal via Box-Muller, matching dlarnv(idist=3).
  double normal();

  /// Uniform integer in [0, n).
  std::uint64_t uniform_below(std::uint64_t n);

  /// Derive an independent stream (for per-task generators).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dnc
