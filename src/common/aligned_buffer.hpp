// Grow-only cache-line-aligned scratch buffer.
//
// The packed-GEMM workspaces (and any other per-thread kernel scratch) need
// 64-byte alignment for vector loads and must not pay a malloc per call: a
// merge tree issues thousands of small panel GEMMs, and the seed profile
// showed the per-call std::vector allocations in blas::gemm on the hot
// path. Instances are meant to be `thread_local`, so each worker of the
// fork/join pool reuses one arena across every task it runs.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/error.hpp"

namespace dnc {

class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer() { std::free(data_); }

  /// Returns a 64-byte-aligned array of at least `n` elements of T (double
  /// by default; the precision-templated GEMM passes its Real). Contents
  /// are unspecified; previous pointers are invalidated when the buffer
  /// grows. Capacity is tracked in bytes so one arena serves both widths.
  template <typename T = double>
  T* reserve(std::size_t n) {
    const std::size_t need = n * sizeof(T);
    if (need > capacity_bytes_) {
      // Grow geometrically so alternating callers with slightly different
      // panel shapes do not reallocate on every call.
      std::size_t want = capacity_bytes_ + capacity_bytes_ / 2;
      if (want < need) want = need;
      std::free(data_);
      const std::size_t bytes = (want + kAlignment - 1) & ~(kAlignment - 1);
      data_ = std::aligned_alloc(kAlignment, bytes);
      if (data_ == nullptr) {
        capacity_bytes_ = 0;
        throw std::bad_alloc();
      }
      capacity_bytes_ = want;
    }
    return static_cast<T*>(data_);
  }

  /// Capacity in doubles (historical unit, kept for the existing tests).
  std::size_t capacity() const { return capacity_bytes_ / sizeof(double); }

 private:
  void* data_ = nullptr;
  std::size_t capacity_bytes_ = 0;
};

}  // namespace dnc
