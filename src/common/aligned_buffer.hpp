// Grow-only cache-line-aligned scratch buffer.
//
// The packed-GEMM workspaces (and any other per-thread kernel scratch) need
// 64-byte alignment for vector loads and must not pay a malloc per call: a
// merge tree issues thousands of small panel GEMMs, and the seed profile
// showed the per-call std::vector allocations in blas::gemm on the hot
// path. Instances are meant to be `thread_local`, so each worker of the
// fork/join pool reuses one arena across every task it runs.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>

#include "common/error.hpp"

namespace dnc {

class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  ~AlignedBuffer() { std::free(data_); }

  /// Returns a 64-byte-aligned array of at least `n` doubles. Contents are
  /// unspecified; previous pointers are invalidated when the buffer grows.
  double* reserve(std::size_t n) {
    if (n > capacity_) {
      // Grow geometrically so alternating callers with slightly different
      // panel shapes do not reallocate on every call.
      std::size_t want = capacity_ + capacity_ / 2;
      if (want < n) want = n;
      std::free(data_);
      const std::size_t bytes = (want * sizeof(double) + kAlignment - 1) & ~(kAlignment - 1);
      data_ = static_cast<double*>(std::aligned_alloc(kAlignment, bytes));
      if (data_ == nullptr) {
        capacity_ = 0;
        throw std::bad_alloc();
      }
      capacity_ = want;
    }
    return data_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace dnc
