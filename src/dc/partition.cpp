#include "dc/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dnc::dc {
namespace {

index_t build_rec(Plan& plan, index_t i0, index_t m, index_t minpart, int level) {
  if (m <= minpart || m <= 2) {
    plan.nodes.push_back(TreeNode{i0, m, -1, -1, 0, level});
    ++plan.leaf_count;
    plan.height = std::max(plan.height, level);
    return static_cast<index_t>(plan.nodes.size() - 1);
  }
  const index_t n1 = m / 2;
  const index_t s1 = build_rec(plan, i0, n1, minpart, level + 1);
  const index_t s2 = build_rec(plan, i0 + n1, m - n1, minpart, level + 1);
  plan.nodes.push_back(TreeNode{i0, m, s1, s2, n1, level});
  return static_cast<index_t>(plan.nodes.size() - 1);
}

}  // namespace

Plan build_plan(index_t n, index_t minpart) {
  DNC_REQUIRE(n >= 1, "build_plan: n >= 1");
  DNC_REQUIRE(minpart >= 1, "build_plan: minpart >= 1");
  Plan plan;
  plan.root = build_rec(plan, 0, n, minpart, 0);
  return plan;
}

}  // namespace dnc::dc
