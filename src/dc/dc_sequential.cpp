#include <algorithm>
#include <cmath>
#include <memory>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "blas/simd/kernels.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "dc/api.hpp"
#include "dc/driver_common.hpp"
#include "lapack/steqr.hpp"

namespace dnc::dc {
namespace detail {

template <typename Real>
bool solve_trivial(index_t n, Real* d, Real* e, MatrixT<Real>& v) {
  DNC_REQUIRE(n >= 0, "stedc: n must be >= 0");
  if (n > 2) return false;
  v.resize(n, n);
  if (n == 0) return true;
  // steqr handles n = 1, 2 directly (and sorts).
  lapack::steqr(lapack::CompZ::Identity, n, d, e, v.data(), std::max<index_t>(1, n));
  return true;
}

template <typename Real>
Real scale_problem(index_t n, Real* d, Real* e) {
  const Real orgnrm = blas::lanst_max(n, d, e);
  if (orgnrm == Real(0)) return Real(0);
  blas::lascl(n, 1, orgnrm, Real(1), d, n);
  if (n > 1) blas::lascl(n - 1, 1, orgnrm, Real(1), e, n);
  return orgnrm;
}

template <typename Real>
void unscale_eigenvalues(index_t n, Real* d, Real orgnrm) {
  if (orgnrm != Real(0) && orgnrm != Real(1)) blas::lascl(n, 1, Real(1), orgnrm, d, n);
}

template <typename Real>
void adjust_boundaries(const Plan& plan, Real* d, const Real* e) {
  for (const TreeNode& node : plan.nodes) {
    if (node.leaf()) continue;
    const index_t split = node.i0 + node.n1 - 1;  // coupling e[split]
    const Real b = std::fabs(e[split]);
    d[split] -= b;
    d[split + 1] -= b;
  }
}

template <typename Real>
void solve_leaf(const TreeNode& node, Real* d, Real* e, MatrixT<Real>& v, index_t* perm) {
  lapack::steqr(lapack::CompZ::Identity, node.m, d + node.i0,
                node.m > 1 ? e + node.i0 : nullptr,
                v.data() + node.i0 + node.i0 * v.ld(), v.ld());
  for (index_t r = 0; r < node.m; ++r) perm[node.i0 + r] = r;
}

template <typename Real>
void sort_eigenpairs(index_t n, Real* d, MatrixT<Real>& v, const index_t* perm,
                     WorkspaceT<Real>& ws) {
  std::vector<Real> dsorted(n);
  for (index_t r = 0; r < n; ++r) {
    dsorted[r] = d[perm[r]];
    blas::copy(n, v.data() + perm[r] * v.ld(), ws.qwork.data() + r * ws.qwork.ld());
  }
  blas::copy(n, dsorted.data(), d);
  blas::lacpy(n, n, ws.qwork.data(), ws.qwork.ld(), v.data(), v.ld());
}

template <typename Real>
std::vector<std::unique_ptr<MergeContextT<Real>>> make_contexts(const Plan& plan,
                                                                const Real* e, index_t nb) {
  std::vector<std::unique_ptr<MergeContextT<Real>>> ctxs(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) continue;
    ctxs[i] = std::make_unique<MergeContextT<Real>>(node, e, nb);
  }
  return ctxs;
}

template <typename Real>
void fill_stats(const Plan& plan,
                const std::vector<std::unique_ptr<MergeContextT<Real>>>& ctxs,
                SolveStats* stats) {
  if (stats == nullptr) return;
  stats->merges = 0;
  stats->leaves = plan.leaf_count;
  index_t total_m = 0, total_defl = 0;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (!ctxs[i]) continue;
    ++stats->merges;
    total_m += ctxs[i]->node.m;
    total_defl += ctxs[i]->node.m - ctxs[i]->defl.k;
    if (static_cast<index_t>(i) == plan.root) stats->root_k = ctxs[i]->defl.k;
  }
  stats->deflation_ratio = total_m > 0 ? static_cast<double>(total_defl) / total_m : 0.0;
}

template <typename Real>
void finish_report(const obs::SolveScope& scope,
                   const std::vector<std::unique_ptr<MergeContextT<Real>>>& ctxs, index_t n,
                   int threads, double seconds, const rt::Trace* trace, SolveStats* stats,
                   Precision prec) {
  const bool want_export = obs::trace_export_requested() || obs::report_export_requested();
  if (stats == nullptr && !want_export) return;
  obs::SolveReport local;
  obs::SolveReport& rep = stats ? stats->report : local;
  // The dispatched kernel table is authoritative (DNC_SIMD and in-process
  // overrides included); the scope would otherwise fall back to the env.
  rep.simd_isa = blas::simd::kernels_t<Real>().name;
  rep.precision = precision_name(prec);
  scope.finish(rep, n, threads, seconds, trace);
  // Record whether (and which) DNC_TUNE_TABLE entry configured this solve.
  tune::stamp_report(rep);
  // Workspace telemetry: the solve-wide scratch (Workspace: n x n qwork +
  // 2n x n xwork), the n x n eigenvector output, and the per-merge contexts
  // (z + zhat + the m x npanels partial-product matrix each). All of it is
  // allocated at the working precision, so fp32 solves report half the
  // fp64 bytes.
  rep.memory.workspace_bytes =
      3u * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * sizeof(Real);
  rep.memory.output_bytes =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * sizeof(Real);
  rep.memory.context_bytes = 0;  // accumulated below; keep per-solve on report reuse
  for (const auto& ctx : ctxs) {
    if (!ctx) continue;
    const std::uint64_t m = static_cast<std::uint64_t>(ctx->node.m);
    rep.memory.context_bytes +=
        (2u * m + m * static_cast<std::uint64_t>(ctx->npanels)) * sizeof(Real);
  }
  rep.merges.clear();  // reused reports must not accumulate merge records
  for (const auto& ctx : ctxs) {
    if (!ctx) continue;
    obs::MergeRecord mr;
    mr.level = ctx->node.level;
    mr.m = ctx->node.m;
    mr.n1 = ctx->node.n1;
    mr.k = ctx->defl.k;
    for (int t = 0; t < 4; ++t) mr.ctot[t] = ctx->defl.ctot[t];
    mr.t_end = ctx->t_deflate_end;
    rep.merges.push_back(mr);
  }
  if (want_export) obs::export_solve_artifacts(rep, trace);
}

#define DNC_INSTANTIATE_DRIVER_COMMON(Real)                                                  \
  template bool solve_trivial<Real>(index_t, Real*, Real*, MatrixT<Real>&);                  \
  template Real scale_problem<Real>(index_t, Real*, Real*);                                  \
  template void unscale_eigenvalues<Real>(index_t, Real*, Real);                             \
  template void adjust_boundaries<Real>(const Plan&, Real*, const Real*);                    \
  template void solve_leaf<Real>(const TreeNode&, Real*, Real*, MatrixT<Real>&, index_t*);   \
  template void sort_eigenpairs<Real>(index_t, Real*, MatrixT<Real>&, const index_t*,        \
                                      WorkspaceT<Real>&);                                    \
  template std::vector<std::unique_ptr<MergeContextT<Real>>> make_contexts<Real>(            \
      const Plan&, const Real*, index_t);                                                    \
  template void fill_stats<Real>(                                                            \
      const Plan&, const std::vector<std::unique_ptr<MergeContextT<Real>>>&, SolveStats*);   \
  template void finish_report<Real>(const obs::SolveScope&,                                  \
                                    const std::vector<std::unique_ptr<MergeContextT<Real>>>&, \
                                    index_t, int, double, const rt::Trace*, SolveStats*,     \
                                    Precision)

DNC_INSTANTIATE_DRIVER_COMMON(double);
DNC_INSTANTIATE_DRIVER_COMMON(float);

#undef DNC_INSTANTIATE_DRIVER_COMMON

}  // namespace detail

namespace {

template <typename Real>
void stedc_sequential_impl(index_t n, Real* d, Real* e, MatrixT<Real>& v, const Options& opt,
                           SolveStats* stats) {
  Stopwatch sw;
  obs::SolveScope scope("sequential");
  if (stats) *stats = SolveStats{};
  if (detail::solve_trivial(n, d, e, v)) {
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }
  v.resize(n, n);
  v.fill(Real(0));

  const Real orgnrm = detail::scale_problem(n, d, e);
  if (orgnrm == Real(0)) {
    // Zero matrix: eigenvalues are the (zero) diagonal, vectors identity.
    blas::laset(n, n, Real(0), Real(1), v.data(), v.ld());
    std::sort(d, d + n);
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }

  const Plan plan = build_plan(n, opt.minpart);
  WorkspaceT<Real> ws(n);
  auto ctxs = detail::make_contexts(plan, e, opt.nb);
  std::vector<index_t> perm(n);

  detail::adjust_boundaries(plan, d, e);
  // plan.nodes is post-order: every node appears after its sons.
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) {
      detail::solve_leaf(node, d, e, v, perm.data());
    } else {
      merge_sequential(*ctxs[i], v, ws, d + node.i0, perm.data() + node.i0, opt.nb);
    }
  }
  detail::sort_eigenpairs(n, d, v, perm.data() + plan.nodes[plan.root].i0, ws);
  detail::unscale_eigenvalues(n, d, orgnrm);

  detail::fill_stats(plan, ctxs, stats);
  if (stats) {
    stats->n = n;
    stats->seconds = sw.elapsed();
  }
  detail::finish_report(scope, ctxs, n, /*threads=*/1, sw.elapsed(), nullptr, stats,
                        opt.precision);
}

}  // namespace

void stedc_sequential(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                      SolveStats* stats) {
  Options topt = opt;
  tune::apply_env_tuning(topt, n);
  detail::run_with_precision(n, d, e, v, topt, stats,
                             [&](auto* dd, auto* ee, auto& vv, SolveStats* st) {
                               stedc_sequential_impl(n, dd, ee, vv, topt, st);
                             });
}

}  // namespace dnc::dc
