#include <algorithm>
#include <cmath>
#include <memory>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "blas/simd/kernels.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "dc/api.hpp"
#include "dc/driver_common.hpp"
#include "lapack/steqr.hpp"

namespace dnc::dc {
namespace detail {

bool solve_trivial(index_t n, double* d, double* e, Matrix& v) {
  DNC_REQUIRE(n >= 0, "stedc: n must be >= 0");
  if (n > 2) return false;
  v.resize(n, n);
  if (n == 0) return true;
  // steqr handles n = 1, 2 directly (and sorts).
  lapack::steqr(lapack::CompZ::Identity, n, d, e, v.data(), std::max<index_t>(1, n));
  return true;
}

double scale_problem(index_t n, double* d, double* e) {
  const double orgnrm = blas::lanst_max(n, d, e);
  if (orgnrm == 0.0) return 0.0;
  blas::lascl(n, 1, orgnrm, 1.0, d, n);
  if (n > 1) blas::lascl(n - 1, 1, orgnrm, 1.0, e, n);
  return orgnrm;
}

void unscale_eigenvalues(index_t n, double* d, double orgnrm) {
  if (orgnrm != 0.0 && orgnrm != 1.0) blas::lascl(n, 1, 1.0, orgnrm, d, n);
}

void adjust_boundaries(const Plan& plan, double* d, const double* e) {
  for (const TreeNode& node : plan.nodes) {
    if (node.leaf()) continue;
    const index_t split = node.i0 + node.n1 - 1;  // coupling e[split]
    const double b = std::fabs(e[split]);
    d[split] -= b;
    d[split + 1] -= b;
  }
}

void solve_leaf(const TreeNode& node, double* d, double* e, Matrix& v, index_t* perm) {
  lapack::steqr(lapack::CompZ::Identity, node.m, d + node.i0,
                node.m > 1 ? e + node.i0 : nullptr,
                v.data() + node.i0 + node.i0 * v.ld(), v.ld());
  for (index_t r = 0; r < node.m; ++r) perm[node.i0 + r] = r;
}

void sort_eigenpairs(index_t n, double* d, Matrix& v, const index_t* perm, Workspace& ws) {
  std::vector<double> dsorted(n);
  for (index_t r = 0; r < n; ++r) {
    dsorted[r] = d[perm[r]];
    blas::copy(n, v.data() + perm[r] * v.ld(), ws.qwork.data() + r * ws.qwork.ld());
  }
  blas::copy(n, dsorted.data(), d);
  blas::lacpy(n, n, ws.qwork.data(), ws.qwork.ld(), v.data(), v.ld());
}

std::vector<std::unique_ptr<MergeContext>> make_contexts(const Plan& plan, const double* e,
                                                         index_t nb) {
  std::vector<std::unique_ptr<MergeContext>> ctxs(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) continue;
    ctxs[i] = std::make_unique<MergeContext>(node, e, nb);
  }
  return ctxs;
}

void fill_stats(const Plan& plan, const std::vector<std::unique_ptr<MergeContext>>& ctxs,
                SolveStats* stats) {
  if (stats == nullptr) return;
  stats->merges = 0;
  stats->leaves = plan.leaf_count;
  index_t total_m = 0, total_defl = 0;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (!ctxs[i]) continue;
    ++stats->merges;
    total_m += ctxs[i]->node.m;
    total_defl += ctxs[i]->node.m - ctxs[i]->defl.k;
    if (static_cast<index_t>(i) == plan.root) stats->root_k = ctxs[i]->defl.k;
  }
  stats->deflation_ratio = total_m > 0 ? static_cast<double>(total_defl) / total_m : 0.0;
}

void finish_report(const obs::SolveScope& scope,
                   const std::vector<std::unique_ptr<MergeContext>>& ctxs, index_t n,
                   int threads, double seconds, const rt::Trace* trace, SolveStats* stats) {
  const bool want_export = obs::trace_export_requested() || obs::report_export_requested();
  if (stats == nullptr && !want_export) return;
  obs::SolveReport local;
  obs::SolveReport& rep = stats ? stats->report : local;
  // The dispatched kernel table is authoritative (DNC_SIMD and in-process
  // overrides included); the scope would otherwise fall back to the env.
  rep.simd_isa = blas::simd::kernels().name;
  scope.finish(rep, n, threads, seconds, trace);
  // Workspace telemetry: the solve-wide scratch (Workspace: n x n qwork +
  // 2n x n xwork), the n x n eigenvector output, and the per-merge contexts
  // (z + zhat + the m x npanels partial-product matrix each).
  rep.memory.workspace_bytes =
      3u * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * sizeof(double);
  rep.memory.output_bytes =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) * sizeof(double);
  rep.memory.context_bytes = 0;  // accumulated below; keep per-solve on report reuse
  for (const auto& ctx : ctxs) {
    if (!ctx) continue;
    const std::uint64_t m = static_cast<std::uint64_t>(ctx->node.m);
    rep.memory.context_bytes +=
        (2u * m + m * static_cast<std::uint64_t>(ctx->npanels)) * sizeof(double);
  }
  for (const auto& ctx : ctxs) {
    if (!ctx) continue;
    obs::MergeRecord mr;
    mr.level = ctx->node.level;
    mr.m = ctx->node.m;
    mr.n1 = ctx->node.n1;
    mr.k = ctx->defl.k;
    for (int t = 0; t < 4; ++t) mr.ctot[t] = ctx->defl.ctot[t];
    mr.t_end = ctx->t_deflate_end;
    rep.merges.push_back(mr);
  }
  if (want_export) obs::export_solve_artifacts(rep, trace);
}

}  // namespace detail

void stedc_sequential(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                      SolveStats* stats) {
  Stopwatch sw;
  obs::SolveScope scope("sequential");
  if (stats) *stats = SolveStats{};
  if (detail::solve_trivial(n, d, e, v)) {
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }
  v.resize(n, n);
  v.fill(0.0);

  const double orgnrm = detail::scale_problem(n, d, e);
  if (orgnrm == 0.0) {
    // Zero matrix: eigenvalues are the (zero) diagonal, vectors identity.
    blas::laset(n, n, 0.0, 1.0, v.data(), v.ld());
    std::sort(d, d + n);
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }

  const Plan plan = build_plan(n, opt.minpart);
  Workspace ws(n);
  auto ctxs = detail::make_contexts(plan, e, opt.nb);
  std::vector<index_t> perm(n);

  detail::adjust_boundaries(plan, d, e);
  // plan.nodes is post-order: every node appears after its sons.
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) {
      detail::solve_leaf(node, d, e, v, perm.data());
    } else {
      merge_sequential(*ctxs[i], v, ws, d + node.i0, perm.data() + node.i0, opt.nb);
    }
  }
  detail::sort_eigenpairs(n, d, v, perm.data() + plan.nodes[plan.root].i0, ws);
  detail::unscale_eigenvalues(n, d, orgnrm);

  detail::fill_stats(plan, ctxs, stats);
  if (stats) {
    stats->n = n;
    stats->seconds = sw.elapsed();
  }
  detail::finish_report(scope, ctxs, n, /*threads=*/1, sw.elapsed(), nullptr, stats);
}

}  // namespace dnc::dc
