// Autotuning table: persisted results of a `dnc_tune` sweep, consulted by
// the drivers at solve time.
//
// The closing piece of the PR 9 loop: `dnc_tune` measures which panel
// width (nb) and scheduler policy win for a given (n, family, precision,
// workers) cell and writes a versioned JSON table; a solve run with
// DNC_TUNE_TABLE=<path> looks up the nearest-n entry matching its
// precision and worker count and fills in any Options knob the caller
// left at its default. Explicit Options always win, and an explicit
// DNC_SCHED outranks the table's policy choice (both are deliberate user
// decisions; the table only replaces built-in defaults).
//
// Table format (version 1):
//   { "version": 1,
//     "entries": [ { "n": 600, "family": "type4", "precision": "f64",
//                    "workers": 4, "nb": 96, "sched": "steal",
//                    "makespan": 0.0123, "how": "solve-sweep" }, ... ] }
// "family" is provenance (which Table III generator produced the tuning
// matrix) -- a solve cannot know its matrix family, so lookups ignore it.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace dnc::obs {
struct SolveReport;
}

namespace dnc::dc {
struct Options;

namespace tune {

struct Entry {
  long n = 0;             ///< problem size the cell was tuned at
  std::string family;     ///< provenance label (e.g. "type4"); not matched
  std::string precision;  ///< "f64"/"f32"/"f32refine"; "" matches any
  int workers = 0;        ///< tuned worker count; 0 matches any
  index_t nb = 0;         ///< winning panel width; 0 = no recommendation
  std::string sched;      ///< winning policy "central"/"steal"; "" = none
  double makespan = 0.0;  ///< measured seconds of the winning config
  std::string how;        ///< "solve-sweep" / "trace-sweep"
};

struct Table {
  int version = 1;
  std::vector<Entry> entries;
  std::string source;  ///< path the table was loaded from ("" = in-memory)
};

/// Parses a version-1 table. Unknown versions and malformed JSON fail with
/// a message in *err; unknown per-entry keys are ignored (forward compat).
bool load_table(const std::string& path, Table& out, std::string* err);
bool parse_table(const std::string& json_text, Table& out, std::string* err);

/// Serialises the table (stable key order, one entry per line).
std::string table_to_json(const Table& t);

/// Best entry for a solve of size n at the given precision/worker count:
/// candidates must match precision and workers (entry "" / 0 are
/// wildcards), then nearest n wins, ties to the smaller n. Null when no
/// candidate matches.
const Entry* lookup(const Table& t, long n, const std::string& precision, int workers);

/// One-line rendering of an entry ("n=600 family=type4 nb=96 sched=steal"),
/// used for the SolveReport stamp and /healthz.
std::string entry_label(const Entry& e);

/// Solve-time hook, called by every driver entry point: when DNC_TUNE_TABLE
/// names a readable table, looks up (n, opt.precision, opt.threads) and
/// overrides opt.nb / opt.sched IF the caller left them at their built-in
/// defaults (nb == 128; sched == the built-in default with DNC_SCHED
/// unset). Returns true when at least one knob was changed OR the entry
/// matched (so the report records the consultation either way); records a
/// pending stamp that the next finish_report() picks up. The table is
/// cached per path and reloaded when the file's mtime/size changes.
bool apply_env_tuning(Options& opt, index_t n);

/// Transfers the pending consultation (if any) of this thread's last
/// apply_env_tuning() onto the report: sets tuned/tune_source/tune_entry.
void stamp_report(obs::SolveReport& rep);

/// Entry label of the most recent consultation in this process ("" when no
/// tuned solve ran yet). Feeds /healthz.
std::string last_applied_entry();

}  // namespace tune
}  // namespace dnc::dc
