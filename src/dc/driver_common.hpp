// Shared scaffolding for the D&C drivers: problem scaling, boundary
// adjustment of the partition, leaf solves, final sorting. Internal header.
#pragma once

#include <vector>

#include "dc/api.hpp"
#include "dc/merge.hpp"

namespace dnc::dc::detail {

/// Scheduling priority of a D&C task: deeper merge-tree levels outrank
/// shallower ones (leaves are deepest, the root is level 0) so subtrees
/// retire and unlock their joins early, and within a level the join
/// kernels (Deflate, ReduceW -- the serial bottleneck of every merge)
/// outrank the panel fan-out so the critical path drains first. The result
/// fits the scheduler's [0, 63] priority buckets.
inline int task_priority(int level, bool join) {
  if (level < 0) level = 0;
  if (level > 30) level = 30;
  return 2 * level + (join ? 1 : 0);
}

/// Trivial sizes handled without the machinery. Returns true if done.
bool solve_trivial(index_t n, double* d, double* e, Matrix& v);

/// Scales d/e so the norm is 1 (dstedc's orgnrm scaling); returns the
/// original norm (0 means the matrix was zero and nothing was scaled).
double scale_problem(index_t n, double* d, double* e);

/// Undo scale_problem on the eigenvalues.
void unscale_eigenvalues(index_t n, double* d, double orgnrm);

/// Applies Cuppen's boundary modification: for every internal node, the
/// two diagonal entries adjacent to the split lose |e_split| (see
/// DESIGN.md for why the absolute value is correct for both signs).
void adjust_boundaries(const Plan& plan, double* d, const double* e);

/// Solves one leaf with steqr into the node's block of v; perm gets the
/// identity (steqr sorts ascending).
void solve_leaf(const TreeNode& node, double* d, double* e, Matrix& v, index_t* perm);

/// Applies the root permutation: d and the columns of v are reordered
/// ascending using ws.qwork as scratch.
void sort_eigenpairs(index_t n, double* d, Matrix& v, const index_t* perm, Workspace& ws);

/// Builds the merge contexts for every internal node of the plan, indexed
/// like plan.nodes (leaves get nullptr).
std::vector<std::unique_ptr<MergeContext>> make_contexts(const Plan& plan, const double* e,
                                                         index_t nb);

/// Accumulates deflation statistics over the contexts.
void fill_stats(const Plan& plan, const std::vector<std::unique_ptr<MergeContext>>& ctxs,
                SolveStats* stats);

/// Observability epilogue shared by all drivers: finishes the SolveReport
/// (counter deltas from `scope`, per-merge deflation records from the
/// contexts, scheduler metrics from `trace` when non-null) into
/// stats->report -- or a local report when stats is null -- and writes the
/// $DNC_TRACE / $DNC_REPORT artifacts when those are requested.
void finish_report(const obs::SolveScope& scope,
                   const std::vector<std::unique_ptr<MergeContext>>& ctxs, index_t n,
                   int threads, double seconds, const rt::Trace* trace, SolveStats* stats);

}  // namespace dnc::dc::detail
