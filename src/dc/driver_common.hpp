// Shared scaffolding for the D&C drivers: problem scaling, boundary
// adjustment of the partition, leaf solves, final sorting, and the
// precision dispatch that narrows an fp64 problem to the fp32 fast path
// (and widens + optionally refines the results). Internal header.
#pragma once

#include <vector>

#include "dc/api.hpp"
#include "dc/merge.hpp"
#include "dc/tune.hpp"
#include "lapack/refine.hpp"
#include "obs/health.hpp"
#include "obs/telemetry.hpp"

namespace dnc::dc::detail {

/// Stamps the solve parameters a tuning sweep needs onto the trace before
/// export: problem size, panel width, and working precision become
/// meta_counters/meta_strings so `dnc_tune` can group recorded traces into
/// (n, precision, workers) cells without side-channel bookkeeping.
inline void stamp_trace_meta(rt::Trace& trace, index_t n, const Options& opt) {
  trace.meta_counters.emplace_back("n", static_cast<double>(n));
  trace.meta_counters.emplace_back("nb", static_cast<double>(opt.nb));
  trace.meta_strings.emplace_back("precision", precision_name(opt.precision));
}

/// Scheduling priority of a D&C task: deeper merge-tree levels outrank
/// shallower ones (leaves are deepest, the root is level 0) so subtrees
/// retire and unlock their joins early, and within a level the join
/// kernels (Deflate, ReduceW -- the serial bottleneck of every merge)
/// outrank the panel fan-out so the critical path drains first. The result
/// fits the scheduler's [0, 63] priority buckets.
inline int task_priority(int level, bool join) {
  if (level < 0) level = 0;
  if (level > 30) level = 30;
  return 2 * level + (join ? 1 : 0);
}

/// Trivial sizes handled without the machinery. Returns true if done.
template <typename Real>
bool solve_trivial(index_t n, Real* d, Real* e, MatrixT<Real>& v);

/// Scales d/e so the norm is 1 (dstedc's orgnrm scaling); returns the
/// original norm (0 means the matrix was zero and nothing was scaled).
template <typename Real>
Real scale_problem(index_t n, Real* d, Real* e);

/// Undo scale_problem on the eigenvalues.
template <typename Real>
void unscale_eigenvalues(index_t n, Real* d, Real orgnrm);

/// Applies Cuppen's boundary modification: for every internal node, the
/// two diagonal entries adjacent to the split lose |e_split| (see
/// DESIGN.md for why the absolute value is correct for both signs).
template <typename Real>
void adjust_boundaries(const Plan& plan, Real* d, const Real* e);

/// Solves one leaf with steqr into the node's block of v; perm gets the
/// identity (steqr sorts ascending).
template <typename Real>
void solve_leaf(const TreeNode& node, Real* d, Real* e, MatrixT<Real>& v, index_t* perm);

/// Applies the root permutation: d and the columns of v are reordered
/// ascending using ws.qwork as scratch.
template <typename Real>
void sort_eigenpairs(index_t n, Real* d, MatrixT<Real>& v, const index_t* perm,
                     WorkspaceT<Real>& ws);

/// Builds the merge contexts for every internal node of the plan, indexed
/// like plan.nodes (leaves get nullptr).
template <typename Real>
std::vector<std::unique_ptr<MergeContextT<Real>>> make_contexts(const Plan& plan,
                                                                const Real* e, index_t nb);

/// Accumulates deflation statistics over the contexts.
template <typename Real>
void fill_stats(const Plan& plan,
                const std::vector<std::unique_ptr<MergeContextT<Real>>>& ctxs,
                SolveStats* stats);

/// Observability epilogue shared by all drivers: finishes the SolveReport
/// (counter deltas from `scope`, per-merge deflation records from the
/// contexts, scheduler metrics from `trace` when non-null) into
/// stats->report -- or a local report when stats is null -- and writes the
/// $DNC_TRACE / $DNC_REPORT artifacts when those are requested. `prec`
/// stamps the solve precision on the report; the byte accounting scales
/// with sizeof(Real).
template <typename Real>
void finish_report(const obs::SolveScope& scope,
                   const std::vector<std::unique_ptr<MergeContextT<Real>>>& ctxs, index_t n,
                   int threads, double seconds, const rt::Trace* trace, SolveStats* stats,
                   Precision prec);

/// Precision dispatch + always-on telemetry epilogue shared by the public
/// driver entry points. `solve` is a generic callable
/// solve(Real* d, Real* e, MatrixT<Real>& v, SolveStats* st) running the
/// driver body at the deduced precision; `st` is the caller's stats or, when
/// the caller passed none but DNC_METRICS/DNC_FLIGHT want per-solve data, a
/// local substitute (the report has to exist for telemetry to record it).
///
///   F64           solve(d, e, v, st) on the caller's buffers, unchanged.
///   F32           narrow d/e to fp32, solve, widen eigenvalues + vectors.
///   F32RefineF64  as F32, but the ORIGINAL fp64 tridiagonal is saved
///                 before the solve destroys it (scaling + Cuppen boundary
///                 adjustment) and every returned eigenpair is polished to
///                 fp64-grade residuals by Rayleigh-quotient iteration.
///
/// After the solve (and refinement), the health probe -- armed with the
/// fp64 tridiagonal snapshotted on entry -- checks sampled eigenpairs, and
/// the report goes to the metrics registry / flight recorder. With both
/// gates off this adds two relaxed loads to a solve.
template <typename SolveFn>
void run_with_precision(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                        SolveStats* stats, SolveFn&& solve) {
  const bool telemetry = obs::solve_telemetry_wanted() && n > 0;
  // A reused SolveStats must not leak the previous solve's refinement
  // epilogue into a run that never refines (the F64/F32 paths below skip it).
  if (stats) stats->refine = lapack::RefineReport{};
  SolveStats local;
  SolveStats* st = stats ? stats : (telemetry ? &local : nullptr);
  obs::HealthProbe probe;
  if (telemetry) probe.arm(n, d, e);
  if (opt.precision == Precision::F64 || n <= 0) {
    solve(d, e, v, st);
  } else {
    std::vector<double> d64, e64;
    if (opt.precision == Precision::F32RefineF64) {
      d64.assign(d, d + n);
      if (n > 1) e64.assign(e, e + n - 1);
    }
    std::vector<float> d32(d, d + n);
    std::vector<float> e32;
    if (n > 1) e32.assign(e, e + n - 1);
    MatrixT<float> v32;
    solve(d32.data(), e32.data(), v32, st);
    for (index_t i = 0; i < n; ++i) d[i] = static_cast<double>(d32[i]);
    v.resize(v32.rows(), v32.cols());
    for (index_t j = 0; j < v32.cols(); ++j) {
      const float* src = v32.data() + j * v32.ld();
      double* dst = v.data() + j * v.ld();
      for (index_t i = 0; i < v32.rows(); ++i) dst[i] = static_cast<double>(src[i]);
    }
    if (opt.precision == Precision::F32RefineF64) {
      const lapack::RefineReport rr = lapack::refine_eigenpairs(
          n, d64.data(), e64.data(), d, v.data(), v.ld(), v.cols());
      if (st) st->refine = rr;
    }
  }
  if (telemetry && st) {
    // d now holds the ascending eigenvalues, v the eigenvectors.
    st->report.health = probe.evaluate(d, v.data(), v.ld(), v.cols());
    st->report.has_health = st->report.health.sampled_columns > 0;
    obs::record_solve_telemetry(st->report,
                                st->report.has_scheduler ? &st->trace : nullptr);
  }
}

}  // namespace dnc::dc::detail
