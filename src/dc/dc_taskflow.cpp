// The paper's contribution: the D&C tridiagonal eigensolver expressed as a
// sequential task flow, scheduled out-of-order by the QUARK-like runtime.
//
// Task structure per merge (Algorithm 1 / Figure 2 of the paper):
//
//   Compute deflation                       (join, INOUT node block)
//   per panel p: PermuteV -> LAED4 -> ComputeLocalW   (GATHERV block,
//                                            chained through a panel handle)
//   ReduceW                                 (join, INOUT node block)
//   per panel p: CopyBackDeflated -> ComputeVect -> UpdateVect
//
// Independent merges (different branches of the tree) share no handles and
// therefore overlap freely; merges on the same branch are ordered through
// the sons' block handles. With opt.extra_workspace the PermuteV/LAED4 and
// CopyBack/ComputeVect pairs use distinct panel handles and run
// concurrently, the paper's extra-workspace option.
#include <memory>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/timer.hpp"
#include "dc/api.hpp"
#include "dc/driver_common.hpp"
#include "dc/task_kinds.hpp"
#include "runtime/dot.hpp"
#include "runtime/engine.hpp"

namespace dnc::dc {
namespace {

template <typename Real>
void stedc_taskflow_impl(index_t n, Real* d, Real* e, MatrixT<Real>& v, const Options& opt,
                         SolveStats* stats, const std::vector<int>& simulate_workers) {
  Stopwatch sw;
  obs::SolveScope scope("taskflow");
  if (stats) *stats = SolveStats{};
  if (detail::solve_trivial(n, d, e, v)) {
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }
  v.resize(n, n);

  const Plan plan = build_plan(n, opt.minpart);
  WorkspaceT<Real> ws(n);
  auto ctxs = detail::make_contexts(plan, e, opt.nb);
  std::vector<index_t> perm(n);
  const index_t nb = opt.nb;

  rt::TaskGraph graph;
  const Kinds K(graph);
  // One handle per tree node (its eigenvector block + eigenvalue range),
  // one or two per (node, panel) for intra-panel chaining, one for the
  // scale/partition prologue, one per sort panel.
  rt::Handle hT("T");
  std::vector<rt::Handle> hblock(plan.nodes.size());
  std::vector<std::vector<rt::Handle>> hpanel(plan.nodes.size());
  std::vector<std::vector<rt::Handle>> hpanel2(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (ctxs[i]) {
      hpanel[i].resize(ctxs[i]->npanels);
      if (opt.extra_workspace) hpanel2[i].resize(ctxs[i]->npanels);
    }
  }
  const index_t nsortpanels = (n + nb - 1) / nb;
  std::vector<rt::Handle> hsort(nsortpanels);

  Real orgnrm = 0;
  std::vector<Real> dsorted(n);

  rt::Runtime runtime(graph, opt.threads, opt.sched);

  // --- prologue ---
  graph.submit(K.scale, [&, n] { orgnrm = detail::scale_problem(n, d, e); },
               {{&hT, rt::Access::InOut}});
  graph.submit(K.partition, [&] { detail::adjust_boundaries(plan, d, e); },
               {{&hT, rt::Access::InOut}});
  // Zero-fill V by column panels (the LASET tasks of the paper's Table II).
  for (index_t p = 0; p < nsortpanels; ++p) {
    graph.submit(K.laset,
                 [&, p, nb, n] {
                   const index_t j0 = p * nb;
                   const index_t w = std::min(nb, n - j0);
                   blas::laset(n, w, Real(0), Real(0), v.data() + j0 * v.ld(), v.ld());
                 },
                 {{&hT, rt::Access::GatherV}});
  }

  // --- leaves and merges, bottom-up (post-order submission) ---
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) {
      graph
          .submit(K.stedc, [&, node] { detail::solve_leaf(node, d, e, v, perm.data()); },
                  {{&hT, rt::Access::In}, {&hblock[i], rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m);
      continue;
    }
    MergeContextT<Real>* ctx = ctxs[i].get();
    const index_t i0 = node.i0;
    graph
        .submit(K.deflate,
                [&, ctx, i0] {
                  MatrixViewT<Real> qb = ctx->qblock(v);
                  run_deflation(*ctx, qb, d + i0, perm.data() + i0);
                },
                {{&hblock[node.son1], rt::Access::InOut},
                 {&hblock[node.son2], rt::Access::InOut},
                 {&hblock[i], rt::Access::InOut}},
                detail::task_priority(node.level, true))
        ->annotate(node.level, node.m);

    for (index_t p = 0; p < ctx->npanels; ++p) {
      const index_t j0 = p * nb;
      const index_t j1 = std::min(j0 + nb, node.m);
      rt::Handle* hp = &hpanel[i][p];
      rt::Handle* hp2 = opt.extra_workspace ? &hpanel2[i][p] : hp;
      graph
          .submit(K.permute,
                  [&, ctx, j0, j1] {
                    permute_panel(ctx->defl, ctx->qblock(v), ctx->w1(ws), ctx->w2(ws),
                                  ctx->wdefl(ws), j0, j1);
                  },
                  {{&hblock[i], rt::Access::GatherV}, {hp, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
      graph
          .submit(K.laed4,
                  [&, ctx, i0, j0, j1] {
                    secular_solve_panel(ctx->defl, j0, j1, d + i0, ctx->deltam(ws));
                  },
                  {{&hblock[i], rt::Access::GatherV}, {hp2, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
      graph
          .submit(K.localw,
                  [&, ctx, p, j0, j1] {
                    zhat_local_panel(ctx->defl, ctx->deltam(ws), j0, j1,
                                     ctx->wparts.data() + p * ctx->wparts.ld());
                  },
                  {{&hblock[i], rt::Access::GatherV},
                   {hp, rt::Access::InOut},
                   {hp2, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
    }
    graph
        .submit(K.reducew,
                [&, ctx, i0] {
                  zhat_reduce(ctx->defl, ctx->wparts.view(), ctx->npanels, ctx->zhat.data());
                  finalize_order(*ctx, d + i0, perm.data() + i0);
                },
                {{&hblock[i], rt::Access::InOut}},
                detail::task_priority(node.level, true))
        ->annotate(node.level, node.m);
    for (index_t p = 0; p < ctx->npanels; ++p) {
      const index_t j0 = p * nb;
      const index_t j1 = std::min(j0 + nb, node.m);
      rt::Handle* hp = &hpanel[i][p];
      rt::Handle* hp2 = opt.extra_workspace ? &hpanel2[i][p] : hp;
      graph
          .submit(K.copyback,
                  [&, ctx, j0, j1] {
                    copyback_panel(ctx->defl, ctx->wdefl(ws), j0, j1, ctx->qblock(v));
                  },
                  {{&hblock[i], rt::Access::GatherV}, {hp, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
      graph
          .submit(K.computevect,
                  [&, ctx, j0, j1] {
                    secular_vectors_panel(ctx->defl, ctx->deltam(ws), ctx->zhat.data(), j0,
                                          j1, ctx->smat(ws));
                  },
                  {{&hblock[i], rt::Access::GatherV}, {hp2, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
      graph
          .submit(K.updatevect,
                  [&, ctx, j0, j1] {
                    update_vectors_panel(ctx->defl, ctx->w1(ws), ctx->w2(ws), ctx->smat(ws),
                                         j0, j1, ctx->qblock(v));
                  },
                  {{&hblock[i], rt::Access::GatherV},
                   {hp, rt::Access::InOut},
                   {hp2, rt::Access::InOut}},
                  detail::task_priority(node.level, false))
          ->annotate(node.level, node.m, p);
    }
  }

  // --- final sort: gather columns in ascending-eigenvalue order into the
  // workspace, then copy back (two GATHERV phases around joins). The
  // leading join closes the root merge's GATHERV group -- without it the
  // sort tasks would enter that group and overlap the last UpdateVect.
  const index_t root = plan.root;
  graph.submit(K.sort, [] {}, {{&hblock[root], rt::Access::InOut}});
  for (index_t p = 0; p < nsortpanels; ++p) {
    graph.submit(K.sort,
                 [&, p, nb, n] {
                   const index_t r1 = std::min(p * nb + nb, n);
                   for (index_t r = p * nb; r < r1; ++r) {
                     dsorted[r] = d[perm[r]];
                     blas::copy(n, v.data() + perm[r] * v.ld(),
                                ws.qwork.data() + r * ws.qwork.ld());
                   }
                 },
                 {{&hblock[root], rt::Access::GatherV}, {&hsort[p], rt::Access::InOut}});
  }
  graph.submit(K.sort, [&, n] { blas::copy(n, dsorted.data(), d); },
               {{&hblock[root], rt::Access::InOut}});
  for (index_t p = 0; p < nsortpanels; ++p) {
    graph.submit(K.sort,
                 [&, p, nb, n] {
                   const index_t j0 = p * nb;
                   const index_t w = std::min(nb, n - j0);
                   blas::lacpy(n, w, ws.qwork.data() + j0 * ws.qwork.ld(), ws.qwork.ld(),
                               v.data() + j0 * v.ld(), v.ld());
                 },
                 {{&hblock[root], rt::Access::GatherV}, {&hsort[p], rt::Access::InOut}});
  }
  graph.submit(K.scale, [&, n] { detail::unscale_eigenvalues(n, d, orgnrm); },
               {{&hblock[root], rt::Access::InOut}, {&hT, rt::Access::InOut}});

  runtime.wait_all();

  const double seconds = sw.elapsed();
  rt::Trace trace;
  const rt::Trace* tr = nullptr;
  if (stats || obs::trace_export_requested() || obs::report_export_requested()) {
    trace = runtime.trace();
    detail::stamp_trace_meta(trace, n, opt);
    tr = &trace;
  }
  if (stats) {
    detail::fill_stats(plan, ctxs, stats);
    stats->n = n;
    stats->trace = trace;
    stats->seconds = seconds;
    for (int w : simulate_workers) stats->simulated.push_back(rt::simulate_schedule(graph, w));
    if (opt.export_dag) stats->dag_dot = rt::export_dot(graph);
  }
  detail::finish_report(scope, ctxs, n, opt.threads, seconds, tr, stats, opt.precision);
}

}  // namespace

void stedc_taskflow(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                    SolveStats* stats, const std::vector<int>& simulate_workers) {
  Options topt = opt;
  tune::apply_env_tuning(topt, n);
  detail::run_with_precision(n, d, e, v, topt, stats,
                             [&](auto* dd, auto* ee, auto& vv, SolveStats* st) {
                               stedc_taskflow_impl(n, dd, ee, vv, topt, st, simulate_workers);
                             });
}

}  // namespace dnc::dc
