// Recursive partitioning of the tridiagonal problem into the D&C tree
// (paper Figure 1).
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::dc {

struct TreeNode {
  index_t i0 = 0;      ///< global row/column offset of this subproblem
  index_t m = 0;       ///< subproblem size
  index_t son1 = -1;   ///< index of the first son (-1 for leaves)
  index_t son2 = -1;
  index_t n1 = 0;      ///< first son's size (split point)
  int level = 0;       ///< depth from the root (root = 0)
  bool leaf() const { return son1 < 0; }
};

/// The subproblem tree in a flat vector; children precede their parent
/// (post-order), so iterating the vector front-to-back is a valid
/// bottom-up merge schedule.
struct Plan {
  std::vector<TreeNode> nodes;
  index_t root = -1;
  index_t leaf_count = 0;
  int height = 0;
};

/// Splits [0, n) recursively until blocks are <= minpart. Splits are at
/// m/2 as in dlaed0.
Plan build_plan(index_t n, index_t minpart);

}  // namespace dnc::dc
