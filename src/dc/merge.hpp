// One D&C merge step: orchestration of the panel kernels plus the shared
// workspace layout. Used directly by the sequential / fork-join drivers and
// as task bodies by the task-flow driver. Templated on the working
// precision Real: an fp32 solve allocates fp32 workspaces (half the memory
// footprint and traffic of the fp64 solve).
#pragma once

#include <memory>
#include <vector>

#include "dc/deflation.hpp"
#include "dc/options.hpp"
#include "dc/partition.hpp"
#include "dc/secular.hpp"

namespace dnc::dc {

/// Global workspaces sized once for the whole solve. Independent merges use
/// disjoint regions addressed by their node offset, so concurrent merges
/// never share memory (the paper's PLASMA implementation does the same with
/// its user-provided workspace).
template <typename Real>
struct WorkspaceT {
  MatrixT<Real> qwork;  ///< n x n: compressed copies (w1 / w2 / deflated columns)
  MatrixT<Real> xwork;  ///< 2n x n: delta matrix (top) and S matrix (bottom)

  explicit WorkspaceT(index_t n) : qwork(n, n), xwork(2 * n, n) {}
};

using Workspace = WorkspaceT<double>;

/// Per-merge dynamic state. Sized for the worst case (no deflation) at
/// construction so the task DAG can be built before deflation counts are
/// known -- the paper's "matrix independent DAG" property.
template <typename Real>
struct MergeContextT {
  TreeNode node;
  /// Location of the coupling element e[i0 + n1 - 1]. Read at *execution*
  /// time, not submission time: the task-flow drivers build contexts before
  /// the ScaleT task has rescaled e.
  const Real* beta_ptr = nullptr;
  index_t npanels = 0;
  DeflationResultT<Real> defl;  ///< filled by run_deflation
  /// Trace-clock stamp (common/timer.hpp now_seconds) taken when
  /// run_deflation returned; feeds the Perfetto deflation counter track.
  double t_deflate_end = 0.0;
  std::vector<Real> z;
  std::vector<Real> zhat;
  MatrixT<Real> wparts;         ///< m x npanels partial Gu-Eisenstat products

  MergeContextT(const TreeNode& nd, const Real* e_global, index_t nb)
      : node(nd), beta_ptr(e_global + nd.i0 + nd.n1 - 1), npanels((nd.m + nb - 1) / nb),
        z(nd.m), zhat(nd.m), wparts(nd.m, npanels) {}

  // --- workspace views for this node's region ---
  MatrixViewT<Real> qblock(MatrixT<Real>& q) const {
    return q.block(node.i0, node.i0, node.m, node.m);
  }
  MatrixViewT<Real> w1(WorkspaceT<Real>& ws) const {
    return ws.qwork.block(node.i0, node.i0, node.n1, node.m);
  }
  MatrixViewT<Real> w2(WorkspaceT<Real>& ws) const {
    return ws.qwork.block(node.i0 + node.n1, node.i0, node.m - node.n1, node.m);
  }
  MatrixViewT<Real> wdefl(WorkspaceT<Real>& ws) const {
    // Full-height columns [k, m) of the node's qwork region; views are
    // created per call AFTER deflation so k is known.
    return ws.qwork.block(node.i0, node.i0 + defl.k, node.m, node.m - defl.k);
  }
  MatrixViewT<Real> deltam(WorkspaceT<Real>& ws) const {
    return ws.xwork.block(2 * node.i0, node.i0, node.m, node.m);
  }
  MatrixViewT<Real> smat(WorkspaceT<Real>& ws) const {
    return ws.xwork.block(2 * node.i0 + node.m, node.i0, node.m, node.m);
  }
};

using MergeContext = MergeContextT<double>;

/// Builds the scaled rank-one vector z from the sons' boundary rows and
/// runs deflation. d is the node's physical eigenvalue array (size m,
/// global offset already applied by the caller); perm holds the sons'
/// ascending orders back to back. On return d[k..m) holds the deflated
/// eigenvalues (grouped order).
template <typename Real>
void run_deflation(MergeContextT<Real>& ctx, MatrixViewT<Real> qblock, Real* d,
                   const index_t* perm);

/// Finishes the eigenvalue bookkeeping once all secular roots are known:
/// merges roots and deflated values into the father's ascending perm.
template <typename Real>
void finalize_order(const MergeContextT<Real>& ctx, const Real* d, index_t* perm);

/// Runs a complete merge sequentially (deflation + all panels in order).
/// This is the reference implementation; parallel drivers re-order the
/// same kernel calls.
template <typename Real>
void merge_sequential(MergeContextT<Real>& ctx, MatrixT<Real>& q, WorkspaceT<Real>& ws,
                      Real* d, index_t* perm, index_t nb);

}  // namespace dnc::dc
