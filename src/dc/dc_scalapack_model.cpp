// Baseline: the ScaLAPACK pdstedc execution model.
//
// ScaLAPACK improves on LAPACK in two structural ways the paper calls out:
// independent subproblems are solved concurrently, and the merge work
// (secular equations, permutation copies, update GEMM) is distributed over
// the processes. What it cannot do is overlap merges of different tree
// levels: the data redistribution between levels acts as a barrier. This
// driver models exactly that: per-node chains with fan-out inside a merge,
// plus a barrier task between consecutive tree levels.
#include <functional>
#include <map>
#include <memory>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/timer.hpp"
#include "dc/api.hpp"
#include "dc/driver_common.hpp"
#include "dc/task_kinds.hpp"
#include "runtime/dot.hpp"
#include "runtime/engine.hpp"

namespace dnc::dc {
namespace {

template <typename Real>
void stedc_scalapack_model_impl(index_t n, Real* d, Real* e, MatrixT<Real>& v,
                                const Options& opt, SolveStats* stats,
                                const std::vector<int>& simulate_workers) {
  Stopwatch sw;
  obs::SolveScope scope("scalapack_model");
  if (stats) *stats = SolveStats{};
  if (detail::solve_trivial(n, d, e, v)) {
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }
  v.resize(n, n);

  const Plan plan = build_plan(n, opt.minpart);
  WorkspaceT<Real> ws(n);
  auto ctxs = detail::make_contexts(plan, e, opt.nb);
  std::vector<index_t> perm(n);
  const index_t nb = opt.nb;

  rt::TaskGraph graph;
  const Kinds K(graph);
  rt::Handle hbar("level-barrier");
  std::vector<rt::Handle> hnode(plan.nodes.size());

  Real orgnrm = 0;
  rt::Runtime runtime(graph, opt.threads, opt.sched);

  graph.submit(K.scale, [&, n] { orgnrm = detail::scale_problem(n, d, e); },
               {{&hbar, rt::Access::InOut}});
  graph.submit(K.partition,
               [&] {
                 detail::adjust_boundaries(plan, d, e);
                 blas::laset(n, n, Real(0), Real(0), v.data(), v.ld());
               },
               {{&hbar, rt::Access::InOut}});

  // Group nodes by level, deepest first (leaves may sit at several levels;
  // processing by level with barriers matches the ScaLAPACK schedule).
  std::map<int, std::vector<index_t>, std::greater<int>> by_level;
  for (std::size_t i = 0; i < plan.nodes.size(); ++i)
    by_level[plan.nodes[i].level].push_back(static_cast<index_t>(i));

  for (const auto& [level, nodes] : by_level) {
    for (index_t i : nodes) {
      const TreeNode& node = plan.nodes[i];
      if (node.leaf()) {
        graph.submit(K.stedc,
                     [&, node] { detail::solve_leaf(node, d, e, v, perm.data()); },
                     {{&hbar, rt::Access::In}, {&hnode[i], rt::Access::InOut}},
                     detail::task_priority(node.level, false));
        continue;
      }
      MergeContextT<Real>* ctx = ctxs[i].get();
      const index_t i0 = node.i0;
      // Deflation is replicated on every process in pdlaed2 -- a serial
      // stretch per merge.
      graph.submit(K.deflate,
                   [&, ctx, i0] {
                     run_deflation(*ctx, ctx->qblock(v), d + i0, perm.data() + i0);
                   },
                   {{&hbar, rt::Access::In},
                    {&hnode[node.son1], rt::Access::InOut},
                    {&hnode[node.son2], rt::Access::InOut},
                    {&hnode[i], rt::Access::InOut}},
                   detail::task_priority(node.level, true));
      // pdlaed3 distributes secular equations and the permutation copies
      // over the process grid: fan out, then an allreduce-like join.
      for (index_t p = 0; p < ctx->npanels; ++p) {
        const index_t j0 = p * nb;
        const index_t j1 = std::min(j0 + nb, node.m);
        graph.submit(K.permute,
                     [&, ctx, j0, j1] {
                       permute_panel(ctx->defl, ctx->qblock(v), ctx->w1(ws), ctx->w2(ws),
                                     ctx->wdefl(ws), j0, j1);
                     },
                     {{&hnode[i], rt::Access::GatherV}},
                     detail::task_priority(node.level, false));
        graph.submit(K.laed4,
                     [&, ctx, i0, j0, j1] {
                       secular_solve_panel(ctx->defl, j0, j1, d + i0, ctx->deltam(ws));
                     },
                     {{&hnode[i], rt::Access::GatherV}},
                     detail::task_priority(node.level, false));
      }
      graph.submit(K.localw,
                   [&, ctx] {
                     zhat_local_panel(ctx->defl, ctx->deltam(ws), 0, ctx->node.m,
                                      ctx->wparts.data());
                   },
                   {{&hnode[i], rt::Access::InOut}},
                   detail::task_priority(node.level, false));
      graph.submit(K.reducew,
                   [&, ctx, i0] {
                     zhat_reduce(ctx->defl, ctx->wparts.view(), 1, ctx->zhat.data());
                     finalize_order(*ctx, d + i0, perm.data() + i0);
                   },
                   {{&hnode[i], rt::Access::InOut}},
                   detail::task_priority(node.level, true));
      for (index_t p = 0; p < ctx->npanels; ++p) {
        const index_t j0 = p * nb;
        const index_t j1 = std::min(j0 + nb, node.m);
        graph.submit(K.copyback,
                     [&, ctx, j0, j1] {
                       copyback_panel(ctx->defl, ctx->wdefl(ws), j0, j1, ctx->qblock(v));
                     },
                     {{&hnode[i], rt::Access::GatherV}},
                     detail::task_priority(node.level, false));
        graph.submit(K.computevect,
                     [&, ctx, j0, j1] {
                       secular_vectors_panel(ctx->defl, ctx->deltam(ws), ctx->zhat.data(), j0,
                                             j1, ctx->smat(ws));
                     },
                     {{&hnode[i], rt::Access::GatherV}},
                     detail::task_priority(node.level, false));
      }
      // Join before the distributed GEMM (pdgemm starts in lockstep).
      graph.submit(K.reducew, [] {}, {{&hnode[i], rt::Access::InOut}},
                   detail::task_priority(node.level, true));
      for (index_t p = 0; p < ctx->npanels; ++p) {
        const index_t j0 = p * nb;
        const index_t j1 = std::min(j0 + nb, node.m);
        graph.submit(K.updatevect,
                     [&, ctx, j0, j1] {
                       update_vectors_panel(ctx->defl, ctx->w1(ws), ctx->w2(ws),
                                            ctx->smat(ws), j0, j1, ctx->qblock(v));
                     },
                     {{&hnode[i], rt::Access::GatherV}},
                     detail::task_priority(node.level, false));
      }
    }
    // Level barrier: the data redistribution between tree levels
    // synchronises every process.
    std::vector<rt::TaskDep> deps;
    deps.push_back({&hbar, rt::Access::InOut});
    for (index_t i : nodes) deps.push_back({&hnode[i], rt::Access::InOut});
    graph.submit(K.partition, [] {}, deps);
  }

  graph.submit(K.sort,
               [&, n] {
                 detail::sort_eigenpairs(n, d, v, perm.data() + plan.nodes[plan.root].i0, ws);
                 detail::unscale_eigenvalues(n, d, orgnrm);
               },
               {{&hbar, rt::Access::InOut}, {&hnode[plan.root], rt::Access::InOut}});

  runtime.wait_all();

  const double seconds = sw.elapsed();
  rt::Trace trace;
  const rt::Trace* tr = nullptr;
  if (stats || obs::trace_export_requested() || obs::report_export_requested()) {
    trace = runtime.trace();
    detail::stamp_trace_meta(trace, n, opt);
    tr = &trace;
  }
  if (stats) {
    detail::fill_stats(plan, ctxs, stats);
    stats->n = n;
    stats->trace = trace;
    stats->seconds = seconds;
    for (int w : simulate_workers) stats->simulated.push_back(rt::simulate_schedule(graph, w));
    if (opt.export_dag) stats->dag_dot = rt::export_dot(graph);
  }
  detail::finish_report(scope, ctxs, n, opt.threads, seconds, tr, stats, opt.precision);
}

}  // namespace

void stedc_scalapack_model(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                           SolveStats* stats, const std::vector<int>& simulate_workers) {
  Options topt = opt;
  tune::apply_env_tuning(topt, n);
  detail::run_with_precision(n, d, e, v, topt, stats,
                             [&](auto* dd, auto* ee, auto& vv, SolveStats* st) {
                               stedc_scalapack_model_impl(n, dd, ee, vv, topt, st,
                                                          simulate_workers);
                             });
}

}  // namespace dnc::dc
