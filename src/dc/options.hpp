// Tuning options shared by all divide & conquer drivers.
#pragma once

#include "common/matrix.hpp"
#include "common/precision.hpp"
#include "runtime/sched.hpp"

namespace dnc::dc {

struct Options {
  /// Subproblems of at most this size are solved directly with steqr
  /// (the paper used ~300 for n=1000; 64 suits the smaller bench sizes
  /// used on this machine).
  index_t minpart = 64;

  /// Panel width: tasks of a merge operate on nb eigenvectors at a time
  /// (the paper's task-granularity knob).
  index_t nb = 128;

  /// Worker threads for the parallel drivers.
  int threads = 4;

  /// Runtime scheduling policy (work-stealing by default; the DNC_SCHED
  /// environment variable overrides the default at construction).
  rt::SchedPolicy sched = rt::default_sched_policy();

  /// Allocate an extra panel workspace so PermuteV can overlap with LAED4
  /// and CopyBackDeflated with ComputeVect (the paper's user option for
  /// machines with many cores).
  bool extra_workspace = false;

  /// Capture the task DAG in Graphviz DOT format into SolveStats::dag_dot
  /// (runtime-backed drivers only; reproduces the paper's Figure 2).
  bool export_dag = false;

  /// Working precision of the solve (the DNC_PREC environment variable sets
  /// the default). F32 runs the whole pipeline in fp32; F32RefineF64 adds
  /// an fp64 Rayleigh-quotient refinement epilogue (lapack/refine.hpp).
  Precision precision = default_precision();
};

}  // namespace dnc::dc
