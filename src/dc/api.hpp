// Public entry points of the divide & conquer symmetric tridiagonal
// eigensolver library.
//
// All drivers share the same numerics (deflation, secular equation,
// Gu-Eisenstat stabilization, compressed update GEMMs) and differ only in
// the execution model:
//
//   stedc_sequential      reference serial Cuppen (LAPACK dstedc numerics)
//   stedc_taskflow        the paper's contribution: sequential task flow
//                         over a QUARK-like runtime with GATHERV panel
//                         tasks, merges of independent branches overlap
//   stedc_lapack_model    the MKL-LAPACK baseline model: one sequential
//                         flow whose only parallelism is fork/join
//                         multithreaded GEMM
//   stedc_scalapack_model the ScaLAPACK baseline model: subproblems solved
//                         in parallel, fork/join merge parallelism,
//                         barriers between tree levels
//
// On entry d[0..n) / e[0..n-1) describe the tridiagonal matrix; on return
// d holds the eigenvalues in ascending order and v the corresponding
// orthonormal eigenvectors (v is resized to n x n). e is destroyed.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "dc/options.hpp"
#include "lapack/refine.hpp"
#include "obs/report.hpp"
#include "runtime/simulator.hpp"
#include "runtime/trace.hpp"

namespace dnc::dc {

/// Execution statistics reported by every driver.
struct SolveStats {
  index_t n = 0;
  index_t merges = 0;
  index_t leaves = 0;
  double deflation_ratio = 0.0;  ///< sum(m - k) / sum(m) over all merges
  index_t root_k = 0;            ///< non-deflated count of the final merge
  double seconds = 0.0;          ///< wall-clock of the solve

  /// Observability report: per-merge deflation records, algorithmic counter
  /// deltas (laed4/sturm/gemm), scheduler metrics for the runtime-backed
  /// drivers. Exported to $DNC_REPORT / $DNC_TRACE when those are set (which
  /// works even when stats itself is null).
  obs::SolveReport report;

  /// Refinement epilogue statistics (Precision::F32RefineF64 only:
  /// checked == 0 under the pure-fp64 and pure-fp32 precisions).
  lapack::RefineReport refine;

  // Filled by the runtime-backed drivers only:
  rt::Trace trace;                             ///< per-task execution trace
  std::vector<rt::SimulationResult> simulated;  ///< per requested worker count
  std::string dag_dot;                          ///< DOT DAG if opt.export_dag
};

void stedc_sequential(index_t n, double* d, double* e, Matrix& v, const Options& opt = {},
                      SolveStats* stats = nullptr);

/// `simulate_workers`: optional list of virtual core counts to replay the
/// recorded DAG on (see runtime/simulator.hpp); results land in
/// stats->simulated in the same order.
void stedc_taskflow(index_t n, double* d, double* e, Matrix& v, const Options& opt = {},
                    SolveStats* stats = nullptr,
                    const std::vector<int>& simulate_workers = {});

void stedc_lapack_model(index_t n, double* d, double* e, Matrix& v, const Options& opt = {},
                        SolveStats* stats = nullptr,
                        const std::vector<int>& simulate_workers = {});

void stedc_scalapack_model(index_t n, double* d, double* e, Matrix& v, const Options& opt = {},
                           SolveStats* stats = nullptr,
                           const std::vector<int>& simulate_workers = {});

}  // namespace dnc::dc
