#include "dc/secular.hpp"

#include <algorithm>
#include <cmath>

#include "blas/aux.hpp"
#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "common/error.hpp"
#include "lapack/laed4.hpp"

namespace dnc::dc {

void permute_panel(const DeflationResult& defl, const MatrixView& qblock, MatrixView w1,
                   MatrixView w2, MatrixView wdefl, index_t g0, index_t g1) {
  const index_t m = defl.m;
  const index_t n1 = defl.n1;
  const index_t n2 = m - n1;
  const index_t k12 = defl.k12();
  const index_t c1 = defl.ctot[0];
  g1 = std::min(g1, m);
  for (index_t g = g0; g < g1; ++g) {
    const index_t j = defl.indx[g];
    if (g < k12) {
      // Types 1 and 2 contribute their top n1 rows.
      blas::copy(n1, qblock.col(j), w1.col(g));
    }
    if (g >= c1 && g < defl.k) {
      // Types 2 and 3 contribute their bottom n2 rows.
      blas::copy(n2, qblock.col(j) + n1, w2.col(g - c1));
    }
    if (g >= defl.k) {
      // Deflated columns are stashed whole (rotations may have given them
      // support in both halves).
      blas::copy(m, qblock.col(j), wdefl.col(g - defl.k));
    }
  }
}

void secular_solve_panel(const DeflationResult& defl, index_t j0, index_t j1, double* lambda,
                         MatrixView deltam) {
  j1 = std::min(j1, defl.k);
  for (index_t j = j0; j < j1; ++j) {
    const auto r = lapack::laed4(defl.k, j, defl.dlamda.data(), defl.w.data(), defl.rho,
                                 deltam.col(j));
    lambda[j] = r.lambda;
  }
}

void zhat_local_panel(const DeflationResult& defl, const MatrixView& deltam, index_t j0,
                      index_t j1, double* wpart) {
  const index_t k = defl.k;
  j1 = std::min(j1, k);
  for (index_t j = j0; j < j1; ++j) {
    const double* dcol = deltam.col(j);
    const double dj = defl.dlamda[j];
    for (index_t i = 0; i < k; ++i) {
      if (i == j)
        wpart[i] *= dcol[i];
      else
        wpart[i] *= dcol[i] / (defl.dlamda[i] - dj);
    }
  }
}

void zhat_reduce(const DeflationResult& defl, const MatrixView& wparts, index_t nparts,
                 double* zhat) {
  const index_t k = defl.k;
  for (index_t i = 0; i < k; ++i) {
    double prod = 1.0;
    for (index_t p = 0; p < nparts; ++p) prod *= wparts(i, p);
    // prod = (d_i - lambda_i) * prod_{j != i} (d_i - lambda_j)/(d_i - d_j)
    // which equals -zhat_i^2 (Gu-Eisenstat); rounding can flip a tiny
    // value's sign, so clamp through |.|.
    zhat[i] = std::copysign(std::sqrt(std::fabs(prod)), defl.w[i]);
  }
}

void secular_vectors_panel(const DeflationResult& defl, const MatrixView& deltam,
                           const double* zhat, index_t j0, index_t j1, MatrixView smat) {
  const index_t k = defl.k;
  j1 = std::min(j1, k);
  std::vector<double> s(k);
  for (index_t j = j0; j < j1; ++j) {
    const double* dcol = deltam.col(j);
    for (index_t i = 0; i < k; ++i) s[i] = zhat[i] / dcol[i];
    const double nrm = blas::nrm2(k, s.data());
    double* out = smat.col(j);
    // Rows of the secular eigenvector matrix are stored in grouped order so
    // the update GEMMs can run on the compressed column blocks directly.
    for (index_t g = 0; g < k; ++g) out[g] = s[defl.rank_of[g]] / nrm;
  }
}

void update_vectors_panel(const DeflationResult& defl, const MatrixView& w1,
                          const MatrixView& w2, const MatrixView& smat, index_t j0, index_t j1,
                          MatrixView qblock) {
  const index_t m = defl.m;
  const index_t n1 = defl.n1;
  const index_t n2 = m - n1;
  const index_t k12 = defl.k12();
  const index_t k23 = defl.k23();
  const index_t c1 = defl.ctot[0];
  j1 = std::min(j1, defl.k);
  const index_t nj = j1 - j0;
  if (nj <= 0) return;
  if (k12 > 0) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n1, nj, k12, 1.0, w1.data, w1.ld,
               smat.data + j0 * smat.ld, smat.ld, 0.0, qblock.col(j0), qblock.ld);
  } else {
    blas::laset(n1, nj, 0.0, 0.0, qblock.col(j0), qblock.ld);
  }
  if (k23 > 0) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n2, nj, k23, 1.0, w2.data, w2.ld,
               smat.data + c1 + j0 * smat.ld, smat.ld, 0.0, qblock.col(j0) + n1, qblock.ld);
  } else {
    blas::laset(n2, nj, 0.0, 0.0, qblock.col(j0) + n1, qblock.ld);
  }
}

void copyback_panel(const DeflationResult& defl, const MatrixView& wdefl, index_t g0,
                    index_t g1, MatrixView qblock) {
  const index_t m = defl.m;
  g0 = std::max(g0, defl.k);
  g1 = std::min(g1, m);
  for (index_t g = g0; g < g1; ++g) blas::copy(m, wdefl.col(g - defl.k), qblock.col(g));
}

}  // namespace dnc::dc
