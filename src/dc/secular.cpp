#include "dc/secular.hpp"

#include <algorithm>
#include <cmath>

#include "blas/aux.hpp"
#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "common/error.hpp"
#include "lapack/laed4.hpp"

namespace dnc::dc {

template <typename Real>
void permute_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& qblock,
                   MatrixViewT<Real> w1, MatrixViewT<Real> w2, MatrixViewT<Real> wdefl,
                   index_t g0, index_t g1) {
  const index_t m = defl.m;
  const index_t n1 = defl.n1;
  const index_t n2 = m - n1;
  const index_t k12 = defl.k12();
  const index_t c1 = defl.ctot[0];
  g1 = std::min(g1, m);
  for (index_t g = g0; g < g1; ++g) {
    const index_t j = defl.indx[g];
    if (g < k12) {
      // Types 1 and 2 contribute their top n1 rows.
      blas::copy(n1, qblock.col(j), w1.col(g));
    }
    if (g >= c1 && g < defl.k) {
      // Types 2 and 3 contribute their bottom n2 rows.
      blas::copy(n2, qblock.col(j) + n1, w2.col(g - c1));
    }
    if (g >= defl.k) {
      // Deflated columns are stashed whole (rotations may have given them
      // support in both halves).
      blas::copy(m, qblock.col(j), wdefl.col(g - defl.k));
    }
  }
}

template <typename Real>
void secular_solve_panel(const DeflationResultT<Real>& defl, index_t j0, index_t j1,
                         Real* lambda, MatrixViewT<Real> deltam) {
  j1 = std::min(j1, defl.k);
  for (index_t j = j0; j < j1; ++j) {
    const auto r = lapack::laed4(defl.k, j, defl.dlamda.data(), defl.w.data(), defl.rho,
                                 deltam.col(j));
    lambda[j] = r.lambda;
  }
}

template <typename Real>
void zhat_local_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& deltam,
                      index_t j0, index_t j1, Real* wpart) {
  const index_t k = defl.k;
  j1 = std::min(j1, k);
  for (index_t j = j0; j < j1; ++j) {
    const Real* dcol = deltam.col(j);
    const Real dj = defl.dlamda[j];
    for (index_t i = 0; i < k; ++i) {
      if (i == j)
        wpart[i] *= dcol[i];
      else
        wpart[i] *= dcol[i] / (defl.dlamda[i] - dj);
    }
  }
}

template <typename Real>
void zhat_reduce(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& wparts,
                 index_t nparts, Real* zhat) {
  const index_t k = defl.k;
  for (index_t i = 0; i < k; ++i) {
    Real prod = 1;
    for (index_t p = 0; p < nparts; ++p) prod *= wparts(i, p);
    // prod = (d_i - lambda_i) * prod_{j != i} (d_i - lambda_j)/(d_i - d_j)
    // which equals -zhat_i^2 (Gu-Eisenstat); rounding can flip a tiny
    // value's sign, so clamp through |.|.
    zhat[i] = std::copysign(std::sqrt(std::fabs(prod)), defl.w[i]);
  }
}

template <typename Real>
void secular_vectors_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& deltam,
                           const Real* zhat, index_t j0, index_t j1, MatrixViewT<Real> smat) {
  const index_t k = defl.k;
  j1 = std::min(j1, k);
  std::vector<Real> s(k);
  for (index_t j = j0; j < j1; ++j) {
    const Real* dcol = deltam.col(j);
    for (index_t i = 0; i < k; ++i) s[i] = zhat[i] / dcol[i];
    const Real nrm = blas::nrm2(k, s.data());
    Real* out = smat.col(j);
    // Rows of the secular eigenvector matrix are stored in grouped order so
    // the update GEMMs can run on the compressed column blocks directly.
    for (index_t g = 0; g < k; ++g) out[g] = s[defl.rank_of[g]] / nrm;
  }
}

template <typename Real>
void update_vectors_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& w1,
                          const MatrixViewT<Real>& w2, const MatrixViewT<Real>& smat,
                          index_t j0, index_t j1, MatrixViewT<Real> qblock) {
  const index_t m = defl.m;
  const index_t n1 = defl.n1;
  const index_t n2 = m - n1;
  const index_t k12 = defl.k12();
  const index_t k23 = defl.k23();
  const index_t c1 = defl.ctot[0];
  j1 = std::min(j1, defl.k);
  const index_t nj = j1 - j0;
  if (nj <= 0) return;
  if (k12 > 0) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n1, nj, k12, Real(1), w1.data, w1.ld,
               smat.data + j0 * smat.ld, smat.ld, Real(0), qblock.col(j0), qblock.ld);
  } else {
    blas::laset(n1, nj, Real(0), Real(0), qblock.col(j0), qblock.ld);
  }
  if (k23 > 0) {
    blas::gemm(blas::Trans::No, blas::Trans::No, n2, nj, k23, Real(1), w2.data, w2.ld,
               smat.data + c1 + j0 * smat.ld, smat.ld, Real(0), qblock.col(j0) + n1,
               qblock.ld);
  } else {
    blas::laset(n2, nj, Real(0), Real(0), qblock.col(j0) + n1, qblock.ld);
  }
}

template <typename Real>
void copyback_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& wdefl,
                    index_t g0, index_t g1, MatrixViewT<Real> qblock) {
  const index_t m = defl.m;
  g0 = std::max(g0, defl.k);
  g1 = std::min(g1, m);
  for (index_t g = g0; g < g1; ++g) blas::copy(m, wdefl.col(g - defl.k), qblock.col(g));
}

#define DNC_INSTANTIATE_SECULAR(Real)                                                         \
  template void permute_panel<Real>(const DeflationResultT<Real>&, const MatrixViewT<Real>&,  \
                                    MatrixViewT<Real>, MatrixViewT<Real>, MatrixViewT<Real>,  \
                                    index_t, index_t);                                        \
  template void secular_solve_panel<Real>(const DeflationResultT<Real>&, index_t, index_t,    \
                                          Real*, MatrixViewT<Real>);                          \
  template void zhat_local_panel<Real>(const DeflationResultT<Real>&,                         \
                                       const MatrixViewT<Real>&, index_t, index_t, Real*);    \
  template void zhat_reduce<Real>(const DeflationResultT<Real>&, const MatrixViewT<Real>&,    \
                                  index_t, Real*);                                            \
  template void secular_vectors_panel<Real>(const DeflationResultT<Real>&,                    \
                                            const MatrixViewT<Real>&, const Real*, index_t,   \
                                            index_t, MatrixViewT<Real>);                      \
  template void update_vectors_panel<Real>(                                                   \
      const DeflationResultT<Real>&, const MatrixViewT<Real>&, const MatrixViewT<Real>&,      \
      const MatrixViewT<Real>&, index_t, index_t, MatrixViewT<Real>);                         \
  template void copyback_panel<Real>(const DeflationResultT<Real>&, const MatrixViewT<Real>&, \
                                     index_t, index_t, MatrixViewT<Real>)

DNC_INSTANTIATE_SECULAR(double);
DNC_INSTANTIATE_SECULAR(float);

#undef DNC_INSTANTIATE_SECULAR

}  // namespace dnc::dc
