// Panel kernels of the D&C merge step. Each function is the body of one of
// the paper's Algorithm-1 tasks; every kernel operates on a contiguous
// range of eigenvector columns (a panel of width nb) so that panels of the
// same merge run concurrently under the task runtime. All kernels are
// templated on the working precision Real (double / float).
//
// Data layout for one merge of size m = n1 + n2 with k non-deflated:
//   qblock  m x m   the node's eigenvector block (input: sons, output:
//                   father)
//   w1      n1 x k12   top parts of type-1/2 columns (compressed copy)
//   w2      n2 x k23   bottom parts of type-2/3 columns
//   wdefl   m x (m-k)  deflated columns, grouped order
//   deltam  k x k      column j = delta vector of secular root j
//   smat    k x k      eigenvectors of the rank-one system, rows in grouped
//                      order (ready for the compressed GEMMs)
#pragma once

#include "dc/deflation.hpp"

namespace dnc::dc {

/// PermuteV: copies grouped columns [g0, g1) of qblock into the compressed
/// workspaces (paper kernel "PermuteV"; memory bound).
template <typename Real>
void permute_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& qblock,
                   MatrixViewT<Real> w1, MatrixViewT<Real> w2, MatrixViewT<Real> wdefl,
                   index_t g0, index_t g1);

/// LAED4: solves secular roots [j0, j1) (clamped to k); writes lambda[j]
/// and column j of deltam.
template <typename Real>
void secular_solve_panel(const DeflationResultT<Real>& defl, index_t j0, index_t j1,
                         Real* lambda, MatrixViewT<Real> deltam);

/// ComputeLocalW: multiplies into wpart[i] (i in [0, k)) the Gu-Eisenstat
/// partial products contributed by roots [j0, j1). wpart must be
/// initialised to 1 before the first panel.
template <typename Real>
void zhat_local_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& deltam,
                      index_t j0, index_t j1, Real* wpart);

/// ReduceW: combines the per-panel partial products (columns of wparts)
/// into the stabilised z-hat (Gu-Eisenstat): zhat[i] =
/// sign(w_i) sqrt(prod). Also the merge's natural place to finalise the
/// father's eigenvalue ordering.
template <typename Real>
void zhat_reduce(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& wparts,
                 index_t nparts, Real* zhat);

/// ComputeVect: assembles and normalises secular eigenvectors [j0, j1) into
/// smat, rows permuted to the grouped order expected by the GEMMs.
template <typename Real>
void secular_vectors_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& deltam,
                           const Real* zhat, index_t j0, index_t j1, MatrixViewT<Real> smat);

/// UpdateVect: the compressed GEMMs forming father eigenvector columns
/// [j0, j1): top rows from w1 x smat(0:k12, :), bottom rows from
/// w2 x smat(ctot1:ctot1+k23, :).
template <typename Real>
void update_vectors_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& w1,
                          const MatrixViewT<Real>& w2, const MatrixViewT<Real>& smat,
                          index_t j0, index_t j1, MatrixViewT<Real> qblock);

/// CopyBackDeflated: restores deflated columns [g0, g1) (clamped to
/// [k, m)) from wdefl into the father block (memory bound).
template <typename Real>
void copyback_panel(const DeflationResultT<Real>& defl, const MatrixViewT<Real>& wdefl,
                    index_t g0, index_t g1, MatrixViewT<Real> qblock);

}  // namespace dnc::dc
