// Panel kernels of the D&C merge step. Each function is the body of one of
// the paper's Algorithm-1 tasks; every kernel operates on a contiguous
// range of eigenvector columns (a panel of width nb) so that panels of the
// same merge run concurrently under the task runtime.
//
// Data layout for one merge of size m = n1 + n2 with k non-deflated:
//   qblock  m x m   the node's eigenvector block (input: sons, output:
//                   father)
//   w1      n1 x k12   top parts of type-1/2 columns (compressed copy)
//   w2      n2 x k23   bottom parts of type-2/3 columns
//   wdefl   m x (m-k)  deflated columns, grouped order
//   deltam  k x k      column j = delta vector of secular root j
//   smat    k x k      eigenvectors of the rank-one system, rows in grouped
//                      order (ready for the compressed GEMMs)
#pragma once

#include "dc/deflation.hpp"

namespace dnc::dc {

/// PermuteV: copies grouped columns [g0, g1) of qblock into the compressed
/// workspaces (paper kernel "PermuteV"; memory bound).
void permute_panel(const DeflationResult& defl, const MatrixView& qblock, MatrixView w1,
                   MatrixView w2, MatrixView wdefl, index_t g0, index_t g1);

/// LAED4: solves secular roots [j0, j1) (clamped to k); writes lambda[j]
/// and column j of deltam.
void secular_solve_panel(const DeflationResult& defl, index_t j0, index_t j1, double* lambda,
                         MatrixView deltam);

/// ComputeLocalW: multiplies into wpart[i] (i in [0, k)) the Gu-Eisenstat
/// partial products contributed by roots [j0, j1). wpart must be
/// initialised to 1 before the first panel.
void zhat_local_panel(const DeflationResult& defl, const MatrixView& deltam, index_t j0,
                      index_t j1, double* wpart);

/// ReduceW: combines the per-panel partial products (columns of wparts)
/// into the stabilised z-hat (Gu-Eisenstat): zhat[i] =
/// sign(w_i) sqrt(prod). Also the merge's natural place to finalise the
/// father's eigenvalue ordering.
void zhat_reduce(const DeflationResult& defl, const MatrixView& wparts, index_t nparts,
                 double* zhat);

/// ComputeVect: assembles and normalises secular eigenvectors [j0, j1) into
/// smat, rows permuted to the grouped order expected by the GEMMs.
void secular_vectors_panel(const DeflationResult& defl, const MatrixView& deltam,
                           const double* zhat, index_t j0, index_t j1, MatrixView smat);

/// UpdateVect: the compressed GEMMs forming father eigenvector columns
/// [j0, j1): top rows from w1 x smat(0:k12, :), bottom rows from
/// w2 x smat(ctot1:ctot1+k23, :).
void update_vectors_panel(const DeflationResult& defl, const MatrixView& w1,
                          const MatrixView& w2, const MatrixView& smat, index_t j0, index_t j1,
                          MatrixView qblock);

/// CopyBackDeflated: restores deflated columns [g0, g1) (clamped to
/// [k, m)) from wdefl into the father block (memory bound).
void copyback_panel(const DeflationResult& defl, const MatrixView& wdefl, index_t g0,
                    index_t g1, MatrixView qblock);

}  // namespace dnc::dc
