// Baseline: the MKL LAPACK dstedc execution model.
//
// Numerically identical to the task-flow solver, but the only concurrency
// is fork/join multithreaded BLAS: the whole algorithm is one sequential
// chain of tasks (a single INOUT handle), and only the UpdateVect GEMM
// fans out into column-chunk tasks that join immediately afterwards. This
// is exactly how the paper characterises the LAPACK+multithreaded-MKL
// baseline it compares against in Figure 6, and expressing it as a task
// graph lets the same DAG-replay simulator predict its 16-core makespan.
#include <memory>

#include "blas/aux.hpp"
#include "blas/level1.hpp"
#include "common/timer.hpp"
#include "dc/api.hpp"
#include "dc/driver_common.hpp"
#include "dc/task_kinds.hpp"
#include "runtime/dot.hpp"
#include "runtime/engine.hpp"
#include "runtime/scheduler.hpp"

namespace dnc::dc {
namespace {

template <typename Real>
void stedc_lapack_model_impl(index_t n, Real* d, Real* e, MatrixT<Real>& v,
                             const Options& opt, SolveStats* stats,
                             const std::vector<int>& simulate_workers) {
  Stopwatch sw;
  obs::SolveScope scope("lapack_model");
  if (stats) *stats = SolveStats{};
  if (detail::solve_trivial(n, d, e, v)) {
    if (stats) {
      stats->n = n;
      stats->seconds = sw.elapsed();
    }
    return;
  }
  v.resize(n, n);

  const Plan plan = build_plan(n, opt.minpart);
  WorkspaceT<Real> ws(n);
  auto ctxs = detail::make_contexts(plan, e, opt.nb);
  std::vector<index_t> perm(n);
  const index_t nb = opt.nb;

  rt::TaskGraph graph;
  const Kinds K(graph);
  rt::Handle hseq("sequential-flow");  // everything chains through this

  Real orgnrm = 0;
  rt::Runtime runtime(graph, opt.threads, opt.sched);
  const auto chain = [&](rt::KindId kind, std::function<void()> fn) {
    graph.submit(kind, std::move(fn), {{&hseq, rt::Access::InOut}});
  };

  chain(K.scale, [&, n] { orgnrm = detail::scale_problem(n, d, e); });
  chain(K.partition, [&] { detail::adjust_boundaries(plan, d, e); });
  chain(K.laset, [&, n] { blas::laset(n, n, Real(0), Real(0), v.data(), v.ld()); });

  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const TreeNode& node = plan.nodes[i];
    if (node.leaf()) {
      // dlaed0 solves the leaves one after another; dsteqr itself is
      // level-1/2 bound and does not benefit from threaded BLAS.
      chain(K.stedc, [&, node] { detail::solve_leaf(node, d, e, v, perm.data()); });
      continue;
    }
    MergeContextT<Real>* ctx = ctxs[i].get();
    const index_t i0 = node.i0;
    chain(K.deflate, [&, ctx, i0] {
      run_deflation(*ctx, ctx->qblock(v), d + i0, perm.data() + i0);
    });
    // dlaed2's permutation copy and dlaed3's secular loop are sequential.
    chain(K.permute, [&, ctx] {
      permute_panel(ctx->defl, ctx->qblock(v), ctx->w1(ws), ctx->w2(ws), ctx->wdefl(ws), 0,
                    ctx->node.m);
    });
    chain(K.laed4, [&, ctx, i0] {
      secular_solve_panel(ctx->defl, 0, ctx->node.m, d + i0, ctx->deltam(ws));
    });
    chain(K.localw, [&, ctx] {
      zhat_local_panel(ctx->defl, ctx->deltam(ws), 0, ctx->node.m, ctx->wparts.data());
    });
    chain(K.reducew, [&, ctx, i0] {
      zhat_reduce(ctx->defl, ctx->wparts.view(), 1, ctx->zhat.data());
      finalize_order(*ctx, d + i0, perm.data() + i0);
    });
    chain(K.copyback,
          [&, ctx] { copyback_panel(ctx->defl, ctx->wdefl(ws), 0, ctx->node.m, ctx->qblock(v)); });
    chain(K.computevect, [&, ctx] {
      secular_vectors_panel(ctx->defl, ctx->deltam(ws), ctx->zhat.data(), 0, ctx->node.m,
                            ctx->smat(ws));
    });
    // The one parallel region: the GEMM fans out over column chunks (the
    // multithreaded-BLAS fork) and joins right after. Expressed as a
    // single chained task whose body spawns panel subtasks back into the
    // scheduler (help-first join) -- the runtime is the only thread
    // source, and the children show up in traces as "UpdateVect/panel"
    // nested under this task.
    chain(K.updatevect, [&, ctx] {
      const index_t m = ctx->node.m;
      const long npanels = static_cast<long>(ctx->npanels);
      rt::spawn_and_wait("panel", npanels, [&, ctx, m](long p) {
        const index_t j0 = static_cast<index_t>(p) * nb;
        const index_t j1 = std::min(j0 + nb, m);
        update_vectors_panel(ctx->defl, ctx->w1(ws), ctx->w2(ws), ctx->smat(ws), j0, j1,
                             ctx->qblock(v));
      });
    });
  }

  chain(K.sort, [&, n] {
    detail::sort_eigenpairs(n, d, v, perm.data() + plan.nodes[plan.root].i0, ws);
  });
  chain(K.scale, [&, n] { detail::unscale_eigenvalues(n, d, orgnrm); });

  runtime.wait_all();

  const double seconds = sw.elapsed();
  rt::Trace trace;
  const rt::Trace* tr = nullptr;
  if (stats || obs::trace_export_requested() || obs::report_export_requested()) {
    trace = runtime.trace();
    detail::stamp_trace_meta(trace, n, opt);
    tr = &trace;
  }
  if (stats) {
    detail::fill_stats(plan, ctxs, stats);
    stats->n = n;
    stats->trace = trace;
    stats->seconds = seconds;
    for (int w : simulate_workers) stats->simulated.push_back(rt::simulate_schedule(graph, w));
    if (opt.export_dag) stats->dag_dot = rt::export_dot(graph);
  }
  detail::finish_report(scope, ctxs, n, opt.threads, seconds, tr, stats, opt.precision);
}

}  // namespace

void stedc_lapack_model(index_t n, double* d, double* e, Matrix& v, const Options& opt,
                        SolveStats* stats, const std::vector<int>& simulate_workers) {
  Options topt = opt;
  tune::apply_env_tuning(topt, n);
  detail::run_with_precision(n, d, e, v, topt, stats,
                             [&](auto* dd, auto* ee, auto& vv, SolveStats* st) {
                               stedc_lapack_model_impl(n, dd, ee, vv, topt, st,
                                                       simulate_workers);
                             });
}

}  // namespace dnc::dc
