#include "dc/deflation.hpp"

#include <algorithm>
#include <cmath>

#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/real_traits.hpp"
#include "lapack/rotations.hpp"

namespace dnc::dc {

template <typename Real>
DeflationResultT<Real> deflate(index_t n1, index_t n2, Real* d, Real* z, Real rho_in,
                               MatrixViewT<Real> q, const index_t* perm1,
                               const index_t* perm2) {
  const index_t m = n1 + n2;
  DNC_REQUIRE(n1 >= 1 && n2 >= 1, "deflate: sons must be non-empty");
  DNC_REQUIRE(q.rows == m && q.cols == m, "deflate: bad Q block");
  DeflationResultT<Real> res;
  res.m = m;
  res.n1 = n1;
  res.rho = rho_in;

  // Merge the two sorted son spectra into one ascending physical-index list.
  std::vector<index_t> idx(m);
  {
    index_t a = 0, b = 0, t = 0;
    while (a < n1 && b < n2) {
      const index_t pa = perm1[a];
      const index_t pb = n1 + perm2[b];
      if (d[pa] <= d[pb]) {
        idx[t++] = pa;
        ++a;
      } else {
        idx[t++] = pb;
        ++b;
      }
    }
    while (a < n1) idx[t++] = perm1[a++];
    while (b < n2) idx[t++] = n1 + perm2[b++];
  }

  // Deflation tolerance, as in dlaed2.
  Real dmax = 0, zmax = 0;
  for (index_t i = 0; i < m; ++i) {
    dmax = std::max(dmax, std::fabs(d[i]));
    zmax = std::max(zmax, std::fabs(z[i]));
  }
  const Real tol = Real(8) * real_traits<Real>::eps() * std::max(dmax, zmax);

  // Column types: 1 for son-1 columns, 3 for son-2 columns initially.
  std::vector<int> coltyp(m);
  for (index_t j = 0; j < m; ++j) coltyp[j] = j < n1 ? 1 : 3;

  std::vector<index_t> nondefl;  // physical cols, ascending pole order
  std::vector<index_t> defl;     // physical cols, kept ascending by d value
  nondefl.reserve(m);
  defl.reserve(m);
  const auto defl_insert = [&](index_t j) {
    // Insertion keeps the deflated set ascending even though rotations
    // change d[j] after the merge order was fixed.
    auto it = std::upper_bound(defl.begin(), defl.end(), d[j],
                               [&](Real val, index_t p) { return val < d[p]; });
    defl.insert(it, j);
  };

  if (res.rho * zmax <= tol) {
    // Everything deflates (dlaed2's early exit): the merged system is
    // already diagonal to working precision.
    for (index_t t = 0; t < m; ++t) {
      coltyp[idx[t]] = 4;
      defl.push_back(idx[t]);  // idx is ascending and d is untouched
    }
  } else {
    index_t held = -1;  // the dlaed2 "PJ" candidate awaiting classification
    for (index_t t = 0; t < m; ++t) {
      const index_t j = idx[t];
      if (res.rho * std::fabs(z[j]) <= tol) {
        // Negligible coupling: eigenpair of the block-diagonal part
        // survives unchanged.
        z[j] = 0;
        coltyp[j] = 4;
        defl_insert(j);
        continue;
      }
      if (held < 0) {
        held = j;
        continue;
      }
      // Try to rotate `held` into `j` (poles nearly equal).
      Real s = z[held];
      Real c = z[j];
      const Real tau = lapack::lapy2(c, s);
      const Real gap = d[j] - d[held];
      c /= tau;
      s = -s / tau;
      if (std::fabs(gap * c * s) <= tol) {
        // Deflate `held`: the rotated pair has one zero z component.
        z[j] = tau;
        z[held] = 0;
        if (coltyp[j] != coltyp[held]) coltyp[j] = 2;
        coltyp[held] = 4;
        blas::rot(m, q.col(held), q.col(j), c, s);
        const Real dh = d[held], dj = d[j];
        d[held] = dh * c * c + dj * s * s;
        d[j] = dh * s * s + dj * c * c;
        defl_insert(held);
        held = j;
      } else {
        nondefl.push_back(held);
        held = j;
      }
    }
    if (held >= 0) nondefl.push_back(held);
  }

  res.k = static_cast<index_t>(nondefl.size());
  res.dlamda.resize(res.k);
  res.w.resize(res.k);
  for (index_t r = 0; r < res.k; ++r) {
    res.dlamda[r] = d[nondefl[r]];
    res.w[r] = z[nondefl[r]];
  }
  res.d_defl.resize(m - res.k);
  for (index_t t = 0; t < m - res.k; ++t) res.d_defl[t] = d[defl[t]];

  // Grouped order: types 1, 2, 3 (preserving ascending pole order within
  // each group), then the deflated columns.
  for (index_t r = 0; r < res.k; ++r) ++res.ctot[coltyp[nondefl[r]] - 1];
  res.ctot[3] = m - res.k;
  index_t psm[4];
  psm[0] = 0;
  psm[1] = res.ctot[0];
  psm[2] = psm[1] + res.ctot[1];
  psm[3] = res.k;
  res.indx.resize(m);
  res.rank_of.assign(res.k, 0);
  for (index_t r = 0; r < res.k; ++r) {
    const index_t j = nondefl[r];
    const index_t g = psm[coltyp[j] - 1]++;
    res.indx[g] = j;
    res.rank_of[g] = r;
  }
  for (index_t t = 0; t < m - res.k; ++t) res.indx[res.k + t] = defl[t];
  return res;
}

template DeflationResultT<double> deflate<double>(index_t, index_t, double*, double*, double,
                                                  MatrixViewT<double>, const index_t*,
                                                  const index_t*);
template DeflationResultT<float> deflate<float>(index_t, index_t, float*, float*, float,
                                                MatrixViewT<float>, const index_t*,
                                                const index_t*);

}  // namespace dnc::dc
