#include "dc/tune.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/env.hpp"
#include "common/json.hpp"
#include "common/precision.hpp"
#include "dc/options.hpp"
#include "obs/report.hpp"
#include "runtime/sched.hpp"

namespace dnc::dc::tune {
namespace {

/// The built-in Options defaults the table is allowed to replace. Kept in
/// sync with options.hpp by TuneTest.DefaultsMatchOptions.
constexpr index_t kDefaultNb = 128;

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

/// Pending consultation of this thread's last apply_env_tuning(), consumed
/// by the next finish_report() on the same thread (drivers run the solve
/// and its report epilogue on the calling thread).
struct PendingStamp {
  bool tuned = false;
  std::string source;
  std::string entry;
};
thread_local PendingStamp tls_pending;

std::mutex last_mu;
std::string last_entry_applied;  // process-wide, for /healthz

/// Per-path cache keyed on mtime+size so tests (and long-lived services)
/// that rewrite the table pick up the new contents without re-parsing on
/// every solve.
struct CachedTable {
  long mtime = -1;
  long size = -1;
  bool ok = false;
  Table table;
};

const CachedTable* cached_table(const std::string& path) {
  static std::mutex mu;
  static std::map<std::string, CachedTable> cache;
  struct stat st {};
  const bool statted = ::stat(path.c_str(), &st) == 0;
  const long mtime = statted ? static_cast<long>(st.st_mtime) : -1;
  const long size = statted ? static_cast<long>(st.st_size) : -1;
  std::lock_guard<std::mutex> lock(mu);
  CachedTable& slot = cache[path];
  if (slot.mtime != mtime || slot.size != size) {
    slot.mtime = mtime;
    slot.size = size;
    std::string err;
    slot.ok = statted && load_table(path, slot.table, &err);
    if (!slot.ok && statted)
      std::fprintf(stderr, "dnc: ignoring DNC_TUNE_TABLE %s: %s\n", path.c_str(),
                   err.c_str());
  }
  return &slot;
}

}  // namespace

bool parse_table(const std::string& json_text, Table& out, std::string* err) {
  out = Table{};
  json::Value root;
  if (!json::parse(json_text, root, err)) return false;
  if (!root.is_object()) {
    if (err) *err = "table is not a JSON object";
    return false;
  }
  out.version = static_cast<int>(root.member_number("version", 0.0));
  if (out.version != 1) {
    if (err) *err = "unsupported tuning-table version " + std::to_string(out.version);
    return false;
  }
  const json::Value* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (err) *err = "no entries array";
    return false;
  }
  for (const json::Value& e : entries->array) {
    if (!e.is_object()) continue;
    Entry en;
    en.n = static_cast<long>(e.member_number("n", 0.0));
    en.family = e.member_string("family", "");
    en.precision = e.member_string("precision", "");
    en.workers = static_cast<int>(e.member_number("workers", 0.0));
    en.nb = static_cast<index_t>(e.member_number("nb", 0.0));
    en.sched = e.member_string("sched", "");
    en.makespan = e.member_number("makespan", 0.0);
    en.how = e.member_string("how", "");
    if (en.n > 0) out.entries.push_back(std::move(en));
  }
  return true;
}

bool load_table(const std::string& path, Table& out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  if (!parse_table(ss.str(), out, err)) return false;
  out.source = path;
  return true;
}

std::string table_to_json(const Table& t) {
  std::string out = "{\n  \"version\": " + std::to_string(t.version) + ",\n  \"entries\": [";
  for (std::size_t i = 0; i < t.entries.size(); ++i) {
    const Entry& e = t.entries[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.6g", e.makespan);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"n\": " + std::to_string(e.n) + ", \"family\": \"" + escape(e.family) +
           "\", \"precision\": \"" + escape(e.precision) +
           "\", \"workers\": " + std::to_string(e.workers) +
           ", \"nb\": " + std::to_string(e.nb) + ", \"sched\": \"" + escape(e.sched) +
           "\", \"makespan\": " + buf + ", \"how\": \"" + escape(e.how) + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

const Entry* lookup(const Table& t, long n, const std::string& precision, int workers) {
  const Entry* best = nullptr;
  long best_dist = 0;
  for (const Entry& e : t.entries) {
    if (!e.precision.empty() && e.precision != precision) continue;
    if (e.workers != 0 && workers != 0 && e.workers != workers) continue;
    const long dist = e.n > n ? e.n - n : n - e.n;
    if (best == nullptr || dist < best_dist || (dist == best_dist && e.n < best->n)) {
      best = &e;
      best_dist = dist;
    }
  }
  return best;
}

std::string entry_label(const Entry& e) {
  std::string s = "n=" + std::to_string(e.n);
  if (!e.family.empty()) s += " family=" + e.family;
  if (!e.precision.empty()) s += " precision=" + e.precision;
  if (e.workers != 0) s += " workers=" + std::to_string(e.workers);
  if (e.nb > 0) s += " nb=" + std::to_string(e.nb);
  if (!e.sched.empty()) s += " sched=" + e.sched;
  return s;
}

bool apply_env_tuning(Options& opt, index_t n) {
  tls_pending = PendingStamp{};
  const char* path = env::raw("DNC_TUNE_TABLE");
  if (path == nullptr || *path == '\0' || n <= 0) return false;
  const CachedTable* cached = cached_table(path);
  if (!cached->ok) return false;
  const Entry* e =
      lookup(cached->table, static_cast<long>(n), precision_name(opt.precision), opt.threads);
  if (e == nullptr) return false;
  // Explicit Options win: only knobs still at their built-in defaults are
  // replaced. An explicit DNC_SCHED also outranks the table's policy.
  if (e->nb > 0 && opt.nb == kDefaultNb) opt.nb = e->nb;
  if (!e->sched.empty() && !env::is_set("DNC_SCHED") &&
      opt.sched == rt::default_sched_policy())
    rt::parse_sched_policy(e->sched.c_str(), opt.sched);
  tls_pending.tuned = true;
  tls_pending.source = path;
  tls_pending.entry = entry_label(*e);
  {
    std::lock_guard<std::mutex> lock(last_mu);
    last_entry_applied = tls_pending.entry;
  }
  return true;
}

void stamp_report(obs::SolveReport& rep) {
  rep.tuned = tls_pending.tuned;
  rep.tune_source = tls_pending.source;
  rep.tune_entry = tls_pending.entry;
}

std::string last_applied_entry() {
  std::lock_guard<std::mutex> lock(last_mu);
  return last_entry_applied;
}

}  // namespace dnc::dc::tune
