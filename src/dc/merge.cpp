#include "dc/merge.hpp"

#include <cmath>

#include "blas/level1.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "lapack/lamrg.hpp"

namespace dnc::dc {

template <typename Real>
void run_deflation(MergeContextT<Real>& ctx, MatrixViewT<Real> qblock, Real* d,
                   const index_t* perm) {
  const index_t n1 = ctx.node.n1;
  const index_t m = ctx.node.m;
  const index_t n2 = m - n1;
  // z = (last row of V1, first row of V2) / sqrt(2); the second part's sign
  // flips when the coupling is negative so that the rank-one weight can be
  // taken positive (see dlaed2 and DESIGN.md).
  const Real beta = *ctx.beta_ptr;
  const Real scale = std::sqrt(Real(0.5));
  for (index_t j = 0; j < n1; ++j) ctx.z[j] = scale * qblock(n1 - 1, j);
  const Real sgn = beta < Real(0) ? -scale : scale;
  for (index_t j = n1; j < m; ++j) ctx.z[j] = sgn * qblock(n1, j);
  const Real rho = std::fabs(Real(2) * beta);

  ctx.defl = deflate(n1, n2, d, ctx.z.data(), rho, qblock, perm, perm + n1);

  // Deflated eigenvalues take their final physical slots right away; the
  // secular roots fill d[0..k) as the LAED4 panels complete.
  for (index_t t = 0; t < m - ctx.defl.k; ++t) d[ctx.defl.k + t] = ctx.defl.d_defl[t];

  // Partial-product workspace: panels multiply into their own column.
  ctx.wparts.fill(Real(1));

  ctx.t_deflate_end = now_seconds();
}

template <typename Real>
void finalize_order(const MergeContextT<Real>& ctx, const Real* d, index_t* perm) {
  // d[0..k) ascending (secular roots interlace the poles) and d[k..m)
  // ascending (deflation kept them sorted): a single lamrg pass yields the
  // father's ascending order.
  lapack::lamrg(ctx.defl.k, ctx.node.m - ctx.defl.k, d, 1, 1, perm);
}

template <typename Real>
void merge_sequential(MergeContextT<Real>& ctx, MatrixT<Real>& q, WorkspaceT<Real>& ws,
                      Real* d, index_t* perm, index_t nb) {
  MatrixViewT<Real> qb = ctx.qblock(q);
  run_deflation(ctx, qb, d, perm);
  const index_t m = ctx.node.m;
  MatrixViewT<Real> w1 = ctx.w1(ws);
  MatrixViewT<Real> w2 = ctx.w2(ws);
  MatrixViewT<Real> wd = ctx.wdefl(ws);
  MatrixViewT<Real> dm = ctx.deltam(ws);
  MatrixViewT<Real> sm = ctx.smat(ws);
  for (index_t p = 0; p < ctx.npanels; ++p) {
    const index_t j0 = p * nb;
    const index_t j1 = std::min(j0 + nb, m);
    permute_panel(ctx.defl, qb, w1, w2, wd, j0, j1);
    secular_solve_panel(ctx.defl, j0, j1, d, dm);
    zhat_local_panel(ctx.defl, dm, j0, j1, ctx.wparts.data() + p * ctx.wparts.ld());
  }
  zhat_reduce(ctx.defl, ctx.wparts.view(), ctx.npanels, ctx.zhat.data());
  for (index_t p = 0; p < ctx.npanels; ++p) {
    const index_t j0 = p * nb;
    const index_t j1 = std::min(j0 + nb, m);
    copyback_panel(ctx.defl, wd, j0, j1, qb);
    secular_vectors_panel(ctx.defl, dm, ctx.zhat.data(), j0, j1, sm);
    update_vectors_panel(ctx.defl, w1, w2, sm, j0, j1, qb);
  }
  finalize_order(ctx, d, perm);
}

#define DNC_INSTANTIATE_MERGE(Real)                                                       \
  template void run_deflation<Real>(MergeContextT<Real>&, MatrixViewT<Real>, Real*,       \
                                    const index_t*);                                      \
  template void finalize_order<Real>(const MergeContextT<Real>&, const Real*, index_t*);  \
  template void merge_sequential<Real>(MergeContextT<Real>&, MatrixT<Real>&,              \
                                       WorkspaceT<Real>&, Real*, index_t*, index_t)

DNC_INSTANTIATE_MERGE(double);
DNC_INSTANTIATE_MERGE(float);

#undef DNC_INSTANTIATE_MERGE

}  // namespace dnc::dc
