// Task kinds shared by the runtime-backed D&C drivers, with the kernel
// colouring of the paper's Table II and the memory-bound classification
// used by the DAG replay simulator.
#pragma once

#include "runtime/graph.hpp"

namespace dnc::dc {

struct Kinds {
  rt::KindId scale, partition, laset, stedc, deflate, permute, laed4, localw, reducew,
      copyback, computevect, updatevect, sort;

  explicit Kinds(rt::TaskGraph& g) {
    scale = g.register_kind("ScaleT", false, "#aaaaaa");
    partition = g.register_kind("Partitioning", false, "#aaaaaa");
    laset = g.register_kind("LASET", true, "#7f7f7f");
    stedc = g.register_kind("STEDC", false, "#e377c2");
    deflate = g.register_kind("ComputeDeflation", false, "#17becf");
    permute = g.register_kind("PermuteV", true, "#ff7f0e");
    laed4 = g.register_kind("LAED4", false, "#1f77b4");
    localw = g.register_kind("ComputeLocalW", false, "#2ca02c");
    reducew = g.register_kind("ReduceW", false, "#98df8a");
    copyback = g.register_kind("CopyBackDeflated", true, "#bcbd22");
    computevect = g.register_kind("ComputeVect", false, "#9467bd");
    updatevect = g.register_kind("UpdateVect", false, "#d62728");
    sort = g.register_kind("SortEigenvectors", true, "#8c564b");
  }
};

}  // namespace dnc::dc
