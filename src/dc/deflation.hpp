// Deflation step of one D&C merge (dlaed2 equivalent): given the two sons'
// spectral decompositions, detect eigenpairs of the merged system that are
// already converged (negligible z component, or numerically equal poles
// combined by a Givens rotation), and organise the remaining rank-one
// secular system.
//
// This is the paper's "Compute deflation" join kernel: it is sequential
// within a merge but runs concurrently across independent merges.
// Templated on the working precision Real (double / float); the deflation
// tolerance scales with the precision's epsilon, so fp32 solves deflate
// more aggressively on the same matrix.
#pragma once

#include <vector>

#include "common/matrix.hpp"

namespace dnc::dc {

/// Column types, exactly LAPACK dlaed2's classification:
///   1: non-deflated, support only in the first son (top n1 rows)
///   2: non-deflated, support in both sons (created by cross-son rotations)
///   3: non-deflated, support only in the second son (bottom n2 rows)
///   4: deflated
template <typename Real>
struct DeflationResultT {
  index_t m = 0;    ///< merged size (n1 + n2)
  index_t n1 = 0;   ///< first son size
  index_t k = 0;    ///< number of non-deflated eigenvalues
  Real rho = 0;     ///< scaled rank-one weight (= |2 beta| after z scaling)

  std::vector<Real> dlamda;  ///< k poles of the secular system, ascending
  std::vector<Real> w;       ///< z components for the poles (dlamda order)
  std::vector<Real> d_defl;  ///< m-k deflated eigenvalues, ascending

  /// Grouped storage order: positions 0..k-1 hold non-deflated columns
  /// grouped by type (all 1s, then 2s, then 3s), positions k..m-1 the
  /// deflated columns in ascending eigenvalue order. indx[g] is the
  /// *physical* column (0-based within the node's block) at grouped
  /// position g.
  std::vector<index_t> indx;

  /// For grouped positions g in [0, k): the rank of that column's pole in
  /// dlamda (row index into the secular eigenvector matrix).
  std::vector<index_t> rank_of;

  /// Counts of types 1..4 (ctot[t-1]).
  index_t ctot[4] = {0, 0, 0, 0};

  index_t k12() const { return ctot[0] + ctot[1]; }  ///< columns with top support
  index_t k23() const { return ctot[1] + ctot[2]; }  ///< columns with bottom support
};

using DeflationResult = DeflationResultT<double>;

/// Runs deflation for a merge of sizes n1 + n2 = m.
///
/// d (size m): sons' eigenvalues in physical column order; entries of
///   rotated pairs are updated in place.
/// z (size m): the scaled rank-one vector (already 1/sqrt(2)-scaled and
///   sign-adjusted); zeroed entries mark rotated-away columns.
/// q (m x m view): sons' eigenvector block; Givens rotations are applied to
///   its columns in place.
/// perm1/perm2: ascending orders of the sons' eigenvalues (physical
///   indices, perm2 relative to the second son).
template <typename Real>
DeflationResultT<Real> deflate(index_t n1, index_t n2, Real* d, Real* z, Real rho_in,
                               MatrixViewT<Real> q, const index_t* perm1,
                               const index_t* perm2);

}  // namespace dnc::dc
