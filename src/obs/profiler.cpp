#include "obs/profiler.hpp"

#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <ucontext.h>
#include <vector>

#include "common/env.hpp"

#include "obs/httpd.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

// glibc exposes the SIGEV_THREAD_ID target field under this name only with
// recent headers; the union member itself is stable ABI.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace dnc::obs::profiler {
namespace {

// One captured call stack. pc[0] is the interrupted instruction (leaf);
// pc[1..depth) are return addresses up the frame-pointer chain.
struct Sample {
  void* pc[kMaxDepth];
  int depth;
  int id;                ///< worker id within its tag namespace
  const char* tag;       ///< "worker" / "pool" (static lifetime)
  const char* task;      ///< interned task-kind name or nullptr
};

// Per-registered-thread state. The signal handler (running on the owning
// thread) is the only producer of the ring; drains are the only consumer.
// Everything the handler touches is either thread-owned or read through
// acquire/release pairs, so the handler never takes a lock.
struct ThreadState {
  pid_t tid = 0;
  pthread_t pth{};
  const char* tag = "worker";
  int id = -1;
  std::atomic<const char*> task{nullptr};
  // Stack extents for bounding the frame-pointer walk.
  std::uintptr_t stack_lo = 0, stack_hi = 0;
  // SPSC ring. slots is allocated when the thread is first armed.
  std::atomic<Sample*> slots{nullptr};
  std::atomic<std::uint32_t> head{0}, tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> truncated{0};
  // Timer lifecycle, guarded by the registry mutex.
  timer_t timer{};
  bool timer_armed = false;

  ~ThreadState() { delete[] slots.load(std::memory_order_relaxed); }
};

// Aggregate key: [tag, task, id, depth, pc...] encoded as uintptr_t so one
// map covers attribution and stack. tag/task are interned pointers, hence
// directly comparable.
using AggKey = std::vector<std::uintptr_t>;

struct State {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadState>> threads;  // under mu
  std::map<AggKey, std::uint64_t> agg;                // under mu
  std::uint64_t samples = 0;                          // under mu
  std::uint64_t dropped = 0;                          // under mu (retired threads)
  std::uint64_t truncated = 0;                        // under mu (retired threads)
  int hz = kDefaultHz;                                // active session rate
  bool handler_installed = false;
  bool continuous_boot = false;
  std::mutex session_mu;  // serializes profile_for windows
};

// Leaked: the at-exit dump and detached drainer may outlive static dtors.
State& state() {
  static State* s = new State;
  return *s;
}

std::atomic<bool> g_active{false};
// -1 uninitialised; >= 0 is the parsed DNC_PROFILE_HZ (0 = disabled).
std::atomic<int> g_env_hz{-1};

int parse_env_hz() {
  const char* e = env::raw("DNC_PROFILE_HZ");
  if (!e || !*e || !std::strcmp(e, "0") || !std::strcmp(e, "off")) return 0;
  if (!std::strcmp(e, "1") || !std::strcmp(e, "on") || !std::strcmp(e, "true"))
    return kDefaultHz;
  int hz = std::atoi(e);
  if (hz <= 0) return 0;
  return std::min(hz, 10000);
}

int env_hz_cached() noexcept {
  int v = g_env_hz.load(std::memory_order_relaxed);
  if (v < 0) {
    v = parse_env_hz();
    g_env_hz.store(v, std::memory_order_relaxed);
  }
  return v;
}

// --- async-signal-safe stack capture ---------------------------------------

/// Walks the frame-pointer chain from the interrupted context. Bounded by
/// the thread's stack extents and strict monotonicity, so a frame built
/// without a frame pointer ends the walk instead of chasing garbage.
int capture_stack(void* ucontext, const ThreadState* ts, void** out) {
  int depth = 0;
  std::uintptr_t pc = 0, fp = 0, sp = 0;
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  const auto* uc = static_cast<const ucontext_t*>(ucontext);
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)ucontext;
#endif
  if (pc == 0) return 0;
  out[depth++] = reinterpret_cast<void*>(pc);
  std::uintptr_t lo = sp ? sp : ts->stack_lo;
  const std::uintptr_t hi = ts->stack_hi;
  std::uintptr_t frame = fp;
  while (depth < kMaxDepth) {
    if (frame < lo || frame + 2 * sizeof(void*) > hi || (frame & (sizeof(void*) - 1)))
      break;
    const std::uintptr_t* f = reinterpret_cast<const std::uintptr_t*>(frame);
    const std::uintptr_t ret = f[1];
    const std::uintptr_t next = f[0];
    if (ret < 4096) break;  // null / bogus return address
    out[depth++] = reinterpret_cast<void*>(ret);
    if (next <= frame) break;  // frames must move up the stack
    lo = frame;
    frame = next;
  }
  return depth;
}

void sigprof_handler(int, siginfo_t* si, void* uctx) {
  if (!si || si->si_code != SI_TIMER) return;
  auto* ts = static_cast<ThreadState*>(si->si_value.sival_ptr);
  if (!ts || !g_active.load(std::memory_order_relaxed)) return;
  Sample* slots = ts->slots.load(std::memory_order_acquire);
  if (!slots) return;
  const int saved_errno = errno;
  const std::uint32_t head = ts->head.load(std::memory_order_relaxed);
  const std::uint32_t tail = ts->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingCapacity) {
    ts->dropped.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  Sample& s = slots[head % kRingCapacity];
  s.depth = capture_stack(uctx, ts, s.pc);
  if (s.depth >= kMaxDepth) ts->truncated.fetch_add(1, std::memory_order_relaxed);
  s.id = ts->id;
  s.tag = ts->tag;
  s.task = ts->task.load(std::memory_order_relaxed);
  ts->head.store(head + 1, std::memory_order_release);
  errno = saved_errno;
}

// --- ring draining (registry lock held) -------------------------------------

void drain_thread_locked(State& s, ThreadState& ts) {
  Sample* slots = ts.slots.load(std::memory_order_relaxed);
  if (!slots) return;
  const std::uint32_t head = ts.head.load(std::memory_order_acquire);
  std::uint32_t tail = ts.tail.load(std::memory_order_relaxed);
  AggKey key;
  for (; tail != head; ++tail) {
    const Sample& sm = slots[tail % kRingCapacity];
    key.clear();
    key.reserve(4 + sm.depth);
    key.push_back(reinterpret_cast<std::uintptr_t>(sm.tag));
    key.push_back(reinterpret_cast<std::uintptr_t>(sm.task));
    key.push_back(static_cast<std::uintptr_t>(sm.id));
    key.push_back(static_cast<std::uintptr_t>(sm.depth));
    for (int i = 0; i < sm.depth; ++i)
      key.push_back(reinterpret_cast<std::uintptr_t>(sm.pc[i]));
    ++s.agg[key];
    ++s.samples;
  }
  ts.tail.store(tail, std::memory_order_release);
}

void drain_all_locked(State& s) {
  for (const auto& ts : s.threads) drain_thread_locked(s, *ts);
}

// --- timer lifecycle (registry lock held) ------------------------------------

void install_handler_locked(State& s) {
  if (s.handler_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) == 0) s.handler_installed = true;
}

bool arm_timer_locked(State& s, ThreadState& ts) {
  if (ts.timer_armed) return true;
  if (!ts.slots.load(std::memory_order_relaxed))
    ts.slots.store(new Sample[kRingCapacity], std::memory_order_release);
  clockid_t clk;
  if (pthread_getcpuclockid(ts.pth, &clk) != 0) return false;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof sev);
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_value.sival_ptr = &ts;
  sev.sigev_notify_thread_id = ts.tid;
  if (timer_create(clk, &sev, &ts.timer) != 0) return false;
  const long period_ns = std::max(1000000000L / std::max(s.hz, 1), 100000L);
  struct itimerspec its;
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(ts.timer, 0, &its, nullptr) != 0) {
    timer_delete(ts.timer);
    return false;
  }
  ts.timer_armed = true;
  return true;
}

void disarm_timer_locked(ThreadState& ts) {
  if (!ts.timer_armed) return;
  timer_delete(ts.timer);
  ts.timer_armed = false;
}

// --- symbolization (dump time only) -----------------------------------------

std::string sanitize_frame(std::string name) {
  for (char& c : name)
    if (c == ';' || c == '\n' || c == '\r') c = ',';
  if (name.size() > 200) {
    name.resize(197);
    name += "...";
  }
  return name;
}

/// Resolves one pc to a frame label. `call_site` shifts return addresses
/// back into the calling instruction's symbol.
std::string symbolize(void* pc, bool call_site) {
  const std::uintptr_t addr =
      reinterpret_cast<std::uintptr_t>(pc) - (call_site ? 1 : 0);
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(addr), &info) && info.dli_sname) {
    int status = 0;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string out = status == 0 && dem ? dem : info.dli_sname;
    std::free(dem);
    return sanitize_frame(std::move(out));
  }
  char buf[64];
  if (dladdr(reinterpret_cast<void*>(addr), &info) && info.dli_fname) {
    const char* base = std::strrchr(info.dli_fname, '/');
    std::snprintf(buf, sizeof buf, "%s+0x%zx", base ? base + 1 : info.dli_fname,
                  static_cast<std::size_t>(addr -
                                           reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
    return sanitize_frame(buf);
  }
  std::snprintf(buf, sizeof buf, "0x%zx", static_cast<std::size_t>(addr));
  return buf;
}

/// Renders `rows` (already aggregated) as folded lines, largest count
/// first. Subtracting `before` (may be null) yields window profiles.
std::string render_folded(const std::map<AggKey, std::uint64_t>& rows,
                          const std::map<AggKey, std::uint64_t>* before, int hz,
                          std::uint64_t dropped) {
  struct Line {
    std::string text;
    std::uint64_t count;
  };
  std::vector<Line> lines;
  std::map<void*, std::string> leaf_cache, site_cache;
  std::uint64_t total = 0;
  for (const auto& [key, count_now] : rows) {
    std::uint64_t count = count_now;
    if (before) {
      auto it = before->find(key);
      if (it != before->end()) count = count_now >= it->second ? count_now - it->second : 0;
    }
    if (count == 0) continue;
    total += count;
    const char* tag = reinterpret_cast<const char*>(key[0]);
    const char* task = reinterpret_cast<const char*>(key[1]);
    const int id = static_cast<int>(key[2]);
    const int depth = static_cast<int>(key[3]);
    std::string text = tag ? tag : "thread";
    text += ":";
    text += std::to_string(id);
    if (task) {
      text += ";task:";
      text += task;
    }
    // Root-first: the deepest captured frame down to the leaf.
    for (int i = depth - 1; i >= 0; --i) {
      void* pc = reinterpret_cast<void*>(key[4 + i]);
      auto& cache = i == 0 ? leaf_cache : site_cache;
      auto it = cache.find(pc);
      if (it == cache.end()) it = cache.emplace(pc, symbolize(pc, i != 0)).first;
      text += ";";
      text += it->second;
    }
    lines.push_back({std::move(text), count});
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.count != b.count ? a.count > b.count : a.text < b.text;
  });
  std::string out;
  char hdr[160];
  std::snprintf(hdr, sizeof hdr,
                "# dnc profile  hz=%d  samples=%llu  unique_stacks=%zu  dropped=%llu\n", hz,
                static_cast<unsigned long long>(total), lines.size(),
                static_cast<unsigned long long>(dropped));
  out += hdr;
  for (const Line& l : lines) {
    out += l.text;
    out += " ";
    out += std::to_string(l.count);
    out += "\n";
  }
  return out;
}

std::uint64_t dropped_total_locked(State& s) {
  std::uint64_t d = s.dropped;
  for (const auto& ts : s.threads) d += ts->dropped.load(std::memory_order_relaxed);
  return d;
}

}  // namespace

// --- gate -------------------------------------------------------------------

bool env_enabled() noexcept { return env_hz_cached() > 0; }

int env_hz() noexcept {
  const int v = env_hz_cached();
  return v > 0 ? v : kDefaultHz;
}

bool registration_wanted() noexcept { return env_enabled() || httpd::enabled(); }

void refresh_from_env() noexcept {
  g_env_hz.store(parse_env_hz(), std::memory_order_relaxed);
}

// --- interning --------------------------------------------------------------

const char* intern(const std::string& str) {
  static std::mutex mu;
  static std::set<std::string>* table = new std::set<std::string>;
  std::lock_guard<std::mutex> lk(mu);
  return table->insert(str).first->c_str();
}

// --- thread registration ----------------------------------------------------

ThreadRegistration::ThreadRegistration(const char* tag, int id) noexcept {
  if (!registration_wanted()) return;
  ensure_continuous();
  State& s = state();
  auto ts = std::make_shared<ThreadState>();
  ts->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  ts->pth = pthread_self();
  ts->tag = tag;
  ts->id = id;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* lo = nullptr;
    std::size_t sz = 0;
    if (pthread_attr_getstack(&attr, &lo, &sz) == 0) {
      ts->stack_lo = reinterpret_cast<std::uintptr_t>(lo);
      ts->stack_hi = ts->stack_lo + sz;
    }
    pthread_attr_destroy(&attr);
  }
  std::lock_guard<std::mutex> lk(s.mu);
  s.threads.push_back(ts);
  state_ = ts.get();
  if (g_active.load(std::memory_order_relaxed)) arm_timer_locked(s, *ts);
}

ThreadRegistration::~ThreadRegistration() {
  if (!state_) return;
  auto* ts = static_cast<ThreadState*>(state_);
  State& s = state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    disarm_timer_locked(*ts);
  }
  // A signal generated before timer_delete may still be pending for this
  // thread; block it so the handler cannot run during or after teardown
  // (the signal dies with the thread).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  std::lock_guard<std::mutex> lk(s.mu);
  drain_thread_locked(s, *ts);
  s.dropped += ts->dropped.load(std::memory_order_relaxed);
  s.truncated += ts->truncated.load(std::memory_order_relaxed);
  for (auto it = s.threads.begin(); it != s.threads.end(); ++it) {
    if (it->get() == ts) {
      s.threads.erase(it);
      break;
    }
  }
  state_ = nullptr;
}

void ThreadRegistration::set_task(const char* interned_kind) noexcept {
  if (!state_) return;
  static_cast<ThreadState*>(state_)->task.store(interned_kind, std::memory_order_relaxed);
}

// --- session control --------------------------------------------------------

bool start(int hz) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (g_active.load(std::memory_order_relaxed)) return false;
  s.hz = hz > 0 ? std::min(hz, 10000) : env_hz();
  install_handler_locked(s);
  if (!s.handler_installed) return false;
  g_active.store(true, std::memory_order_relaxed);
  for (const auto& ts : s.threads) arm_timer_locked(s, *ts);
  return true;
}

void stop() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!g_active.load(std::memory_order_relaxed)) return;
  g_active.store(false, std::memory_order_relaxed);
  for (const auto& ts : s.threads) disarm_timer_locked(*ts);
  drain_all_locked(s);
}

bool active() noexcept { return g_active.load(std::memory_order_relaxed); }

void drain() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  drain_all_locked(s);
}

Totals totals() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  Totals t;
  t.samples = s.samples;
  t.dropped = dropped_total_locked(s);
  t.truncated = s.truncated;
  for (const auto& ts : s.threads)
    t.truncated += ts->truncated.load(std::memory_order_relaxed);
  return t;
}

std::size_t registered_threads() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.threads.size();
}

std::string folded_text() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  drain_all_locked(s);
  return render_folded(s.agg, nullptr, s.hz, dropped_total_locked(s));
}

std::string perfetto_samples_json() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  drain_all_locked(s);
  // One instant event per unique stack; ts spaces them 1us apart so the
  // Perfetto UI renders them as a sample track rather than a single blob.
  std::string out = "{\"traceEvents\": [\n";
  std::map<void*, std::string> leaf_cache, site_cache;
  bool first = true;
  long ts_us = 0;
  for (const auto& [key, count] : s.agg) {
    const char* task = reinterpret_cast<const char*>(key[1]);
    const int id = static_cast<int>(key[2]);
    const int depth = static_cast<int>(key[3]);
    std::string stack;
    for (int i = depth - 1; i >= 0; --i) {
      void* pc = reinterpret_cast<void*>(key[4 + i]);
      auto& cache = i == 0 ? leaf_cache : site_cache;
      auto it = cache.find(pc);
      if (it == cache.end()) it = cache.emplace(pc, symbolize(pc, i != 0)).first;
      if (!stack.empty()) stack += ";";
      stack += it->second;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 4242, "
                  "\"tid\": %d, \"ts\": %ld, \"args\": {\"count\": %llu, \"stack\": \"",
                  first ? "" : ",\n", task ? task : "sample", id, ts_us,
                  static_cast<unsigned long long>(count));
    out += buf;
    // stack frames were sanitized against quotes? symbolize strips ; \n \r
    // but not quotes -- escape minimally here.
    for (char c : stack) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"}}";
    first = false;
    ts_us += 1;
  }
  out += "\n]}\n";
  return out;
}

std::string profile_for(double seconds, int hz) {
  State& s = state();
  std::lock_guard<std::mutex> session(s.session_mu);
  std::map<AggKey, std::uint64_t> before;
  std::uint64_t dropped_before = 0;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    drain_all_locked(s);
    before = s.agg;
    dropped_before = dropped_total_locked(s);
  }
  bool started = false;
  if (!active()) started = start(hz);
  seconds = std::clamp(seconds, 0.05, 120.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  if (started)
    stop();
  else
    drain();
  std::lock_guard<std::mutex> lk(s.mu);
  return render_folded(s.agg, &before, s.hz, dropped_total_locked(s) - dropped_before);
}

void ensure_continuous() {
  if (!env_enabled()) return;
  State& s = state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.continuous_boot) return;
    s.continuous_boot = true;
  }
  start(env_hz());
  // Background drainer: keeps long continuous runs from overflowing the
  // per-thread rings. Detached by design -- it only touches leaked state.
  std::thread([] {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      if (g_active.load(std::memory_order_relaxed)) drain();
    }
  }).detach();
  std::atexit([] {
    const char* e = env::raw("DNC_PROFILE");
    std::string path = e && *e ? e : "dnc_profile.folded";
    path = expand_path_placeholders(path, 0);
    stop();
    const std::string text = folded_text();
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
  });
}

void reset_for_tests() {
  stop();
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.agg.clear();
  s.samples = 0;
  s.dropped = 0;
  s.truncated = 0;
  for (const auto& ts : s.threads) {
    ts->dropped.store(0, std::memory_order_relaxed);
    ts->truncated.store(0, std::memory_order_relaxed);
  }
  g_env_hz.store(parse_env_hz(), std::memory_order_relaxed);
}

}  // namespace dnc::obs::profiler
