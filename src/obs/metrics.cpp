#include "obs/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "common/json.hpp"
#include "obs/report.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs::metrics {
namespace {

constexpr int kMaxMetrics = 256;

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int len = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (len > 0) out.append(buf, std::min<std::size_t>(len, sizeof buf - 1));
}

inline std::uint64_t dbits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
inline double bits_d(std::uint64_t b) noexcept { return std::bit_cast<double>(b); }

// One thread's slice of every metric. Only the owning thread writes (relaxed
// single-writer stores, the counters.cpp idiom); the scraper reads. Histogram
// bucket arrays are allocated on first observation: the owner is the sole
// writer of the pointer slot, so a release store / acquire load pairing is
// all the synchronisation the array contents need.
struct Shard {
  std::atomic<std::uint64_t> count[kMaxMetrics] = {};
  std::atomic<std::uint64_t> sum_bits[kMaxMetrics] = {};  // double payload
  std::atomic<std::atomic<std::uint64_t>*> buckets[kMaxMetrics] = {};

  ~Shard() {
    for (auto& b : buckets) delete[] b.load(std::memory_order_relaxed);
  }
};

struct MetricInfo {
  Kind kind = Kind::Counter;
  std::string name, labels, help;
  std::atomic<std::uint64_t> gauge_bits{0};  // gauges are process-global
};

// Leaked singleton: the at-exit exporter and a detached interval exporter
// may still be scraping while static destructors run elsewhere.
struct State {
  std::mutex mu;
  std::vector<std::unique_ptr<MetricInfo>> metrics;       // under mu
  std::map<std::string, int> index;                       // name\x01labels -> id
  std::vector<std::shared_ptr<Shard>> shards;             // under mu
  std::atomic<std::uint64_t> generation{0};               // bumped by reset_for_tests
  std::atomic<unsigned long> export_seq{0};
  std::string export_path;  // under mu; "" = in-memory only
  double interval_s = 0;    // under mu
  bool exporter_installed = false;
};

State& state() {
  static State* s = new State;
  return *s;
}

// -1 = uninitialised; 0/1 after the first gate check. The recording hot
// path is the relaxed load below plus one branch.
std::atomic<int> g_enabled{-1};

bool read_env(std::string* path, double* interval) {
  const char* e = env::raw("DNC_METRICS");
  if (!e || !*e || !std::strcmp(e, "0") || !std::strcmp(e, "off")) return false;
  if (std::strcmp(e, "1") && std::strcmp(e, "on") && std::strcmp(e, "true")) *path = e;
  *interval = env::number("DNC_METRICS_INTERVAL", *interval);
  return true;
}

bool init_enabled() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur >= 0) return cur != 0;
  std::string path;
  double iv = 0;
  bool on = read_env(&path, &iv);
  s.export_path = std::move(path);
  s.interval_s = iv;
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

Shard* tls_shard() {
  struct TlsRef {
    std::shared_ptr<Shard> shard;
    std::uint64_t gen = ~std::uint64_t{0};
  };
  thread_local TlsRef t;
  State& s = state();
  std::uint64_t g = s.generation.load(std::memory_order_acquire);
  if (t.gen != g) {  // first use on this thread, or registry was reset
    t.shard = std::make_shared<Shard>();
    std::lock_guard<std::mutex> lk(s.mu);
    s.shards.push_back(t.shard);
    t.gen = g;
  }
  return t.shard.get();
}

const char* kind_str(Kind k) {
  switch (k) {
    case Kind::Counter: return "counter";
    case Kind::Gauge: return "gauge";
    case Kind::Histogram: return "histogram";
  }
  return "counter";
}

}  // namespace

// --- bucketing ------------------------------------------------------------

int bucket_index(double v) noexcept {
  if (!(v >= std::ldexp(1.0, kHistMinExp))) return 0;  // NaN, <=0, underflow
  if (v >= std::ldexp(1.0, kHistMaxExp)) return kHistBuckets - 1;
  int e;
  double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  double f = std::log2(2.0 * m);  // fractional octave position in [0, 1)
  int sub = static_cast<int>(f * kHistSub);
  if (sub >= kHistSub) sub = kHistSub - 1;
  if (sub < 0) sub = 0;
  int idx = 1 + (e - 1 - kHistMinExp) * kHistSub + sub;
  return std::clamp(idx, 1, kHistBuckets - 2);
}

double bucket_lower(int i) noexcept {
  if (i <= 0) return 0.0;
  if (i >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp);
  int k = i - 1;
  return std::exp2(kHistMinExp + k / kHistSub +
                   static_cast<double>(k % kHistSub) / kHistSub);
}

double bucket_upper(int i) noexcept {
  if (i <= 0) return std::ldexp(1.0, kHistMinExp);
  if (i >= kHistBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower(i + 1);
}

// --- gate -----------------------------------------------------------------

bool enabled() noexcept {
  int s = g_enabled.load(std::memory_order_relaxed);
  return s < 0 ? init_enabled() : s != 0;
}

void refresh_from_env() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  std::string path;
  double iv = 0;
  bool on = read_env(&path, &iv);
  s.export_path = std::move(path);
  s.interval_s = iv;
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- registration + recording ---------------------------------------------

Id register_metric(Kind kind, const std::string& name, const std::string& labels,
                   const std::string& help) {
  if (!enabled()) return {};
  State& s = state();
  int id;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    std::string key = name;
    key.push_back('\x01');
    key += labels;
    auto it = s.index.find(key);
    if (it != s.index.end()) return {it->second};
    if (s.metrics.size() >= kMaxMetrics) return {};
    auto mi = std::make_unique<MetricInfo>();
    mi->kind = kind;
    mi->name = name;
    mi->labels = labels;
    mi->help = help;
    id = static_cast<int>(s.metrics.size());
    s.metrics.push_back(std::move(mi));
    s.index.emplace(std::move(key), id);
  }
  ensure_exporter();
  return {id};
}

void add(Id id, double delta) noexcept {
  if (!enabled() || !id.valid()) return;
  Shard* sh = tls_shard();
  auto& cell = sh->sum_bits[id.v];
  cell.store(dbits(bits_d(cell.load(std::memory_order_relaxed)) + delta),
             std::memory_order_relaxed);
}

void set_gauge(Id id, double value) noexcept {
  if (!enabled() || !id.valid()) return;
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (static_cast<std::size_t>(id.v) < s.metrics.size())
    s.metrics[id.v]->gauge_bits.store(dbits(value), std::memory_order_relaxed);
}

void observe(Id id, double value) noexcept {
  if (!enabled() || !id.valid()) return;
  Shard* sh = tls_shard();
  auto& cnt = sh->count[id.v];
  cnt.store(cnt.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  auto& sum = sh->sum_bits[id.v];
  sum.store(dbits(bits_d(sum.load(std::memory_order_relaxed)) + value),
            std::memory_order_relaxed);
  auto* b = sh->buckets[id.v].load(std::memory_order_relaxed);
  if (!b) {
    b = new std::atomic<std::uint64_t>[kHistBuckets]();
    sh->buckets[id.v].store(b, std::memory_order_release);
  }
  int i = bucket_index(value);
  b[i].store(b[i].load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

// --- scraping -------------------------------------------------------------

double MetricSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * count)));
  std::uint64_t cum = 0;
  for (const auto& [i, c] : buckets) {
    cum += c;
    if (cum >= target) {
      if (i == 0) return bucket_upper(0) / 2;
      if (i == kHistBuckets - 1) return bucket_lower(i);
      return std::sqrt(bucket_lower(i) * bucket_upper(i));
    }
  }
  return buckets.empty() ? 0.0 : bucket_lower(buckets.back().first);
}

Snapshot scrape() {
  Snapshot out;
  out.pid = static_cast<long>(::getpid());
  out.hostname = current_hostname();
  out.timestamp = iso8601_timestamp_utc();
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  out.metrics.resize(s.metrics.size());
  std::vector<std::uint64_t> bsum(kHistBuckets);
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    const MetricInfo& m = *s.metrics[i];
    MetricSnapshot& ms = out.metrics[i];
    ms.kind = m.kind;
    ms.name = m.name;
    ms.labels = m.labels;
    ms.help = m.help;
    if (m.kind == Kind::Gauge) {
      ms.value = bits_d(m.gauge_bits.load(std::memory_order_relaxed));
      continue;
    }
    double sum = 0.0;
    std::uint64_t cnt = 0;
    std::fill(bsum.begin(), bsum.end(), 0);
    for (const auto& sh : s.shards) {
      sum += bits_d(sh->sum_bits[i].load(std::memory_order_relaxed));
      cnt += sh->count[i].load(std::memory_order_relaxed);
      if (const auto* b = sh->buckets[i].load(std::memory_order_acquire))
        for (int j = 0; j < kHistBuckets; ++j)
          bsum[j] += b[j].load(std::memory_order_relaxed);
    }
    if (m.kind == Kind::Counter) {
      ms.value = sum;
    } else {
      ms.count = cnt;
      ms.sum = sum;
      for (int j = 0; j < kHistBuckets; ++j)
        if (bsum[j]) ms.buckets.emplace_back(j, bsum[j]);
    }
  }
  return out;
}

std::string prometheus_text(const Snapshot& s) {
  std::string out;
  appendf(out, "# dnc metrics pid=%ld host=%s time=%s\n", s.pid, s.hostname.c_str(),
          s.timestamp.c_str());
  // Prometheus requires every series of a family to be contiguous: group by
  // name, preserving first-registration order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const MetricSnapshot*>> fam;
  for (const auto& m : s.metrics) {
    auto [it, fresh] = fam.try_emplace(m.name);
    if (fresh) order.push_back(m.name);
    it->second.push_back(&m);
  }
  for (const auto& name : order) {
    const auto& series = fam[name];
    appendf(out, "# HELP %s %s\n", name.c_str(), series[0]->help.c_str());
    appendf(out, "# TYPE %s %s\n", name.c_str(), kind_str(series[0]->kind));
    for (const MetricSnapshot* m : series) {
      const char* lb = m->labels.c_str();
      if (m->kind == Kind::Histogram) {
        std::uint64_t cum = 0;
        for (const auto& [i, c] : m->buckets) {
          cum += c;
          appendf(out, "%s_bucket{%s%sle=\"%.9g\"} %llu\n", name.c_str(), lb,
                  m->labels.empty() ? "" : ",", bucket_upper(i),
                  static_cast<unsigned long long>(cum));
        }
        appendf(out, "%s_bucket{%s%sle=\"+Inf\"} %llu\n", name.c_str(), lb,
                m->labels.empty() ? "" : ",",
                static_cast<unsigned long long>(m->count));
        if (m->labels.empty()) {
          appendf(out, "%s_sum %.17g\n", name.c_str(), m->sum);
          appendf(out, "%s_count %llu\n", name.c_str(),
                  static_cast<unsigned long long>(m->count));
        } else {
          appendf(out, "%s_sum{%s} %.17g\n", name.c_str(), lb, m->sum);
          appendf(out, "%s_count{%s} %llu\n", name.c_str(), lb,
                  static_cast<unsigned long long>(m->count));
        }
      } else if (m->labels.empty()) {
        appendf(out, "%s %.17g\n", name.c_str(), m->value);
      } else {
        appendf(out, "%s{%s} %.17g\n", name.c_str(), lb, m->value);
      }
    }
  }
  return out;
}

std::string json_text(const Snapshot& s) {
  std::string out;
  out += "{\n";
  appendf(out, "  \"schema\": \"dnc-metrics-v1\",\n  \"pid\": %ld,\n", s.pid);
  appendf(out, "  \"hostname\": \"%s\",\n", rt::json_escape(s.hostname).c_str());
  appendf(out, "  \"timestamp\": \"%s\",\n", rt::json_escape(s.timestamp).c_str());
  out += "  \"metrics\": [";
  for (std::size_t i = 0; i < s.metrics.size(); ++i) {
    const MetricSnapshot& m = s.metrics[i];
    out += i ? ",\n    {" : "\n    {";
    appendf(out, "\"kind\": \"%s\", \"name\": \"%s\", \"labels\": \"%s\"", kind_str(m.kind),
            rt::json_escape(m.name).c_str(), rt::json_escape(m.labels).c_str());
    appendf(out, ", \"help\": \"%s\"", rt::json_escape(m.help).c_str());
    if (m.kind == Kind::Histogram) {
      appendf(out, ", \"count\": %llu, \"sum\": %.17g, \"buckets\": [",
              static_cast<unsigned long long>(m.count), m.sum);
      for (std::size_t j = 0; j < m.buckets.size(); ++j)
        appendf(out, "%s[%d, %llu]", j ? ", " : "", m.buckets[j].first,
                static_cast<unsigned long long>(m.buckets[j].second));
      out += "]";
    } else {
      appendf(out, ", \"value\": %.17g", m.value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool parse_snapshot(const std::string& text, Snapshot& out, std::string* err) {
  json::Value root;
  if (!json::parse(text, root, err)) return false;
  if (!root.is_object() || root.member_string("schema", "") != "dnc-metrics-v1") {
    if (err) *err = "not a dnc-metrics-v1 snapshot";
    return false;
  }
  out = Snapshot{};
  out.pid = static_cast<long>(root.member_number("pid", 0));
  out.hostname = root.member_string("hostname", "");
  out.timestamp = root.member_string("timestamp", "");
  const json::Value* ms = root.find("metrics");
  if (!ms || !ms->is_array()) {
    if (err) *err = "snapshot has no metrics array";
    return false;
  }
  for (const json::Value& v : ms->array) {
    MetricSnapshot m;
    std::string kind = v.member_string("kind", "counter");
    m.kind = kind == "gauge" ? Kind::Gauge
                             : kind == "histogram" ? Kind::Histogram : Kind::Counter;
    m.name = v.member_string("name", "");
    m.labels = v.member_string("labels", "");
    m.help = v.member_string("help", "");
    m.value = v.member_number("value", 0.0);
    m.count = static_cast<std::uint64_t>(v.member_number("count", 0));
    m.sum = v.member_number("sum", 0.0);
    if (const json::Value* b = v.find("buckets"); b && b->is_array())
      for (const json::Value& pair : b->array)
        if (pair.is_array() && pair.array.size() == 2)
          m.buckets.emplace_back(static_cast<int>(pair.array[0].number_or(0)),
                                 static_cast<std::uint64_t>(pair.array[1].number_or(0)));
    out.metrics.push_back(std::move(m));
  }
  return true;
}

namespace {

std::string series_key(const MetricSnapshot& m) {
  return m.labels.empty() ? m.name : m.name + "{" + m.labels + "}";
}

void render_one(std::string& out, const MetricSnapshot& m) {
  std::string key = series_key(m);
  if (m.kind == Kind::Histogram) {
    double mean = m.count ? m.sum / static_cast<double>(m.count) : 0.0;
    appendf(out, "%-9s %-64s count=%llu mean=%.4g p50=%.4g p90=%.4g p99=%.4g\n",
            kind_str(m.kind), key.c_str(), static_cast<unsigned long long>(m.count), mean,
            m.quantile(0.50), m.quantile(0.90), m.quantile(0.99));
  } else {
    appendf(out, "%-9s %-64s %.10g\n", kind_str(m.kind), key.c_str(), m.value);
  }
}

}  // namespace

std::string render_snapshot(const Snapshot& s) {
  std::string out;
  appendf(out, "metrics snapshot  pid=%ld  host=%s  time=%s  (%zu series)\n", s.pid,
          s.hostname.c_str(), s.timestamp.c_str(), s.metrics.size());
  for (const auto& m : s.metrics) render_one(out, m);
  return out;
}

std::string render_diff(const Snapshot& a, const Snapshot& b) {
  std::string out;
  appendf(out, "metrics diff  %s (%s)  ->  %s (%s)\n", a.timestamp.c_str(),
          a.hostname.c_str(), b.timestamp.c_str(), b.hostname.c_str());
  std::map<std::string, const MetricSnapshot*> in_a;
  for (const auto& m : a.metrics) in_a.emplace(series_key(m), &m);
  for (const auto& mb : b.metrics) {
    std::string key = series_key(mb);
    auto it = in_a.find(key);
    if (it == in_a.end()) {
      render_one(out, mb);  // new series: the delta is the whole series
      continue;
    }
    const MetricSnapshot& ma = *it->second;
    in_a.erase(it);
    if (mb.kind == Kind::Gauge) {
      if (ma.value != mb.value)
        appendf(out, "%-9s %-64s %.10g -> %.10g\n", "gauge", key.c_str(), ma.value,
                mb.value);
      continue;
    }
    if (mb.kind == Kind::Counter) {
      double delta = mb.value - ma.value;
      if (delta != 0.0) appendf(out, "%-9s %-64s +%.10g\n", "counter", key.c_str(), delta);
      continue;
    }
    // Histogram: subtract bucket-wise, then summarise the delta population.
    MetricSnapshot d = mb;
    d.count = mb.count >= ma.count ? mb.count - ma.count : 0;
    d.sum = mb.sum - ma.sum;
    std::map<int, std::uint64_t> db(mb.buckets.begin(), mb.buckets.end());
    for (const auto& [i, c] : ma.buckets) {
      auto bit = db.find(i);
      if (bit != db.end()) bit->second = bit->second >= c ? bit->second - c : 0;
    }
    d.buckets.assign(db.begin(), db.end());
    d.buckets.erase(std::remove_if(d.buckets.begin(), d.buckets.end(),
                                   [](const auto& p) { return p.second == 0; }),
                    d.buckets.end());
    if (d.count) render_one(out, d);
  }
  for (const auto& [key, ma] : in_a)
    appendf(out, "%-9s %-64s (removed)\n", kind_str(ma->kind), key.c_str());
  return out;
}

// --- export ---------------------------------------------------------------

std::string configured_export_path() {
  State& s = state();
  (void)enabled();  // force env parse
  std::lock_guard<std::mutex> lk(s.mu);
  return s.export_path;
}

std::string export_now(const std::string& path) {
  std::string base = path.empty() ? configured_export_path() : path;
  if (base.empty()) return "";
  State& s = state();
  unsigned long seq = s.export_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string prom_path = expand_path_placeholders(base, seq);
  Snapshot snap = scrape();
  if (std::FILE* f = std::fopen(prom_path.c_str(), "w")) {
    std::string text = prometheus_text(snap);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  } else {
    return "";
  }
  if (std::FILE* f = std::fopen((prom_path + ".json").c_str(), "w")) {
    std::string text = json_text(snap);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  return prom_path;
}

void ensure_exporter() {
  if (!enabled()) return;
  State& s = state();
  std::string path;
  double interval = 0;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.exporter_installed) return;
    s.exporter_installed = true;
    path = s.export_path;
    interval = s.interval_s;
  }
  if (path.empty()) return;
  std::atexit([] { export_now(); });
  if (interval > 0) {
    // Detached by design: State is leaked, export_now only touches leaked
    // state and libc I/O, so a scrape racing process exit stays safe.
    std::thread([interval] {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval));
        if (g_enabled.load(std::memory_order_relaxed) == 1) export_now();
      }
    }).detach();
  }
}

// --- introspection --------------------------------------------------------

std::size_t registry_size() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.metrics.size();
}

std::size_t shard_count() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.shards.size();
}

void reset_for_tests() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.metrics.clear();
  s.index.clear();
  s.shards.clear();
  s.generation.fetch_add(1, std::memory_order_acq_rel);
  s.export_seq.store(0, std::memory_order_relaxed);
  std::string path;
  double iv = 0;
  bool on = read_env(&path, &iv);
  s.export_path = std::move(path);
  s.interval_s = iv;
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace dnc::obs::metrics
