// In-process sampling CPU profiler: per-thread SIGPROF timers, async-signal-
// safe frame-pointer backtraces, flamegraph-compatible folded-stack export.
//
// Post-mortem traces answer "where did the tasks go"; this profiler answers
// "where did the *cycles* go inside the task bodies" -- live, on a running
// process, without recompiling. Every scheduler worker and thread-pool
// worker registers itself (ThreadRegistration below); while a profiling
// session is active, each registered thread owns a POSIX timer on its own
// CPU-time clock (timer_create on pthread_getcpuclockid, SIGEV_THREAD_ID)
// that delivers SIGPROF to that thread at DNC_PROFILE_HZ. The handler walks
// the frame-pointer chain from the interrupted context (bounded by the
// thread's stack extents, so a frame-pointer-less libc frame terminates the
// walk instead of faulting) into a per-thread single-producer ring; a
// drain merges rings into a process-wide aggregate keyed by
// (thread tag, worker id, current task kind, call stack). Symbolization
// (dladdr + demangling) happens only at dump time, never in the handler.
//
// Attribution: the scheduler worker loop stamps the interned name of the
// task kind it is about to run (ThreadRegistration::set_task), so every
// sample carries "which worker" and "which solver kernel" as synthetic root
// frames -- folded lines look like
//   worker:3;task:UpdateVect;dnc::blas::gemm(...);... 42
//
// Knobs:
//   DNC_PROFILE_HZ  unset/0/off = no continuous profiling (on-demand
//                   sessions via start()/profile_for() or the /profile
//                   endpoint still work); a number = sample each busy
//                   thread at that rate for the life of the process;
//                   1/on/true = the default 97 Hz (prime, so it does not
//                   beat against 10ms-quantised work).
//   DNC_PROFILE     folded-stack dump path for continuous mode, written at
//                   process exit (default dnc_profile.folded; %p -> pid).
//
// Zero-cost contract: with DNC_PROFILE_HZ unset and the HTTP introspection
// server off, ThreadRegistration is one relaxed load + branch and nothing
// allocates (the back-to-back perf gate polices this).
#pragma once

#include <cstdint>
#include <string>

namespace dnc::obs::profiler {

/// 97 Hz: prime, low enough to stay under 1% overhead, high enough that a
/// 100 ms merge still collects ~10 samples per busy core.
inline constexpr int kDefaultHz = 97;
/// Deepest recorded call chain; deeper frames are dropped (counted).
inline constexpr int kMaxDepth = 48;
/// Per-thread sample ring capacity. At 97 Hz a full ring holds ~5 s of one
/// thread's samples between drains; the background drainer empties it every
/// 500 ms, so drops only occur at extreme rates.
inline constexpr int kRingCapacity = 512;

/// True when DNC_PROFILE_HZ requests continuous whole-process profiling.
bool env_enabled() noexcept;
/// Configured rate: DNC_PROFILE_HZ's value, kDefaultHz for bare "1"/"on".
int env_hz() noexcept;
/// True when worker threads should register themselves: continuous
/// profiling is configured OR the HTTP introspection server is enabled (its
/// /profile endpoint needs registered threads to sample on demand). One
/// relaxed load + branch when everything is off.
bool registration_wanted() noexcept;
/// Re-reads DNC_PROFILE_HZ / DNC_PROFILE (tests setenv mid-process).
void refresh_from_env() noexcept;

/// Interns a string into the process-lifetime string table; the returned
/// pointer stays valid forever, so samples can carry it across the death of
/// the TaskGraph whose kind table produced it.
const char* intern(const std::string& s);

/// RAII registration of the calling thread as a sampling target. `tag`
/// must be a string with static (or interned) lifetime -- "worker" for
/// scheduler workers (the process's only thread source). When a profiling
/// session is already active, the constructor arms this thread's timer
/// immediately; the destructor disarms, blocks SIGPROF on the thread and
/// drains the remaining samples into the aggregate.
class ThreadRegistration {
 public:
  ThreadRegistration(const char* tag, int id) noexcept;
  ~ThreadRegistration();
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;

  /// True when the thread actually registered (registration_wanted() held).
  bool active() const noexcept { return state_ != nullptr; }
  /// Attribute subsequent samples to `interned_kind` (an intern() result or
  /// a static string; nullptr = unattributed). One relaxed store.
  void set_task(const char* interned_kind) noexcept;

 private:
  void* state_ = nullptr;
};

/// Starts a profiling session at `hz` (<= 0 uses DNC_PROFILE_HZ / default):
/// installs the SIGPROF handler and arms one timer per registered thread.
/// Threads registering mid-session are armed on registration. Returns false
/// when a session is already active or no timer could be created.
bool start(int hz = 0);
/// Disarms every timer and drains the rings; idempotent.
void stop();
/// True while a session is running.
bool active() noexcept;

/// Merges every ring into the aggregate (cheap; callable any time).
void drain();

struct Totals {
  std::uint64_t samples = 0;    ///< drained into the aggregate
  std::uint64_t dropped = 0;    ///< lost to full rings
  std::uint64_t truncated = 0;  ///< stacks cut at kMaxDepth
};
Totals totals();

/// Number of currently registered threads (test hook).
std::size_t registered_threads();

/// Folded flamegraph lines of everything aggregated so far, sorted by
/// count descending: "tag:id;task:Kind;frameRoot;...;frameLeaf N\n".
/// Prefixed by '#' comment lines (hz, samples, dropped) that downstream
/// consumers ignore.
std::string folded_text();

/// Chrome trace-event JSON of the aggregate (one instant event per unique
/// stack on a synthetic "profiler" track, args carrying stack + count) --
/// mergeable with a Perfetto export of the same run by concatenating the
/// event arrays.
std::string perfetto_samples_json();

/// Bounded on-demand session: ensures sampling is running (at `hz` if it
/// has to start one), sleeps `seconds`, and returns the folded text of only
/// the samples collected in the window. If continuous profiling was already
/// active the session piggybacks on it (and leaves it running). Serialized:
/// concurrent callers queue. Drives the /profile?seconds=N endpoint.
std::string profile_for(double seconds, int hz = 0);

/// Continuous-mode bootstrap: when DNC_PROFILE_HZ is set, starts the
/// session, the background ring drainer and the at-exit folded dump (to
/// DNC_PROFILE, default "dnc_profile.folded"). Lazily called by the first
/// ThreadRegistration; safe to call repeatedly.
void ensure_continuous();

/// Stops any session, forgets aggregate/totals and re-reads the env. Only
/// for tests; callers must have quiesced registered threads first.
void reset_for_tests();

}  // namespace dnc::obs::profiler
