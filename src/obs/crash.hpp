// Last-gasp crash dump: fatal-signal handlers that flush the observability
// state an operator would otherwise lose with the process.
//
// The metrics registry and flight recorder export on *clean* exit (atexit /
// periodic exporter); a SIGSEGV throws all of that away exactly when it is
// most wanted. With DNC_CRASH_DUMP=<path> set, handlers for SIGSEGV,
// SIGBUS, SIGABRT and SIGFPE best-effort write
//   <path>          crash header (signal, pid, git commit) + Prometheus
//                   text of the final metrics scrape
//   <path>.jsonl    the flight-recorder ring (one report per line)
// then restore the default disposition and re-raise, so the exit status /
// core dump behaviour of the process is unchanged.
//
// Honesty about limits: the dump path calls non-async-signal-safe code
// (malloc under scrape()/string building). After a heap corruption that can
// itself crash -- a reentry guard turns the second fault into an immediate
// re-raise, so the worst case is "no dump", never a hang or loop. For the
// dominant crash classes (null deref, OOB index, assert/abort) the heap is
// intact and the dump succeeds.
//
// Knob:
//   DNC_CRASH_DUMP  unset/""/0/off = no handlers installed; otherwise the
//                   dump path (%p expands to the pid at install time).
//
// Installation is lazy (first record_solve_telemetry / explicit
// ensure_installed) and idempotent.
#pragma once

#include <string>

namespace dnc::obs::crash {

/// True when DNC_CRASH_DUMP configures a dump path (read once, cached).
bool enabled() noexcept;
/// Re-reads DNC_CRASH_DUMP (tests setenv mid-process). Does not uninstall
/// already-installed handlers; they consult the refreshed path.
void refresh_from_env() noexcept;

/// Installs the signal handlers when enabled; safe to call repeatedly.
/// Returns true when handlers are (now) installed.
bool ensure_installed();

/// Expanded dump path ("" when disabled).
std::string dump_path();

/// The dump body builder, exposed for tests: crash header + metrics
/// Prometheus text. `sig` 0 renders "test" as the signal name.
std::string dump_text(int sig);

}  // namespace dnc::obs::crash
