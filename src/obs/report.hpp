// SolveReport: the per-solve observability artifact every driver fills.
//
// Three ingredient groups, mirroring the ISSUE's tentpole:
//   1. algorithmic counters  -- thread-local deltas over the solve
//      (laed4 iteration histogram, Sturm/bisection steps, GEMM flops and
//      packed bytes), captured by SolveScope;
//   2. per-merge deflation records -- the four dlaed2 column types for
//      every merge of the D&C tree (the paper's Figure 4 discussion);
//   3. scheduler metrics -- ready->start waits, queue depth, worker idle,
//      derived from the runtime Trace.
//
// Export is env-gated: DNC_TRACE=<path> writes the Perfetto trace,
// DNC_REPORT=<path> the JSON report plus <path>.txt one-page summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/hwc.hpp"

namespace dnc::rt {
struct Trace;
}

namespace dnc::obs {

/// Deflation outcome of one merge, split by dlaed2 column type:
/// ctot[0..2] are the non-deflated types 1/2/3 (top-only / both /
/// bottom-only support), ctot[3] the deflated columns. Sum == m.
struct MergeRecord {
  int level = 0;  ///< merge-tree depth (root = 0)
  long m = 0;     ///< merged size (n1 + n2)
  long n1 = 0;    ///< first son size
  long k = 0;     ///< non-deflated count (secular system size)
  long ctot[4] = {0, 0, 0, 0};
  double t_end = 0.0;  ///< trace-clock time the deflation kernel finished (0: unknown)
};

struct SchedulerMetrics {
  int workers = 0;
  long tasks = 0;  ///< executed tasks
  double makespan = 0.0;
  double total_busy = 0.0;
  double efficiency = 0.0;
  double avg_ready_wait = 0.0;  ///< mean ready->start latency (s)
  double max_ready_wait = 0.0;
  double total_idle = 0.0;  ///< summed per-worker idle (s)
  int max_queue_depth = 0;
  // --- scheduling-policy observability (PR 4) ---
  std::string policy;       ///< "central" / "steal" ("" = unknown/old trace)
  long steals = 0;          ///< successful steals, summed over workers
  long steal_attempts = 0;  ///< victim probes, summed over workers
  long failed_steals = 0;   ///< empty full scans, summed over workers
  long local_pops = 0;      ///< own-deque pops, summed over workers
  long placed_max = 0;      ///< most submitter placements on one worker
  long placed_min = 0;      ///< fewest submitter placements on one worker
  // --- steal locality under the topology-aware victim order (PR 9) ---
  long steals_same_l3 = 0;      ///< victim shared the thief's L3 domain
  long steals_same_socket = 0;  ///< same socket, different L3
  long steals_cross_socket = 0; ///< crossed the socket interconnect
  // --- nested subtasks (spawn_and_wait) ---
  long child_tasks = 0;  ///< child subtasks spawned from inside tasks
};

/// Cheap per-solve numerical-health estimate: s sampled eigenpairs checked
/// for residual and orthogonality in O(n*s), not the O(n^2*s) full check
/// (that is tests/support territory). Feeds the metrics histograms and the
/// flight-recorder anomaly triggers.
struct HealthMetrics {
  int sampled_columns = 0;        ///< s (0 = probe never ran)
  double max_rel_residual = 0.0;  ///< max_i ||T v_i - lam_i v_i||_inf / ||T||_1
  double max_ortho_error = 0.0;   ///< max over samples of |v_i.v_j| (j a
                                  ///< neighbour) and |1 - ||v_i||^2|
};

struct SolveReport {
  std::string driver;  ///< "sequential", "taskflow", "lapack_model", ...
  long n = 0;
  int threads = 0;
  double seconds = 0.0;
  std::string simd_isa;    ///< dispatched kernel table ("scalar"/"sse2"/"avx2")
  std::string precision = "f64";  ///< working precision ("f64"/"f32"/"f32refine")
  std::string git_commit;  ///< configure-time revision (version::kGitCommit)
  std::string build_type;  ///< CMAKE_BUILD_TYPE the binary was built with
  std::string hostname;    ///< machine that ran the solve
  std::string timestamp;   ///< ISO-8601 UTC wall-clock time of solve end

  /// Bit width of the kernels' working precision (32 for both fp32 modes:
  /// the f32refine epilogue is fp64 but every GEMM ran in fp32).
  int precision_bits() const { return precision == "f64" || precision.empty() ? 64 : 32; }

  CounterArray counters{};  ///< deltas over the solve, indexed by obs::Counter
  std::vector<MergeRecord> merges;

  bool has_scheduler = false;
  SchedulerMetrics scheduler;

  /// Tuning-table consultation (DNC_TUNE_TABLE): when the solve applied a
  /// table entry to fill Options defaults, the entry is stamped here so
  /// reports (and /healthz) show which cell drove the run.
  bool tuned = false;
  std::string tune_source;  ///< path of the consulted table
  std::string tune_entry;   ///< compact entry id, e.g. "n=1000 nb=96 sched=steal"

  bool has_health = false;
  HealthMetrics health;

  // --- hardware-counter attribution (DNC_HWC; empty backend = off) ---
  std::string hwc_backend;                  ///< "perf" / "rusage" / ""
  std::vector<std::string> hwc_slot_names;  ///< slot meanings, in order
  std::vector<KindHwcTotals> kind_hwc;      ///< per-task-kind counter sums

  /// Workspace memory telemetry: what the solve allocated (driver scratch,
  /// per-merge contexts, the eigenvector output) plus the process peak-RSS
  /// high-water mark and its growth over the solve. Byte totals are exact
  /// sums of the driver's allocation sizes; the RSS figures come from the
  /// kernel (VmHWM) and are 0 when unavailable.
  struct MemoryMetrics {
    std::uint64_t workspace_bytes = 0;      ///< driver scratch (qwork/xwork, ...)
    std::uint64_t context_bytes = 0;        ///< per-merge contexts (z, zhat, wparts)
    std::uint64_t output_bytes = 0;         ///< eigenvector matrix
    std::uint64_t rss_hwm_bytes = 0;        ///< process peak RSS at solve end
    std::uint64_t rss_hwm_delta_bytes = 0;  ///< HWM growth over the solve
  } memory;

  std::uint64_t counter(Counter c) const { return counters[c]; }
  /// Sum of the laed4 iteration-histogram buckets (== laed4 calls).
  std::uint64_t laed4_hist_total() const;
  long merged_columns_total() const;  ///< sum of m over merges
  long deflated_total() const;        ///< sum of m - k over merges
  long nondeflated_total() const;     ///< sum of k over merges

  std::string to_json() const;
  std::string summary_text() const;
};

/// Scheduler metrics derived from a measured Trace.
SchedulerMetrics scheduler_metrics(const rt::Trace& trace);

/// Captures the counter baseline at solve start; finish() turns the deltas
/// plus the optional trace into a report.
class SolveScope {
 public:
  explicit SolveScope(const char* driver);
  void finish(SolveReport& out, long n, int threads, double seconds,
              const rt::Trace* trace) const;

 private:
  const char* driver_;
  CounterArray begin_;
  std::uint64_t rss_hwm_begin_ = 0;  ///< peak RSS when the solve started
};

/// True when the respective env var requests an export. Read per call so
/// tests can setenv() mid-process; two getenv calls per solve are noise.
bool trace_export_requested() noexcept;
bool report_export_requested() noexcept;

/// Writes $DNC_TRACE (Perfetto trace JSON, needs `trace`) and $DNC_REPORT
/// (report JSON) + $DNC_REPORT.txt (text summary). No-op when unset.
///
/// A process that solves several times (every bench does) must not clobber
/// the artifact of an earlier solve: the first export of the process uses
/// the configured path verbatim, every later one gets a sequence suffix
/// before the extension -- "trace.json", then "trace.2.json",
/// "trace.3.json", ... The counter is shared by DNC_TRACE and DNC_REPORT so
/// the trace and report of one solve always carry the same suffix.
void export_solve_artifacts(const SolveReport& report, const rt::Trace* trace);

/// Path the `seq`-th export (0-based) writes for the configured `base`:
/// seq 0 -> base, seq k -> base with ".k+1" inserted before the extension
/// ("report.json" -> "report.2.json"; extensionless paths get a plain
/// suffix appended). Exposed for tests.
std::string sequenced_export_path(const std::string& base, unsigned seq);

/// Resets the process-wide export sequence so the next export uses the
/// plain path again. Tests that re-point DNC_TRACE/DNC_REPORT per case and
/// expect the unsuffixed file must call this in their setup.
void reset_export_sequence() noexcept;

/// Expands %p -> pid and %s -> `seq` in an export path. Paths carrying a
/// placeholder opt out of the automatic ".N" sequence suffix: with %s each
/// export names its own file; with only %p concurrent *processes* are
/// disambiguated while repeats within the process still get the suffix.
std::string expand_path_placeholders(const std::string& path, unsigned long seq);

/// This machine's hostname ("unknown" when gethostname fails). Cached.
std::string current_hostname();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-08T12:34:56Z").
std::string iso8601_timestamp_utc();

}  // namespace dnc::obs
