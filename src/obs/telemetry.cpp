#include "obs/telemetry.hpp"

#include <string>

#include "obs/crash.hpp"
#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/httpd.hpp"
#include "obs/metrics.hpp"

namespace dnc::obs {
namespace {

namespace m = metrics;

std::string solve_labels(const SolveReport& rep) {
  std::string l = "driver=\"";
  l += rep.driver;
  l += "\",precision=\"";
  l += rep.precision.empty() ? "f64" : rep.precision;
  l += "\",size_class=\"";
  l += solve_size_class(rep.n);
  l += "\"";
  return l;
}

void record_metrics(const SolveReport& rep) {
  if (!m::enabled()) return;
  const std::string labels = solve_labels(rep);
  // register_metric dedupes on (name, labels) under the registry lock, so
  // re-registering per solve is a map lookup -- no per-label-set caching
  // needed at solve frequency.
  m::add(m::register_metric(m::Kind::Counter, "dnc_solves_total", labels,
                            "Completed tridiagonal eigensolves"));
  m::observe(m::register_metric(m::Kind::Histogram, "dnc_solve_seconds", labels,
                                "Solve wall-clock latency (s)"),
             rep.seconds);
  std::string dl = "driver=\"" + rep.driver + "\"";
  m::Id defl = m::register_metric(m::Kind::Histogram, "dnc_merge_deflation_ratio", dl,
                                  "Deflated fraction per D&C merge");
  for (const MergeRecord& mr : rep.merges)
    if (mr.m > 0) m::observe(defl, static_cast<double>(mr.m - mr.k) / mr.m);
  const std::uint64_t flops = rep.counter(kGemmFlops);
  if (flops > 0 && rep.seconds > 0.0) {
    std::string pl = "driver=\"" + rep.driver + "\",precision=\"" +
                     (rep.precision.empty() ? "f64" : rep.precision) + "\"";
    m::observe(m::register_metric(m::Kind::Histogram, "dnc_gemm_gflops", pl,
                                  "Per-solve GEMM throughput (GFLOP/s)"),
               static_cast<double>(flops) * 1e-9 / rep.seconds);
  }
  if (rep.has_health) {
    m::observe(m::register_metric(m::Kind::Histogram, "dnc_health_rel_residual", "",
                                  "Sampled-column relative residual ||Tv-lv||/||T||"),
               rep.health.max_rel_residual);
    m::observe(m::register_metric(m::Kind::Histogram, "dnc_health_ortho_error", "",
                                  "Sampled-column orthogonality error"),
               rep.health.max_ortho_error);
  }
  m::set_gauge(m::register_metric(m::Kind::Gauge, "dnc_last_solve_n", "",
                                  "Matrix size of the most recent solve"),
               static_cast<double>(rep.n));
}

}  // namespace

bool solve_telemetry_wanted() noexcept {
  return metrics::enabled() || flight::enabled() || httpd::enabled() ||
         crash::enabled() || history::enabled();
}

const char* solve_size_class(long n) noexcept {
  if (n < 256) return "xs";
  if (n < 1024) return "s";
  if (n < 4096) return "m";
  if (n < 16384) return "l";
  return "xl";
}

void record_solve_telemetry(const SolveReport& report, const rt::Trace* trace) {
  record_metrics(report);
  // History: ring always (it feeds /history), archive file when DNC_HISTORY
  // names one. One compact line per solve either way.
  history::note(report);
  if (flight::enabled()) {
    std::string dumped = flight::observe(report, trace);
    if (!dumped.empty() && m::enabled())
      m::add(m::register_metric(m::Kind::Counter, "dnc_flight_dumps_total", "",
                                "Flight-recorder anomaly dumps written"));
  }
  // Live introspection boots from the first observed solve: a process run
  // with only DNC_HTTP (or DNC_CRASH_DUMP) set needs no other call site.
  if (crash::enabled()) crash::ensure_installed();
  if (httpd::enabled()) {
    httpd::ensure_started();
    httpd::note_solve(report);
    if (httpd::trace_capture_armed()) httpd::offer_captured_trace(report, trace);
  }
}

}  // namespace dnc::obs
