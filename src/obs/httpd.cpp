#include "obs/httpd.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/cpu_features.hpp"
#include "common/env.hpp"
#include "common/version.hpp"
#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"

namespace dnc::obs::httpd {
namespace {

// Leaked singleton, same reasoning as the metrics/flight State: the server
// thread and late requests may race process teardown.
struct State {
  std::mutex mu;
  std::thread server;
  int listen_fd = -1;
  int stop_pipe[2] = {-1, -1};
  std::string addr;            // configured bind address
  std::uint16_t port = 0;      // configured port (0 = ephemeral)
  std::string bound_addr;      // actual
  std::uint16_t bound_port_v = 0;
  std::chrono::steady_clock::time_point started_at;
  // /healthz last-solve summary (under mu).
  bool have_solve = false;
  std::string last_driver, last_precision, last_timestamp;
  long last_n = 0;
  double last_seconds = 0.0;
  bool last_has_health = false;
  double last_residual = 0.0, last_ortho = 0.0;
  bool last_tuned = false;
  std::string last_tune_entry, last_tune_source;
  std::uint64_t solves = 0;
  // /trace one-shot capture (armed flag is lock-free for the telemetry-side
  // fast path; the payload lives under mu).
  std::string captured_trace;
};

State& state() {
  static State* s = new State;
  return *s;
}

std::atomic<bool> g_running{false};
std::atomic<std::uint64_t> g_requests{0};
// Connections handed off to detached workers (/profile); stop_for_tests
// drains this before resetting state so no worker outlives the "server".
std::atomic<int> g_handed_off{0};
std::atomic<bool> g_trace_armed{false};
// -1 uninitialised, 0 disabled, 1 DNC_HTTP configured.
std::atomic<int> g_enabled{-1};

/// Parses DNC_HTTP ("8080", ":8080", "addr:port"). False = disabled.
bool parse_env_spec(const char* e, std::string& addr, std::uint16_t& port) {
  if (!e || !*e || !std::strcmp(e, "0") || !std::strcmp(e, "off")) return false;
  std::string spec = e;
  std::string::size_type colon = spec.rfind(':');
  std::string port_s;
  if (colon == std::string::npos) {
    addr = "127.0.0.1";
    port_s = spec;
  } else {
    addr = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
    port_s = spec.substr(colon + 1);
  }
  if (port_s.empty()) return false;
  char* end = nullptr;
  long p = std::strtol(port_s.c_str(), &end, 10);
  if (!end || *end || p < 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

/// Single point that reads DNC_HTTP into the state (init and refresh both
/// go through here; the spec used to be parsed in two places).
bool read_env_spec(State& s) {
  return parse_env_spec(env::raw("DNC_HTTP"), s.addr, s.port);
}

bool init_enabled() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur >= 0) return cur != 0;
  bool on = read_env_spec(s);
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

// --- response plumbing ------------------------------------------------------

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t w = ::send(fd, data, len, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
}

void respond(int fd, int status, const char* reason, const char* content_type,
             const std::string& body) {
  char hdr[256];
  int n = std::snprintf(hdr, sizeof hdr,
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        status, reason, content_type, body.size());
  write_all(fd, hdr, static_cast<std::size_t>(n));
  write_all(fd, body.data(), body.size());
}

/// Value of `key` in a query string "a=1&b=2" ("" when absent).
std::string query_param(const std::string& query, const std::string& key) {
  std::string::size_type pos = 0;
  while (pos < query.size()) {
    std::string::size_type amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::string::size_type eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp && query.compare(pos, eq - pos, key) == 0)
      return query.substr(eq + 1, amp - eq - 1);
    pos = amp + 1;
  }
  return "";
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20)
      out += c;
    else
      out += ' ';
  }
  out += "\"";
  return out;
}

// --- endpoint bodies --------------------------------------------------------

std::string healthz_body() {
  State& s = state();
  char num[64];
  std::string out = "{\n  \"status\": \"ok\",\n";
  out += "  \"git_commit\": " + json_str(version::kGitCommit) + ",\n";
  out += "  \"build_type\": " + json_str(version::kBuildType) + ",\n";
  out += "  \"hostname\": " + json_str(current_hostname()) + ",\n";
  std::snprintf(num, sizeof num, "%ld", static_cast<long>(::getpid()));
  out += std::string("  \"pid\": ") + num + ",\n";
  double uptime = 0.0;
  std::uint64_t solves = 0;
  std::string solve_block;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    uptime = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           s.started_at)
                 .count();
    solves = s.solves;
    if (s.have_solve) {
      solve_block = "  \"last_solve\": {\n";
      solve_block += "    \"driver\": " + json_str(s.last_driver) + ",\n";
      std::snprintf(num, sizeof num, "%ld", s.last_n);
      solve_block += std::string("    \"n\": ") + num + ",\n";
      std::snprintf(num, sizeof num, "%.6g", s.last_seconds);
      solve_block += std::string("    \"seconds\": ") + num + ",\n";
      solve_block += "    \"precision\": " + json_str(s.last_precision) + ",\n";
      solve_block += "    \"timestamp\": " + json_str(s.last_timestamp);
      if (s.last_tuned) {
        solve_block += ",\n    \"tune_entry\": " + json_str(s.last_tune_entry);
        solve_block += ",\n    \"tune_table\": " + json_str(s.last_tune_source);
      }
      if (s.last_has_health) {
        std::snprintf(num, sizeof num, "%.6g", s.last_residual);
        solve_block += std::string(",\n    \"max_rel_residual\": ") + num;
        std::snprintf(num, sizeof num, "%.6g", s.last_ortho);
        solve_block += std::string(",\n    \"max_ortho_error\": ") + num;
      }
      solve_block += "\n  },\n";
    }
  }
  std::snprintf(num, sizeof num, "%.3f", uptime);
  out += std::string("  \"uptime_seconds\": ") + num + ",\n";
  std::snprintf(num, sizeof num, "%llu", static_cast<unsigned long long>(solves));
  out += std::string("  \"solves_observed\": ") + num + ",\n";
  out += solve_block;
  // Detected machine hierarchy the scheduler's victim ordering uses.
  const CpuTopology& topo = cpu_topology();
  out += "  \"topology\": {\n";
  out += "    \"source\": " + json_str(topo.source) + ",\n";
  std::snprintf(num, sizeof num, "%d", topo.cpus);
  out += std::string("    \"cpus\": ") + num + ",\n";
  std::snprintf(num, sizeof num, "%d", topo.sockets);
  out += std::string("    \"sockets\": ") + num + ",\n";
  std::snprintf(num, sizeof num, "%d", topo.l3_domains);
  out += std::string("    \"l3_domains\": ") + num + "\n  },\n";
  std::snprintf(num, sizeof num, "%lu", flight::dump_count());
  out += std::string("  \"flight_dumps\": ") + num + ",\n";
  std::snprintf(num, sizeof num, "%zu", flight::ring_size());
  out += std::string("  \"flight_ring\": ") + num + ",\n";
  out += std::string("  \"metrics_enabled\": ") +
         (metrics::enabled() ? "true" : "false") + ",\n";
  out += std::string("  \"profiler_active\": ") +
         (profiler::active() ? "true" : "false") + "\n}\n";
  return out;
}

std::string trace_body(const std::string& query, int& status, const char** ctype) {
  State& s = state();
  *ctype = "text/plain; charset=utf-8";
  if (query_param(query, "next") == "1") {
    g_trace_armed.store(true, std::memory_order_release);
    status = 200;
    return "armed: the next solve's Perfetto trace will be captured; "
           "GET /trace to collect it\n";
  }
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.captured_trace.empty()) {
    status = 404;
    return g_trace_armed.load(std::memory_order_relaxed)
               ? "armed, no traced solve completed yet\n"
               : "no capture armed; GET /trace?next=1 first\n";
  }
  status = 200;
  *ctype = "application/json";
  std::string out;
  out.swap(s.captured_trace);
  return out;
}

/// Handles one parsed request. Returns true when ownership of `fd` was
/// handed off to a worker thread (the caller must not close it).
bool handle_request(int fd, const std::string& path, const std::string& query) {
  g_requests.fetch_add(1, std::memory_order_relaxed);
  if (path == "/metrics") {
    respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            metrics::prometheus_text(metrics::scrape()));
  } else if (path == "/varz") {
    respond(fd, 200, "OK", "application/json",
            metrics::json_text(metrics::scrape()));
  } else if (path == "/healthz") {
    respond(fd, 200, "OK", "application/json", healthz_body());
  } else if (path == "/flight") {
    respond(fd, 200, "OK", "application/x-ndjson", flight::ring_jsonl());
  } else if (path == "/history") {
    respond(fd, 200, "OK", "application/x-ndjson", history::ring_jsonl());
  } else if (path == "/trace") {
    int status = 200;
    const char* ctype = "text/plain";
    std::string body = trace_body(query, status, &ctype);
    respond(fd, status, status == 200 ? "OK" : "Not Found", ctype, body);
  } else if (path == "/profile") {
    std::string secs = query_param(query, "seconds");
    std::string hz = query_param(query, "hz");
    double seconds = secs.empty() ? 1.0 : std::atof(secs.c_str());
    int hz_i = hz.empty() ? 0 : std::atoi(hz.c_str());
    // The capture blocks for the whole window, so it must not run on the
    // serial server thread: hand the socket to a detached worker and keep
    // serving /metrics //healthz scrapes meanwhile. profile_for serialises
    // concurrent captures internally.
    g_handed_off.fetch_add(1, std::memory_order_acq_rel);
    std::thread([fd, seconds, hz_i] {
      respond(fd, 200, "OK", "text/plain; charset=utf-8",
              profiler::profile_for(seconds, hz_i));
      ::close(fd);
      g_handed_off.fetch_sub(1, std::memory_order_acq_rel);
    }).detach();
    return true;
  } else if (path == "/") {
    respond(fd, 200, "OK", "text/plain; charset=utf-8",
            "dnc introspection endpoints:\n"
            "  /metrics  /varz  /healthz  /flight  /history\n"
            "  /trace?next=1  (then /trace)\n"
            "  /profile?seconds=N[&hz=H]\n");
  } else {
    respond(fd, 404, "Not Found", "text/plain", "unknown endpoint\n");
  }
  return false;
}

void serve_connection(int fd) {
  // Bound the read so a half-open client cannot wedge the server thread.
  struct timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string req;
  char buf[2048];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
    ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    req.append(buf, static_cast<std::size_t>(r));
  }
  std::string::size_type eol = req.find("\r\n");
  if (eol == std::string::npos) {
    ::close(fd);
    return;
  }
  std::string line = req.substr(0, eol);
  std::string::size_type sp1 = line.find(' ');
  std::string::size_type sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 <= sp1) {
    respond(fd, 400, "Bad Request", "text/plain", "malformed request line\n");
    ::close(fd);
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET" && method != "HEAD") {
    respond(fd, 405, "Method Not Allowed", "text/plain", "GET only\n");
    ::close(fd);
    return;
  }
  std::string path = target, query;
  std::string::size_type q = target.find('?');
  if (q != std::string::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
  if (!handle_request(fd, path, query)) ::close(fd);
}

void server_loop(int listen_fd, int stop_fd) {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {stop_fd, POLLIN, 0};
    int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents) break;
    if (!(fds[0].revents & POLLIN)) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
  }
  ::close(listen_fd);
}

/// Binds and launches the thread; s.mu held by the caller.
bool start_locked(State& s, const std::string& addr, std::uint16_t port) {
  if (g_running.load(std::memory_order_acquire)) return false;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t slen = sizeof sa;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &slen);
  if (::pipe(s.stop_pipe) != 0) {
    ::close(fd);
    return false;
  }
  s.listen_fd = fd;
  char abuf[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &sa.sin_addr, abuf, sizeof abuf);
  s.bound_addr = abuf;
  s.bound_port_v = ntohs(sa.sin_port);
  s.started_at = std::chrono::steady_clock::now();
  const int stop_fd = s.stop_pipe[0];
  s.server = std::thread([fd, stop_fd] { server_loop(fd, stop_fd); });
  g_running.store(true, std::memory_order_release);
  std::fprintf(stderr, "[dnc_http] listening on %s:%u\n", s.bound_addr.c_str(),
               unsigned(s.bound_port_v));
  return true;
}

}  // namespace

bool enabled() noexcept {
  int s = g_enabled.load(std::memory_order_relaxed);
  return s < 0 ? init_enabled() : s != 0;
}

void refresh_from_env() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  bool on = read_env_spec(s);
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool ensure_started() {
  if (!enabled()) return false;
  if (g_running.load(std::memory_order_acquire)) return true;
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (g_running.load(std::memory_order_acquire)) return true;
  return start_locked(s, s.addr, s.port);
}

bool start(const std::string& addr, std::uint16_t port) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return start_locked(s, addr, port);
}

std::uint16_t bound_port() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return g_running.load(std::memory_order_acquire) ? s.bound_port_v : 0;
}

std::string bound_address() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return g_running.load(std::memory_order_acquire) ? s.bound_addr : "";
}

bool running() noexcept { return g_running.load(std::memory_order_acquire); }

std::uint64_t requests_served() { return g_requests.load(std::memory_order_relaxed); }

bool trace_capture_armed() noexcept {
  return g_trace_armed.load(std::memory_order_acquire);
}

void offer_captured_trace(const SolveReport& report, const rt::Trace* trace) {
  if (!trace_capture_armed() || !trace) return;
  std::string json = perfetto_trace_json(*trace, &report);
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.captured_trace = std::move(json);
  g_trace_armed.store(false, std::memory_order_release);
}

void note_solve(const SolveReport& report) {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.have_solve = true;
  ++s.solves;
  s.last_driver = report.driver;
  s.last_precision = report.precision.empty() ? "f64" : report.precision;
  s.last_timestamp = report.timestamp;
  s.last_n = report.n;
  s.last_seconds = report.seconds;
  s.last_has_health = report.has_health;
  s.last_residual = report.health.max_rel_residual;
  s.last_ortho = report.health.max_ortho_error;
  s.last_tuned = report.tuned;
  s.last_tune_entry = report.tune_entry;
  s.last_tune_source = report.tune_source;
}

void stop_for_tests() {
  State& s = state();
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (!g_running.load(std::memory_order_acquire)) return;
    char b = 'q';
    (void)!::write(s.stop_pipe[1], &b, 1);
    joiner.swap(s.server);
  }
  joiner.join();
  // Drain detached /profile workers: they still own their sockets and run
  // profile_for; a bounded wait (windows are clamped well below this) keeps
  // the reset from racing a worker's final respond/close.
  for (int i = 0; i < 600 && g_handed_off.load(std::memory_order_acquire) > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::lock_guard<std::mutex> lk(s.mu);
  ::close(s.stop_pipe[0]);
  ::close(s.stop_pipe[1]);
  s.stop_pipe[0] = s.stop_pipe[1] = -1;
  s.listen_fd = -1;
  s.bound_addr.clear();
  s.bound_port_v = 0;
  s.have_solve = false;
  s.solves = 0;
  s.captured_trace.clear();
  g_trace_armed.store(false, std::memory_order_relaxed);
  g_running.store(false, std::memory_order_release);
}

// --- client ----------------------------------------------------------------

bool parse_url(const std::string& url, std::string& host, std::uint16_t& port,
               std::string& path) {
  std::string rest = url;
  if (rest.rfind("http://", 0) == 0) rest = rest.substr(7);
  std::string::size_type slash = rest.find('/');
  std::string authority = slash == std::string::npos ? rest : rest.substr(0, slash);
  path = slash == std::string::npos ? "/" : rest.substr(slash);
  std::string::size_type colon = authority.rfind(':');
  if (colon == std::string::npos) return false;
  host = authority.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  char* end = nullptr;
  long p = std::strtol(authority.c_str() + colon + 1, &end, 10);
  if (!end || *end || p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

bool http_get(const std::string& host, std::uint16_t port, const std::string& target,
              int& status, std::string& body, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = "socket failed";
    return false;
  }
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  const char* addr = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, addr, &sa.sin_addr) != 1) {
    if (err) *err = "unsupported host (IPv4 literal or localhost only): " + host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    if (err) *err = "connect to " + host + " failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  // /profile can legitimately take the profiling window to answer.
  struct timeval tv{150, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  write_all(fd, req.data(), req.size());
  std::string resp;
  char buf[4096];
  for (;;) {
    ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  if (resp.rfind("HTTP/1.", 0) != 0) {
    if (err) *err = "malformed response";
    return false;
  }
  status = std::atoi(resp.c_str() + 9);
  std::string::size_type hdr_end = resp.find("\r\n\r\n");
  body = hdr_end == std::string::npos ? "" : resp.substr(hdr_end + 4);
  return true;
}

}  // namespace dnc::obs::httpd
