// Per-task hardware-counter attribution (the "what did the hardware do"
// half of the observability stack).
//
// A ThreadHwc is a per-worker-thread sampler the Scheduler instantiates at
// worker start. Its read() is called immediately before and after every
// task body; the delta lands on TaskNode::hwc and rides the trace exactly
// like the timestamps. Two backends, chosen once per process:
//
//   perf    perf_event_open with one counter group per thread (cycles,
//           instructions, LLC-misses, LLC-references). The hot-path read
//           uses rdpmc through the events' mmap'd seqlock pages when the
//           kernel grants userspace counter access (cap_user_rdpmc), i.e.
//           zero syscalls per task; otherwise a single grouped read()
//           syscall returns all four values.
//   rusage  getrusage(RUSAGE_THREAD) deltas (minor/major faults,
//           voluntary/involuntary context switches). Always available;
//           the graceful degradation for containers, perf_event_paranoid,
//           PMU-less VMs and non-Linux hosts.
//
// The whole layer is off (active() == false, zero overhead on the task
// path beyond one branch) unless the DNC_HWC environment knob asks for it:
//   DNC_HWC unset / "" / "0" / "off"  -> off
//   DNC_HWC=rusage|soft|software      -> force the software fallback
//   anything else (e.g. "1", "perf")  -> try perf, fall back to rusage
// Opening perf events can never abort a solve: every failure path
// degrades, and the backend that actually sampled is recorded on the
// Trace / SolveReport so consumers know what the numbers mean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/trace.hpp"

namespace dnc::obs {

enum class HwcBackend {
  kOff = 0,    ///< sampling disabled (or this thread failed to open)
  kPerf = 1,   ///< perf_event_open hardware counters
  kRusage = 2  ///< getrusage software fallback
};

/// "off" / "perf" / "rusage".
const char* hwc_backend_name(HwcBackend b);

/// Name of counter slot `slot` (0..rt::kHwcSlots-1) under backend `b`:
/// perf  : cycles, instructions, llc_misses, llc_references
/// rusage: minor_faults, major_faults, vol_ctx_switches, invol_ctx_switches
const char* hwc_slot_name(HwcBackend b, int slot);

/// Parses a backend name ("perf" / "rusage"); kOff for anything else.
HwcBackend parse_hwc_backend(const std::string& name);

/// True when DNC_HWC requests sampling. Read per call (getenv) so tests
/// can setenv() mid-process; callers hit this once per worker thread.
bool hwc_requested() noexcept;

/// The backend the process settled on: kOff until the first ThreadHwc
/// opened, then sticky for the life of the process so every worker of
/// every solve samples the same quantities.
HwcBackend hwc_active_backend() noexcept;

/// Per-thread counter sampler; see file comment. Construct on the thread
/// that will be sampled (the perf events are bound to the calling thread).
class ThreadHwc {
 public:
  ThreadHwc();
  ~ThreadHwc();
  ThreadHwc(const ThreadHwc&) = delete;
  ThreadHwc& operator=(const ThreadHwc&) = delete;

  bool active() const noexcept { return backend_ != HwcBackend::kOff; }
  HwcBackend backend() const noexcept { return backend_; }

  /// Fills out[0..kHwcSlots-1] with the current cumulative counter values
  /// for this thread (slots that failed to open stay 0). Deltas of two
  /// read() calls bracket a task. No-op (zero-fill) when !active().
  void read(std::uint64_t out[rt::kHwcSlots]) noexcept;

 private:
  void open_perf() noexcept;
  void close_perf() noexcept;

  HwcBackend backend_ = HwcBackend::kOff;
  int fds_[rt::kHwcSlots] = {-1, -1, -1, -1};
  void* pages_[rt::kHwcSlots] = {nullptr, nullptr, nullptr, nullptr};
  bool rdpmc_ok_ = false;  ///< all open events readable via rdpmc
};

/// Peak resident set size of the process so far, in bytes (VmHWM from
/// /proc/self/status, ru_maxrss fallback). 0 when unavailable.
std::uint64_t current_peak_rss_bytes() noexcept;

/// Per-task-kind aggregate of the trace's hardware-counter deltas.
struct KindHwcTotals {
  std::string kind;
  long tasks = 0;
  double seconds = 0.0;  ///< summed task execution time
  std::uint64_t hwc[rt::kHwcSlots] = {0, 0, 0, 0};
};

/// Sums TraceEvent::hwc per kind (executed events only; kinds with no
/// executed task are omitted). Meaningful only when trace.hwc_backend is
/// non-empty, but safe to call regardless.
std::vector<KindHwcTotals> kind_hwc_totals(const rt::Trace& trace);

// ---------------------------------------------------------------------------
// Roofline analysis: combines the measured per-kind cycle/instruction
// attribution with the solve's algorithmic GEMM FLOP / packed-byte
// counters to place each task kind against the machine roofline -- the
// direct test of the paper's "merges are GEMM-bound" claim.

struct RooflineRow {
  std::string kind;
  long tasks = 0;
  double seconds = 0.0;
  std::uint64_t hwc[rt::kHwcSlots] = {0, 0, 0, 0};
  double share = 0.0;      ///< fraction of total cycles (perf) or busy time
  double ipc = 0.0;        ///< instructions/cycle (perf backend only)
  double miss_rate = 0.0;  ///< LLC misses / references (perf backend only)
  bool has_flops = false;  ///< FLOP attribution available for this kind
  double flops = 0.0;
  double bytes = 0.0;
  double arith_intensity = 0.0;  ///< flops / bytes
  double gflops = 0.0;           ///< flops / seconds
  double pct_of_peak = 0.0;      ///< 100 * gflops / peak
};

struct Roofline {
  HwcBackend backend = HwcBackend::kOff;
  double peak_gflops = 0.0;
  /// How peak_gflops was obtained: "flag" (caller-provided), "derived"
  /// (clock from measured cycles x flops/cycle), "assumed" (3 GHz x
  /// flops/cycle). Derived/assumed roofs use the per-precision SIMD width:
  /// 16 flops/cycle for fp64 kernels, 32 for fp32.
  std::string peak_source;
  int precision_bits = 64;     ///< working precision the roof was scaled for
  double total_seconds = 0.0;  ///< summed busy time across kinds
  std::vector<RooflineRow> rows;
};

/// Builds the per-kind roofline table from a trace whose slices carry hwc
/// deltas. `gemm_flops` / `gemm_bytes` are the solve-wide GEMM totals
/// (obs counters kGemmFlops / kGemmPackedBytes); they are attributed to
/// the kind that runs the GEMM panels ("UpdateVect", falling back to the
/// busiest kind when absent). `peak_gflops` > 0 pins the roof and is taken
/// as the peak FOR THE GIVEN PRECISION (per-precision flag); otherwise the
/// roof is derived from measured cycles or assumed, scaled by the SIMD
/// width of the `precision_bits`-wide kernels (fp32 peak = 2x fp64).
Roofline roofline(const rt::Trace& trace, double gemm_flops, double gemm_bytes,
                  double peak_gflops = 0.0, int precision_bits = 64);

/// Renders the roofline as a one-page text table (column set depends on
/// the backend: IPC/miss-rate under perf, fault/context-switch counts
/// under rusage).
std::string render_roofline(const Roofline& r);

}  // namespace dnc::obs
