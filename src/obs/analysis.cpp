#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <queue>
#include <unordered_map>

#include "common/error.hpp"

namespace dnc::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

double duration(const rt::TraceEvent& e) { return std::max(0.0, e.t_end - e.t_start); }

/// Child subtasks (spawn_and_wait) are excluded from the DAG analyses: a
/// parent's [t_start, t_end] window is inclusive of the children it fanned
/// out, so counting both would double the work, and children carry no
/// dependency edges. Using the parent's inclusive duration keeps the
/// engine-vs-simulator critical-path cross-check exact for nested graphs.
bool analyzed(const rt::TraceEvent& e) { return !e.is_child(); }

/// Predecessor/successor adjacency over Trace::edges, restricted to edges
/// whose both endpoints exist in the trace. Successor lists preserve edge
/// order so the FIFO replay visits tasks exactly like rt::simulate_schedule.
struct Adjacency {
  std::vector<int> npred;
  std::vector<std::vector<std::size_t>> succ;
};

Adjacency adjacency(const rt::Trace& trace) {
  const std::size_t n = trace.events.size();
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(trace.events[i].task_id, i);
  Adjacency adj;
  adj.npred.assign(n, 0);
  adj.succ.assign(n, {});
  for (const auto& [pred, succ_id] : trace.edges) {
    const auto pi = index.find(pred);
    const auto si = index.find(succ_id);
    if (pi == index.end() || si == index.end()) continue;
    adj.succ[pi->second].push_back(si->second);
    ++adj.npred[si->second];
  }
  return adj;
}

}  // namespace

CriticalPath critical_path(const rt::Trace& trace) {
  CriticalPath cp;
  const std::size_t n = trace.events.size();
  if (n == 0) return cp;
  const Adjacency adj = adjacency(trace);

  // Kahn topological order (trace events are usually already topologically
  // sorted -- submission order respects dependencies -- but loaded or
  // hand-built traces need not be). `dist` mirrors simulate_schedule's
  // accumulation exactly: completion(i) = max over preds completion(p),
  // then += dur(i), so the two critical-path numbers agree to the last ulp.
  std::vector<double> dist(n, 0.0);
  std::vector<std::ptrdiff_t> parent(n, -1);
  std::vector<int> remaining(adj.npred);
  std::queue<std::size_t> order;
  for (std::size_t i = 0; i < n; ++i)
    if (remaining[i] == 0) order.push(i);

  std::size_t best = 0;
  bool any = false;
  while (!order.empty()) {
    const std::size_t i = order.front();
    order.pop();
    if (analyzed(trace.events[i])) {
      dist[i] += duration(trace.events[i]);
      cp.total_work += duration(trace.events[i]);
      if (!any || dist[i] > dist[best]) best = i;
      any = true;
    }
    for (std::size_t s : adj.succ[i]) {
      if (dist[i] > dist[s]) {
        dist[s] = dist[i];
        parent[s] = static_cast<std::ptrdiff_t>(i);
      }
      if (--remaining[s] == 0) order.push(s);
    }
  }
  if (!any) return cp;

  cp.length = dist[best];
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(best); i >= 0; i = parent[i])
    cp.chain.push_back(static_cast<std::size_t>(i));
  std::reverse(cp.chain.begin(), cp.chain.end());
  cp.time_by_kind.assign(trace.kind_names.size(), 0.0);
  for (std::size_t i : cp.chain) {
    const rt::TraceEvent& e = trace.events[i];
    if (e.kind >= 0 && e.kind < static_cast<int>(cp.time_by_kind.size()))
      cp.time_by_kind[e.kind] += duration(e);
  }
  return cp;
}

std::string CriticalPath::render(const rt::Trace& trace, int max_rows) const {
  std::string out;
  appendf(out, "critical path: %.6f s over %zu tasks (T1 = %.6f s, T1/Tinf = %.2f)\n",
          length, chain.size(), total_work, length > 0.0 ? total_work / length : 0.0);
  // Per-kind attribution, heaviest first: the kernel(s) that bound any
  // parallel execution no matter how many cores are added.
  std::vector<std::size_t> kinds;
  for (std::size_t k = 0; k < time_by_kind.size(); ++k)
    if (time_by_kind[k] > 0.0) kinds.push_back(k);
  std::sort(kinds.begin(), kinds.end(),
            [&](std::size_t a, std::size_t b) { return time_by_kind[a] > time_by_kind[b]; });
  appendf(out, "%-22s %12s %7s\n", "kind on path", "time(s)", "%span");
  for (std::size_t k : kinds)
    appendf(out, "%-22s %12.6f %6.1f%%\n", trace.kind_names[k].c_str(), time_by_kind[k],
            length > 0.0 ? 100.0 * time_by_kind[k] / length : 0.0);
  // The chain itself, runs of equal kinds collapsed.
  appendf(out, "chain (first task first; xN = consecutive tasks of the kind):\n");
  int rows = 0;
  for (std::size_t i = 0; i < chain.size();) {
    const rt::TraceEvent& e = trace.events[chain[i]];
    std::size_t j = i;
    double run_dur = 0.0;
    while (j < chain.size() && trace.events[chain[j]].kind == e.kind) {
      run_dur += std::max(0.0, trace.events[chain[j]].t_end - trace.events[chain[j]].t_start);
      ++j;
    }
    if (++rows > max_rows) {
      appendf(out, "  ... (%zu more tasks)\n", chain.size() - i);
      break;
    }
    const char* name = (e.kind >= 0 && e.kind < static_cast<int>(trace.kind_names.size()))
                           ? trace.kind_names[e.kind].c_str()
                           : "?";
    appendf(out, "  t=%.6f %-20s x%-4zu %10.6f s", e.t_start, name, j - i, run_dur);
    if (e.level >= 0) appendf(out, "  level=%d", e.level);
    if (e.size >= 0) appendf(out, " size=%ld", e.size);
    out += '\n';
    i = j;
  }
  return out;
}

ParallelismProfile parallelism_profile(const rt::Trace& trace) {
  ParallelismProfile p;
  struct Change {
    double t;
    int d_running;
    int d_ready;
  };
  std::vector<Change> changes;
  changes.reserve(trace.events.size() * 2);
  bool any = false;
  for (const auto& e : trace.events) {
    if (e.worker < 0) continue;  // never executed
    if (!analyzed(e)) continue;  // nested work shows as its parent's window
    if (!any) {
      p.t0 = e.t_start;
      p.t1 = e.t_end;
      any = true;
    } else {
      p.t0 = std::min(p.t0, e.t_start);
      p.t1 = std::max(p.t1, e.t_end);
    }
    changes.push_back({e.t_start, +1, 0});
    changes.push_back({e.t_end, -1, 0});
    if (e.t_ready > 0.0 && e.t_ready < e.t_start) {
      changes.push_back({e.t_ready, 0, +1});
      changes.push_back({e.t_start, 0, -1});
    }
  }
  if (!any) return p;
  std::sort(changes.begin(), changes.end(),
            [](const Change& a, const Change& b) { return a.t < b.t; });

  int running = 0, ready = 0;
  double prev_t = changes.front().t;
  for (std::size_t i = 0; i < changes.size();) {
    const double t = changes[i].t;
    p.running_integral += running * (t - prev_t);
    prev_t = t;
    // Coalesce every change at the same instant into one sample.
    int dr = 0, dq = 0;
    while (i < changes.size() && changes[i].t == t) {
      dr += changes[i].d_running;
      dq += changes[i].d_ready;
      ++i;
    }
    running += dr;
    ready += dq;
    p.max_running = std::max(p.max_running, running);
    p.max_ready = std::max(p.max_ready, ready);
    p.samples.push_back({t, running, ready});
  }
  const double span = p.t1 - p.t0;
  p.avg_running = span > 0.0 ? p.running_integral / span : 0.0;
  return p;
}

std::string ParallelismProfile::ascii(int width, int height) const {
  if (samples.empty() || t1 <= t0) return "(empty profile)\n";
  width = std::max(width, 10);
  height = std::max(height, 4);
  // Time-averaged running / ready counts per column.
  std::vector<double> run_col(width, 0.0), ready_col(width, 0.0);
  const double span = t1 - t0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double a = samples[i].t;
    const double b = (i + 1 < samples.size()) ? samples[i + 1].t : t1;
    if (b <= a) continue;
    const double ca = (a - t0) / span * width;
    const double cb = (b - t0) / span * width;
    const int c0 = std::clamp(static_cast<int>(ca), 0, width - 1);
    const int c1 = std::clamp(static_cast<int>(cb), 0, width - 1);
    for (int c = c0; c <= c1; ++c) {
      const double lo = std::max(ca, static_cast<double>(c));
      const double hi = std::min(cb, static_cast<double>(c + 1));
      if (hi <= lo) continue;
      run_col[c] += samples[i].running * (hi - lo);
      ready_col[c] += samples[i].ready * (hi - lo);
    }
  }
  const int peak = std::max(1, std::max(max_running, 1));
  const int rows = std::min(height, peak);
  std::string out;
  appendf(out, "parallelism profile (# running, - ready backlog; peak %d running, %d ready)\n",
          max_running, max_ready);
  for (int r = rows; r >= 1; --r) {
    // Row r covers counts in (thr_lo, inf) where thr_lo maps the row grid
    // onto 0..peak.
    const double thr = static_cast<double>(r - 1) * peak / rows + 0.5;
    appendf(out, "%5.1f |", static_cast<double>(r) * peak / rows);
    for (int c = 0; c < width; ++c) {
      if (run_col[c] >= thr)
        out += '#';
      else if (run_col[c] + ready_col[c] >= thr)
        out += '-';
      else
        out += ' ';
    }
    out += "|\n";
  }
  appendf(out, "      +");
  for (int c = 0; c < width; ++c) out += '-';
  appendf(out, "+\n       0 s%*s%.6f s  (avg running %.2f)\n", std::max(0, width - 14), "",
          span, avg_running);
  return out;
}

std::string ParallelismProfile::to_json() const {
  std::string out = "{\n";
  appendf(out, "  \"t0\": %.9f,\n  \"t1\": %.9f,\n", t0, t1);
  appendf(out, "  \"max_running\": %d,\n  \"max_ready\": %d,\n", max_running, max_ready);
  appendf(out, "  \"avg_running\": %.6f,\n  \"running_integral\": %.9f,\n", avg_running,
          running_integral);
  out += "  \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    appendf(out, "%s[%.9f, %d, %d]", i ? ", " : "", samples[i].t, samples[i].running,
            samples[i].ready);
  }
  out += "]\n}\n";
  return out;
}

double SpanLaw::lower_bound(int workers) const {
  return std::max(workers > 0 ? t1 / workers : t1, t_inf);
}

double SpanLaw::upper_bound(int workers) const {
  return (workers > 0 ? t1 / workers : t1) + t_inf;
}

double SpanLaw::predicted_speedup(int workers) const {
  const double lb = lower_bound(workers);
  return lb > 0.0 ? t1 / lb : 0.0;
}

SpanLaw span_law(const rt::Trace& trace) {
  const CriticalPath cp = critical_path(trace);
  SpanLaw law;
  law.t1 = cp.total_work;
  law.t_inf = cp.length;
  law.parallelism = cp.length > 0.0 ? cp.total_work / cp.length : 0.0;
  return law;
}

rt::SimulationResult replay_trace(const rt::Trace& trace, int workers,
                                  const rt::MachineModel& model, rt::SimPolicy policy) {
  DNC_REQUIRE(workers >= 1, "replay_trace: workers >= 1");
  const std::size_t n = trace.events.size();
  rt::SimulationResult res;
  if (n == 0) return res;
  const Adjacency adj = adjacency(trace);

  std::vector<double> dur(n);
  std::vector<char> membound(n, 0);
  std::size_t replayed = 0;  // child subtasks are not replayed (see analyzed())
  for (std::size_t i = 0; i < n; ++i) {
    if (!analyzed(trace.events[i])) continue;
    ++replayed;
    dur[i] = duration(trace.events[i]);
    res.total_work += dur[i];
    const int k = trace.events[i].kind;
    membound[i] = (k >= 0 && k < static_cast<int>(trace.kind_memory_bound.size()) &&
                   trace.kind_memory_bound[k] != 0)
                      ? 1
                      : 0;
  }
  if (replayed == 0) return res;
  res.critical_path = critical_path(trace).length;

  // From here on the code is rt::simulate_schedule's scheduling loop,
  // verbatim on trace indices: ready queue seeded in event order with the
  // same (priority desc, arrival asc) discipline, bandwidth factor applied
  // at task start from the instantaneous count.
  const int total_streams = std::min(workers, model.sockets * model.bw_streams_per_socket);

  struct Running {
    double finish;
    std::size_t task;
    int worker;
  };
  struct Later {
    bool operator()(const Running& a, const Running& b) const { return a.finish > b.finish; }
  };
  std::priority_queue<Running, std::vector<Running>, Later> running;
  struct ReadyEntry {
    int prio;
    std::uint64_t seq;
    std::size_t task;
  };
  struct ReadyOrder {
    bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
      if (a.prio != b.prio) return a.prio < b.prio;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, ReadyOrder> ready;
  std::uint64_t ready_seq = 0;
  const auto push_ready = [&](std::size_t i) {
    const int prio = policy == rt::SimPolicy::Priority ? trace.events[i].priority : 0;
    ready.push({prio, ready_seq++, i});
  };
  std::vector<int> remaining(adj.npred);
  for (std::size_t i = 0; i < n; ++i)
    if (remaining[i] == 0 && analyzed(trace.events[i])) push_ready(i);

  res.schedule.workers = workers;
  res.schedule.kind_names = trace.kind_names;
  res.schedule.kind_memory_bound = trace.kind_memory_bound;
  std::vector<int> free_workers(workers);
  for (int w = 0; w < workers; ++w) free_workers[w] = workers - 1 - w;

  double clock = 0.0;
  int idle_workers = workers;
  int running_membound = 0;
  std::size_t completed = 0;
  while (completed < replayed) {
    while (idle_workers > 0 && !ready.empty()) {
      const std::size_t t = ready.top().task;
      ready.pop();
      --idle_workers;
      double d = dur[t];
      if (membound[t]) {
        ++running_membound;
        const double factor =
            std::max(1.0, static_cast<double>(running_membound) / total_streams);
        d *= factor;
      }
      const int w = free_workers.back();
      free_workers.pop_back();
      running.push({clock + d, t, w});
      rt::TraceEvent ev{trace.events[t].task_id, trace.events[t].kind, w, clock, clock + d};
      ev.priority = trace.events[t].priority;
      res.schedule.events.push_back(ev);
    }
    DNC_REQUIRE(!running.empty(), "replay_trace: deadlock (cyclic edge set?)");
    const Running r = running.top();
    running.pop();
    clock = r.finish;
    ++idle_workers;
    free_workers.push_back(r.worker);
    if (membound[r.task]) --running_membound;
    ++completed;
    for (std::size_t s : adj.succ[r.task]) {
      if (--remaining[s] == 0) push_ready(s);
    }
  }
  res.makespan = clock;
  res.efficiency = res.total_work / (res.makespan * workers);
  return res;
}

}  // namespace dnc::obs
