#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/json.hpp"
#include "obs/analysis.hpp"
#include "obs/hwc.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  const int need = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (need > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(need), sizeof buf - 1));
}

/// Everything diff_solves needs from one side, resolved once. The trace is
/// authoritative for schedule quantities (per-kind busy, idle, critical
/// path); the report for identity, deflation and algorithmic counters.
struct SideView {
  DiffSideSummary sum;
  // kind -> (busy self-seconds, task count)
  std::map<std::string, std::pair<double, long>> kind_busy;
  // kind -> perf ratios (only when the perf backend sampled the side)
  struct HwcRatios {
    double ipc = 0.0, miss_rate = 0.0;
  };
  std::map<std::string, HwcRatios> kind_hwc;
  std::string hwc_backend;
  // kind -> share of critical-path length (traces only)
  std::map<std::string, double> cp_kind_share;
};

SideView resolve_side(const DiffSide& side) {
  SideView v;
  const SolveReport* rep = side.report;
  const rt::Trace* tr = side.trace;
  v.sum.label = side.label;
  if (rep) {
    v.sum.driver = rep->driver;
    v.sum.precision = rep->precision.empty() ? "f64" : rep->precision;
    v.sum.git_commit = rep->git_commit;
    v.sum.timestamp = rep->timestamp;
    v.sum.n = rep->n;
    v.sum.workers = std::max(rep->threads, 1);
    v.sum.makespan = rep->seconds;
    if (rep->has_scheduler) {
      v.sum.has_sched = true;
      if (rep->scheduler.workers > 0) v.sum.workers = rep->scheduler.workers;
      if (rep->scheduler.makespan > 0.0) v.sum.makespan = rep->scheduler.makespan;
      v.sum.busy = rep->scheduler.total_busy;
      v.sum.idle = rep->scheduler.total_idle;
      v.sum.steals = rep->scheduler.steals;
      v.sum.steals_cross_socket = rep->scheduler.steals_cross_socket;
    }
    if (!rep->merges.empty()) {
      v.sum.has_deflation = true;
      const long merged = rep->merged_columns_total();
      v.sum.deflated_fraction =
          merged > 0 ? static_cast<double>(rep->deflated_total()) / merged : 0.0;
    }
    if (rep->counter(kGemmFlops) > 0 && rep->seconds > 0.0)
      v.sum.gemm_gflops = static_cast<double>(rep->counter(kGemmFlops)) * 1e-9 / rep->seconds;
    // Per-kind data from the report's hwc aggregates (present when the solve
    // sampled counters; seconds are there even under the rusage backend).
    v.hwc_backend = rep->hwc_backend;
    for (const KindHwcTotals& k : rep->kind_hwc) {
      v.kind_busy[k.kind] = {k.seconds, k.tasks};
      if (rep->hwc_backend == "perf") {
        SideView::HwcRatios r;
        if (k.hwc[0] > 0) r.ipc = static_cast<double>(k.hwc[1]) / k.hwc[0];
        if (k.hwc[3] > 0) r.miss_rate = static_cast<double>(k.hwc[2]) / k.hwc[3];
        v.kind_hwc[k.kind] = r;
      }
    }
  }
  if (tr) {
    // The trace overrides the schedule quantities: its clock produced them.
    if (tr->workers > 0) v.sum.workers = tr->workers;
    const double mk = tr->makespan();
    if (mk > 0.0) v.sum.makespan = mk;
    v.sum.has_sched = v.sum.has_sched || !tr->worker_idle.empty();
    double idle = 0.0;
    for (double d : tr->worker_idle) idle += d;
    if (idle > 0.0 || !tr->worker_idle.empty()) v.sum.idle = idle;
    if (!tr->sched_counters.empty()) {
      v.sum.steals = 0;
      v.sum.steals_cross_socket = 0;
      for (const auto& c : tr->sched_counters) {
        v.sum.steals += c.steals;
        v.sum.steals_cross_socket += c.steals_cross_socket;
      }
    }
    v.kind_busy.clear();
    for (const auto& e : tr->events) {
      if (e.worker < 0 || e.kind < 0 ||
          e.kind >= static_cast<int>(tr->kind_names.size()))
        continue;
      auto& kb = v.kind_busy[tr->kind_names[e.kind]];
      kb.first += e.self_duration();
      ++kb.second;
    }
    if (!tr->hwc_backend.empty()) v.hwc_backend = tr->hwc_backend;
    if (tr->hwc_backend == "perf") {
      v.kind_hwc.clear();
      for (const KindHwcTotals& k : kind_hwc_totals(*tr)) {
        SideView::HwcRatios r;
        if (k.hwc[0] > 0) r.ipc = static_cast<double>(k.hwc[1]) / k.hwc[0];
        if (k.hwc[3] > 0) r.miss_rate = static_cast<double>(k.hwc[2]) / k.hwc[3];
        v.kind_hwc[k.kind] = r;
      }
    }
    if (v.sum.gemm_gflops == 0.0 && v.sum.makespan > 0.0)
      v.sum.gemm_gflops = tr->meta_counter("gemm_flops") * 1e-9 / v.sum.makespan;
    if (v.sum.timestamp.empty()) v.sum.timestamp = tr->meta_string("timestamp");
    if (v.sum.driver.empty()) v.sum.driver = tr->meta_string("driver");
    if (v.sum.git_commit.empty()) v.sum.git_commit = tr->meta_string("git_commit");
    if (v.sum.n == 0)
      v.sum.n = static_cast<long>(tr->meta_counter("n"));
    if (v.sum.precision.empty())
      v.sum.precision = tr->meta_counter("precision_bits") == 32.0 ? "f32" : "f64";
    // Critical path (per-kind share of the chain).
    const CriticalPath cp = critical_path(*tr);
    if (cp.length > 0.0) {
      v.sum.has_cp = true;
      v.sum.cp_length = cp.length;
      for (std::size_t k = 0; k < cp.time_by_kind.size() && k < tr->kind_names.size(); ++k)
        if (cp.time_by_kind[k] > 0.0)
          v.cp_kind_share[tr->kind_names[k]] = cp.time_by_kind[k] / cp.length;
    }
  }
  double busy = 0.0;
  for (const auto& [k, bt] : v.kind_busy) busy += bt.first;
  if (busy > 0.0) v.sum.busy = busy;
  if (v.sum.workers < 1) v.sum.workers = 1;
  if (v.sum.label.empty()) {
    v.sum.label = v.sum.git_commit.empty() ? "?" : v.sum.git_commit;
    if (!v.sum.timestamp.empty()) v.sum.label += " " + v.sum.timestamp;
  }
  return v;
}

std::string pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * x);
  return buf;
}

}  // namespace

SolveDiff diff_solves(const DiffSide& a, const DiffSide& b, const DiffOptions& opt) {
  SolveDiff d;
  const SideView va = resolve_side(a);
  const SideView vb = resolve_side(b);
  d.a = va.sum;
  d.b = vb.sum;
  d.delta = d.b.makespan - d.a.makespan;
  d.noise_floor =
      std::max(opt.noise_abs, opt.noise_rel * std::max(d.a.makespan, d.b.makespan));
  d.significant = std::fabs(d.delta) >= d.noise_floor;

  // Identity alignment: mismatches never abort the diff, they only warn --
  // cross-driver or cross-n diffs are sometimes exactly the question.
  if (!va.sum.driver.empty() && !vb.sum.driver.empty() && va.sum.driver != vb.sum.driver) {
    d.comparable = false;
    d.warnings.push_back("driver mismatch: " + va.sum.driver + " vs " + vb.sum.driver);
  }
  if (va.sum.n > 0 && vb.sum.n > 0 && va.sum.n != vb.sum.n) {
    d.comparable = false;
    d.warnings.push_back("n mismatch: " + std::to_string(va.sum.n) + " vs " +
                         std::to_string(vb.sum.n));
  }
  if (!va.sum.precision.empty() && !vb.sum.precision.empty() &&
      va.sum.precision != vb.sum.precision) {
    d.comparable = false;
    d.warnings.push_back("precision mismatch: " + va.sum.precision + " vs " +
                         vb.sum.precision);
  }
  if (va.sum.workers != vb.sum.workers)
    d.warnings.push_back("worker counts differ (" + std::to_string(va.sum.workers) + " vs " +
                         std::to_string(vb.sum.workers) +
                         "); contributions are per-worker normalised");
  if (!va.hwc_backend.empty() && !vb.hwc_backend.empty() && va.hwc_backend != vb.hwc_backend)
    d.warnings.push_back("hwc backend mismatch: " + va.hwc_backend + " vs " + vb.hwc_backend +
                         "; counter deltas suppressed");
  const bool hwc_ok = va.hwc_backend == "perf" && vb.hwc_backend == "perf";

  // --- per-kind rows over the union of kinds ---
  std::map<std::string, KindDelta> rows;
  for (const auto& [kind, bt] : va.kind_busy) {
    KindDelta& r = rows[kind];
    r.kind = kind;
    r.busy_a = bt.first;
    r.tasks_a = bt.second;
  }
  for (const auto& [kind, bt] : vb.kind_busy) {
    KindDelta& r = rows[kind];
    r.kind = kind;
    r.busy_b = bt.first;
    r.tasks_b = bt.second;
  }
  if (hwc_ok) {
    for (auto& [kind, r] : rows) {
      const auto ia = va.kind_hwc.find(kind);
      const auto ib = vb.kind_hwc.find(kind);
      if (ia != va.kind_hwc.end() && ib != vb.kind_hwc.end()) {
        r.has_hwc = true;
        r.ipc_a = ia->second.ipc;
        r.ipc_b = ib->second.ipc;
        r.miss_rate_a = ia->second.miss_rate;
        r.miss_rate_b = ib->second.miss_rate;
      }
    }
  }
  for (const auto& [kind, r] : rows) d.kinds.push_back(r);
  std::sort(d.kinds.begin(), d.kinds.end(), [](const KindDelta& x, const KindDelta& y) {
    return std::fabs(x.delta()) > std::fabs(y.delta());
  });

  // --- additive decomposition (per-worker normalised) ---
  const double wa = va.sum.workers, wb = vb.sum.workers;
  double contrib_sum = 0.0, busy_contrib = 0.0;
  if (!rows.empty()) {
    for (const auto& [kind, r] : rows) {
      DiffComponent c;
      c.component = "busy:" + kind;
      c.seconds = r.busy_b / wb - r.busy_a / wa;
      busy_contrib += c.seconds;
      contrib_sum += c.seconds;
      d.components.push_back(c);
    }
  } else if (va.sum.busy > 0.0 || vb.sum.busy > 0.0) {
    DiffComponent c;
    c.component = "busy";
    c.seconds = vb.sum.busy / wb - va.sum.busy / wa;
    busy_contrib = contrib_sum = c.seconds;
    d.components.push_back(c);
  }
  if (va.sum.has_sched || vb.sum.has_sched) {
    DiffComponent c;
    c.component = "sched_idle";
    c.seconds = vb.sum.idle / wb - va.sum.idle / wa;
    contrib_sum += c.seconds;
    d.components.push_back(c);
  }
  if (!d.components.empty()) {
    const double residual = d.delta - contrib_sum;
    if (std::fabs(residual) > 1e-9) {
      DiffComponent c;
      c.component = "unattributed";
      c.seconds = residual;
      d.components.push_back(c);
    }
  }
  std::sort(d.components.begin(), d.components.end(),
            [](const DiffComponent& x, const DiffComponent& y) {
              return std::fabs(x.seconds) > std::fabs(y.seconds);
            });
  if (d.significant && std::fabs(d.delta) > 0.0) {
    for (DiffComponent& c : d.components) c.share = c.seconds / d.delta;
    d.busy_share = busy_contrib / d.delta;
    if (!d.components.empty()) d.top_component = d.components.front().component;
  }

  // --- critical-path diff ---
  if (va.sum.has_cp && vb.sum.has_cp) {
    for (const auto& [kind, share] : vb.cp_kind_share) {
      const auto it = va.cp_kind_share.find(kind);
      const double sa = it == va.cp_kind_share.end() ? 0.0 : it->second;
      if (share >= opt.cp_share && sa < opt.cp_share) d.cp_entered.push_back(kind);
    }
    for (const auto& [kind, share] : va.cp_kind_share) {
      const auto it = vb.cp_kind_share.find(kind);
      const double sb = it == vb.cp_kind_share.end() ? 0.0 : it->second;
      if (share >= opt.cp_share && sb < opt.cp_share) d.cp_left.push_back(kind);
    }
  }

  // --- explanatory notes (never part of the additive split) ---
  char buf[256];
  if (va.sum.has_deflation && vb.sum.has_deflation) {
    const double df = vb.sum.deflated_fraction - va.sum.deflated_fraction;
    if (std::fabs(df) > 0.02) {
      std::snprintf(buf, sizeof buf,
                    "deflated fraction %.3f -> %.3f (%+.3f): %s deflation means %s secular "
                    "systems and %s GEMM work",
                    va.sum.deflated_fraction, vb.sum.deflated_fraction, df,
                    df < 0 ? "less" : "more", df < 0 ? "larger" : "smaller",
                    df < 0 ? "more" : "less");
      d.notes.push_back(buf);
    }
  }
  if (va.sum.gemm_gflops > 0.0 && vb.sum.gemm_gflops > 0.0) {
    const double rel = vb.sum.gemm_gflops / va.sum.gemm_gflops - 1.0;
    if (std::fabs(rel) > 0.05) {
      std::snprintf(buf, sizeof buf, "GEMM throughput %.1f -> %.1f GF/s (%s)",
                    va.sum.gemm_gflops, vb.sum.gemm_gflops, pct(rel).c_str());
      d.notes.push_back(buf);
    }
  }
  if (va.sum.steals > 0 && vb.sum.steals > 0) {
    const double xa = static_cast<double>(va.sum.steals_cross_socket) / va.sum.steals;
    const double xb = static_cast<double>(vb.sum.steals_cross_socket) / vb.sum.steals;
    if (std::fabs(xb - xa) > 0.10) {
      std::snprintf(buf, sizeof buf,
                    "steal locality shifted: %.0f%% -> %.0f%% of steals cross-socket "
                    "(%ld -> %ld steals total)",
                    100.0 * xa, 100.0 * xb, va.sum.steals, vb.sum.steals);
      d.notes.push_back(buf);
    }
  }
  if (hwc_ok && !d.kinds.empty()) {
    const KindDelta& lead = d.kinds.front();
    if (lead.has_hwc && lead.ipc_a > 0.0) {
      const double rel = lead.ipc_b / lead.ipc_a - 1.0;
      if (std::fabs(rel) > 0.10) {
        std::snprintf(buf, sizeof buf, "%s IPC %.2f -> %.2f (%s), LLC miss %.1f%% -> %.1f%%",
                      lead.kind.c_str(), lead.ipc_a, lead.ipc_b, pct(rel).c_str(),
                      100.0 * lead.miss_rate_a, 100.0 * lead.miss_rate_b);
        d.notes.push_back(buf);
      }
    }
  }
  return d;
}

// --- renderings ------------------------------------------------------------

std::string SolveDiff::render() const {
  std::string out;
  appendf(out, "=== dnc solve diff ===\n");
  const auto side = [&](const char* tag, const DiffSideSummary& s) {
    appendf(out, "%s: %s", tag, s.label.c_str());
    if (!s.driver.empty()) appendf(out, "  driver=%s", s.driver.c_str());
    if (s.n > 0) appendf(out, " n=%ld", s.n);
    if (!s.precision.empty()) appendf(out, " prec=%s", s.precision.c_str());
    appendf(out, " workers=%d", s.workers);
    appendf(out, "\n");
  };
  side("a", a);
  side("b", b);
  for (const std::string& w : warnings) appendf(out, "warning: %s\n", w.c_str());
  appendf(out, "makespan  : %.6f s -> %.6f s  (%+.6f s, %s)\n", a.makespan, b.makespan, delta,
          a.makespan > 0.0 ? pct(delta / a.makespan).c_str() : "n/a");
  if (!significant) {
    appendf(out, "delta within noise (floor %.6f s); no attribution.\n", noise_floor);
    return out;
  }
  if (!components.empty()) {
    appendf(out, "\n-- attribution (additive, per-worker normalised) --\n");
    appendf(out, "%-28s %12s %8s\n", "component", "seconds", "share");
    for (const DiffComponent& c : components)
      appendf(out, "%-28s %+12.6f %7.1f%%\n", c.component.c_str(), c.seconds, 100.0 * c.share);
    appendf(out, "task busy time carries %.1f%% of the delta\n", 100.0 * busy_share);
  }
  if (!kinds.empty()) {
    appendf(out, "\n-- kinds --\n");
    appendf(out, "%-22s %11s %11s %11s %7s %7s", "kind", "busy_a(s)", "busy_b(s)", "delta(s)",
            "tasks_a", "tasks_b");
    const bool any_hwc =
        std::any_of(kinds.begin(), kinds.end(), [](const KindDelta& k) { return k.has_hwc; });
    if (any_hwc) appendf(out, "  %11s %13s", "IPC a->b", "miss%% a->b");
    appendf(out, "\n");
    for (const KindDelta& k : kinds) {
      appendf(out, "%-22s %11.6f %11.6f %+11.6f %7ld %7ld", k.kind.c_str(), k.busy_a, k.busy_b,
              k.delta(), k.tasks_a, k.tasks_b);
      if (k.has_hwc)
        appendf(out, "  %4.2f->%4.2f %5.1f%%->%5.1f%%", k.ipc_a, k.ipc_b,
                100.0 * k.miss_rate_a, 100.0 * k.miss_rate_b);
      appendf(out, "\n");
    }
  }
  if (a.has_cp && b.has_cp) {
    appendf(out, "\n-- critical path --\nlength %.6f s -> %.6f s (%+.6f s)\n", a.cp_length,
            b.cp_length, b.cp_length - a.cp_length);
    const auto list = [&](const char* tag, const std::vector<std::string>& v) {
      appendf(out, "%s: ", tag);
      if (v.empty()) {
        appendf(out, "(none)");
      } else {
        for (std::size_t i = 0; i < v.size(); ++i)
          appendf(out, "%s%s", i ? ", " : "", v[i].c_str());
      }
      appendf(out, "\n");
    };
    list("kinds entered", cp_entered);
    list("kinds left", cp_left);
  }
  if (!notes.empty()) {
    appendf(out, "\n-- notes --\n");
    for (const std::string& n : notes) appendf(out, "* %s\n", n.c_str());
  }
  return out;
}

std::string SolveDiff::one_paragraph() const {
  std::string out;
  if (!significant) {
    appendf(out,
            "makespan %.6f s -> %.6f s (%+.6f s): within noise (floor %.6f s); "
            "no attribution.",
            a.makespan, b.makespan, delta, noise_floor);
    return out;
  }
  appendf(out, "b is %s %s than a (%.6f s -> %.6f s, %+.6f s).",
          a.makespan > 0.0 ? pct(std::fabs(delta) / a.makespan).c_str() + 1 : "",  // drop sign
          delta > 0 ? "slower" : "faster", a.makespan, b.makespan, delta);
  if (!components.empty()) {
    appendf(out, " %s carries the largest share (%+.6f s, %.0f%% of the delta)",
            top_component.c_str(), components.front().seconds,
            100.0 * std::fabs(components.front().share));
    if (components.size() > 1)
      appendf(out, "; next %s (%+.6f s, %.0f%%)", components[1].component.c_str(),
              components[1].seconds, 100.0 * std::fabs(components[1].share));
    appendf(out, "; task busy time in total carries %.0f%%.", 100.0 * busy_share);
  }
  if (!cp_entered.empty()) {
    appendf(out, " Critical path grew %+0.6f s; entering kinds:", b.cp_length - a.cp_length);
    for (std::size_t i = 0; i < cp_entered.size(); ++i)
      appendf(out, "%s %s", i ? "," : "", cp_entered[i].c_str());
    appendf(out, ".");
  }
  if (!notes.empty()) appendf(out, " %s.", notes.front().c_str());
  return out;
}

std::string SolveDiff::to_json() const {
  std::string out = "{\n  \"schema\": \"dnc-diff-v1\",\n";
  const auto side = [&](const char* tag, const DiffSideSummary& s) {
    appendf(out,
            "  \"%s\": {\"label\": \"%s\", \"driver\": \"%s\", \"n\": %ld, "
            "\"precision\": \"%s\", \"git_commit\": \"%s\", \"timestamp\": \"%s\", "
            "\"workers\": %d, \"makespan\": %.9f, \"busy\": %.9f, \"idle\": %.9f, "
            "\"deflated_fraction\": %.6f, \"gemm_gflops\": %.3f, \"cp_length\": %.9f},\n",
            tag, rt::json_escape(s.label).c_str(), rt::json_escape(s.driver).c_str(), s.n,
            rt::json_escape(s.precision).c_str(), rt::json_escape(s.git_commit).c_str(),
            rt::json_escape(s.timestamp).c_str(), s.workers, s.makespan, s.busy, s.idle,
            s.deflated_fraction, s.gemm_gflops, s.cp_length);
  };
  side("a", a);
  side("b", b);
  appendf(out, "  \"delta_seconds\": %.9f,\n  \"noise_floor\": %.9f,\n", delta, noise_floor);
  appendf(out, "  \"significant\": %s,\n  \"comparable\": %s,\n",
          significant ? "true" : "false", comparable ? "true" : "false");
  appendf(out, "  \"busy_share\": %.6f,\n  \"top_component\": \"%s\",\n", busy_share,
          rt::json_escape(top_component).c_str());
  out += "  \"components\": [";
  for (std::size_t i = 0; i < components.size(); ++i)
    appendf(out, "%s\n    {\"component\": \"%s\", \"seconds\": %.9f, \"share\": %.6f}",
            i ? "," : "", rt::json_escape(components[i].component).c_str(),
            components[i].seconds, components[i].share);
  out += components.empty() ? "],\n" : "\n  ],\n";
  out += "  \"kinds\": [";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const KindDelta& k = kinds[i];
    appendf(out,
            "%s\n    {\"kind\": \"%s\", \"busy_a\": %.9f, \"busy_b\": %.9f, "
            "\"tasks_a\": %ld, \"tasks_b\": %ld",
            i ? "," : "", rt::json_escape(k.kind).c_str(), k.busy_a, k.busy_b, k.tasks_a,
            k.tasks_b);
    if (k.has_hwc)
      appendf(out,
              ", \"ipc_a\": %.4f, \"ipc_b\": %.4f, \"miss_rate_a\": %.4f, "
              "\"miss_rate_b\": %.4f",
              k.ipc_a, k.ipc_b, k.miss_rate_a, k.miss_rate_b);
    out += "}";
  }
  out += kinds.empty() ? "],\n" : "\n  ],\n";
  const auto strlist = [&](const char* name, const std::vector<std::string>& v) {
    appendf(out, "  \"%s\": [", name);
    for (std::size_t i = 0; i < v.size(); ++i)
      appendf(out, "%s\"%s\"", i ? ", " : "", rt::json_escape(v[i]).c_str());
    out += "],\n";
  };
  strlist("cp_entered", cp_entered);
  strlist("cp_left", cp_left);
  strlist("notes", notes);
  strlist("warnings", warnings);
  appendf(out, "  \"paragraph\": \"%s\"\n}\n", rt::json_escape(one_paragraph()).c_str());
  return out;
}

// --- SolveReport JSON reader ------------------------------------------------

bool parse_solve_report_value(const json::Value& v, SolveReport& out, std::string* err) {
  if (!v.is_object()) {
    if (err) *err = "report is not a JSON object";
    return false;
  }
  if (!v.find("driver") && !v.find("counters") && !v.find("n")) {
    if (err) *err = "object carries no SolveReport members (driver/n/counters)";
    return false;
  }
  out = SolveReport{};
  out.driver = v.member_string("driver", "");
  out.n = static_cast<long>(v.member_number("n", 0));
  out.threads = static_cast<int>(v.member_number("threads", 0));
  out.seconds = v.member_number("seconds", 0.0);
  out.simd_isa = v.member_string("simd_isa", "");
  out.precision = v.member_string("precision", "f64");
  out.git_commit = v.member_string("git_commit", "");
  out.build_type = v.member_string("build_type", "");
  out.hostname = v.member_string("hostname", "");
  out.timestamp = v.member_string("timestamp", "");
  if (const json::Value* c = v.find("counters"); c && c->is_object()) {
    for (int i = 0; i < kNumCounters; ++i) {
      if (const json::Value* m = c->find(counter_name(i)); m && m->is_number())
        out.counters[i] = static_cast<std::uint64_t>(m->number);
    }
  }
  if (const json::Value* ms = v.find("merges"); ms && ms->is_array()) {
    for (const json::Value& m : ms->array) {
      MergeRecord r;
      r.level = static_cast<int>(m.member_number("level", 0));
      r.m = static_cast<long>(m.member_number("m", 0));
      r.n1 = static_cast<long>(m.member_number("n1", 0));
      r.k = static_cast<long>(m.member_number("k", 0));
      if (const json::Value* ct = m.find("ctot"); ct && ct->is_array())
        for (std::size_t i = 0; i < 4 && i < ct->array.size(); ++i)
          r.ctot[i] = static_cast<long>(ct->array[i].number_or(0));
      r.t_end = m.member_number("t_end", 0.0);
      out.merges.push_back(r);
    }
  }
  if (const json::Value* mem = v.find("memory"); mem && mem->is_object()) {
    out.memory.workspace_bytes =
        static_cast<std::uint64_t>(mem->member_number("workspace_bytes", 0));
    out.memory.context_bytes = static_cast<std::uint64_t>(mem->member_number("context_bytes", 0));
    out.memory.output_bytes = static_cast<std::uint64_t>(mem->member_number("output_bytes", 0));
    out.memory.rss_hwm_bytes = static_cast<std::uint64_t>(mem->member_number("rss_hwm_bytes", 0));
    out.memory.rss_hwm_delta_bytes =
        static_cast<std::uint64_t>(mem->member_number("rss_hwm_delta_bytes", 0));
  }
  if (const json::Value* h = v.find("hwc"); h && h->is_object()) {
    out.hwc_backend = h->member_string("backend", "");
    if (const json::Value* slots = h->find("slots"); slots && slots->is_array())
      for (const json::Value& s : slots->array) out.hwc_slot_names.push_back(s.string_or(""));
    if (const json::Value* kinds = h->find("kinds"); kinds && kinds->is_array()) {
      for (const json::Value& k : kinds->array) {
        KindHwcTotals t;
        t.kind = k.member_string("kind", "");
        t.tasks = static_cast<long>(k.member_number("tasks", 0));
        t.seconds = k.member_number("seconds", 0.0);
        if (const json::Value* hs = k.find("hwc"); hs && hs->is_array())
          for (std::size_t i = 0; i < static_cast<std::size_t>(rt::kHwcSlots) &&
                                  i < hs->array.size();
               ++i)
            t.hwc[i] = static_cast<std::uint64_t>(hs->array[i].number_or(0));
        out.kind_hwc.push_back(t);
      }
    }
  }
  if (const json::Value* h = v.find("health"); h && h->is_object()) {
    out.has_health = true;
    out.health.sampled_columns = static_cast<int>(h->member_number("sampled_columns", 0));
    out.health.max_rel_residual = h->member_number("max_rel_residual", 0.0);
    out.health.max_ortho_error = h->member_number("max_ortho_error", 0.0);
  }
  if (const json::Value* s = v.find("scheduler"); s && s->is_object()) {
    out.has_scheduler = true;
    out.scheduler.workers = static_cast<int>(s->member_number("workers", 0));
    out.scheduler.tasks = static_cast<long>(s->member_number("tasks", 0));
    out.scheduler.makespan = s->member_number("makespan", 0.0);
    out.scheduler.total_busy = s->member_number("total_busy", 0.0);
    out.scheduler.efficiency = s->member_number("efficiency", 0.0);
    out.scheduler.avg_ready_wait = s->member_number("avg_ready_wait", 0.0);
    out.scheduler.max_ready_wait = s->member_number("max_ready_wait", 0.0);
    out.scheduler.total_idle = s->member_number("total_idle", 0.0);
    out.scheduler.max_queue_depth = static_cast<int>(s->member_number("max_queue_depth", 0));
    out.scheduler.policy = s->member_string("policy", "");
    out.scheduler.steals = static_cast<long>(s->member_number("steals", 0));
    out.scheduler.steal_attempts = static_cast<long>(s->member_number("steal_attempts", 0));
    out.scheduler.failed_steals = static_cast<long>(s->member_number("failed_steals", 0));
    out.scheduler.local_pops = static_cast<long>(s->member_number("local_pops", 0));
    out.scheduler.placed_max = static_cast<long>(s->member_number("placed_max", 0));
    out.scheduler.placed_min = static_cast<long>(s->member_number("placed_min", 0));
    out.scheduler.steals_same_l3 = static_cast<long>(s->member_number("steals_same_l3", 0));
    out.scheduler.steals_same_socket =
        static_cast<long>(s->member_number("steals_same_socket", 0));
    out.scheduler.steals_cross_socket =
        static_cast<long>(s->member_number("steals_cross_socket", 0));
    out.scheduler.child_tasks = static_cast<long>(s->member_number("child_tasks", 0));
  }
  if (const json::Value* t = v.find("tuning"); t && t->is_object()) {
    out.tuned = true;
    out.tune_source = t->member_string("source", "");
    out.tune_entry = t->member_string("entry", "");
  }
  return true;
}

bool parse_solve_report(const std::string& json_text, SolveReport& out, std::string* err) {
  json::Value v;
  if (!json::parse(json_text, v, err)) return false;
  return parse_solve_report_value(v, out, err);
}

bool load_solve_report_file(const std::string& path, SolveReport& out, std::string* err) {
  json::Value v;
  if (!json::parse_file(path, v, err)) return false;
  return parse_solve_report_value(v, out, err);
}

}  // namespace dnc::obs
