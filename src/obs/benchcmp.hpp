// Solver-benchmark artifact comparison: the perf-regression gate.
//
// bench/bench_solver.cpp writes BENCH_solver.json (drivers x matrix
// families x sizes, >= 5 repetitions each, median/IQR). This module loads
// two such artifacts, matches entries by (driver, family, n) and classifies
// each pair against a noise threshold on the chosen statistic. The CLI
// (tools/bench_compare) exits nonzero when any regression is found, which
// is what the ctest tier-2 gate and CI hang off.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dnc::obs {

struct BenchEntry {
  std::string driver;
  std::string family;
  std::string precision = "f64";  ///< working precision ("f64" when absent)
  long n = 0;
  int reps = 0;
  double median = 0.0;  ///< seconds
  double q1 = 0.0;
  double q3 = 0.0;
  double min = 0.0;

  /// "driver|family|n" (plus "|<precision>" for non-f64 rows, so artifacts
  /// written before the precision dimension still match their f64 rows).
  std::string key() const;
};

struct BenchArtifact {
  std::string schema;
  std::vector<std::pair<std::string, std::string>> metadata;
  std::vector<BenchEntry> entries;
};

/// Loads a BENCH_solver.json. Returns false (with `err`) on unreadable or
/// structurally unusable input; unknown extra members are ignored so newer
/// writers stay readable.
bool load_bench_artifact(const std::string& path, BenchArtifact& out,
                         std::string* err = nullptr);
/// Same, from an in-memory JSON string (tests).
bool parse_bench_artifact(const std::string& json_text, BenchArtifact& out,
                          std::string* err = nullptr);

/// Which per-entry statistic the gate compares. Median is the default;
/// `min` is less noise-sensitive on very short runs.
enum class BenchStat { kMedian, kMin };

enum class Verdict { kRegression, kImprovement, kWithinNoise };

struct CompareRow {
  std::string key;
  // Entry identity split out of the key, so the attribution path (diffing
  // the per-entry SolveReports a DNC_BENCH_REPORTS run side-wrote) can name
  // the report files without re-parsing the key.
  std::string driver, family, precision;
  long n = 0;
  double base_seconds = 0.0;
  double cur_seconds = 0.0;
  double ratio = 1.0;  ///< cur / base; > 1 means slower
  Verdict verdict = Verdict::kWithinNoise;
};

struct CompareResult {
  std::vector<CompareRow> rows;  ///< sorted worst ratio first
  int regressions = 0;
  int improvements = 0;
  int within_noise = 0;
  /// Keys present in only one artifact -- reported, never fatal, so adding
  /// a family/size doesn't break comparison against an older baseline.
  std::vector<std::string> only_in_base;
  std::vector<std::string> only_in_current;

  bool gate_passed() const { return regressions == 0; }
  /// Human-readable table + verdict line ("3 regressions", "within noise").
  std::string render(double threshold) const;
};

/// Pairs up entries and classifies each: ratio > 1 + threshold is a
/// regression, ratio < 1 - threshold an improvement, else within noise.
/// Entries whose base statistic is zero (corrupt artifact) are treated as
/// within noise and reported in the render. Entries where both sides are
/// below `min_seconds` are classified as within noise regardless of ratio:
/// sub-millisecond cells flip by 2x from scheduler jitter alone and would
/// make the gate useless.
CompareResult compare_bench_artifacts(const BenchArtifact& base, const BenchArtifact& current,
                                      double threshold, BenchStat stat = BenchStat::kMedian,
                                      double min_seconds = 0.0);

/// Value of a metadata key in the artifact ("" when absent).
std::string bench_metadata(const BenchArtifact& artifact, const std::string& key);

/// Canonical filename of the per-entry SolveReport a DNC_BENCH_REPORTS run
/// side-writes for one bench cell: "report_<driver>_<family>_<prec>_n<n>.json".
/// Shared by the writer (bench_solver) and the reader (bench_compare) so
/// the two can never drift apart.
std::string bench_report_filename(const std::string& driver, const std::string& family,
                                  const std::string& precision, long n);

}  // namespace dnc::obs
