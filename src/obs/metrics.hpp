// Always-on production metrics: the cross-solve half of the observability
// stack.
//
// DNC_TRACE / DNC_REPORT dump one artifact per solve -- the right shape for
// studying a single run, the wrong shape for a long-running process doing
// thousands of solves. This registry holds monotonic counters, gauges and
// HDR-style log-bucketed histograms that accumulate over the life of the
// process (solve latency by driver/size-class/precision, per-merge
// deflation ratios, GEMM GF/s, refinement steps, scheduler queue depth and
// steals) and are merged at scrape time into a Prometheus text exposition
// or a JSON snapshot.
//
// Design points:
//   * Gated by DNC_METRICS. Unset, every recording call is one relaxed
//     atomic load and a taken branch -- no registration, no thread shards,
//     no allocation anywhere (the back-to-back perf gate enforces this, and
//     tests/obs assert that the registry stays empty).
//   * Counters and histograms land in lock-free per-thread shards
//     (single-writer relaxed atomics, the counters.cpp idiom) registered
//     once per thread under a mutex and kept alive past thread exit;
//     scrape() merges the shards without stopping writers. Gauges are
//     set rarely (per solve/run) and live on the registry directly.
//   * Histograms use log2 bucketing with kHistSub sub-buckets per octave:
//     relative quantile error is bounded by 2^(1/kHistSub) - 1 (~9% at 8)
//     for any value in [2^kHistMinExp, 2^kHistMaxExp), with explicit
//     underflow/overflow buckets outside that range.
//
//   DNC_METRICS unset / "" / "0" / "off"  -> disabled
//   DNC_METRICS=1|on                      -> enabled, in-memory only
//   DNC_METRICS=<path>                    -> enabled; a snapshot is written
//     to <path> (Prometheus text) and <path>.json (JSON) at process exit
//     and, when DNC_METRICS_INTERVAL=<seconds> is set, periodically from a
//     background exporter thread. %p in the path expands to the pid, %s to
//     the export sequence number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dnc::obs::metrics {

enum class Kind { Counter, Gauge, Histogram };

// --- histogram bucketing -------------------------------------------------
// Bucket 0 collects values < 2^kHistMinExp (including 0 and negatives);
// bucket kHistBuckets-1 collects values >= 2^kHistMaxExp. In between,
// bucket 1 + (e - kHistMinExp)*kHistSub + sub spans
// [2^(e + sub/kHistSub), 2^(e + (sub+1)/kHistSub)).
inline constexpr int kHistSub = 8;       ///< sub-buckets per octave
inline constexpr int kHistMinExp = -30;  ///< 2^-30 ~ 1e-9 (ns-scale latencies)
inline constexpr int kHistMaxExp = 24;   ///< 2^24 ~ 1.7e7
inline constexpr int kHistBuckets = (kHistMaxExp - kHistMinExp) * kHistSub + 2;

/// Bucket index for a value (see layout above).
int bucket_index(double v) noexcept;
/// Lower / upper bound of bucket `i`. bucket_lower(0) == 0,
/// bucket_upper(kHistBuckets-1) == +inf.
double bucket_lower(int i) noexcept;
double bucket_upper(int i) noexcept;

// --- gate ----------------------------------------------------------------

/// True when DNC_METRICS requests collection. The env is read once and
/// cached; the steady-state cost is one relaxed load + branch.
bool enabled() noexcept;

/// Re-reads DNC_METRICS / DNC_METRICS_INTERVAL (tests setenv mid-process).
void refresh_from_env() noexcept;

// --- registration + recording --------------------------------------------

/// Stable handle; invalid ids (registry full / metrics disabled at
/// registration time) make every recording call a no-op.
struct Id {
  int v = -1;
  bool valid() const noexcept { return v >= 0; }
};

/// Registers (or finds) the metric (kind, name, labels). `labels` is the
/// pre-rendered Prometheus label body without braces, e.g.
/// `driver="taskflow",size_class="m"` -- empty for none. Same
/// (name, labels) returns the same id; a kind mismatch returns the
/// existing id (first registration wins). Returns an invalid Id when
/// metrics are disabled, so nothing is allocated for unobserved processes.
Id register_metric(Kind kind, const std::string& name, const std::string& labels,
                   const std::string& help);

/// Monotonic counter increment (no-op for invalid ids / disabled metrics).
void add(Id id, double delta = 1.0) noexcept;
/// Gauge set (last write wins, process-wide).
void set_gauge(Id id, double value) noexcept;
/// Histogram observation: bumps the value's log bucket, the count and sum.
void observe(Id id, double value) noexcept;

// --- scraping ------------------------------------------------------------

struct MetricSnapshot {
  Kind kind = Kind::Counter;
  std::string name;
  std::string labels;  ///< Prometheus label body without braces ("" = none)
  std::string help;
  double value = 0.0;        ///< counter total / gauge value
  std::uint64_t count = 0;   ///< histogram observation count
  double sum = 0.0;          ///< histogram sum of observations
  /// Non-empty histogram buckets, ascending by index.
  std::vector<std::pair<int, std::uint64_t>> buckets;

  /// Quantile estimate (q in [0,1]) from the log buckets: the geometric
  /// mean of the holding bucket's bounds, so the relative error is at most
  /// 2^(1/(2*kHistSub)) - 1 for in-range values. 0 when count == 0.
  double quantile(double q) const;
};

struct Snapshot {
  long pid = 0;
  std::string hostname;
  std::string timestamp;  ///< ISO-8601 UTC scrape time
  std::vector<MetricSnapshot> metrics;  ///< registration order
};

/// Merges every thread shard into a consistent-enough view (writers keep
/// writing; each cell is read once, so counters are monotonic across
/// scrapes). Cheap: O(metrics x shards).
Snapshot scrape();

/// Prometheus text exposition (one # HELP/# TYPE block per metric family;
/// histograms expose cumulative _bucket{le=...} series plus _sum/_count).
std::string prometheus_text(const Snapshot& s);

/// JSON snapshot (schema "dnc-metrics-v1"), parseable by common/json.hpp.
std::string json_text(const Snapshot& s);

/// Parses a json_text() artifact back. Returns false on malformed input.
bool parse_snapshot(const std::string& json, Snapshot& out, std::string* err = nullptr);

/// One-page text rendering of a snapshot (the dnc_metrics CLI view):
/// counters/gauges as rows, histograms with count/mean/p50/p90/p99.
std::string render_snapshot(const Snapshot& s);

/// Renders the delta b - a (counters/histograms subtract; gauges show
/// a -> b). Metrics present in only one snapshot are listed as such.
std::string render_diff(const Snapshot& a, const Snapshot& b);

// --- export --------------------------------------------------------------

/// Path configured via DNC_METRICS (empty when unset or set to a bare
/// enable flag like "1"). %p / %s placeholders are NOT yet expanded.
std::string configured_export_path();

/// Writes the current scrape to `path` (Prometheus text) and `path`.json
/// (JSON snapshot), expanding %p -> pid and %s -> export sequence. With an
/// empty `path`, uses the configured one; no-op when neither exists.
/// Returns the expanded Prometheus path ("" when nothing was written).
std::string export_now(const std::string& path = "");

/// Installs the at-exit exporter and, when DNC_METRICS_INTERVAL > 0, the
/// periodic background exporter thread. Called lazily by the first
/// recording; safe to call repeatedly.
void ensure_exporter();

// --- introspection (tests, zero-overhead assertions) ---------------------

/// Number of registered metrics (0 until something records while enabled).
std::size_t registry_size() noexcept;
/// Number of per-thread shards ever allocated (0 proves no recording path
/// went past the gate).
std::size_t shard_count() noexcept;
/// Drops every registered metric and shard and re-reads the env. Only for
/// tests -- concurrent recorders must be quiesced by the caller.
void reset_for_tests();

}  // namespace dnc::obs::metrics
