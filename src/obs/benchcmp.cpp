#include "obs/benchcmp.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "common/json.hpp"

namespace dnc::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[320];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

bool extract_artifact(const json::Value& root, BenchArtifact& out, std::string* err,
                      const std::string& ctx) {
  out = BenchArtifact{};
  if (!root.is_object()) {
    if (err) *err = ctx + "artifact is not a JSON object";
    return false;
  }
  out.schema = root.member_string("schema", "");
  if (const json::Value* meta = root.find("metadata"); meta && meta->is_object()) {
    for (const auto& [k, v] : meta->object)
      out.metadata.emplace_back(k, v.is_string() ? v.string : "");
  }
  const json::Value* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (err) *err = ctx + "artifact has no entries array";
    return false;
  }
  for (const json::Value& e : entries->array) {
    if (!e.is_object()) continue;
    BenchEntry be;
    be.driver = e.member_string("driver", "?");
    be.family = e.member_string("family", "?");
    be.precision = e.member_string("precision", "f64");
    be.n = static_cast<long>(e.member_number("n", 0.0));
    be.reps = static_cast<int>(e.member_number("reps", 0.0));
    if (const json::Value* s = e.find("seconds"); s && s->is_object()) {
      be.median = s->member_number("median", 0.0);
      be.q1 = s->member_number("q1", 0.0);
      be.q3 = s->member_number("q3", 0.0);
      be.min = s->member_number("min", 0.0);
    }
    out.entries.push_back(std::move(be));
  }
  return true;
}

}  // namespace

std::string BenchEntry::key() const {
  char buf[160];
  if (precision.empty() || precision == "f64")
    std::snprintf(buf, sizeof buf, "%s|%s|%ld", driver.c_str(), family.c_str(), n);
  else
    std::snprintf(buf, sizeof buf, "%s|%s|%ld|%s", driver.c_str(), family.c_str(), n,
                  precision.c_str());
  return buf;
}

bool parse_bench_artifact(const std::string& json_text, BenchArtifact& out, std::string* err) {
  json::Value root;
  if (!json::parse(json_text, root, err)) return false;
  return extract_artifact(root, out, err, "");
}

bool load_bench_artifact(const std::string& path, BenchArtifact& out, std::string* err) {
  json::Value root;
  if (!json::parse_file(path, root, err)) return false;
  return extract_artifact(root, out, err, path + ": ");
}

CompareResult compare_bench_artifacts(const BenchArtifact& base, const BenchArtifact& current,
                                      double threshold, BenchStat stat, double min_seconds) {
  const auto value_of = [stat](const BenchEntry& e) {
    return stat == BenchStat::kMin ? e.min : e.median;
  };
  std::map<std::string, const BenchEntry*> base_by_key;
  for (const BenchEntry& e : base.entries) base_by_key.emplace(e.key(), &e);

  CompareResult res;
  std::map<std::string, bool> base_matched;
  for (const auto& [k, e] : base_by_key) base_matched.emplace(k, false);

  for (const BenchEntry& cur : current.entries) {
    const auto it = base_by_key.find(cur.key());
    if (it == base_by_key.end()) {
      res.only_in_current.push_back(cur.key());
      continue;
    }
    base_matched[it->first] = true;
    CompareRow row;
    row.key = cur.key();
    row.driver = cur.driver;
    row.family = cur.family;
    row.precision = cur.precision.empty() ? "f64" : cur.precision;
    row.n = cur.n;
    row.base_seconds = value_of(*it->second);
    row.cur_seconds = value_of(cur);
    row.ratio = row.base_seconds > 0.0 ? row.cur_seconds / row.base_seconds : 1.0;
    if (row.base_seconds < min_seconds && row.cur_seconds < min_seconds)
      row.verdict = Verdict::kWithinNoise;
    else if (row.ratio > 1.0 + threshold)
      row.verdict = Verdict::kRegression;
    else if (row.ratio < 1.0 - threshold)
      row.verdict = Verdict::kImprovement;
    else
      row.verdict = Verdict::kWithinNoise;
    switch (row.verdict) {
      case Verdict::kRegression: ++res.regressions; break;
      case Verdict::kImprovement: ++res.improvements; break;
      case Verdict::kWithinNoise: ++res.within_noise; break;
    }
    res.rows.push_back(row);
  }
  for (const auto& [k, matched] : base_matched)
    if (!matched) res.only_in_base.push_back(k);
  std::sort(res.rows.begin(), res.rows.end(),
            [](const CompareRow& a, const CompareRow& b) { return a.ratio > b.ratio; });
  return res;
}

std::string CompareResult::render(double threshold) const {
  std::string out;
  appendf(out, "%-40s %12s %12s %8s  %s\n", "entry (driver|family|n)", "base(s)", "cur(s)",
          "ratio", "verdict");
  for (const CompareRow& r : rows) {
    const char* v = r.verdict == Verdict::kRegression     ? "REGRESSION"
                    : r.verdict == Verdict::kImprovement  ? "improvement"
                                                          : "ok";
    appendf(out, "%-40s %12.6f %12.6f %8.3f  %s\n", r.key.c_str(), r.base_seconds,
            r.cur_seconds, r.ratio, v);
  }
  for (const std::string& k : only_in_base)
    appendf(out, "%-40s (only in baseline, skipped)\n", k.c_str());
  for (const std::string& k : only_in_current)
    appendf(out, "%-40s (only in current, skipped)\n", k.c_str());
  appendf(out, "compared %zu entries at %.0f%% threshold: ", rows.size(), 100.0 * threshold);
  if (regressions > 0)
    appendf(out, "%d regression%s (worst ratio %.3f) -- GATE FAILED\n", regressions,
            regressions == 1 ? "" : "s", rows.empty() ? 0.0 : rows.front().ratio);
  else if (improvements > 0)
    appendf(out, "no regressions, %d improvement%s, %d within noise\n", improvements,
            improvements == 1 ? "" : "s", within_noise);
  else
    appendf(out, "all within noise\n");
  return out;
}

std::string bench_metadata(const BenchArtifact& artifact, const std::string& key) {
  for (const auto& [k, v] : artifact.metadata)
    if (k == key) return v;
  return "";
}

std::string bench_report_filename(const std::string& driver, const std::string& family,
                                  const std::string& precision, long n) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "report_%s_%s_%s_n%ld.json", driver.c_str(),
                family.c_str(), precision.empty() ? "f64" : precision.c_str(), n);
  return buf;
}

}  // namespace dnc::obs
