#include "obs/health.hpp"

#include <algorithm>
#include <cmath>

namespace dnc::obs {

void HealthProbe::arm(index_t n, const double* d, const double* e) {
  if (n <= 0 || !d) return;
  n_ = n;
  d_.assign(d, d + n);
  if (n > 1 && e)
    e_.assign(e, e + n - 1);
  else
    e_.clear();
}

HealthMetrics HealthProbe::evaluate(const double* lam, const double* v, index_t ldv,
                                    index_t nvec, int samples) const {
  HealthMetrics h;
  if (!armed() || !lam || !v || nvec <= 0 || ldv < n_) return h;
  nvec = std::min(nvec, n_);

  // ||T||_1 = max_j |e_{j-1}| + |d_j| + |e_j|; 1.0 floor guards the zero
  // matrix (whose residuals are exactly 0 anyway).
  double norm1 = 0.0;
  for (index_t j = 0; j < n_; ++j) {
    double col = std::fabs(d_[j]);
    if (j > 0) col += std::fabs(e_[j - 1]);
    if (j + 1 < n_) col += std::fabs(e_[j]);
    norm1 = std::max(norm1, col);
  }
  const double denom = norm1 > 0.0 ? norm1 : 1.0;

  const int s = std::min<index_t>(std::max(samples, 1), nvec);
  const double* prev = nullptr;
  for (int k = 0; k < s; ++k) {
    // Evenly spaced across the spectrum, first and last included.
    const index_t j = s == 1 ? 0 : k * (nvec - 1) / (s - 1);
    const double* col = v + j * ldv;
    double resid = 0.0, nrm2 = 0.0;
    for (index_t i = 0; i < n_; ++i) {
      double tv = d_[i] * col[i];
      if (i > 0) tv += e_[i - 1] * col[i - 1];
      if (i + 1 < n_) tv += e_[i] * col[i + 1];
      resid = std::max(resid, std::fabs(tv - lam[j] * col[i]));
      nrm2 += col[i] * col[i];
    }
    h.max_rel_residual = std::max(h.max_rel_residual, resid / denom);
    h.max_ortho_error = std::max(h.max_ortho_error, std::fabs(1.0 - nrm2));
    // Immediate neighbour in the full spectrum, not the previous sample:
    // adjacent eigenvectors share near-degenerate eigenvalues and are the
    // first to lose orthogonality.
    const double* nb = j + 1 < nvec ? col + ldv : prev;
    if (nb && nb != col) {
      double dot = 0.0;
      for (index_t i = 0; i < n_; ++i) dot += col[i] * nb[i];
      h.max_ortho_error = std::max(h.max_ortho_error, std::fabs(dot));
    }
    prev = col;
    ++h.sampled_columns;
  }
  return h;
}

}  // namespace dnc::obs
