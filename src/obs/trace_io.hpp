// Reads a Perfetto trace exported by obs::perfetto_trace_json back into an
// rt::Trace, so tools/dnc_trace can analyse a trace captured earlier (via
// DNC_TRACE) without re-running the solve.
//
// The export embeds two dnc-specific metadata records ("dnc_meta" with the
// kind table / memory-bound flags / worker idle, "dnc_edges" with the
// dependency edge list); slices carry the task id and annotations as args,
// and the ready_queue_depth counter track restores the queue samples.
// Traces written by other tools (or by the plain Trace::chrome_trace_json)
// still load -- kinds are then reconstructed from slice names, edges and
// scheduler extras are simply absent.
//
// Fidelity note: slice timestamps are serialized as microseconds with three
// decimals, so a round trip quantizes times to 1 ns. Derived quantities
// (critical path, makespan) are reproduced to ~n_tasks * 0.5 ns.
#pragma once

#include <string>

#include "runtime/trace.hpp"

namespace dnc::obs {

/// Parses Perfetto/chrome trace-event JSON into `out`. Returns false (and
/// sets `err` when given) on malformed JSON or a structure that contains no
/// usable slice events.
bool load_perfetto_trace(const std::string& json_text, rt::Trace& out,
                         std::string* err = nullptr);

/// Reads and parses the file at `path`.
bool load_perfetto_trace_file(const std::string& path, rt::Trace& out,
                              std::string* err = nullptr);

}  // namespace dnc::obs
