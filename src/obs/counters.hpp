// Algorithmic counters: the low-overhead half of the observability layer.
//
// Hot kernels (laed4, sturm_count, gemm, bisect_ldl) bump thread-local
// counter blocks -- no locks, no shared cache lines on the hot path; a
// mutex is taken only once per thread (registration) and on snapshot().
// Drivers capture a snapshot at solve start and diff it at solve end
// (obs::SolveScope), so concurrent unrelated work in the same process is
// the caller's problem, not the counters'.
//
// The blocks are atomics written with relaxed single-writer updates; reader
// visibility is established by the thread joins / condition-variable
// handshakes that already order "solve finished" after "kernel ran".
#pragma once

#include <array>
#include <cstdint>

namespace dnc::obs {

enum Counter : int {
  // laed4 secular solver: one bump per root, histogram over the
  // safeguarded-iteration count (0 = closed form, k <= 2).
  kLaed4Calls = 0,
  kLaed4Iterations,  ///< summed iteration count over all calls
  kLaed4Hist0,       ///< closed-form roots (k <= 2)
  kLaed4Hist1,
  kLaed4Hist2,
  kLaed4Hist3,
  kLaed4Hist4,
  kLaed4Hist5to6,
  kLaed4Hist7to9,
  kLaed4Hist10plus,
  // Sturm-count bisection (lapack/bisect.cpp).
  kSturmCalls,  ///< sturm_count invocations
  kSturmSteps,  ///< pivot recurrence steps (n per invocation)
  // LDL^T bisection of the MRRR representation tree.
  kBisectLdlCalls,
  kBisectLdlSteps,  ///< interval halvings
  // GEMM (blas/gemm.cpp).
  kGemmCalls,
  kGemmFlops,        ///< 2*m*n*k per call
  kGemmPackedBytes,  ///< bytes staged through the packing buffers
  kNumCounters,
};

inline constexpr int kLaed4HistBuckets = 8;
inline constexpr int kLaed4HistFirst = kLaed4Hist0;

/// Stable snake_case name for JSON keys and the text summary.
const char* counter_name(int c) noexcept;

using CounterArray = std::array<std::uint64_t, kNumCounters>;

/// Adds `delta` to counter `c` of the calling thread's block.
void bump(Counter c, std::uint64_t delta = 1) noexcept;

/// One secular root solved in `iterations` safeguarded iterations: bumps
/// the call/iteration totals and the matching histogram bucket.
void bump_laed4(int iterations) noexcept;

/// Sums every thread's block (including threads that have exited).
CounterArray snapshot() noexcept;

/// snapshot() minus `begin`, element-wise (saturating at 0 for safety).
CounterArray delta_since(const CounterArray& begin) noexcept;

}  // namespace dnc::obs
