// Differential observability: why is run B slower than run A?
//
// Every prior observability layer measures ONE solve (trace, SolveReport,
// metrics, roofline). When the bench gate trips or a tuning-table entry
// goes stale, the question is differential: which component of the second
// run ate the extra time. This module aligns two solves -- each given as a
// SolveReport, an rt::Trace, or both -- and decomposes the makespan delta
// into additively attributed components, the trace-based performance
// analysis loop StarNEig-style task libraries close with (arXiv 1905.04975)
// and the MRRR-for-supercomputers study uses to split eigensolver
// regressions into kernels vs. scheduling vs. numerics (arXiv 1401.4950).
//
// The decomposition rests on the busy/idle identity of a P-worker schedule,
//   makespan ~= (sum_k busy[k] + idle) / P,
// so with per-worker normalisation the delta splits exactly into per-kind
// busy-time contributions plus a scheduler-idle contribution plus a small
// unattributed residual (clock skew, outside-task time). On top of the
// additive split the diff reports *explanatory* shifts that say why a kind
// got slower: per-kind IPC / LLC-miss-rate deltas (perf hwc data), the
// per-merge deflation-ratio change (less deflation = bigger secular systems
// = more GEMM work), the GEMM GF/s change, steal-locality shifts, and a
// critical-path diff (which kinds entered or left the chain).
//
// Deltas below a noise floor (relative + absolute) yield significant=false
// and suppress attribution entirely -- diffing a solve against itself must
// report "within noise", never invent a culprit.
#pragma once

#include <string>
#include <vector>

#include "obs/report.hpp"

namespace dnc::rt {
struct Trace;
}

namespace dnc::json {
class Value;
}

namespace dnc::obs {

/// One side of a diff: a report, a trace, or both (either pointer may be
/// null, not both). `label` names the side in renderings ("a.json",
/// "baseline", ...); empty = derived from the report/trace provenance.
struct DiffSide {
  const SolveReport* report = nullptr;
  const rt::Trace* trace = nullptr;
  std::string label;
};

struct DiffOptions {
  /// Noise floor: |delta| must exceed max(noise_abs, noise_rel * makespan)
  /// before any attribution is emitted.
  double noise_rel = 0.02;
  double noise_abs = 1e-4;  ///< seconds
  /// A kind is "on" the critical path when it holds at least this share of
  /// the chain's length (the entered/left diff uses it on both sides).
  double cp_share = 0.05;
};

/// Per-task-kind comparison row. Busy seconds use self durations (nested
/// child slices excluded), so the per-kind sum equals the trace's
/// total_busy. hwc ratios are only meaningful under the perf backend
/// (has_hwc); rusage-backend counters do not form IPC.
struct KindDelta {
  std::string kind;
  double busy_a = 0.0, busy_b = 0.0;
  long tasks_a = 0, tasks_b = 0;
  bool has_hwc = false;
  double ipc_a = 0.0, ipc_b = 0.0;            ///< instructions / cycles
  double miss_rate_a = 0.0, miss_rate_b = 0.0;  ///< LLC misses / references
  double delta() const { return busy_b - busy_a; }
};

/// One additive component of the makespan delta. `component` is stable and
/// machine-matchable: "busy:<kind>", "busy" (no per-kind data),
/// "sched_idle", or "unattributed".
struct DiffComponent {
  std::string component;
  double seconds = 0.0;  ///< contribution to (makespan_b - makespan_a)
  double share = 0.0;    ///< seconds / delta (0 when not significant)
};

/// Identity + headline numbers of one side, resolved from whichever inputs
/// were present (trace metadata fills gaps when the report is absent).
struct DiffSideSummary {
  std::string label;
  std::string driver, precision, git_commit, timestamp;
  long n = 0;
  int workers = 1;
  double makespan = 0.0;   ///< trace makespan, else report wall seconds
  double busy = 0.0;       ///< summed per-kind busy (0 = unknown)
  double idle = 0.0;       ///< summed worker idle (0 = unknown/none)
  bool has_sched = false;
  long steals = 0, steals_cross_socket = 0;
  bool has_deflation = false;
  double deflated_fraction = 0.0;
  double gemm_gflops = 0.0;  ///< 0 = unknown
  bool has_cp = false;
  double cp_length = 0.0;
};

struct SolveDiff {
  DiffSideSummary a, b;
  double delta = 0.0;        ///< b.makespan - a.makespan
  double noise_floor = 0.0;  ///< threshold |delta| had to clear
  bool significant = false;  ///< false = within noise, no attribution
  bool comparable = true;    ///< driver/n/precision agree
  std::vector<std::string> warnings;

  /// Additive decomposition of `delta`, sorted by |seconds| descending.
  /// Empty when the inputs carry no busy/idle data at all.
  std::vector<DiffComponent> components;
  /// Share of `delta` carried by the summed per-kind busy contributions --
  /// "the majority of the delta is task busy time" reads off this.
  double busy_share = 0.0;
  /// Largest-|contribution| component name ("" when not significant).
  std::string top_component;

  /// Per-kind rows (kinds present on either side), sorted by |delta| desc.
  std::vector<KindDelta> kinds;

  /// Kinds that entered / left the critical path (share >= cp_share on one
  /// side only). Requires traces on both sides.
  std::vector<std::string> cp_entered, cp_left;

  /// Explanatory (non-additive) observations: deflation-ratio change, GEMM
  /// GF/s change, steal-locality shift, IPC collapse of a leading kind.
  std::vector<std::string> notes;

  /// Full human-readable diff: side header, component table, per-kind
  /// table, critical-path diff, notes.
  std::string render() const;
  /// The bench_compare one-paragraph attribution: headline delta, top
  /// component with share, leading kind, and the strongest note.
  std::string one_paragraph() const;
  /// dnc-diff-v1 JSON (machine-readable twin of render()).
  std::string to_json() const;
};

/// Aligns the two sides and computes the decomposition. Works with any
/// combination of report/trace per side; the fewer inputs, the fewer
/// sections are populated (never an error -- missing data only shrinks the
/// diff, mismatched identities only add warnings).
SolveDiff diff_solves(const DiffSide& a, const DiffSide& b,
                      const DiffOptions& opt = DiffOptions{});

/// Parses a SolveReport back from its to_json() text (the DNC_REPORT
/// artifact, a bench side-written per-entry report, a history line's
/// source). Tolerant of missing members -- absent blocks leave defaults --
/// so older artifacts load. Returns false only on malformed JSON or when
/// the object carries none of the report's identifying members.
bool parse_solve_report(const std::string& json_text, SolveReport& out,
                        std::string* err = nullptr);
/// Same, from an already-parsed DOM node.
bool parse_solve_report_value(const json::Value& v, SolveReport& out,
                              std::string* err = nullptr);
/// Reads and parses the file at `path`.
bool load_solve_report_file(const std::string& path, SolveReport& out,
                            std::string* err = nullptr);

}  // namespace dnc::obs
