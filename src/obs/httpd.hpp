// Live introspection endpoint: a dependency-free HTTP/1.1 server on its
// own thread that lets an operator look inside a *running* solver process.
// Every surface built so far (SolveReport, Perfetto traces, the metrics
// registry, the flight recorder) is post-mortem and file-based; this server
// turns them into live GET endpoints without stopping writers:
//
//   /metrics            Prometheus text exposition of a fresh scrape
//   /varz               dnc-metrics-v1 JSON snapshot of the same scrape
//   /healthz            JSON liveness: version/git commit, hostname, pid,
//                       uptime, last-solve summary (driver, n, seconds,
//                       health residuals), flight-recorder dump count
//   /flight             current flight-recorder ring as JSONL (newest last)
//   /trace?next=1       arm a one-shot Perfetto capture of the next solve;
//                       a follow-up GET /trace returns (and clears) it
//   /profile?seconds=N  on-demand CPU profile via the sampling profiler
//                       (folded-stack text; N clamped to [0.05, 120],
//                       optional &hz=H)
//
// Knob:
//   DNC_HTTP   unset/""/0/off = disabled (enabled() is one relaxed load +
//              branch, nothing binds); "8080" or ":8080" = 127.0.0.1:8080;
//              "addr:port" = explicit bind address; port 0 = ephemeral
//              (bound_port() / the startup log line report the real one).
//
// The server binds lazily: the first solve's record_solve_telemetry() (or
// an explicit ensure_started()) starts the thread. Serial request handling
// -- an introspection endpoint for one process needs no concurrency, and it
// keeps every handler trivially race-free against its own kind.
#pragma once

#include <cstdint>
#include <string>

namespace dnc::obs {
struct SolveReport;
}
namespace dnc::rt {
struct Trace;
}

namespace dnc::obs::httpd {

/// True when DNC_HTTP configures a server (the env is read once and
/// cached). Does NOT imply the server is running yet -- see ensure_started.
bool enabled() noexcept;
/// Re-reads DNC_HTTP (tests setenv mid-process). Does not stop a server
/// that is already running; combine with stop_for_tests().
void refresh_from_env() noexcept;

/// Starts the server thread if DNC_HTTP is set and it is not yet running.
/// Returns true when a server is (now) listening. Safe to call from every
/// solve epilogue: after the first bind it is one atomic load.
bool ensure_started();

/// Explicit start on `addr`:`port` regardless of DNC_HTTP (tests; port 0 =
/// ephemeral). Fails (false) when already running or the bind fails.
bool start(const std::string& addr, std::uint16_t port);

/// Port actually bound (resolves ephemeral 0), 0 when not running.
std::uint16_t bound_port();
/// Address actually bound, "" when not running.
std::string bound_address();
/// True while the server thread is accepting connections.
bool running() noexcept;

/// Requests served so far (test/telemetry hook).
std::uint64_t requests_served();

/// True when /trace?next=1 armed a capture that has not been fulfilled;
/// record_solve_telemetry checks this to decide whether to build the
/// Perfetto JSON for an otherwise-untraced solve.
bool trace_capture_armed() noexcept;
/// Offers a finished solve to the one-shot trace capture: when armed, the
/// Perfetto JSON is rendered and stored for the next GET /trace. `trace`
/// may be null (no scheduler trace) -- the arm stays set for a later solve.
void offer_captured_trace(const SolveReport& report, const rt::Trace* trace);

/// Last-solve summary for /healthz; also updated by record_solve_telemetry.
void note_solve(const SolveReport& report);

/// Stops the server thread and joins it; idempotent. (Production processes
/// just exit -- the socket dies with them; tests cycle servers.)
void stop_for_tests();

// --- minimal HTTP client (tools + tests) -----------------------------------

/// Blocking HTTP/1.1 GET of http://host:port/target. Returns true and
/// fills `status` / `body` on any well-formed response (including 4xx/5xx);
/// false on connect/parse failure ('err' gets the reason). No TLS, no
/// redirects, no chunked encoding -- exactly what this server emits.
bool http_get(const std::string& host, std::uint16_t port, const std::string& target,
              int& status, std::string& body, std::string* err = nullptr);

/// Parses "http://host:port/path" (or "host:port/path") into pieces.
/// Defaults: host 127.0.0.1 when empty, path "/" when absent. Returns
/// false on a missing/invalid port.
bool parse_url(const std::string& url, std::string& host, std::uint16_t& port,
               std::string& path);

}  // namespace dnc::obs::httpd
