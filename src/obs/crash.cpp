#include "obs/crash.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/env.hpp"
#include "common/version.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace dnc::obs::crash {
namespace {

constexpr int kSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE};

// The handler can only touch pre-expanded, fixed-size storage: no
// std::string member may be reallocated while crashing.
char g_path[512] = {0};
char g_path_jsonl[512] = {0};
std::atomic<int> g_crashing{0};
std::atomic<bool> g_installed{false};
// -1 uninitialised, 0 disabled, 1 enabled.
std::atomic<int> g_enabled{-1};
std::mutex g_mu;
struct sigaction g_old[sizeof kSignals / sizeof kSignals[0]];

bool parse_env(std::string& path) {
  const char* e = env::raw("DNC_CRASH_DUMP");
  if (!e || !*e || !std::strcmp(e, "0") || !std::strcmp(e, "off")) return false;
  path = expand_path_placeholders((!std::strcmp(e, "1") || !std::strcmp(e, "on"))
                                      ? "dnc_crash.%p.txt"
                                      : e,
                                  0);
  return !path.empty() && path.size() < sizeof g_path - 8;
}

bool init_enabled() {
  std::lock_guard<std::mutex> lk(g_mu);
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur >= 0) return cur != 0;
  std::string path;
  bool on = parse_env(path);
  if (on) {
    std::snprintf(g_path, sizeof g_path, "%s", path.c_str());
    std::snprintf(g_path_jsonl, sizeof g_path_jsonl, "%s.jsonl", path.c_str());
  }
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case 0: return "test";
    default: return "signal";
  }
}

void write_file(const char* path, const char* data, std::size_t len) {
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  while (len > 0) {
    ssize_t w = ::write(fd, data, len);
    if (w <= 0) break;
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  ::close(fd);
}

void restore_and_reraise(int sig) {
  signal(sig, SIG_DFL);
  raise(sig);
}

void crash_handler(int sig, siginfo_t*, void*) {
  // Reentry (a fault inside the dump path) re-raises immediately.
  if (g_crashing.exchange(1, std::memory_order_acq_rel) != 0) {
    restore_and_reraise(sig);
    return;
  }
  const std::string text = dump_text(sig);
  write_file(g_path, text.data(), text.size());
  const std::string ring = flight::ring_jsonl(/*best_effort=*/true);
  if (!ring.empty()) write_file(g_path_jsonl, ring.data(), ring.size());
  restore_and_reraise(sig);
}

}  // namespace

bool enabled() noexcept {
  int s = g_enabled.load(std::memory_order_relaxed);
  return s < 0 ? init_enabled() : s != 0;
}

void refresh_from_env() noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  std::string path;
  bool on = parse_env(path);
  if (on) {
    std::snprintf(g_path, sizeof g_path, "%s", path.c_str());
    std::snprintf(g_path_jsonl, sizeof g_path_jsonl, "%s.jsonl", path.c_str());
  } else {
    g_path[0] = g_path_jsonl[0] = '\0';
  }
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool ensure_installed() {
  if (!enabled()) return false;
  if (g_installed.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lk(g_mu);
  if (g_installed.load(std::memory_order_relaxed)) return true;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = crash_handler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  std::size_t i = 0;
  for (int sig : kSignals) sigaction(sig, &sa, &g_old[i++]);
  g_installed.store(true, std::memory_order_release);
  return true;
}

std::string dump_path() {
  if (!enabled()) return "";
  std::lock_guard<std::mutex> lk(g_mu);
  return g_path;
}

std::string dump_text(int sig) {
  std::string out = "# dnc crash dump\n";
  out += "# signal: ";
  out += signal_name(sig);
  out += "\n# pid: " + std::to_string(static_cast<long>(::getpid()));
  out += "\n# git_commit: ";
  out += version::kGitCommit;
  out += "\n# hostname: " + current_hostname();
  out += "\n# flight_ring: " + std::to_string(flight::ring_size());
  out += "\n# flight_dumps: " + std::to_string(flight::dump_count());
  out += "\n";
  if (metrics::enabled()) out += metrics::prometheus_text(metrics::scrape());
  return out;
}

}  // namespace dnc::obs::crash
