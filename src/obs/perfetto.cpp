#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "obs/report.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs {
namespace {

// Trace timestamps are seconds on a shared process epoch; trace-event ts is
// microseconds.
inline double us(double seconds) { return seconds * 1e6; }

}  // namespace

std::string perfetto_trace_json(const rt::Trace& trace, const SolveReport* report) {
  std::string out = "[\n";
  bool first = true;
  const auto emit = [&](const char* obj) {
    if (!first) out += ",\n";
    out += obj;
    first = false;
  };
  char buf[512];

  // --- metadata: label the process and one thread row per worker. Shared
  // with Trace::chrome_trace_json so every export call (including the
  // sequence-suffixed trace.2.json files) carries exactly one
  // self-contained process-metadata prologue. ---
  emit(rt::chrome_metadata_json(trace.workers).c_str());

  // --- dnc-specific metadata (ignored by Perfetto, consumed by
  // obs::load_perfetto_trace): the kind table with its memory-bound flags,
  // the per-worker idle seconds, and -- as a separate record because it can
  // be large -- the dependency edge list. Together with the slices below
  // this makes the export a lossless round trip of rt::Trace. ---
  {
    std::string meta = "{\"name\":\"dnc_meta\",\"ph\":\"M\",\"pid\":1,\"args\":{";
    std::snprintf(buf, sizeof buf, "\"workers\":%d,\"kinds\":[", trace.workers);
    meta += buf;
    for (std::size_t k = 0; k < trace.kind_names.size(); ++k) {
      const bool mb =
          k < trace.kind_memory_bound.size() && trace.kind_memory_bound[k] != 0;
      std::snprintf(buf, sizeof buf, "%s{\"name\":\"%s\",\"memory_bound\":%s}",
                    k ? "," : "", rt::json_escape(trace.kind_names[k]).c_str(),
                    mb ? "true" : "false");
      meta += buf;
    }
    meta += "],\"worker_idle\":[";
    for (std::size_t w = 0; w < trace.worker_idle.size(); ++w) {
      std::snprintf(buf, sizeof buf, "%s%.9f", w ? "," : "", trace.worker_idle[w]);
      meta += buf;
    }
    meta += "]";
    if (!trace.sched_policy.empty()) {
      std::snprintf(buf, sizeof buf, ",\"sched_policy\":\"%s\",\"queue_depth_peak\":%d",
                    rt::json_escape(trace.sched_policy).c_str(), trace.queue_depth_peak);
      meta += buf;
    }
    if (!trace.sched_counters.empty()) {
      meta += ",\"sched_counters\":[";
      for (std::size_t w = 0; w < trace.sched_counters.size(); ++w) {
        const rt::WorkerSchedCounters& c = trace.sched_counters[w];
        std::snprintf(buf, sizeof buf,
                      "%s{\"executed\":%ld,\"local_pops\":%ld,\"steals\":%ld,"
                      "\"steal_attempts\":%ld,\"failed_steals\":%ld,\"placed\":%ld,"
                      "\"steals_same_l3\":%ld,\"steals_same_socket\":%ld,"
                      "\"steals_cross_socket\":%ld}",
                      w ? "," : "", c.executed, c.local_pops, c.steals, c.steal_attempts,
                      c.failed_steals, c.placed, c.steals_same_l3, c.steals_same_socket,
                      c.steals_cross_socket);
        meta += buf;
      }
      meta += "]";
    }
    if (!trace.hwc_backend.empty()) {
      std::snprintf(buf, sizeof buf, ",\"hwc_backend\":\"%s\",\"hwc_slots\":[",
                    rt::json_escape(trace.hwc_backend).c_str());
      meta += buf;
      for (std::size_t s = 0; s < trace.hwc_slot_names.size(); ++s) {
        std::snprintf(buf, sizeof buf, "%s\"%s\"", s ? "," : "",
                      rt::json_escape(trace.hwc_slot_names[s]).c_str());
        meta += buf;
      }
      meta += "]";
    }
    // Named solve-wide scalars (GEMM FLOP / packed-byte totals, ...): taken
    // from the trace when it already carries them (a reloaded trace does),
    // topped up from the report's counters on a live export. These are what
    // lets `dnc_trace --roofline` work on a bare trace file.
    {
      std::vector<std::pair<std::string, double>> mc = trace.meta_counters;
      const auto have = [&](const char* name) {
        for (const auto& [k, v] : mc)
          if (k == name) return true;
        return false;
      };
      if (report) {
        if (!have("gemm_flops"))
          mc.emplace_back("gemm_flops", static_cast<double>(report->counter(kGemmFlops)));
        if (!have("gemm_packed_bytes"))
          mc.emplace_back("gemm_packed_bytes",
                          static_cast<double>(report->counter(kGemmPackedBytes)));
        // Working precision of the solve, so a reloaded trace can scale the
        // roofline peak correctly (fp32 kernels peak at 2x the fp64 rate).
        if (!have("precision_bits"))
          mc.emplace_back("precision_bits", static_cast<double>(report->precision_bits()));
        // Problem size, so dnc_diff can align bare trace files by identity.
        if (!have("n") && report->n > 0)
          mc.emplace_back("n", static_cast<double>(report->n));
      }
      if (!mc.empty()) {
        meta += ",\"meta_counters\":{";
        for (std::size_t i = 0; i < mc.size(); ++i) {
          std::snprintf(buf, sizeof buf, "%s\"%s\":%.9g", i ? "," : "",
                        rt::json_escape(mc[i].first).c_str(), mc[i].second);
          meta += buf;
        }
        meta += "}";
      }
    }
    // String metadata, same top-up rule: the report's hostname/timestamp
    // stamps keep traces from different machines and runs distinguishable.
    {
      std::vector<std::pair<std::string, std::string>> ms = trace.meta_strings;
      const auto have = [&](const char* name) {
        for (const auto& [k, v] : ms)
          if (k == name) return true;
        return false;
      };
      if (report) {
        if (!have("hostname") && !report->hostname.empty())
          ms.emplace_back("hostname", report->hostname);
        if (!have("timestamp") && !report->timestamp.empty())
          ms.emplace_back("timestamp", report->timestamp);
        // Solve identity, so dnc_diff can label and align bare trace files.
        if (!have("driver") && !report->driver.empty())
          ms.emplace_back("driver", report->driver);
        if (!have("git_commit") && !report->git_commit.empty())
          ms.emplace_back("git_commit", report->git_commit);
      }
      if (!ms.empty()) {
        meta += ",\"meta_strings\":{";
        for (std::size_t i = 0; i < ms.size(); ++i) {
          std::snprintf(buf, sizeof buf, "%s\"%s\":\"%s\"", i ? "," : "",
                        rt::json_escape(ms[i].first).c_str(),
                        rt::json_escape(ms[i].second).c_str());
          meta += buf;
        }
        meta += "}";
      }
    }
    meta += "}}";
    emit(meta.c_str());
  }
  {
    std::string meta = "{\"name\":\"dnc_edges\",\"ph\":\"M\",\"pid\":1,"
                       "\"args\":{\"edges\":[";
    for (std::size_t i = 0; i < trace.edges.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s[%llu,%llu]", i ? "," : "",
                    static_cast<unsigned long long>(trace.edges[i].first),
                    static_cast<unsigned long long>(trace.edges[i].second));
      meta += buf;
    }
    meta += "]}}";
    emit(meta.c_str());
  }

  // --- slices: one complete event per executed task, with args ---
  std::unordered_map<std::uint64_t, const rt::TraceEvent*> by_id;
  by_id.reserve(trace.events.size());
  for (const auto& e : trace.events) {
    if (e.worker < 0) continue;  // never executed
    by_id.emplace(e.task_id, &e);
    const std::string name =
        (e.kind >= 0 && e.kind < static_cast<int>(trace.kind_names.size()))
            ? rt::json_escape(trace.kind_names[e.kind])
            : std::string("task");
    std::string args;
    char a[96];
    std::snprintf(a, sizeof a, "\"task\":%llu", static_cast<unsigned long long>(e.task_id));
    args += a;
    if (e.t_ready > 0.0) {
      std::snprintf(a, sizeof a, ",\"ready_wait_us\":%.3f",
                    us(std::max(e.t_start - e.t_ready, 0.0)));
      args += a;
    }
    if (e.level >= 0) {
      std::snprintf(a, sizeof a, ",\"level\":%d", e.level);
      args += a;
    }
    if (e.size >= 0) {
      std::snprintf(a, sizeof a, ",\"size\":%ld", e.size);
      args += a;
    }
    if (e.panel >= 0) {
      std::snprintf(a, sizeof a, ",\"panel\":%ld", e.panel);
      args += a;
    }
    if (e.priority != 0) {
      std::snprintf(a, sizeof a, ",\"prio\":%d", e.priority);
      args += a;
    }
    // Nested subtasks: parent id + the parent-side helped-time so a
    // reloaded trace reconstructs self-time accounting losslessly.
    if (e.is_child()) {
      std::snprintf(a, sizeof a, ",\"parent\":%lld", e.parent);
      args += a;
    }
    if (e.nested > 0.0) {
      std::snprintf(a, sizeof a, ",\"nested_us\":%.3f", us(e.nested));
      args += a;
    }
    if (!trace.hwc_backend.empty()) {
      char h[128];
      std::snprintf(h, sizeof h, ",\"hwc\":[%llu,%llu,%llu,%llu]",
                    static_cast<unsigned long long>(e.hwc[0]),
                    static_cast<unsigned long long>(e.hwc[1]),
                    static_cast<unsigned long long>(e.hwc[2]),
                    static_cast<unsigned long long>(e.hwc[3]));
      args += h;
    }
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}}",
                  name.c_str(), e.worker, us(e.t_start), us(e.t_end - e.t_start), args.c_str());
    emit(buf);
  }

  // --- flow events: one arrow per dependency edge between executed tasks.
  // The start binds to the predecessor's slice at its end; the finish binds
  // to the successor's slice at its start (bp:"e" = enclosing slice). ---
  std::uint64_t flow_id = 0;
  for (const auto& [pred, succ] : trace.edges) {
    const auto pi = by_id.find(pred);
    const auto si = by_id.find(succ);
    if (pi == by_id.end() || si == by_id.end()) continue;
    const rt::TraceEvent* p = pi->second;
    const rt::TraceEvent* s = si->second;
    ++flow_id;
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":%llu,"
                  "\"pid\":1,\"tid\":%d,\"ts\":%.3f}",
                  static_cast<unsigned long long>(flow_id), p->worker, us(p->t_end));
    emit(buf);
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%llu,"
                  "\"pid\":1,\"tid\":%d,\"ts\":%.3f}",
                  static_cast<unsigned long long>(flow_id), s->worker, us(s->t_start));
    emit(buf);
  }

  // --- counter track: sampled ready-queue depth ---
  for (const auto& q : trace.queue_samples) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"ready_queue_depth\",\"ph\":\"C\",\"pid\":1,"
                  "\"ts\":%.3f,\"args\":{\"depth\":%d}}",
                  us(q.t), q.depth);
    emit(buf);
  }

  // --- counter track: cumulative successful steals (steal policy only) ---
  for (const auto& s : trace.steal_samples) {
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"steals_cumulative\",\"ph\":\"C\",\"pid\":1,"
                  "\"ts\":%.3f,\"args\":{\"steals\":%d}}",
                  us(s.t), s.depth);
    emit(buf);
  }

  // --- counter tracks: cumulative hardware-counter totals, one track per
  // slot, stepped at each task's end (hwc runs only) ---
  if (!trace.hwc_backend.empty()) {
    std::vector<const rt::TraceEvent*> done;
    for (const auto& e : trace.events)
      if (e.worker >= 0) done.push_back(&e);
    std::sort(done.begin(), done.end(),
              [](const rt::TraceEvent* a, const rt::TraceEvent* b) { return a->t_end < b->t_end; });
    for (int s = 0; s < rt::kHwcSlots; ++s) {
      const std::string slot = s < static_cast<int>(trace.hwc_slot_names.size())
                                   ? trace.hwc_slot_names[s]
                                   : "slot" + std::to_string(s);
      std::uint64_t cum = 0;
      for (const rt::TraceEvent* e : done) {
        cum += e->hwc[s];
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"hwc_%s_cumulative\",\"ph\":\"C\",\"pid\":1,"
                      "\"ts\":%.3f,\"args\":{\"%s\":%llu}}",
                      rt::json_escape(slot).c_str(), us(e->t_end),
                      rt::json_escape(slot).c_str(), static_cast<unsigned long long>(cum));
        emit(buf);
      }
    }
  }

  // --- counter track: cumulative deflated columns, stepped at each merge's
  // deflation finish (merges without a timestamp are skipped) ---
  if (report) {
    std::vector<const MergeRecord*> timed;
    for (const auto& m : report->merges)
      if (m.t_end > 0.0) timed.push_back(&m);
    std::sort(timed.begin(), timed.end(),
              [](const MergeRecord* a, const MergeRecord* b) { return a->t_end < b->t_end; });
    long cum = 0;
    for (const MergeRecord* m : timed) {
      cum += m->m - m->k;
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"deflated_cumulative\",\"ph\":\"C\",\"pid\":1,"
                    "\"ts\":%.3f,\"args\":{\"columns\":%ld}}",
                    us(m->t_end), cum);
      emit(buf);
    }
  }

  out += "\n]\n";
  return out;
}

}  // namespace dnc::obs
