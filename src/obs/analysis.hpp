// Trace analytics: the answer layer on top of the raw capture in rt::Trace.
//
// PR 2 made every solve record per-task durations, DAG edges, ready times
// and queue depth; this header turns that into the quantities a performance
// post-mortem actually asks for (the same trace-driven analysis StarNEig
// and the task-based QR/QZ solvers use to defend scalability claims):
//
//   * critical_path     -- the longest weighted task chain (T-infinity),
//                          as an ordered chain plus per-kind attribution:
//                          "which kernel do I have to make faster before
//                          more cores can help";
//   * parallelism_profile -- running / ready task counts over time, i.e.
//                          how much concurrency the DAG actually exposed
//                          at every instant;
//   * span_law          -- T1, T-inf, average parallelism, and the
//                          work/span bounds on P-worker makespan (Brent);
//   * replay_trace      -- priority-aware list-scheduling replay on P
//                          virtual workers, equivalent to
//                          rt::simulate_schedule but driven by the Trace
//                          alone, so it also works on traces loaded from
//                          disk (tools/dnc_trace).
//
// All quantities use the same durations as rt::simulate_schedule
// (max(0, t_end - t_start), never-executed events contribute zero work), so
// critical_path().length agrees with SimulationResult::critical_path to
// rounding and replay_trace matches simulate_schedule exactly on the same
// DAG and machine model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/simulator.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs {

struct CriticalPath {
  /// T-infinity: summed duration of the heaviest dependency chain.
  double length = 0.0;
  /// Total work T1 of the trace, for the span share (length / total_work).
  double total_work = 0.0;
  /// The chain itself, in execution order (first task first); indices into
  /// Trace::events.
  std::vector<std::size_t> chain;
  /// Time attribution of the chain per kind, index-aligned with
  /// Trace::kind_names (unknown kinds are dropped).
  std::vector<double> time_by_kind;

  /// Human-readable rendering: per-kind attribution table plus the chain
  /// (collapsing runs of equal-kind tasks), `max_rows` chain rows.
  std::string render(const rt::Trace& trace, int max_rows = 30) const;
};

/// Longest weighted path over Trace::events / Trace::edges. Edges whose
/// endpoints are not in the trace are ignored; a cyclic edge set (possible
/// only for hand-built or corrupted traces) truncates at the cycle.
CriticalPath critical_path(const rt::Trace& trace);

/// One step of the concurrency step-function; valid from t until the next
/// sample's t.
struct ProfileSample {
  double t = 0.0;   ///< trace-clock time of the change
  int running = 0;  ///< tasks executing at t
  int ready = 0;    ///< tasks ready (dependencies met) but not yet started
};

struct ParallelismProfile {
  std::vector<ProfileSample> samples;
  double t0 = 0.0;               ///< first event time
  double t1 = 0.0;               ///< last event time
  int max_running = 0;
  int max_ready = 0;
  /// Time-integral of the running count == Trace::total_busy().
  double running_integral = 0.0;
  /// running_integral / (t1 - t0): average exposed concurrency.
  double avg_running = 0.0;

  /// ASCII rendering: `width` time columns, bar height = time-averaged
  /// running count of the column (capped at `height` rows), '-' marks the
  /// ready backlog where it exceeds the running count.
  std::string ascii(int width = 100, int height = 16) const;
  std::string to_json() const;
};

/// Builds the profile from task start/end events plus t_ready (events with
/// t_ready == 0, i.e. unknown, contribute to `running` only).
ParallelismProfile parallelism_profile(const rt::Trace& trace);

/// Work/span law summary of a trace.
struct SpanLaw {
  double t1 = 0.0;           ///< total work
  double t_inf = 0.0;        ///< critical path
  double parallelism = 0.0;  ///< t1 / t_inf: speedup ceiling
  /// Greedy-scheduler bounds on the P-worker makespan: any list schedule
  /// lands in [lower, upper] (ignoring bandwidth effects).
  double lower_bound(int workers) const;  ///< max(t1/P, t_inf)
  double upper_bound(int workers) const;  ///< t1/P + t_inf
  double predicted_speedup(int workers) const;  ///< t1 / lower_bound(P)
};

SpanLaw span_law(const rt::Trace& trace);

/// Replays the traced DAG on `workers` virtual cores under priority-aware
/// list scheduling (rt::SimPolicy; priorities from TraceEvent::priority)
/// with the simulator's bandwidth-sharing model (memory-bound kinds from
/// Trace::kind_memory_bound). Identical policy and arithmetic to
/// rt::simulate_schedule -- the cross-check tests assert equality -- but
/// requiring only the Trace, so what-if sweeps work on loaded traces,
/// including what-if-the-scheduler-ignored-priorities (SimPolicy::Fifo).
rt::SimulationResult replay_trace(const rt::Trace& trace, int workers,
                                  const rt::MachineModel& model = rt::MachineModel{},
                                  rt::SimPolicy policy = rt::SimPolicy::Priority);

}  // namespace dnc::obs
