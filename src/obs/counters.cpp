#include "obs/counters.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace dnc::obs {
namespace {

struct Block {
  std::atomic<std::uint64_t> v[kNumCounters] = {};
};

// The registry owns a shared_ptr to every block ever created, so counters
// bumped by runtime workers survive the workers' exit and are still summed
// by a later snapshot() from the master thread.
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<std::shared_ptr<Block>>& registry() {
  static std::vector<std::shared_ptr<Block>> blocks;
  return blocks;
}

Block* tls_block() {
  thread_local std::shared_ptr<Block> block = [] {
    auto b = std::make_shared<Block>();
    std::lock_guard<std::mutex> lk(registry_mu());
    registry().push_back(b);
    return b;
  }();
  return block.get();
}

// Single-writer relaxed update: cheaper than fetch_add and exactly as
// correct, since only the owning thread writes its block.
inline void add(Block* b, int c, std::uint64_t delta) noexcept {
  b->v[c].store(b->v[c].load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

}  // namespace

const char* counter_name(int c) noexcept {
  switch (c) {
    case kLaed4Calls: return "laed4_calls";
    case kLaed4Iterations: return "laed4_iterations";
    case kLaed4Hist0: return "laed4_hist_0";
    case kLaed4Hist1: return "laed4_hist_1";
    case kLaed4Hist2: return "laed4_hist_2";
    case kLaed4Hist3: return "laed4_hist_3";
    case kLaed4Hist4: return "laed4_hist_4";
    case kLaed4Hist5to6: return "laed4_hist_5_6";
    case kLaed4Hist7to9: return "laed4_hist_7_9";
    case kLaed4Hist10plus: return "laed4_hist_10_plus";
    case kSturmCalls: return "sturm_calls";
    case kSturmSteps: return "sturm_steps";
    case kBisectLdlCalls: return "bisect_ldl_calls";
    case kBisectLdlSteps: return "bisect_ldl_steps";
    case kGemmCalls: return "gemm_calls";
    case kGemmFlops: return "gemm_flops";
    case kGemmPackedBytes: return "gemm_packed_bytes";
  }
  return "unknown";
}

void bump(Counter c, std::uint64_t delta) noexcept { add(tls_block(), c, delta); }

void bump_laed4(int iterations) noexcept {
  Block* b = tls_block();
  add(b, kLaed4Calls, 1);
  add(b, kLaed4Iterations, static_cast<std::uint64_t>(iterations < 0 ? 0 : iterations));
  int bucket;
  if (iterations <= 0)
    bucket = 0;
  else if (iterations <= 4)
    bucket = iterations;
  else if (iterations <= 6)
    bucket = 5;
  else if (iterations <= 9)
    bucket = 6;
  else
    bucket = 7;
  add(b, kLaed4HistFirst + bucket, 1);
}

CounterArray snapshot() noexcept {
  CounterArray out{};
  std::lock_guard<std::mutex> lk(registry_mu());
  for (const auto& b : registry())
    for (int c = 0; c < kNumCounters; ++c)
      out[c] += b->v[c].load(std::memory_order_relaxed);
  return out;
}

CounterArray delta_since(const CounterArray& begin) noexcept {
  CounterArray now = snapshot();
  for (int c = 0; c < kNumCounters; ++c) now[c] = now[c] >= begin[c] ? now[c] - begin[c] : 0;
  return now;
}

}  // namespace dnc::obs
