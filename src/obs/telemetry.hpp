// The one call a driver epilogue makes to feed the always-on telemetry:
// record_solve_telemetry() fans a finished SolveReport out to the metrics
// registry (per-solve counters and histograms keyed by driver / precision /
// size class) and the flight recorder (ring + anomaly dump). Everything is
// behind the DNC_METRICS / DNC_FLIGHT gates; with both unset the calls
// reduce to two relaxed loads.
#pragma once

#include "obs/report.hpp"

namespace dnc::rt {
struct Trace;
}

namespace dnc::obs {

/// True when any consumer wants per-solve data: metrics, flight recorder,
/// the DNC_HTTP introspection server (its /healthz and one-shot /trace
/// capture feed off solve epilogues) or the DNC_CRASH_DUMP handlers (which
/// install lazily from the first solve). Drivers use this to
/// decide whether to arm the HealthProbe and to substitute a local
/// SolveStats when the caller passed none (the report must exist for the
/// telemetry to have something to record).
bool solve_telemetry_wanted() noexcept;

/// Coarse problem-size bucket used as a metric label, so latency
/// histograms don't mix n=64 leaves with n=16384 production solves:
/// xs < 256 <= s < 1024 <= m < 4096 <= l < 16384 <= xl.
const char* solve_size_class(long n) noexcept;

/// Records the solve into the metrics registry (solves_total, latency /
/// deflation / GEMM-GF/s / health histograms, scheduler-derived counters)
/// and hands it to the flight recorder, which may write an anomaly dump.
/// `trace` (optional) is only used for the flight recorder's Perfetto dump.
void record_solve_telemetry(const SolveReport& report, const rt::Trace* trace);

}  // namespace dnc::obs
