#include "obs/report.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include "common/env.hpp"
#include "common/cpu_features.hpp"
#include "common/version.hpp"
#include "obs/perfetto.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int need = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (need >= 0 && static_cast<std::size_t>(need) < sizeof buf) {
    out += buf;
  } else if (need > 0) {  // blocks larger than the stack buffer (e.g. the
    std::string big(static_cast<std::size_t>(need) + 1, '\0');  // scheduler one)
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<std::size_t>(need));
    out += big;
  }
  va_end(ap2);
}

unsigned long long ull(std::uint64_t v) { return static_cast<unsigned long long>(v); }

}  // namespace

std::uint64_t SolveReport::laed4_hist_total() const {
  std::uint64_t s = 0;
  for (int b = 0; b < kLaed4HistBuckets; ++b) s += counters[kLaed4HistFirst + b];
  return s;
}

long SolveReport::merged_columns_total() const {
  long s = 0;
  for (const auto& m : merges) s += m.m;
  return s;
}

long SolveReport::deflated_total() const {
  long s = 0;
  for (const auto& m : merges) s += m.m - m.k;
  return s;
}

long SolveReport::nondeflated_total() const {
  long s = 0;
  for (const auto& m : merges) s += m.k;
  return s;
}

std::string SolveReport::to_json() const {
  std::string out = "{\n";
  appendf(out, "  \"driver\": \"%s\",\n", rt::json_escape(driver).c_str());
  appendf(out, "  \"n\": %ld,\n", n);
  appendf(out, "  \"threads\": %d,\n", threads);
  appendf(out, "  \"seconds\": %.9f,\n", seconds);
  appendf(out, "  \"simd_isa\": \"%s\",\n", rt::json_escape(simd_isa).c_str());
  appendf(out, "  \"precision\": \"%s\",\n", rt::json_escape(precision).c_str());
  appendf(out, "  \"git_commit\": \"%s\",\n", rt::json_escape(git_commit).c_str());
  appendf(out, "  \"build_type\": \"%s\",\n", rt::json_escape(build_type).c_str());
  appendf(out, "  \"hostname\": \"%s\",\n", rt::json_escape(hostname).c_str());
  appendf(out, "  \"timestamp\": \"%s\",\n", rt::json_escape(timestamp).c_str());
  out += "  \"counters\": {";
  for (int c = 0; c < kNumCounters; ++c) {
    appendf(out, "%s\n    \"%s\": %llu", c ? "," : "", counter_name(c), ull(counters[c]));
  }
  out += "\n  },\n";
  appendf(out,
          "  \"deflation\": {\n"
          "    \"merges\": %zu,\n"
          "    \"merged_columns\": %ld,\n"
          "    \"nondeflated\": %ld,\n"
          "    \"deflated\": %ld,\n"
          "    \"deflated_fraction\": %.6f\n"
          "  },\n",
          merges.size(), merged_columns_total(), nondeflated_total(), deflated_total(),
          merged_columns_total() > 0
              ? static_cast<double>(deflated_total()) / merged_columns_total()
              : 0.0);
  out += "  \"merges\": [";
  for (std::size_t i = 0; i < merges.size(); ++i) {
    const MergeRecord& m = merges[i];
    appendf(out,
            "%s\n    {\"level\": %d, \"m\": %ld, \"n1\": %ld, \"k\": %ld, "
            "\"ctot\": [%ld, %ld, %ld, %ld], \"t_end\": %.9f}",
            i ? "," : "", m.level, m.m, m.n1, m.k, m.ctot[0], m.ctot[1], m.ctot[2], m.ctot[3],
            m.t_end);
  }
  out += merges.empty() ? "],\n" : "\n  ],\n";
  appendf(out,
          "  \"memory\": {\n"
          "    \"workspace_bytes\": %llu,\n"
          "    \"context_bytes\": %llu,\n"
          "    \"output_bytes\": %llu,\n"
          "    \"rss_hwm_bytes\": %llu,\n"
          "    \"rss_hwm_delta_bytes\": %llu\n"
          "  },\n",
          ull(memory.workspace_bytes), ull(memory.context_bytes), ull(memory.output_bytes),
          ull(memory.rss_hwm_bytes), ull(memory.rss_hwm_delta_bytes));
  if (!hwc_backend.empty()) {
    appendf(out, "  \"hwc\": {\n    \"backend\": \"%s\",\n    \"slots\": [",
            rt::json_escape(hwc_backend).c_str());
    for (std::size_t s = 0; s < hwc_slot_names.size(); ++s)
      appendf(out, "%s\"%s\"", s ? ", " : "", rt::json_escape(hwc_slot_names[s]).c_str());
    out += "],\n    \"kinds\": [";
    for (std::size_t i = 0; i < kind_hwc.size(); ++i) {
      const KindHwcTotals& k = kind_hwc[i];
      appendf(out,
              "%s\n      {\"kind\": \"%s\", \"tasks\": %ld, \"seconds\": %.9f, "
              "\"hwc\": [%llu, %llu, %llu, %llu]}",
              i ? "," : "", rt::json_escape(k.kind).c_str(), k.tasks, k.seconds,
              ull(k.hwc[0]), ull(k.hwc[1]), ull(k.hwc[2]), ull(k.hwc[3]));
    }
    out += kind_hwc.empty() ? "]\n  },\n" : "\n    ]\n  },\n";
  }
  if (has_health) {
    appendf(out,
            "  \"health\": {\n"
            "    \"sampled_columns\": %d,\n"
            "    \"max_rel_residual\": %.17g,\n"
            "    \"max_ortho_error\": %.17g\n"
            "  },\n",
            health.sampled_columns, health.max_rel_residual, health.max_ortho_error);
  }
  appendf(out, "  \"has_scheduler\": %s", has_scheduler ? "true" : "false");
  if (has_scheduler) {
    appendf(out,
            ",\n  \"scheduler\": {\n"
            "    \"workers\": %d,\n"
            "    \"tasks\": %ld,\n"
            "    \"makespan\": %.9f,\n"
            "    \"total_busy\": %.9f,\n"
            "    \"efficiency\": %.6f,\n"
            "    \"avg_ready_wait\": %.9f,\n"
            "    \"max_ready_wait\": %.9f,\n"
            "    \"total_idle\": %.9f,\n"
            "    \"max_queue_depth\": %d,\n"
            "    \"policy\": \"%s\",\n"
            "    \"steals\": %ld,\n"
            "    \"steal_attempts\": %ld,\n"
            "    \"failed_steals\": %ld,\n"
            "    \"local_pops\": %ld,\n"
            "    \"placed_max\": %ld,\n"
            "    \"placed_min\": %ld,\n"
            "    \"steals_same_l3\": %ld,\n"
            "    \"steals_same_socket\": %ld,\n"
            "    \"steals_cross_socket\": %ld,\n"
            "    \"child_tasks\": %ld\n"
            "  }",
            scheduler.workers, scheduler.tasks, scheduler.makespan, scheduler.total_busy,
            scheduler.efficiency, scheduler.avg_ready_wait, scheduler.max_ready_wait,
            scheduler.total_idle, scheduler.max_queue_depth,
            rt::json_escape(scheduler.policy).c_str(), scheduler.steals,
            scheduler.steal_attempts, scheduler.failed_steals, scheduler.local_pops,
            scheduler.placed_max, scheduler.placed_min, scheduler.steals_same_l3,
            scheduler.steals_same_socket, scheduler.steals_cross_socket,
            scheduler.child_tasks);
  }
  if (tuned) {
    appendf(out, ",\n  \"tuning\": {\n    \"source\": \"%s\",\n    \"entry\": \"%s\"\n  }",
            rt::json_escape(tune_source).c_str(), rt::json_escape(tune_entry).c_str());
  }
  out += "\n}\n";
  return out;
}

std::string SolveReport::summary_text() const {
  std::string out;
  appendf(out, "=== dnc solve report ===\n");
  appendf(out, "driver        : %s\n", driver.c_str());
  appendf(out, "n             : %ld\n", n);
  appendf(out, "threads       : %d\n", threads);
  appendf(out, "wall time     : %.6f s\n", seconds);
  appendf(out, "simd kernels  : %s\n", simd_isa.c_str());
  appendf(out, "precision     : %s (%d-bit kernels)\n", precision.c_str(), precision_bits());
  appendf(out, "revision      : %s (%s)\n", git_commit.c_str(), build_type.c_str());
  if (!hostname.empty())
    appendf(out, "host / time   : %s  %s\n", hostname.c_str(), timestamp.c_str());
  if (has_health)
    appendf(out, "health        : resid %.3e, ortho %.3e (%d sampled columns)\n",
            health.max_rel_residual, health.max_ortho_error, health.sampled_columns);
  const long merged = merged_columns_total();
  appendf(out, "\n-- deflation (%zu merges) --\n", merges.size());
  appendf(out, "merged columns: %ld\n", merged);
  appendf(out, "deflated      : %ld (%.1f%%)\n", deflated_total(),
          merged > 0 ? 100.0 * deflated_total() / merged : 0.0);
  appendf(out, "secular roots : %ld\n", nondeflated_total());
  if (!merges.empty()) {
    // Per-level rollup: the paper's observation that deflation shrinks the
    // secular systems is easiest to read level by level.
    int max_level = 0;
    for (const auto& m : merges) max_level = std::max(max_level, m.level);
    appendf(out, "%-6s %8s %10s %10s %8s\n", "level", "merges", "columns", "deflated", "defl%");
    for (int lv = max_level; lv >= 0; --lv) {
      long cnt = 0, cols = 0, defl = 0;
      for (const auto& m : merges) {
        if (m.level != lv) continue;
        ++cnt;
        cols += m.m;
        defl += m.m - m.k;
      }
      if (cnt == 0) continue;
      appendf(out, "%-6d %8ld %10ld %10ld %7.1f%%\n", lv, cnt, cols, defl,
              cols > 0 ? 100.0 * defl / cols : 0.0);
    }
  }
  appendf(out, "\n-- secular solver (laed4) --\n");
  appendf(out, "calls         : %llu\n", ull(counters[kLaed4Calls]));
  appendf(out, "iterations    : %llu (avg %.2f/call)\n", ull(counters[kLaed4Iterations]),
          counters[kLaed4Calls] > 0
              ? static_cast<double>(counters[kLaed4Iterations]) / counters[kLaed4Calls]
              : 0.0);
  static const char* kBucketLabel[kLaed4HistBuckets] = {"0", "1",   "2",   "3",
                                                        "4", "5-6", "7-9", "10+"};
  const std::uint64_t total = std::max<std::uint64_t>(laed4_hist_total(), 1);
  for (int b = 0; b < kLaed4HistBuckets; ++b) {
    const std::uint64_t v = counters[kLaed4HistFirst + b];
    if (v == 0) continue;
    appendf(out, "  iters %-4s : %10llu  %5.1f%%\n", kBucketLabel[b], ull(v), 100.0 * v / total);
  }
  appendf(out, "\n-- other kernels --\n");
  appendf(out, "sturm counts  : %llu calls, %llu pivot steps\n", ull(counters[kSturmCalls]),
          ull(counters[kSturmSteps]));
  appendf(out, "ldl bisection : %llu calls, %llu halvings\n", ull(counters[kBisectLdlCalls]),
          ull(counters[kBisectLdlSteps]));
  appendf(out, "gemm          : %llu calls, %.3f GFLOP, %.1f MiB packed\n",
          ull(counters[kGemmCalls]), counters[kGemmFlops] * 1e-9,
          counters[kGemmPackedBytes] / (1024.0 * 1024.0));
  const auto mib = [](std::uint64_t b) { return b / (1024.0 * 1024.0); };
  appendf(out, "\n-- memory --\n");
  appendf(out, "workspace     : %.1f MiB scratch, %.1f MiB contexts, %.1f MiB output\n",
          mib(memory.workspace_bytes), mib(memory.context_bytes), mib(memory.output_bytes));
  if (memory.rss_hwm_bytes > 0)
    appendf(out, "peak rss      : %.1f MiB (grew %.1f MiB during solve)\n",
            mib(memory.rss_hwm_bytes), mib(memory.rss_hwm_delta_bytes));
  if (!hwc_backend.empty()) {
    appendf(out, "\n-- hardware counters (%s backend) --\n", hwc_backend.c_str());
    appendf(out, "%-22s %8s %11s", "kind", "tasks", "time(s)");
    for (const std::string& s : hwc_slot_names) appendf(out, " %14s", s.c_str());
    if (hwc_backend == "perf") appendf(out, " %6s %6s", "IPC", "miss%");
    out += "\n";
    for (const KindHwcTotals& k : kind_hwc) {
      appendf(out, "%-22s %8ld %11.6f", k.kind.c_str(), k.tasks, k.seconds);
      for (int s = 0; s < rt::kHwcSlots; ++s) appendf(out, " %14llu", ull(k.hwc[s]));
      if (hwc_backend == "perf") {
        appendf(out, " %6.2f %5.1f%%",
                k.hwc[0] > 0 ? static_cast<double>(k.hwc[1]) / k.hwc[0] : 0.0,
                k.hwc[3] > 0 ? 100.0 * k.hwc[2] / k.hwc[3] : 0.0);
      }
      out += "\n";
    }
  }
  if (has_scheduler) {
    appendf(out, "\n-- scheduler --\n");
    appendf(out, "workers       : %d\n", scheduler.workers);
    appendf(out, "tasks         : %ld\n", scheduler.tasks);
    appendf(out, "makespan      : %.6f s\n", scheduler.makespan);
    appendf(out, "busy / eff    : %.6f s / %.1f%%\n", scheduler.total_busy,
            100.0 * scheduler.efficiency);
    appendf(out, "ready wait    : avg %.9f s, max %.9f s\n", scheduler.avg_ready_wait,
            scheduler.max_ready_wait);
    appendf(out, "worker idle   : %.6f s total\n", scheduler.total_idle);
    appendf(out, "queue depth   : max %d\n", scheduler.max_queue_depth);
    if (!scheduler.policy.empty()) {
      appendf(out, "policy        : %s\n", scheduler.policy.c_str());
      if (scheduler.policy == "steal") {
        appendf(out, "steals        : %ld ok / %ld attempts / %ld dry scans\n",
                scheduler.steals, scheduler.steal_attempts, scheduler.failed_steals);
        if (scheduler.steals > 0)
          appendf(out, "steal locality: %ld same-L3 / %ld same-socket / %ld cross-socket\n",
                  scheduler.steals_same_l3, scheduler.steals_same_socket,
                  scheduler.steals_cross_socket);
        appendf(out, "local pops    : %ld\n", scheduler.local_pops);
        appendf(out, "placement     : %ld..%ld per worker (submitter round-robin)\n",
                scheduler.placed_min, scheduler.placed_max);
      }
    }
    if (scheduler.child_tasks > 0)
      appendf(out, "child tasks   : %ld (task-internal spawn_and_wait)\n",
              scheduler.child_tasks);
  }
  if (tuned) appendf(out, "\n-- tuning --\ntable         : %s\nentry         : %s\n",
                     tune_source.c_str(), tune_entry.c_str());
  return out;
}

SchedulerMetrics scheduler_metrics(const rt::Trace& trace) {
  SchedulerMetrics m;
  m.workers = trace.workers;
  m.makespan = trace.makespan();
  m.total_busy = trace.total_busy();
  m.efficiency = trace.efficiency();
  double wait_sum = 0.0;
  for (const auto& e : trace.events) {
    if (e.worker < 0) continue;
    ++m.tasks;
    if (e.is_child()) ++m.child_tasks;
    if (e.t_ready > 0.0) {
      const double w = std::max(e.t_start - e.t_ready, 0.0);
      wait_sum += w;
      m.max_ready_wait = std::max(m.max_ready_wait, w);
    }
  }
  m.avg_ready_wait = m.tasks > 0 ? wait_sum / m.tasks : 0.0;
  for (double d : trace.worker_idle) m.total_idle += d;
  // queue_samples may be decimated; queue_depth_peak is the exact maximum
  // (0 on traces predating it, so the max over both stays correct).
  for (const auto& s : trace.queue_samples) m.max_queue_depth = std::max(m.max_queue_depth, s.depth);
  m.max_queue_depth = std::max(m.max_queue_depth, trace.queue_depth_peak);
  m.policy = trace.sched_policy;
  if (!trace.sched_counters.empty()) {
    m.placed_max = trace.sched_counters.front().placed;
    m.placed_min = trace.sched_counters.front().placed;
    for (const auto& c : trace.sched_counters) {
      m.steals += c.steals;
      m.steal_attempts += c.steal_attempts;
      m.failed_steals += c.failed_steals;
      m.local_pops += c.local_pops;
      m.placed_max = std::max(m.placed_max, c.placed);
      m.placed_min = std::min(m.placed_min, c.placed);
      m.steals_same_l3 += c.steals_same_l3;
      m.steals_same_socket += c.steals_same_socket;
      m.steals_cross_socket += c.steals_cross_socket;
    }
  }
  return m;
}

SolveScope::SolveScope(const char* driver)
    : driver_(driver), begin_(snapshot()), rss_hwm_begin_(current_peak_rss_bytes()) {}

void SolveScope::finish(SolveReport& out, long n, int threads, double seconds,
                        const rt::Trace* trace) const {
  out.driver = driver_;
  out.n = n;
  out.threads = threads;
  out.seconds = seconds;
  if (out.simd_isa.empty()) out.simd_isa = simd_isa_name(requested_simd_isa());
  out.git_commit = version::kGitCommit;
  out.build_type = version::kBuildType;
  out.hostname = current_hostname();
  out.timestamp = iso8601_timestamp_utc();
  out.counters = delta_since(begin_);
  out.memory.rss_hwm_bytes = current_peak_rss_bytes();
  out.memory.rss_hwm_delta_bytes = out.memory.rss_hwm_bytes > rss_hwm_begin_
                                       ? out.memory.rss_hwm_bytes - rss_hwm_begin_
                                       : 0;
  // A reused report must not keep the previous solve's aggregates: an
  // hwc-off or sequential rerun would otherwise still show the old
  // scheduler/hwc/health blocks (the context_bytes lesson from PR 5).
  out.has_scheduler = false;
  out.scheduler = SchedulerMetrics{};
  out.hwc_backend.clear();
  out.hwc_slot_names.clear();
  out.kind_hwc.clear();
  out.has_health = false;
  out.health = HealthMetrics{};
  if (trace) {
    out.has_scheduler = true;
    out.scheduler = scheduler_metrics(*trace);
    if (!trace->hwc_backend.empty()) {
      out.hwc_backend = trace->hwc_backend;
      out.hwc_slot_names = trace->hwc_slot_names;
      out.kind_hwc = kind_hwc_totals(*trace);
    }
  }
}

bool trace_export_requested() noexcept {
  const char* p = env::raw("DNC_TRACE");
  return p && *p;
}

bool report_export_requested() noexcept {
  const char* p = env::raw("DNC_REPORT");
  return p && *p;
}

namespace {
// Process-wide solve-export counter (see the header's clobbering note).
// Relaxed is enough: concurrent solves racing for the same artifact path
// have no meaningful order anyway; each still gets a distinct suffix.
std::atomic<unsigned> g_export_seq{0};
}  // namespace

std::string sequenced_export_path(const std::string& base, unsigned seq) {
  if (seq == 0) return base;
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, ".%u", seq + 1);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + suffix;  // no extension: plain append
  return base.substr(0, dot) + suffix + base.substr(dot);
}

void reset_export_sequence() noexcept { g_export_seq.store(0); }

std::string expand_path_placeholders(const std::string& path, unsigned long seq) {
  std::string out = path;
  char buf[32];
  for (std::size_t pos; (pos = out.find("%p")) != std::string::npos;) {
    std::snprintf(buf, sizeof buf, "%ld", static_cast<long>(::getpid()));
    out.replace(pos, 2, buf);
  }
  for (std::size_t pos; (pos = out.find("%s")) != std::string::npos;) {
    std::snprintf(buf, sizeof buf, "%lu", seq);
    out.replace(pos, 2, buf);
  }
  return out;
}

std::string current_hostname() {
  static const std::string cached = [] {
    char buf[256] = {};
    if (::gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0') return std::string("unknown");
    return std::string(buf);
  }();
  return cached;
}

std::string iso8601_timestamp_utc() {
  std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

namespace {

// %s names each export's file itself; %p alone separates processes but the
// in-process repeats still need the ".N" suffix; no placeholder keeps the
// original sequencing behaviour.
std::string resolved_export_path(const std::string& base, unsigned seq) {
  if (base.find("%s") != std::string::npos)
    return expand_path_placeholders(base, seq + 1);
  if (base.find("%p") != std::string::npos)
    return sequenced_export_path(expand_path_placeholders(base, seq + 1), seq);
  return sequenced_export_path(base, seq);
}

}  // namespace

void export_solve_artifacts(const SolveReport& report, const rt::Trace* trace) {
  const unsigned seq = g_export_seq.fetch_add(1);
  if (const char* path = env::raw("DNC_TRACE"); path && *path && trace) {
    std::ofstream f(resolved_export_path(path, seq));
    if (f) f << perfetto_trace_json(*trace, &report);
  }
  if (const char* path = env::raw("DNC_REPORT"); path && *path) {
    const std::string p = resolved_export_path(path, seq);
    std::ofstream f(p);
    if (f) f << report.to_json();
    std::ofstream t(p + ".txt");
    if (t) t << report.summary_text();
  }
}

}  // namespace dnc::obs
