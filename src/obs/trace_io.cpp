#include "obs/trace_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/json.hpp"

namespace dnc::obs {
namespace {

inline double sec(double microseconds) { return microseconds * 1e-6; }

}  // namespace

bool load_perfetto_trace(const std::string& json_text, rt::Trace& out, std::string* err) {
  out = rt::Trace{};
  json::Value root;
  if (!json::parse(json_text, root, err)) return false;
  // Accept both the bare event array and the {"traceEvents": [...]} wrapper
  // some tools write.
  const json::Value* events = &root;
  if (root.is_object()) {
    events = root.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      if (err) *err = "no traceEvents array";
      return false;
    }
  }
  if (!events->is_array()) {
    if (err) *err = "top-level JSON is not an event array";
    return false;
  }

  std::unordered_map<std::string, int> kind_index;
  const auto kind_of = [&](const std::string& name) {
    const auto it = kind_index.find(name);
    if (it != kind_index.end()) return it->second;
    const int id = static_cast<int>(out.kind_names.size());
    kind_index.emplace(name, id);
    out.kind_names.push_back(name);
    out.kind_memory_bound.push_back(0);
    return id;
  };

  std::uint64_t synth_id = 1u << 20;  // ids for slices lacking args.task
  for (const json::Value& ev : events->array) {
    if (!ev.is_object()) continue;
    const std::string ph = ev.member_string("ph", "");
    const std::string name = ev.member_string("name", "");
    if (ph == "M") {
      if (name == "dnc_meta") {
        const json::Value* args = ev.find("args");
        if (args == nullptr) continue;
        out.workers = static_cast<int>(args->member_number("workers", out.workers));
        if (const json::Value* kinds = args->find("kinds"); kinds && kinds->is_array()) {
          for (const json::Value& k : kinds->array) {
            const int id = kind_of(k.member_string("name", "?"));
            out.kind_memory_bound[id] =
                k.find("memory_bound") && k.find("memory_bound")->bool_or(false) ? 1 : 0;
          }
        }
        if (const json::Value* idle = args->find("worker_idle"); idle && idle->is_array()) {
          for (const json::Value& v : idle->array) out.worker_idle.push_back(v.number_or(0.0));
        }
        out.sched_policy = args->member_string("sched_policy", out.sched_policy);
        out.queue_depth_peak =
            static_cast<int>(args->member_number("queue_depth_peak", out.queue_depth_peak));
        if (const json::Value* sc = args->find("sched_counters"); sc && sc->is_array()) {
          for (const json::Value& c : sc->array) {
            rt::WorkerSchedCounters wc;
            wc.executed = static_cast<long>(c.member_number("executed", 0.0));
            wc.local_pops = static_cast<long>(c.member_number("local_pops", 0.0));
            wc.steals = static_cast<long>(c.member_number("steals", 0.0));
            wc.steal_attempts = static_cast<long>(c.member_number("steal_attempts", 0.0));
            wc.failed_steals = static_cast<long>(c.member_number("failed_steals", 0.0));
            wc.placed = static_cast<long>(c.member_number("placed", 0.0));
            wc.steals_same_l3 = static_cast<long>(c.member_number("steals_same_l3", 0.0));
            wc.steals_same_socket =
                static_cast<long>(c.member_number("steals_same_socket", 0.0));
            wc.steals_cross_socket =
                static_cast<long>(c.member_number("steals_cross_socket", 0.0));
            out.sched_counters.push_back(wc);
          }
        }
        out.hwc_backend = args->member_string("hwc_backend", out.hwc_backend);
        if (const json::Value* hs = args->find("hwc_slots"); hs && hs->is_array()) {
          for (const json::Value& s : hs->array)
            out.hwc_slot_names.push_back(s.string_or(""));
        }
        if (const json::Value* mc = args->find("meta_counters"); mc && mc->is_object()) {
          for (const auto& [key, val] : mc->object)
            out.meta_counters.emplace_back(key, val.number_or(0.0));
        }
        if (const json::Value* ms = args->find("meta_strings"); ms && ms->is_object()) {
          for (const auto& [key, val] : ms->object)
            out.meta_strings.emplace_back(key, val.string_or(""));
        }
      } else if (name == "dnc_edges") {
        const json::Value* args = ev.find("args");
        const json::Value* edges = args ? args->find("edges") : nullptr;
        if (edges == nullptr || !edges->is_array()) continue;
        for (const json::Value& e : edges->array) {
          if (!e.is_array() || e.array.size() != 2) continue;
          out.edges.emplace_back(static_cast<std::uint64_t>(e.array[0].number_or(0)),
                                 static_cast<std::uint64_t>(e.array[1].number_or(0)));
        }
      }
      continue;
    }
    if (ph == "C") {
      const json::Value* args = ev.find("args");
      if (name == "ready_queue_depth") {
        out.queue_samples.push_back(
            {sec(ev.member_number("ts", 0.0)),
             args ? static_cast<int>(args->member_number("depth", 0.0)) : 0});
      } else if (name == "steals_cumulative") {
        out.steal_samples.push_back(
            {sec(ev.member_number("ts", 0.0)),
             args ? static_cast<int>(args->member_number("steals", 0.0)) : 0});
      }
      continue;
    }
    if (ph != "X") continue;  // flow events are re-derivable from dnc_edges
    rt::TraceEvent te;
    te.kind = kind_of(name.empty() ? "task" : name);
    te.worker = static_cast<int>(ev.member_number("tid", 0.0));
    te.t_start = sec(ev.member_number("ts", 0.0));
    te.t_end = te.t_start + sec(ev.member_number("dur", 0.0));
    const json::Value* args = ev.find("args");
    if (args != nullptr) {
      te.task_id = static_cast<std::uint64_t>(args->member_number("task", 0.0));
      if (const json::Value* w = args->find("ready_wait_us"))
        te.t_ready = te.t_start - sec(w->number_or(0.0));
      te.level = static_cast<int>(args->member_number("level", -1.0));
      te.size = static_cast<long>(args->member_number("size", -1.0));
      te.panel = static_cast<long>(args->member_number("panel", -1.0));
      te.priority = static_cast<int>(args->member_number("prio", 0.0));
      te.parent = static_cast<long long>(args->member_number("parent", -1.0));
      te.nested = sec(args->member_number("nested_us", 0.0));
      if (const json::Value* h = args->find("hwc"); h && h->is_array()) {
        for (int s = 0; s < rt::kHwcSlots && s < static_cast<int>(h->array.size()); ++s)
          te.hwc[s] = static_cast<std::uint64_t>(h->array[s].number_or(0.0));
      }
    }
    if (args == nullptr || args->find("task") == nullptr) te.task_id = synth_id++;
    out.events.push_back(te);
  }

  if (out.events.empty()) {
    if (err) *err = "trace contains no slice (ph:\"X\") events";
    return false;
  }
  if (out.workers == 0) {
    for (const auto& e : out.events) out.workers = std::max(out.workers, e.worker + 1);
  }
  return true;
}

bool load_perfetto_trace_file(const std::string& path, rt::Trace& out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return load_perfetto_trace(ss.str(), out, err);
}

}  // namespace dnc::obs
