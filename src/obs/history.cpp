#include "obs/history.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

#include "common/env.hpp"
#include "common/json.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs::history {
namespace {

constexpr long kDefaultMaxBytes = 16L * 1024 * 1024;
constexpr std::size_t kRingCap = 256;

struct Config {
  std::string path;
  long max_bytes = kDefaultMaxBytes;
};

std::mutex g_mutex;  // guards the config, the ring, and file rotation
Config g_config;
std::atomic<int> g_enabled{-1};  // -1 uninitialised, else 0/1
std::deque<std::string> g_ring;  // compact JSONL lines, newest last

thread_local std::string t_family_hint;

void init_locked() {
  g_config.path = env::str("DNC_HISTORY", "");
  g_config.max_bytes = env::integer("DNC_HISTORY_MAX_BYTES", kDefaultMaxBytes);
  if (g_config.max_bytes < 4096) g_config.max_bytes = 4096;
  g_enabled.store(!g_config.path.empty(), std::memory_order_release);
}

Config config() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_enabled.load(std::memory_order_relaxed) < 0) init_locked();
  return g_config;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int need = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (need > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(need), sizeof buf - 1));
}

/// Writes `line` (newline-terminated) with a single write(2) so concurrent
/// appenders -- including other processes -- interleave whole lines only.
bool append_line(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  const char* p = line.c_str();
  std::size_t left = line.size();
  bool ok = true;
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w <= 0) {
      ok = false;
      break;
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  ::close(fd);
  return ok;
}

void rotate_if_needed_locked(const std::string& path, long cap) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return;
  if (st.st_size < cap) return;
  // One previous generation is enough for a bounded-disk archive; a rename
  // is atomic, so a concurrent appender lands either in the old or the new
  // generation, never in a torn file.
  ::rename(path.c_str(), (path + ".1").c_str());
}

}  // namespace

std::string Record::to_json_line() const {
  std::string out = "{\"schema\": \"dnc-history-v1\"";
  appendf(out, ", \"git_commit\": \"%s\"", rt::json_escape(git_commit).c_str());
  appendf(out, ", \"timestamp\": \"%s\"", rt::json_escape(timestamp).c_str());
  appendf(out, ", \"hostname\": \"%s\"", rt::json_escape(hostname).c_str());
  appendf(out, ", \"driver\": \"%s\"", rt::json_escape(driver).c_str());
  appendf(out, ", \"family\": \"%s\"", rt::json_escape(family).c_str());
  appendf(out, ", \"precision\": \"%s\"", rt::json_escape(precision).c_str());
  appendf(out, ", \"n\": %ld, \"workers\": %d", n, workers);
  appendf(out, ", \"seconds\": %.9f, \"makespan\": %.9f, \"total_idle\": %.9f",
          seconds, makespan, total_idle);
  appendf(out, ", \"deflated_fraction\": %.6f, \"gemm_gflops\": %.3f",
          deflated_fraction, gemm_gflops);
  appendf(out, ", \"max_rel_residual\": %.3e", max_rel_residual);
  appendf(out, ", \"sched_policy\": \"%s\"", rt::json_escape(sched_policy).c_str());
  appendf(out, ", \"tuned\": %s", tuned ? "true" : "false");
  appendf(out, ", \"tune_entry\": \"%s\"}", rt::json_escape(tune_entry).c_str());
  return out;
}

bool enabled() noexcept {
  const int e = g_enabled.load(std::memory_order_acquire);
  if (e >= 0) return e != 0;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_enabled.load(std::memory_order_relaxed) < 0) init_locked();
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

void refresh_from_env() noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  init_locked();
}

std::string archive_path() { return config().path; }
long max_bytes() noexcept { return config().max_bytes; }

void set_family_hint(const char* family) { t_family_hint = family ? family : ""; }
std::string family_hint() { return t_family_hint; }

Record record_from_report(const SolveReport& report) {
  Record r;
  r.git_commit = report.git_commit;
  r.timestamp = report.timestamp;
  r.hostname = report.hostname;
  r.driver = report.driver;
  r.family = t_family_hint;
  r.precision = report.precision.empty() ? "f64" : report.precision;
  r.n = report.n;
  r.workers = report.has_scheduler && report.scheduler.workers > 0
                  ? report.scheduler.workers
                  : std::max(report.threads, 1);
  r.seconds = report.seconds;
  if (report.has_scheduler) {
    r.makespan = report.scheduler.makespan;
    r.total_idle = report.scheduler.total_idle;
    r.sched_policy = report.scheduler.policy;
  }
  const long merged = report.merged_columns_total();
  if (merged > 0)
    r.deflated_fraction = static_cast<double>(report.deflated_total()) / merged;
  if (report.counter(kGemmFlops) > 0 && report.seconds > 0.0)
    r.gemm_gflops = static_cast<double>(report.counter(kGemmFlops)) * 1e-9 / report.seconds;
  if (report.has_health) r.max_rel_residual = report.health.max_rel_residual;
  r.tuned = report.tuned;
  r.tune_entry = report.tune_entry;
  return r;
}

bool append(const Record& rec) {
  const Config cfg = config();
  if (cfg.path.empty()) return false;
  const std::string line = rec.to_json_line() + "\n";
  // Rotation check and append under the process lock; cross-process safety
  // comes from the atomic rename + O_APPEND single-write combination.
  std::lock_guard<std::mutex> lock(g_mutex);
  rotate_if_needed_locked(cfg.path, cfg.max_bytes);
  return append_line(cfg.path, line);
}

void note(const SolveReport& report) {
  const Record rec = record_from_report(report);
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_ring.push_back(rec.to_json_line());
    while (g_ring.size() > kRingCap) g_ring.pop_front();
  }
  if (enabled()) append(rec);
}

std::string ring_jsonl() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string out;
  for (const std::string& line : g_ring) {
    out += line;
    out += '\n';
  }
  return out;
}

bool Key::matches(const Record& r) const {
  if (!driver.empty() && driver != r.driver) return false;
  if (!family.empty() && family != r.family) return false;
  if (!precision.empty() && precision != r.precision) return false;
  if (!commit.empty() && commit != r.git_commit) return false;
  if (n > 0 && n != r.n) return false;
  if (workers > 0 && workers != r.workers) return false;
  return true;
}

bool parse_key(const std::string& spec, Key& out, std::string* err) {
  out = Key{};
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      if (err) *err = "key field '" + field + "' has no '=' (want name=value)";
      return false;
    }
    const std::string name = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (name == "driver") {
      out.driver = value;
    } else if (name == "family") {
      out.family = value;
    } else if (name == "precision" || name == "prec") {
      out.precision = value;
    } else if (name == "commit") {
      out.commit = value;
    } else if (name == "n") {
      out.n = std::strtol(value.c_str(), nullptr, 10);
      if (out.n <= 0) {
        if (err) *err = "key field n wants a positive integer, got '" + value + "'";
        return false;
      }
    } else if (name == "workers") {
      out.workers = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      if (out.workers <= 0) {
        if (err) *err = "key field workers wants a positive integer, got '" + value + "'";
        return false;
      }
    } else {
      if (err)
        *err = "unknown key field '" + name +
               "' (known: driver, family, precision, commit, n, workers)";
      return false;
    }
  }
  return true;
}

bool load_file(const std::string& path, std::vector<Record>& out, std::string* err,
               long* skipped) {
  out.clear();
  if (skipped) *skipped = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string line;
  char buf[4096];
  const auto flush_line = [&]() {
    if (line.empty()) return;
    json::Value v;
    Record r;
    if (json::parse(line, v) && v.is_object() && v.find("driver")) {
      r.git_commit = v.member_string("git_commit", "");
      r.timestamp = v.member_string("timestamp", "");
      r.hostname = v.member_string("hostname", "");
      r.driver = v.member_string("driver", "");
      r.family = v.member_string("family", "");
      r.precision = v.member_string("precision", "f64");
      r.n = static_cast<long>(v.member_number("n", 0));
      r.workers = static_cast<int>(v.member_number("workers", 0));
      r.seconds = v.member_number("seconds", 0.0);
      r.makespan = v.member_number("makespan", 0.0);
      r.total_idle = v.member_number("total_idle", 0.0);
      r.deflated_fraction = v.member_number("deflated_fraction", 0.0);
      r.gemm_gflops = v.member_number("gemm_gflops", 0.0);
      r.max_rel_residual = v.member_number("max_rel_residual", 0.0);
      r.sched_policy = v.member_string("sched_policy", "");
      if (const json::Value* t = v.find("tuned")) r.tuned = t->bool_or(false);
      r.tune_entry = v.member_string("tune_entry", "");
      out.push_back(std::move(r));
    } else if (skipped) {
      ++*skipped;
    }
    line.clear();
  };
  while (std::fgets(buf, sizeof buf, f)) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      flush_line();
    }
  }
  flush_line();  // last line without trailing newline
  std::fclose(f);
  return true;
}

std::vector<Record> series(const std::vector<Record>& records, const Key& key) {
  std::vector<Record> out;
  for (const Record& r : records)
    if (key.matches(r)) out.push_back(r);
  return out;
}

std::vector<Record> latest_per_commit(const std::vector<Record>& records,
                                      const Key& key) {
  std::vector<Record> out;  // first-seen commit order, newest record each
  for (const Record& r : records) {
    if (!key.matches(r)) continue;
    bool found = false;
    for (Record& o : out) {
      if (o.git_commit == r.git_commit) {
        o = r;  // file order is append order: later = newer
        found = true;
        break;
      }
    }
    if (!found) out.push_back(r);
  }
  return out;
}

std::string render_series(const std::vector<Record>& series, const std::string& title) {
  std::string out;
  appendf(out, "=== history: %s (%zu records) ===\n", title.c_str(), series.size());
  if (series.empty()) {
    out += "(no matching records)\n";
    return out;
  }
  double lo = series.front().seconds, hi = lo;
  std::vector<double> secs;
  secs.reserve(series.size());
  for (const Record& r : series) {
    lo = std::min(lo, r.seconds);
    hi = std::max(hi, r.seconds);
    secs.push_back(r.seconds);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  appendf(out, "%-10s %-20s %-12s %6s %3s %10s %8s  %s\n", "commit", "timestamp", "driver",
          "n", "wrk", "seconds", "defl", "trend");
  constexpr int kBar = 24;
  for (const Record& r : series) {
    const int bar = 1 + static_cast<int>((r.seconds - lo) / span * (kBar - 1));
    std::string commit = r.git_commit.substr(0, 9);
    if (commit.empty()) commit = "-";
    appendf(out, "%-10s %-20s %-12s %6ld %3d %10.6f %7.1f%%  ", commit.c_str(),
            r.timestamp.empty() ? "-" : r.timestamp.c_str(), r.driver.c_str(), r.n,
            r.workers, r.seconds, 100.0 * r.deflated_fraction);
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  std::sort(secs.begin(), secs.end());
  const double median = secs[secs.size() / 2];
  appendf(out, "min %.6f s   median %.6f s   max %.6f s   (max/min %.2fx)\n", lo, median,
          hi, lo > 0.0 ? hi / lo : 0.0);
  return out;
}

std::size_t ring_size() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_ring.size();
}

void reset_for_tests() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_ring.clear();
  init_locked();
}

}  // namespace dnc::obs::history
