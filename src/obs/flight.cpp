#include "obs/flight.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>

#include "common/env.hpp"
#include "obs/perfetto.hpp"
#include "runtime/trace.hpp"

namespace dnc::obs::flight {
namespace {

struct Entry {
  unsigned long seq = 0;
  std::string timestamp;
  std::string reason;  ///< "" = healthy solve, else the trigger that fired
  SolveReport report;
};

// Leaked singleton, same reasoning as the metrics State: observe() may run
// from driver threads while the process is tearing down.
struct State {
  std::mutex mu;
  std::deque<Entry> ring;
  std::string prefix;        // "" = disabled
  std::size_t capacity = 8;
  Thresholds th;
  unsigned long max_dumps = 4;
  unsigned long seq = 0;
  unsigned long dumps = 0;
};

State& state() {
  static State* s = new State;
  return *s;
}

std::atomic<int> g_enabled{-1};

bool read_env(State& s) {
  const char* e = env::raw("DNC_FLIGHT");
  if (!e || !*e || !std::strcmp(e, "0") || !std::strcmp(e, "off")) return false;
  s.prefix = (!std::strcmp(e, "1") || !std::strcmp(e, "on") || !std::strcmp(e, "true"))
                 ? "dnc_flight.%p"
                 : e;
  long k = static_cast<long>(env::number("DNC_FLIGHT_K", 8));
  s.capacity = static_cast<std::size_t>(k < 1 ? 1 : k);
  s.th.max_rel_residual = env::number("DNC_FLIGHT_RESID", 1e-8);
  s.th.max_seconds = env::number("DNC_FLIGHT_LATENCY", 0.0);
  s.th.min_deflated_fraction = env::number("DNC_FLIGHT_DEFL", 0.0);
  long md = static_cast<long>(env::number("DNC_FLIGHT_MAX_DUMPS", 4));
  s.max_dumps = static_cast<unsigned long>(md < 0 ? 0 : md);
  return true;
}

bool init_enabled() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur >= 0) return cur != 0;
  bool on = read_env(s);
  if (!on) s.prefix.clear();
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

std::string ring_jsonl_locked(const State& s) {
  std::string body;
  for (const Entry& en : s.ring) {
    body += "{\"seq\": ";
    body += std::to_string(en.seq);
    body += ", \"timestamp\": \"" + en.timestamp + "\"";
    body += ", \"reason\": \"" + en.reason + "\"";
    body += ", \"report\": " + compact_json(en.report.to_json()) + "}\n";
  }
  return body;
}

std::string trigger_reason(const State& s, const SolveReport& rep) {
  if (rep.has_health && rep.health.max_rel_residual > s.th.max_rel_residual)
    return "residual";
  if (s.th.max_seconds > 0.0 && rep.seconds > s.th.max_seconds) return "latency";
  if (s.th.min_deflated_fraction > 0.0) {
    const long merged = rep.merged_columns_total();
    if (merged > 0 &&
        static_cast<double>(rep.deflated_total()) / merged < s.th.min_deflated_fraction)
      return "deflation";
  }
  return "";
}

}  // namespace

bool enabled() noexcept {
  int s = g_enabled.load(std::memory_order_relaxed);
  return s < 0 ? init_enabled() : s != 0;
}

void refresh_from_env() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  bool on = read_env(s);
  if (!on) s.prefix.clear();
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

Thresholds thresholds() {
  (void)enabled();
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.th;
}

std::string compact_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  bool in_string = false;
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    char c = pretty[i];
    if (in_string) {
      out.push_back(c);
      if (c == '\\' && i + 1 < pretty.size()) {
        out.push_back(pretty[++i]);  // escaped char (quote, backslash, ...)
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      out.push_back(c);
    } else if (c != ' ' && c != '\n' && c != '\t' && c != '\r') {
      out.push_back(c);
    }
  }
  return out;
}

std::string observe(const SolveReport& report, const rt::Trace* trace) {
  if (!enabled()) return "";
  State& s = state();
  std::string jsonl_path, trace_path, jsonl_body;
  const rt::Trace* dump_trace = nullptr;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.seq;
    Entry e;
    e.seq = s.seq;
    e.timestamp = report.timestamp.empty() ? iso8601_timestamp_utc() : report.timestamp;
    e.reason = trigger_reason(s, report);
    e.report = report;
    s.ring.push_back(std::move(e));
    while (s.ring.size() > s.capacity) s.ring.pop_front();
    if (s.ring.back().reason.empty() || s.dumps >= s.max_dumps) return "";
    ++s.dumps;
    char base[64];
    std::snprintf(base, sizeof base, ".%lu", s.dumps);
    std::string prefix = expand_path_placeholders(s.prefix, s.dumps) + base;
    jsonl_path = prefix + ".jsonl";
    trace_path = prefix + ".trace.json";
    jsonl_body = ring_jsonl_locked(s);
    dump_trace = trace;
  }
  if (std::FILE* f = std::fopen(jsonl_path.c_str(), "w")) {
    std::fwrite(jsonl_body.data(), 1, jsonl_body.size(), f);
    std::fclose(f);
  } else {
    return "";
  }
  if (dump_trace && !dump_trace->events.empty()) {
    if (std::FILE* f = std::fopen(trace_path.c_str(), "w")) {
      std::string tj = perfetto_trace_json(*dump_trace, &report);
      std::fwrite(tj.data(), 1, tj.size(), f);
      std::fclose(f);
    }
  }
  return jsonl_path;
}

std::string ring_jsonl(bool best_effort) {
  State& s = state();
  if (best_effort) {
    std::unique_lock<std::mutex> lk(s.mu, std::try_to_lock);
    return lk.owns_lock() ? ring_jsonl_locked(s) : std::string();
  }
  std::lock_guard<std::mutex> lk(s.mu);
  return ring_jsonl_locked(s);
}

std::size_t ring_size() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.ring.size();
}

unsigned long dump_count() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.dumps;
}

void reset_for_tests() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.ring.clear();
  s.seq = 0;
  s.dumps = 0;
  bool on = read_env(s);
  if (!on) s.prefix.clear();
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace dnc::obs::flight
