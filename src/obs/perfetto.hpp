// Full Perfetto-grade export of a runtime Trace.
//
// Extends the plain Trace::chrome_trace_json with everything Perfetto can
// render beyond slices: flow arrows along the executed DAG's dependency
// edges, per-slice args (task id, merge level, block size, panel, ready
// wait), and counter tracks -- the sampled ready-queue depth from the
// scheduler and, when a SolveReport is supplied, cumulative deflated
// columns over time. Load the output at https://ui.perfetto.dev.
#pragma once

#include <string>

namespace dnc::rt {
struct Trace;
}

namespace dnc::obs {

struct SolveReport;

/// Chrome trace-event JSON with metadata, annotated slices, flow events and
/// counter tracks. `report` is optional and only feeds the deflation
/// counter track.
std::string perfetto_trace_json(const rt::Trace& trace, const SolveReport* report = nullptr);

}  // namespace dnc::obs
