// Anomaly flight recorder: a black box for solve postmortems.
//
// A ring buffer retains the last K full SolveReports of the process. When a
// solve breaches a threshold -- relative residual too large, latency too
// long, deflation anomalously low -- the whole ring is dumped as JSONL (one
// compact report per line, newest last) plus a Perfetto trace of the
// triggering solve, so the postmortem sees not just the bad solve but the
// healthy ones leading up to it.
//
// Knobs (all read lazily, refresh_from_env() for tests):
//   DNC_FLIGHT            unset/""/0/off = off; 1/on = on with the default
//                         prefix "dnc_flight.%p"; anything else = dump-file
//                         prefix (%p expands to the pid)
//   DNC_FLIGHT_K          ring capacity (default 8)
//   DNC_FLIGHT_RESID      relative-residual trigger (default 1e-8; applies
//                         only to reports carrying health metrics)
//   DNC_FLIGHT_LATENCY    seconds trigger (default 0 = off)
//   DNC_FLIGHT_DEFL       minimum deflated fraction; a merge-carrying solve
//                         deflating less than this triggers (default 0 = off)
//   DNC_FLIGHT_MAX_DUMPS  per-process dump cap (default 4) so a persistent
//                         condition can't fill the disk
//
// Dump files: <prefix>.<dump#>.jsonl and <prefix>.<dump#>.trace.json.
#pragma once

#include <string>

#include "obs/report.hpp"

namespace dnc::rt {
struct Trace;
}

namespace dnc::obs::flight {

/// One relaxed load + branch once initialised, like metrics::enabled().
bool enabled() noexcept;
void refresh_from_env() noexcept;

struct Thresholds {
  double max_rel_residual = 1e-8;
  double max_seconds = 0.0;        ///< 0 = latency trigger off
  double min_deflated_fraction = 0.0;  ///< 0 = deflation trigger off
};
Thresholds thresholds();

/// Appends the report to the ring; if it trips a threshold (and the dump
/// cap is not exhausted), writes the JSONL + trace dump. Returns the JSONL
/// path, "" when nothing was dumped. No-op ("") when the recorder is off.
std::string observe(const SolveReport& report, const rt::Trace* trace);

/// Strips insignificant whitespace (string-literal aware) so a pretty
/// to_json() report becomes one JSONL line. Exposed for tests.
std::string compact_json(const std::string& pretty);

/// The current ring as JSONL, newest last -- the same shape observe()
/// writes to a dump file. Serves the /flight endpoint and the crash dump.
/// With `best_effort` (crash handler), an already-held ring lock yields ""
/// instead of deadlocking the dying process.
std::string ring_jsonl(bool best_effort = false);

// Test hooks.
std::size_t ring_size();
unsigned long dump_count();
void reset_for_tests();

}  // namespace dnc::obs::flight
