// Per-solve numerical-health estimation: sampled-column residual and
// orthogonality checks, O(n*s) for s sampled eigenpairs.
//
// The full verification (every residual, the n x n Gram matrix) costs more
// than the solve and lives in tests/. A production service still needs a
// signal that a solve went numerically wrong -- an fp32 cluster collapse, a
// deflation-tolerance bug -- before the result ships. This probe snapshots
// the tridiagonal before the driver destroys it, then checks s evenly
// spaced eigenpairs: a tridiagonal matvec is O(n) per column, so the probe
// stays sub-percent of the solve and is cheap enough for the always-on
// metrics/flight-recorder path.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "obs/report.hpp"

namespace dnc::obs {

class HealthProbe {
 public:
  static constexpr int kDefaultSamples = 16;

  /// Snapshots (d, e) -- the fp64 tridiagonal BEFORE the solve scales and
  /// destroys it. Until armed, evaluate() returns a zero HealthMetrics.
  void arm(index_t n, const double* d, const double* e);
  bool armed() const { return n_ > 0; }

  /// Checks ceil(s) evenly spaced eigenpairs of the solved system: lam
  /// ascending, v column-major (ldv >= n). Per column this computes the
  /// relative residual ||T v - lam v||_inf / ||T||_1, the normalisation
  /// error |1 - ||v||^2|, and the dot product against the neighbouring
  /// sampled column (adjacent eigenvectors are where fp32 clusters lose
  /// orthogonality first).
  HealthMetrics evaluate(const double* lam, const double* v, index_t ldv, index_t nvec,
                         int samples = kDefaultSamples) const;

 private:
  index_t n_ = 0;
  std::vector<double> d_, e_;
};

}  // namespace dnc::obs
