// Solve-history archive: an append-only JSONL log of solve headlines.
//
// The flight recorder answers "what happened in THIS process"; the history
// archive answers "how has this solve behaved across commits and days".
// Every telemetry-observed solve appends one compact JSON line -- keyed by
// (git commit, timestamp, driver, n, family, precision, workers) and
// carrying the headline numbers a trend view needs (wall seconds, makespan,
// idle, deflated fraction, GEMM GF/s, residual) -- to the file named by
// DNC_HISTORY. The file survives processes and machines (one ::write per
// line keeps concurrent appenders line-atomic), so `dnc_diff --history`
// can plot a cell across a whole bench campaign or bisect a regression to
// the commit that introduced it.
//
// Knobs (read lazily; refresh_from_env() for tests):
//   DNC_HISTORY            path of the archive; unset/"" = off
//   DNC_HISTORY_MAX_BYTES  rotation cap (default 16 MiB): when the file is
//                          at/over the cap before an append, it is renamed
//                          to <path>.1 (replacing any previous .1) and a
//                          fresh file is started -- bounded disk, and the
//                          previous generation stays inspectable.
//
// A small in-process ring of the most recent records (independent of the
// file gate) feeds the /history httpd endpoint.
#pragma once

#include <string>
#include <vector>

#include "obs/report.hpp"

namespace dnc::obs::history {

/// One archived solve: the identity key plus headline numbers. This is the
/// whole line -- history is a trend substrate, not a report store; the full
/// SolveReport lives in DNC_REPORT artifacts / bench report side-writes.
struct Record {
  // --- identity key ---
  std::string git_commit;
  std::string timestamp;  ///< ISO-8601 UTC
  std::string hostname;
  std::string driver;
  std::string family;  ///< matrix family / generator hint ("" = unknown)
  std::string precision;
  long n = 0;
  int workers = 0;
  // --- headline numbers ---
  double seconds = 0.0;     ///< wall-clock solve time
  double makespan = 0.0;    ///< scheduler makespan (0 = no scheduler data)
  double total_idle = 0.0;  ///< summed worker idle (s)
  double deflated_fraction = 0.0;  ///< 0 when the solve carried no merges
  double gemm_gflops = 0.0;        ///< 0 = unknown
  double max_rel_residual = 0.0;   ///< 0 = health probe off
  std::string sched_policy;
  bool tuned = false;
  std::string tune_entry;

  std::string to_json_line() const;  ///< one compact dnc-history-v1 line
};

/// One relaxed load + branch once initialised (metrics::enabled() idiom).
bool enabled() noexcept;
void refresh_from_env() noexcept;

/// The archive path ("" when off) and rotation cap currently in effect.
std::string archive_path();
long max_bytes() noexcept;

/// Matrix-family hint for the next record_from_report() on this thread.
/// Solve epilogues know nothing about how the matrix was generated; the
/// harness that does (bench_solver's family loop, dnc_trace's --type) sets
/// the hint around the solve. Pass nullptr/"" to clear.
void set_family_hint(const char* family);
std::string family_hint();

/// Distils a SolveReport into a Record (family from the thread-local hint).
Record record_from_report(const SolveReport& report);

/// Appends one record to the archive file, rotating first when the file is
/// at/over max_bytes(). Thread-safe; concurrent processes interleave whole
/// lines (single O_APPEND write). Returns false when the archive is off or
/// the write failed.
bool append(const Record& rec);

/// The telemetry entry point: pushes the record onto the in-process ring
/// (always, cheap) and appends to the archive file when enabled().
void note(const SolveReport& report);

/// The in-process ring as JSONL, newest last; serves /history.
std::string ring_jsonl();

/// Wildcarded record filter: empty strings / zero numbers match anything.
/// `family` and `n` are what bench cells key on; commit narrows to one
/// build, workers to one machine shape.
struct Key {
  std::string driver, family, precision, commit;
  long n = 0;
  int workers = 0;

  bool matches(const Record& r) const;
};

/// Parses "n=1000,family=4,driver=taskflow,prec=f64,workers=8,commit=abc"
/// (any subset, any order; unknown fields are an error). Returns false and
/// sets `err` on malformed input.
bool parse_key(const std::string& spec, Key& out, std::string* err = nullptr);

/// Reads an archive file (JSONL; unparseable lines are skipped and counted
/// in `skipped` when given). A missing file yields an empty vector and
/// false.
bool load_file(const std::string& path, std::vector<Record>& out,
               std::string* err = nullptr, long* skipped = nullptr);

/// All records matching `key`, in file (= chronological append) order.
std::vector<Record> series(const std::vector<Record>& records, const Key& key);

/// The newest record per git commit among those matching `key`, in first-
/// seen commit order -- the across-commits trend view.
std::vector<Record> latest_per_commit(const std::vector<Record>& records,
                                      const Key& key);

/// Table + ascii bars + min/median/max summary of a series (seconds
/// column). `title` heads the block.
std::string render_series(const std::vector<Record>& series,
                          const std::string& title);

// Test hooks.
std::size_t ring_size();
void reset_for_tests();

}  // namespace dnc::obs::history
