#include "obs/hwc.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/env.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace dnc::obs {
namespace {

// The four hardware events of the perf group, slot order fixed by the
// header contract. CACHE_MISSES / CACHE_REFERENCES are the kernel's
// "LLC miss / reference" generalized events.
#if defined(__linux__)
constexpr std::uint64_t kPerfConfig[rt::kHwcSlots] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_CACHE_REFERENCES,
};
#endif

const char* kPerfSlotNames[rt::kHwcSlots] = {"cycles", "instructions", "llc_misses",
                                             "llc_references"};
const char* kRusageSlotNames[rt::kHwcSlots] = {"minor_faults", "major_faults",
                                               "vol_ctx_switches", "invol_ctx_switches"};

// Process-wide sticky backend decision (see hwc_active_backend). 0 = not
// yet decided; otherwise holds a HwcBackend value.
std::atomic<int> g_backend{-1};

enum class HwcRequest { kOff, kPerf, kRusage };

HwcRequest parse_request(const char* v) {
  if (!v || !*v) return HwcRequest::kOff;
  if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0) return HwcRequest::kOff;
  if (std::strcmp(v, "rusage") == 0 || std::strcmp(v, "soft") == 0 ||
      std::strcmp(v, "software") == 0)
    return HwcRequest::kRusage;
  return HwcRequest::kPerf;  // "1", "on", "perf", ...
}

#if defined(__linux__)
int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

#if defined(__x86_64__) || defined(__i386__)
// Seqlock read of one event through its mmap'd page: rdpmc of the hardware
// counter plus the kernel-maintained offset, no syscall. Only called when
// the page advertised cap_user_rdpmc at open time.
std::uint64_t rdpmc_read(const volatile perf_event_mmap_page* pc) noexcept {
  std::uint32_t seq;
  std::uint64_t count;
  do {
    seq = pc->lock;
    __sync_synchronize();
    const std::uint32_t idx = pc->index;
    count = pc->offset;
    if (idx) {
      const std::uint64_t pmc = _rdpmc(idx - 1);
      const int shift = 64 - pc->pmc_width;
      // Sign-extend the partial-width counter before adding the offset.
      count += static_cast<std::uint64_t>(
          static_cast<std::int64_t>(pmc << shift) >> shift);
    }
    __sync_synchronize();
  } while (pc->lock != seq);
  return count;
}
#endif  // x86
#endif  // __linux__

}  // namespace

const char* hwc_backend_name(HwcBackend b) {
  switch (b) {
    case HwcBackend::kPerf: return "perf";
    case HwcBackend::kRusage: return "rusage";
    case HwcBackend::kOff: break;
  }
  return "off";
}

const char* hwc_slot_name(HwcBackend b, int slot) {
  if (slot < 0 || slot >= rt::kHwcSlots) return "";
  switch (b) {
    case HwcBackend::kPerf: return kPerfSlotNames[slot];
    case HwcBackend::kRusage: return kRusageSlotNames[slot];
    case HwcBackend::kOff: break;
  }
  return "";
}

HwcBackend parse_hwc_backend(const std::string& name) {
  if (name == "perf") return HwcBackend::kPerf;
  if (name == "rusage") return HwcBackend::kRusage;
  return HwcBackend::kOff;
}

bool hwc_requested() noexcept {
  return parse_request(env::raw("DNC_HWC")) != HwcRequest::kOff;
}

HwcBackend hwc_active_backend() noexcept {
  const int b = g_backend.load(std::memory_order_acquire);
  return b < 0 ? HwcBackend::kOff : static_cast<HwcBackend>(b);
}

// ---------------------------------------------------------------------------
// ThreadHwc

ThreadHwc::ThreadHwc() {
  const HwcRequest req = parse_request(env::raw("DNC_HWC"));
  if (req == HwcRequest::kOff) return;

  // Process-wide consistency: exactly one thread probes (under call_once,
  // so concurrently-constructing workers wait for the verdict instead of
  // racing to diverging decisions) and publishes the backend; every other
  // thread follows it. Mixing perf cycles with rusage fault counts in one
  // trace would be meaningless.
  static std::once_flag probe_once;
  std::call_once(probe_once, [&] {
    if (req == HwcRequest::kPerf) open_perf();
    if (backend_ != HwcBackend::kPerf) backend_ = HwcBackend::kRusage;
    g_backend.store(static_cast<int>(backend_), std::memory_order_release);
  });
  if (backend_ != HwcBackend::kOff) return;  // this thread ran the probe

  switch (hwc_active_backend()) {
    case HwcBackend::kPerf:
      // If perf worked for the probing thread but fails here (e.g. fd
      // exhaustion), this thread stays inactive rather than sampling
      // incomparable numbers under a different backend.
      open_perf();
      break;
    case HwcBackend::kRusage:
      backend_ = HwcBackend::kRusage;
      break;
    case HwcBackend::kOff:
      break;
  }
}

ThreadHwc::~ThreadHwc() { close_perf(); }

void ThreadHwc::open_perf() noexcept {
#if defined(__linux__)
  perf_event_attr attr;
  for (int i = 0; i < rt::kHwcSlots; ++i) {
    std::memset(&attr, 0, sizeof attr);
    attr.size = sizeof attr;
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kPerfConfig[i];
    // One leader read() must return every member as {nr, values[nr]}.
    attr.read_format = PERF_FORMAT_GROUP;
    attr.disabled = (i == 0) ? 1 : 0;  // group starts disabled, enabled once complete
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const int group = (i == 0) ? -1 : fds_[0];
    fds_[i] = perf_event_open(&attr, 0 /* this thread */, -1 /* any cpu */, group, 0);
    if (i == 0 && fds_[0] < 0) return;  // leader failed: no perf at all
    // A failed non-leader slot (e.g. no LLC events on this machine) is
    // tolerated: its deltas stay 0 and the other slots keep working.
  }

  rdpmc_ok_ = false;
#if defined(__x86_64__) || defined(__i386__)
  // Map each open event's counter page; rdpmc is only usable if every open
  // event grants it (otherwise the single grouped read() is used for all).
  bool all_caps = true;
  for (int i = 0; i < rt::kHwcSlots; ++i) {
    if (fds_[i] < 0) continue;
    void* p = ::mmap(nullptr, static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)),
                     PROT_READ, MAP_SHARED, fds_[i], 0);
    if (p == MAP_FAILED) {
      all_caps = false;
      continue;
    }
    pages_[i] = p;
    const auto* pc = static_cast<const volatile perf_event_mmap_page*>(p);
    // Only the capability bit matters here: the group is still disabled, so
    // index is 0 for every event at this point. rdpmc_read() handles a
    // transiently-unscheduled event (index == 0) through the seqlock.
    if (!pc->cap_user_rdpmc) all_caps = false;
  }
  rdpmc_ok_ = all_caps;
#endif

  ::ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  backend_ = HwcBackend::kPerf;
#endif  // __linux__
}

void ThreadHwc::close_perf() noexcept {
#if defined(__linux__)
  const long page = ::sysconf(_SC_PAGESIZE);
  for (int i = 0; i < rt::kHwcSlots; ++i) {
    if (pages_[i]) ::munmap(pages_[i], static_cast<std::size_t>(page));
    if (fds_[i] >= 0) ::close(fds_[i]);
    pages_[i] = nullptr;
    fds_[i] = -1;
  }
#endif
}

void ThreadHwc::read(std::uint64_t out[rt::kHwcSlots]) noexcept {
  for (int i = 0; i < rt::kHwcSlots; ++i) out[i] = 0;
  if (backend_ == HwcBackend::kRusage) {
#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
    rusage ru;
#if defined(RUSAGE_THREAD)
    if (::getrusage(RUSAGE_THREAD, &ru) != 0) return;
#else
    if (::getrusage(RUSAGE_SELF, &ru) != 0) return;
#endif
    out[0] = static_cast<std::uint64_t>(ru.ru_minflt);
    out[1] = static_cast<std::uint64_t>(ru.ru_majflt);
    out[2] = static_cast<std::uint64_t>(ru.ru_nvcsw);
    out[3] = static_cast<std::uint64_t>(ru.ru_nivcsw);
#endif
    return;
  }
  if (backend_ != HwcBackend::kPerf) return;
#if defined(__linux__)
#if defined(__x86_64__) || defined(__i386__)
  if (rdpmc_ok_) {
    for (int i = 0; i < rt::kHwcSlots; ++i)
      if (pages_[i])
        out[i] = rdpmc_read(static_cast<const volatile perf_event_mmap_page*>(pages_[i]));
    return;
  }
#endif
  // Grouped read: one syscall returns every member's value in open order
  // (failed slots were never added to the group, so values are dense --
  // walk the open fds in slot order to scatter them back).
  struct {
    std::uint64_t nr;
    std::uint64_t values[rt::kHwcSlots];
  } data{};
  const ssize_t r = ::read(fds_[0], &data, sizeof data);
  // The PERF_FORMAT_GROUP layout is {nr, values[nr]}: require the read to
  // cover every value it claims before scattering.
  if (r < static_cast<ssize_t>(sizeof(std::uint64_t)) || data.nr > rt::kHwcSlots ||
      r < static_cast<ssize_t>((data.nr + 1) * sizeof(std::uint64_t)))
    return;
  std::uint64_t v = 0;
  for (int i = 0; i < rt::kHwcSlots; ++i) {
    if (fds_[i] < 0) continue;
    if (v < data.nr) out[i] = data.values[v++];
  }
#endif
}

// ---------------------------------------------------------------------------
// Peak RSS

std::uint64_t current_peak_rss_bytes() noexcept {
#if defined(__linux__)
  // VmHWM is the per-process high-water mark in kB; preferred because
  // ru_maxrss semantics vary across kernels.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::fclose(f);
        return static_cast<std::uint64_t>(std::strtoull(line + 6, nullptr, 10)) * 1024u;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__linux__) || defined(__unix__) || defined(__APPLE__)
  rusage ru;
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

// ---------------------------------------------------------------------------
// Aggregation + roofline

std::vector<KindHwcTotals> kind_hwc_totals(const rt::Trace& trace) {
  std::vector<KindHwcTotals> acc(trace.kind_names.size());
  for (std::size_t k = 0; k < trace.kind_names.size(); ++k) acc[k].kind = trace.kind_names[k];
  for (const auto& e : trace.events) {
    if (e.worker < 0) continue;
    if (e.kind < 0 || e.kind >= static_cast<int>(acc.size())) continue;
    KindHwcTotals& t = acc[e.kind];
    ++t.tasks;
    t.seconds += e.t_end - e.t_start;
    for (int i = 0; i < rt::kHwcSlots; ++i) t.hwc[i] += e.hwc[i];
  }
  std::vector<KindHwcTotals> out;
  for (auto& t : acc)
    if (t.tasks > 0) out.push_back(std::move(t));
  return out;
}

Roofline roofline(const rt::Trace& trace, double gemm_flops, double gemm_bytes,
                  double peak_gflops, int precision_bits) {
  Roofline r;
  r.backend = parse_hwc_backend(trace.hwc_backend);
  r.precision_bits = precision_bits == 32 ? 32 : 64;

  const std::vector<KindHwcTotals> kinds = kind_hwc_totals(trace);
  double total_cycles = 0.0, total_seconds = 0.0;
  for (const auto& k : kinds) {
    total_cycles += static_cast<double>(k.hwc[0]);
    total_seconds += k.seconds;
  }
  r.total_seconds = total_seconds;

  // The roof. A caller-provided peak wins (and is read as the peak for the
  // trace's precision); with measured cycles the clock falls out of the
  // data (cycles / busy-seconds across all workers) and the width is the
  // widest FMA pipe this kernel set targets at the recorded precision
  // (AVX2 fp64: 2 FMA/cycle x 4 lanes x 2 flops = 16 flops/cycle; fp32
  // doubles the lanes to 32 flops/cycle); without either, a nominal 3 GHz
  // clock is assumed and flagged.
  const double kFlopsPerCycle = r.precision_bits == 32 ? 32.0 : 16.0;
  if (peak_gflops > 0.0) {
    r.peak_gflops = peak_gflops;
    r.peak_source = "flag";
  } else if (r.backend == HwcBackend::kPerf && total_cycles > 0.0 && total_seconds > 0.0) {
    r.peak_gflops = (total_cycles / total_seconds) * kFlopsPerCycle * 1e-9;
    r.peak_source = "derived";
  } else {
    r.peak_gflops = 3.0e9 * kFlopsPerCycle * 1e-9;
    r.peak_source = "assumed";
  }

  // FLOP attribution: the solve-wide GEMM counters belong to the kind that
  // runs the eigenvector update panels. Fall back to the busiest kind for
  // traces without an UpdateVect (e.g. synthetic graphs).
  std::size_t gemm_row = kinds.size();
  for (std::size_t i = 0; i < kinds.size(); ++i)
    if (kinds[i].kind == "UpdateVect") gemm_row = i;
  if (gemm_row == kinds.size() && gemm_flops > 0.0) {
    double best = -1.0;
    for (std::size_t i = 0; i < kinds.size(); ++i)
      if (kinds[i].seconds > best) {
        best = kinds[i].seconds;
        gemm_row = i;
      }
  }

  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const KindHwcTotals& k = kinds[i];
    RooflineRow row;
    row.kind = k.kind;
    row.tasks = k.tasks;
    row.seconds = k.seconds;
    for (int s = 0; s < rt::kHwcSlots; ++s) row.hwc[s] = k.hwc[s];
    if (r.backend == HwcBackend::kPerf) {
      row.share = total_cycles > 0.0 ? static_cast<double>(k.hwc[0]) / total_cycles : 0.0;
      row.ipc = k.hwc[0] > 0 ? static_cast<double>(k.hwc[1]) / static_cast<double>(k.hwc[0])
                             : 0.0;
      row.miss_rate = k.hwc[3] > 0
                          ? static_cast<double>(k.hwc[2]) / static_cast<double>(k.hwc[3])
                          : 0.0;
    } else {
      row.share = total_seconds > 0.0 ? k.seconds / total_seconds : 0.0;
    }
    if (i == gemm_row && gemm_flops > 0.0) {
      row.has_flops = true;
      row.flops = gemm_flops;
      row.bytes = gemm_bytes;
      row.arith_intensity = gemm_bytes > 0.0 ? gemm_flops / gemm_bytes : 0.0;
      row.gflops = k.seconds > 0.0 ? gemm_flops / k.seconds * 1e-9 : 0.0;
      row.pct_of_peak = r.peak_gflops > 0.0 ? 100.0 * row.gflops / r.peak_gflops : 0.0;
    }
    r.rows.push_back(std::move(row));
  }
  // Largest share first: the bound kind leads the table.
  std::sort(r.rows.begin(), r.rows.end(),
            [](const RooflineRow& a, const RooflineRow& b) { return a.share > b.share; });
  return r;
}

std::string render_roofline(const Roofline& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "roofline (backend %s, fp%d, peak %.1f GF/s [%s])\n",
                hwc_backend_name(r.backend), r.precision_bits, r.peak_gflops,
                r.peak_source.c_str());
  out += buf;
  const bool perf = r.backend == HwcBackend::kPerf;
  if (perf)
    std::snprintf(buf, sizeof buf, "%-22s %7s %10s %7s %6s %6s %8s %8s %7s\n", "kind", "tasks",
                  "time(s)", "share", "IPC", "miss%", "AI(F/B)", "GF/s", "%peak");
  else
    std::snprintf(buf, sizeof buf, "%-22s %7s %10s %7s %8s %6s %8s %8s %8s %7s\n", "kind",
                  "tasks", "time(s)", "share", "minflt", "majflt", "ctxsw", "AI(F/B)", "GF/s",
                  "%peak");
  out += buf;
  for (const RooflineRow& row : r.rows) {
    char ai[16] = "-", gf[16] = "-", pk[16] = "-";
    if (row.has_flops) {
      std::snprintf(ai, sizeof ai, "%.2f", row.arith_intensity);
      std::snprintf(gf, sizeof gf, "%.2f", row.gflops);
      std::snprintf(pk, sizeof pk, "%.1f", row.pct_of_peak);
    }
    if (perf) {
      std::snprintf(buf, sizeof buf, "%-22s %7ld %10.6f %6.1f%% %6.2f %5.1f%% %8s %8s %7s\n",
                    row.kind.c_str(), row.tasks, row.seconds, 100.0 * row.share, row.ipc,
                    100.0 * row.miss_rate, ai, gf, pk);
    } else {
      std::snprintf(buf, sizeof buf,
                    "%-22s %7ld %10.6f %6.1f%% %8llu %6llu %8llu %8s %8s %7s\n",
                    row.kind.c_str(), row.tasks, row.seconds, 100.0 * row.share,
                    static_cast<unsigned long long>(row.hwc[0]),
                    static_cast<unsigned long long>(row.hwc[1]),
                    static_cast<unsigned long long>(row.hwc[2] + row.hwc[3]), ai, gf, pk);
    }
    out += buf;
  }
  if (r.backend != HwcBackend::kPerf)
    out += "(rusage backend: no cycle/instruction attribution; GF/s uses wall time. "
           "Run with perf access for IPC and miss rates.)\n";
  return out;
}

}  // namespace dnc::obs
