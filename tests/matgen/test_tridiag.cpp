#include "matgen/tridiag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lapack/bisect.hpp"
#include "matgen/spectrum.hpp"

namespace dnc::matgen {
namespace {

TEST(Tridiag, OneTwoOneShape) {
  auto t = onetwoone(5);
  EXPECT_EQ(t.n(), 5);
  EXPECT_EQ(t.d, (std::vector<double>{2, 2, 2, 2, 2}));
  EXPECT_EQ(t.e, (std::vector<double>{1, 1, 1, 1}));
}

TEST(Tridiag, WilkinsonSymmetricProfile) {
  auto t = wilkinson(21);
  EXPECT_DOUBLE_EQ(t.d[0], 10.0);
  EXPECT_DOUBLE_EQ(t.d[10], 0.0);
  EXPECT_DOUBLE_EQ(t.d[20], 10.0);
  for (index_t i = 0; i < 21; ++i) EXPECT_DOUBLE_EQ(t.d[i], t.d[20 - i]);
}

TEST(Tridiag, ClementSymmetricOffdiag) {
  auto t = clement(10);
  for (index_t i = 0; i + 1 < 10; ++i) EXPECT_DOUBLE_EQ(t.e[i], t.e[8 - i]);
  // Spectrum is symmetric about zero: check via Sturm counts.
  EXPECT_EQ(lapack::sturm_count(10, t.d.data(), t.e.data(), 0.0), 5);
}

TEST(Tridiag, LegendreEigenvaluesAreGaussNodes) {
  // Eigenvalues of the Legendre Jacobi matrix are the Gauss-Legendre nodes;
  // for n = 3: 0, +-sqrt(3/5).
  auto t = legendre(3);
  auto w = lapack::bisect_all(3, t.d.data(), t.e.data());
  EXPECT_NEAR(w[0], -std::sqrt(0.6), 1e-12);
  EXPECT_NEAR(w[1], 0.0, 1e-12);
  EXPECT_NEAR(w[2], std::sqrt(0.6), 1e-12);
}

TEST(Tridiag, LaguerreDiagonal) {
  auto t = laguerre(4);
  EXPECT_EQ(t.d, (std::vector<double>{1, 3, 5, 7}));
  EXPECT_EQ(t.e, (std::vector<double>{1, 2, 3}));
}

TEST(Tridiag, HermiteEigenvaluesSymmetric) {
  // Hermite nodes for n = 2: +-1/sqrt(2).
  auto t = hermite(2);
  auto w = lapack::bisect_all(2, t.d.data(), t.e.data());
  EXPECT_NEAR(w[0], -std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(w[1], std::sqrt(0.5), 1e-12);
}

TEST(Spectrum, Type1Shape) {
  Rng rng(1);
  auto s = table3_spectrum(1, 100, 1e6, rng);
  EXPECT_DOUBLE_EQ(s.back(), 1.0);
  for (index_t i = 0; i + 1 < 100; ++i) EXPECT_DOUBLE_EQ(s[i], 1e-6);
}

TEST(Spectrum, Type2Shape) {
  Rng rng(1);
  auto s = table3_spectrum(2, 100, 1e6, rng);
  EXPECT_DOUBLE_EQ(s.front(), 1e-6);
  for (index_t i = 1; i < 100; ++i) EXPECT_DOUBLE_EQ(s[i], 1.0);
}

TEST(Spectrum, Type3Geometric) {
  Rng rng(1);
  auto s = table3_spectrum(3, 11, 1e6, rng);
  EXPECT_NEAR(s.front(), 1e-6, 1e-18);
  EXPECT_DOUBLE_EQ(s.back(), 1.0);
  // Constant ratio between consecutive sorted values.
  for (index_t i = 1; i + 1 < 11; ++i)
    EXPECT_NEAR(s[i + 1] / s[i], s[1] / s[0], 1e-10);
}

TEST(Spectrum, Type4Arithmetic) {
  Rng rng(1);
  auto s = table3_spectrum(4, 11, 1e6, rng);
  for (index_t i = 1; i + 1 < 11; ++i)
    EXPECT_NEAR(s[i + 1] - s[i], s[1] - s[0], 1e-12);
}

TEST(Spectrum, RandomTypesInRange) {
  Rng rng(2);
  for (int type : {5, 6}) {
    auto s = table3_spectrum(type, 500, 1e6, rng);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (double v : s) {
      EXPECT_GE(v, 1e-6 * 0.999);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Spectrum, Types789UlpStructure) {
  Rng rng(3);
  const double ulp = std::numeric_limits<double>::epsilon();
  auto s7 = table3_spectrum(7, 10, 1e6, rng);
  EXPECT_DOUBLE_EQ(s7.back(), 1.0);
  EXPECT_NEAR(s7[0], ulp, 1e-20);
  auto s9 = table3_spectrum(9, 10, 1e6, rng);
  EXPECT_DOUBLE_EQ(s9.front(), 1.0);
  EXPECT_NEAR(s9[9] - s9[0], 9 * 100 * ulp, 1e-12);
}

TEST(Table3, AllTypesProduceValidMatrices) {
  for (int type = 1; type <= 15; ++type) {
    auto t = table3_matrix(type, 50, 11);
    EXPECT_EQ(t.n(), 50) << "type " << type;
    EXPECT_EQ(t.e.size(), 49u) << "type " << type;
    for (double v : t.d) EXPECT_TRUE(std::isfinite(v)) << "type " << type;
    for (double v : t.e) EXPECT_TRUE(std::isfinite(v)) << "type " << type;
  }
}

TEST(Table3, InvalidTypeThrows) {
  EXPECT_THROW(table3_matrix(0, 10), InvalidArgument);
  EXPECT_THROW(table3_matrix(16, 10), InvalidArgument);
}

TEST(Table3, Deterministic) {
  auto a = table3_matrix(5, 30, 99);
  auto b = table3_matrix(5, 30, 99);
  EXPECT_EQ(a.d, b.d);
  EXPECT_EQ(a.e, b.e);
}

TEST(Table3, DescriptionsNonEmpty) {
  for (int type = 1; type <= 15; ++type) EXPECT_FALSE(table3_description(type).empty());
}

}  // namespace
}  // namespace dnc::matgen
