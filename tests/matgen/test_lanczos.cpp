#include "matgen/lanczos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lapack/bisect.hpp"
#include "matgen/spectrum.hpp"

namespace dnc::matgen {
namespace {

// The generated tridiagonal must have (numerically) the prescribed spectrum.
void check_spectrum(const std::vector<double>& lambda, double tol) {
  Rng rng(7);
  auto t = tridiag_from_spectrum(lambda, rng);
  ASSERT_EQ(t.n(), static_cast<index_t>(lambda.size()));
  auto w = lapack::bisect_all(t.n(), t.d.data(), t.e.data());
  std::vector<double> want(lambda);
  std::sort(want.begin(), want.end());
  double scale = 1e-300;
  for (double v : want) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(w[i], want[i], tol * scale) << "eigenvalue " << i;
}

TEST(Lanczos, DistinctSmall) { check_spectrum({1.0, 2.0, 3.0, 4.0}, 1e-12); }

TEST(Lanczos, SingleValue) { check_spectrum({3.5}, 0.0); }

TEST(Lanczos, TwoValues) { check_spectrum({-1.0, 5.0}, 1e-13); }

TEST(Lanczos, NegativeAndPositive) {
  std::vector<double> lam;
  for (int i = 0; i < 30; ++i) lam.push_back(-3.0 + 0.2 * i);
  check_spectrum(lam, 1e-12);
}

TEST(Lanczos, GeometricSpread) {
  std::vector<double> lam;
  for (int i = 0; i < 40; ++i) lam.push_back(std::pow(10.0, -6.0 * i / 39.0));
  check_spectrum(lam, 1e-11);
}

TEST(Lanczos, AllEqualFastPath) {
  std::vector<double> lam(200, 2.5);
  Rng rng(3);
  auto t = tridiag_from_spectrum(lam, rng);
  for (double v : t.d) EXPECT_DOUBLE_EQ(v, 2.5);
  // Couplings are ulp-tiny, not zero.
  for (double v : t.e) {
    EXPECT_LT(std::fabs(v), 1e-14);
  }
}

TEST(Lanczos, MassiveMultiplicityType2Like) {
  // n-1 copies of 1 plus a single 1e-6 (Table III type 2 structure).
  std::vector<double> lam(100, 1.0);
  lam[0] = 1e-6;
  check_spectrum(lam, 1e-11);
}

TEST(Lanczos, Type1Like) {
  std::vector<double> lam(80, 1e-6);
  lam.back() = 1.0;
  check_spectrum(lam, 1e-11);
}

TEST(Lanczos, MultipleClusters) {
  // Two clusters of multiplicity 10 each plus scattered values: exercises
  // repeated restarts without the single-cluster fill shortcut.
  std::vector<double> lam;
  for (int i = 0; i < 10; ++i) lam.push_back(1.0);
  for (int i = 0; i < 10; ++i) lam.push_back(2.0);
  for (int i = 0; i < 5; ++i) lam.push_back(3.0 + i);
  check_spectrum(lam, 1e-11);
}

TEST(Lanczos, UnsortedInputHandled) {
  check_spectrum({5.0, 1.0, 3.0, 2.0, 4.0}, 1e-12);
}

TEST(Lanczos, MatrixIsEssentiallyUnreducedForDistinct) {
  std::vector<double> lam;
  for (int i = 0; i < 50; ++i) lam.push_back(static_cast<double>(i));
  Rng rng(11);
  auto t = tridiag_from_spectrum(lam, rng);
  // With distinct well-separated eigenvalues there is no breakdown: all
  // couplings are substantial.
  index_t tiny = 0;
  for (double v : t.e)
    if (std::fabs(v) < 1e-8) ++tiny;
  EXPECT_EQ(tiny, 0);
}

TEST(Lanczos, NoTinyCouplingOptionGivesExactZeros) {
  std::vector<double> lam(50, 1.0);
  lam[0] = 2.0;
  SpectrumOptions opt;
  opt.tiny_coupling = false;
  Rng rng(13);
  auto t = tridiag_from_spectrum(lam, rng, opt);
  index_t zeros = 0;
  for (double v : t.e)
    if (v == 0.0) ++zeros;
  EXPECT_GT(zeros, 0);
}

}  // namespace
}  // namespace dnc::matgen
