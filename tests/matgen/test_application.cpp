#include "matgen/application.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lapack/bisect.hpp"

namespace dnc::matgen {
namespace {

TEST(Application, FemLaplacianIsPositiveSemiDefiniteish) {
  Rng rng(1);
  auto t = fem_laplacian_jump(200, 6, rng);
  EXPECT_EQ(t.n(), 200);
  // Diagonally dominant with positive diagonal => positive definite.
  for (index_t i = 0; i < 200; ++i) {
    double off = (i > 0 ? std::fabs(t.e[i - 1]) : 0.0) + (i < 199 ? std::fabs(t.e[i]) : 0.0);
    EXPECT_GE(t.d[i] + 1e-12, off);
  }
  EXPECT_EQ(lapack::sturm_count(200, t.d.data(), t.e.data(), 0.0), 0);
}

TEST(Application, GluedWilkinsonClusters) {
  auto t = glued_wilkinson(21, 5, 1e-6);
  EXPECT_EQ(t.n(), 105);
  auto w = lapack::bisect_all(105, t.d.data(), t.e.data());
  // Wilkinson's top eigenvalues come in near-degenerate pairs, so gluing 5
  // blocks produces a cluster of 2 x 5 = 10 at the top.
  const double top = w.back();
  index_t cluster = 0;
  for (double v : w)
    if (std::fabs(v - top) < 1e-4) ++cluster;
  EXPECT_EQ(cluster, 10);
}

TEST(Application, SchroedingerTunnellingPairs) {
  auto t = schroedinger_double_well(400, 40.0);
  auto w = lapack::bisect_all(400, t.d.data(), t.e.data());
  // Lowest two states are a tunnelling pair: split tiny vs the gap above.
  const double split01 = w[1] - w[0];
  const double gap12 = w[2] - w[1];
  EXPECT_LT(split01, gap12 * 0.5);
}

TEST(Application, Grid2dHasMultiplicities) {
  Rng rng(2);
  auto t = grid2d_spectrum(8, 8, rng);
  EXPECT_EQ(t.n(), 64);
  auto w = lapack::bisect_all(64, t.d.data(), t.e.data());
  // Symmetric grid (nx == ny) has eigenvalue multiplicities: count near
  // duplicates.
  index_t dups = 0;
  for (std::size_t i = 1; i < w.size(); ++i)
    if (std::fabs(w[i] - w[i - 1]) < 1e-8) ++dups;
  EXPECT_GT(dups, 10);
}

TEST(Application, SuiteRespectsCap) {
  auto suite = application_suite(300);
  EXPECT_GE(suite.size(), 4u);
  for (const auto& m : suite) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_LE(m.matrix.n(), 450);  // glued wilkinson rounds to whole blocks
    EXPECT_GE(m.matrix.n(), 2);
  }
}

TEST(Application, SuiteDeterministic) {
  auto a = application_suite(500, 7);
  auto b = application_suite(500, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].matrix.d, b[i].matrix.d);
    EXPECT_EQ(a[i].matrix.e, b[i].matrix.e);
  }
}

}  // namespace
}  // namespace dnc::matgen
