// Concurrency stress for the metrics registry, run under ThreadSanitizer by
// the `runtime`-labeled CI job: many writer threads hammer counters and
// histograms (racing first-touch shard registration and lazy bucket-array
// allocation) while scraper threads merge the shards and registrars add new
// series. The assertions only check that nothing is lost -- the point of
// the test is that TSan sees no data race in the single-writer shard idiom.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dnc {
namespace {

namespace m = obs::metrics;

class MetricsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("DNC_METRICS");
    had_env_ = old != nullptr;
    old_env_ = old ? old : "";
    ::setenv("DNC_METRICS", "1", 1);
    m::reset_for_tests();
  }
  void TearDown() override {
    if (had_env_)
      ::setenv("DNC_METRICS", old_env_.c_str(), 1);
    else
      ::unsetenv("DNC_METRICS");
    m::reset_for_tests();
  }

  bool had_env_ = false;
  std::string old_env_;
};

TEST_F(MetricsStressTest, ConcurrentWritersScrapersAndRegistrars) {
  constexpr int kWriters = 8, kIters = 4000;
  m::Id c = m::register_metric(m::Kind::Counter, "stress_total", "", "t");
  m::Id h = m::register_metric(m::Kind::Histogram, "stress_hist", "", "t");
  m::Id g = m::register_metric(m::Kind::Gauge, "stress_gauge", "", "t");
  ASSERT_TRUE(c.valid());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        m::add(c);
        m::observe(h, 1e-4 * (1 + ((w * kIters + i) % 1000)));
        if (i % 64 == 0) m::set_gauge(g, static_cast<double>(i));
      }
    });
  // Two scrapers merge continuously while the writers write.
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s)
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        m::Snapshot snap = m::scrape();
        EXPECT_GE(snap.metrics.size(), 3u);
        (void)m::prometheus_text(snap);
      }
    });
  // A registrar keeps adding fresh series, racing the index map's lock.
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) {
      std::string labels = "shard=\"" + std::to_string(i % 16) + "\"";
      m::add(m::register_metric(m::Kind::Counter, "stress_dyn_total", labels, "t"));
    }
  });

  for (auto& t : threads) t.join();
  registrar.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : scrapers) t.join();

  // Writers are done: the final scrape must account for every recording.
  m::Snapshot snap = m::scrape();
  ASSERT_GE(snap.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.metrics[0].value, kWriters * kIters);
  EXPECT_EQ(snap.metrics[1].count, static_cast<std::uint64_t>(kWriters * kIters));
  std::uint64_t in_buckets = 0;
  for (const auto& [idx, cnt] : snap.metrics[1].buckets) in_buckets += cnt;
  EXPECT_EQ(in_buckets, snap.metrics[1].count);
  double dyn_total = 0;
  for (const auto& ms : snap.metrics)
    if (ms.name == "stress_dyn_total") dyn_total += ms.value;
  EXPECT_DOUBLE_EQ(dyn_total, 200.0);
}

TEST_F(MetricsStressTest, ShardsSurviveThreadExit) {
  m::Id c = m::register_metric(m::Kind::Counter, "exit_total", "", "t");
  for (int round = 0; round < 16; ++round) {
    std::thread t([&] { m::add(c, 1.0); });
    t.join();
    // Scrape between thread lifetimes: exited threads' shards must still
    // contribute (the registry holds them via shared_ptr).
    EXPECT_DOUBLE_EQ(m::scrape().metrics[0].value, round + 1.0);
  }
}

}  // namespace
}  // namespace dnc
