#include "runtime/trace.hpp"

#include <gtest/gtest.h>

#include "common/timer.hpp"
#include "runtime/engine.hpp"

namespace dnc::rt {
namespace {

Trace make_trace() {
  Trace t;
  t.workers = 2;
  t.kind_names = {"Alpha", "Beta"};
  return t;
}

TEST(Trace, EmptyTraceRenders) {
  Trace t;
  EXPECT_EQ(t.makespan(), 0.0);
  EXPECT_EQ(t.total_busy(), 0.0);
  EXPECT_EQ(t.efficiency(), 1.0);
  EXPECT_EQ(t.ascii_gantt(), "(empty trace)\n");
  EXPECT_NE(t.kernel_summary(), "");  // header only, no crash
  const std::string js = t.chrome_trace_json();
  EXPECT_NE(js.find("process_name"), std::string::npos);
}

TEST(Trace, SingleInstantaneousEvent) {
  Trace t = make_trace();
  t.events.push_back({1, 0, 0, 0.5, 0.5});
  EXPECT_EQ(t.makespan(), 0.0);
  EXPECT_EQ(t.total_busy(), 0.0);
  // Zero-span traces must not divide by zero anywhere.
  const std::string g = t.ascii_gantt(10);
  EXPECT_NE(g.find("w00"), std::string::npos);
  EXPECT_NE(t.kernel_summary().find("Alpha"), std::string::npos);
}

TEST(Trace, GanttWidthClampedToOne) {
  Trace t = make_trace();
  t.events.push_back({1, 0, 0, 0.0, 1.0});
  const std::string g = t.ascii_gantt(0);  // nonpositive width must not crash
  EXPECT_NE(g.find('A'), std::string::npos);
}

TEST(Trace, NeverExecutedEventsExcludedEverywhere) {
  Trace t = make_trace();
  t.events.push_back({1, 0, 0, 1.0, 2.0});
  // worker -1 = submitted but never executed; its garbage stamps must not
  // skew any aggregate.
  t.events.push_back({2, 1, -1, 100.0, 900.0});
  EXPECT_DOUBLE_EQ(t.makespan(), 1.0);
  EXPECT_DOUBLE_EQ(t.total_busy(), 1.0);
  const auto by_kind = t.busy_by_kind();
  EXPECT_DOUBLE_EQ(by_kind[0], 1.0);
  EXPECT_DOUBLE_EQ(by_kind[1], 0.0);
  EXPECT_EQ(t.kernel_summary().find("Beta"), std::string::npos);
  EXPECT_EQ(t.chrome_trace_json().find("Beta"), std::string::npos);
}

TEST(Trace, ChromeJsonEscapesKindNames) {
  Trace t;
  t.workers = 1;
  t.kind_names = {"evil \"kind\"\\name"};
  t.events.push_back({1, 0, 0, 0.0, 1.0});
  const std::string js = t.chrome_trace_json();
  EXPECT_NE(js.find("evil \\\"kind\\\"\\\\name"), std::string::npos);
  EXPECT_NE(js.find("thread_name"), std::string::npos);
}

TEST(Trace, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// --- engine-provided scheduler observability ---

TEST(Trace, EngineFillsSchedulerObservability) {
  TaskGraph g;
  Runtime rt(g, 3);
  Handle h;
  for (int i = 0; i < 16; ++i)
    g.submit(0, [] {
      const double t0 = now_seconds();
      while (now_seconds() - t0 < 0.0002) {
      }
    }, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace t = rt.trace();

  ASSERT_EQ(t.worker_idle.size(), 3u);
  for (double d : t.worker_idle) EXPECT_GE(d, 0.0);

  // Every enqueue and dequeue produces a sample: at least 2 per task.
  EXPECT_GE(t.queue_samples.size(), 2u * 16u);
  for (const auto& s : t.queue_samples) EXPECT_GE(s.depth, 0);

  for (const auto& e : t.events) {
    ASSERT_GE(e.worker, 0);
    EXPECT_GT(e.t_ready, 0.0);
    EXPECT_LE(e.t_ready, e.t_start + 1e-12);
  }
}

TEST(Trace, EngineRecordsDependencyEdges) {
  TaskGraph g;
  Runtime rt(g, 2);
  Handle h;
  for (int i = 0; i < 4; ++i) g.submit(0, [] {}, {{&h, Access::InOut}});
  rt.wait_all();
  const Trace t = rt.trace();
  // A 4-task chain has exactly 3 edges, each (pred, succ) with pred < succ
  // in submission order.
  ASSERT_EQ(t.edges.size(), 3u);
  for (const auto& [p, s] : t.edges) EXPECT_LT(p, s);
}

TEST(Trace, AnnotationsSurfaceInTraceEvents) {
  TaskGraph g;
  Runtime rt(g, 1);
  Handle h;
  g.submit(0, [] {}, {{&h, Access::InOut}})->annotate(3, 128, 7);
  g.submit(0, [] {}, {{&h, Access::InOut}});
  rt.wait_all();
  const Trace t = rt.trace();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].level, 3);
  EXPECT_EQ(t.events[0].size, 128);
  EXPECT_EQ(t.events[0].panel, 7);
  EXPECT_EQ(t.events[1].level, -1);
  EXPECT_EQ(t.events[1].size, -1);
}

}  // namespace
}  // namespace dnc::rt
