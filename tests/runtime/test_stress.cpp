// Randomized-DAG stress test of the scheduler policies.
//
// The task-flow model promises sequential consistency with submission
// order: whatever interleaving the scheduler picks, every handle must end
// with the value a one-thread sequential interpretation produces, and
// every reader must observe exactly the value it would have seen in that
// interpretation. This file fuzzes DAGs mixing all four access modes
// (In / Out / InOut / GatherV) and executes each one under both policies
// (central queue, work stealing) at several thread counts, comparing the
// full observation log against a 1-thread central-policy reference run of
// the same program.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "runtime/engine.hpp"
#include "runtime/sched.hpp"

namespace dnc::rt {
namespace {

// One submitted task, replayable against any scheduler configuration.
struct Op {
  int handle = 0;
  Access mode = Access::In;
  long operand = 0;
};

// Generates a random program over `nhandles` handles. GatherV operations
// are commutative (atomic add) so any member order yields the same value;
// Out overwrites; InOut is deliberately non-commutative so ordering bugs
// show up as value mismatches, not just races.
std::vector<Op> random_program(Rng& rng, int ntasks, int nhandles) {
  std::vector<Op> prog(ntasks);
  for (Op& op : prog) {
    op.handle = static_cast<int>(rng.uniform_below(nhandles));
    switch (rng.uniform_below(4)) {
      case 0: op.mode = Access::In; break;
      case 1: op.mode = Access::Out; break;
      case 2: op.mode = Access::InOut; break;
      default: op.mode = Access::GatherV; break;
    }
    op.operand = static_cast<long>(rng.uniform_below(100));
  }
  return prog;
}

struct RunResult {
  std::vector<long> final_values;  // per handle
  std::vector<long> observed;     // per task; readers record, others -1
};

RunResult run_program(const std::vector<Op>& prog, int nhandles, int threads,
                      SchedPolicy policy) {
  TaskGraph g;
  std::vector<Handle> handles(nhandles);
  std::vector<std::atomic<long>> cells(nhandles);
  for (auto& c : cells) c.store(0);
  RunResult r;
  r.observed.assign(prog.size(), -1);

  Runtime rt(g, threads, policy);
  for (std::size_t t = 0; t < prog.size(); ++t) {
    const Op& op = prog[t];
    std::atomic<long>& cell = cells[op.handle];
    const long x = op.operand;
    switch (op.mode) {
      case Access::In:
        g.submit(0, [&r, &cell, t] { r.observed[t] = cell.load(); },
                 {{&handles[op.handle], Access::In}});
        break;
      case Access::Out:
        g.submit(0, [&cell, x] { cell.store(x); }, {{&handles[op.handle], Access::Out}});
        break;
      case Access::InOut:
        g.submit(0, [&cell, x] { cell.store(cell.load() * 3 + x); },
                 {{&handles[op.handle], Access::InOut}});
        break;
      case Access::GatherV:
        g.submit(0, [&cell, x] { cell.fetch_add(x); },
                 {{&handles[op.handle], Access::GatherV}});
        break;
    }
  }
  rt.wait_all();
  for (auto& c : cells) r.final_values.push_back(c.load());
  return r;
}

TEST(SchedStress, AllPoliciesMatchSequentialReference) {
  Rng rng(90210);
  for (int trial = 0; trial < 8; ++trial) {
    constexpr int kHandles = 10;
    const std::vector<Op> prog = random_program(rng, 400, kHandles);
    // The 1-thread central run IS the sequential interpretation: one queue,
    // FIFO within priority, single worker.
    const RunResult ref = run_program(prog, kHandles, 1, SchedPolicy::Central);
    for (const SchedPolicy policy : {SchedPolicy::Central, SchedPolicy::Steal}) {
      for (const int threads : {1, 2, 4}) {
        const RunResult got = run_program(prog, kHandles, threads, policy);
        EXPECT_EQ(got.final_values, ref.final_values)
            << "trial " << trial << " policy " << sched_policy_name(policy) << " threads "
            << threads;
        EXPECT_EQ(got.observed, ref.observed)
            << "trial " << trial << " policy " << sched_policy_name(policy) << " threads "
            << threads;
      }
    }
  }
}

TEST(SchedStress, StealPolicyWideFanOut) {
  // Many independent tasks from a single submitter: round-robin placement
  // spreads them over all deques, and every one must run exactly once.
  TaskGraph g;
  Runtime rt(g, 4, SchedPolicy::Steal);
  Handle h;
  std::atomic<long> count{0};
  for (int i = 0; i < 20000; ++i)
    g.submit(0, [&count] { count.fetch_add(1); }, {{&h, Access::GatherV}});
  rt.wait_all();
  EXPECT_EQ(count.load(), 20000);
  const Trace tr = rt.trace();
  long executed = 0;
  for (const auto& c : tr.sched_counters) executed += c.executed;
  EXPECT_EQ(executed, 20000);
}

TEST(SchedStress, StealPolicyDeepChainReusableWaitAll) {
  // A serial chain is the worst case for stealing (nothing to steal) and
  // exercises the sleep/wake path: each completion readies exactly one
  // task, possibly on a different worker's deque.
  TaskGraph g;
  Runtime rt(g, 4, SchedPolicy::Steal);
  Handle h;
  long value = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5000; ++i)
      g.submit(0, [&value] { ++value; }, {{&h, Access::InOut}});
    rt.wait_all();  // quiescence must hold between rounds
    EXPECT_EQ(value, 5000 * (round + 1));
  }
}

}  // namespace
}  // namespace dnc::rt
