// History-archive concurrency stress (runtime label -> runs under TSan in
// CI): many threads appending records concurrently -- as concurrent solves
// do via record_solve_telemetry -- must produce a file of whole,
// parseable lines with nothing lost, and the in-process ring must stay
// consistent under the same load.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/history.hpp"
#include "obs/report.hpp"

namespace dnc {
namespace {

namespace hist = obs::history;

TEST(HistoryStress, ConcurrentAppendsKeepLinesWholeAndComplete) {
  const std::string path = ::testing::TempDir() + "dnc_history_stress_" +
      std::to_string(::getpid()) + ".jsonl";
  std::remove(path.c_str());
  const char* saved = std::getenv("DNC_HISTORY");
  const std::string saved_v = saved ? saved : "";
  ::setenv("DNC_HISTORY", path.c_str(), 1);
  hist::refresh_from_env();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      hist::set_family_hint(("fam" + std::to_string(t)).c_str());
      for (int i = 0; i < kPerThread; ++i) {
        obs::SolveReport rep;
        rep.driver = "taskflow";
        rep.n = 1000 + t;
        rep.threads = 4;
        rep.seconds = 0.001 * (i + 1);
        rep.git_commit = "stress";
        hist::note(rep);  // ring + file, the telemetry path
      }
      hist::set_family_hint(nullptr);
    });
  }
  for (std::thread& th : threads) th.join();

  std::vector<hist::Record> recs;
  std::string err;
  long skipped = -1;
  ASSERT_TRUE(hist::load_file(path, recs, &err, &skipped)) << err;
  EXPECT_EQ(skipped, 0) << "torn lines in the archive";
  EXPECT_EQ(recs.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Per-thread counts survived intact (no line lost or cross-written).
  for (int t = 0; t < kThreads; ++t) {
    long count = 0;
    for (const hist::Record& r : recs)
      if (r.n == 1000 + t) ++count;
    EXPECT_EQ(count, kPerThread) << "thread " << t;
  }
  EXPECT_GT(hist::ring_size(), 0u);

  std::remove(path.c_str());
  if (saved)
    ::setenv("DNC_HISTORY", saved_v.c_str(), 1);
  else
    ::unsetenv("DNC_HISTORY");
  hist::reset_for_tests();
}

}  // namespace
}  // namespace dnc
