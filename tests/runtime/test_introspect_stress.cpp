// Concurrency stress for the live introspection endpoint, run under the
// `runtime` label so CI exercises it with ThreadSanitizer under both
// scheduler policies: scraper threads hammer /metrics, /varz and /healthz
// over real sockets while taskflow solves keep the metrics writers hot.
// Every response must be 200 with a well-formed body -- a torn scrape or a
// data race is the failure mode this guards against.
//
// Deliberately absent: the sampling profiler. Its SIGPROF timers are
// covered by tests/obs (not built with TSan); mixing asynchronous signals
// into the TSan run would test the sanitizer's signal handling, not ours.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "obs/httpd.hpp"
#include "obs/metrics.hpp"

namespace dnc {
namespace {

namespace hd = obs::httpd;
namespace m = obs::metrics;

TEST(IntrospectStress, ConcurrentScrapesDuringSolves) {
  const char* old_metrics = std::getenv("DNC_METRICS");
  const std::string saved = old_metrics ? old_metrics : "";
  ::setenv("DNC_METRICS", "1", 1);
  m::reset_for_tests();
  hd::stop_for_tests();
  ASSERT_TRUE(hd::start("127.0.0.1", 0));
  const std::uint16_t port = hd::bound_port();
  ASSERT_GT(port, 0);

  std::atomic<bool> solving{true};
  std::atomic<int> bad_responses{0};
  std::string last_varz;
  std::mutex varz_mu;

  // Seed the registry with one synchronous solve so even the very first
  // scrape sees a non-empty snapshot; the background solves then keep the
  // writers hot while the scrapers run.
  matgen::Tridiag seed = matgen::table3_matrix(4, 512);
  {
    std::vector<double> d = seed.d, e = seed.e;
    Matrix v;
    dc::Options opt;
    opt.threads = 4;
    dc::stedc_taskflow(seed.n(), d.data(), e.data(), v, opt, nullptr);
  }

  const char* targets[] = {"/metrics", "/varz", "/healthz"};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&, s] {
      for (int i = 0; i < 12; ++i) {
        int status = 0;
        std::string body, err;
        if (!hd::http_get("127.0.0.1", port, targets[(s + i) % 3], status, body, &err) ||
            status != 200 || body.empty()) {
          bad_responses.fetch_add(1);
          continue;
        }
        if (std::string(targets[(s + i) % 3]) == "/varz") {
          std::lock_guard<std::mutex> lk(varz_mu);
          last_varz = body;
        }
      }
    });
  }

  // Writers: repeated multi-threaded solves record metrics + telemetry the
  // whole time the scrapers run.
  std::thread solver([&] {
    matgen::Tridiag t = matgen::table3_matrix(4, 512);
    dc::Options opt;
    opt.threads = 4;
    while (solving.load()) {
      std::vector<double> d = t.d, e = t.e;
      Matrix v;
      dc::stedc_taskflow(t.n(), d.data(), e.data(), v, opt, nullptr);
    }
  });

  for (auto& th : scrapers) th.join();
  solving.store(false);
  solver.join();

  EXPECT_EQ(bad_responses.load(), 0);
  // The last /varz scraped mid-run must be parseable dnc-metrics-v1 JSON.
  ASSERT_FALSE(last_varz.empty());
  m::Snapshot snap;
  std::string err;
  EXPECT_TRUE(m::parse_snapshot(last_varz, snap, &err)) << err;
  EXPECT_FALSE(snap.metrics.empty());

  hd::stop_for_tests();
  if (!saved.empty())
    ::setenv("DNC_METRICS", saved.c_str(), 1);
  else
    ::unsetenv("DNC_METRICS");
  m::reset_for_tests();
}

}  // namespace
}  // namespace dnc
