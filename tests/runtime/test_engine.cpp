#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"

namespace dnc::rt {
namespace {

TEST(Runtime, ExecutesAllTasks) {
  TaskGraph g;
  std::atomic<int> count{0};
  Runtime rt(g, 4);
  Handle h;
  for (int i = 0; i < 100; ++i)
    g.submit(0, [&] { count.fetch_add(1); }, {{&h, Access::GatherV}});
  rt.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(Runtime, RespectsChainOrder) {
  TaskGraph g;
  Runtime rt(g, 4);
  Handle h;
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 50; ++i) {
    g.submit(0,
             [&, i] {
               std::lock_guard<std::mutex> lk(mu);
               order.push_back(i);
             },
             {{&h, Access::InOut}});
  }
  rt.wait_all();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Runtime, ForkJoinPattern) {
  // writer -> N gatherv -> join: join must observe all gatherv effects.
  TaskGraph g;
  Runtime rt(g, 8);
  Handle h;
  std::vector<int> cells(64, 0);
  g.submit(0, [&] { std::fill(cells.begin(), cells.end(), 1); }, {{&h, Access::Out}});
  for (int i = 0; i < 64; ++i)
    g.submit(0, [&, i] { cells[i] *= 2; }, {{&h, Access::GatherV}});
  int sum = -1;
  g.submit(0,
           [&] {
             sum = 0;
             for (int c : cells) sum += c;
           },
           {{&h, Access::InOut}});
  rt.wait_all();
  EXPECT_EQ(sum, 128);
}

TEST(Runtime, DiamondDependency) {
  TaskGraph g;
  Runtime rt(g, 4);
  Handle a, b, c;
  std::atomic<int> stage{0};
  g.submit(0, [&] { stage = 1; }, {{&a, Access::Out}});
  std::atomic<bool> left_ok{false}, right_ok{false};
  g.submit(0, [&] { left_ok = (stage >= 1); }, {{&a, Access::In}, {&b, Access::Out}});
  g.submit(0, [&] { right_ok = (stage >= 1); }, {{&a, Access::In}, {&c, Access::Out}});
  std::atomic<bool> join_ok{false};
  g.submit(0, [&] { join_ok = left_ok && right_ok; }, {{&b, Access::In}, {&c, Access::In}});
  rt.wait_all();
  EXPECT_TRUE(join_ok.load());
}

TEST(Runtime, WaitAllReusable) {
  TaskGraph g;
  Runtime rt(g, 2);
  Handle h;
  std::atomic<int> count{0};
  g.submit(0, [&] { count.fetch_add(1); }, {{&h, Access::InOut}});
  rt.wait_all();
  EXPECT_EQ(count.load(), 1);
  g.submit(0, [&] { count.fetch_add(1); }, {{&h, Access::InOut}});
  rt.wait_all();
  EXPECT_EQ(count.load(), 2);
}

TEST(Runtime, EmptyGraphWaitReturns) {
  TaskGraph g;
  Runtime rt(g, 3);
  rt.wait_all();  // must not hang
  SUCCEED();
}

TEST(Runtime, RandomDagMatchesSequentialSemantics) {
  // Random DAGs over K handles: executing with many threads must produce
  // the same per-handle value as sequential interpretation of the
  // submission order (determinism of the task-flow model).
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    constexpr int kHandles = 6;
    TaskGraph g;
    std::vector<Handle> handles(kHandles);
    // Each handle value is a sequence of "writes"; readers hash them.
    struct Cell {
      std::mutex mu;
      long value = 0;
    };
    std::vector<Cell> cells(kHandles);
    std::vector<long> expected(kHandles, 0);

    Runtime rt(g, 4);
    const int ntasks = 60;
    for (int t = 0; t < ntasks; ++t) {
      const int hidx = static_cast<int>(rng.uniform_below(kHandles));
      const int op = static_cast<int>(rng.uniform_below(3));
      const long operand = static_cast<long>(rng.uniform_below(100));
      if (op == 0) {
        // overwrite
        expected[hidx] = operand;
        g.submit(0,
                 [&cells, hidx, operand] {
                   std::lock_guard<std::mutex> lk(cells[hidx].mu);
                   cells[hidx].value = operand;
                 },
                 {{&handles[hidx], Access::Out}});
      } else {
        // accumulate (InOut) -- order matters for the mix below
        expected[hidx] = expected[hidx] * 3 + operand;
        g.submit(0,
                 [&cells, hidx, operand] {
                   std::lock_guard<std::mutex> lk(cells[hidx].mu);
                   cells[hidx].value = cells[hidx].value * 3 + operand;
                 },
                 {{&handles[hidx], Access::InOut}});
      }
    }
    rt.wait_all();
    for (int h = 0; h < kHandles; ++h) EXPECT_EQ(cells[h].value, expected[h]) << "trial " << trial;
  }
}

TEST(Runtime, GatherVCommutativeSum) {
  // GatherV members may run in any order; a commutative reduction must be
  // exact regardless.
  TaskGraph g;
  Runtime rt(g, 8);
  Handle h;
  std::atomic<long> acc{0};
  g.submit(0, [&] { acc = 1000; }, {{&h, Access::Out}});
  for (int i = 1; i <= 100; ++i)
    g.submit(0, [&, i] { acc.fetch_add(i); }, {{&h, Access::GatherV}});
  long result = 0;
  g.submit(0, [&] { result = acc.load(); }, {{&h, Access::In}});
  rt.wait_all();
  EXPECT_EQ(result, 1000 + 5050);
}

TEST(Runtime, TraceRecordsEverything) {
  TaskGraph g;
  const KindId k = g.register_kind("work");
  Runtime rt(g, 2);
  Handle h;
  for (int i = 0; i < 10; ++i)
    g.submit(k, [] {}, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace tr = rt.trace();
  EXPECT_EQ(tr.events.size(), 10u);
  for (const auto& e : tr.events) {
    EXPECT_GE(e.worker, 0);
    EXPECT_LE(e.t_start, e.t_end);
  }
  EXPECT_GE(tr.makespan(), 0.0);
}

}  // namespace
}  // namespace dnc::rt
