#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "runtime/dot.hpp"
#include "runtime/engine.hpp"

namespace dnc::rt {
namespace {

// Builds a graph where every task sleeps ~1ms so simulated durations are
// meaningful.
void busy_work() {
  const double t0 = dnc::now_seconds();
  while (dnc::now_seconds() - t0 < 0.0005) {
  }
}

TEST(Simulator, ChainHasNoSpeedup) {
  TaskGraph g;
  Runtime rt(g, 1);
  Handle h;
  for (int i = 0; i < 20; ++i) g.submit(0, busy_work, {{&h, Access::InOut}});
  rt.wait_all();
  const auto s1 = simulate_schedule(g, 1);
  const auto s8 = simulate_schedule(g, 8);
  EXPECT_NEAR(s8.makespan, s1.makespan, 1e-9);
  EXPECT_NEAR(s1.critical_path, s1.total_work, 1e-9);
}

TEST(Simulator, IndependentTasksScaleLinearly) {
  TaskGraph g;
  Runtime rt(g, 1);
  Handle h;
  for (int i = 0; i < 64; ++i) g.submit(0, busy_work, {{&h, Access::GatherV}});
  rt.wait_all();
  const auto s1 = simulate_schedule(g, 1);
  const auto s8 = simulate_schedule(g, 8);
  // Measured busy-wait durations vary (especially on a loaded single-core
  // container), so allow generous slack around the ideal 8x.
  EXPECT_GT(s1.makespan / s8.makespan, 4.0);
  EXPECT_LT(s1.makespan / s8.makespan, 8.2);
}

TEST(Simulator, MakespanBounds) {
  // For any graph: critical_path <= makespan <= total_work, and
  // makespan >= total_work / P.
  TaskGraph g;
  Runtime rt(g, 1);
  Handle a, b;
  for (int i = 0; i < 10; ++i) g.submit(0, busy_work, {{&a, Access::InOut}});
  for (int i = 0; i < 30; ++i) g.submit(0, busy_work, {{&b, Access::GatherV}});
  rt.wait_all();
  for (int p : {1, 2, 4, 16}) {
    const auto s = simulate_schedule(g, p);
    EXPECT_GE(s.makespan + 1e-12, s.critical_path);
    EXPECT_LE(s.makespan, s.total_work + 1e-12);
    EXPECT_GE(s.makespan + 1e-12, s.total_work / p);
  }
}

TEST(Simulator, MemoryBoundTasksStagnate) {
  TaskGraph g;
  const KindId copy = g.register_kind("copy", /*memory_bound=*/true);
  Runtime rt(g, 1);
  Handle h;
  for (int i = 0; i < 64; ++i) g.submit(copy, busy_work, {{&h, Access::GatherV}});
  rt.wait_all();
  MachineModel mm;  // 2 sockets x 4 streams
  const auto s1 = simulate_schedule(g, 1, mm);
  const auto s16 = simulate_schedule(g, 16, mm);
  const double speedup = s1.makespan / s16.makespan;
  // Bandwidth-capped: cannot reach anywhere near 16x.
  EXPECT_LT(speedup, 10.0);
  EXPECT_GT(speedup, 2.0);
}

TEST(Simulator, SingleWorkerEqualsTotalWork) {
  TaskGraph g;
  Runtime rt(g, 1);
  Handle a;
  for (int i = 0; i < 15; ++i) g.submit(0, busy_work, {{&a, Access::GatherV}});
  rt.wait_all();
  const auto s = simulate_schedule(g, 1);
  EXPECT_NEAR(s.makespan, s.total_work, 1e-9);
  EXPECT_NEAR(s.efficiency, 1.0, 1e-9);
}

TEST(Simulator, InvalidWorkerCountThrows) {
  TaskGraph g;
  EXPECT_THROW(simulate_schedule(g, 0), dnc::InvalidArgument);
}

TEST(Dot, ExportContainsNodesAndEdges) {
  TaskGraph g;
  const KindId k = g.register_kind("LAED4", false, "#3333ff");
  Runtime rt(g, 1);
  Handle h;
  g.submit(k, [] {}, {{&h, Access::Out}});
  g.submit(k, [] {}, {{&h, Access::In}});
  rt.wait_all();
  const std::string dot = export_dot(g, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("LAED4"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("#3333ff"), std::string::npos);
}

TEST(TraceRender, GanttAndSummary) {
  TaskGraph g;
  const KindId k = g.register_kind("UpdateVect");
  Runtime rt(g, 2);
  Handle h;
  for (int i = 0; i < 8; ++i) g.submit(k, busy_work, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace tr = rt.trace();
  const std::string gantt = tr.ascii_gantt(60);
  EXPECT_NE(gantt.find("w00"), std::string::npos);
  const std::string summary = tr.kernel_summary();
  EXPECT_NE(summary.find("UpdateVect"), std::string::npos);
}

TEST(TraceRender, ChromeTraceJson) {
  TaskGraph g;
  const KindId k = g.register_kind("LAED4");
  Runtime rt(g, 2);
  Handle h;
  for (int i = 0; i < 4; ++i) g.submit(k, busy_work, {{&h, Access::GatherV}});
  rt.wait_all();
  const std::string json = rt.trace().chrome_trace_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"LAED4\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Each of the 4 tasks appears once.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("LAED4", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TraceRender, SimulatedScheduleExportable) {
  TaskGraph g;
  Runtime rt(g, 1);
  Handle h;
  for (int i = 0; i < 6; ++i) g.submit(0, busy_work, {{&h, Access::GatherV}});
  rt.wait_all();
  const auto s = simulate_schedule(g, 3);
  EXPECT_EQ(s.schedule.events.size(), 6u);
  EXPECT_EQ(s.schedule.workers, 3);
  const std::string json = s.schedule.chrome_trace_json();
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

}  // namespace
}  // namespace dnc::rt
