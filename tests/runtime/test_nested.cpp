// Nested task spawning (Scheduler::spawn_and_wait): correctness of the
// help-first join under both policies and any thread count, trace
// attribution of child events under their parent, and the analysis
// contract that child slices are skipped so nested traces replay
// bit-for-bit like their flat equivalents. The whole file runs under the
// ThreadSanitizer CI job (runtime label) and under the DNC_SCHED=central /
// steal re-run configurations.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/analysis.hpp"
#include "runtime/engine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"

namespace dnc::rt {
namespace {

double child_work(int parent, long child) {
  double acc = 0.0;
  for (int i = 0; i < 50; ++i) acc += std::sin(parent * 31 + child * 7 + i);
  return acc;
}

/// What the nested run must reproduce exactly.
std::vector<double> reference(int parents, long children) {
  std::vector<double> out(static_cast<std::size_t>(parents) * children);
  for (int p = 0; p < parents; ++p)
    for (long c = 0; c < children; ++c)
      out[static_cast<std::size_t>(p) * children + c] = child_work(p, c);
  return out;
}

TEST(NestedSpawn, StressMatchesSequentialReference) {
  constexpr int kParents = 16;
  constexpr long kChildren = 24;
  const std::vector<double> want = reference(kParents, kChildren);
  for (SchedPolicy pol : {SchedPolicy::Central, SchedPolicy::Steal}) {
    for (int threads : {1, 2, 4}) {
      std::vector<double> out(want.size(), 0.0);
      TaskGraph g;
      const KindId kind = g.register_kind("Work");
      Runtime rt(g, threads, pol);
      Handle h;
      for (int p = 0; p < kParents; ++p) {
        g.submit(kind,
                 [&, p] {
                   spawn_and_wait("panel", kChildren, [&, p](long c) {
                     out[static_cast<std::size_t>(p) * kChildren + c] = child_work(p, c);
                   });
                 },
                 {{&h, Access::GatherV}});
      }
      rt.wait_all();
      EXPECT_EQ(out, want) << "policy " << sched_policy_name(pol) << ", " << threads
                           << " threads";
    }
  }
}

TEST(NestedSpawn, TwoLevelNesting) {
  // A child may itself spawn grandchildren: the join counters live on
  // separate stack frames, and the helping loop must drain both levels.
  constexpr long kMid = 6, kLeaf = 8;
  std::vector<std::atomic<int>> hits(kMid * kLeaf);
  for (auto& h : hits) h.store(0);
  for (SchedPolicy pol : {SchedPolicy::Central, SchedPolicy::Steal}) {
    for (auto& h : hits) h.store(0);
    TaskGraph g;
    const KindId kind = g.register_kind("Outer");
    Runtime rt(g, 4, pol);
    Handle h;
    g.submit(kind,
             [&] {
               spawn_and_wait("mid", kMid, [&](long m) {
                 spawn_and_wait("leaf", kLeaf, [&, m](long l) {
                   hits[static_cast<std::size_t>(m) * kLeaf + l].fetch_add(1);
                 });
               });
             },
             {{&h, Access::InOut}});
    rt.wait_all();
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "slot " << i << " policy " << sched_policy_name(pol);
  }
}

TEST(NestedSpawn, SequentialFallbackOffRuntime) {
  ASSERT_EQ(Scheduler::current(), nullptr);
  std::vector<long> order;
  spawn_and_wait("x", 5, [&](long i) { order.push_back(i); });
  const std::vector<long> want{0, 1, 2, 3, 4};
  EXPECT_EQ(order, want);
}

TEST(NestedSpawn, ChildEventsNestUnderParentWithSuffixedKind) {
  constexpr long kChildren = 8;
  TaskGraph g;
  const KindId kind = g.register_kind("UpdateVect");
  Runtime rt(g, 2, SchedPolicy::Steal);
  Handle h;
  TaskNode* parent = g.submit(
      kind, [&] { spawn_and_wait("panel", kChildren, [&](long) { (void)child_work(1, 2); }); },
      {{&h, Access::InOut}});
  const std::uint64_t parent_id = parent->id;
  rt.wait_all();
  const Trace t = rt.trace();

  int children = 0;
  const TraceEvent* parent_ev = nullptr;
  for (const TraceEvent& e : t.events) {
    if (e.is_child()) {
      ++children;
      EXPECT_EQ(static_cast<std::uint64_t>(e.parent), parent_id);
      ASSERT_LT(static_cast<std::size_t>(e.kind), t.kind_names.size());
      EXPECT_EQ(t.kind_names[static_cast<std::size_t>(e.kind)], "UpdateVect/panel");
    } else if (e.task_id == parent_id) {
      parent_ev = &e;
    }
  }
  EXPECT_EQ(children, kChildren);
  ASSERT_NE(parent_ev, nullptr);
  // The parent's duration is inclusive of helped children; nested records
  // how much of it was child execution, and self_duration removes it.
  EXPECT_GT(parent_ev->nested, 0.0);
  EXPECT_GE(parent_ev->t_end - parent_ev->t_start, parent_ev->nested);
  EXPECT_GE(parent_ev->self_duration(), 0.0);
}

TEST(NestedReplay, BitForBitEqualToChildStrippedTrace) {
  // Analyses treat the parent duration as inclusive and skip child slices,
  // so a nested trace must replay exactly like the same trace with the
  // child events removed.
  TaskGraph g;
  const KindId kind = g.register_kind("Work");
  Runtime rt(g, 4, SchedPolicy::Steal);
  Handle chainh;
  std::vector<Handle> hs(6);
  for (int i = 0; i < 6; ++i) {
    g.submit(kind,
             [&, i] {
               spawn_and_wait("panel", 4, [&](long c) { (void)child_work(i, c); });
             },
             {{&chainh, Access::GatherV}, {&hs[static_cast<std::size_t>(i)], Access::InOut}});
  }
  g.submit(kind, [] {}, {{&chainh, Access::InOut}});
  rt.wait_all();
  const Trace full = rt.trace();

  Trace stripped = full;
  stripped.events.clear();
  for (const TraceEvent& e : full.events)
    if (!e.is_child()) stripped.events.push_back(e);
  ASSERT_LT(stripped.events.size(), full.events.size());

  for (int workers : {1, 2, 4}) {
    const SimulationResult a = obs::replay_trace(full, workers);
    const SimulationResult b = obs::replay_trace(stripped, workers);
    EXPECT_EQ(a.makespan, b.makespan) << workers << " workers";
    EXPECT_EQ(a.total_work, b.total_work) << workers << " workers";
    EXPECT_EQ(a.critical_path, b.critical_path) << workers << " workers";
  }
}

TEST(StealLocality, ClassCountersPartitionSuccessfulSteals) {
  // Every successful steal is classified against exactly one locality
  // class, whatever topology the machine (or DNC_TOPOLOGY) reports.
  TaskGraph g;
  const KindId kind = g.register_kind("Work");
  Runtime rt(g, 4, SchedPolicy::Steal);
  Handle h;
  for (int i = 0; i < 400; ++i)
    g.submit(kind, [i] { (void)child_work(i, 0); }, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace t = rt.trace();
  long steals = 0, by_class = 0;
  for (const auto& c : t.sched_counters) {
    steals += c.steals;
    by_class += c.steals_same_l3 + c.steals_same_socket + c.steals_cross_socket;
  }
  EXPECT_EQ(steals, by_class);
}

}  // namespace
}  // namespace dnc::rt
