#include "runtime/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dnc::rt {
namespace {

// Helper: collect predecessor ids of a node.
std::vector<std::uint64_t> preds(const TaskNode* n) {
  auto p = n->pred_ids;
  std::sort(p.begin(), p.end());
  return p;
}

TEST(TaskGraph, NoDepsNoPreds) {
  TaskGraph g;
  Handle h("a");
  auto* t = g.submit(0, {}, {{&h, Access::In}});
  EXPECT_TRUE(preds(t).empty());
}

TEST(TaskGraph, ReadAfterWrite) {
  TaskGraph g;
  Handle h;
  auto* w = g.submit(0, {}, {{&h, Access::Out}});
  auto* r = g.submit(0, {}, {{&h, Access::In}});
  EXPECT_EQ(preds(r), std::vector<std::uint64_t>{w->id});
}

TEST(TaskGraph, WriteAfterRead) {
  TaskGraph g;
  Handle h;
  auto* w1 = g.submit(0, {}, {{&h, Access::Out}});
  auto* r1 = g.submit(0, {}, {{&h, Access::In}});
  auto* r2 = g.submit(0, {}, {{&h, Access::In}});
  auto* w2 = g.submit(0, {}, {{&h, Access::InOut}});
  auto p = preds(w2);
  EXPECT_EQ(p.size(), 3u);  // both readers + previous writer
  EXPECT_TRUE(std::find(p.begin(), p.end(), r1->id) != p.end());
  EXPECT_TRUE(std::find(p.begin(), p.end(), r2->id) != p.end());
  EXPECT_TRUE(std::find(p.begin(), p.end(), w1->id) != p.end());
}

TEST(TaskGraph, ConcurrentReaders) {
  TaskGraph g;
  Handle h;
  auto* w = g.submit(0, {}, {{&h, Access::Out}});
  auto* r1 = g.submit(0, {}, {{&h, Access::In}});
  auto* r2 = g.submit(0, {}, {{&h, Access::In}});
  // Readers depend only on the writer, not on each other.
  EXPECT_EQ(preds(r1), std::vector<std::uint64_t>{w->id});
  EXPECT_EQ(preds(r2), std::vector<std::uint64_t>{w->id});
}

TEST(TaskGraph, GatherVMembersCommute) {
  TaskGraph g;
  Handle h;
  auto* w = g.submit(0, {}, {{&h, Access::InOut}});
  auto* g1 = g.submit(0, {}, {{&h, Access::GatherV}});
  auto* g2 = g.submit(0, {}, {{&h, Access::GatherV}});
  auto* g3 = g.submit(0, {}, {{&h, Access::GatherV}});
  // All group members depend only on the writer (constant dependency count,
  // the paper's point).
  EXPECT_EQ(preds(g1), std::vector<std::uint64_t>{w->id});
  EXPECT_EQ(preds(g2), std::vector<std::uint64_t>{w->id});
  EXPECT_EQ(preds(g3), std::vector<std::uint64_t>{w->id});
}

TEST(TaskGraph, JoinAfterGatherVWaitsForAll) {
  TaskGraph g;
  Handle h;
  auto* g1 = g.submit(0, {}, {{&h, Access::GatherV}});
  auto* g2 = g.submit(0, {}, {{&h, Access::GatherV}});
  auto* join = g.submit(0, {}, {{&h, Access::InOut}});
  auto p = preds(join);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(std::find(p.begin(), p.end(), g1->id) != p.end());
  EXPECT_TRUE(std::find(p.begin(), p.end(), g2->id) != p.end());
}

TEST(TaskGraph, ReaderClosesGatherGroup) {
  TaskGraph g;
  Handle h;
  auto* g1 = g.submit(0, {}, {{&h, Access::GatherV}});
  auto* r = g.submit(0, {}, {{&h, Access::In}});
  auto* g2 = g.submit(0, {}, {{&h, Access::GatherV}});
  EXPECT_EQ(preds(r), std::vector<std::uint64_t>{g1->id});
  // g2 must be ordered after the reader (it starts a fresh group).
  auto p = preds(g2);
  EXPECT_TRUE(std::find(p.begin(), p.end(), r->id) != p.end());
}

TEST(TaskGraph, IndependentHandlesIndependentTasks) {
  TaskGraph g;
  Handle h1, h2;
  g.submit(0, {}, {{&h1, Access::Out}});
  auto* t2 = g.submit(0, {}, {{&h2, Access::Out}});
  EXPECT_TRUE(preds(t2).empty());
}

TEST(TaskGraph, MultiHandleDedup) {
  TaskGraph g;
  Handle h1, h2;
  auto* w = g.submit(0, {}, {{&h1, Access::Out}, {&h2, Access::Out}});
  auto* r = g.submit(0, {}, {{&h1, Access::In}, {&h2, Access::In}});
  EXPECT_EQ(preds(r), std::vector<std::uint64_t>{w->id});  // deduplicated
}

TEST(TaskGraph, KindsRegistry) {
  TaskGraph g;
  const KindId k = g.register_kind("UpdateVect", false, "#ff0000");
  Handle h;
  auto* t = g.submit(k, {}, {{&h, Access::Out}});
  EXPECT_EQ(g.kind_of(*t).name, "UpdateVect");
  EXPECT_FALSE(g.kind_of(*t).memory_bound);
}

TEST(TaskGraph, ChainHasLinearDeps) {
  TaskGraph g;
  Handle h;
  TaskNode* prev = nullptr;
  for (int i = 0; i < 10; ++i) {
    auto* t = g.submit(0, {}, {{&h, Access::InOut}});
    if (prev) EXPECT_EQ(preds(t), std::vector<std::uint64_t>{prev->id});
    prev = t;
  }
  EXPECT_EQ(g.task_count(), 10u);
}

}  // namespace
}  // namespace dnc::rt
