// Priority semantics across the engine, the simulator, and the obs layer.
//
// Priorities are hints, not barriers: a higher-priority ready task launches
// before a lower-priority one when a worker picks its next task, but an
// already-running task is never preempted. These tests pin down the three
// places the priority must mean the same thing: both engine policies, the
// DAG simulator, and the trace-driven replay/critical-path analytics.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/analysis.hpp"
#include "runtime/engine.hpp"
#include "runtime/sched.hpp"
#include "runtime/simulator.hpp"

namespace dnc::rt {
namespace {

TEST(Priority, HigherPriorityRunsFirstOnSingleWorker) {
  // Gate a single worker on a blocker task, queue tasks with distinct
  // priorities while it is blocked, then release: the backlog must drain
  // highest-priority-first under both policies.
  for (const SchedPolicy policy : {SchedPolicy::Central, SchedPolicy::Steal}) {
    TaskGraph g;
    Runtime rt(g, 1, policy);
    Handle gate;
    std::atomic<bool> started{false}, release{false};
    g.submit(0,
             [&] {
               started = true;
               while (!release.load()) std::this_thread::yield();
             },
             {{&gate, Access::Out}});
    while (!started.load()) std::this_thread::yield();

    std::vector<int> order;
    std::mutex mu;
    std::vector<Handle> slots(4);
    const int prios[4] = {1, 7, 3, 5};
    for (int i = 0; i < 4; ++i) {
      g.submit(0,
               [&, i] {
                 std::lock_guard<std::mutex> lk(mu);
                 order.push_back(prios[i]);
               },
               {{&gate, Access::In}, {&slots[i], Access::Out}}, prios[i]);
    }
    release = true;
    rt.wait_all();
    const std::vector<int> want{7, 5, 3, 1};
    EXPECT_EQ(order, want) << "policy " << sched_policy_name(policy);
  }
}

TEST(Priority, TraceRecordsTaskPriority) {
  TaskGraph g;
  Runtime rt(g, 2, SchedPolicy::Steal);
  Handle h;
  g.submit(0, [] {}, {{&h, Access::Out}}, 9);
  g.submit(0, [] {}, {{&h, Access::In}}, 4);
  rt.wait_all();
  const Trace tr = rt.trace();
  ASSERT_EQ(tr.events.size(), 2u);
  EXPECT_EQ(tr.events[0].priority, 9);
  EXPECT_EQ(tr.events[1].priority, 4);
  EXPECT_EQ(tr.sched_policy, std::string("steal"));
}

// Fork graph whose two branches become ready simultaneously: under the
// Priority policy the simulator must launch the high-priority branch
// first; under Fifo, submission order wins.
TEST(Priority, SimulatorOrdersCriticalJoinFirst) {
  TaskGraph g;
  const KindId klow = g.register_kind("low");
  const KindId khigh = g.register_kind("high");
  Handle a, b;
  Runtime rt(g, 1, SchedPolicy::Central);
  const auto spin = [] {
    const double t0 = now_seconds();
    while (now_seconds() - t0 < 1e-4) {
    }
  };
  g.submit(0, spin, {{&a, Access::Out}, {&b, Access::Out}});
  g.submit(klow, spin, {{&a, Access::In}}, 0);   // submitted first...
  g.submit(khigh, spin, {{&b, Access::In}}, 5);  // ...but outranked
  rt.wait_all();

  const auto start_of = [&](const SimulationResult& s, KindId k) {
    for (const auto& e : s.schedule.events)
      if (e.kind == k) return e.t_start;
    ADD_FAILURE() << "kind " << k << " not in schedule";
    return -1.0;
  };
  const SimulationResult pri = simulate_schedule(g, 1, MachineModel{}, SimPolicy::Priority);
  EXPECT_LT(start_of(pri, khigh), start_of(pri, klow));
  const SimulationResult fifo = simulate_schedule(g, 1, MachineModel{}, SimPolicy::Fifo);
  EXPECT_LT(start_of(fifo, klow), start_of(fifo, khigh));
}

TEST(Priority, EngineSimulatorReplayAgreementBothPolicies) {
  // The PR-3 cross-check, now under the policy seam: on the same completed
  // graph, obs::critical_path(trace) must equal simulate_schedule's
  // critical path exactly (same durations, same arithmetic), and
  // obs::replay_trace must reproduce simulate_schedule's makespan for both
  // ready-queue disciplines -- whichever engine policy produced the trace.
  for (const SchedPolicy policy : {SchedPolicy::Central, SchedPolicy::Steal}) {
    TaskGraph g;
    const KindId mem = g.register_kind("copy", true);
    Runtime rt(g, 2, policy);
    std::vector<Handle> handles(6);
    Rng rng(policy == SchedPolicy::Central ? 11 : 22);
    for (int t = 0; t < 120; ++t) {
      std::vector<TaskDep> deps;
      const int na = 1 + static_cast<int>(rng.uniform_below(3));
      for (int a = 0; a < na; ++a)
        deps.push_back({&handles[rng.uniform_below(6)], static_cast<Access>(rng.uniform_below(4))});
      g.submit(rng.uniform_below(4) == 0 ? mem : 0,
               [] {
                 const double t0 = now_seconds();
                 while (now_seconds() - t0 < 2e-5) {
                 }
               },
               deps, static_cast<int>(rng.uniform_below(8)));
    }
    rt.wait_all();
    const Trace tr = rt.trace();

    const obs::CriticalPath cp = obs::critical_path(tr);
    for (const int w : {1, 4, 16}) {
      for (const SimPolicy sp : {SimPolicy::Fifo, SimPolicy::Priority}) {
        const SimulationResult sim = simulate_schedule(g, w, MachineModel{}, sp);
        EXPECT_NEAR(cp.length, sim.critical_path, 1e-12)
            << sched_policy_name(policy) << " w=" << w;
        const SimulationResult rep = obs::replay_trace(tr, w, MachineModel{}, sp);
        EXPECT_NEAR(rep.makespan, sim.makespan, 1e-12)
            << sched_policy_name(policy) << " w=" << w;
      }
    }
  }
}

TEST(Priority, ZeroPrioritySimulationIsFifo) {
  // All-zero priorities must make Priority and Fifo bit-for-bit identical
  // (the backward-compatibility guarantee for pre-seam traces).
  TaskGraph g;
  Runtime rt(g, 2);
  std::vector<Handle> handles(4);
  Rng rng(5150);
  for (int t = 0; t < 80; ++t)
    g.submit(0,
             [] {
               const double t0 = now_seconds();
               while (now_seconds() - t0 < 1e-5) {
               }
             },
             {{&handles[rng.uniform_below(4)], static_cast<Access>(rng.uniform_below(4))}});
  rt.wait_all();
  for (const int w : {2, 8}) {
    const SimulationResult a = simulate_schedule(g, w, MachineModel{}, SimPolicy::Priority);
    const SimulationResult b = simulate_schedule(g, w, MachineModel{}, SimPolicy::Fifo);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.schedule.events.size(), b.schedule.events.size());
    for (std::size_t i = 0; i < a.schedule.events.size(); ++i) {
      EXPECT_EQ(a.schedule.events[i].task_id, b.schedule.events[i].task_id);
      EXPECT_EQ(a.schedule.events[i].t_start, b.schedule.events[i].t_start);
    }
  }
}

}  // namespace
}  // namespace dnc::rt
