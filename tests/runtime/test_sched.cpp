// Unit tests of the scheduler building blocks: the priority deque, the
// self-decimating sample series, policy parsing / environment selection,
// and the per-worker counters surfaced through the trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/sched.hpp"
#include "runtime/scheduler.hpp"

namespace dnc::rt {
namespace {

std::vector<TaskNode> make_nodes(const std::vector<int>& prios) {
  std::vector<TaskNode> nodes(prios.size());
  for (std::size_t i = 0; i < prios.size(); ++i) {
    nodes[i].id = i;
    nodes[i].priority = prios[i];
  }
  return nodes;
}

TEST(PrioDeque, PopsHighestPriorityFirst) {
  auto nodes = make_nodes({0, 5, 3, 5, 63, 1});
  PrioDeque q;
  for (auto& n : nodes) q.push(&n);
  EXPECT_EQ(q.size(), 6u);
  std::vector<int> got;
  while (!q.empty()) got.push_back(q.pop_oldest()->priority);
  const std::vector<int> want{63, 5, 5, 3, 1, 0};
  EXPECT_EQ(got, want);
}

TEST(PrioDeque, FifoVsLifoWithinBucket) {
  auto nodes = make_nodes({2, 2, 2});
  {
    PrioDeque q;
    for (auto& n : nodes) q.push(&n);
    // Thief side: oldest first.
    EXPECT_EQ(q.pop_oldest()->id, 0u);
    EXPECT_EQ(q.pop_oldest()->id, 1u);
    EXPECT_EQ(q.pop_oldest()->id, 2u);
  }
  {
    PrioDeque q;
    for (auto& n : nodes) q.push(&n);
    // Owner side: newest first (cache-warm LIFO).
    EXPECT_EQ(q.pop_newest()->id, 2u);
    EXPECT_EQ(q.pop_newest()->id, 1u);
    EXPECT_EQ(q.pop_newest()->id, 0u);
  }
}

TEST(PrioDeque, ClampsOutOfRangePriorities) {
  auto nodes = make_nodes({-7, 200, 10});
  PrioDeque q;
  for (auto& n : nodes) q.push(&n);
  EXPECT_EQ(q.pop_oldest()->priority, 200);  // clamped into bucket 63: still first
  EXPECT_EQ(q.pop_oldest()->priority, 10);
  EXPECT_EQ(q.pop_oldest()->priority, -7);  // bucket 0: last
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop_oldest(), nullptr);
  EXPECT_EQ(q.pop_newest(), nullptr);
}

TEST(SampledSeries, KeepsEverySampleBelowCap) {
  SampledSeries s(64);
  for (int i = 0; i < 50; ++i) s.push(i * 1.0, i);
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 50u);
  EXPECT_EQ(s.stride(), 1ull);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(snap[i].depth, i);
}

TEST(SampledSeries, DecimatesAtCapAndStaysBounded) {
  constexpr std::size_t kCap = 64;
  SampledSeries s(kCap);
  for (int i = 0; i < 100000; ++i) s.push(i * 1.0, i);
  const auto snap = s.snapshot();
  EXPECT_LE(snap.size(), kCap);
  EXPECT_GE(snap.size(), kCap / 4);  // decimation halves, never empties
  EXPECT_GT(s.stride(), 1ull);
  // Retained samples stay time-ordered and spread over the whole run.
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LT(snap[i - 1].t, snap[i].t);
  EXPECT_GT(snap.back().t, 50000.0);
}

TEST(SchedPolicyParse, NamesRoundTrip) {
  SchedPolicy p = SchedPolicy::Central;
  EXPECT_TRUE(parse_sched_policy("steal", p));
  EXPECT_EQ(p, SchedPolicy::Steal);
  EXPECT_TRUE(parse_sched_policy("central", p));
  EXPECT_EQ(p, SchedPolicy::Central);
  EXPECT_FALSE(parse_sched_policy("lifo", p));
  EXPECT_FALSE(parse_sched_policy("", p));
  EXPECT_FALSE(parse_sched_policy(nullptr, p));
  EXPECT_EQ(p, SchedPolicy::Central);  // failed parse leaves the value alone
  EXPECT_STREQ(sched_policy_name(SchedPolicy::Steal), "steal");
  EXPECT_STREQ(sched_policy_name(SchedPolicy::Central), "central");
}

TEST(SchedPolicyParse, EnvSelectsDefault) {
  // default_sched_policy re-reads the environment on every call, so the
  // override is visible immediately and reversible.
  const char* prev = std::getenv("DNC_SCHED");
  const std::string saved = prev ? prev : "";
  setenv("DNC_SCHED", "central", 1);
  EXPECT_EQ(default_sched_policy(), SchedPolicy::Central);
  setenv("DNC_SCHED", "steal", 1);
  EXPECT_EQ(default_sched_policy(), SchedPolicy::Steal);
  setenv("DNC_SCHED", "bogus", 1);
  EXPECT_EQ(default_sched_policy(), SchedPolicy::Steal);  // unknown -> default
  unsetenv("DNC_SCHED");
  EXPECT_EQ(default_sched_policy(), SchedPolicy::Steal);
  if (prev) setenv("DNC_SCHED", saved.c_str(), 1);
}

TEST(SchedCounters, CentralPolicyAccountsEveryTask) {
  TaskGraph g;
  Runtime rt(g, 3, SchedPolicy::Central);
  Handle h;
  for (int i = 0; i < 500; ++i)
    g.submit(0, [] {}, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace tr = rt.trace();
  EXPECT_EQ(tr.sched_policy, std::string("central"));
  ASSERT_EQ(tr.sched_counters.size(), 3u);
  long executed = 0, steals = 0;
  for (const auto& c : tr.sched_counters) {
    executed += c.executed;
    steals += c.steals;
  }
  EXPECT_EQ(executed, 500);
  EXPECT_EQ(steals, 0);  // a single shared queue has nothing to steal
  EXPECT_GE(tr.queue_depth_peak, 1);
}

TEST(SchedCounters, StealPolicyAccountsEveryTask) {
  TaskGraph g;
  Runtime rt(g, 4, SchedPolicy::Steal);
  Handle h;
  for (int i = 0; i < 2000; ++i)
    g.submit(0, [] {}, {{&h, Access::GatherV}});
  rt.wait_all();
  const Trace tr = rt.trace();
  EXPECT_EQ(tr.sched_policy, std::string("steal"));
  ASSERT_EQ(tr.sched_counters.size(), 4u);
  long executed = 0, local = 0, steals = 0, attempts = 0, placed = 0;
  for (const auto& c : tr.sched_counters) {
    executed += c.executed;
    local += c.local_pops;
    steals += c.steals;
    attempts += c.steal_attempts;
    placed += c.placed;
  }
  EXPECT_EQ(executed, 2000);
  // Every execution came off a deque: the owner's (local pop), another
  // worker's (steal), or the bounded-capacity overflow queue.
  EXPECT_LE(local + steals, executed);
  EXPECT_GE(local + steals, 1);
  EXPECT_LE(steals, attempts);
  // Submitter-side round-robin placement covered all deques.
  EXPECT_EQ(placed, 2000);
  for (const auto& c : tr.sched_counters) EXPECT_GT(c.placed, 0);
}

TEST(SchedCounters, QueueDepthPeakIsExactDespiteDecimation) {
  // Submit a wide fan (all ready at once) against one slow worker: the
  // peak must reflect the true backlog even if sampling decimated.
  TaskGraph g;
  Runtime rt(g, 1, SchedPolicy::Central);
  Handle gate;
  std::atomic<bool> release{false};
  g.submit(0, [&] { while (!release.load()) std::this_thread::yield(); },
           {{&gate, Access::Out}});
  for (int i = 0; i < 300; ++i)
    g.submit(0, [] {}, {{&gate, Access::GatherV}});
  release = true;
  rt.wait_all();
  const Trace tr = rt.trace();
  EXPECT_GE(tr.queue_depth_peak, 300);
}

}  // namespace
}  // namespace dnc::rt
