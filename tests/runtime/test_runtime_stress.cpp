// Stress and fuzz tests of the task runtime: large random graphs executed
// with many workers must respect all declared dependencies, and the
// simulator must stay consistent with the structural bounds on every graph
// shape the fuzzer produces.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "runtime/engine.hpp"
#include "runtime/simulator.hpp"

namespace dnc::rt {
namespace {

TEST(RuntimeStress, ManyTasksManyHandles) {
  TaskGraph g;
  Runtime rt(g, 8);
  constexpr int kHandles = 32;
  std::vector<Handle> handles(kHandles);
  // Each handle guards a counter; IN tasks read it, INOUT tasks bump it.
  struct Cell {
    std::atomic<long> value{0};
  };
  std::vector<Cell> cells(kHandles);
  std::vector<long> expected(kHandles, 0);
  std::atomic<long> violations{0};

  Rng rng(31337);
  const int ntasks = 5000;
  for (int t = 0; t < ntasks; ++t) {
    const int h = static_cast<int>(rng.uniform_below(kHandles));
    if (rng.uniform_below(3) == 0) {
      // Reader: records the value it saw; since readers run between
      // writers, the value must equal the submission-time expectation.
      const long want = expected[h];
      g.submit(0,
               [&cells, &violations, h, want] {
                 if (cells[h].value.load() != want) violations.fetch_add(1);
               },
               {{&handles[h], Access::In}});
    } else {
      ++expected[h];
      g.submit(0, [&cells, h] { cells[h].value.fetch_add(1); },
               {{&handles[h], Access::InOut}});
    }
  }
  rt.wait_all();
  EXPECT_EQ(violations.load(), 0);
  for (int h = 0; h < kHandles; ++h) EXPECT_EQ(cells[h].value.load(), expected[h]);
}

TEST(RuntimeStress, DeepChain) {
  TaskGraph g;
  Runtime rt(g, 4);
  Handle h;
  long value = 0;
  for (int i = 0; i < 20000; ++i)
    g.submit(0, [&value] { ++value; }, {{&h, Access::InOut}});
  rt.wait_all();
  EXPECT_EQ(value, 20000);
}

TEST(RuntimeStress, WideGatherv) {
  TaskGraph g;
  Runtime rt(g, 8);
  Handle h;
  std::atomic<long> sum{0};
  for (int i = 0; i < 10000; ++i)
    g.submit(0, [&sum] { sum.fetch_add(1); }, {{&h, Access::GatherV}});
  long seen = -1;
  g.submit(0, [&] { seen = sum.load(); }, {{&h, Access::In}});
  rt.wait_all();
  EXPECT_EQ(seen, 10000);
}

TEST(RuntimeStress, FuzzedGraphSimulatorConsistency) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    TaskGraph g;
    const KindId mem = g.register_kind("copy", true);
    Runtime rt(g, 4);
    std::vector<Handle> handles(8);
    const int ntasks = 200;
    for (int t = 0; t < ntasks; ++t) {
      std::vector<TaskDep> deps;
      const int na = 1 + static_cast<int>(rng.uniform_below(3));
      for (int a = 0; a < na; ++a) {
        const Access mode = static_cast<Access>(rng.uniform_below(4));
        deps.push_back({&handles[rng.uniform_below(8)], mode});
      }
      const KindId kind = rng.uniform_below(4) == 0 ? mem : 0;
      g.submit(kind,
               [] {
                 const double t0 = now_seconds();
                 while (now_seconds() - t0 < 2e-5) {
                 }
               },
               deps);
    }
    rt.wait_all();
    double prev = 1e300;
    for (int w : {1, 2, 4, 8, 16}) {
      const auto s = simulate_schedule(g, w);
      EXPECT_GE(s.makespan + 1e-12, s.critical_path);
      EXPECT_GE(s.makespan + 1e-12, s.total_work / w);
      EXPECT_LE(s.makespan, prev + 1e-12);  // monotone in workers
      prev = s.makespan;
      // Schedule events cover every task exactly once.
      EXPECT_EQ(s.schedule.events.size(), g.task_count());
    }
  }
}

TEST(RuntimeStress, SubmitFromCompletionCallbacksForbiddenPatternWorksViaLevels) {
  // The engine requires single-threaded submission; level-synchronous
  // submission (submit, wait, submit more) must work repeatedly.
  TaskGraph g;
  Runtime rt(g, 4);
  Handle h;
  long total = 0;
  for (int level = 0; level < 50; ++level) {
    for (int i = 0; i < 20; ++i)
      g.submit(0, [&total] { /* racy increments guarded by chain below */ },
               {{&h, Access::In}});
    g.submit(0, [&total] { total += 20; }, {{&h, Access::InOut}});
    rt.wait_all();
  }
  EXPECT_EQ(total, 1000);
}

}  // namespace
}  // namespace dnc::rt
