// Autotuning table (dc/tune.hpp): JSON round trip, nearest-n lookup with
// precision/worker wildcards, and the solve-time precedence contract --
// explicit Options and an explicit DNC_SCHED always outrank the table,
// which only replaces built-in defaults. The end-to-end test proves a
// DNC_TUNE_TABLE solve stamps the consulted entry into its SolveReport.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "dc/api.hpp"
#include "dc/options.hpp"
#include "dc/tune.hpp"
#include "matgen/tridiag.hpp"
#include "runtime/sched.hpp"

namespace dnc::dc::tune {
namespace {

Table sample_table() {
  Table t;
  Entry a;
  a.n = 100;
  a.family = "type4";
  a.precision = "f64";
  a.workers = 4;
  a.nb = 96;
  a.sched = "steal";
  a.makespan = 0.012;
  a.how = "solve-sweep";
  Entry b;
  b.n = 500;
  b.nb = 192;
  b.makespan = 0.25;
  b.how = "trace-sweep";
  t.entries = {a, b};
  return t;
}

/// Writes `t` to a per-test file name and points DNC_TUNE_TABLE at it.
/// Distinct names per test keep the mtime+size table cache honest.
struct ScopedTuneTable {
  std::string path;
  explicit ScopedTuneTable(const std::string& name, const Table& t) : path(name) {
    std::ofstream f(path);
    f << table_to_json(t);
    f.close();
    setenv("DNC_TUNE_TABLE", path.c_str(), 1);
  }
  ~ScopedTuneTable() {
    unsetenv("DNC_TUNE_TABLE");
    std::remove(path.c_str());
  }
};

TEST(TuneTest, DefaultsMatchOptions) {
  // tune.cpp's kDefaultNb is the value apply_env_tuning treats as "caller
  // left it alone"; it must track the Options default.
  EXPECT_EQ(Options{}.nb, 128);
}

TEST(TuneTest, JsonRoundTrip) {
  const Table t = sample_table();
  Table back;
  std::string err;
  ASSERT_TRUE(parse_table(table_to_json(t), back, &err)) << err;
  EXPECT_EQ(back.version, 1);
  ASSERT_EQ(back.entries.size(), 2u);
  const Entry& a = back.entries[0];
  EXPECT_EQ(a.n, 100);
  EXPECT_EQ(a.family, "type4");
  EXPECT_EQ(a.precision, "f64");
  EXPECT_EQ(a.workers, 4);
  EXPECT_EQ(a.nb, 96);
  EXPECT_EQ(a.sched, "steal");
  EXPECT_NEAR(a.makespan, 0.012, 1e-9);
  EXPECT_EQ(a.how, "solve-sweep");
  const Entry& b = back.entries[1];
  EXPECT_EQ(b.n, 500);
  EXPECT_EQ(b.precision, "");
  EXPECT_EQ(b.workers, 0);
  EXPECT_EQ(b.sched, "");
}

TEST(TuneTest, RejectsWrongVersionAndGarbage) {
  Table t;
  std::string err;
  EXPECT_FALSE(parse_table("{\"version\": 2, \"entries\": []}", t, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_FALSE(parse_table("not json at all", t, &err));
  EXPECT_FALSE(parse_table("{\"version\": 1}", t, &err)) << "entries required";
  Table ok;
  ASSERT_TRUE(parse_table(
      "{\"version\": 1, \"entries\": [{\"n\": 0, \"nb\": 64}, {\"n\": 10}]}", ok, &err))
      << err;
  EXPECT_EQ(ok.entries.size(), 1u) << "n<=0 entries are dropped";
}

TEST(TuneTest, LookupNearestNWithFilters) {
  const Table t = sample_table();  // entries at n=100 (f64, 4 workers), n=500 (wildcards)
  // Nearest n; ties go to the smaller entry.
  const Entry* e = lookup(t, 120, "f64", 4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 100);
  e = lookup(t, 450, "f64", 4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 500);
  e = lookup(t, 300, "f64", 4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 100) << "equidistant: smaller n wins";
  // Precision filter: the f64-only entry is invisible to an f32 solve, the
  // wildcard entry still matches.
  e = lookup(t, 120, "f32", 4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 500);
  // Workers filter: entry workers=4 is skipped for an 8-worker solve.
  e = lookup(t, 100, "f64", 8);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 500);
  // Caller workers=0 wildcards the filter from the other side.
  e = lookup(t, 100, "f64", 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->n, 100);
  EXPECT_EQ(lookup(Table{}, 100, "f64", 4), nullptr);
}

TEST(TuneTest, EntryLabelOmitsUnsetFields) {
  EXPECT_EQ(entry_label(sample_table().entries[0]),
            "n=100 family=type4 precision=f64 workers=4 nb=96 sched=steal");
  EXPECT_EQ(entry_label(sample_table().entries[1]), "n=500 nb=192");
}

TEST(TuneTest, ApplyOverridesOnlyDefaultNb) {
  Table t;
  Entry e;
  e.n = 200;
  e.nb = 96;
  t.entries = {e};
  ScopedTuneTable table("tune_test_nb.json", t);
  Options opt;
  ASSERT_TRUE(apply_env_tuning(opt, 200));
  EXPECT_EQ(opt.nb, 96);
  Options explicit_opt;
  explicit_opt.nb = 160;
  ASSERT_TRUE(apply_env_tuning(explicit_opt, 200)) << "consultation still recorded";
  EXPECT_EQ(explicit_opt.nb, 160) << "explicit Options outrank the table";
}

TEST(TuneTest, ExplicitSchedEnvOutranksTable) {
  const rt::SchedPolicy dflt = rt::default_sched_policy();
  const rt::SchedPolicy other =
      dflt == rt::SchedPolicy::Steal ? rt::SchedPolicy::Central : rt::SchedPolicy::Steal;
  Table t;
  Entry e;
  e.n = 200;
  e.sched = rt::sched_policy_name(other);
  t.entries = {e};
  {
    ScopedTuneTable table("tune_test_sched_dflt.json", t);
    unsetenv("DNC_SCHED");
    Options opt;
    ASSERT_TRUE(apply_env_tuning(opt, 200));
    EXPECT_EQ(opt.sched, other) << "table replaces the built-in default policy";
  }
  {
    ScopedTuneTable table("tune_test_sched_env.json", t);
    setenv("DNC_SCHED", rt::sched_policy_name(dflt), 1);
    Options opt;
    ASSERT_TRUE(apply_env_tuning(opt, 200));
    EXPECT_EQ(opt.sched, dflt) << "explicit DNC_SCHED outranks the table";
    unsetenv("DNC_SCHED");
  }
}

TEST(TuneTest, NoTableMeansNoStamp) {
  unsetenv("DNC_TUNE_TABLE");
  Options opt;
  EXPECT_FALSE(apply_env_tuning(opt, 200));
  obs::SolveReport rep;
  rep.tuned = true;  // a stale value the stamp must overwrite
  stamp_report(rep);
  EXPECT_FALSE(rep.tuned);
  EXPECT_EQ(rep.tune_entry, "");
}

TEST(TuneTest, SolveStampsConsultedEntryIntoReport) {
  // Precision/worker wildcards so the DNC_PREC re-run configurations of
  // this suite match the entry too.
  Table t;
  Entry e;
  e.n = 96;
  e.nb = 48;
  t.entries = {e};
  ScopedTuneTable table("tune_test_solve.json", t);
  const index_t n = 96;
  matgen::Tridiag m = matgen::table3_matrix(4, n);
  Matrix v;
  SolveStats stats;
  Options opt;
  opt.threads = 2;
  stedc_taskflow(n, m.d.data(), m.e.data(), v, opt, &stats);
  EXPECT_TRUE(stats.report.tuned);
  EXPECT_EQ(stats.report.tune_source, table.path);
  EXPECT_EQ(stats.report.tune_entry, "n=96 nb=48");
  EXPECT_EQ(last_applied_entry(), "n=96 nb=48");

  // A follow-up solve without the table must not inherit the stamp.
  unsetenv("DNC_TUNE_TABLE");
  matgen::Tridiag m2 = matgen::table3_matrix(4, n);
  SolveStats stats2;
  stedc_taskflow(n, m2.d.data(), m2.e.data(), v, opt, &stats2);
  EXPECT_FALSE(stats2.report.tuned);
  EXPECT_EQ(stats2.report.tune_entry, "");
}

}  // namespace
}  // namespace dnc::dc::tune
