// Unit tests of the panel kernels on a hand-built merge: panel splitting
// must be exactly equivalent to whole-range execution.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/aux.hpp"
#include "common/rng.hpp"
#include "dc/merge.hpp"
#include "lapack/steqr.hpp"
#include "matgen/tridiag.hpp"
#include "verify/metrics.hpp"

namespace dnc::dc {
namespace {

// Builds a real merge situation by solving the two halves of a tridiagonal
// with steqr, then returns everything needed to run merge kernels.
struct Scenario {
  matgen::Tridiag t;
  Matrix q;
  std::vector<double> dvals;
  std::vector<index_t> perm;
  index_t n1;
  double beta;
};

Scenario make_scenario(index_t n, int type) {
  Scenario s;
  s.t = matgen::table3_matrix(type, n, 5);
  s.n1 = n / 2;
  s.beta = s.t.e[s.n1 - 1];
  s.q.resize(n, n);
  s.q.fill(0.0);
  s.dvals = s.t.d;
  std::vector<double> e = s.t.e;
  // Cuppen boundary modification.
  s.dvals[s.n1 - 1] -= std::fabs(s.beta);
  s.dvals[s.n1] -= std::fabs(s.beta);
  lapack::steqr(lapack::CompZ::Identity, s.n1, s.dvals.data(), e.data(), s.q.data(), n);
  lapack::steqr(lapack::CompZ::Identity, n - s.n1, s.dvals.data() + s.n1, e.data() + s.n1,
                s.q.data() + s.n1 + s.n1 * n, n);
  s.perm.resize(n);
  for (index_t i = 0; i < s.n1; ++i) s.perm[i] = i;
  for (index_t i = s.n1; i < n; ++i) s.perm[i] = i - s.n1;
  return s;
}

double merge_residual(const Scenario& s, const std::vector<double>& lam, const Matrix& q) {
  double worst = 0.0;
  const index_t n = s.t.n();
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double r = s.t.d[i] * q(i, j);
      if (i > 0) r += s.t.e[i - 1] * q(i - 1, j);
      if (i + 1 < n) r += s.t.e[i] * q(i + 1, j);
      r -= lam[j] * q(i, j);
      worst = std::max(worst, std::fabs(r));
    }
  }
  return worst;
}

TEST(MergeKernels, SingleMergeSolvesProblem) {
  const index_t n = 96;
  Scenario s = make_scenario(n, 6);
  Workspace ws(n);
  TreeNode node{0, n, 0, 1, s.n1, 0};
  std::vector<double> e = s.t.e;
  MergeContext ctx(node, e.data(), 32);
  merge_sequential(ctx, s.q, ws, s.dvals.data(), s.perm.data(), 32);
  // Physically sort by perm for the residual check.
  std::vector<double> lam(n);
  Matrix sorted(n, n);
  for (index_t r = 0; r < n; ++r) {
    lam[r] = s.dvals[s.perm[r]];
    for (index_t i = 0; i < n; ++i) sorted(i, r) = s.q(i, s.perm[r]);
  }
  EXPECT_LT(merge_residual(s, lam, sorted), 1e-13);
  EXPECT_LT(verify::orthogonality(sorted), 1e-14);
}

TEST(MergeKernels, PanelWidthEquivalence) {
  const index_t n = 90;
  std::vector<std::vector<double>> results;
  for (index_t nb : {index_t{90}, index_t{13}, index_t{1}}) {
    Scenario s = make_scenario(n, 5);
    Workspace ws(n);
    TreeNode node{0, n, 0, 1, s.n1, 0};
    std::vector<double> e = s.t.e;
    MergeContext ctx(node, e.data(), nb);
    merge_sequential(ctx, s.q, ws, s.dvals.data(), s.perm.data(), nb);
    results.push_back(s.dvals);
  }
  // Identical results regardless of panel width (the panel split changes
  // only the order of independent work, not the arithmetic).
  for (std::size_t i = 1; i < results.size(); ++i)
    for (index_t j = 0; j < n; ++j) EXPECT_EQ(results[0][j], results[i][j]) << "nb case " << i;
}

TEST(MergeKernels, FinalizeOrderSortsEverything) {
  const index_t n = 64;
  Scenario s = make_scenario(n, 6);
  Workspace ws(n);
  TreeNode node{0, n, 0, 1, s.n1, 0};
  std::vector<double> e = s.t.e;
  MergeContext ctx(node, e.data(), 16);
  merge_sequential(ctx, s.q, ws, s.dvals.data(), s.perm.data(), 16);
  for (index_t r = 1; r < n; ++r)
    EXPECT_LE(s.dvals[s.perm[r - 1]], s.dvals[s.perm[r]]);
}

TEST(MergeKernels, ZhatMatchesOriginalZWhenExact) {
  // For a well-separated system the stabilised z-hat must reproduce
  // sqrt(rho) * |w| closely (the Gu-Eisenstat correction is tiny).
  const index_t n = 48;
  Scenario s = make_scenario(n, 13);  // Legendre: no deflation
  Workspace ws(n);
  TreeNode node{0, n, 0, 1, s.n1, 0};
  std::vector<double> e = s.t.e;
  MergeContext ctx(node, e.data(), 16);
  merge_sequential(ctx, s.q, ws, s.dvals.data(), s.perm.data(), 16);
  const auto& defl = ctx.defl;
  if (defl.k == 0) GTEST_SKIP();
  const double sqrho = std::sqrt(defl.rho);
  for (index_t i = 0; i < defl.k; ++i) {
    EXPECT_NEAR(std::fabs(ctx.zhat[i]), sqrho * std::fabs(defl.w[i]),
                1e-8 * sqrho * std::fabs(defl.w[i]) + 1e-18)
        << "component " << i;
  }
}

}  // namespace
}  // namespace dnc::dc
