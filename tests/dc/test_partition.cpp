#include "dc/partition.hpp"

#include <gtest/gtest.h>

namespace dnc::dc {
namespace {

TEST(Partition, SingleLeafWhenSmall) {
  auto plan = build_plan(50, 64);
  EXPECT_EQ(plan.nodes.size(), 1u);
  EXPECT_TRUE(plan.nodes[0].leaf());
  EXPECT_EQ(plan.leaf_count, 1);
  EXPECT_EQ(plan.root, 0);
}

TEST(Partition, BinarySplit) {
  auto plan = build_plan(100, 64);
  ASSERT_EQ(plan.nodes.size(), 3u);
  EXPECT_TRUE(plan.nodes[0].leaf());
  EXPECT_TRUE(plan.nodes[1].leaf());
  EXPECT_FALSE(plan.nodes[2].leaf());
  EXPECT_EQ(plan.nodes[2].n1, 50);
  EXPECT_EQ(plan.nodes[0].m + plan.nodes[1].m, 100);
}

TEST(Partition, PostOrderChildrenBeforeParent) {
  auto plan = build_plan(1000, 100);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const auto& nd = plan.nodes[i];
    if (nd.leaf()) continue;
    EXPECT_LT(nd.son1, static_cast<index_t>(i));
    EXPECT_LT(nd.son2, static_cast<index_t>(i));
  }
}

TEST(Partition, CoversRangeExactly) {
  auto plan = build_plan(777, 60);
  // Leaves tile [0, 777) without gaps or overlap.
  std::vector<char> covered(777, 0);
  for (const auto& nd : plan.nodes) {
    if (!nd.leaf()) continue;
    for (index_t i = nd.i0; i < nd.i0 + nd.m; ++i) {
      EXPECT_EQ(covered[i], 0);
      covered[i] = 1;
    }
  }
  for (char c : covered) EXPECT_EQ(c, 1);
}

TEST(Partition, ParentSpansSons) {
  auto plan = build_plan(513, 40);
  for (const auto& nd : plan.nodes) {
    if (nd.leaf()) continue;
    const auto& s1 = plan.nodes[nd.son1];
    const auto& s2 = plan.nodes[nd.son2];
    EXPECT_EQ(s1.i0, nd.i0);
    EXPECT_EQ(s2.i0, nd.i0 + nd.n1);
    EXPECT_EQ(s1.m + s2.m, nd.m);
    EXPECT_EQ(s1.level, nd.level + 1);
    EXPECT_EQ(s2.level, nd.level + 1);
  }
}

TEST(Partition, LeafSizesBounded) {
  for (index_t minpart : {index_t{3}, index_t{17}, index_t{300}}) {
    auto plan = build_plan(2500, minpart);
    for (const auto& nd : plan.nodes) {
      if (nd.leaf()) EXPECT_LE(nd.m, std::max<index_t>(minpart, 2));
    }
  }
}

TEST(Partition, PaperExample) {
  // Figure 2 of the paper: n=1000, minimal partition 300 gives four leaves
  // of 250 each.
  auto plan = build_plan(1000, 300);
  EXPECT_EQ(plan.leaf_count, 4);
  for (const auto& nd : plan.nodes)
    if (nd.leaf()) EXPECT_EQ(nd.m, 250);
}

TEST(Partition, InvalidArgsThrow) {
  EXPECT_THROW(build_plan(0, 10), InvalidArgument);
  EXPECT_THROW(build_plan(10, 0), InvalidArgument);
}

}  // namespace
}  // namespace dnc::dc
