// Property sweeps of the full task-flow solver: decomposition invariants
// across all Table III families, sizes, and the tuning knobs, plus
// failure-injection and workload-independence checks.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "../support/precision_testing.hpp"
#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "verify/metrics.hpp"

namespace dnc::dc {
namespace {

// Scales the fp64-calibrated literal tolerances when the suite re-runs
// under DNC_PREC=f32 (1 under f64 and f32refine).
const double kTolScale = test_support::tol_scale();

using Case = std::tuple<int /*type*/, int /*n*/>;
class TaskflowSweep : public ::testing::TestWithParam<Case> {};

TEST_P(TaskflowSweep, DecompositionInvariants) {
  const auto [type, ni] = GetParam();
  const index_t n = ni;
  auto t = matgen::table3_matrix(type, n, 99);
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.minpart = 24;
  opt.nb = 40;
  opt.threads = 2;
  stedc_taskflow(n, d.data(), e.data(), v, opt);

  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  EXPECT_LT(verify::orthogonality(v), 1e-14 * kTolScale);
  EXPECT_LT(verify::reduction_residual(t, d, v), 1e-14 * kTolScale);
  const double tr_t = std::accumulate(t.d.begin(), t.d.end(), 0.0);
  const double tr_l = std::accumulate(d.begin(), d.end(), 0.0);
  double scale = 0.0;
  for (double x : t.d) scale += std::fabs(x);
  EXPECT_NEAR(tr_t, tr_l, 1e-12 * kTolScale * std::max(scale, 1.0));
}

INSTANTIATE_TEST_SUITE_P(TypesAndSizes, TaskflowSweep,
                         ::testing::Combine(::testing::Range(1, 16),
                                            ::testing::Values(60, 121)));

TEST(TaskflowProperties, DagIsMatrixIndependent) {
  // The paper: the generated task graph does not depend on the matrix
  // values (deflation-dependent work is decided at execution time).
  const index_t n = 140;
  Options opt;
  opt.minpart = 30;
  opt.nb = 32;
  opt.threads = 1;
  std::size_t counts[2];
  int i = 0;
  for (int type : {2, 13}) {  // ~100% vs 0% deflation
    auto t = matgen::table3_matrix(type, n);
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    SolveStats st;
    stedc_taskflow(n, d.data(), e.data(), v, opt, &st);
    counts[i++] = st.trace.events.size();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(TaskflowProperties, ThreadCountDoesNotChangeResults) {
  const index_t n = 150;
  auto t = matgen::table3_matrix(5, n, 6);
  std::vector<std::vector<double>> eigs;
  for (int threads : {1, 2, 5}) {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    Options opt;
    opt.threads = threads;
    opt.minpart = 32;
    opt.nb = 48;
    stedc_taskflow(n, d.data(), e.data(), v, opt);
    eigs.push_back(d);
  }
  EXPECT_EQ(eigs[0], eigs[1]);
  EXPECT_EQ(eigs[0], eigs[2]);
}

TEST(TaskflowProperties, SimulatedSpeedupBounded) {
  // Simulated P-worker makespan must respect both bounds:
  // total/P <= makespan and critical_path <= makespan.
  const index_t n = 240;
  auto t = matgen::table3_matrix(4, n);
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.threads = 1;
  opt.minpart = 48;
  opt.nb = 40;
  SolveStats st;
  stedc_taskflow(n, d.data(), e.data(), v, opt, &st, {1, 3, 7, 16});
  for (const auto& sim : st.simulated) {
    EXPECT_GE(sim.makespan + 1e-12, sim.critical_path);
    EXPECT_LE(sim.efficiency, 1.0 + 1e-12);
  }
  // 1-worker simulation equals total work.
  EXPECT_NEAR(st.simulated[0].makespan, st.simulated[0].total_work, 1e-9);
}

TEST(TaskflowProperties, ExtremeGranularities) {
  const index_t n = 100;
  auto t = matgen::table3_matrix(6, n, 8);
  for (auto [mp, nb] : {std::pair<index_t, index_t>{2, 1}, {99, 1000}, {5, 7}}) {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    Options opt;
    opt.minpart = mp;
    opt.nb = nb;
    opt.threads = 3;
    stedc_taskflow(n, d.data(), e.data(), v, opt);
    EXPECT_LT(verify::reduction_residual(t, d, v), 1e-13 * kTolScale)
        << "mp=" << mp << " nb=" << nb;
  }
}

TEST(TaskflowProperties, ReducibleMatrixWithZeroCouplings) {
  // Exact zeros in e (reducible matrix) must be handled: the rank-one
  // merges then have rho = 0 and deflate everything at that boundary.
  const index_t n = 96;
  auto t = matgen::onetwoone(n);
  t.e[31] = 0.0;
  t.e[63] = 0.0;
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.minpart = 16;
  stedc_taskflow(n, d.data(), e.data(), v, opt);
  EXPECT_LT(verify::orthogonality(v), 1e-14 * kTolScale);
  EXPECT_LT(verify::reduction_residual(t, d, v), 1e-14 * kTolScale);
}

TEST(TaskflowProperties, AlternatingSignCouplings) {
  const index_t n = 88;
  auto t = matgen::table3_matrix(6, n, 12);
  for (index_t i = 0; i < n - 1; i += 3) t.e[i] = -t.e[i];
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  stedc_taskflow(n, d.data(), e.data(), v, {});
  EXPECT_LT(verify::reduction_residual(t, d, v), 1e-14 * kTolScale);
}

}  // namespace
}  // namespace dnc::dc
