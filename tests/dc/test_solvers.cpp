// End-to-end correctness of all four D&C drivers across the Table III
// matrix families, sizes, and tuning parameters.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "../support/precision_testing.hpp"
#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "verify/metrics.hpp"

namespace dnc::dc {
namespace {

enum class Driver { Seq, Taskflow, Lapack, Scalapack };

void run_driver(Driver which, index_t n, double* d, double* e, Matrix& v, const Options& opt,
                SolveStats* st = nullptr) {
  switch (which) {
    case Driver::Seq: stedc_sequential(n, d, e, v, opt, st); break;
    case Driver::Taskflow: stedc_taskflow(n, d, e, v, opt, st); break;
    case Driver::Lapack: stedc_lapack_model(n, d, e, v, opt, st); break;
    case Driver::Scalapack: stedc_scalapack_model(n, d, e, v, opt, st); break;
  }
}

void expect_good_solution(const matgen::Tridiag& t, const std::vector<double>& lam,
                          const Matrix& v, double factor = 100.0) {
  // Epsilon of the active DNC_PREC working precision (fp64 for f32refine).
  const double eps = test_support::result_eps();
  const index_t n = t.n();
  EXPECT_LT(verify::orthogonality(v), factor * eps);
  EXPECT_LT(verify::reduction_residual(t, lam, v), factor * eps);
  EXPECT_LT(verify::eigenvalue_error_vs_bisection(t, lam), factor * n * eps);
  EXPECT_TRUE(std::is_sorted(lam.begin(), lam.end()));
}

using Case = std::tuple<int /*driver*/, int /*type*/>;
class AllDrivers : public ::testing::TestWithParam<Case> {};

TEST_P(AllDrivers, SolvesTable3Type) {
  const auto [drv, type] = GetParam();
  const index_t n = 163;  // odd non-power-of-two exercises uneven splits
  auto t = matgen::table3_matrix(type, n, 77);
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.minpart = 32;
  opt.nb = 48;
  opt.threads = 3;
  run_driver(static_cast<Driver>(drv), n, d.data(), e.data(), v, opt);
  expect_good_solution(t, d, v);
}

INSTANTIATE_TEST_SUITE_P(DriversTimesTypes, AllDrivers,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(1, 2, 3, 4, 5, 7, 10, 11, 12,
                                                              14)));

TEST(Stedc, TinySizes) {
  for (index_t n : {index_t{1}, index_t{2}, index_t{3}, index_t{4}, index_t{5}}) {
    auto t = matgen::table3_matrix(10, n);
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    stedc_sequential(n, d.data(), e.data(), v, {});
    expect_good_solution(t, d, v);
  }
}

TEST(Stedc, ZeroMatrix) {
  const index_t n = 20;
  std::vector<double> d(n, 0.0), e(n - 1, 0.0);
  Matrix v;
  stedc_sequential(n, d.data(), e.data(), v, {});
  for (double x : d) EXPECT_EQ(x, 0.0);
  EXPECT_LT(verify::orthogonality(v), 1e-15);
}

TEST(Stedc, DiagonalMatrix) {
  const index_t n = 33;
  std::vector<double> d(n), e(n - 1, 0.0);
  for (index_t i = 0; i < n; ++i) d[i] = static_cast<double>((7 * i) % n);
  matgen::Tridiag t;
  t.d = d;
  t.e = e;
  Matrix v;
  stedc_sequential(n, d.data(), e.data(), v, {});
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  expect_good_solution(t, d, v);
}

TEST(Stedc, NegativeCouplings) {
  // Sign of e must not matter for correctness (rho < 0 path).
  const index_t n = 90;
  auto t = matgen::onetwoone(n);
  for (index_t i = 0; i < n - 1; i += 2) t.e[i] = -t.e[i];
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.minpart = 16;
  stedc_sequential(n, d.data(), e.data(), v, opt);
  expect_good_solution(t, d, v);
}

TEST(Stedc, LargeNormScaling) {
  DNC_SKIP_IF_F32_RANGE_EXCEEDED();  // 1e150 overflows on narrowing to fp32
  const index_t n = 64;
  auto t = matgen::onetwoone(n);
  for (auto& x : t.d) x *= 1e150;
  for (auto& x : t.e) x *= 1e150;
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  stedc_sequential(n, d.data(), e.data(), v, {});
  expect_good_solution(t, d, v);
}

TEST(Stedc, SmallNormScaling) {
  DNC_SKIP_IF_F32_RANGE_EXCEEDED();  // 1e-150 flushes to zero in fp32
  const index_t n = 64;
  auto t = matgen::onetwoone(n);
  for (auto& x : t.d) x *= 1e-150;
  for (auto& x : t.e) x *= 1e-150;
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  stedc_sequential(n, d.data(), e.data(), v, {});
  expect_good_solution(t, d, v);
}

TEST(Stedc, DriversAgreeOnEigenvalues) {
  const index_t n = 120;
  auto t = matgen::table3_matrix(6, n, 3);
  std::vector<double> dref = t.d, eref = t.e;
  Matrix vref;
  Options opt;
  opt.minpart = 25;
  opt.nb = 32;
  opt.threads = 4;
  stedc_sequential(n, dref.data(), eref.data(), vref, opt);
  for (int drv = 1; drv < 4; ++drv) {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    run_driver(static_cast<Driver>(drv), n, d.data(), e.data(), v, opt);
    const double tol = 1e-13 * test_support::tol_scale();
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(d[i], dref[i], tol * std::max(1.0, std::fabs(dref[i]))) << "driver " << drv;
  }
}

TEST(Stedc, PanelSizeSweep) {
  const index_t n = 140;
  auto t = matgen::table3_matrix(5, n, 11);
  for (index_t nb : {index_t{8}, index_t{33}, index_t{64}, index_t{200}}) {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    Options opt;
    opt.nb = nb;
    opt.minpart = 30;
    opt.threads = 2;
    stedc_taskflow(n, d.data(), e.data(), v, opt);
    expect_good_solution(t, d, v);
  }
}

TEST(Stedc, MinpartSweep) {
  const index_t n = 150;
  auto t = matgen::table3_matrix(4, n, 13);
  for (index_t mp : {index_t{3}, index_t{10}, index_t{64}, index_t{149}, index_t{150}}) {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    Options opt;
    opt.minpart = mp;
    stedc_sequential(n, d.data(), e.data(), v, opt);
    expect_good_solution(t, d, v);
  }
}

TEST(Stedc, ExtraWorkspaceOption) {
  const index_t n = 130;
  auto t = matgen::table3_matrix(3, n, 17);
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  Options opt;
  opt.extra_workspace = true;
  opt.threads = 4;
  opt.minpart = 24;
  opt.nb = 32;
  SolveStats st;
  stedc_taskflow(n, d.data(), e.data(), v, opt, &st);
  expect_good_solution(t, d, v);
  EXPECT_GT(st.trace.events.size(), 0u);
}

TEST(Stedc, StatsAreFilled) {
  const index_t n = 100;
  auto t = matgen::table3_matrix(2, n);
  std::vector<double> d = t.d, e = t.e;
  Matrix v;
  SolveStats st;
  Options opt;
  opt.minpart = 20;
  stedc_taskflow(n, d.data(), e.data(), v, opt, &st, {1, 4, 16});
  EXPECT_EQ(st.n, n);
  EXPECT_GT(st.merges, 0);
  EXPECT_GT(st.leaves, 0);
  EXPECT_GT(st.deflation_ratio, 0.9);  // type 2 deflates nearly everything
  ASSERT_EQ(st.simulated.size(), 3u);
  // More virtual workers can never increase the simulated makespan.
  EXPECT_GE(st.simulated[0].makespan + 1e-12, st.simulated[1].makespan);
  EXPECT_GE(st.simulated[1].makespan + 1e-12, st.simulated[2].makespan);
}

TEST(Stedc, RepeatedSolveSameResult) {
  const index_t n = 80;
  auto t = matgen::table3_matrix(6, n, 21);
  std::vector<double> d1 = t.d, e1 = t.e, d2 = t.d, e2 = t.e;
  Matrix v1, v2;
  Options opt;
  opt.threads = 4;
  opt.minpart = 16;
  stedc_taskflow(n, d1.data(), e1.data(), v1, opt);
  stedc_taskflow(n, d2.data(), e2.data(), v2, opt);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(d1[i], d2[i]);  // deterministic
}

}  // namespace
}  // namespace dnc::dc
