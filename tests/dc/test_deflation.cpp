#include "dc/deflation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "blas/aux.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dnc::dc {
namespace {

// Builds a synthetic merge input: two "sons" with orthogonal eigenvector
// blocks (identity here, which makes z = rows of I trivial to reason about)
// and prescribed son eigenvalues.
struct MergeInput {
  Matrix q;
  std::vector<double> d;
  std::vector<double> z;
  std::vector<index_t> perm;
  index_t n1;
};

MergeInput make_input(std::vector<double> d1, std::vector<double> d2,
                      std::vector<double> zvals) {
  MergeInput in;
  in.n1 = static_cast<index_t>(d1.size());
  const index_t m = in.n1 + static_cast<index_t>(d2.size());
  in.q.resize(m, m);
  blas::laset(m, m, 0.0, 1.0, in.q.data(), m);
  in.d = d1;
  in.d.insert(in.d.end(), d2.begin(), d2.end());
  in.z = zvals;
  in.perm.resize(m);
  // sons sorted ascending already in these tests
  std::iota(in.perm.begin(), in.perm.begin() + in.n1, index_t{0});
  std::iota(in.perm.begin() + in.n1, in.perm.end(), index_t{0});
  return in;
}

TEST(Deflation, NoDeflationDistinct) {
  auto in = make_input({0.0, 1.0}, {0.5, 2.0}, {0.5, 0.5, 0.5, 0.5});
  auto res = deflate(2, 2, in.d.data(), in.z.data(), 1.0, in.q.view(), in.perm.data(),
                     in.perm.data() + 2);
  EXPECT_EQ(res.k, 4);
  EXPECT_TRUE(std::is_sorted(res.dlamda.begin(), res.dlamda.end()));
  EXPECT_EQ(res.ctot[3], 0);
}

TEST(Deflation, ZeroZComponentDeflates) {
  auto in = make_input({0.0, 1.0}, {0.5, 2.0}, {0.5, 0.0, 0.5, 0.5});
  auto res = deflate(2, 2, in.d.data(), in.z.data(), 1.0, in.q.view(), in.perm.data(),
                     in.perm.data() + 2);
  EXPECT_EQ(res.k, 3);
  EXPECT_EQ(res.ctot[3], 1);
  EXPECT_EQ(res.d_defl.size(), 1u);
  EXPECT_DOUBLE_EQ(res.d_defl[0], 1.0);  // the deflated eigenvalue
}

TEST(Deflation, TinyRhoDeflatesEverything) {
  auto in = make_input({0.0, 1.0}, {0.5, 2.0}, {0.5, 0.5, 0.5, 0.5});
  auto res = deflate(2, 2, in.d.data(), in.z.data(), 1e-30, in.q.view(), in.perm.data(),
                     in.perm.data() + 2);
  EXPECT_EQ(res.k, 0);
  EXPECT_EQ(res.d_defl.size(), 4u);
  EXPECT_TRUE(std::is_sorted(res.d_defl.begin(), res.d_defl.end()));
}

TEST(Deflation, EqualPolesRotated) {
  // Two exactly equal eigenvalues from different sons: a Givens rotation
  // must deflate one of them and mark the survivor type 2.
  auto in = make_input({0.5, 1.0}, {0.5, 2.0}, {0.3, 0.4, 0.3, 0.4});
  auto res = deflate(2, 2, in.d.data(), in.z.data(), 1.0, in.q.view(), in.perm.data(),
                     in.perm.data() + 2);
  EXPECT_EQ(res.k, 3);
  EXPECT_EQ(res.ctot[1], 1);  // one type-2 column
  EXPECT_EQ(res.ctot[3], 1);
  // The survivor's z carries the combined weight sqrt(0.3^2+0.3^2).
  bool found = false;
  for (double w : res.w)
    if (std::fabs(w - std::hypot(0.3, 0.3)) < 1e-14) found = true;
  EXPECT_TRUE(found);
}

TEST(Deflation, RotationPreservesQOrthogonality) {
  auto in = make_input({0.5, 1.0}, {0.5, 1.0}, {0.3, 0.4, 0.3, 0.4});
  deflate(2, 2, in.d.data(), in.z.data(), 1.0, in.q.view(), in.perm.data(),
          in.perm.data() + 2);
  // Q columns stay orthonormal after the rotations.
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) {
      double s = 0;
      for (index_t k = 0; k < 4; ++k) s += in.q(k, i) * in.q(k, j);
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-14);
    }
}

TEST(Deflation, GroupedOrderIsPermutation) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const index_t n1 = 2 + static_cast<index_t>(rng.uniform_below(8));
    const index_t n2 = 2 + static_cast<index_t>(rng.uniform_below(8));
    const index_t m = n1 + n2;
    std::vector<double> d1(n1), d2(n2), z(m);
    for (auto& x : d1) x = rng.uniform_sym();
    for (auto& x : d2) x = rng.uniform_sym();
    std::sort(d1.begin(), d1.end());
    std::sort(d2.begin(), d2.end());
    double nrm = 0;
    for (auto& x : z) {
      x = rng.uniform_sym();
      nrm += x * x;
    }
    for (auto& x : z) x /= std::sqrt(nrm);
    auto in = make_input(d1, d2, z);
    auto res = deflate(n1, n2, in.d.data(), in.z.data(), 0.5 + rng.uniform01(), in.q.view(),
                       in.perm.data(), in.perm.data() + n1);
    // indx is a permutation of [0, m).
    std::vector<index_t> sorted(res.indx);
    std::sort(sorted.begin(), sorted.end());
    for (index_t i = 0; i < m; ++i) EXPECT_EQ(sorted[i], i);
    // counts consistent
    EXPECT_EQ(res.ctot[0] + res.ctot[1] + res.ctot[2], res.k);
    EXPECT_EQ(res.ctot[3], m - res.k);
    // dlamda ascending and strictly increasing
    for (index_t i = 1; i < res.k; ++i) EXPECT_GT(res.dlamda[i], res.dlamda[i - 1]);
    // rank_of maps into [0, k)
    for (index_t g = 0; g < res.k; ++g) {
      EXPECT_GE(res.rank_of[g], 0);
      EXPECT_LT(res.rank_of[g], res.k);
    }
    // non-deflated z values are above the deflation threshold
    for (double w : res.w) EXPECT_GT(std::fabs(w), 0.0);
  }
}

TEST(Deflation, TraceIsPreserved) {
  // Deflation rotations must preserve the trace of D.
  Rng rng(7);
  std::vector<double> d1{0.1, 0.1000000000000001, 0.5};
  std::vector<double> d2{0.0999999999999999, 0.7, 0.9};
  std::vector<double> z(6);
  double nrm = 0;
  for (auto& x : z) {
    x = 0.3 + 0.1 * rng.uniform01();
    nrm += x * x;
  }
  for (auto& x : z) x /= std::sqrt(nrm);
  const double trace_before =
      std::accumulate(d1.begin(), d1.end(), 0.0) + std::accumulate(d2.begin(), d2.end(), 0.0);
  auto in = make_input(d1, d2, z);
  deflate(3, 3, in.d.data(), in.z.data(), 2.0, in.q.view(), in.perm.data(), in.perm.data() + 3);
  const double trace_after = std::accumulate(in.d.begin(), in.d.end(), 0.0);
  EXPECT_NEAR(trace_before, trace_after, 1e-14);
}

}  // namespace
}  // namespace dnc::dc
