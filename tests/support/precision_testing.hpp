// Precision-aware tolerances for tests that run the solvers through
// Options::precision (and therefore honour DNC_PREC).
//
// The numerical suites are calibrated against fp64 machine epsilon. When the
// whole suite re-runs under DNC_PREC=f32 (see tests/CMakeLists.txt) every
// residual grows by eps32/eps64; under DNC_PREC=f32refine the refinement
// epilogue restores fp64-grade residuals, so the fp64 tolerances stand.
#pragma once

#include <gtest/gtest.h>

#include <limits>

#include "common/precision.hpp"

namespace dnc::test_support {

/// Machine epsilon of the precision the solve's *results* are accurate to:
/// fp32 eps under DNC_PREC=f32, fp64 eps otherwise (F32RefineF64 refines
/// eigenpairs back to fp64 residuals, so it keeps the fp64 epsilon).
inline double result_eps() {
  return default_precision() == Precision::F32
             ? static_cast<double>(std::numeric_limits<float>::epsilon())
             : std::numeric_limits<double>::epsilon();
}

/// Multiplier for tolerances written as fp64 literals (1e-13 and friends):
/// 1 under f64/f32refine, eps32/eps64 (~5.4e8) under pure f32.
inline double tol_scale() {
  return result_eps() / std::numeric_limits<double>::epsilon();
}

/// True when the active precision narrows inputs to fp32 on entry -- tests
/// whose data leaves the fp32 exponent range (|x| > ~3.4e38 or < ~1.2e-38)
/// cannot survive the narrowing and should skip.
inline bool inputs_narrowed_to_f32() { return default_precision() != Precision::F64; }

}  // namespace dnc::test_support

/// Skips the current test when inputs would over/underflow in fp32.
#define DNC_SKIP_IF_F32_RANGE_EXCEEDED()                                              \
  do {                                                                                \
    if (dnc::test_support::inputs_narrowed_to_f32())                                  \
      GTEST_SKIP() << "matrix entries exceed the fp32 exponent range; meaningless "   \
                      "under DNC_PREC=" << precision_name(dnc::default_precision());  \
  } while (0)
