#include "verify/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blas/aux.hpp"
#include "common/rng.hpp"
#include "lapack/steqr.hpp"
#include "matgen/tridiag.hpp"

namespace dnc::verify {
namespace {

TEST(Metrics, OrthogonalityOfIdentity) {
  Matrix v(10, 10);
  blas::laset(10, 10, 0.0, 1.0, v.data(), 10);
  EXPECT_EQ(orthogonality(v), 0.0);
}

TEST(Metrics, OrthogonalityDetectsDefect) {
  Matrix v(4, 4);
  blas::laset(4, 4, 0.0, 1.0, v.data(), 4);
  v(0, 1) = 0.5;  // column 1 no longer orthogonal to column 0
  EXPECT_GT(orthogonality(v), 0.1 / 4.0);
}

TEST(Metrics, ReductionResidualExact) {
  // Diagonal T with identity V has zero residual.
  matgen::Tridiag t;
  t.d = {1.0, 2.0, 3.0};
  t.e = {0.0, 0.0};
  Matrix v(3, 3);
  blas::laset(3, 3, 0.0, 1.0, v.data(), 3);
  EXPECT_EQ(reduction_residual(t, {1.0, 2.0, 3.0}, v), 0.0);
}

TEST(Metrics, ReductionResidualDetectsWrongEigenvalue) {
  matgen::Tridiag t;
  t.d = {1.0, 2.0};
  t.e = {0.0};
  Matrix v(2, 2);
  blas::laset(2, 2, 0.0, 1.0, v.data(), 2);
  EXPECT_GT(reduction_residual(t, {1.5, 2.0}, v), 0.01);
}

TEST(Metrics, SteqrPassesMetrics) {
  auto t = matgen::table3_matrix(13, 60);
  std::vector<double> d = t.d, e = t.e;
  Matrix v(60, 60);
  lapack::steqr(lapack::CompZ::Identity, 60, d.data(), e.data(), v.data(), 60);
  EXPECT_LT(orthogonality(v), 1e-15);
  EXPECT_LT(reduction_residual(t, d, v), 1e-15);
  EXPECT_LT(eigenvalue_error_vs_bisection(t, d), 1e-12);
}

TEST(Metrics, MaxRelativeDifference) {
  EXPECT_DOUBLE_EQ(max_relative_difference({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_NEAR(max_relative_difference({1.1, 2.0}, {1.0, 2.0}), 0.05, 1e-12);
  EXPECT_THROW(max_relative_difference({1.0}, {1.0, 2.0}), InvalidArgument);
}

TEST(Metrics, EmptyMatrix) {
  Matrix v;
  EXPECT_EQ(orthogonality(v), 0.0);
}

}  // namespace
}  // namespace dnc::verify
