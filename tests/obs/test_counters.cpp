#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/sched.hpp"
#include "runtime/scheduler.hpp"

namespace dnc::obs {
namespace {

TEST(Counters, DeltaSinceIsolatesAWindow) {
  const CounterArray before = snapshot();
  bump(kGemmCalls, 3);
  bump(kSturmSteps, 100);
  const CounterArray d = delta_since(before);
  EXPECT_EQ(d[kGemmCalls], 3u);
  EXPECT_EQ(d[kSturmSteps], 100u);
  EXPECT_EQ(d[kBisectLdlCalls], 0u);
}

TEST(Counters, Laed4Bucketing) {
  const CounterArray before = snapshot();
  const int iters[] = {0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 50};
  for (int it : iters) bump_laed4(it);
  const CounterArray d = delta_since(before);
  EXPECT_EQ(d[kLaed4Calls], 11u);
  EXPECT_EQ(d[kLaed4Iterations], 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 9 + 10 + 50);
  EXPECT_EQ(d[kLaed4Hist0], 1u);
  EXPECT_EQ(d[kLaed4Hist1], 1u);
  EXPECT_EQ(d[kLaed4Hist2], 1u);
  EXPECT_EQ(d[kLaed4Hist3], 1u);
  EXPECT_EQ(d[kLaed4Hist4], 1u);
  EXPECT_EQ(d[kLaed4Hist5to6], 2u);
  EXPECT_EQ(d[kLaed4Hist7to9], 2u);
  EXPECT_EQ(d[kLaed4Hist10plus], 2u);
  // Histogram always sums to the call count.
  std::uint64_t hist = 0;
  for (int b = 0; b < kLaed4HistBuckets; ++b) hist += d[kLaed4HistFirst + b];
  EXPECT_EQ(hist, d[kLaed4Calls]);
}

TEST(Counters, SurvivesThreadExit) {
  // Counts bumped by a thread that has already joined (and whose
  // thread_local block was destroyed) must still be visible: the registry
  // keeps every block alive via shared_ptr.
  const CounterArray before = snapshot();
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([] {
      for (int j = 0; j < 1000; ++j) bump(kGemmFlops, 2);
    });
  for (auto& t : ts) t.join();
  const CounterArray d = delta_since(before);
  EXPECT_EQ(d[kGemmFlops], 4u * 1000u * 2u);
}

TEST(Counters, SurvivesStealWorkerThreadExit) {
  // Same guarantee as SurvivesThreadExit, but for the threads that matter in
  // production: work-stealing scheduler workers. Counts bumped inside tasks
  // must remain visible after the Runtime has joined its workers (and their
  // thread_local blocks were destroyed).
  const CounterArray before = snapshot();
  {
    rt::TaskGraph g;
    rt::Runtime run(g, 4, rt::SchedPolicy::Steal);
    rt::Handle h;
    for (int i = 0; i < 64; ++i)
      g.submit(0,
               [] {
                 bump(kGemmCalls, 1);
                 bump(kGemmFlops, 128);
               },
               {{&h, rt::Access::GatherV}});
    run.wait_all();
  }  // ~Runtime joins the workers here
  const CounterArray d = delta_since(before);
  EXPECT_EQ(d[kGemmCalls], 64u);
  EXPECT_EQ(d[kGemmFlops], 64u * 128u);
}

TEST(Counters, NamesAreStableSnakeCase) {
  EXPECT_STREQ(counter_name(kLaed4Calls), "laed4_calls");
  EXPECT_STREQ(counter_name(kLaed4Hist10plus), "laed4_hist_10_plus");
  EXPECT_STREQ(counter_name(kGemmPackedBytes), "gemm_packed_bytes");
  for (int c = 0; c < kNumCounters; ++c) EXPECT_STRNE(counter_name(c), "unknown");
  EXPECT_STREQ(counter_name(kNumCounters), "unknown");
}

}  // namespace
}  // namespace dnc::obs
