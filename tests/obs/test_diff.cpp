// Differential-observability tests: synthetic trace/report pairs with
// known injected deltas (slower kind, more idle, less deflation, worse
// steal locality, IPC collapse) must be attributed to the right component;
// a self-diff must report "within noise" and never invent a culprit; the
// dnc-diff-v1 JSON and the SolveReport JSON reader must round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/diff.hpp"
#include "obs/report.hpp"
#include "runtime/trace.hpp"

namespace dnc {
namespace {

rt::TraceEvent ev(std::uint64_t id, int kind, int worker, double t0, double t1) {
  rt::TraceEvent e;
  e.task_id = id;
  e.kind = kind;
  e.worker = worker;
  e.t_start = t0;
  e.t_end = t1;
  return e;
}

/// Two workers, two kinds: GEMM (kind 0) back-to-back on worker 0,
/// Secular (kind 1) on worker 1. `gemm_scale` stretches every GEMM task.
rt::Trace two_kind_trace(double gemm_scale) {
  rt::Trace t;
  t.workers = 2;
  t.kind_names = {"GEMM", "Secular"};
  t.kind_memory_bound = {0, 0};
  const double g = 1.0 * gemm_scale;
  t.events.push_back(ev(1, 0, 0, 0.0, g));
  t.events.push_back(ev(2, 0, 0, g, 2.0 * g));
  t.events.push_back(ev(3, 1, 1, 0.0, 0.8));
  t.events.push_back(ev(4, 1, 1, 0.8, 1.6));
  t.edges = {{1, 2}, {3, 4}};
  t.worker_idle = {0.0, 0.0};
  return t;
}

obs::SolveDiff diff_traces(const rt::Trace& a, const rt::Trace& b) {
  obs::DiffSide sa, sb;
  sa.trace = &a;
  sa.label = "a";
  sb.trace = &b;
  sb.label = "b";
  return obs::diff_solves(sa, sb);
}

TEST(SolveDiff, SelfDiffIsWithinNoiseWithNoAttribution) {
  const rt::Trace t = two_kind_trace(1.0);
  const obs::SolveDiff d = diff_traces(t, t);
  EXPECT_FALSE(d.significant);
  EXPECT_NEAR(d.delta, 0.0, 1e-12);
  EXPECT_TRUE(d.top_component.empty());
  EXPECT_DOUBLE_EQ(d.busy_share, 0.0);
  for (const obs::DiffComponent& c : d.components) EXPECT_DOUBLE_EQ(c.share, 0.0);
  EXPECT_NE(d.render().find("within noise"), std::string::npos);
  EXPECT_NE(d.one_paragraph().find("within noise"), std::string::npos);
}

TEST(SolveDiff, SlowerKindCarriesTheDelta) {
  const rt::Trace a = two_kind_trace(1.0);
  const rt::Trace b = two_kind_trace(2.0);  // GEMM 2x slower: makespan 2->4
  const obs::SolveDiff d = diff_traces(a, b);
  EXPECT_TRUE(d.significant);
  EXPECT_NEAR(d.delta, 2.0, 1e-9);
  EXPECT_EQ(d.top_component, "busy:GEMM");
  EXPECT_GT(d.busy_share, 0.4);  // idle also grows (worker 1 waits), but
                                 // busy must carry a substantial share
  ASSERT_FALSE(d.kinds.empty());
  EXPECT_EQ(d.kinds.front().kind, "GEMM");
  EXPECT_NEAR(d.kinds.front().delta(), 2.0, 1e-9);
  // The components are additive: they sum to the delta exactly.
  double sum = 0.0;
  for (const obs::DiffComponent& c : d.components) sum += c.seconds;
  EXPECT_NEAR(sum, d.delta, 1e-9);
}

TEST(SolveDiff, IdleGrowthIsAttributedToSchedIdle) {
  // Reports only: same busy time, B idles 2 s more (per worker 1 s).
  obs::SolveReport a, b;
  a.driver = b.driver = "taskflow";
  a.n = b.n = 1000;
  a.threads = b.threads = 2;
  a.seconds = 2.0;
  b.seconds = 3.0;
  a.has_scheduler = b.has_scheduler = true;
  a.scheduler.workers = b.scheduler.workers = 2;
  a.scheduler.makespan = 2.0;
  b.scheduler.makespan = 3.0;
  a.scheduler.total_busy = b.scheduler.total_busy = 3.6;
  a.scheduler.total_idle = 0.4;
  b.scheduler.total_idle = 2.4;
  obs::DiffSide sa, sb;
  sa.report = &a;
  sb.report = &b;
  const obs::SolveDiff d = obs::diff_solves(sa, sb);
  EXPECT_TRUE(d.significant);
  EXPECT_EQ(d.top_component, "sched_idle");
  EXPECT_LT(d.busy_share, 0.5);
}

TEST(SolveDiff, DeflationDropYieldsNote) {
  obs::SolveReport a, b;
  a.driver = b.driver = "sequential";
  a.n = b.n = 500;
  a.seconds = 1.0;
  b.seconds = 1.5;
  obs::MergeRecord ma;  // A: 80% deflated
  ma.m = 100;
  ma.k = 20;
  a.merges.push_back(ma);
  obs::MergeRecord mb;  // B: 20% deflated
  mb.m = 100;
  mb.k = 80;
  b.merges.push_back(mb);
  obs::DiffSide sa, sb;
  sa.report = &a;
  sb.report = &b;
  const obs::SolveDiff d = obs::diff_solves(sa, sb);
  bool found = false;
  for (const std::string& n : d.notes)
    if (n.find("deflated fraction") != std::string::npos) found = true;
  EXPECT_TRUE(found) << d.render();
  EXPECT_NEAR(d.a.deflated_fraction, 0.8, 1e-12);
  EXPECT_NEAR(d.b.deflated_fraction, 0.2, 1e-12);
}

TEST(SolveDiff, StealLocalityShiftYieldsNote) {
  obs::SolveReport a, b;
  a.driver = b.driver = "taskflow";
  a.n = b.n = 2000;
  a.seconds = 1.0;
  b.seconds = 1.2;
  a.has_scheduler = b.has_scheduler = true;
  a.scheduler.workers = b.scheduler.workers = 8;
  a.scheduler.steals = b.scheduler.steals = 100;
  a.scheduler.steals_cross_socket = 10;
  b.scheduler.steals_cross_socket = 60;
  obs::DiffSide sa, sb;
  sa.report = &a;
  sb.report = &b;
  const obs::SolveDiff d = obs::diff_solves(sa, sb);
  bool found = false;
  for (const std::string& n : d.notes)
    if (n.find("steal locality") != std::string::npos) found = true;
  EXPECT_TRUE(found) << d.render();
}

TEST(SolveDiff, PerKindIpcDeltasUnderPerfBackend) {
  rt::Trace a = two_kind_trace(1.0);
  rt::Trace b = two_kind_trace(2.0);
  for (rt::Trace* t : {&a, &b}) {
    t->hwc_backend = "perf";
    t->hwc_slot_names = {"cycles", "instructions", "llc_misses", "llc_references"};
  }
  // A: GEMM IPC 2.0, B: GEMM IPC 1.0 (same instructions, double the cycles)
  // -- the IPC-collapse note must fire for the leading kind.
  for (rt::TraceEvent& e : a.events)
    if (e.kind == 0) e.hwc = {1000, 2000, 10, 100};
  for (rt::TraceEvent& e : b.events)
    if (e.kind == 0) e.hwc = {2000, 2000, 50, 100};
  for (rt::TraceEvent& e : a.events)
    if (e.kind == 1) e.hwc = {500, 1000, 5, 50};
  for (rt::TraceEvent& e : b.events)
    if (e.kind == 1) e.hwc = {500, 1000, 5, 50};
  const obs::SolveDiff d = diff_traces(a, b);
  ASSERT_FALSE(d.kinds.empty());
  const obs::KindDelta& gemm = d.kinds.front();
  ASSERT_EQ(gemm.kind, "GEMM");
  ASSERT_TRUE(gemm.has_hwc);
  EXPECT_NEAR(gemm.ipc_a, 2.0, 1e-12);
  EXPECT_NEAR(gemm.ipc_b, 1.0, 1e-12);
  EXPECT_NEAR(gemm.miss_rate_a, 0.1, 1e-12);
  EXPECT_NEAR(gemm.miss_rate_b, 0.5, 1e-12);
  bool found = false;
  for (const std::string& n : d.notes)
    if (n.find("IPC") != std::string::npos) found = true;
  EXPECT_TRUE(found) << d.render();
}

TEST(SolveDiff, CriticalPathEnteredKinds) {
  // A: chain 1->2 all GEMM; B: same but a huge Secular task joins the chain.
  rt::Trace a;
  a.workers = 1;
  a.kind_names = {"GEMM", "Secular"};
  a.events.push_back(ev(1, 0, 0, 0.0, 1.0));
  a.events.push_back(ev(2, 0, 0, 1.0, 2.0));
  a.events.push_back(ev(3, 1, 0, 2.0, 2.01));  // negligible share
  a.edges = {{1, 2}, {2, 3}};
  rt::Trace b = a;
  b.events[2].t_end = 4.0;  // Secular now dominates the chain
  const obs::SolveDiff d = diff_traces(a, b);
  EXPECT_TRUE(d.a.has_cp);
  EXPECT_TRUE(d.b.has_cp);
  ASSERT_EQ(d.cp_entered.size(), 1u);
  EXPECT_EQ(d.cp_entered[0], "Secular");
  EXPECT_TRUE(d.cp_left.empty());
}

TEST(SolveDiff, MismatchedIdentityWarnsButStillDiffs) {
  obs::SolveReport a, b;
  a.driver = "sequential";
  b.driver = "taskflow";
  a.n = 500;
  b.n = 1000;
  a.precision = "f64";
  b.precision = "f32";
  a.seconds = 1.0;
  b.seconds = 2.0;
  obs::DiffSide sa, sb;
  sa.report = &a;
  sb.report = &b;
  const obs::SolveDiff d = obs::diff_solves(sa, sb);
  EXPECT_FALSE(d.comparable);
  EXPECT_GE(d.warnings.size(), 3u);  // driver, n, precision
  EXPECT_TRUE(d.significant);       // the diff still computes
}

TEST(SolveDiff, JsonRoundTripsHeadlineNumbers) {
  const rt::Trace a = two_kind_trace(1.0);
  const rt::Trace b = two_kind_trace(2.0);
  const obs::SolveDiff d = diff_traces(a, b);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(d.to_json(), v, &err)) << err;
  EXPECT_EQ(v.member_string("schema", ""), "dnc-diff-v1");
  EXPECT_NEAR(v.member_number("delta_seconds", 0.0), d.delta, 1e-9);
  EXPECT_EQ(v.member_string("top_component", ""), "busy:GEMM");
  const json::Value* comps = v.find("components");
  ASSERT_NE(comps, nullptr);
  ASSERT_TRUE(comps->is_array());
  EXPECT_EQ(comps->array.size(), d.components.size());
  EXPECT_FALSE(v.member_string("paragraph", "").empty());
}

TEST(ParseSolveReport, RoundTripsThroughToJson) {
  obs::SolveReport rep;
  rep.driver = "taskflow";
  rep.n = 1234;
  rep.threads = 8;
  rep.seconds = 0.75;
  rep.precision = "f32";
  rep.git_commit = "abc123";
  rep.timestamp = "2026-08-09T00:00:00Z";
  rep.counters[obs::kGemmFlops] = 42000000;
  obs::MergeRecord m;
  m.level = 1;
  m.m = 100;
  m.n1 = 50;
  m.k = 30;
  m.ctot[0] = 10;
  m.ctot[3] = 70;
  rep.merges.push_back(m);
  rep.has_scheduler = true;
  rep.scheduler.workers = 8;
  rep.scheduler.makespan = 0.7;
  rep.scheduler.total_busy = 5.0;
  rep.scheduler.total_idle = 0.6;
  rep.scheduler.policy = "steal";
  rep.scheduler.steals = 17;
  rep.scheduler.steals_cross_socket = 3;
  rep.has_health = true;
  rep.health.max_rel_residual = 2.5e-14;
  rep.hwc_backend = "perf";
  rep.hwc_slot_names = {"cycles", "instructions", "llc_misses", "llc_references"};
  obs::KindHwcTotals kt;
  kt.kind = "GEMM";
  kt.tasks = 7;
  kt.seconds = 0.4;
  kt.hwc[0] = 1000;
  kt.hwc[1] = 2000;
  rep.kind_hwc.push_back(kt);

  obs::SolveReport back;
  std::string err;
  ASSERT_TRUE(obs::parse_solve_report(rep.to_json(), back, &err)) << err;
  EXPECT_EQ(back.driver, "taskflow");
  EXPECT_EQ(back.n, 1234);
  EXPECT_EQ(back.threads, 8);
  EXPECT_NEAR(back.seconds, 0.75, 1e-12);
  EXPECT_EQ(back.precision, "f32");
  EXPECT_EQ(back.git_commit, "abc123");
  EXPECT_EQ(back.counter(obs::kGemmFlops), 42000000u);
  ASSERT_EQ(back.merges.size(), 1u);
  EXPECT_EQ(back.merges[0].m, 100);
  EXPECT_EQ(back.merges[0].k, 30);
  EXPECT_EQ(back.merges[0].ctot[3], 70);
  ASSERT_TRUE(back.has_scheduler);
  EXPECT_EQ(back.scheduler.workers, 8);
  EXPECT_EQ(back.scheduler.policy, "steal");
  EXPECT_EQ(back.scheduler.steals, 17);
  EXPECT_EQ(back.scheduler.steals_cross_socket, 3);
  ASSERT_TRUE(back.has_health);
  EXPECT_NEAR(back.health.max_rel_residual, 2.5e-14, 1e-20);
  EXPECT_EQ(back.hwc_backend, "perf");
  ASSERT_EQ(back.kind_hwc.size(), 1u);
  EXPECT_EQ(back.kind_hwc[0].kind, "GEMM");
  EXPECT_EQ(back.kind_hwc[0].hwc[1], 2000u);

  // And the parsed report diffs against the original as a self-diff.
  obs::DiffSide sa, sb;
  sa.report = &rep;
  sb.report = &back;
  const obs::SolveDiff d = obs::diff_solves(sa, sb);
  EXPECT_FALSE(d.significant);
}

TEST(ParseSolveReport, RejectsNonReports) {
  obs::SolveReport out;
  std::string err;
  EXPECT_FALSE(obs::parse_solve_report("not json", out, &err));
  EXPECT_FALSE(obs::parse_solve_report("[1,2,3]", out, &err));
  EXPECT_FALSE(obs::parse_solve_report("{\"traceEvents\": []}", out, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace dnc
