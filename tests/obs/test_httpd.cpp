// Introspection-server tests: URL/env parsing, endpoint round trips over
// real sockets on an ephemeral port, the one-shot /trace capture handshake,
// and the acceptance path: /profile during a live taskflow solve returns
// folded stacks attributed to a scheduler worker.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "obs/flight.hpp"
#include "obs/history.hpp"
#include "obs/httpd.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"

namespace dnc {
namespace {

namespace hd = obs::httpd;
namespace m = obs::metrics;

/// Clears every introspection knob for the test and restores the caller's
/// environment (and the process-wide singletons) afterwards.
class HttpdTest : public ::testing::Test {
 protected:
  static constexpr const char* kVars[] = {"DNC_HTTP",    "DNC_METRICS",
                                          "DNC_FLIGHT",  "DNC_PROFILE_HZ",
                                          "DNC_PROFILE", "DNC_CRASH_DUMP",
                                          "DNC_HISTORY"};
  void SetUp() override {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      saved_set_.push_back(v != nullptr);
      ::unsetenv(var);
    }
    hd::stop_for_tests();
    hd::refresh_from_env();
    obs::profiler::reset_for_tests();
    m::reset_for_tests();
    obs::history::reset_for_tests();
  }
  void TearDown() override {
    hd::stop_for_tests();
    obs::profiler::reset_for_tests();
    for (std::size_t i = 0; i < saved_.size(); ++i) {
      if (saved_set_[i])
        ::setenv(saved_[i].first, saved_[i].second.c_str(), 1);
      else
        ::unsetenv(saved_[i].first);
    }
    hd::refresh_from_env();
    obs::profiler::refresh_from_env();
    m::reset_for_tests();
    obs::history::reset_for_tests();
  }

  std::vector<std::pair<const char*, std::string>> saved_;
  std::vector<bool> saved_set_;
};

std::string get_or_die(std::uint16_t port, const std::string& target, int expect = 200) {
  int status = 0;
  std::string body, err;
  EXPECT_TRUE(hd::http_get("127.0.0.1", port, target, status, body, &err)) << err;
  EXPECT_EQ(status, expect) << target << ": " << body;
  return body;
}

TEST_F(HttpdTest, ParseUrl) {
  std::string host, path;
  std::uint16_t port = 0;
  EXPECT_TRUE(hd::parse_url("http://127.0.0.1:8080/metrics", host, port, path));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_EQ(path, "/metrics");
  EXPECT_TRUE(hd::parse_url("localhost:9091", host, port, path));
  EXPECT_EQ(path, "/");
  EXPECT_FALSE(hd::parse_url("http://127.0.0.1/varz", host, port, path));  // no port
  EXPECT_FALSE(hd::parse_url("http://host:notaport/x", host, port, path));
}

TEST_F(HttpdTest, EnvGate) {
  EXPECT_FALSE(hd::enabled());
  ::setenv("DNC_HTTP", "0", 1);
  hd::refresh_from_env();
  EXPECT_FALSE(hd::enabled());
  ::setenv("DNC_HTTP", "127.0.0.1:0", 1);
  hd::refresh_from_env();
  EXPECT_TRUE(hd::enabled());
  EXPECT_FALSE(hd::running());  // enabled != started
}

TEST_F(HttpdTest, ServesEndpointsOnEphemeralPort) {
  ASSERT_TRUE(hd::start("127.0.0.1", 0));
  ASSERT_TRUE(hd::running());
  const std::uint16_t port = hd::bound_port();
  ASSERT_GT(port, 0);

  // Index + 404.
  EXPECT_NE(get_or_die(port, "/").find("/metrics"), std::string::npos);
  get_or_die(port, "/nope", 404);

  // Live metrics: record something while enabled, then scrape both formats.
  ::setenv("DNC_METRICS", "1", 1);
  m::refresh_from_env();
  m::add(m::register_metric(m::Kind::Counter, "dnc_httpd_test_total", "", "test"), 3);
  const std::string prom = get_or_die(port, "/metrics");
  EXPECT_NE(prom.find("# dnc metrics"), std::string::npos);
  EXPECT_NE(prom.find("dnc_httpd_test_total 3"), std::string::npos);
  const std::string varz = get_or_die(port, "/varz");
  m::Snapshot snap;
  std::string err;
  ASSERT_TRUE(m::parse_snapshot(varz, snap, &err)) << err;
  EXPECT_FALSE(snap.metrics.empty());

  // Healthz carries build provenance and, after note_solve, the last solve.
  obs::SolveReport rep;
  rep.driver = "taskflow";
  rep.n = 777;
  rep.seconds = 0.5;
  rep.has_health = true;
  rep.health.max_rel_residual = 1e-13;
  hd::note_solve(rep);
  const std::string hz = get_or_die(port, "/healthz");
  EXPECT_NE(hz.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(hz.find("\"git_commit\""), std::string::npos);
  EXPECT_NE(hz.find("\"n\": 777"), std::string::npos);
  EXPECT_NE(hz.find("\"max_rel_residual\""), std::string::npos);

  // Flight ring JSONL (empty ring -> empty 200 body is fine).
  int status = 0;
  std::string body;
  ASSERT_TRUE(hd::http_get("127.0.0.1", port, "/flight", status, body));
  EXPECT_EQ(status, 200);

  EXPECT_GE(hd::requests_served(), 6u);
  hd::stop_for_tests();
  EXPECT_FALSE(hd::running());
  EXPECT_EQ(hd::bound_port(), 0);
}

TEST_F(HttpdTest, TraceCaptureHandshake) {
  ASSERT_TRUE(hd::start("127.0.0.1", 0));
  const std::uint16_t port = hd::bound_port();

  get_or_die(port, "/trace", 404);  // nothing armed
  EXPECT_NE(get_or_die(port, "/trace?next=1").find("armed"), std::string::npos);
  EXPECT_TRUE(hd::trace_capture_armed());

  // The "next solve": a real taskflow run so the trace is non-trivial.
  matgen::Tridiag t = matgen::table3_matrix(4, 300);
  Matrix v;
  dc::SolveStats st;
  std::vector<double> d = t.d, e = t.e;
  dc::stedc_taskflow(t.n(), d.data(), e.data(), v, {}, &st);
  hd::offer_captured_trace(st.report, &st.trace);
  EXPECT_FALSE(hd::trace_capture_armed());

  // perfetto_trace_json emits the bare trace-event array form.
  const std::string trace = get_or_die(port, "/trace");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0], '[');
  EXPECT_NE(trace.find("\"ph\""), std::string::npos);
  get_or_die(port, "/trace", 404);  // one-shot: collected, gone
}

TEST_F(HttpdTest, HistoryEndpointServesRing) {
  ASSERT_TRUE(hd::start("127.0.0.1", 0));
  const std::uint16_t port = hd::bound_port();

  // Empty ring -> empty 200 body (scrapers can poll unconditionally).
  int status = 0;
  std::string body;
  ASSERT_TRUE(hd::http_get("127.0.0.1", port, "/history", status, body));
  EXPECT_EQ(status, 200);
  EXPECT_TRUE(body.empty());

  // A noted solve shows up as one JSONL record, even with no archive file
  // configured (the ring is always on).
  obs::SolveReport rep;
  rep.driver = "taskflow";
  rep.n = 512;
  rep.seconds = 0.25;
  rep.git_commit = "deadbeef";
  obs::history::note(rep);
  const std::string jsonl = get_or_die(port, "/history");
  EXPECT_NE(jsonl.find("\"driver\": \"taskflow\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"n\": 512"), std::string::npos);
  EXPECT_NE(jsonl.find("\"git_commit\": \"deadbeef\""), std::string::npos);
}

// Regression test for the serial-server stall: /profile?seconds=N used to
// occupy the single accept loop for the whole sampling window, so any
// concurrent scrape hung until the profile finished. The handler now hands
// the socket to a worker thread; scrapes issued mid-profile must come back
// promptly.
TEST_F(HttpdTest, ProfileDoesNotBlockConcurrentScrapes) {
  ::setenv("DNC_HTTP", "127.0.0.1:0", 1);
  hd::refresh_from_env();
  obs::profiler::refresh_from_env();
  ASSERT_TRUE(hd::ensure_started());
  const std::uint16_t port = hd::bound_port();
  ASSERT_GT(port, 0);

  std::string profile_body;
  std::atomic<int> profile_status{0};
  std::thread profiled([&] {
    int status = 0;
    std::string err;
    if (hd::http_get("127.0.0.1", port, "/profile?seconds=2&hz=97", status,
                     profile_body, &err))
      profile_status.store(status);
  });

  // Give the profile request time to reach the handler and start sampling.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto t0 = std::chrono::steady_clock::now();
  get_or_die(port, "/healthz");
  get_or_die(port, "/metrics");
  get_or_die(port, "/varz");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // Three scrapes while the 2 s profile window is still open: with the
  // hand-off in place they are near-instant; without it they'd wait ~2 s.
  EXPECT_LT(elapsed, 1.5) << "scrapes blocked behind /profile";

  profiled.join();
  EXPECT_EQ(profile_status.load(), 200);
  EXPECT_NE(profile_body.find("# dnc profile"), std::string::npos);
}

// Acceptance: /profile?seconds=N during a multi-threaded solve returns at
// least one folded stack attributed to a scheduler worker. DNC_HTTP (not
// DNC_PROFILE_HZ) gates worker registration here, proving the on-demand
// path works without continuous profiling. The matrix is generated up
// front and the scrape waits for the first solve to finish, so on a
// loaded machine the profile window is guaranteed to overlap running
// workers instead of racing matrix generation (~0.5 s on one core).
TEST_F(HttpdTest, ProfileEndpointAttributesSchedulerWorkers) {
  ::setenv("DNC_HTTP", "127.0.0.1:0", 1);
  hd::refresh_from_env();
  obs::profiler::refresh_from_env();
  ASSERT_TRUE(hd::ensure_started());
  const std::uint16_t port = hd::bound_port();
  ASSERT_GT(port, 0);

  matgen::Tridiag t = matgen::table3_matrix(4, 768);
  std::atomic<bool> stop{false};
  std::atomic<long> solves{0};
  std::thread solver([&] {
    dc::Options opt;
    opt.threads = 4;
    while (!stop.load()) {
      std::vector<double> d = t.d, e = t.e;
      Matrix v;
      dc::stedc_taskflow(t.n(), d.data(), e.data(), v, opt, nullptr);
      solves.fetch_add(1);
    }
  });
  while (solves.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const std::string folded = get_or_die(port, "/profile?seconds=1&hz=397");
  stop.store(true);
  solver.join();
  EXPECT_NE(folded.find("# dnc profile"), std::string::npos);
  EXPECT_NE(folded.find("worker:"), std::string::npos) << folded;
}

}  // namespace
}  // namespace dnc
