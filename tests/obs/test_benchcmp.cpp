// Perf-regression gate tests: synthetic BENCH_solver.json pairs exercising
// every verdict, the matching rules, and malformed-input handling.
#include <gtest/gtest.h>

#include <string>

#include "obs/benchcmp.hpp"

namespace dnc::obs {
namespace {

std::string artifact(double taskflow_median, double mrrr_median, double taskflow_min = 0.0) {
  char buf[1024];
  std::snprintf(buf, sizeof buf,
                R"({
  "schema": "dnc-bench-solver-v1",
  "metadata": {"git_commit": "abc", "build_type": "Release"},
  "entries": [
    {"driver": "taskflow", "family": "deflate20", "n": 512, "reps": 5,
     "seconds": {"median": %.9f, "q1": 0.009, "q3": 0.011, "min": %.9f},
     "report": {"deflated_fraction": 0.2, "laed4_calls": 1000}},
    {"driver": "mrrr", "family": "wilkinson", "n": 512, "reps": 5,
     "seconds": {"median": %.9f, "q1": 0.30, "q3": 0.32, "min": 0.29}}
  ]
})",
                taskflow_median, taskflow_min > 0.0 ? taskflow_min : taskflow_median * 0.95,
                mrrr_median);
  return buf;
}

BenchArtifact parse(const std::string& text) {
  BenchArtifact a;
  std::string err;
  EXPECT_TRUE(parse_bench_artifact(text, a, &err)) << err;
  return a;
}

TEST(BenchArtifact, ParsesEntriesAndMetadata) {
  const BenchArtifact a = parse(artifact(0.010, 0.31));
  EXPECT_EQ(a.schema, "dnc-bench-solver-v1");
  ASSERT_EQ(a.entries.size(), 2u);
  EXPECT_EQ(a.entries[0].key(), "taskflow|deflate20|512");
  EXPECT_EQ(a.entries[0].reps, 5);
  EXPECT_DOUBLE_EQ(a.entries[0].median, 0.010);
  EXPECT_DOUBLE_EQ(a.entries[1].median, 0.31);
  ASSERT_EQ(a.metadata.size(), 2u);
  EXPECT_EQ(a.metadata[0].first, "git_commit");
  EXPECT_EQ(a.metadata[0].second, "abc");
}

TEST(BenchArtifact, RejectsMalformedInput) {
  BenchArtifact a;
  std::string err;
  EXPECT_FALSE(parse_bench_artifact("{]", a, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_bench_artifact("[1,2,3]", a, &err));
  EXPECT_FALSE(parse_bench_artifact("{\"schema\": \"x\"}", a, &err));  // no entries
  EXPECT_FALSE(load_bench_artifact("/nonexistent/bench.json", a, &err));
}

TEST(BenchCompare, WithinNoiseWhenUnchanged) {
  const BenchArtifact base = parse(artifact(0.010, 0.31));
  const BenchArtifact cur = parse(artifact(0.0104, 0.30));  // +-4%
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10);
  EXPECT_TRUE(res.gate_passed());
  EXPECT_EQ(res.regressions, 0);
  EXPECT_EQ(res.within_noise, 2);
  EXPECT_NE(res.render(0.10).find("all within noise"), std::string::npos);
}

TEST(BenchCompare, FlagsRegressionBeyondThreshold) {
  const BenchArtifact base = parse(artifact(0.010, 0.31));
  const BenchArtifact cur = parse(artifact(0.013, 0.31));  // taskflow +30%
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10);
  EXPECT_FALSE(res.gate_passed());
  EXPECT_EQ(res.regressions, 1);
  // Worst ratio first.
  ASSERT_FALSE(res.rows.empty());
  EXPECT_EQ(res.rows.front().key, "taskflow|deflate20|512");
  EXPECT_NEAR(res.rows.front().ratio, 1.3, 1e-12);
  EXPECT_EQ(res.rows.front().verdict, Verdict::kRegression);
  EXPECT_NE(res.render(0.10).find("GATE FAILED"), std::string::npos);
}

TEST(BenchCompare, FlagsImprovement) {
  const BenchArtifact base = parse(artifact(0.010, 0.31));
  const BenchArtifact cur = parse(artifact(0.007, 0.31));  // taskflow -30%
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10);
  EXPECT_TRUE(res.gate_passed());
  EXPECT_EQ(res.improvements, 1);
  EXPECT_EQ(res.within_noise, 1);
}

TEST(BenchCompare, MinStatUsesMinField) {
  const BenchArtifact base = parse(artifact(0.010, 0.31, 0.008));
  const BenchArtifact cur = parse(artifact(0.010, 0.31, 0.012));  // min +50%
  EXPECT_TRUE(compare_bench_artifacts(base, cur, 0.10).gate_passed());
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10, BenchStat::kMin);
  EXPECT_FALSE(res.gate_passed());
}

TEST(BenchCompare, TimeFloorSuppressesTinyCells) {
  const BenchArtifact base = parse(artifact(0.00010, 0.31));
  const BenchArtifact cur = parse(artifact(0.00025, 0.31));  // 2.5x, but 250 us
  EXPECT_FALSE(compare_bench_artifacts(base, cur, 0.10).gate_passed());
  const CompareResult res =
      compare_bench_artifacts(base, cur, 0.10, BenchStat::kMedian, 0.001);
  EXPECT_TRUE(res.gate_passed());
  EXPECT_EQ(res.within_noise, 2);
  // The floor must not suppress cells that cross it on either side.
  const BenchArtifact slow = parse(artifact(0.00010, 0.62));
  EXPECT_FALSE(
      compare_bench_artifacts(base, slow, 0.10, BenchStat::kMedian, 0.001).gate_passed());
}

TEST(BenchCompare, UnmatchedEntriesReportedNotFatal) {
  const BenchArtifact base = parse(artifact(0.010, 0.31));
  BenchArtifact cur = parse(artifact(0.010, 0.31));
  cur.entries[1].n = 1024;  // mrrr|wilkinson|512 -> only_in_base, |1024 new
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10);
  EXPECT_TRUE(res.gate_passed());
  ASSERT_EQ(res.only_in_base.size(), 1u);
  EXPECT_EQ(res.only_in_base[0], "mrrr|wilkinson|512");
  ASSERT_EQ(res.only_in_current.size(), 1u);
  EXPECT_EQ(res.only_in_current[0], "mrrr|wilkinson|1024");
  EXPECT_EQ(res.rows.size(), 1u);
}

TEST(BenchCompare, ZeroBaseStatIsWithinNoise) {
  BenchArtifact base = parse(artifact(0.010, 0.31));
  base.entries[0].median = 0.0;
  const BenchArtifact cur = parse(artifact(0.010, 0.31));
  const CompareResult res = compare_bench_artifacts(base, cur, 0.10);
  EXPECT_TRUE(res.gate_passed());
}

}  // namespace
}  // namespace dnc::obs
