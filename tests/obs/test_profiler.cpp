// Sampling-profiler tests: the zero-cost gate, interning, folded-stack
// export of a profiled taskflow solve (worker + task-kind attribution and a
// sample count consistent with wall time x HZ), windowed profile_for, and
// the DNC_CRASH_DUMP last-gasp handler (death test).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "obs/crash.hpp"
#include "obs/httpd.hpp"
#include "obs/profiler.hpp"

namespace dnc {
namespace {

namespace prof = obs::profiler;

class ProfilerTest : public ::testing::Test {
 protected:
  static constexpr const char* kVars[] = {"DNC_HTTP", "DNC_PROFILE_HZ",
                                          "DNC_PROFILE", "DNC_CRASH_DUMP",
                                          "DNC_METRICS"};
  void SetUp() override {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      saved_set_.push_back(v != nullptr);
      ::unsetenv(var);
    }
    obs::httpd::refresh_from_env();
    prof::reset_for_tests();
  }
  void TearDown() override {
    prof::reset_for_tests();
    for (std::size_t i = 0; i < saved_.size(); ++i) {
      if (saved_set_[i])
        ::setenv(saved_[i].first, saved_[i].second.c_str(), 1);
      else
        ::unsetenv(saved_[i].first);
    }
    obs::httpd::refresh_from_env();
    prof::refresh_from_env();
  }

  /// Arms registration via the DNC_HTTP gate (on-demand mode), avoiding
  /// DNC_PROFILE_HZ so continuous mode (background drainer + atexit dump)
  /// never boots inside the test binary.
  void want_registration() {
    ::setenv("DNC_HTTP", "127.0.0.1:0", 1);
    obs::httpd::refresh_from_env();
    prof::refresh_from_env();
    ASSERT_TRUE(prof::registration_wanted());
  }

  std::vector<std::pair<const char*, std::string>> saved_;
  std::vector<bool> saved_set_;
};

TEST_F(ProfilerTest, ZeroCostWhenOff) {
  EXPECT_FALSE(prof::env_enabled());
  EXPECT_FALSE(prof::registration_wanted());
  prof::ThreadRegistration reg("worker", 0);
  EXPECT_FALSE(reg.active());
  EXPECT_EQ(prof::registered_threads(), 0u);
  reg.set_task("ignored");  // must be a harmless no-op
}

TEST_F(ProfilerTest, EnvParsing) {
  ::setenv("DNC_PROFILE_HZ", "on", 1);
  prof::refresh_from_env();
  EXPECT_TRUE(prof::env_enabled());
  EXPECT_EQ(prof::env_hz(), prof::kDefaultHz);
  ::setenv("DNC_PROFILE_HZ", "250", 1);
  prof::refresh_from_env();
  EXPECT_EQ(prof::env_hz(), 250);
  ::setenv("DNC_PROFILE_HZ", "off", 1);
  prof::refresh_from_env();
  EXPECT_FALSE(prof::env_enabled());
}

TEST_F(ProfilerTest, InternIsStable) {
  const char* a = prof::intern("UpdateVect");
  const char* b = prof::intern("UpdateVect");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "UpdateVect");
  EXPECT_NE(prof::intern("LAED4"), a);
}

// Sample counts track CPU time x HZ. A registered spin thread burns CPU
// and reports its own CLOCK_THREAD_CPUTIME_ID consumption, so the bounds
// hold even when the test box is oversubscribed and the thread gets far
// less than a full core (judging against wall time flakes under parallel
// ctest on small machines). Wide bounds absorb kernel-tick quantisation
// of CPU-time timers.
TEST_F(ProfilerTest, SampleCountTracksCpuTimeTimesHz) {
  want_registration();
  std::atomic<bool> stop{false};
  std::atomic<double> cpu_seconds{0.0};
  std::thread busy([&] {
    prof::ThreadRegistration reg("pool", 1);
    volatile double x = 1.0;
    while (!stop.load(std::memory_order_relaxed)) x = x * 1.0000001 + 1e-9;
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    cpu_seconds.store(ts.tv_sec + ts.tv_nsec * 1e-9);
  });
  while (prof::registered_threads() == 0) std::this_thread::yield();
  const int hz = 97;
  ASSERT_TRUE(prof::start(hz));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  prof::stop();
  stop.store(true);
  busy.join();
  const double cpu = cpu_seconds.load();
  const prof::Totals totals = prof::totals();
  EXPECT_GE(totals.samples, static_cast<std::uint64_t>(hz * cpu * 0.25)) << cpu;
  EXPECT_LE(totals.samples, static_cast<std::uint64_t>(hz * cpu * 4 + 16)) << cpu;
  EXPECT_EQ(totals.dropped, 0u);
}

// The ISSUE acceptance test: a profiled n>=512 taskflow solve yields folded
// stacks containing a known solver frame, attributed to scheduler workers
// and task kinds.
TEST_F(ProfilerTest, ProfiledTaskflowSolveAttributesWorkAndKinds) {
  want_registration();
  const int hz = 997;  // fast sampling keeps the solve count low
  ASSERT_TRUE(prof::start(hz));
  const auto t0 = std::chrono::steady_clock::now();
  matgen::Tridiag t = matgen::table3_matrix(4, 1024);
  dc::Options opt;
  opt.threads = 4;
  double wall = 0.0;
  // Solve until samples accumulate; CPU-time timers fire only while the
  // workers are busy, so slow machines just take more wall time.
  do {
    std::vector<double> d = t.d, e = t.e;
    Matrix v;
    dc::SolveStats st;
    dc::stedc_taskflow(t.n(), d.data(), e.data(), v, opt, &st);
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  } while (prof::totals().samples < 8 && wall < 20.0);
  prof::stop();

  const prof::Totals totals = prof::totals();
  EXPECT_GE(totals.samples, 8u) << wall;
  // Upper bound: at most threads x wall CPU-seconds were available.
  EXPECT_LE(totals.samples,
            static_cast<std::uint64_t>(hz * wall * (opt.threads + 1) * 2 + 64))
      << wall;

  const std::string folded = prof::folded_text();
  EXPECT_NE(folded.find("# dnc profile"), std::string::npos);
  EXPECT_NE(folded.find("worker:"), std::string::npos) << folded.substr(0, 500);
  EXPECT_NE(folded.find("task:"), std::string::npos) << folded.substr(0, 500);
  // A known solver frame must symbolize: every sampled worker stack passes
  // through the scheduler's worker loop.
  EXPECT_NE(folded.find("worker_loop"), std::string::npos) << folded.substr(0, 500);

  // The Perfetto merge view renders the same aggregate.
  const std::string json = prof::perfetto_samples_json();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("\"stack\""), std::string::npos);
}

TEST_F(ProfilerTest, ProfileForWindowsTheAggregate) {
  want_registration();
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    prof::ThreadRegistration reg("pool", 7);
    volatile double x = 1.0;
    while (!stop.load(std::memory_order_relaxed)) x = x * 1.0000001 + 1e-9;
  });
  while (prof::registered_threads() == 0) std::this_thread::yield();
  const std::string w1 = prof::profile_for(0.25, 397);
  stop.store(true);
  busy.join();
  EXPECT_FALSE(prof::active());  // profile_for started it, so it stopped it
  EXPECT_NE(w1.find("# dnc profile"), std::string::npos);
  EXPECT_NE(w1.find("pool:7"), std::string::npos) << w1.substr(0, 500);
}

TEST_F(ProfilerTest, RegistrationLifecycle) {
  want_registration();
  {
    prof::ThreadRegistration reg("worker", 3);
    EXPECT_TRUE(reg.active());
    EXPECT_EQ(prof::registered_threads(), 1u);
  }
  EXPECT_EQ(prof::registered_threads(), 0u);
}

// --- crash dump -------------------------------------------------------------

namespace crash = obs::crash;

TEST_F(ProfilerTest, CrashDumpTextCarriesProvenance) {
  const std::string text = crash::dump_text(0);
  EXPECT_NE(text.find("# dnc crash dump"), std::string::npos);
  EXPECT_NE(text.find("# signal: test"), std::string::npos);
  EXPECT_NE(text.find("# git_commit: "), std::string::npos);
}

TEST_F(ProfilerTest, CrashGateOffByDefault) {
  crash::refresh_from_env();
  EXPECT_FALSE(crash::enabled());
  EXPECT_EQ(crash::dump_path(), "");
  EXPECT_FALSE(crash::ensure_installed());
}

using ProfilerDeathTest = ProfilerTest;

TEST_F(ProfilerDeathTest, LastGaspDumpSurvivesAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // pid-unique so concurrent whole-binary ctest entries don't race on the
  // dump file -- but pinned through an env var, because the threadsafe
  // death test re-executes this body in a child whose own getpid() would
  // name a different file than the one checked here.
  const char* preset = std::getenv("DNC_CRASH_TEST_PATH");
  const std::string path = preset ? std::string(preset)
                                  : ::testing::TempDir() + "dnc_crash_test_" +
                                        std::to_string(::getpid()) + ".txt";
  ::setenv("DNC_CRASH_TEST_PATH", path.c_str(), 1);
  std::remove(path.c_str());
  std::remove((path + ".jsonl").c_str());
  ::setenv("DNC_CRASH_DUMP", path.c_str(), 1);
  EXPECT_EXIT(
      {
        crash::refresh_from_env();
        crash::ensure_installed();
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "crash handler did not write " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("# dnc crash dump"), std::string::npos);
  EXPECT_NE(ss.str().find("SIGABRT"), std::string::npos);
  std::remove(path.c_str());
  std::remove((path + ".jsonl").c_str());
  ::unsetenv("DNC_CRASH_DUMP");
  ::unsetenv("DNC_CRASH_TEST_PATH");
  crash::refresh_from_env();
}

}  // namespace
}  // namespace dnc
