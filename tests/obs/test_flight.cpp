// Flight-recorder tests: ring retention, anomaly triggers, the dump cap,
// and the end-to-end path where an injected bad solve produces exactly one
// JSONL dump whose report and trace round-trip through the loaders.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace_io.hpp"

namespace dnc {
namespace {

namespace fl = obs::flight;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  for (std::string line; std::getline(ss, line);)
    if (!line.empty()) out.push_back(line);
  return out;
}

obs::SolveReport healthy_report(long n = 500) {
  obs::SolveReport rep;
  rep.driver = "test";
  rep.n = n;
  rep.seconds = 0.01;
  rep.has_health = true;
  rep.health.sampled_columns = 8;
  rep.health.max_rel_residual = 1e-15;
  rep.health.max_ortho_error = 1e-15;
  return rep;
}

/// Points the recorder at per-test files and restores the environment (and
/// the recorder's process-wide state) afterwards.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      saved_set_.push_back(v != nullptr);
      ::unsetenv(var);
    }
    // pid-suffixed: the whole-binary rerun ctest entries run this test
    // concurrently with the discovered per-test process.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ("_" + std::to_string(::getpid()));
    prefix_ = ::testing::TempDir() + "dnc_flight_" + tag;
    ::setenv("DNC_FLIGHT", prefix_.c_str(), 1);
    fl::reset_for_tests();
  }
  void TearDown() override {
    for (std::size_t i = 0; i < saved_.size(); ++i) {
      if (saved_set_[i])
        ::setenv(saved_[i].first, saved_[i].second.c_str(), 1);
      else
        ::unsetenv(saved_[i].first);
    }
    fl::reset_for_tests();
    obs::metrics::reset_for_tests();
  }

  std::string dump_path(unsigned long dump) const {
    return prefix_ + "." + std::to_string(dump) + ".jsonl";
  }

  static constexpr const char* kVars[] = {
      "DNC_FLIGHT",     "DNC_FLIGHT_K",    "DNC_FLIGHT_RESID",
      "DNC_FLIGHT_LATENCY", "DNC_FLIGHT_DEFL", "DNC_FLIGHT_MAX_DUMPS",
      "DNC_METRICS"};
  std::vector<std::pair<const char*, std::string>> saved_;
  std::vector<bool> saved_set_;
  std::string prefix_;
};

TEST(FlightCompactJson, StripsWhitespaceOutsideStrings) {
  EXPECT_EQ(fl::compact_json("{\n  \"a\": 1,\n  \"b\": [1, 2]\n}"),
            "{\"a\":1,\"b\":[1,2]}");
  // String contents -- spaces and escaped quotes -- survive untouched.
  EXPECT_EQ(fl::compact_json("{\"k\": \"a b\\\"c \\\\ d\"}"),
            "{\"k\":\"a b\\\"c \\\\ d\"}");
}

TEST_F(FlightTest, RingRetainsLastK) {
  ::setenv("DNC_FLIGHT_K", "3", 1);
  fl::reset_for_tests();
  ASSERT_TRUE(fl::enabled());
  for (int i = 0; i < 7; ++i) EXPECT_EQ(fl::observe(healthy_report(), nullptr), "");
  EXPECT_EQ(fl::ring_size(), 3u);
  EXPECT_EQ(fl::dump_count(), 0u);
}

TEST_F(FlightTest, ResidualBreachDumpsRing) {
  for (int i = 0; i < 3; ++i) fl::observe(healthy_report(), nullptr);
  obs::SolveReport bad = healthy_report();
  bad.health.max_rel_residual = 1e-3;  // default threshold is 1e-8
  const std::string path = fl::observe(bad, nullptr);
  ASSERT_EQ(path, dump_path(1));
  EXPECT_EQ(fl::dump_count(), 1u);

  // Ring dump: the healthy solves lead up to the anomalous one, newest last,
  // every line valid JSON with the full report attached.
  const auto lines = lines_of(slurp(path));
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(line, v, &err)) << err << ": " << line;
    const json::Value* rep = v.find("report");
    ASSERT_NE(rep, nullptr);
    EXPECT_EQ(rep->member_string("driver", ""), "test");
  }
  json::Value last;
  ASSERT_TRUE(json::parse(lines.back(), last, nullptr));
  EXPECT_EQ(last.member_string("reason", ""), "residual");
  json::Value first;
  ASSERT_TRUE(json::parse(lines.front(), first, nullptr));
  EXPECT_EQ(first.member_string("reason", "x"), "");
  std::remove(path.c_str());
}

TEST_F(FlightTest, LatencyAndDeflationTriggers) {
  ::setenv("DNC_FLIGHT_LATENCY", "1.5", 1);
  ::setenv("DNC_FLIGHT_DEFL", "0.25", 1);
  fl::reset_for_tests();

  obs::SolveReport slow = healthy_report();
  slow.seconds = 2.0;
  std::string p1 = fl::observe(slow, nullptr);
  ASSERT_FALSE(p1.empty());
  json::Value v;
  ASSERT_TRUE(json::parse(lines_of(slurp(p1)).back(), v, nullptr));
  EXPECT_EQ(v.member_string("reason", ""), "latency");

  obs::SolveReport undeflated = healthy_report();
  obs::MergeRecord mr;
  mr.m = 100;
  mr.k = 95;  // 5% deflated < 25% floor
  undeflated.merges.push_back(mr);
  std::string p2 = fl::observe(undeflated, nullptr);
  ASSERT_FALSE(p2.empty());
  ASSERT_TRUE(json::parse(lines_of(slurp(p2)).back(), v, nullptr));
  EXPECT_EQ(v.member_string("reason", ""), "deflation");
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(FlightTest, DumpCapStopsDiskFill) {
  ::setenv("DNC_FLIGHT_MAX_DUMPS", "1", 1);
  fl::reset_for_tests();
  obs::SolveReport bad = healthy_report();
  bad.health.max_rel_residual = 1.0;
  const std::string p1 = fl::observe(bad, nullptr);
  ASSERT_FALSE(p1.empty());
  EXPECT_EQ(fl::observe(bad, nullptr), "");  // cap reached, ring still fed
  EXPECT_EQ(fl::dump_count(), 1u);
  EXPECT_EQ(fl::ring_size(), 2u);
  std::remove(p1.c_str());
}

TEST_F(FlightTest, InjectedBadSolveDumpsOnceWithLoadableTrace) {
  // Any solve breaches a 1us latency budget, so the first (and only) solve
  // of the test is the injected anomaly. No stats are passed: the telemetry
  // substitute must assemble the report and trace on its own.
  ::setenv("DNC_FLIGHT_LATENCY", "0.000001", 1);
  ::setenv("DNC_FLIGHT_RESID", "1", 1);  // keep the residual trigger quiet
  fl::reset_for_tests();

  matgen::Tridiag t = matgen::table3_matrix(10, 220);
  Matrix v;
  dc::stedc_taskflow(t.n(), t.d.data(), t.e.data(), v, {}, nullptr);

  EXPECT_EQ(fl::dump_count(), 1u) << "exactly one dump per anomalous solve";
  const std::string jsonl = slurp(dump_path(1));
  ASSERT_FALSE(jsonl.empty());
  const auto lines = lines_of(jsonl);
  ASSERT_EQ(lines.size(), 1u);
  json::Value entry;
  std::string err;
  ASSERT_TRUE(json::parse(lines[0], entry, &err)) << err;
  EXPECT_EQ(entry.member_string("reason", ""), "latency");
  const json::Value* rep = entry.find("report");
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->member_string("driver", ""), "taskflow");
  EXPECT_EQ(static_cast<long>(rep->member_number("n", 0)), 220);
  const json::Value* health = rep->find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_GT(health->member_number("sampled_columns", 0), 0);

  // The triggering solve's Perfetto trace sits next to the JSONL and must
  // round-trip through the trace_io loader, metadata included.
  const std::string trace_path = prefix_ + ".1.trace.json";
  rt::Trace loaded;
  ASSERT_TRUE(obs::load_perfetto_trace_file(trace_path, loaded, &err)) << err;
  EXPECT_FALSE(loaded.events.empty());
  EXPECT_EQ(loaded.meta_string("hostname"), obs::current_hostname());
  EXPECT_EQ(loaded.meta_string("timestamp").size(), 20u);
  std::remove(dump_path(1).c_str());
  std::remove(trace_path.c_str());
}

TEST_F(FlightTest, HealthySolvesNeverDump) {
  matgen::Tridiag t = matgen::table3_matrix(10, 160);
  Matrix v;
  dc::stedc_taskflow(t.n(), t.d.data(), t.e.data(), v, {}, nullptr);
  EXPECT_EQ(fl::ring_size(), 1u);  // recorded in the ring ...
  EXPECT_EQ(fl::dump_count(), 0u);  // ... but nothing tripped
}

}  // namespace
}  // namespace dnc
