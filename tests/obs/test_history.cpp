// Solve-history archive tests: record distillation (family hint included),
// append/load round trip, size-capped rotation, key parsing/filtering, the
// per-commit trend view, and the in-process ring behind /history.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/history.hpp"
#include "obs/report.hpp"

namespace dnc {
namespace {

namespace hist = obs::history;

/// Points DNC_HISTORY at a per-test temp file and restores the caller's
/// environment (and the module singletons) afterwards.
class HistoryTest : public ::testing::Test {
 protected:
  static constexpr const char* kVars[] = {"DNC_HISTORY", "DNC_HISTORY_MAX_BYTES"};
  void SetUp() override {
    for (const char* var : kVars) {
      const char* v = std::getenv(var);
      saved_.emplace_back(var, v ? std::string(v) : std::string());
      saved_set_.push_back(v != nullptr);
      ::unsetenv(var);
    }
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "dnc_history_" + info->name() + "_" +
             std::to_string(::getpid()) + ".jsonl";
    std::remove(path_.c_str());
    std::remove((path_ + ".1").c_str());
    hist::reset_for_tests();
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".1").c_str());
    for (std::size_t i = 0; i < saved_.size(); ++i) {
      if (saved_set_[i])
        ::setenv(saved_[i].first, saved_[i].second.c_str(), 1);
      else
        ::unsetenv(saved_[i].first);
    }
    hist::reset_for_tests();
    hist::set_family_hint(nullptr);
  }

  void enable(long max_bytes = 0) {
    ::setenv("DNC_HISTORY", path_.c_str(), 1);
    if (max_bytes > 0)
      ::setenv("DNC_HISTORY_MAX_BYTES", std::to_string(max_bytes).c_str(), 1);
    hist::refresh_from_env();
  }

  std::string path_;
  std::vector<std::pair<const char*, std::string>> saved_;
  std::vector<bool> saved_set_;
};

obs::SolveReport sample_report(const char* driver = "taskflow", long n = 1000,
                               const char* commit = "abc123") {
  obs::SolveReport rep;
  rep.driver = driver;
  rep.n = n;
  rep.threads = 4;
  rep.seconds = 0.25;
  rep.git_commit = commit;
  rep.timestamp = "2026-08-09T12:00:00Z";
  rep.hostname = "testhost";
  rep.has_scheduler = true;
  rep.scheduler.workers = 4;
  rep.scheduler.makespan = 0.24;
  rep.scheduler.total_idle = 0.1;
  rep.scheduler.policy = "steal";
  obs::MergeRecord m;
  m.m = 100;
  m.k = 40;  // 60% deflated
  rep.merges.push_back(m);
  rep.counters[obs::kGemmFlops] = 1000000000;  // 4 GF/s at 0.25 s
  return rep;
}

TEST_F(HistoryTest, DisabledByDefault) {
  EXPECT_FALSE(hist::enabled());
  EXPECT_FALSE(hist::append(hist::record_from_report(sample_report())));
}

TEST_F(HistoryTest, RecordDistillsReportAndFamilyHint) {
  hist::set_family_hint("deflate20");
  const hist::Record r = hist::record_from_report(sample_report());
  hist::set_family_hint(nullptr);
  EXPECT_EQ(r.driver, "taskflow");
  EXPECT_EQ(r.family, "deflate20");
  EXPECT_EQ(r.precision, "f64");
  EXPECT_EQ(r.n, 1000);
  EXPECT_EQ(r.workers, 4);
  EXPECT_NEAR(r.seconds, 0.25, 1e-12);
  EXPECT_NEAR(r.makespan, 0.24, 1e-12);
  EXPECT_NEAR(r.deflated_fraction, 0.6, 1e-12);
  EXPECT_NEAR(r.gemm_gflops, 4.0, 1e-9);
  EXPECT_EQ(r.sched_policy, "steal");
  // Hint cleared: the next record is family-less.
  EXPECT_TRUE(hist::record_from_report(sample_report()).family.empty());
}

TEST_F(HistoryTest, AppendLoadRoundTrip) {
  enable();
  ASSERT_TRUE(hist::enabled());
  hist::set_family_hint("deflate20");
  ASSERT_TRUE(hist::append(hist::record_from_report(sample_report("taskflow", 1000))));
  ASSERT_TRUE(hist::append(hist::record_from_report(sample_report("sequential", 500))));
  hist::set_family_hint(nullptr);
  std::vector<hist::Record> recs;
  std::string err;
  long skipped = -1;
  ASSERT_TRUE(hist::load_file(path_, recs, &err, &skipped)) << err;
  EXPECT_EQ(skipped, 0);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].driver, "taskflow");
  EXPECT_EQ(recs[0].family, "deflate20");
  EXPECT_EQ(recs[0].git_commit, "abc123");
  EXPECT_NEAR(recs[0].gemm_gflops, 4.0, 1e-3);
  EXPECT_EQ(recs[1].driver, "sequential");
  EXPECT_EQ(recs[1].n, 500);
}

TEST_F(HistoryTest, UnparseableLinesAreSkippedAndCounted) {
  enable();
  ASSERT_TRUE(hist::append(hist::record_from_report(sample_report())));
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not json\n{\"x\": 1}\n", f);
    std::fclose(f);
  }
  ASSERT_TRUE(hist::append(hist::record_from_report(sample_report())));
  std::vector<hist::Record> recs;
  long skipped = 0;
  ASSERT_TRUE(hist::load_file(path_, recs, nullptr, &skipped));
  EXPECT_EQ(recs.size(), 2u);
  EXPECT_EQ(skipped, 2);
}

TEST_F(HistoryTest, RotationAtSizeCap) {
  enable(4096);  // the floor the module clamps to
  EXPECT_EQ(hist::max_bytes(), 4096);
  const hist::Record rec = hist::record_from_report(sample_report());
  // Each line is ~350 bytes; 20 appends cross the 4 KiB cap at least once.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(hist::append(rec));
  std::vector<hist::Record> gen1;
  ASSERT_TRUE(hist::load_file(path_ + ".1", gen1));
  EXPECT_FALSE(gen1.empty());
  std::vector<hist::Record> cur;
  ASSERT_TRUE(hist::load_file(path_, cur));
  EXPECT_FALSE(cur.empty());
  // Nothing lost: the two generations hold all 20 lines.
  EXPECT_EQ(gen1.size() + cur.size(), 20u);
}

TEST_F(HistoryTest, NoteFeedsRingAlwaysAndFileWhenEnabled) {
  hist::note(sample_report());  // disabled: ring only
  EXPECT_EQ(hist::ring_size(), 1u);
  EXPECT_NE(hist::ring_jsonl().find("\"driver\": \"taskflow\""), std::string::npos);
  enable();
  hist::note(sample_report());
  EXPECT_EQ(hist::ring_size(), 2u);
  std::vector<hist::Record> recs;
  ASSERT_TRUE(hist::load_file(path_, recs));
  EXPECT_EQ(recs.size(), 1u);  // only the post-enable note hit the file
}

TEST(HistoryKey, ParseAndMatch) {
  hist::Key key;
  std::string err;
  ASSERT_TRUE(hist::parse_key("n=1000,family=deflate20,driver=taskflow,prec=f64", key, &err))
      << err;
  EXPECT_EQ(key.n, 1000);
  EXPECT_EQ(key.family, "deflate20");
  EXPECT_EQ(key.driver, "taskflow");
  EXPECT_EQ(key.precision, "f64");

  hist::Record r;
  r.driver = "taskflow";
  r.family = "deflate20";
  r.precision = "f64";
  r.n = 1000;
  EXPECT_TRUE(key.matches(r));
  r.n = 500;
  EXPECT_FALSE(key.matches(r));

  EXPECT_TRUE(hist::parse_key("", key, &err));  // empty = match-all
  EXPECT_TRUE(key.matches(r));
  EXPECT_FALSE(hist::parse_key("bogus=1", key, &err));
  EXPECT_NE(err.find("unknown key field"), std::string::npos);
  EXPECT_FALSE(hist::parse_key("n=abc", key, &err));
  EXPECT_FALSE(hist::parse_key("noequals", key, &err));
}

TEST(HistoryQuery, SeriesAndLatestPerCommit) {
  std::vector<hist::Record> recs;
  const auto rec = [](const char* commit, const char* driver, long n, double secs) {
    hist::Record r;
    r.git_commit = commit;
    r.driver = driver;
    r.n = n;
    r.seconds = secs;
    return r;
  };
  recs.push_back(rec("c1", "taskflow", 1000, 0.5));
  recs.push_back(rec("c1", "taskflow", 1000, 0.4));   // newer c1 reading
  recs.push_back(rec("c1", "sequential", 1000, 0.9)); // other driver
  recs.push_back(rec("c2", "taskflow", 1000, 0.6));
  recs.push_back(rec("c2", "taskflow", 500, 0.1));    // other n

  hist::Key key;
  ASSERT_TRUE(hist::parse_key("driver=taskflow,n=1000", key));
  const std::vector<hist::Record> ser = hist::series(recs, key);
  ASSERT_EQ(ser.size(), 3u);
  EXPECT_NEAR(ser[0].seconds, 0.5, 1e-12);
  EXPECT_NEAR(ser[2].seconds, 0.6, 1e-12);

  const std::vector<hist::Record> per_commit = hist::latest_per_commit(recs, key);
  ASSERT_EQ(per_commit.size(), 2u);
  EXPECT_EQ(per_commit[0].git_commit, "c1");
  EXPECT_NEAR(per_commit[0].seconds, 0.4, 1e-12);  // newest c1 wins
  EXPECT_EQ(per_commit[1].git_commit, "c2");
  EXPECT_NEAR(per_commit[1].seconds, 0.6, 1e-12);

  const std::string rendered = hist::render_series(ser, "driver=taskflow,n=1000");
  EXPECT_NE(rendered.find("3 records"), std::string::npos);
  EXPECT_NE(rendered.find("taskflow"), std::string::npos);
  EXPECT_NE(rendered.find("median"), std::string::npos);
  EXPECT_NE(hist::render_series({}, "empty").find("no matching records"),
            std::string::npos);
}

}  // namespace
}  // namespace dnc
