// End-to-end export test (the CI gate of the observability layer): a small
// taskflow solve with DNC_TRACE / DNC_REPORT set must produce a
// syntactically valid Perfetto trace containing flow events and both
// counter tracks, plus a JSON report and text summary.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dc/api.hpp"
#include "matgen/tridiag.hpp"
#include "obs/report.hpp"

namespace dnc {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Minimal JSON syntax checker: enough to catch unbalanced structure,
// unescaped quotes, and trailing garbage without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-name + per-pid paths: ctest runs each case as its own
    // process, in parallel with its siblings AND with the whole-binary
    // rerun entries (*_scalar_dispatch, *_metrics_on), so names shared
    // across processes would race.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ("_" + std::to_string(::getpid()));
    trace_path_ = ::testing::TempDir() + "dnc_" + tag + "_trace.json";
    report_path_ = ::testing::TempDir() + "dnc_" + tag + "_report.json";
    std::remove(trace_path_.c_str());
    std::remove(report_path_.c_str());
    std::remove((report_path_ + ".txt").c_str());
    // The export path gets a sequence suffix after the first export of the
    // process; when several cases share one process (the *_scalar_dispatch
    // ctest entries run the whole binary) each case must start at seq 0 to
    // find its file at the configured path.
    obs::reset_export_sequence();
  }
  void TearDown() override {
    ::unsetenv("DNC_TRACE");
    ::unsetenv("DNC_REPORT");
  }

  void run_solve(index_t n = 250) {
    matgen::Tridiag t = matgen::table3_matrix(10, n);
    Matrix v;
    dc::stedc_taskflow(n, t.d.data(), t.e.data(), v, {}, nullptr, {});
  }

  std::string trace_path_, report_path_;
};

TEST_F(ExportTest, EnvUnsetWritesNothing) {
  run_solve(100);
  EXPECT_FALSE(std::ifstream(trace_path_).good());
  EXPECT_FALSE(std::ifstream(report_path_).good());
}

TEST_F(ExportTest, TraceAndReportExportEvenWithoutStats) {
  ::setenv("DNC_TRACE", trace_path_.c_str(), 1);
  ::setenv("DNC_REPORT", report_path_.c_str(), 1);
  run_solve();

  const std::string trace = slurp(trace_path_);
  ASSERT_FALSE(trace.empty()) << "DNC_TRACE file not written";
  EXPECT_TRUE(JsonChecker(trace).valid()) << "trace is not valid JSON";
  // Perfetto essentials: labelled rows, slices, flow arrows, and the two
  // counter tracks.
  for (const char* needle :
       {"\"process_name\"", "\"thread_name\"", "\"ph\":\"X\"", "\"ph\":\"s\"", "\"ph\":\"f\"",
        "\"ph\":\"C\"", "\"ready_queue_depth\"", "\"deflated_cumulative\"", "\"args\"",
        "\"level\"", "\"ready_wait_us\"", "\"sched_policy\"", "\"sched_counters\""})
    EXPECT_NE(trace.find(needle), std::string::npos) << needle;

  const std::string report = slurp(report_path_);
  ASSERT_FALSE(report.empty()) << "DNC_REPORT file not written";
  EXPECT_TRUE(JsonChecker(report).valid()) << "report is not valid JSON";
  for (const char* needle : {"\"driver\": \"taskflow\"", "\"laed4_calls\"", "\"merges\"",
                             "\"ctot\"", "\"scheduler\"", "\"policy\"", "\"steals\"",
                             "\"local_pops\""})
    EXPECT_NE(report.find(needle), std::string::npos) << needle;

  const std::string summary = slurp(report_path_ + ".txt");
  ASSERT_FALSE(summary.empty()) << "text summary not written";
  EXPECT_NE(summary.find("dnc solve report"), std::string::npos);
  EXPECT_NE(summary.find("deflation"), std::string::npos);
}

TEST(SequencedExportPath, SuffixScheme) {
  EXPECT_EQ(obs::sequenced_export_path("trace.json", 0), "trace.json");
  EXPECT_EQ(obs::sequenced_export_path("trace.json", 1), "trace.2.json");
  EXPECT_EQ(obs::sequenced_export_path("trace.json", 9), "trace.10.json");
  EXPECT_EQ(obs::sequenced_export_path("/tmp/out/report.json", 2), "/tmp/out/report.3.json");
  // A dot in a directory name must not be mistaken for an extension.
  EXPECT_EQ(obs::sequenced_export_path("/tmp/v1.2/trace", 1), "/tmp/v1.2/trace.2");
  EXPECT_EQ(obs::sequenced_export_path("trace", 1), "trace.2");
}

TEST_F(ExportTest, SecondSolveOfProcessGetsSequenceSuffix) {
  ::setenv("DNC_TRACE", trace_path_.c_str(), 1);
  ::setenv("DNC_REPORT", report_path_.c_str(), 1);
  run_solve(120);
  run_solve(140);
  run_solve(160);

  // First export at the configured paths, later ones suffixed -- no solve
  // clobbers an earlier artifact.
  for (const std::string& base : {trace_path_, report_path_}) {
    EXPECT_TRUE(std::ifstream(base).good()) << base;
    for (unsigned seq : {1u, 2u}) {
      const std::string p = obs::sequenced_export_path(base, seq);
      EXPECT_TRUE(std::ifstream(p).good()) << p;
      EXPECT_TRUE(JsonChecker(slurp(p)).valid()) << p;
    }
  }
  // Trace and report of one solve share the counter, so .2/.3 pair up.
  EXPECT_TRUE(
      std::ifstream(obs::sequenced_export_path(report_path_, 2) + ".txt").good());

  // reset_export_sequence starts over: the next export reuses (and may
  // overwrite) the plain path.
  obs::reset_export_sequence();
  std::remove(trace_path_.c_str());
  run_solve(120);
  EXPECT_TRUE(std::ifstream(trace_path_).good());
  EXPECT_FALSE(std::ifstream(obs::sequenced_export_path(trace_path_, 3)).good());
}

TEST_F(ExportTest, SequenceExportsCarryExactlyOneMetadataPrologue) {
  // Regression: the exporter used to emit the process_name/thread_name
  // metadata from two code paths, so a sequence file (trace.2.json) could
  // end up with duplicate metadata blocks and confuse standalone loading
  // in Perfetto. Every export -- first or suffixed -- must contain exactly
  // one process_name record and one thread_name per worker.
  ::setenv("DNC_TRACE", trace_path_.c_str(), 1);
  run_solve(140);
  run_solve(140);
  for (unsigned seq : {0u, 1u}) {
    const std::string p = obs::sequenced_export_path(trace_path_, seq);
    const std::string trace = slurp(p);
    ASSERT_FALSE(trace.empty()) << p;
    EXPECT_TRUE(JsonChecker(trace).valid()) << p;
    std::size_t count = 0, at = 0;
    while ((at = trace.find("\"process_name\"", at)) != std::string::npos) {
      ++count;
      at += 1;
    }
    EXPECT_EQ(count, 1u) << p;
  }
}

TEST_F(ExportTest, SequentialDriverExportsReportWithoutTrace) {
  ::setenv("DNC_REPORT", report_path_.c_str(), 1);
  matgen::Tridiag t = matgen::table3_matrix(10, 200);
  Matrix v;
  dc::stedc_sequential(200, t.d.data(), t.e.data(), v, {}, nullptr);
  const std::string report = slurp(report_path_);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(JsonChecker(report).valid());
  EXPECT_NE(report.find("\"driver\": \"sequential\""), std::string::npos);
  EXPECT_NE(report.find("\"has_scheduler\": false"), std::string::npos);
}

}  // namespace
}  // namespace dnc
