#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "blas/simd/kernels.hpp"
#include "dc/api.hpp"
#include "matgen/tridiag.hpp"

namespace dnc {
namespace {

dc::SolveStats solve(index_t n, int mat_type,
                     void (*driver)(index_t, double*, double*, Matrix&, const dc::Options&,
                                    dc::SolveStats*)) {
  matgen::Tridiag t = matgen::table3_matrix(mat_type, n);
  Matrix v;
  dc::SolveStats st;
  driver(n, t.d.data(), t.e.data(), v, {}, &st);
  return st;
}

void seq(index_t n, double* d, double* e, Matrix& v, const dc::Options& o, dc::SolveStats* s) {
  dc::stedc_sequential(n, d, e, v, o, s);
}
void tf(index_t n, double* d, double* e, Matrix& v, const dc::Options& o, dc::SolveStats* s) {
  dc::stedc_taskflow(n, d, e, v, o, s, {});
}

TEST(SolveReport, MergeRecordsSumToMergeSizes) {
  const dc::SolveStats st = solve(257, 10, seq);
  const obs::SolveReport& r = st.report;
  ASSERT_EQ(static_cast<index_t>(r.merges.size()), st.merges);
  for (const obs::MergeRecord& m : r.merges) {
    EXPECT_EQ(m.ctot[0] + m.ctot[1] + m.ctot[2] + m.ctot[3], m.m);
    EXPECT_EQ(m.ctot[0] + m.ctot[1] + m.ctot[2], m.k);
    EXPECT_GT(m.n1, 0);
    EXPECT_LT(m.n1, m.m);
    EXPECT_GT(m.t_end, 0.0);
  }
  // The merge tree merges each column once per level it participates in;
  // the root merge covers all n columns.
  long root_m = 0;
  for (const obs::MergeRecord& m : r.merges)
    if (m.level == 0) root_m = m.m;
  EXPECT_EQ(root_m, 257);
}

TEST(SolveReport, Laed4HistogramMatchesNonDeflatedCount) {
  const dc::SolveStats st = solve(300, 10, seq);
  const obs::SolveReport& r = st.report;
  // One laed4 call per secular root = per non-deflated column over all
  // merges; every call lands in exactly one histogram bucket.
  EXPECT_EQ(static_cast<long>(r.counter(obs::kLaed4Calls)), r.nondeflated_total());
  EXPECT_EQ(r.laed4_hist_total(), r.counter(obs::kLaed4Calls));
  EXPECT_GT(r.nondeflated_total(), 0);
  EXPECT_EQ(r.deflated_total() + r.nondeflated_total(), r.merged_columns_total());
}

TEST(SolveReport, SequentialAndTaskflowAgreeOnAlgorithmicContent) {
  const dc::SolveStats a = solve(300, 10, seq);
  const dc::SolveStats b = solve(300, 10, tf);
  ASSERT_EQ(a.report.merges.size(), b.report.merges.size());
  for (std::size_t i = 0; i < a.report.merges.size(); ++i) {
    const obs::MergeRecord& ma = a.report.merges[i];
    const obs::MergeRecord& mb = b.report.merges[i];
    EXPECT_EQ(ma.m, mb.m);
    EXPECT_EQ(ma.n1, mb.n1);
    EXPECT_EQ(ma.k, mb.k);
    for (int t = 0; t < 4; ++t) EXPECT_EQ(ma.ctot[t], mb.ctot[t]);
  }
  EXPECT_EQ(a.report.counter(obs::kLaed4Calls), b.report.counter(obs::kLaed4Calls));
  EXPECT_FALSE(a.report.has_scheduler);
  EXPECT_TRUE(b.report.has_scheduler);
  EXPECT_GT(b.report.scheduler.tasks, 0);
  EXPECT_GE(b.report.scheduler.max_queue_depth, 1);
}

TEST(SolveReport, ScalarAndNativeDispatchProduceSameStructure) {
  // The deflation decisions and call counts are tolerance-driven and must
  // not depend on which SIMD table ran the kernels (iteration counts per
  // call may differ by rounding, so buckets are not compared).
  dc::SolveStats native = solve(300, 10, seq);
  dc::SolveStats scalar;
  {
    blas::simd::ScopedIsaOverride force(SimdIsa::Scalar);
    scalar = solve(300, 10, seq);
  }
  EXPECT_EQ(scalar.report.simd_isa, "scalar");
  ASSERT_EQ(native.report.merges.size(), scalar.report.merges.size());
  for (std::size_t i = 0; i < native.report.merges.size(); ++i) {
    const obs::MergeRecord& mn = native.report.merges[i];
    const obs::MergeRecord& ms = scalar.report.merges[i];
    EXPECT_EQ(mn.m, ms.m);
    EXPECT_EQ(mn.n1, ms.n1);
    EXPECT_EQ(mn.k, ms.k);
    for (int t = 0; t < 4; ++t) EXPECT_EQ(mn.ctot[t], ms.ctot[t]);
  }
  EXPECT_EQ(native.report.counter(obs::kLaed4Calls),
            scalar.report.counter(obs::kLaed4Calls));
  EXPECT_EQ(native.report.counter(obs::kGemmCalls), scalar.report.counter(obs::kGemmCalls));
  EXPECT_EQ(native.report.counter(obs::kGemmFlops), scalar.report.counter(obs::kGemmFlops));
}

TEST(SolveReport, SimdIsaReflectsDispatchedTable) {
  const dc::SolveStats st = solve(100, 10, seq);
  EXPECT_EQ(st.report.simd_isa, blas::simd::kernels().name);
}

TEST(SolveReport, JsonAndSummaryContainKeyFields) {
  const dc::SolveStats st = solve(150, 10, tf);
  const std::string js = st.report.to_json();
  for (const char* key :
       {"\"driver\": \"taskflow\"", "\"counters\"", "\"laed4_calls\"", "\"merges\"",
        "\"ctot\"", "\"deflated_fraction\"", "\"scheduler\"", "\"max_queue_depth\""})
    EXPECT_NE(js.find(key), std::string::npos) << key;
  const std::string txt = st.report.summary_text();
  for (const char* key : {"driver", "deflation", "secular solver", "scheduler"})
    EXPECT_NE(txt.find(key), std::string::npos) << key;
}

TEST(SchedulerMetrics, DerivedFromTraceConsistently) {
  const dc::SolveStats st = solve(300, 10, tf);
  const obs::SchedulerMetrics m = obs::scheduler_metrics(st.trace);
  EXPECT_EQ(m.workers, st.trace.workers);
  EXPECT_GT(m.tasks, 0);
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_GT(m.total_busy, 0.0);
  EXPECT_GT(m.efficiency, 0.0);
  EXPECT_LE(m.efficiency, 1.0 + 1e-9);
  EXPECT_GE(m.max_ready_wait, m.avg_ready_wait);
  EXPECT_GE(m.total_idle, 0.0);
}

}  // namespace
}  // namespace dnc
